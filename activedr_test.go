package activedr_test

import (
	"testing"
	"time"

	"activedr"
)

// TestFacadeEndToEnd exercises the public API exactly as the README
// quickstart does: generate traces, evaluate activeness, run one
// purge pass, and replay the year under both policies.
func TestFacadeEndToEnd(t *testing.T) {
	ds, err := activedr.Generate(activedr.SynthConfig{Seed: 21, Users: 250})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Users) != 250 {
		t.Fatalf("users = %d", len(ds.Users))
	}

	// Activeness evaluation via the facade.
	ev := activedr.NewEvaluator(activedr.Days(90))
	jobs := ev.AddType("job-submission", activedr.Operation)
	pubs := ev.AddType("publication", activedr.Outcome)
	ev.RecordJobs(jobs, ds.Jobs)
	ev.RecordPublications(pubs, ds.Publications)
	tc := activedr.Date(2016, time.June, 1)
	ranks := ev.EvaluateAll(len(ds.Users), tc)
	if len(ranks) != 250 {
		t.Fatalf("ranks = %d", len(ranks))
	}

	// One manual retention pass on the snapshot.
	fsys, err := activedr.FromSnapshot(&ds.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	adr, err := activedr.NewActiveDR(activedr.RetentionConfig{
		Lifetime:          activedr.Days(90),
		Capacity:          fsys.TotalBytes(),
		TargetUtilization: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := adr.Purge(fsys, ranks, tc)
	if rep.PurgedBytes == 0 {
		t.Fatal("purge pass freed nothing on a 6-month-old snapshot")
	}
	if rep.RetainedBytes() != fsys.TotalBytes() {
		t.Fatal("report inconsistent with file system state")
	}

	// Full-year comparison.
	em, err := activedr.NewEmulator(ds, activedr.SimConfig{TargetUtilization: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := em.RunComparison()
	if err != nil {
		t.Fatal(err)
	}
	if cmp.FLT.TotalAccesses != cmp.ActiveDR.TotalAccesses {
		t.Fatal("policies saw different access streams")
	}
}

func TestFacadeFacilities(t *testing.T) {
	fs := activedr.Facilities()
	if len(fs) != 4 {
		t.Fatalf("facilities = %d", len(fs))
	}
	var olcf activedr.Facility
	for _, f := range fs {
		if f.Name == "OLCF" {
			olcf = f
		}
	}
	if olcf.Lifetime != activedr.Days(90) {
		t.Fatalf("OLCF lifetime = %v", olcf.Lifetime)
	}
}

func TestFacadeReservedSet(t *testing.T) {
	rs := activedr.NewReservedSet()
	rs.Add("/lustre/atlas/u1/keep")
	if !rs.Covers("/lustre/atlas/u1/keep/file") {
		t.Fatal("reservation not honored through facade")
	}
}

func TestFacadeDatasetRoundTrip(t *testing.T) {
	ds, err := activedr.Generate(activedr.SynthConfig{Seed: 5, Users: 60})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := activedr.WriteDataset(dir, ds); err != nil {
		t.Fatal(err)
	}
	ds2, err := activedr.LoadDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds2.Jobs) != len(ds.Jobs) || len(ds2.Accesses) != len(ds.Accesses) {
		t.Fatal("dataset round trip lost records")
	}
}

func TestFacadePlanPurgeAndArchive(t *testing.T) {
	fsys := activedr.NewFS()
	old := activedr.Date(2015, time.January, 1)
	if err := fsys.Insert("/u/x/stale.dat", activedr.FileMeta{User: 0, Size: 4e9, ATime: old}); err != nil {
		t.Fatal(err)
	}
	flt := &activedr.FLT{Lifetime: activedr.Days(90)}
	rep := activedr.PlanPurge(flt, fsys, nil, activedr.Date(2016, time.June, 1))
	if len(rep.Victims) != 1 || !fsys.Contains("/u/x/stale.dat") {
		t.Fatalf("dry run wrong: victims=%v", rep.Victims)
	}
	models := activedr.ArchiveModels()
	if len(models) == 0 {
		t.Fatal("no archive models")
	}
	var m activedr.ArchiveModel = models[0]
	if m.RestoreTime(1, 1e9) <= 0 {
		t.Fatal("restore time not positive")
	}
}
