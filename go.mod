module activedr

go 1.23
