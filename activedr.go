// Package activedr is a from-scratch Go implementation of ActiveDR,
// the activeness-based data-retention policy for HPC scratch file
// systems from "Exploiting User Activeness for Data Retention in HPC
// Systems" (SC '21), together with everything needed to reproduce the
// paper's evaluation: the fixed-lifetime (FLT) baseline, a prefix-tree
// virtual file system, trace formats, a synthetic OLCF-like trace
// generator, and a replay emulator.
//
// The package is a thin facade over the internal implementation
// packages; the exported names are aliases, so the full method sets
// are available here. Typical use:
//
//	ds, _ := activedr.Generate(activedr.SynthConfig{Users: 2000})
//	em, _ := activedr.NewEmulator(ds, activedr.SimConfig{TargetUtilization: 0.5})
//	cmp, _ := em.RunComparison()
//	fmt.Printf("miss reduction: %.1f%%\n", 100*cmp.MissReduction())
//
// The cmd/ directory holds the operational tools (tracegen, activedr,
// simulate, report), examples/ holds runnable walkthroughs, and
// bench_test.go regenerates every table and figure of the paper.
package activedr

import (
	"activedr/internal/activeness"
	"activedr/internal/archive"
	"activedr/internal/config"
	"activedr/internal/experiments"
	"activedr/internal/retention"
	"activedr/internal/sim"
	"activedr/internal/synth"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
	"activedr/internal/vfs"
)

// Core time types.
type (
	// Time is a Unix timestamp in seconds.
	Time = timeutil.Time
	// Duration is a span of time in seconds.
	Duration = timeutil.Duration
)

// Days returns a Duration of n days.
func Days(n int) Duration { return timeutil.Days(n) }

// Date builds a Time from a UTC calendar date.
var Date = timeutil.Date

// Trace records and datasets.
type (
	// Dataset bundles the five trace kinds of one emulated system.
	Dataset = trace.Dataset
	// User is one row of the anonymized user list.
	User = trace.User
	// UserID indexes the dataset's user table.
	UserID = trace.UserID
	// Job is one scheduler-log record; its activeness impact is its
	// core-hours.
	Job = trace.Job
	// Access is one application-log (file access) record.
	Access = trace.Access
	// Publication is one outcome record, weighted per Eq. (8).
	Publication = trace.Publication
	// Login is one shell-login operation record (Table 2).
	Login = trace.Login
	// Transfer is one data-transfer operation record (Table 2).
	Transfer = trace.Transfer
	// Snapshot is a parallel-file-system metadata snapshot.
	Snapshot = trace.Snapshot
)

// LoadDataset reads a dataset directory written by WriteDataset (or
// cmd/tracegen).
var LoadDataset = trace.LoadDataset

// WriteDataset persists a dataset directory.
var WriteDataset = trace.WriteDataset

// Activeness model (the paper's §3.2–3.3).
type (
	// Evaluator computes user activeness ranks from recorded
	// activities.
	Evaluator = activeness.Evaluator
	// Rank is a user's (Φ_op, Φ_oc) with data-presence flags.
	Rank = activeness.Rank
	// Group is one quadrant of the activeness matrix.
	Group = activeness.Group
	// Class distinguishes operation from outcome activities.
	Class = activeness.Class
	// Matrix counts users per group (Figure 5).
	Matrix = activeness.Matrix
)

// Activeness groups in ascending scan order, and classes.
const (
	BothInactive        = activeness.BothInactive
	OutcomeActiveOnly   = activeness.OutcomeActiveOnly
	OperationActiveOnly = activeness.OperationActiveOnly
	BothActive          = activeness.BothActive
	Operation           = activeness.Operation
	Outcome             = activeness.Outcome
)

// NewEvaluator builds an activeness evaluator with period length d.
var NewEvaluator = activeness.NewEvaluator

// Virtual file system.
type (
	// FS is the compact-prefix-tree virtual file system.
	FS = vfs.FS
	// FileMeta is the per-file metadata retention consults.
	FileMeta = vfs.FileMeta
	// ReservedSet indexes purge-exempt paths.
	ReservedSet = vfs.ReservedSet
)

// NewFS returns an empty virtual file system.
var NewFS = vfs.New

// FromSnapshot loads a metadata snapshot into a virtual file system.
var FromSnapshot = vfs.FromSnapshot

// NewReservedSet returns an empty purge-exemption index.
var NewReservedSet = vfs.NewReservedSet

// Retention policies.
type (
	// Policy is a purge procedure (FLT or ActiveDR).
	Policy = retention.Policy
	// FLT is the fixed-lifetime baseline.
	FLT = retention.FLT
	// ActiveDR is the activeness-based policy of §3.4.
	ActiveDR = retention.ActiveDR
	// RetentionConfig parameterizes ActiveDR.
	RetentionConfig = retention.Config
	// Report is the outcome of one purge pass.
	Report = retention.Report
)

// NewActiveDR builds the ActiveDR policy.
var NewActiveDR = retention.NewActiveDR

// PlanPurge dry-runs a policy against a copy of the file system and
// returns the report with the victim list populated; the input is
// left untouched.
var PlanPurge = retention.Plan

// Synthetic trace generation.
type (
	// SynthConfig parameterizes the synthetic OLCF-like generator.
	SynthConfig = synth.Config
)

// Generate produces a synthetic dataset (the substitution for the
// proprietary Titan/Spider traces; see DESIGN.md §4).
var Generate = synth.Generate

// Replay emulation (the paper's §4.1.3 procedure).
type (
	// Emulator replays a dataset against retention policies.
	Emulator = sim.Emulator
	// SimConfig parameterizes an emulation run.
	SimConfig = sim.Config
	// RunResult is the outcome of one policy replay.
	RunResult = sim.Result
	// Comparison pairs an FLT run with an ActiveDR run.
	Comparison = sim.Comparison
)

// NewEmulator prepares a replay emulator over a dataset.
var NewEmulator = sim.New

// Experiments (per-figure harnesses).
type (
	// Suite caches the emulation runs behind the paper's figures.
	Suite = experiments.Suite
)

// NewSuite wraps a dataset for figure regeneration.
var NewSuite = experiments.NewSuite

// NewSyntheticSuite generates a synthetic dataset and wraps it.
var NewSyntheticSuite = experiments.NewSyntheticSuite

// Facility presets (Table 1).
type Facility = config.Facility

// Facilities lists the Table 1 presets.
var Facilities = config.Facilities

// Archive restore-cost modelling (the paper's miss cost).
type ArchiveModel = archive.Model

// ArchiveModels lists the reference archive models (HPSS tape, disk
// archive, wide-area re-transmission).
var ArchiveModels = archive.Models
