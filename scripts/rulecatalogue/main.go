// Command rulecatalogue turns `vetadr -list -json` output (on stdin)
// into the markdown table embedded in README.md. It exists so
// scripts/update-rule-catalogue.sh needs no jq in the environment.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rulecatalogue: ")
	var rules []struct {
		Name string `json:"name"`
		Doc  string `json:"doc"`
	}
	if err := json.NewDecoder(os.Stdin).Decode(&rules); err != nil {
		log.Fatal(err)
	}
	if len(rules) == 0 {
		log.Fatal("no rules on stdin; was vetadr -list -json piped in?")
	}
	fmt.Println("| rule | invariant |")
	fmt.Println("|------|-----------|")
	for _, r := range rules {
		fmt.Printf("| `%s` | %s |\n", r.Name, r.Doc)
	}
}
