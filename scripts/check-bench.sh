#!/usr/bin/env bash
# check-bench.sh — benchstat-style benchmark regression gate.
#
# Runs the multiplexed-sweep benchmark pair (or reads an existing
# `go test -bench` output file) and fails when either:
#
#   1. a benchmark's median ns/op regressed more than THRESHOLD_PCT
#      percent against the committed baseline (benchmarks/baseline.txt),
#      or
#   2. the 4-policy multiplexed sweep's speedup over four sequential
#      replays (median sequential ns/op / median multiplexed ns/op,
#      within THIS run, so it is hardware-independent) fell below
#      SPEEDUP_MIN.
#
# The absolute-time gate (1) catches creeping regressions on one
# machine; its threshold is deliberately loose because the baseline
# may have been recorded on different hardware. The ratio gate (2) is
# the hard contract: the multiplexed runner must keep amortizing the
# shared stream across policy lanes wherever it runs.
#
# Usage:
#   scripts/check-bench.sh             # run benchmarks, then check
#   scripts/check-bench.sh out.txt     # check an existing output file
#   scripts/check-bench.sh -update     # re-record the baseline
#
# Tunables (env): THRESHOLD_PCT (default 50), SPEEDUP_MIN (default
# 2.5; the recorded trajectory bar is 3x on a quiet machine), COUNT
# (default 5), BENCHTIME (default 3x), BENCH_PATTERN (default covers
# the sweep pair plus the sharded-namespace / snapfile row — shard
# scaling and snapshot-open latency ride the absolute-time gate only,
# since a shard-speedup ratio would be meaningless on a 1-core CI
# host).
set -euo pipefail

# Pin the locale: the awk math below parses go-test ns/op numbers and
# must not be at the mercy of a comma-decimal locale.
export LC_ALL=C

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BASELINE="${BASELINE:-$ROOT/benchmarks/baseline.txt}"
THRESHOLD_PCT="${THRESHOLD_PCT:-50}"
SPEEDUP_MIN="${SPEEDUP_MIN:-2.5}"
BENCH_PATTERN="${BENCH_PATTERN:-Sweep4|ShardScaling|SnapshotOpen|SnapshotLoadFS}"
COUNT="${COUNT:-5}"
BENCHTIME="${BENCHTIME:-3x}"

run_bench() {
    (cd "$ROOT" && go test -run '^$' -bench "$BENCH_PATTERN" \
        -benchtime "$BENCHTIME" -count "$COUNT" .)
}

if [ "${1:-}" = "-update" ]; then
    mkdir -p "$(dirname "$BASELINE")"
    run_bench | tee "$BASELINE"
    echo "baseline updated: $BASELINE"
    exit 0
fi

current="$(mktemp)"
trap 'rm -f "$current"' EXIT
if [ $# -ge 1 ]; then
    if [ ! -f "$1" ]; then
        echo "check-bench: no such benchmark output file: $1" >&2
        exit 2
    fi
    cp -- "$1" "$current"
else
    run_bench | tee "$current"
fi

if [ ! -f "$BASELINE" ]; then
    echo "check-bench: no baseline at $BASELINE; run scripts/check-bench.sh -update" >&2
    exit 1
fi

# Medians per benchmark (the -cpu suffix is stripped so baselines
# recorded on hosts with different core counts still line up), then
# the two gates.
awk -v threshold="$THRESHOLD_PCT" -v speedupMin="$SPEEDUP_MIN" '
function record(src, line,    name, f, n) {
    n = split(line, fld, /[ \t]+/)
    name = fld[1]
    sub(/-[0-9]+$/, "", name)
    for (f = 2; f < n; f++) {
        if (fld[f + 1] == "ns/op") {
            count[src, name]++
            vals[src, name, count[src, name]] = fld[f] + 0
            seen[name] = 1
            return
        }
    }
}
function median(src, name,    n, i, j, tmp, v) {
    n = count[src, name]
    if (!n) return 0
    for (i = 1; i <= n; i++) v[i] = vals[src, name, i]
    for (i = 2; i <= n; i++) {
        tmp = v[i]
        for (j = i - 1; j >= 1 && v[j] > tmp; j--) v[j + 1] = v[j]
        v[j + 1] = tmp
    }
    return v[int((n + 1) / 2)]
}
FNR == NR { if ($0 ~ /^Benchmark/) record("base", $0); next }
           { if ($0 ~ /^Benchmark/) record("cur", $0) }
END {
    fail = 0
    for (name in seen) {
        b = median("base", name); c = median("cur", name)
        if (b <= 0 || c <= 0) continue
        delta = (c - b) / b * 100
        printf "%-28s base=%.0fns cur=%.0fns delta=%+.1f%%\n", name, b, c, delta
        if (delta > threshold) {
            printf "FAIL: %s regressed %.1f%% (> %s%% threshold)\n", name, delta, threshold
            fail = 1
        }
    }
    seq = median("cur", "BenchmarkSweep4Sequential")
    mux = median("cur", "BenchmarkSweep4Multiplexed")
    if (seq > 0 && mux > 0) {
        speedup = seq / mux
        printf "sweep4 multiplex speedup: %.2fx (gate: >= %sx)\n", speedup, speedupMin
        if (speedup < speedupMin) {
            printf "FAIL: multiplexed sweep speedup %.2fx below %sx\n", speedup, speedupMin
            fail = 1
        }
    } else {
        print "FAIL: sweep benchmark pair missing from current run"
        fail = 1
    }
    exit fail
}
' "$BASELINE" "$current"
