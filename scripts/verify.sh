#!/usr/bin/env bash
# verify.sh — the repository's one verification entry point. CI's core
# gate runs exactly this; run it locally before pushing and the two
# cannot disagree about what "clean" means.
#
# Steps, in order (fail-fast):
#   1. go vet
#   2. go build
#   3. vetadr, all rules, whole tree        (exit 1 on any finding)
#   4. vetadr -suppressions                 (stale rule / empty reason)
#   5. README rule catalogue in sync        (scripts/update-rule-catalogue.sh -check)
#   6. go test -race                        (-quick: go test -short, no race)
#   7. workload smoke: IN2P3 adapt + fit + 2x upscale replay, scenario
#      report into out/workload-report.txt
#
# Usage:
#   scripts/verify.sh          # the full gate, what CI runs
#   scripts/verify.sh -quick   # -short tests, no race detector
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

quick=0
case "${1:-}" in
    "") ;;
    -quick) quick=1 ;;
    *) echo "usage: scripts/verify.sh [-quick]" >&2; exit 2 ;;
esac

step() { printf '\n--- %s\n' "$*"; }

step "go vet"
go vet ./...

step "go build"
go build ./...

step "static analysis (vetadr, all rules)"
go run ./cmd/vetadr ./...

step "suppression audit (vetadr -suppressions)"
go run ./cmd/vetadr -suppressions ./...

step "rule catalogue in sync with the analyzer registry"
"$ROOT/scripts/update-rule-catalogue.sh" -check

if [ "$quick" = 1 ]; then
    step "go test -short"
    go test -short ./...
else
    step "go test -race"
    go test -race ./...
fi

step "workload smoke (IN2P3 adapt + fit + 2x upscale + scenario report)"
mkdir -p out
smoke="$(mktemp -d)"
trap 'rm -rf "$smoke"' EXIT
go run ./cmd/tracegen -out "$smoke/real" -seed 7 \
    -from-in2p3 internal/workload/testdata/in2p3_sample.csv -fit "$smoke/model.json"
go run ./cmd/tracegen -out "$smoke/big" -seed 7 \
    -model "$smoke/model.json" -scale 2 -vfs-snapshot-out "$smoke/big.snap"
go run ./cmd/simulate -data "$smoke/big" -vfs-snapshot "$smoke/big.snap" \
    -lifetime 90 -interval 7 -target 0.5 -shards 4 >/dev/null
go run ./cmd/report -data "$smoke/real" -fig workload -o out/workload-report.txt
grep -q 'regen 10x' out/workload-report.txt

printf '\nverify: OK\n'
