#!/usr/bin/env bash
# verify.sh — the repository's one verification entry point. CI's core
# gate runs exactly this; run it locally before pushing and the two
# cannot disagree about what "clean" means.
#
# Steps, in order (fail-fast):
#   1. go vet
#   2. go build
#   3. vetadr, all rules, whole tree        (exit 1 on any finding)
#   4. vetadr -suppressions                 (stale rule / empty reason)
#   5. README rule catalogue in sync        (scripts/update-rule-catalogue.sh -check)
#   6. go test -race                        (-quick: go test -short, no race)
#
# Usage:
#   scripts/verify.sh          # the full gate, what CI runs
#   scripts/verify.sh -quick   # -short tests, no race detector
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

quick=0
case "${1:-}" in
    "") ;;
    -quick) quick=1 ;;
    *) echo "usage: scripts/verify.sh [-quick]" >&2; exit 2 ;;
esac

step() { printf '\n--- %s\n' "$*"; }

step "go vet"
go vet ./...

step "go build"
go build ./...

step "static analysis (vetadr, all rules)"
go run ./cmd/vetadr ./...

step "suppression audit (vetadr -suppressions)"
go run ./cmd/vetadr -suppressions ./...

step "rule catalogue in sync with the analyzer registry"
"$ROOT/scripts/update-rule-catalogue.sh" -check

if [ "$quick" = 1 ]; then
    step "go test -short"
    go test -short ./...
else
    step "go test -race"
    go test -race ./...
fi

printf '\nverify: OK\n'
