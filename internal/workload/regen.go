package workload

// Regeneration: turn a fitted Model back into a replayable trace, at
// 1x or at a user-scale multiplier. Every clone of a source user gets
// its own deterministic random stream derived from (seed, clone id),
// independent of emission order — the same contract synth's streamed
// generator keeps — so the upscaled snapshot can stream straight into
// a snapfile in ascending path order with one user's state live at a
// time.

import (
	"fmt"
	"sort"

	"activedr/internal/randx"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
)

// RegenConfig parameterizes regeneration.
type RegenConfig struct {
	// Scale clones each fitted user this many times (1 = same size).
	Scale int
	// Seed drives every random draw. 0 means 1.
	Seed uint64
	// SkipSnapshot leaves Dataset.Snapshot.Entries empty (Taken still
	// set) for replays that source the namespace from a snapfile
	// written by StreamSnapshot — the out-of-core path for big scales.
	SkipSnapshot bool
}

func (c RegenConfig) defaults() (RegenConfig, error) {
	if c.Scale < 1 {
		return c, fmt.Errorf("workload: regen scale %d, want >= 1", c.Scale)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c, nil
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// cloneSeed derives clone id's private stream seed.
func cloneSeed(seed uint64, id int) uint64 {
	return seed ^ (uint64(id+1) * 0x9e3779b97f4a7c15)
}

// cloneName formats clone id's login. Fixed width keeps name order,
// ID order, and path order aligned at any scale (the snapfile format
// and the shard merges key on path order).
func cloneName(id int) string { return fmt.Sprintf("w%07d", id) }

// regenFiles deterministically regenerates one clone's snapshot files
// from its strata: exact per-stratum counts and byte masses, ages
// interpolated across the stratum's range, sizes log-jittered then
// rescaled so the stratum's byte mass is exact. The first
// TouchedCount files of each stratum form the re-readable subset,
// sized to exactly TouchedBytes, and are flagged in the returned
// slice. Paths ascend with the file index.
func regenFiles(um *UserModel, id int, seed uint64) ([]trace.SnapshotEntry, []bool) {
	src := randx.New(cloneSeed(seed, id))
	name := cloneName(id)
	stripes := int(um.MeanStripes + 0.5)
	if stripes < 1 {
		stripes = 1
	}
	entries := make([]trace.SnapshotEntry, 0, um.Files())
	touched := make([]bool, 0, um.Files())
	idx := 0
	for _, st := range um.Strata {
		if st.Count == 0 {
			continue
		}
		// Log-jittered weights, rescaled per group to the exact masses.
		bytesT := st.TouchedBytes
		if st.TouchedCount == st.Count {
			bytesT = st.Bytes // degenerate split: everything is touched
		}
		bytesU := st.Bytes - bytesT
		weights := make([]float64, st.Count)
		var wT, wU float64
		for k := range weights {
			weights[k] = src.LogNormal(0, 0.6)
			if k < st.TouchedCount {
				wT += weights[k]
			} else {
				wU += weights[k]
			}
		}
		var asgT, asgU int64
		for k := 0; k < st.Count; k++ {
			ageDays := st.AgeLoDays + (st.AgeHiDays-st.AgeLoDays)*(float64(k)+0.5)/float64(st.Count)
			isTouched := k < st.TouchedCount
			var size int64
			if isTouched {
				size = int64(float64(bytesT) * weights[k] / wT)
				if k == st.TouchedCount-1 {
					size = bytesT - asgT // exact mass, remainder to the last file
				}
				if size < 0 {
					size = 0
				}
				asgT += size
			} else {
				size = int64(float64(bytesU) * weights[k] / wU)
				if k == st.Count-1 {
					size = bytesU - asgU
				}
				if size < 0 {
					size = 0
				}
				asgU += size
			}
			entries = append(entries, trace.SnapshotEntry{
				Path:    fmt.Sprintf("/lustre/in2p3/%s/f%05d.dat", name, idx),
				Size:    size,
				Stripes: stripes,
				ATime:   timeutil.Time(0).Add(-timeutil.Duration(ageDays * float64(timeutil.Day))), // rebased by caller
			})
			touched = append(touched, isTouched)
			idx++
		}
	}
	return entries, touched
}

// StreamSnapshot regenerates the scaled snapshot one entry at a time
// in strictly ascending path order (clone ID order, file index order
// within a clone) and hands each to emit, holding one clone's files
// at a time. Returns the number of entries emitted.
func StreamSnapshot(m *Model, cfg RegenConfig, emit func(trace.SnapshotEntry) error) (int, error) {
	cfg, err := cfg.defaults()
	if err != nil {
		return 0, err
	}
	if err := m.Validate(); err != nil {
		return 0, err
	}
	total := 0
	for id := 0; id < len(m.Users)*cfg.Scale; id++ {
		um := &m.Users[id/cfg.Scale]
		files, _ := regenFiles(um, id, cfg.Seed)
		for _, e := range files {
			e.User = trace.UserID(id)
			e.ATime = m.Taken.Add(timeutil.Duration(e.ATime)) // rebase the age offset onto Taken
			if err := emit(e); err != nil {
				return total, err
			}
			total++
		}
	}
	return total, nil
}

// Regen regenerates a full dataset from the model at cfg.Scale. The
// event log (jobs, accesses, logins) is materialized in memory — it
// scales with Scale x the fitted event counts — while the snapshot
// can be left to StreamSnapshot with cfg.SkipSnapshot for out-of-core
// replays.
func Regen(m *Model, cfg RegenConfig) (*trace.Dataset, error) {
	cfg, err := cfg.defaults()
	if err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	taken := m.Taken
	weeks := (m.SpanDays + 6) / 7
	d := &trace.Dataset{}
	d.Snapshot.Taken = taken

	for id := 0; id < len(m.Users)*cfg.Scale; id++ {
		um := &m.Users[id/cfg.Scale]
		name := cloneName(id)
		files, touchedFlags := regenFiles(um, id, cfg.Seed)
		// Only the touched subset is re-readable: the rest ages out
		// exactly like the source files the trace never came back for.
		pool := make([]poolFile, 0, len(files))
		for k := range files {
			if touchedFlags[k] {
				pool = append(pool, poolFile{path: files[k].Path, size: files[k].Size,
					atime: taken.Add(timeutil.Duration(files[k].ATime))})
			}
		}
		// The event stream draws from a source independent of the
		// snapshot draws so adding event kinds never perturbs the
		// namespace (and vice versa).
		src := randx.New(cloneSeed(cfg.Seed, id) ^ 0xa5a5_5a5a_c3c3_3c3c)
		d.Users = append(d.Users, trace.User{
			ID:      trace.UserID(id),
			Name:    name,
			Created: taken.Add(-timeutil.Duration(src.Int64n(int64(2 * 365 * timeutil.Day)))),
		})
		if !cfg.SkipSnapshot {
			for k := range files {
				e := files[k]
				e.User = trace.UserID(id)
				e.ATime = taken.Add(timeutil.Duration(e.ATime))
				d.Snapshot.Entries = append(d.Snapshot.Entries, e)
			}
		}

		// Cadence is pinned, not redrawn: every clone replays the fitted
		// activeness vector verbatim — exact week positions, per-week
		// job counts, and per-week core-hour mass. A refit then
		// reproduces ActiveWeekFrac to within rounding, and the rank
		// formula the policies key on (which zeroes on any empty period
		// and weighs per-period impact ratios) sees the same dormancy
		// windows and impact profile as the source — i.i.d. weekly
		// draws let small populations drift across class thresholds and
		// smear the purge timing.
		cadence := um.Cadence
		if len(cadence) == 0 && um.ActiveWeekFrac > 0 {
			// Model without a vector (hand-built): draw the positions
			// and spread the mean cadence across them.
			nActive := int(um.ActiveWeekFrac*float64(weeks) + 0.5)
			if nActive == 0 {
				nActive = 1
			}
			if nActive > weeks {
				nActive = weeks
			}
			wk := make([]int, weeks)
			for i := range wk {
				wk[i] = i
			}
			for i := 0; i < nActive; i++ { // partial Fisher-Yates
				j := i + src.Intn(weeks-i)
				wk[i], wk[j] = wk[j], wk[i]
			}
			active := append([]int(nil), wk[:nActive]...)
			sort.Ints(active)
			totalJobs := int(float64(nActive)*um.JobsPerActiveWeek + 0.5)
			if totalJobs < nActive {
				totalJobs = nActive // fit counts a week active only if it has a job
			}
			for wi, w := range active {
				nJobs := totalJobs/nActive + boolToInt(wi < totalJobs%nActive)
				cadence = append(cadence, WeekActivity{Week: w, Jobs: nJobs,
					CoreHours: float64(nJobs) * um.MeanCores * um.MeanDurationH})
			}
		}

		// Create accesses are emitted with drawn sizes, then rescaled
		// below so the clone's created byte mass is exactly the fitted
		// CreatedBytes — created bytes dominate purge totals, and the
		// heavy-tailed size draw is too noisy to leave free.
		accStart := len(d.Accesses)
		var createIdx []int
		var createWeight []float64

		// Re-reads pace through the fitted per-file gap histogram: each
		// pick targets the bucket furthest behind its fitted share, and
		// within the bucket the candidate whose size best tracks the
		// bucket's byte pace. Long-gap "resurrections" — the re-reads
		// that miss under a retention policy and drag restore churn
		// with them — thus arrive with the source's frequency and mass
		// instead of riding on uniform-pick luck.
		gapFit := um.GapHist
		gapTotal := 0
		for _, b := range gapFit {
			gapTotal += b.Count
		}
		var gapEmitCount [NumGapBuckets]int
		var gapEmitBytes [NumGapBuckets]int64
		rereadIdx := 0
		pickReread := func(at timeutil.Time) int {
			if gapTotal == 0 { // no histogram (hand-built model): uniform
				return src.Intn(len(pool))
			}
			bucketOf := func(pi int) int {
				gapDays := float64(at.Sub(pool[pi].atime)) / float64(timeutil.Day)
				if gapDays < 0 {
					gapDays = 0
				}
				return gapBucket(gapDays)
			}
			want, bestDef := -1, 0.0
			for i := range gapFit {
				if gapFit[i].Count == 0 {
					continue
				}
				def := float64(gapFit[i].Count)*float64(rereadIdx+1)/float64(gapTotal) - float64(gapEmitCount[i])
				if want == -1 || def > bestDef {
					want, bestDef = i, def
				}
			}
			for radius := 0; radius < NumGapBuckets; radius++ {
				for _, bb := range [2]int{want - radius, want + radius} {
					if bb < 0 || bb >= NumGapBuckets {
						continue
					}
					remPicks := gapFit[bb].Count - gapEmitCount[bb]
					if remPicks < 1 {
						remPicks = 1
					}
					target := float64(gapFit[bb].Bytes-gapEmitBytes[bb]) / float64(remPicks)
					pick, bestDiff := -1, 0.0
					for pi := range pool {
						if bucketOf(pi) != bb {
							continue
						}
						diff := float64(pool[pi].size) - target
						if diff < 0 {
							diff = -diff
						}
						if pick == -1 || diff < bestDiff {
							pick, bestDiff = pi, diff
						}
					}
					if pick >= 0 {
						return pick
					}
				}
			}
			return src.Intn(len(pool)) // unreachable: every file has a bucket
		}

		// Touch and create counts are paced, not drawn: the clone emits
		// exactly round(TouchesPerJob x jobs) accesses, with creates
		// spread through them at CreateFrac by largest-remainder pacing.
		// Count-level noise feeds straight into miss/restore churn,
		// which is what the purge-total fidelity check measures.
		totalJobs := 0
		for _, wa := range cadence {
			totalJobs += wa.Jobs
		}
		totalTouches := int(um.TouchesPerJob*float64(totalJobs) + 0.5)
		if totalTouches < totalJobs {
			totalTouches = totalJobs // fit divides accesses by jobs, so >= 1 each
		}
		jobIdx, touchCount, createCount := 0, 0, 0

		lastLoginDay := -1 << 30
		genFile := 0
		for _, wa := range cadence {
			weekStart := taken.Add(timeutil.Duration(wa.Week) * timeutil.Week)
			// Split the week's core-hour mass across its jobs: durations
			// are drawn (they set the access-time spread), cores are
			// back-solved from each job's share so the week's total
			// impact tracks the fitted one.
			durHArr := make([]float64, wa.Jobs)
			shares := make([]float64, wa.Jobs)
			var totalShare float64
			for j := range durHArr {
				durH := src.Exp(um.MeanDurationH)
				if durH < 0.02 {
					durH = 0.02
				}
				if durH > 7*24 {
					durH = 7 * 24
				}
				durHArr[j] = durH
				shares[j] = src.Exp(1) + 0.05
				totalShare += shares[j]
			}
			for j := 0; j < wa.Jobs; j++ {
				submit := weekStart.Add(timeutil.Duration(src.Int64n(int64(timeutil.Week))))
				durH := durHArr[j]
				cores := int(wa.CoreHours*shares[j]/totalShare/durH + 0.5)
				if cores < 1 {
					cores = 1
				}
				if cores > 1<<20 {
					cores = 1 << 20
				}
				duration := timeutil.Duration(durH * float64(timeutil.Hour))
				d.Jobs = append(d.Jobs, trace.Job{User: trace.UserID(id), Submit: submit,
					Duration: duration, Cores: cores})
				if day := submit.DayIndex(); day != lastLoginDay {
					lastLoginDay = day
					d.Logins = append(d.Logins, trace.Login{User: trace.UserID(id), TS: submit})
				}

				nTouch := totalTouches/totalJobs + boolToInt(jobIdx < totalTouches%totalJobs)
				jobIdx++
				for k := 0; k < nTouch; k++ {
					at := submit.Add(timeutil.Duration(src.Int64n(int64(duration) + 1)))
					isCreate := int(float64(touchCount+1)*um.CreateFrac+1e-9) > createCount
					touchCount++
					if isCreate || len(pool) == 0 {
						createCount++
						size := int64(src.LogNormal(16.0, 2.0)) + 4096
						pf := poolFile{
							path: fmt.Sprintf("/lustre/in2p3/%s/g%06d.dat", name, genFile),
							size: size, atime: at,
						}
						genFile++
						pool = append(pool, pf)
						createIdx = append(createIdx, len(d.Accesses))
						// Budget shares use a moderate jitter, not the raw
						// heavy-tailed size draw: one giant synthetic file
						// cycling through purge/miss/restore would swamp
						// the purge totals with sampling noise.
						createWeight = append(createWeight, src.LogNormal(0, 0.6))
						d.Accesses = append(d.Accesses, trace.Access{
							TS: at, User: trace.UserID(id), Create: true, Path: pf.path, Size: size,
						})
					} else {
						pick := pickReread(at)
						pf := &pool[pick]
						gapDays := float64(at.Sub(pf.atime)) / float64(timeutil.Day)
						if gapDays < 0 {
							gapDays = 0
						}
						b := gapBucket(gapDays)
						gapEmitCount[b]++
						gapEmitBytes[b] += pf.size
						rereadIdx++
						if at.After(pf.atime) {
							pf.atime = at
						}
						d.Accesses = append(d.Accesses, trace.Access{
							TS: at, User: trace.UserID(id), Create: false, Path: pf.path, Size: pf.size,
						})
					}
				}
			}
		}

		// Rescale this clone's creates to the exact fitted byte budget,
		// then patch the re-reads that copied a created file's size.
		if len(createIdx) > 0 && um.CreatedBytes > 0 {
			var totalW float64
			for _, w := range createWeight {
				totalW += w
			}
			resized := make(map[string]int64, len(createIdx))
			var assigned int64
			for k, ai := range createIdx {
				size := int64(float64(um.CreatedBytes) * createWeight[k] / totalW)
				if k == len(createIdx)-1 {
					size = um.CreatedBytes - assigned
				}
				if size < 0 {
					size = 0
				}
				assigned += size
				d.Accesses[ai].Size = size
				resized[d.Accesses[ai].Path] = size
			}
			for ai := accStart; ai < len(d.Accesses); ai++ {
				a := &d.Accesses[ai]
				if !a.Create {
					if size, ok := resized[a.Path]; ok {
						a.Size = size
					}
				}
			}
		}
	}

	d.SortJobs()
	d.SortAccesses()
	sort.SliceStable(d.Logins, func(i, j int) bool { return d.Logins[i].TS < d.Logins[j].TS })
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("workload: regenerated dataset invalid: %w", err)
	}
	return d, nil
}
