package workload

// Fitting: compress a loaded trace into the Model. One pass over the
// dataset groups records per user; internal/stats does the moment and
// quantile work.

import (
	"fmt"
	"math"
	"sort"

	"activedr/internal/stats"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
)

// maxStrata bounds the per-user age sketch. Eight equal-count bands
// keep the model small while pinning the joint age/mass structure
// tightly enough for the retention policies (whose behavior is a
// function of age bands, not individual files).
const maxStrata = 8

// Fit fits the workload model to a dataset. The dataset must be
// valid; the trace window is [Snapshot.Taken, last event].
func Fit(ds *trace.Dataset) (*Model, error) {
	if len(ds.Users) == 0 {
		return nil, fmt.Errorf("workload: cannot fit an empty user table")
	}
	taken := ds.Snapshot.Taken
	end := taken
	for i := range ds.Jobs {
		if t := ds.Jobs[i].Submit.Add(ds.Jobs[i].Duration); t.After(end) {
			end = t
		}
	}
	if n := len(ds.Accesses); n > 0 && ds.Accesses[n-1].TS.After(end) {
		end = ds.Accesses[n-1].TS
	}
	spanDays := int(end.Sub(taken) / timeutil.Day)
	if spanDays < 1 {
		spanDays = 1
	}
	weeks := (spanDays + 6) / 7

	m := &Model{Version: ModelVersion, Taken: taken, SpanDays: spanDays,
		Users: make([]UserModel, len(ds.Users))}
	for i := range ds.Users {
		m.Users[i].Name = ds.Users[i].Name
	}

	// Jobs: per-user cadence.
	type weekAgg struct {
		jobs      int
		coreHours float64
	}
	type jobAgg struct {
		weeks     map[int]weekAgg
		cores     stats.Summary
		durationH stats.Summary
		n         int
	}
	jobs := make([]jobAgg, len(ds.Users))
	for i := range ds.Jobs {
		j := &ds.Jobs[i]
		a := &jobs[j.User]
		if a.weeks == nil {
			a.weeks = map[int]weekAgg{}
		}
		w := int(j.Submit.Sub(taken) / timeutil.Week)
		wa := a.weeks[w]
		wa.jobs++
		wa.coreHours += j.CoreHours()
		a.weeks[w] = wa
		a.cores.Add(float64(j.Cores))
		a.durationH.Add(float64(j.Duration) / float64(timeutil.Hour))
		a.n++
	}

	// Accesses: touches, creates, inter-access gaps.
	type accAgg struct {
		n, creates   int
		createdBytes int64
		lastTS       timeutil.Time
		gapsDays     []float64
	}
	accs := make([]accAgg, len(ds.Users))
	accessedPaths := make(map[string]bool, len(ds.Accesses))
	// Per-file last-access times, seeded from the snapshot atimes, feed
	// the per-file re-read gap histogram.
	fileLast := make(map[string]timeutil.Time, len(ds.Snapshot.Entries)+len(ds.Accesses))
	for i := range ds.Snapshot.Entries {
		fileLast[ds.Snapshot.Entries[i].Path] = ds.Snapshot.Entries[i].ATime
	}
	gapHists := make([][NumGapBuckets]GapBucket, len(ds.Users))
	for i := range ds.Accesses {
		a := &ds.Accesses[i]
		if !a.Create {
			accessedPaths[a.Path] = true
			if last, ok := fileLast[a.Path]; ok {
				gapDays := float64(a.TS.Sub(last)) / float64(timeutil.Day)
				if gapDays < 0 {
					gapDays = 0
				}
				b := gapBucket(gapDays)
				gapHists[a.User][b].Count++
				gapHists[a.User][b].Bytes += a.Size
			}
		}
		fileLast[a.Path] = a.TS
		g := &accs[a.User]
		if g.n > 0 {
			g.gapsDays = append(g.gapsDays, float64(a.TS.Sub(g.lastTS))/float64(timeutil.Day))
		}
		g.lastTS = a.TS
		g.n++
		if a.Create {
			g.creates++
			g.createdBytes += a.Size
		}
	}

	// Snapshot: per-user strata over files sorted by age.
	type snapFile struct {
		ageDays float64
		size    int64
		stripes int
		touched bool
	}
	snaps := make([][]snapFile, len(ds.Users))
	for i := range ds.Snapshot.Entries {
		e := &ds.Snapshot.Entries[i]
		age := float64(taken.Sub(e.ATime)) / float64(timeutil.Day)
		if age < 0 {
			age = 0
		}
		snaps[e.User] = append(snaps[e.User], snapFile{ageDays: age, size: e.Size,
			stripes: e.Stripes, touched: accessedPaths[e.Path]})
	}

	for u := range m.Users {
		um := &m.Users[u]
		ja := &jobs[u]
		if ja.n > 0 {
			active := len(ja.weeks)
			um.ActiveWeekFrac = float64(active) / float64(weeks)
			if um.ActiveWeekFrac > 1 {
				um.ActiveWeekFrac = 1
			}
			for w, wa := range ja.weeks {
				if w >= 0 && w < weeks {
					um.Cadence = append(um.Cadence, WeekActivity{Week: w, Jobs: wa.jobs, CoreHours: wa.coreHours})
				}
			}
			sort.Slice(um.Cadence, func(a, b int) bool { return um.Cadence[a].Week < um.Cadence[b].Week })
			um.JobsPerActiveWeek = float64(ja.n) / float64(active)
			um.MeanCores = ja.cores.Mean()
			um.MeanDurationH = ja.durationH.Mean()
			um.TouchesPerJob = float64(accs[u].n) / float64(ja.n)
		}
		if accs[u].n > 0 {
			um.CreateFrac = float64(accs[u].creates) / float64(accs[u].n)
			um.CreatedBytes = accs[u].createdBytes
		}
		if gaps := accs[u].gapsDays; len(gaps) > 0 {
			sort.Float64s(gaps)
			um.GapP50Days = stats.Quantile(gaps, 0.5)
			um.GapP90Days = stats.Quantile(gaps, 0.9)
		}
		for _, b := range gapHists[u] {
			if b.Count > 0 {
				um.GapHist = append([]GapBucket(nil), gapHists[u][:]...)
				break
			}
		}

		files := snaps[u]
		sort.Slice(files, func(i, j int) bool { return files[i].ageDays < files[j].ageDays })
		var stripes stats.Summary
		for _, f := range files {
			stripes.Add(float64(f.stripes))
		}
		if len(files) > 0 {
			um.MeanStripes = stripes.Mean()
		}
		nStrata := maxStrata
		if len(files) < nStrata {
			nStrata = len(files)
		}
		for s := 0; s < nStrata; s++ {
			lo := s * len(files) / nStrata
			hi := (s + 1) * len(files) / nStrata
			st := Stratum{Count: hi - lo,
				AgeLoDays: files[lo].ageDays, AgeHiDays: files[hi-1].ageDays}
			for _, f := range files[lo:hi] {
				st.Bytes += f.size
				if f.touched {
					st.TouchedCount++
					st.TouchedBytes += f.size
				}
			}
			um.Strata = append(um.Strata, st)
		}
		// NaN guards: a user with no jobs or files fits as all-zero,
		// which Regen treats as dormant-with-nothing.
		for _, v := range []*float64{&um.ActiveWeekFrac, &um.JobsPerActiveWeek, &um.MeanCores,
			&um.MeanDurationH, &um.TouchesPerJob, &um.CreateFrac, &um.MeanStripes} {
			if math.IsNaN(*v) || math.IsInf(*v, 0) {
				*v = 0
			}
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
