package workload

// Reconstruction fidelity: the acceptance checks for the
// TraceTracker-style fit/regen loop.
//
//   - At 1x, a fitted-and-regenerated trace must reproduce the source's
//     per-user activeness-class shares and per-policy purge totals
//     within 5% of the source replay.
//   - At 10x, the upscaled trace must replay end-to-end through the
//     snapfile + sharded-VFS path without materializing the snapshot
//     in the dataset.

import (
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"activedr/internal/sim"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
	"activedr/internal/vfs"
)

// replayTotals runs both policies and returns (purged bytes, misses)
// per policy keyed "flt"/"activedr".
func replayTotals(t *testing.T, em *sim.Emulator) map[string][2]int64 {
	t.Helper()
	out := map[string][2]int64{}
	flt, err := em.Run(em.NewFLT())
	if err != nil {
		t.Fatal(err)
	}
	adrPolicy, err := em.NewActiveDR()
	if err != nil {
		t.Fatal(err)
	}
	adr, err := em.Run(adrPolicy)
	if err != nil {
		t.Fatal(err)
	}
	sum := func(r *sim.Result) [2]int64 {
		var b int64
		for _, rep := range r.Reports {
			b += rep.PurgedBytes
		}
		return [2]int64{b, r.TotalMisses}
	}
	out["flt"] = sum(flt)
	out["activedr"] = sum(adr)
	return out
}

func within(got, want, tol float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(got-want)/math.Abs(want) <= tol
}

var fidelityCfg = sim.Config{
	Lifetime:          timeutil.Days(90),
	TriggerInterval:   timeutil.Days(7),
	TargetUtilization: 0.5,
}

// TestReconstructionFidelity1x is the 5% acceptance check, run on the
// bundled IN2P3 sample: fit the adapted trace, regenerate at 1x, and
// compare class shares and per-policy purge totals against the source
// replay.
func TestReconstructionFidelity1x(t *testing.T) {
	src, _ := loadSample(t)
	m, err := Fit(src)
	if err != nil {
		t.Fatal(err)
	}

	// The model must serialize and come back identical — the tracegen
	// -fit / -scale flags pass through this file.
	path := filepath.Join(t.TempDir(), "model.json")
	if err := SaveModel(path, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, loaded) {
		t.Fatal("model does not survive the JSON round trip")
	}

	regen, err := Regen(loaded, RegenConfig{Scale: 1, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if len(regen.Users) != len(src.Users) {
		t.Fatalf("1x regen has %d users, want %d", len(regen.Users), len(src.Users))
	}
	// Snapshot mass is pinned exactly, not just within tolerance: the
	// strata carry exact per-user byte masses.
	if got, want := regen.Snapshot.TotalBytes(), src.Snapshot.TotalBytes(); got != want {
		t.Fatalf("1x regen snapshot bytes = %d, want exactly %d", got, want)
	}
	if got, want := len(regen.Snapshot.Entries), len(src.Snapshot.Entries); got != want {
		t.Fatalf("1x regen snapshot files = %d, want exactly %d", got, want)
	}

	// Class shares: refit the regenerated trace; every class's share
	// must land within 5 percentage points of the source fit.
	refit, err := Fit(regen)
	if err != nil {
		t.Fatal(err)
	}
	srcShares, regenShares := m.ClassShares(), refit.ClassShares()
	for _, class := range []string{ClassDormant, ClassCasual, ClassSteady, ClassPower} {
		if diff := math.Abs(srcShares[class] - regenShares[class]); diff > 0.05 {
			t.Errorf("class %q share drifted %.3f (source %.3f, regen %.3f)",
				class, diff, srcShares[class], regenShares[class])
		}
	}

	// Per-policy purge totals within 5% of the source replay.
	srcEm, err := sim.New(src, fidelityCfg)
	if err != nil {
		t.Fatal(err)
	}
	regenEm, err := sim.New(regen, fidelityCfg)
	if err != nil {
		t.Fatal(err)
	}
	srcTotals := replayTotals(t, srcEm)
	regenTotals := replayTotals(t, regenEm)
	for policy, want := range srcTotals {
		got := regenTotals[policy]
		if !within(float64(got[0]), float64(want[0]), 0.05) {
			t.Errorf("%s purge total %d vs source %d: off by %.1f%%, want <= 5%%",
				policy, got[0], want[0], 100*math.Abs(float64(got[0]-want[0]))/float64(want[0]))
		}
		t.Logf("%s: purged %d (source %d), misses %d (source %d)",
			policy, got[0], want[0], got[1], want[1])
	}
}

// TestRegenDeterminism pins the regeneration contract: same model,
// same config, bit-identical dataset; a different seed varies it.
func TestRegenDeterminism(t *testing.T) {
	src, _ := loadSample(t)
	m, err := Fit(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Regen(m, RegenConfig{Scale: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Regen(m, RegenConfig{Scale: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("regen is not deterministic")
	}
	c, err := Regen(m, RegenConfig{Scale: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Accesses, c.Accesses) {
		t.Fatal("seed did not vary the regenerated accesses")
	}
	// Scale multiplies the population and the snapshot mass exactly.
	if len(a.Users) != 2*len(src.Users) {
		t.Fatalf("2x regen has %d users, want %d", len(a.Users), 2*len(src.Users))
	}
	if got, want := a.Snapshot.TotalBytes(), 2*src.Snapshot.TotalBytes(); got != want {
		t.Fatalf("2x regen snapshot bytes = %d, want exactly %d", got, want)
	}
}

// TestStreamSnapshotMatchesRegen proves the streaming path emits the
// same namespace Regen materializes, in strictly ascending path order
// — the invariant the snapfile writer and the shard merges key on.
func TestStreamSnapshotMatchesRegen(t *testing.T) {
	src, _ := loadSample(t)
	m, err := Fit(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := RegenConfig{Scale: 3, Seed: 17}
	full, err := Regen(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []trace.SnapshotEntry
	n, err := StreamSnapshot(m, cfg, func(e trace.SnapshotEntry) error {
		streamed = append(streamed, e)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(streamed) || !reflect.DeepEqual(streamed, full.Snapshot.Entries) {
		t.Fatalf("streamed snapshot (%d entries) differs from the materialized one (%d)",
			len(streamed), len(full.Snapshot.Entries))
	}
	for i := 1; i < len(streamed); i++ {
		if streamed[i].Path <= streamed[i-1].Path {
			t.Fatalf("stream not strictly ascending at %d: %q then %q",
				i, streamed[i-1].Path, streamed[i].Path)
		}
	}
}

// TestUpscaleReplaysOutOfCore is the 10x acceptance check: regenerate
// at 10x with the snapshot left out of the dataset, stream it into a
// snapfile, and replay both policies against the snapfile-backed
// sharded VFS — the exact out-of-core path a full-scale run takes.
func TestUpscaleReplaysOutOfCore(t *testing.T) {
	src, _ := loadSample(t)
	m, err := Fit(src)
	if err != nil {
		t.Fatal(err)
	}
	const scale = 10
	cfg := RegenConfig{Scale: scale, Seed: 23, SkipSnapshot: true}
	ds, err := Regen(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Snapshot.Entries) != 0 {
		t.Fatal("SkipSnapshot materialized snapshot entries anyway")
	}
	if len(ds.Users) != scale*len(src.Users) {
		t.Fatalf("10x regen has %d users, want %d", len(ds.Users), scale*len(src.Users))
	}

	snap := filepath.Join(t.TempDir(), "fs.snap")
	w, err := vfs.NewSnapfileWriter(snap, m.Taken)
	if err != nil {
		t.Fatal(err)
	}
	nStreamed, err := StreamSnapshot(m, cfg, func(e trace.SnapshotEntry) error {
		return w.Add(e.Path, vfs.FileMeta{User: e.User, Size: e.Size, Stripes: e.Stripes, ATime: e.ATime})
	})
	if err != nil {
		w.Abort()
		t.Fatal(err)
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}

	sf, err := vfs.OpenSnapfile(snap)
	if err != nil {
		t.Fatal(err)
	}
	base, err := vfs.LoadSnapfileFS(sf)
	if cerr := sf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	ds.Snapshot.Taken = sf.Taken()

	shardedCfg := fidelityCfg
	shardedCfg.Shards = 4
	em, err := sim.NewWithBase(ds, base, shardedCfg)
	if err != nil {
		t.Fatal(err)
	}
	totals := replayTotals(t, em)
	for policy, got := range totals {
		if got[0] == 0 {
			t.Errorf("%s purged nothing on the 10x replay", policy)
		}
		t.Logf("10x %s: purged %d bytes, %d misses", policy, got[0], got[1])
	}
	if nStreamed != scale*len(src.Snapshot.Entries) {
		t.Fatalf("streamed %d snapshot entries, want %d", nStreamed, scale*len(src.Snapshot.Entries))
	}
}
