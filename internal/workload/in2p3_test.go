package workload

import (
	"compress/gzip"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"activedr/internal/sim"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

const sampleCSV = "testdata/in2p3_sample.csv"

func loadSample(t *testing.T) (*trace.Dataset, *trace.ParseReport) {
	t.Helper()
	ds, rep, err := LoadIN2P3(sampleCSV, IN2P3Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return ds, rep
}

func TestLoadIN2P3Sample(t *testing.T) {
	ds, rep := loadSample(t)
	if len(rep.Errors) != 0 || rep.Truncated {
		t.Fatalf("clean sample reported dirty: %+v", rep)
	}
	if len(ds.Users) != 12 {
		t.Fatalf("users = %d, want 12", len(ds.Users))
	}
	if len(ds.Jobs) != rep.Lines-1 { // every data row is one job; line 1 is the header
		t.Fatalf("jobs = %d, want %d (one per data row)", len(ds.Jobs), rep.Lines-1)
	}
	if len(ds.Accesses) == 0 || len(ds.Snapshot.Entries) == 0 || len(ds.Logins) == 0 {
		t.Fatalf("synthesis left gaps: %d accesses, %d snapshot entries, %d logins",
			len(ds.Accesses), len(ds.Snapshot.Entries), len(ds.Logins))
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// The snapshot is the namespace as the trace window opens: taken at
	// the UTC midnight before the first event, every entry's atime at
	// or before it, every access after it.
	for i := range ds.Snapshot.Entries {
		if ds.Snapshot.Entries[i].ATime.After(ds.Snapshot.Taken) {
			t.Fatalf("snapshot entry %q accessed after the capture", ds.Snapshot.Entries[i].Path)
		}
	}
	if ds.Accesses[0].TS.Before(ds.Snapshot.Taken) {
		t.Fatalf("first access %d predates the snapshot %d", ds.Accesses[0].TS, ds.Snapshot.Taken)
	}

	// Same input, same options: bit-identical output.
	again, _, err := LoadIN2P3(sampleCSV, IN2P3Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds, again) {
		t.Fatal("adapter output is not deterministic")
	}
	// A different seed keeps the real records and reshapes only the
	// synthesized I/O.
	other, _, err := LoadIN2P3(sampleCSV, IN2P3Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds.Jobs, other.Jobs) {
		t.Fatal("seed changed the adapted job log")
	}
	if reflect.DeepEqual(ds.Accesses, other.Accesses) {
		t.Fatal("seed did not vary the synthesized accesses")
	}
}

func TestLoadIN2P3Quarantine(t *testing.T) {
	const path = "testdata/in2p3_malformed.csv"
	// Strict mode aborts on the first bad record with its line number.
	_, _, err := LoadIN2P3(path, IN2P3Options{})
	if err == nil {
		t.Fatal("strict load accepted malformed records")
	}
	if !strings.Contains(err.Error(), "line 3:") {
		t.Fatalf("strict err = %v, want it positioned at line 3", err)
	}

	ds, rep, err := LoadIN2P3(path, IN2P3Options{Lenient: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	wantLines := []int{3, 4, 5, 6, 8, 9}
	if len(rep.Errors) != len(wantLines) {
		t.Fatalf("quarantined %d records, want %d: %+v", len(rep.Errors), len(wantLines), rep.Errors)
	}
	for i, e := range rep.Errors {
		if e.Line != wantLines[i] {
			t.Errorf("quarantine %d at line %d, want %d (%s)", i, e.Line, wantLines[i], e.Reason)
		}
	}
	if len(ds.Jobs) != 4 || len(ds.Users) != 3 {
		t.Fatalf("salvaged %d jobs / %d users, want 4 / 3", len(ds.Jobs), len(ds.Users))
	}

	// The two DST rows are valid records whose local wall clocks must
	// normalize exactly the way the timeutil parse edge pins: the
	// spring-gap 02:30 shifts forward to 01:30Z, the ambiguous
	// fall-back 02:30 maps to the post-transition 01:30Z.
	var springOK, fallOK bool
	for _, j := range ds.Jobs {
		switch int64(j.Submit) {
		case 1711848600:
			springOK = true
		case 1729992600:
			fallOK = true
		}
	}
	if !springOK || !fallOK {
		t.Fatalf("DST rows mis-normalized (spring=%v fall=%v): %+v", springOK, fallOK, ds.Jobs)
	}

	// A one-record cap aborts even in lenient mode, naming the file.
	_, _, err = LoadIN2P3(path, IN2P3Options{Lenient: true, MaxErrors: 1})
	if err == nil || !strings.Contains(err.Error(), "more than 1 malformed") {
		t.Fatalf("MaxErrors cap not enforced: %v", err)
	}
}

func TestLoadIN2P3HeaderErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name, content, wantErr string
	}{
		{"empty.csv", "", "no header"},
		{"nouser.csv", "a,b,c\n1,2,3\n", "no user column"},
		{"nocores.csv", "user,end_time\nu1,2024-01-01 00:00:00\n", "no cores column"},
		{"notime.csv", "user,cores\nu1,4\n", "no end-time column"},
		{"norecords.csv", "user,cores,submit_time,end_time\n", "no usable records"},
	}
	for _, tc := range cases {
		if _, _, err := LoadIN2P3(write(tc.name, tc.content), IN2P3Options{Lenient: true}); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.wantErr)
		}
	}
	if _, _, err := LoadIN2P3(filepath.Join(dir, "absent.csv"), IN2P3Options{}); err == nil {
		t.Error("missing file accepted")
	}
	if _, _, err := LoadIN2P3(sampleCSV, IN2P3Options{Zone: "No/Such_Zone"}); err == nil {
		t.Error("unknown zone accepted")
	}
}

// TestLoadIN2P3TSVAndGzip pins the format sniffing: the same records
// as TSV and as gzipped CSV adapt to the identical dataset.
func TestLoadIN2P3TSVAndGzip(t *testing.T) {
	raw, err := os.ReadFile(sampleCSV)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	tsv := filepath.Join(dir, "sample.tsv")
	if err := os.WriteFile(tsv, []byte(strings.ReplaceAll(string(raw), ",", "\t")), 0o644); err != nil {
		t.Fatal(err)
	}
	want, _ := loadSample(t)
	dsTSV, _, err := LoadIN2P3(tsv, IN2P3Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, dsTSV) {
		t.Fatal("TSV adaptation differs from CSV")
	}

	gz := filepath.Join(dir, "sample.csv.gz")
	if err := writeGzip(gz, raw); err != nil {
		t.Fatal(err)
	}
	dsGz, _, err := LoadIN2P3(gz, IN2P3Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, dsGz) {
		t.Fatal("gzipped adaptation differs from plain")
	}
}

// in2p3Golden is the round-trip fingerprint: adapter aggregates plus
// the per-policy replay outcome on the sample. Refresh with
// go test ./internal/workload -run TestIN2P3GoldenRoundTrip -update-golden
type in2p3Golden struct {
	Users           int   `json:"users"`
	Jobs            int   `json:"jobs"`
	Accesses        int   `json:"accesses"`
	Creates         int   `json:"creates"`
	Logins          int   `json:"logins"`
	SnapshotEntries int   `json:"snapshot_entries"`
	SnapshotBytes   int64 `json:"snapshot_bytes"`
	Taken           int64 `json:"taken"`
	FLTMisses       int64 `json:"flt_misses"`
	FLTPurged       int64 `json:"flt_purged_bytes"`
	ActiveDRMisses  int64 `json:"activedr_misses"`
	ActiveDRPurged  int64 `json:"activedr_purged_bytes"`
}

// TestIN2P3GoldenRoundTrip drives raw records → adapted trace → TSV
// round-trip → policy replay, and pins the whole chain against a
// golden fingerprint: any change to the adapter's synthesis, the
// trace writers, or the replay shows up as a diff here.
func TestIN2P3GoldenRoundTrip(t *testing.T) {
	ds, _ := loadSample(t)

	// TSV round-trip: the adapted dataset must survive WriteDataset /
	// LoadDataset bit-for-bit (modulo nothing — the schemas cover every
	// field the adapter fills).
	dir := t.TempDir()
	if err := trace.WriteDataset(dir, ds); err != nil {
		t.Fatal(err)
	}
	back, err := trace.LoadDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds, back) {
		t.Fatal("adapted dataset does not survive the TSV round trip")
	}

	em, err := sim.New(back, sim.Config{
		Lifetime:          timeutil.Days(90),
		TriggerInterval:   timeutil.Days(7),
		TargetUtilization: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	flt, err := em.Run(em.NewFLT())
	if err != nil {
		t.Fatal(err)
	}
	adrPolicy, err := em.NewActiveDR()
	if err != nil {
		t.Fatal(err)
	}
	adr, err := em.Run(adrPolicy)
	if err != nil {
		t.Fatal(err)
	}
	purged := func(r *sim.Result) int64 {
		var b int64
		for _, rep := range r.Reports {
			b += rep.PurgedBytes
		}
		return b
	}

	creates := 0
	for i := range ds.Accesses {
		if ds.Accesses[i].Create {
			creates++
		}
	}
	got := in2p3Golden{
		Users: len(ds.Users), Jobs: len(ds.Jobs), Accesses: len(ds.Accesses),
		Creates: creates, Logins: len(ds.Logins),
		SnapshotEntries: len(ds.Snapshot.Entries), SnapshotBytes: ds.Snapshot.TotalBytes(),
		Taken:     int64(ds.Snapshot.Taken),
		FLTMisses: flt.TotalMisses, FLTPurged: purged(flt),
		ActiveDRMisses: adr.TotalMisses, ActiveDRPurged: purged(adr),
	}

	goldenPath := "testdata/in2p3_golden.json"
	if *updateGolden {
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	var want in2p3Golden
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round-trip fingerprint drifted:\n got  %+v\n want %+v\n(refresh with -update-golden if the change is intentional)", got, want)
	}
}

// writeGzip writes blob gzipped to path.
func writeGzip(path string, blob []byte) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	gz := gzip.NewWriter(f)
	if _, err := gz.Write(blob); err != nil {
		return err
	}
	return gz.Close()
}
