package workload

// The fitted workload model: a TraceTracker-style compression of a
// loaded trace into per-user archetype parameters plus an exact
// per-user sketch of the snapshot namespace. The model is small (a
// few hundred bytes per user), serializes as JSON, and is everything
// Regen needs to reproduce the trace statistically — at 1x or at a
// 10-100x user-scale multiplier.

import (
	"encoding/json"
	"fmt"
	"os"

	"activedr/internal/timeutil"
)

// ModelVersion guards the serialized format.
const ModelVersion = 1

// Stratum is one age band of a user's snapshot files, sorted by age.
// Count and Bytes are exact — regeneration reproduces the user's file
// count and byte mass to the byte, which is what pins per-policy purge
// totals (ActiveDR's target is a fraction of total bytes; FLT's
// initial purge wave is the files older than the lifetime, bounded by
// the strata age ranges).
// TouchedCount/TouchedBytes split out the files the trace re-accessed
// at least once: regeneration confines re-reads to a subset with that
// exact count and mass, so the bytes the lifetime purge can never
// rescue match the source instead of riding on which heavy-tailed
// file a random pick happens to warm.
type Stratum struct {
	Count        int     `json:"count"`
	Bytes        int64   `json:"bytes"`
	TouchedCount int     `json:"touched_count"`
	TouchedBytes int64   `json:"touched_bytes"`
	AgeLoDays    float64 `json:"age_lo_days"`
	AgeHiDays    float64 `json:"age_hi_days"`
}

// WeekActivity is one active trace week of a user's cadence vector:
// how many jobs the week saw and their total core-hour impact.
type WeekActivity struct {
	Week      int     `json:"week"`
	Jobs      int     `json:"jobs"`
	CoreHours float64 `json:"core_hours"`
}

// Gap-histogram bucket edges, in days since the file's previous
// access. The edges are fixed by the format (not by any simulator
// lifetime), so the mass a given retention lifetime can never rescue
// is readable from the histogram for any lifetime choice.
var gapBucketEdgesDays = [...]float64{1, 7, 30, 90, 180, 365}

// NumGapBuckets is len(edges)+1: a final open bucket catches gaps
// beyond the last edge.
const NumGapBuckets = len(gapBucketEdgesDays) + 1

// gapBucket buckets a per-file re-read gap in days.
func gapBucket(gapDays float64) int {
	for i, e := range gapBucketEdgesDays {
		if gapDays < e {
			return i
		}
	}
	return NumGapBuckets - 1
}

// GapBucket is one bucket of a user's per-file re-read gap histogram:
// how many re-reads arrived after a gap in this band, and how many
// bytes they touched. Regeneration paces its re-read picks through
// the histogram, so the long-gap "resurrection" mass — the dominant
// driver of miss/restore churn under any retention lifetime — is
// reproduced instead of redrawn.
type GapBucket struct {
	Count int   `json:"count"`
	Bytes int64 `json:"bytes"`
}

// UserModel is one user's fitted archetype.
type UserModel struct {
	Name string `json:"name"`

	// Cadence: what fraction of trace weeks had at least one job, the
	// user's activeness vector (regen replays it verbatim — the rank
	// formula Φ zeroes on any empty period and weighs per-period
	// impact ratios, so dormancy windows and per-week core-hour mass
	// must line up with the source, not just their means), and how the
	// active weeks looked on average.
	ActiveWeekFrac    float64        `json:"active_week_frac"`
	Cadence           []WeekActivity `json:"cadence,omitempty"`
	JobsPerActiveWeek float64        `json:"jobs_per_active_week"`
	MeanCores         float64        `json:"mean_cores"`
	MeanDurationH     float64        `json:"mean_duration_h"`

	// File behavior: touches per job, the fraction of touches that
	// create fresh files, the exact byte mass those creates wrote
	// (regen rescales its create sizes to it — created bytes dominate
	// purge totals, so they are pinned rather than redrawn), and the
	// inter-access gap quantiles (days) of the user's access log.
	TouchesPerJob float64 `json:"touches_per_job"`
	CreateFrac    float64 `json:"create_frac"`
	CreatedBytes  int64   `json:"created_bytes"`
	GapP50Days    float64 `json:"gap_p50_days"`
	GapP90Days    float64 `json:"gap_p90_days"`

	// GapHist is the per-file re-read gap histogram (empty or exactly
	// NumGapBuckets buckets).
	GapHist []GapBucket `json:"gap_hist,omitempty"`

	// MeanStripes is the user's mean snapshot stripe count.
	MeanStripes float64 `json:"mean_stripes"`

	// Strata sketch the user's snapshot files by age.
	Strata []Stratum `json:"strata,omitempty"`
}

// Files returns the user's exact snapshot file count.
func (u *UserModel) Files() int {
	n := 0
	for _, s := range u.Strata {
		n += s.Count
	}
	return n
}

// SnapshotBytes returns the user's exact snapshot byte mass.
func (u *UserModel) SnapshotBytes() int64 {
	var b int64
	for _, s := range u.Strata {
		b += s.Bytes
	}
	return b
}

// Activeness class labels, in increasing-cadence order.
const (
	ClassDormant = "dormant"
	ClassCasual  = "casual"
	ClassSteady  = "steady"
	ClassPower   = "power"
)

// Class buckets the user by job cadence. The thresholds are absolute,
// not quantiles, so refitting a regenerated trace reproduces the
// class shares whenever the cadence parameters are reproduced — the
// reconstruction-fidelity acceptance check leans on that.
func (u *UserModel) Class() string {
	switch {
	case u.ActiveWeekFrac < 0.05:
		return ClassDormant
	case u.ActiveWeekFrac < 0.30:
		return ClassCasual
	case u.ActiveWeekFrac < 0.70:
		return ClassSteady
	default:
		return ClassPower
	}
}

// Model is the fitted workload.
type Model struct {
	Version int    `json:"version"`
	Source  string `json:"source,omitempty"` // provenance note, free-form
	// Taken is the source snapshot capture time; regenerated traces
	// replay the same window.
	Taken timeutil.Time `json:"taken"`
	// SpanDays is the trace window length after Taken.
	SpanDays int         `json:"span_days"`
	Users    []UserModel `json:"users"`
}

// ClassShares tallies the fraction of users in each activeness class.
func (m *Model) ClassShares() map[string]float64 {
	shares := map[string]float64{}
	if len(m.Users) == 0 {
		return shares
	}
	for i := range m.Users {
		shares[m.Users[i].Class()]++
	}
	for k := range shares {
		shares[k] /= float64(len(m.Users))
	}
	return shares
}

// TotalSnapshotBytes sums the exact snapshot mass across users.
func (m *Model) TotalSnapshotBytes() int64 {
	var b int64
	for i := range m.Users {
		b += m.Users[i].SnapshotBytes()
	}
	return b
}

// Validate rejects models Regen cannot honor.
func (m *Model) Validate() error {
	if m.Version != ModelVersion {
		return fmt.Errorf("workload: model version %d, want %d", m.Version, ModelVersion)
	}
	if len(m.Users) == 0 {
		return fmt.Errorf("workload: model has no users")
	}
	if m.SpanDays < 1 {
		return fmt.Errorf("workload: model span %d days, want >= 1", m.SpanDays)
	}
	for i := range m.Users {
		u := &m.Users[i]
		if u.ActiveWeekFrac < 0 || u.ActiveWeekFrac > 1 {
			return fmt.Errorf("workload: user %q active-week fraction %v out of [0,1]", u.Name, u.ActiveWeekFrac)
		}
		weeks := (m.SpanDays + 6) / 7
		for k, wa := range u.Cadence {
			if wa.Week < 0 || wa.Week >= weeks {
				return fmt.Errorf("workload: user %q active week %d outside the %d-week span", u.Name, wa.Week, weeks)
			}
			if k > 0 && wa.Week <= u.Cadence[k-1].Week {
				return fmt.Errorf("workload: user %q cadence weeks not strictly increasing at %d", u.Name, wa.Week)
			}
			if wa.Jobs < 1 || wa.CoreHours < 0 {
				return fmt.Errorf("workload: user %q cadence week %d invalid (%d jobs, %v core-hours)",
					u.Name, wa.Week, wa.Jobs, wa.CoreHours)
			}
		}
		if u.CreateFrac < 0 || u.CreateFrac > 1 {
			return fmt.Errorf("workload: user %q create fraction %v out of [0,1]", u.Name, u.CreateFrac)
		}
		for _, s := range u.Strata {
			if s.Count < 0 || s.Bytes < 0 || s.AgeLoDays < 0 || s.AgeHiDays < s.AgeLoDays {
				return fmt.Errorf("workload: user %q has an invalid stratum %+v", u.Name, s)
			}
			if s.TouchedCount < 0 || s.TouchedCount > s.Count || s.TouchedBytes < 0 || s.TouchedBytes > s.Bytes {
				return fmt.Errorf("workload: user %q has an invalid touched split %+v", u.Name, s)
			}
		}
		if n := len(u.GapHist); n != 0 && n != NumGapBuckets {
			return fmt.Errorf("workload: user %q gap histogram has %d buckets, want %d", u.Name, n, NumGapBuckets)
		}
		for _, b := range u.GapHist {
			if b.Count < 0 || b.Bytes < 0 {
				return fmt.Errorf("workload: user %q has a negative gap bucket %+v", u.Name, b)
			}
		}
	}
	return nil
}

// SaveModel writes the model as indented JSON.
func SaveModel(path string, m *Model) (err error) {
	if err := m.Validate(); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// LoadModel reads and validates a serialized model.
func LoadModel(path string) (*Model, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Model
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("workload: %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("workload: %s: %w", path, err)
	}
	return &m, nil
}
