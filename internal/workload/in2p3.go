// Package workload adapts real facility workloads into the trace
// schemas the ActiveDR evaluation replays, and reconstructs them at
// scale.
//
// Two halves:
//
//   - The IN2P3 adapter (this file) maps the public IN2P3 Computing
//     Center 2024 workload dataset — batch job accounting records as
//     CSV/TSV with local wall-clock timestamps and facility user
//     strings — into a trace.Dataset: jobs, logins, a deterministic
//     file-access synthesis for the I/O the accounting log does not
//     record, and a reference snapshot to replay against. Parsing is
//     lenient-capable with the same quarantine reporting contract as
//     internal/trace.
//
//   - The TraceTracker-style reconstructor (fit.go / regen.go) fits
//     per-user archetype parameters from any loaded dataset and
//     regenerates statistically equivalent traces at a configurable
//     user-scale multiplier, streaming the upscaled namespace straight
//     into a snapfile so 10-100x replays stay bounded-memory.
//
// Everything here is deterministic: same input bytes, same options,
// same dataset, bit for bit. The package is in vetadr's determinism
// scope; the only time handling is through timeutil's parse edge.
package workload

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	_ "time/tzdata" // facility zones must resolve even on zoneinfo-less containers

	"activedr/internal/randx"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
)

// DefaultZone is the IN2P3 facility's zone: the dataset stamps job
// times as Europe/Paris wall clocks with no offset.
const DefaultZone = "Europe/Paris"

// IN2P3Options controls the adapter.
type IN2P3Options struct {
	// Zone is the IANA zone the record timestamps are local to.
	// Empty means DefaultZone.
	Zone string
	// Lenient quarantines malformed records into the ParseReport
	// instead of aborting on the first one.
	Lenient bool
	// MaxErrors caps the quarantine in lenient mode (0 = the
	// trace package's default).
	MaxErrors int
	// Seed drives the deterministic synthesis of the fields the
	// accounting log lacks (file accesses, sizes, the initial
	// namespace). 0 means 1.
	Seed uint64
}

// in2p3Rec is one parsed accounting record, normalized to UTC.
type in2p3Rec struct {
	user   string
	group  string
	submit timeutil.Time
	start  timeutil.Time
	end    timeutil.Time
	cores  int
}

// colMap resolves header names to field indices, -1 for absent.
type colMap struct {
	user, group, submit, start, end, cores int
}

// headerAliases maps the column spellings seen across the dataset's
// exports (and reasonable TSV re-exports) onto our logical fields.
var headerAliases = map[string]string{
	"user": "user", "owner": "user", "user_id": "user", "uid": "user",
	"group": "group", "vo": "group", "project": "group", "account": "group",
	"submit": "submit", "submit_time": "submit", "submission_time": "submit", "submitted": "submit",
	"start": "start", "start_time": "start", "started": "start",
	"end": "end", "end_time": "end", "finished": "end", "completion_time": "end",
	"cores": "cores", "ncores": "cores", "slots": "cores", "cpu_count": "cores", "cpus": "cores",
}

// sniffDelim picks the field separator from the header line: a tab if
// one is present, otherwise semicolon, otherwise comma.
func sniffDelim(header string) byte {
	if strings.IndexByte(header, '\t') >= 0 {
		return '\t'
	}
	if strings.IndexByte(header, ';') >= 0 {
		return ';'
	}
	return ','
}

// splitRecord splits one raw line on delim, trimming a trailing CR.
// The dataset's fields are plain identifiers and timestamps; there is
// no quoting to honor.
func splitRecord(line string, delim byte) []string {
	line = strings.TrimSuffix(line, "\r")
	return strings.Split(line, string(delim))
}

// parseIN2P3Header maps a header row to a colMap. Unknown columns are
// ignored; the required set is user, cores, end, and at least one of
// submit/start.
func parseIN2P3Header(fields []string) (colMap, error) {
	cols := colMap{user: -1, group: -1, submit: -1, start: -1, end: -1, cores: -1}
	for i, f := range fields {
		switch headerAliases[strings.ToLower(strings.TrimSpace(f))] {
		case "user":
			cols.user = i
		case "group":
			cols.group = i
		case "submit":
			cols.submit = i
		case "start":
			cols.start = i
		case "end":
			cols.end = i
		case "cores":
			cols.cores = i
		}
	}
	switch {
	case cols.user < 0:
		return cols, fmt.Errorf("no user column in header")
	case cols.cores < 0:
		return cols, fmt.Errorf("no cores column in header")
	case cols.end < 0:
		return cols, fmt.Errorf("no end-time column in header")
	case cols.submit < 0 && cols.start < 0:
		return cols, fmt.Errorf("no submit- or start-time column in header")
	}
	return cols, nil
}

// parseIN2P3Record parses one data row. It is a pure function of its
// arguments (the fuzz target leans on that) and must never panic on
// malformed input.
func parseIN2P3Record(fields []string, cols colMap, loc *timeutil.Zone) (in2p3Rec, error) {
	var rec in2p3Rec
	need := cols.user
	if cols.cores > need {
		need = cols.cores
	}
	if cols.end > need {
		need = cols.end
	}
	if len(fields) <= need {
		return rec, fmt.Errorf("want at least %d fields, got %d", need+1, len(fields))
	}
	rec.user = strings.TrimSpace(fields[cols.user])
	if rec.user == "" {
		return rec, fmt.Errorf("empty user")
	}
	if cols.group >= 0 && cols.group < len(fields) {
		rec.group = strings.TrimSpace(fields[cols.group])
	}
	if rec.group == "" {
		rec.group = "unaffiliated"
	}
	cores, err := strconv.Atoi(strings.TrimSpace(fields[cols.cores]))
	if err != nil {
		return rec, fmt.Errorf("bad cores %q", fields[cols.cores])
	}
	if cores < 1 || cores > 1<<20 {
		return rec, fmt.Errorf("cores %d out of range", cores)
	}
	rec.cores = cores

	at := func(i int) (timeutil.Time, bool, error) {
		if i < 0 || i >= len(fields) || strings.TrimSpace(fields[i]) == "" {
			return 0, false, nil
		}
		t, err := loc.Parse(fields[i])
		if err != nil {
			return 0, false, err
		}
		return t, true, nil
	}
	submit, hasSubmit, err := at(cols.submit)
	if err != nil {
		return rec, fmt.Errorf("bad submit time %q", fields[cols.submit])
	}
	start, hasStart, err := at(cols.start)
	if err != nil {
		return rec, fmt.Errorf("bad start time %q", fields[cols.start])
	}
	end, hasEnd, err := at(cols.end)
	if err != nil {
		return rec, fmt.Errorf("bad end time %q", fields[cols.end])
	}
	if !hasEnd {
		return rec, fmt.Errorf("missing end time")
	}
	if !hasStart {
		start = submit
		hasStart = hasSubmit
	}
	if !hasSubmit {
		submit = start
		hasSubmit = hasStart
	}
	if !hasStart {
		return rec, fmt.Errorf("missing submit and start time")
	}
	if end.Before(start) || start.Before(submit) {
		return rec, fmt.Errorf("times out of order (submit %d, start %d, end %d)", submit, start, end)
	}
	// A year-long "job" is an accounting artifact, not a batch job.
	if end.Sub(start) > 370*timeutil.Day {
		return rec, fmt.Errorf("implausible duration %v", end.Sub(start))
	}
	rec.submit, rec.start, rec.end = submit, start, end
	return rec, nil
}

// LoadIN2P3 reads an IN2P3-format accounting file (CSV/TSV,
// transparently gunzipped for .gz paths) and adapts it into a
// replayable trace.Dataset. The returned ParseReport records the
// consumed line count and any quarantined records, with absolute
// 1-based line numbers (the header is line 1) — the same contract the
// trace readers keep.
func LoadIN2P3(path string, opts IN2P3Options) (ds *trace.Dataset, rep *trace.ParseReport, err error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.MaxErrors == 0 {
		opts.MaxErrors = trace.DefaultMaxErrors
	}
	zone := opts.Zone
	if zone == "" {
		zone = DefaultZone
	}
	loc, err := timeutil.LoadZone(zone)
	if err != nil {
		return nil, nil, err
	}

	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, gzErr := gzip.NewReader(f)
		if gzErr != nil {
			return nil, nil, fmt.Errorf("workload: %s: %w", path, gzErr)
		}
		defer func() {
			if cerr := gz.Close(); err == nil {
				err = cerr
			}
		}()
		r = gz
	}

	name := filepath.Base(path)
	rep = &trace.ParseReport{File: name}
	quarantine := func(line int, reason string) error {
		if !opts.Lenient {
			return fmt.Errorf("workload: %s line %d: %s", name, line, reason)
		}
		if len(rep.Errors) >= opts.MaxErrors {
			return fmt.Errorf("workload: %s: more than %d malformed records, giving up (last: line %d: %s)",
				name, opts.MaxErrors, line, reason)
		}
		rep.Errors = append(rep.Errors, trace.ParseError{File: name, Line: line, Reason: reason})
		return nil
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	var (
		cols    colMap
		haveHdr bool
		delim   byte
		recs    []in2p3Rec
	)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		rep.Lines++
		if !haveHdr {
			delim = sniffDelim(line)
			c, hdrErr := parseIN2P3Header(splitRecord(line, delim))
			if hdrErr != nil {
				// A broken header dooms every following record; that is an
				// abort even in lenient mode.
				return nil, rep, fmt.Errorf("workload: %s line %d: %v", name, lineNo, hdrErr)
			}
			cols, haveHdr = c, true
			continue
		}
		rec, recErr := parseIN2P3Record(splitRecord(line, delim), cols, loc)
		if recErr != nil {
			if qerr := quarantine(lineNo, recErr.Error()); qerr != nil {
				return nil, rep, qerr
			}
			continue
		}
		recs = append(recs, rec)
	}
	if scErr := sc.Err(); scErr != nil {
		if opts.Lenient {
			rep.Truncated = true
		} else {
			return nil, rep, fmt.Errorf("workload: %s line %d: %w", name, lineNo+1, scErr)
		}
	}
	if !haveHdr {
		return nil, rep, fmt.Errorf("workload: %s: no header line", name)
	}
	if len(recs) == 0 {
		return nil, rep, fmt.Errorf("workload: %s: no usable records", name)
	}

	ds, err = adapt(recs, opts.Seed)
	if err != nil {
		return nil, rep, err
	}
	return ds, rep, nil
}

// userSeed derives a stable per-user synthesis seed from the adapter
// seed and the facility user string, independent of record order.
func userSeed(seed uint64, name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return seed ^ h.Sum64() ^ 0x9e3779b97f4a7c15
}

// adaptUser accumulates one facility user's records during adaptation.
type adaptUser struct {
	id    trace.UserID
	name  string
	group string
	first timeutil.Time
	pool  []poolFile // live files, creation order
	src   *randx.Source
}

type poolFile struct {
	path  string
	size  int64
	atime timeutil.Time
}

// adapt turns parsed records into a full dataset: jobs verbatim,
// one login per user-day with job activity, synthesized file accesses
// over a synthesized initial namespace, and the reference snapshot.
//
// The synthesis is the adapter's "TraceTracker section 2" move: the
// accounting log proves when each user was active and how hard, but
// records no file I/O, so the I/O is drawn deterministically from the
// job shape — heavier jobs touch more files, a fixed fraction of
// touches create fresh outputs, the rest re-read the user's existing
// files with a recency bias.
func adapt(recs []in2p3Rec, seed uint64) (*trace.Dataset, error) {
	// Users in first-appearance order get dense IDs.
	byName := map[string]*adaptUser{}
	var users []*adaptUser
	firstEvent := recs[0].submit
	for i := range recs {
		if recs[i].submit.Before(firstEvent) {
			firstEvent = recs[i].submit
		}
	}
	taken := firstEvent.StartOfDay()
	for i := range recs {
		rec := &recs[i]
		u := byName[rec.user]
		if u == nil {
			u = &adaptUser{
				id: trace.UserID(len(users)), name: rec.user, group: rec.group,
				first: rec.submit,
				src:   randx.New(userSeed(seed, rec.user)),
			}
			byName[rec.user] = u
			users = append(users, u)
		}
		if rec.submit.Before(u.first) {
			u.first = rec.submit
		}
	}

	d := &trace.Dataset{}
	d.Snapshot.Taken = taken
	for _, u := range users {
		// Accounts predate their first job by a deterministic spell.
		created := u.first.Add(-timeutil.Duration(u.src.Int64n(int64(2 * 365 * timeutil.Day))))
		d.Users = append(d.Users, trace.User{ID: u.id, Name: u.name, Created: created})
		// Initial namespace: the files this user already kept on scratch
		// when the trace window opens, with access times spread over the
		// year before the snapshot.
		nInit := 3 + u.src.Intn(14)
		for k := 0; k < nInit; k++ {
			size := int64(u.src.LogNormal(16.5, 2.2)) + 4096
			age := timeutil.Duration(u.src.Int64n(int64(360 * timeutil.Day)))
			pf := poolFile{
				path:  fmt.Sprintf("/lustre/in2p3/%s/%s/init/f%04d.dat", u.group, u.name, k),
				size:  size,
				atime: taken.Add(-age),
			}
			u.pool = append(u.pool, pf)
			d.Snapshot.Entries = append(d.Snapshot.Entries, trace.SnapshotEntry{
				Path: pf.path, User: u.id, Size: pf.size, Stripes: 1 + u.src.Intn(4), ATime: pf.atime,
			})
		}
	}

	lastLoginDay := make([]int, len(users))
	for i := range lastLoginDay {
		lastLoginDay[i] = -1 << 30
	}
	for i := range recs {
		rec := &recs[i]
		u := byName[rec.user]
		d.Jobs = append(d.Jobs, trace.Job{
			User: u.id, Submit: rec.submit,
			Duration: rec.end.Sub(rec.start), Cores: rec.cores,
		})
		if day := rec.submit.DayIndex(); day != lastLoginDay[u.id] {
			lastLoginDay[u.id] = day
			d.Logins = append(d.Logins, trace.Login{User: u.id, TS: rec.submit})
		}

		// File touches scale with the job's core-hours, clamped so one
		// monster accounting row cannot dominate the access log.
		job := d.Jobs[len(d.Jobs)-1]
		mean := job.CoreHours() / 50
		if mean > 6 {
			mean = 6
		}
		n := 1 + u.src.Poisson(mean)
		span := rec.end.Sub(rec.start)
		for k := 0; k < n; k++ {
			var at timeutil.Time
			if span > 0 {
				at = rec.start.Add(timeutil.Duration(u.src.Int64n(int64(span) + 1)))
			} else {
				at = rec.start
			}
			if u.src.Bool(0.35) || len(u.pool) == 0 {
				size := int64(u.src.LogNormal(16.0, 2.0)) + 4096
				pf := poolFile{
					path: fmt.Sprintf("/lustre/in2p3/%s/%s/job%06d/out%02d.dat",
						u.group, u.name, i, k),
					size: size, atime: at,
				}
				u.pool = append(u.pool, pf)
				d.Accesses = append(d.Accesses, trace.Access{
					TS: at, User: u.id, Create: true, Path: pf.path, Size: size,
				})
			} else {
				// Recency-biased re-read: prefer the newest quarter of the
				// pool, fall back to anywhere.
				var j int
				if q := len(u.pool) / 4; q > 0 && u.src.Bool(0.6) {
					j = len(u.pool) - 1 - u.src.Intn(q)
				} else {
					j = u.src.Intn(len(u.pool))
				}
				pf := &u.pool[j]
				if at.After(pf.atime) {
					pf.atime = at
				}
				d.Accesses = append(d.Accesses, trace.Access{
					TS: at, User: u.id, Create: false, Path: pf.path, Size: pf.size,
				})
			}
		}
	}

	d.SortJobs()
	d.SortAccesses()
	sort.Slice(d.Snapshot.Entries, func(i, j int) bool {
		return d.Snapshot.Entries[i].Path < d.Snapshot.Entries[j].Path
	})
	sort.SliceStable(d.Logins, func(i, j int) bool { return d.Logins[i].TS < d.Logins[j].TS })
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("workload: adapted dataset invalid: %w", err)
	}
	return d, nil
}
