package workload

// Fuzzing for the adapter's record parser: whatever bytes a facility
// export throws at it, parseIN2P3Record must never panic, and any
// record it accepts must satisfy the invariants the synthesis layer
// assumes.

import (
	"strings"
	"testing"

	"activedr/internal/timeutil"
)

func FuzzIN2P3Record(f *testing.F) {
	zone, err := timeutil.LoadZone(DefaultZone)
	if err != nil {
		f.Fatal(err)
	}
	header := "job_id,user,group,submit_time,start_time,end_time,cores,status"
	cols, err := parseIN2P3Header(splitRecord(header, ','))
	if err != nil {
		f.Fatal(err)
	}
	f.Add("100001,in2p3u001,atlas,2024-01-12 06:18:58,2024-01-12 07:48:44,2024-01-12 22:35:44,34,completed")
	f.Add("1,u,,2024-03-31 02:30:00,,2024-03-31 05:00:00,1,")
	f.Add("1,u,g,,2024-10-27 02:30:00,2024-10-27 06:00:00,8,x")
	f.Add("x,,,,,,")
	f.Add("1,u,g,9999-12-31 23:59:59,,9999-12-31 23:59:59,1048576,")
	f.Add("1,u,g,2024-01-01T00:00:00,2024-01-01,2024-01-02 00:00,3,ok")
	f.Add("1,\x00\xff,g,2024-01-01 00:00:00,,2024-01-01 01:00:00,2,")
	f.Fuzz(func(t *testing.T, line string) {
		if strings.ContainsAny(line, "\n\r") {
			return // the line splitter owns newlines; the parser sees single rows
		}
		rec, err := parseIN2P3Record(splitRecord(line, ','), cols, zone)
		if err != nil {
			return
		}
		if rec.user == "" {
			t.Fatalf("accepted record with empty user: %q", line)
		}
		if rec.cores < 1 || rec.cores > 1<<20 {
			t.Fatalf("accepted cores %d out of range: %q", rec.cores, line)
		}
		if rec.end.Before(rec.start) || rec.start.Before(rec.submit) {
			t.Fatalf("accepted out-of-order times: %q", line)
		}
		if rec.end.Sub(rec.start) > 370*timeutil.Day {
			t.Fatalf("accepted implausible duration: %q", line)
		}
	})
}
