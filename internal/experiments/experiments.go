// Package experiments regenerates every table and figure of the
// paper's evaluation (§4) on the synthetic OLCF-like dataset. Each
// FigureN/TableN entry returns a structured result plus a Render
// method emitting the text analogue of the paper's plot; the repo
// root's bench_test.go and cmd/report drive them. EXPERIMENTS.md
// records measured-vs-paper numbers.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"activedr/internal/activeness"
	"activedr/internal/config"
	"activedr/internal/parallel"
	"activedr/internal/profiling"
	"activedr/internal/report"
	"activedr/internal/retention"
	"activedr/internal/sim"
	"activedr/internal/stats"
	"activedr/internal/synth"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
	"activedr/internal/vfs"
)

// CaptureDate is the paper's "last weekly metadata snapshot we have",
// captured on Aug 23rd of 2016 — the state Figures 9–11 examine.
var CaptureDate = timeutil.Date(2016, time.August, 23)

// Suite prepares and caches the emulation runs the figures share.
// The caches are mutex-guarded so Precompute can replay the lifetime
// sweep concurrently; each replay runs on its own emulator with
// cloned state, so concurrent comparisons never share mutable state.
type Suite struct {
	ds          *trace.Dataset
	mu          sync.Mutex
	comparisons map[timeutil.Duration]*sim.Comparison
	emulators   map[timeutil.Duration]*sim.Emulator
}

// NewSuite wraps an existing dataset.
func NewSuite(ds *trace.Dataset) *Suite {
	return &Suite{
		ds:          ds,
		comparisons: make(map[timeutil.Duration]*sim.Comparison),
		emulators:   make(map[timeutil.Duration]*sim.Emulator),
	}
}

// NewSyntheticSuite generates the default dataset at the given user
// scale (0 selects the reference 2,000 users) and wraps it.
func NewSyntheticSuite(users int, seed uint64) (*Suite, error) {
	ds, err := synth.Generate(synth.Config{Seed: seed, Users: users})
	if err != nil {
		return nil, err
	}
	return NewSuite(ds), nil
}

// Dataset exposes the underlying traces.
func (s *Suite) Dataset() *trace.Dataset { return s.ds }

// emulator builds (and caches) an emulator for one lifetime setting.
// Construction happens outside the lock (it only reads the shared
// dataset), so concurrent callers for distinct lifetimes don't
// serialize on each other; racing callers for the same lifetime both
// build, and the first store wins.
func (s *Suite) emulator(d timeutil.Duration) (*sim.Emulator, error) {
	s.mu.Lock()
	em, ok := s.emulators[d]
	s.mu.Unlock()
	if ok {
		return em, nil
	}
	em, err := sim.New(s.ds, sim.Config{
		Lifetime:          d,
		TargetUtilization: config.TargetUtilization,
		CaptureAt:         CaptureDate,
	})
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prior, ok := s.emulators[d]; ok {
		return prior, nil
	}
	s.emulators[d] = em
	return em, nil
}

// comparison runs (and caches) the FLT/ActiveDR pair at one lifetime.
// The replay itself runs unlocked: runs clone the emulator's base
// state, so comparisons at different lifetimes proceed concurrently.
func (s *Suite) comparison(d timeutil.Duration) (*sim.Comparison, error) {
	s.mu.Lock()
	c, ok := s.comparisons[d]
	s.mu.Unlock()
	if ok {
		return c, nil
	}
	em, err := s.emulator(d)
	if err != nil {
		return nil, err
	}
	c, err = em.RunComparison()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prior, ok := s.comparisons[d]; ok {
		return prior, nil
	}
	s.comparisons[d] = c
	return c, nil
}

// Precompute replays the FLT/ActiveDR comparison for every lifetime
// concurrently on the pool, one independent task per lifetime. Each
// task runs on its own emulator and cloned file system — replays are
// deterministic, so the figures read identical results whether they
// were precomputed in parallel or computed lazily one by one.
// Checkpointed and fault-injected runs are not driven through here;
// those stay serial within their run.
func (s *Suite) Precompute(pool *parallel.Pool, lifetimes []timeutil.Duration) error {
	seen := make(map[timeutil.Duration]bool, len(lifetimes))
	tasks := make([]func() error, 0, len(lifetimes))
	for _, d := range lifetimes {
		if seen[d] {
			continue
		}
		seen[d] = true
		tasks = append(tasks, func() error {
			_, err := s.comparison(d)
			return err
		})
	}
	return pool.Run(tasks)
}

// PrecomputeMultiplexed fills the comparison cache for every lifetime
// with ONE multiplexed replay: each lifetime contributes an FLT and an
// ActiveDR lane over the shared access stream, so the sweep pays one
// stream pass plus per-policy decision layers instead of 2×N full
// replays. Results are bit-identical to the sequential comparisons
// (the sim equivalence suite pins this), so figures read the cache the
// same way regardless of which precompute filled it. Lane sets beyond
// the 64-lane group limit are chunked across passes.
func (s *Suite) PrecomputeMultiplexed(lifetimes []timeutil.Duration) error {
	var need []timeutil.Duration
	seen := make(map[timeutil.Duration]bool, len(lifetimes))
	s.mu.Lock()
	for _, d := range lifetimes {
		if !seen[d] && s.comparisons[d] == nil {
			seen[d] = true
			need = append(need, d)
		}
	}
	s.mu.Unlock()
	if len(need) == 0 {
		return nil
	}
	m, err := sim.NewMultiplexer(s.ds)
	if err != nil {
		return err
	}
	const maxPairs = 32 // 2 lanes per lifetime, 64-lane group limit
	for len(need) > 0 {
		chunk := need
		if len(chunk) > maxPairs {
			chunk = chunk[:maxPairs]
		}
		need = need[len(chunk):]
		lanes := make([]sim.LaneSpec, 0, 2*len(chunk))
		for _, d := range chunk {
			cfg := sim.Config{
				Lifetime:          d,
				TargetUtilization: config.TargetUtilization,
				CaptureAt:         CaptureDate,
			}
			lanes = append(lanes,
				sim.LaneSpec{Config: cfg, Policy: sim.PolicyFLT},
				sim.LaneSpec{Config: cfg, Policy: sim.PolicyActiveDR})
		}
		res, err := m.Run(lanes)
		if err != nil {
			return err
		}
		s.mu.Lock()
		for i, d := range chunk {
			if s.comparisons[d] == nil {
				s.comparisons[d] = &sim.Comparison{FLT: res[2*i], ActiveDR: res[2*i+1]}
			}
		}
		s.mu.Unlock()
	}
	return nil
}

// groupNames returns the paper's group labels in scan order.
func groupNames() [activeness.NumGroups]string {
	var names [activeness.NumGroups]string
	for _, g := range activeness.Groups() {
		names[g] = g.String()
	}
	return names
}

// --- Table 1 ---

// Table1Result lists the facility presets.
type Table1Result struct{ Facilities []config.Facility }

// Table1 reproduces the facility-policy table.
func (s *Suite) Table1() *Table1Result {
	return &Table1Result{Facilities: config.Facilities()}
}

// Render writes the table.
func (r *Table1Result) Render(w io.Writer) {
	t := report.NewTable("Table 1: data retention at HPC facilities", "Facility", "Scratch", "Retention")
	for _, f := range r.Facilities {
		t.AddRow(f.Name, f.Scratch, fmt.Sprintf("purge any %s old", f.Lifetime))
	}
	t.Render(w)
}

// --- Figure 1 ---

// Figure1Result is the FLT-only year: daily miss ratios and the
// range-bucketed day counts.
type Figure1Result struct {
	Days    []sim.DayStats
	Buckets *stats.RangeBuckets
	// DaysOver5Pct is the headline "users may intermittently suffer
	// ... during N days" count.
	DaysOver5Pct int
}

// Figure1 replays 2016 under FLT-90 alone and buckets the daily miss
// ratios, as the paper's motivating emulation does.
func (s *Suite) Figure1() (*Figure1Result, error) {
	cmp, err := s.comparison(timeutil.Days(90))
	if err != nil {
		return nil, err
	}
	res := &Figure1Result{Days: cmp.FLT.Days, Buckets: stats.NewMissRatioBuckets()}
	for _, ratio := range cmp.FLT.MissRatioDays() {
		res.Buckets.Add(ratio)
	}
	res.DaysOver5Pct = res.Buckets.CountAtLeast(0.05)
	return res, nil
}

// Render writes the monthly ratio series and the day-count histogram.
func (r *Figure1Result) Render(w io.Writer) {
	rows := monthlyRatioRows(map[string][]sim.DayStats{"FLT": r.Days}, []string{"FLT"})
	report.Series(w, "Figure 1 (left): FLT monthly mean file-miss ratio", "month", []string{"FLT"}, rows)
	report.Histogram(w, "Figure 1 (right): days per miss-ratio range (FLT)",
		r.Buckets.Labels(), map[string][]int{"FLT": r.Buckets.Counts()}, []string{"FLT"})
	fmt.Fprintf(w, "days with >5%% file misses: %d\n", r.DaysOver5Pct)
}

// monthlyRatioRows averages day ratios per calendar month for compact
// series rendering.
func monthlyRatioRows(byPolicy map[string][]sim.DayStats, order []string) []report.SeriesRow {
	type agg struct{ acc, miss int64 }
	months := map[string]map[string]*agg{}
	var monthOrder []string
	for _, name := range order {
		for _, d := range byPolicy[name] {
			m := d.Day.MonthString()
			if months[m] == nil {
				months[m] = map[string]*agg{}
				monthOrder = append(monthOrder, m)
			}
			if months[m][name] == nil {
				months[m][name] = &agg{}
			}
			months[m][name].acc += d.Accesses
			months[m][name].miss += d.Misses
		}
	}
	var rows []report.SeriesRow
	for _, m := range monthOrder {
		row := report.SeriesRow{X: m}
		for _, name := range order {
			a := months[m][name]
			if a == nil || a.acc == 0 {
				row.Y = append(row.Y, 0)
			} else {
				row.Y = append(row.Y, float64(a.miss)/float64(a.acc))
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// --- Figure 5 ---

// Figure5Cell is one period-length column of the activeness matrix.
type Figure5Cell struct {
	Period timeutil.Duration
	Matrix activeness.Matrix
}

// Figure5Result holds the matrix shares for the period sweep.
type Figure5Result struct{ Cells []Figure5Cell }

// Figure5 evaluates the user activeness matrix at the capture date
// for each period length.
func (s *Suite) Figure5() (*Figure5Result, error) {
	res := &Figure5Result{}
	for _, d := range config.PeriodLengths {
		ev := activeness.NewEvaluator(d)
		jt := ev.AddType("job-submission", activeness.Operation)
		pt := ev.AddType("publication", activeness.Outcome)
		ev.RecordJobs(jt, s.ds.Jobs)
		ev.RecordPublications(pt, s.ds.Publications)
		ranks := ev.EvaluateAll(len(s.ds.Users), CaptureDate)
		res.Cells = append(res.Cells, Figure5Cell{Period: d, Matrix: activeness.NewMatrix(ranks)})
	}
	return res, nil
}

// Render writes the share table.
func (r *Figure5Result) Render(w io.Writer) {
	names := groupNames()
	t := report.NewTable("Figure 5: user activeness matrix shares",
		"Period", names[activeness.BothActive], names[activeness.OperationActiveOnly],
		names[activeness.OutcomeActiveOnly], names[activeness.BothInactive])
	for _, c := range r.Cells {
		t.AddRow(c.Period.String(),
			fmt.Sprintf("%.2f%%", 100*c.Matrix.Share(activeness.BothActive)),
			fmt.Sprintf("%.2f%%", 100*c.Matrix.Share(activeness.OperationActiveOnly)),
			fmt.Sprintf("%.2f%%", 100*c.Matrix.Share(activeness.OutcomeActiveOnly)),
			fmt.Sprintf("%.2f%%", 100*c.Matrix.Share(activeness.BothInactive)))
	}
	t.Render(w)
}

// --- Figure 6 ---

// Figure6Result compares the miss-ratio day histograms of the two
// policies at the 90-day setting.
type Figure6Result struct {
	FLT, ActiveDR                 *stats.RangeBuckets
	FLTDaysOver5, ADRDaysOver5    int
	OverallReduction              float64
	TotalMissesFLT, TotalMissesDR int64
}

// Figure6 buckets both policies' daily miss ratios.
func (s *Suite) Figure6() (*Figure6Result, error) {
	cmp, err := s.comparison(timeutil.Days(90))
	if err != nil {
		return nil, err
	}
	res := &Figure6Result{
		FLT:            stats.NewMissRatioBuckets(),
		ActiveDR:       stats.NewMissRatioBuckets(),
		TotalMissesFLT: cmp.FLT.TotalMisses,
		TotalMissesDR:  cmp.ActiveDR.TotalMisses,
	}
	for _, ratio := range cmp.FLT.MissRatioDays() {
		res.FLT.Add(ratio)
	}
	for _, ratio := range cmp.ActiveDR.MissRatioDays() {
		res.ActiveDR.Add(ratio)
	}
	res.FLTDaysOver5 = res.FLT.CountAtLeast(0.05)
	res.ADRDaysOver5 = res.ActiveDR.CountAtLeast(0.05)
	res.OverallReduction = cmp.MissReduction()
	return res, nil
}

// Render writes the side-by-side histogram.
func (r *Figure6Result) Render(w io.Writer) {
	report.Histogram(w, "Figure 6: days per miss-ratio range",
		r.FLT.Labels(),
		map[string][]int{"FLT": r.FLT.Counts(), "ActiveDR": r.ActiveDR.Counts()},
		[]string{"FLT", "ActiveDR"})
	fmt.Fprintf(w, "days >5%% misses: FLT=%d ActiveDR=%d (paper: 138 → 95)\n",
		r.FLTDaysOver5, r.ADRDaysOver5)
	fmt.Fprintf(w, "total misses: FLT=%d ActiveDR=%d (reduction %s)\n",
		r.TotalMissesFLT, r.TotalMissesDR, report.Percent(r.OverallReduction))
}

// --- Figure 7 ---

// Figure7Result is the monthly cumulative miss series per group.
type Figure7Result struct {
	Months []string
	// Cum[group][policy][monthIndex], policies indexed FLT=0, ADR=1.
	Cum [activeness.NumGroups][2][]int64
}

// Figure7 accumulates per-group misses month by month for both
// policies.
func (s *Suite) Figure7() (*Figure7Result, error) {
	cmp, err := s.comparison(timeutil.Days(90))
	if err != nil {
		return nil, err
	}
	res := &Figure7Result{}
	monthIdx := map[string]int{}
	for pi, run := range []*sim.Result{cmp.FLT, cmp.ActiveDR} {
		var running [activeness.NumGroups]int64
		for _, day := range run.Days {
			m := day.Day.MonthString()
			idx, ok := monthIdx[m]
			if !ok {
				idx = len(res.Months)
				monthIdx[m] = idx
				res.Months = append(res.Months, m)
			}
			for g := 0; g < activeness.NumGroups; g++ {
				running[g] += day.ByGroup[g].Misses
				for len(res.Cum[g][pi]) <= idx {
					res.Cum[g][pi] = append(res.Cum[g][pi], running[g])
				}
				res.Cum[g][pi][idx] = running[g]
			}
		}
	}
	return res, nil
}

// Render writes one series block per group.
func (r *Figure7Result) Render(w io.Writer) {
	for _, g := range activeness.Groups() {
		var rows []report.SeriesRow
		for i, m := range r.Months {
			row := report.SeriesRow{X: m}
			for pi := 0; pi < 2; pi++ {
				v := int64(0)
				if i < len(r.Cum[g][pi]) {
					v = r.Cum[g][pi][i]
				}
				row.Y = append(row.Y, float64(v))
			}
			rows = append(rows, row)
		}
		report.Series(w, fmt.Sprintf("Figure 7: cumulative file misses — %s", g),
			"month", []string{"FLT", "ActiveDR"}, rows)
	}
}

// --- Figure 8 ---

// Figure8Result holds per-group box statistics of the per-day file
// miss reduction ratio.
type Figure8Result struct {
	Boxes [activeness.NumGroups]stats.Box
}

// Figure8 computes, for every replay day with FLT misses in a group,
// the reduction ratio (FLT−ADR)/FLT and summarizes per group.
func (s *Suite) Figure8() (*Figure8Result, error) {
	cmp, err := s.comparison(timeutil.Days(90))
	if err != nil {
		return nil, err
	}
	// Align days by date.
	adrByDay := map[timeutil.Time]sim.DayStats{}
	for _, d := range cmp.ActiveDR.Days {
		adrByDay[d.Day] = d
	}
	var perGroup [activeness.NumGroups][]float64
	for _, fd := range cmp.FLT.Days {
		ad := adrByDay[fd.Day]
		for g := 0; g < activeness.NumGroups; g++ {
			fm := fd.ByGroup[g].Misses
			if fm == 0 {
				continue
			}
			perGroup[g] = append(perGroup[g],
				stats.ReductionRatio(float64(fm), float64(ad.ByGroup[g].Misses)))
		}
	}
	res := &Figure8Result{}
	for g := range perGroup {
		res.Boxes[g] = stats.NewBox(perGroup[g])
	}
	return res, nil
}

// Render writes one box line per group.
func (r *Figure8Result) Render(w io.Writer) {
	fmt.Fprintln(w, "== Figure 8: file miss reduction ratio (per day, per group) ==")
	for _, g := range []activeness.Group{activeness.BothActive, activeness.OperationActiveOnly, activeness.OutcomeActiveOnly, activeness.BothInactive} {
		fmt.Fprintln(w, report.BoxRow(g.String(), r.Boxes[g]))
	}
}

// --- Figures 9–11, Tables 4–6 ---

// RetentionCell is one (period length, policy) slice of the
// capture-date purge pass.
type RetentionCell struct {
	Period timeutil.Duration
	// Report is the purge report of the trigger at the capture date,
	// measured against the policy's own evolved file system.
	FLT, ActiveDR *retention.Report
	// AffectedFLT/ADR count distinct users who lost files across the
	// whole replay up to (and including) the capture trigger.
	AffectedFLT, AffectedADR [activeness.NumGroups]int
}

// RetentionSweepResult backs Figures 9, 10, 11 and Tables 4, 5, 6.
type RetentionSweepResult struct{ Cells []RetentionCell }

// RetentionSweep runs the comparison at every period length and pulls
// the capture-date reports.
func (s *Suite) RetentionSweep() (*RetentionSweepResult, error) {
	res := &RetentionSweepResult{}
	for _, d := range config.PeriodLengths {
		cmp, err := s.comparison(d)
		if err != nil {
			return nil, err
		}
		cell := RetentionCell{Period: d}
		cell.FLT = reportAt(cmp.FLT.Reports, CaptureDate)
		cell.ActiveDR = reportAt(cmp.ActiveDR.Reports, CaptureDate)
		if cell.FLT == nil || cell.ActiveDR == nil {
			return nil, fmt.Errorf("experiments: no purge report at %v for %v", CaptureDate, d)
		}
		em, err := s.emulator(d)
		if err != nil {
			return nil, err
		}
		ranks := em.Evaluator().EvaluateAll(len(s.ds.Users), CaptureDate)
		cell.AffectedFLT = distinctAffected(cmp.FLT.Reports, ranks, CaptureDate)
		cell.AffectedADR = distinctAffected(cmp.ActiveDR.Reports, ranks, CaptureDate)
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// reportAt returns the first report at or after the capture date.
func reportAt(reports []*retention.Report, at timeutil.Time) *retention.Report {
	for _, r := range reports {
		if r.At >= at {
			return r
		}
	}
	if len(reports) > 0 {
		return reports[len(reports)-1]
	}
	return nil
}

// distinctAffected unions affected users per group across all reports
// up to the capture date, classifying by the capture-date ranks.
func distinctAffected(reports []*retention.Report, ranks []activeness.Rank, until timeutil.Time) [activeness.NumGroups]int {
	seen := map[trace.UserID]bool{}
	var out [activeness.NumGroups]int
	for _, r := range reports {
		if r.At > until {
			break
		}
		for _, u := range r.AffectedIDs {
			if seen[u] {
				continue
			}
			seen[u] = true
			g := activeness.BothInactive
			if int(u) < len(ranks) {
				g = ranks[u].Group()
			}
			out[g]++
		}
	}
	return out
}

// Figure9 renders the retained-bytes comparison (and Tables 4 and 5).
func (r *RetentionSweepResult) Figure9(w io.Writer) {
	t := report.NewTable("Figure 9: total size of retained files",
		"Period", "Group", "FLT", "ActiveDR", "Δ bytes (T5)", "Δ% vs FLT (T4)")
	for _, c := range r.Cells {
		for _, g := range activeness.Groups() {
			fb := c.FLT.Groups[g].RetainedBytes()
			ab := c.ActiveDR.Groups[g].RetainedBytes()
			pct := "n/a"
			if fb != 0 {
				pct = report.Percent(float64(ab-fb) / float64(fb))
			}
			t.AddRow(c.Period.String(), g.String(), report.Bytes(fb), report.Bytes(ab),
				report.Bytes(ab-fb), pct)
		}
	}
	t.Render(w)
}

// Figure10 renders the purged-bytes comparison (and Table 6).
func (r *RetentionSweepResult) Figure10(w io.Writer) {
	t := report.NewTable("Figure 10: total size of purged files",
		"Period", "Group", "FLT", "ActiveDR", "FLT−ActiveDR (T6)")
	for _, c := range r.Cells {
		for _, g := range activeness.Groups() {
			fb := c.FLT.Groups[g].PurgedBytes
			ab := c.ActiveDR.Groups[g].PurgedBytes
			t.AddRow(c.Period.String(), g.String(), report.Bytes(fb), report.Bytes(ab), report.Bytes(fb-ab))
		}
	}
	t.Render(w)
}

// Figure11 renders the affected-users comparison.
func (r *RetentionSweepResult) Figure11(w io.Writer) {
	t := report.NewTable("Figure 11: users affected by file purge",
		"Period", "Group", "FLT", "ActiveDR")
	for _, c := range r.Cells {
		for _, g := range activeness.Groups() {
			t.AddRow(c.Period.String(), g.String(),
				fmt.Sprint(c.AffectedFLT[g]), fmt.Sprint(c.AffectedADR[g]))
		}
	}
	t.Render(w)
}

// --- Figure 12 ---

// LoadStats measures trace loading cost (Figure 12a).
type LoadStats struct {
	Users, Jobs, Accesses, Pubs, SnapshotEntries int
	LoadTime                                     time.Duration
	HeapBytes                                    uint64
}

// Figure12Result aggregates the performance evaluation.
type Figure12Result struct {
	Load LoadStats
	// Index is the prefix tree footprint of the loaded snapshot.
	Index vfs.Stats
	// EvalTimings/DecisionTimings/ScanTimings are per-rank probes
	// (Figures 12b–d).
	EvalTimings     []parallel.RankTiming
	DecisionTimings []parallel.RankTiming
	ScanTimings     []parallel.RankTiming
	Ranks           int
}

// Figure12 measures activeness evaluation, purge decision, and
// snapshot scan cost with per-rank probes.
func (s *Suite) Figure12(ranks int) (*Figure12Result, error) {
	res := &Figure12Result{Ranks: ranks}

	// Build a fresh emulator (bypassing the suite cache) so the load
	// and indexing cost is measured, not a cache hit.
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	timer := profiling.StartTimer()
	em, err := sim.New(s.ds, sim.Config{
		Lifetime:          timeutil.Days(90),
		TargetUtilization: config.TargetUtilization,
		CaptureAt:         CaptureDate,
	})
	if err != nil {
		return nil, err
	}
	res.Load.LoadTime = timer.Elapsed()
	runtime.ReadMemStats(&after)
	if after.HeapAlloc > before.HeapAlloc {
		res.Load.HeapBytes = after.HeapAlloc - before.HeapAlloc
	}
	res.Load.Users = len(s.ds.Users)
	res.Load.Jobs = len(s.ds.Jobs)
	res.Load.Accesses = len(s.ds.Accesses)
	res.Load.Pubs = len(s.ds.Publications)
	res.Load.SnapshotEntries = len(s.ds.Snapshot.Entries)

	pool := parallel.NewPool(ranks)
	ev := em.Evaluator()
	n := len(s.ds.Users)
	rankTable := make([]activeness.Rank, n)
	res.EvalTimings, err = pool.TimedShards(n, func(rank, lo, hi int) {
		for u := lo; u < hi; u++ {
			rankTable[u] = ev.EvaluateUser(trace.UserID(u), CaptureDate)
		}
	})
	if err != nil {
		return nil, err
	}

	// Purge decision: evaluate the lifetime test for every file in
	// the base snapshot, sharded.
	fsys := em.BaseFS()
	snap := fsys.Snapshot(CaptureDate)
	adr, err := em.NewActiveDR()
	if err != nil {
		return nil, err
	}
	lifetime := adr.Config().Lifetime
	res.DecisionTimings, err = pool.TimedShards(len(snap.Entries), func(rank, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := &snap.Entries[i]
			mult := rankTable[e.User].LifetimeMultiplier()
			eps := timeutil.Duration(float64(lifetime) * mult)
			_ = CaptureDate.Sub(e.ATime) > eps
		}
	})
	if err != nil {
		return nil, err
	}

	res.Index = fsys.Stats()

	// Snapshot scan: walk shards of the namespace, summing sizes.
	paths := make([]string, 0, len(snap.Entries))
	for i := range snap.Entries {
		paths = append(paths, snap.Entries[i].Path)
	}
	res.ScanTimings, err = pool.TimedShards(len(paths), func(rank, lo, hi int) {
		var bytes int64
		for i := lo; i < hi; i++ {
			if m, ok := fsys.Lookup(paths[i]); ok {
				bytes += m.Size
			}
		}
		_ = bytes
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render writes the performance report.
func (r *Figure12Result) Render(w io.Writer) {
	fmt.Fprintln(w, "== Figure 12: performance evaluation ==")
	fmt.Fprintf(w, "traces: users=%d jobs=%d accesses=%d pubs=%d snapshot=%d files\n",
		r.Load.Users, r.Load.Jobs, r.Load.Accesses, r.Load.Pubs, r.Load.SnapshotEntries)
	fmt.Fprintf(w, "(a) load+index time=%v heap≈%.1f MiB\n",
		r.Load.LoadTime, float64(r.Load.HeapBytes)/(1<<20))
	fmt.Fprintf(w, "(a) prefix tree: %d files in %d nodes, %.2f MiB of edge labels\n",
		r.Index.Files, r.Index.Nodes, float64(r.Index.LabelBytes)/(1<<20))
	for _, block := range []struct {
		name    string
		timings []parallel.RankTiming
	}{
		{"(b) activeness evaluation", r.EvalTimings},
		{"(b) purge decision", r.DecisionTimings},
		{"(c/d) snapshot scan", r.ScanTimings},
	} {
		fmt.Fprintf(w, "%s, %d ranks:\n", block.name, r.Ranks)
		for _, tm := range block.timings {
			fmt.Fprintf(w, "  %s\n", tm)
		}
	}
}

// RunAll renders every table and figure to w (cmd/report's default).
// The replay comparisons behind the figures are precomputed with a
// single multiplexed pass first (one stream walk feeding every
// lifetime's FLT and ActiveDR lane); the figures then render from the
// cache in order. The ranks parameter is kept for callers that still
// size a pool, but the multiplexed sweep replaces the per-lifetime
// fan-out.
func (s *Suite) RunAll(w io.Writer, ranks int) error {
	_ = ranks
	if err := s.PrecomputeMultiplexed(config.PeriodLengths); err != nil {
		return err
	}
	s.Table1().Render(w)
	f1, err := s.Figure1()
	if err != nil {
		return err
	}
	f1.Render(w)
	f5, err := s.Figure5()
	if err != nil {
		return err
	}
	f5.Render(w)
	f6, err := s.Figure6()
	if err != nil {
		return err
	}
	f6.Render(w)
	f7, err := s.Figure7()
	if err != nil {
		return err
	}
	f7.Render(w)
	f8, err := s.Figure8()
	if err != nil {
		return err
	}
	f8.Render(w)
	sweep, err := s.RetentionSweep()
	if err != nil {
		return err
	}
	sweep.Figure9(w)
	sweep.Figure10(w)
	sweep.Figure11(w)
	f12, err := s.Figure12(ranks)
	if err != nil {
		return err
	}
	f12.Render(w)
	return nil
}
