package experiments

import (
	"fmt"
	"reflect"
	"testing"

	"activedr/internal/parallel"
	"activedr/internal/sim"
	"activedr/internal/timeutil"
	"activedr/internal/vfs"
)

// normalizeComparison zeroes the wall-clock fields so deterministic
// replay state can be compared across scheduling orders.
func normalizeComparison(c *sim.Comparison) {
	for _, res := range []*sim.Result{c.FLT, c.ActiveDR} {
		res.Elapsed = 0
		for _, r := range res.Reports {
			r.Elapsed = 0
		}
	}
}

// TestPrecomputeMatchesSerial is the parallel-replay contract: running
// the lifetime sweep concurrently on the pool must yield comparisons
// bit-identical to computing them one at a time, since each task
// replays on its own emulator and cloned file system.
func TestPrecomputeMatchesSerial(t *testing.T) {
	lifetimes := []timeutil.Duration{timeutil.Days(30), timeutil.Days(90), timeutil.Days(90)}

	par, err := NewSyntheticSuite(300, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := par.Precompute(parallel.NewPool(4), lifetimes); err != nil {
		t.Fatal(err)
	}

	ser := NewSuite(par.Dataset())
	for _, d := range lifetimes {
		pc, err := par.comparison(d) // cache hit from Precompute
		if err != nil {
			t.Fatal(err)
		}
		sc, err := ser.comparison(d)
		if err != nil {
			t.Fatal(err)
		}
		normalizeComparison(pc)
		normalizeComparison(sc)
		if !reflect.DeepEqual(pc, sc) {
			t.Errorf("lifetime %v: parallel and serial comparisons diverge", d)
		}
	}
}

// sameResult compares two replay results the way the sim equivalence
// suite does: DeepEqual on everything but wall clocks and the file
// systems, then the file systems by their observable snapshot entries
// (a lane-materialized FS is semantically identical to a sequentially
// built one but lays out its index differently).
func sameResult(t *testing.T, label string, want, got *sim.Result) {
	t.Helper()
	w, g := *want, *got
	w.Elapsed, g.Elapsed = 0, 0
	w.Final, g.Final = nil, nil
	w.Captured, g.Captured = nil, nil
	if !reflect.DeepEqual(&w, &g) {
		t.Errorf("%s: results diverge", label)
	}
	for _, fs := range []struct {
		name      string
		want, got vfs.Namespace
	}{{"final", want.Final, got.Final}, {"captured", want.Captured, got.Captured}} {
		if (fs.want == nil) != (fs.got == nil) {
			t.Errorf("%s: %s state presence diverges", label, fs.name)
			continue
		}
		if fs.want != nil && !reflect.DeepEqual(fs.want.Snapshot(0).Entries, fs.got.Snapshot(0).Entries) {
			t.Errorf("%s: %s file-system states diverge", label, fs.name)
		}
	}
}

// TestPrecomputeMultiplexedMatchesSerial pins the same contract for the
// single-pass sweep: one multiplexed replay over all lifetimes must
// fill the cache with comparisons equivalent to dedicated sequential
// replays.
func TestPrecomputeMultiplexedMatchesSerial(t *testing.T) {
	lifetimes := []timeutil.Duration{timeutil.Days(30), timeutil.Days(90), timeutil.Days(90)}

	mux, err := NewSyntheticSuite(300, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := mux.PrecomputeMultiplexed(lifetimes); err != nil {
		t.Fatal(err)
	}

	ser := NewSuite(mux.Dataset())
	for _, d := range lifetimes {
		mc, err := mux.comparison(d) // cache hit from PrecomputeMultiplexed
		if err != nil {
			t.Fatal(err)
		}
		sc, err := ser.comparison(d)
		if err != nil {
			t.Fatal(err)
		}
		for i := range mc.FLT.Reports {
			mc.FLT.Reports[i].Elapsed = 0
			sc.FLT.Reports[i].Elapsed = 0
		}
		for i := range mc.ActiveDR.Reports {
			mc.ActiveDR.Reports[i].Elapsed = 0
			sc.ActiveDR.Reports[i].Elapsed = 0
		}
		sameResult(t, fmt.Sprintf("lifetime %v flt", d), sc.FLT, mc.FLT)
		sameResult(t, fmt.Sprintf("lifetime %v activedr", d), sc.ActiveDR, mc.ActiveDR)
	}
}
