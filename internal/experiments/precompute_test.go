package experiments

import (
	"reflect"
	"testing"

	"activedr/internal/parallel"
	"activedr/internal/sim"
	"activedr/internal/timeutil"
)

// normalizeComparison zeroes the wall-clock fields so deterministic
// replay state can be compared across scheduling orders.
func normalizeComparison(c *sim.Comparison) {
	for _, res := range []*sim.Result{c.FLT, c.ActiveDR} {
		res.Elapsed = 0
		for _, r := range res.Reports {
			r.Elapsed = 0
		}
	}
}

// TestPrecomputeMatchesSerial is the parallel-replay contract: running
// the lifetime sweep concurrently on the pool must yield comparisons
// bit-identical to computing them one at a time, since each task
// replays on its own emulator and cloned file system.
func TestPrecomputeMatchesSerial(t *testing.T) {
	lifetimes := []timeutil.Duration{timeutil.Days(30), timeutil.Days(90), timeutil.Days(90)}

	par, err := NewSyntheticSuite(300, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := par.Precompute(parallel.NewPool(4), lifetimes); err != nil {
		t.Fatal(err)
	}

	ser := NewSuite(par.Dataset())
	for _, d := range lifetimes {
		pc, err := par.comparison(d) // cache hit from Precompute
		if err != nil {
			t.Fatal(err)
		}
		sc, err := ser.comparison(d)
		if err != nil {
			t.Fatal(err)
		}
		normalizeComparison(pc)
		normalizeComparison(sc)
		if !reflect.DeepEqual(pc, sc) {
			t.Errorf("lifetime %v: parallel and serial comparisons diverge", d)
		}
	}
}
