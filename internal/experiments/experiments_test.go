package experiments

import (
	"strings"
	"testing"

	"activedr/internal/activeness"
	"activedr/internal/timeutil"
)

// suite is shared across tests: the replay runs are cached inside.
var shared *Suite

func getSuite(t *testing.T) *Suite {
	t.Helper()
	if shared == nil {
		s, err := NewSyntheticSuite(700, 11)
		if err != nil {
			t.Fatal(err)
		}
		shared = s
	}
	return shared
}

func TestTable1Render(t *testing.T) {
	var b strings.Builder
	getSuite(t).Table1().Render(&b)
	for _, want := range []string{"NCAR", "OLCF", "TACC", "NERSC", "90d"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestFigure1(t *testing.T) {
	s := getSuite(t)
	f1, err := s.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(f1.Days) == 0 {
		t.Fatal("no day stats")
	}
	if f1.Buckets.Total() == 0 {
		t.Error("no days bucketed")
	}
	if f1.DaysOver5Pct > len(f1.Days) {
		t.Error("days over 5% exceed total days")
	}
	var b strings.Builder
	f1.Render(&b)
	if !strings.Contains(b.String(), "Figure 1") {
		t.Error("render missing title")
	}
}

func TestFigure5(t *testing.T) {
	s := getSuite(t)
	f5, err := s.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(f5.Cells) != 4 {
		t.Fatalf("cells = %d, want 4 period lengths", len(f5.Cells))
	}
	for _, c := range f5.Cells {
		if c.Matrix.Total != len(s.Dataset().Users) {
			t.Errorf("%v: matrix total = %d", c.Period, c.Matrix.Total)
		}
		// The paper's headline: the vast majority of users are
		// both-inactive at every period length.
		if c.Matrix.Share(activeness.BothInactive) < 0.7 {
			t.Errorf("%v: both-inactive share = %v", c.Period, c.Matrix.Share(activeness.BothInactive))
		}
	}
	// The op-active share grows with the period length (paper: 1.1% →
	// 3.5%).
	first := f5.Cells[0].Matrix
	last := f5.Cells[3].Matrix
	opShare := func(m activeness.Matrix) float64 {
		return m.Share(activeness.OperationActiveOnly) + m.Share(activeness.BothActive)
	}
	if opShare(last) <= opShare(first) {
		t.Errorf("op-active share did not grow with period: %v → %v", opShare(first), opShare(last))
	}
	var b strings.Builder
	f5.Render(&b)
	if !strings.Contains(b.String(), "90d") {
		t.Error("render missing 90d row")
	}
}

func TestFigure6(t *testing.T) {
	s := getSuite(t)
	f6, err := s.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if f6.TotalMissesFLT == 0 {
		t.Fatal("FLT produced no misses")
	}
	// The headline reproduction target: ActiveDR reduces misses.
	if f6.OverallReduction <= 0 {
		t.Errorf("overall reduction = %v, want > 0", f6.OverallReduction)
	}
	if f6.ADRDaysOver5 > f6.FLTDaysOver5 {
		t.Errorf("ActiveDR has more >5%% days (%d) than FLT (%d)", f6.ADRDaysOver5, f6.FLTDaysOver5)
	}
	var b strings.Builder
	f6.Render(&b)
	if !strings.Contains(b.String(), "ActiveDR") {
		t.Error("render missing policy name")
	}
}

func TestFigure7CumulativeMonotone(t *testing.T) {
	s := getSuite(t)
	f7, err := s.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if len(f7.Months) < 12 {
		t.Fatalf("months = %d, want ≥ 12", len(f7.Months))
	}
	for g := 0; g < activeness.NumGroups; g++ {
		for p := 0; p < 2; p++ {
			series := f7.Cum[g][p]
			for i := 1; i < len(series); i++ {
				if series[i] < series[i-1] {
					t.Fatalf("group %d policy %d not monotone at %d", g, p, i)
				}
			}
		}
	}
	var b strings.Builder
	f7.Render(&b)
	if !strings.Contains(b.String(), "Both Inactive") {
		t.Error("render missing group")
	}
}

func TestFigure8(t *testing.T) {
	s := getSuite(t)
	f8, err := s.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	// Reduction ratios are bounded above by 1 (cannot reduce more than
	// all misses).
	for g, box := range f8.Boxes {
		if box.N > 0 && box.Max > 1 {
			t.Errorf("group %d reduction max = %v > 1", g, box.Max)
		}
	}
	// The dominant group has data on most days.
	if f8.Boxes[activeness.BothInactive].N == 0 {
		t.Error("both-inactive box empty")
	}
	var b strings.Builder
	f8.Render(&b)
	if !strings.Contains(b.String(), "mean=") {
		t.Error("render missing mean")
	}
}

func TestRetentionSweep(t *testing.T) {
	s := getSuite(t)
	sweep, err := s.RetentionSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Cells) != 4 {
		t.Fatalf("cells = %d", len(sweep.Cells))
	}
	for _, c := range sweep.Cells {
		for _, rep := range []*struct {
			name string
			r    interface {
				RetainedBytes() int64
			}
		}{{"FLT", c.FLT}, {"ADR", c.ActiveDR}} {
			if rep.r.RetainedBytes() < 0 {
				t.Errorf("%v %s negative retained bytes", c.Period, rep.name)
			}
		}
		// Affected users: ActiveDR protects active users better than
		// FLT at every period length (Figure 11's claim), checked on
		// the both-active group.
		ba := activeness.BothActive
		if c.AffectedADR[ba] > c.AffectedFLT[ba] {
			t.Errorf("%v: ActiveDR affected %d both-active users, FLT %d",
				c.Period, c.AffectedADR[ba], c.AffectedFLT[ba])
		}
	}
	var b strings.Builder
	sweep.Figure9(&b)
	sweep.Figure10(&b)
	sweep.Figure11(&b)
	out := b.String()
	for _, want := range []string{"Figure 9", "Figure 10", "Figure 11", "Both Active", "7d", "90d"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep render missing %q", want)
		}
	}
}

func TestFigure12(t *testing.T) {
	s := getSuite(t)
	f12, err := s.Figure12(4)
	if err != nil {
		t.Fatal(err)
	}
	if f12.Load.Users == 0 || f12.Load.SnapshotEntries == 0 {
		t.Fatal("load stats empty")
	}
	if len(f12.EvalTimings) == 0 || len(f12.ScanTimings) == 0 || len(f12.DecisionTimings) == 0 {
		t.Fatal("rank timings missing")
	}
	items := 0
	for _, tm := range f12.EvalTimings {
		items += tm.Items
	}
	if items != f12.Load.Users {
		t.Errorf("eval items = %d, want %d", items, f12.Load.Users)
	}
	var b strings.Builder
	f12.Render(&b)
	if !strings.Contains(b.String(), "rank") {
		t.Error("render missing rank timings")
	}
}

func TestReportAtFallsBack(t *testing.T) {
	if reportAt(nil, CaptureDate) != nil {
		t.Fatal("nil reports should yield nil")
	}
}

func TestRunAll(t *testing.T) {
	s := getSuite(t)
	var b strings.Builder
	if err := s.RunAll(&b, 2); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table 1", "Figure 1", "Figure 5", "Figure 6", "Figure 7", "Figure 8", "Figure 9", "Figure 10", "Figure 11", "Figure 12"} {
		if !strings.Contains(out, want) {
			t.Errorf("RunAll missing %q", want)
		}
	}
}

func TestNewSyntheticSuiteRejectsBadScale(t *testing.T) {
	if _, err := NewSyntheticSuite(-5, 1); err == nil {
		t.Fatal("negative user count accepted")
	}
}

func TestEmulatorCaching(t *testing.T) {
	s := getSuite(t)
	a, err := s.emulator(timeutil.Days(90))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.emulator(timeutil.Days(90))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("emulator not cached")
	}
}

func TestAblation(t *testing.T) {
	s := getSuite(t)
	abl, err := s.Ablation()
	if err != nil {
		t.Fatal(err)
	}
	if len(abl.Rows) != 7 {
		t.Fatalf("rows = %d, want 7 variants", len(abl.Rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range abl.Rows {
		byName[r.Name] = r
		if r.FLTMisses == 0 {
			t.Errorf("%s: no FLT misses", r.Name)
		}
		if r.TargetReachedFrac < 0 || r.TargetReachedFrac > 1 {
			t.Errorf("%s: target fraction %v", r.Name, r.TargetReachedFrac)
		}
	}
	base := byName["baseline"]
	if base.Reduction <= 0 {
		t.Errorf("baseline reduction = %v, want positive", base.Reduction)
	}
	// Without the purge target ActiveDR loses its inactive-user
	// protection: the reduction must not beat the baseline.
	if nt := byName["no-target"]; nt.Reduction > base.Reduction {
		t.Errorf("no-target reduction %v beats baseline %v", nt.Reduction, base.Reduction)
	}
	// The no-target variant never has a target to reach → reported as
	// reached on every trigger by construction.
	if len(abl.RestoreCosts) != 3 {
		t.Fatalf("restore cost rows = %d", len(abl.RestoreCosts))
	}
	for _, rc := range abl.RestoreCosts {
		if rc.FLT <= 0 || rc.ADR <= 0 {
			t.Errorf("%s: non-positive restore cost", rc.Model.Name)
		}
		if rc.Savings != rc.FLT-rc.ADR {
			t.Errorf("%s: savings inconsistent", rc.Model.Name)
		}
	}
	var b strings.Builder
	abl.Render(&b)
	for _, want := range []string{"Ablation", "baseline", "strict-eq7", "HPSS tape", "ActiveDR saves"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
}
