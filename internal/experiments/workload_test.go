package experiments

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"activedr/internal/sim"
	"activedr/internal/workload"
)

// loadIN2P3Sample adapts the bundled IN2P3 export fixture.
func loadIN2P3Sample(t *testing.T) *Suite {
	t.Helper()
	path := filepath.Join("..", "workload", "testdata", "in2p3_sample.csv")
	ds, rep, err := workload.LoadIN2P3(path, workload.IN2P3Options{Zone: workload.DefaultZone, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors) != 0 {
		t.Fatalf("sample fixture quarantined %d records", len(rep.Errors))
	}
	return NewSuite(ds)
}

// TestWorkloadScenario runs the real-trace scenario end to end: source
// replay, 1x fidelity row, and a 2x upscale through the out-of-core
// snapfile path, then renders the report.
func TestWorkloadScenario(t *testing.T) {
	s := loadIN2P3Sample(t)
	res, err := s.WorkloadScenario(WorkloadScenarioConfig{
		Scales:  []int{1, 2},
		Seed:    99,
		SnapDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) != 3 {
		t.Fatalf("got %d traces, want 3 (source, 1x, 2x)", len(res.Traces))
	}
	src, one, two := res.Traces[0], res.Traces[1], res.Traces[2]
	if src.Scale != 0 || one.Scale != 1 || two.Scale != 2 {
		t.Fatalf("unexpected scale order: %d, %d, %d", src.Scale, one.Scale, two.Scale)
	}
	if one.Users != src.Users || two.Users != 2*src.Users {
		t.Fatalf("user counts: source %d, 1x %d, 2x %d", src.Users, one.Users, two.Users)
	}
	// Snapshot mass is pinned exactly by the strata, at every scale.
	if one.SnapshotBytes != src.SnapshotBytes || two.SnapshotBytes != 2*src.SnapshotBytes {
		t.Fatalf("snapshot bytes: source %d, 1x %d, 2x %d",
			src.SnapshotBytes, one.SnapshotBytes, two.SnapshotBytes)
	}
	if one.OutOfCore || !two.OutOfCore {
		t.Fatalf("out-of-core flags: 1x %v (want false), 2x %v (want true)",
			one.OutOfCore, two.OutOfCore)
	}
	for _, policy := range []string{sim.PolicyFLT, sim.PolicyActiveDR} {
		if src.Purged[policy] == 0 {
			t.Errorf("source replay purged nothing under %s", policy)
		}
		// The 1x row is the fidelity acceptance surface: within 5%.
		if d := math.Abs(one.Delta[policy]); d > 0.05 {
			t.Errorf("1x %s purge delta %.3f exceeds 5%%", policy, d)
		}
		if two.Purged[policy] == 0 {
			t.Errorf("2x out-of-core replay purged nothing under %s", policy)
		}
	}

	var out strings.Builder
	res.Render(&out)
	for _, want := range []string{"activeness-class shares", "per-policy replay totals",
		"source", "regen 1x", "regen 2x", "snapfile, 4 shards"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
}
