package experiments

import (
	"fmt"
	"io"
	"time"

	"activedr/internal/archive"
	"activedr/internal/config"
	"activedr/internal/report"
	"activedr/internal/retention"
	"activedr/internal/sim"
	"activedr/internal/timeutil"
)

// AblationRow is one design variant's outcome on the replay year.
type AblationRow struct {
	Name        string
	Description string
	FLTMisses   int64
	ADRMisses   int64
	Reduction   float64
	// TargetReachedFrac is the fraction of ActiveDR purge triggers
	// that met the purge target.
	TargetReachedFrac float64
}

// AblationResult backs the design-choice ablation table (DESIGN.md §3
// calls out each knob).
type AblationResult struct {
	Rows []AblationRow
	// RestoreCosts estimates the archive-recall time of each policy's
	// misses under the reference archive models (baseline variant).
	RestoreCosts []RestoreCostRow
}

// RestoreCostRow is the miss cost under one archive model.
type RestoreCostRow struct {
	Model   archive.Model
	FLT     time.Duration
	ADR     time.Duration
	Savings time.Duration
}

// ablationVariants enumerates the design-knob settings under test.
func ablationVariants() []struct {
	name, desc string
	cfg        sim.Config
} {
	base := sim.Config{TargetUtilization: config.TargetUtilization}
	withOrder := base
	withOrder.Order = retention.ScanOrderMergedByOutcome
	strict := base
	strict.StrictEq7 = true
	noTarget := sim.Config{TargetUtilization: 0}
	gentleRetro := base
	gentleRetro.RetroPasses = 1
	gentleRetro.RetroDecay = 0.95
	shortPeriod := base
	shortPeriod.PeriodLength = timeutil.Days(30)
	extraTypes := base
	extraTypes.UseLogins = true
	extraTypes.UseTransfers = true
	return []struct {
		name, desc string
		cfg        sim.Config
	}{
		{"baseline", "paper configuration (90d, 50% target, 5 retro passes)", base},
		{"merged-scan-order", "op-active groups merged, ordered by Φ_oc (§3.4 alt. reading)", withOrder},
		{"strict-eq7", "literal Eq. 7 product, no active-class flooring", strict},
		{"no-target", "purge target disabled: every stale file purged", noTarget},
		{"gentle-retro", "1 retrospective pass, 5% decay", gentleRetro},
		{"period-30d", "activeness period decoupled: 30d periods, 90d lifetime", shortPeriod},
		{"all-op-types", "logins + transfers as extra operation activities", extraTypes},
	}
}

// Ablation replays the year once per design variant.
func (s *Suite) Ablation() (*AblationResult, error) {
	res := &AblationResult{}
	for _, v := range ablationVariants() {
		em, err := sim.New(s.ds, v.cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %s: %w", v.name, err)
		}
		cmp, err := em.RunComparison()
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %s: %w", v.name, err)
		}
		reached := 0
		for _, rep := range cmp.ActiveDR.Reports {
			if rep.TargetReached {
				reached++
			}
		}
		frac := 0.0
		if len(cmp.ActiveDR.Reports) > 0 {
			frac = float64(reached) / float64(len(cmp.ActiveDR.Reports))
		}
		res.Rows = append(res.Rows, AblationRow{
			Name:              v.name,
			Description:       v.desc,
			FLTMisses:         cmp.FLT.TotalMisses,
			ADRMisses:         cmp.ActiveDR.TotalMisses,
			Reduction:         cmp.MissReduction(),
			TargetReachedFrac: frac,
		})
		if v.name == "baseline" {
			for _, m := range archive.Models() {
				res.RestoreCosts = append(res.RestoreCosts, RestoreCostRow{
					Model:   m,
					FLT:     cmp.FLT.RestoreCost(m),
					ADR:     cmp.ActiveDR.RestoreCost(m),
					Savings: cmp.RestoreSavings(m),
				})
			}
		}
	}
	return res, nil
}

// Render writes the ablation and restore-cost tables.
func (r *AblationResult) Render(w io.Writer) {
	t := report.NewTable("Ablation: design choices of DESIGN.md §3",
		"Variant", "FLT misses", "ActiveDR misses", "Reduction", "Target met", "Description")
	for _, row := range r.Rows {
		t.AddRow(row.Name,
			fmt.Sprint(row.FLTMisses), fmt.Sprint(row.ADRMisses),
			report.Percent(row.Reduction),
			fmt.Sprintf("%.0f%%", 100*row.TargetReachedFrac),
			row.Description)
	}
	t.Render(w)
	c := report.NewTable("Miss cost: estimated archive-recall time (baseline variant)",
		"Archive model", "FLT", "ActiveDR", "ActiveDR saves")
	for _, row := range r.RestoreCosts {
		c.AddRow(row.Model.String(),
			row.FLT.Round(time.Minute).String(),
			row.ADR.Round(time.Minute).String(),
			row.Savings.Round(time.Minute).String())
	}
	c.Render(w)
}
