package experiments

// Workload scenario: the real-trace counterpart of the synthetic
// figures. The suite's dataset (typically an IN2P3 adaptation) is
// replayed as-is, fitted into a reconstruction model, regenerated at
// each requested scale, and every trace runs through the multiplexed
// FLT/ActiveDR sweep. The report compares activeness-class shares and
// per-policy purge totals across source and reconstructions, with the
// upscaled runs normalized back to 1x-equivalents.

import (
	"fmt"
	"io"
	"path/filepath"

	"activedr/internal/report"
	"activedr/internal/sim"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
	"activedr/internal/vfs"
	"activedr/internal/workload"
)

// workloadSimConfig is the replay setting every workload trace runs
// under — the same 90-day/weekly/50% point the reconstruction
// fidelity acceptance pins.
var workloadSimConfig = sim.Config{
	Lifetime:          timeutil.Days(90),
	TriggerInterval:   timeutil.Days(7),
	TargetUtilization: 0.5,
}

// workloadShards is the namespace layout for out-of-core upscale
// replays (snapfile-backed, user-hash-sharded).
const workloadShards = 4

// WorkloadScenarioConfig parameterizes the scenario.
type WorkloadScenarioConfig struct {
	// Scales lists the regeneration multipliers; nil selects {1, 10}.
	Scales []int
	// Seed drives the regeneration draws.
	Seed uint64
	// SnapDir, when non-empty, routes every scale > 1 through the
	// out-of-core path: the snapshot streams into a snapfile there and
	// the replay runs against the snapfile-backed sharded VFS instead
	// of a materialized snapshot.
	SnapDir string
}

// WorkloadTrace is one replayed trace (the source or a regeneration).
type WorkloadTrace struct {
	Name          string
	Scale         int // 0 for the source
	Users         int
	SnapshotBytes int64
	// ClassShares is the activeness-class breakdown of the trace's own
	// fit (the source row carries the model the regenerations used).
	ClassShares map[string]float64
	// Purged/Misses are per-policy replay totals, keyed by
	// sim.PolicyFLT / sim.PolicyActiveDR.
	Purged map[string]int64
	Misses map[string]int64
	// Delta is the per-policy purge-total offset versus the source,
	// after dividing the upscaled total by the scale: 0.03 means the
	// reconstruction purges 3% more per 1x-equivalent than the source.
	Delta map[string]float64
	// OutOfCore marks rows replayed through the snapfile+sharded path.
	OutOfCore bool
}

// WorkloadScenarioResult backs the scenario report.
type WorkloadScenarioResult struct{ Traces []WorkloadTrace }

// workloadLanes is the two-lane FLT/ActiveDR spec every trace runs.
func workloadLanes(cfg sim.Config) []sim.LaneSpec {
	return []sim.LaneSpec{
		{Config: cfg, Policy: sim.PolicyFLT},
		{Config: cfg, Policy: sim.PolicyActiveDR},
	}
}

// workloadReplay runs the multiplexed two-lane sweep and folds the
// results into per-policy totals.
func workloadReplay(m *sim.Multiplexer, cfg sim.Config) (purged, misses map[string]int64, err error) {
	res, err := m.Run(workloadLanes(cfg))
	if err != nil {
		return nil, nil, err
	}
	purged = make(map[string]int64, 2)
	misses = make(map[string]int64, 2)
	for i, policy := range []string{sim.PolicyFLT, sim.PolicyActiveDR} {
		var b int64
		for _, rep := range res[i].Reports {
			b += rep.PurgedBytes
		}
		purged[policy] = b
		misses[policy] = res[i].TotalMisses
	}
	return purged, misses, nil
}

// WorkloadScenario fits the suite's dataset, regenerates it at each
// scale, and replays everything through the multiplexed policy sweep.
func (s *Suite) WorkloadScenario(cfg WorkloadScenarioConfig) (*WorkloadScenarioResult, error) {
	scales := cfg.Scales
	if len(scales) == 0 {
		scales = []int{1, 10}
	}
	m, err := workload.Fit(s.ds)
	if err != nil {
		return nil, fmt.Errorf("experiments: fit workload model: %w", err)
	}

	mux, err := sim.NewMultiplexer(s.ds)
	if err != nil {
		return nil, err
	}
	srcPurged, srcMisses, err := workloadReplay(mux, workloadSimConfig)
	if err != nil {
		return nil, fmt.Errorf("experiments: source replay: %w", err)
	}
	res := &WorkloadScenarioResult{Traces: []WorkloadTrace{{
		Name:          "source",
		Users:         len(s.ds.Users),
		SnapshotBytes: s.ds.Snapshot.TotalBytes(),
		ClassShares:   m.ClassShares(),
		Purged:        srcPurged,
		Misses:        srcMisses,
	}}}

	for _, scale := range scales {
		row, err := s.workloadRegenRow(m, scale, cfg, srcPurged)
		if err != nil {
			return nil, fmt.Errorf("experiments: %dx regen: %w", scale, err)
		}
		res.Traces = append(res.Traces, *row)
	}
	return res, nil
}

// workloadRegenRow regenerates at one scale and replays it, either on
// a materialized snapshot or (SnapDir set, scale > 1) through the
// snapfile + sharded-VFS out-of-core path.
func (s *Suite) workloadRegenRow(m *workload.Model, scale int, cfg WorkloadScenarioConfig, srcPurged map[string]int64) (*WorkloadTrace, error) {
	outOfCore := cfg.SnapDir != "" && scale > 1
	rcfg := workload.RegenConfig{Scale: scale, Seed: cfg.Seed, SkipSnapshot: outOfCore}
	ds, err := workload.Regen(m, rcfg)
	if err != nil {
		return nil, err
	}
	refit, err := workload.Fit(ds)
	if err != nil {
		return nil, err
	}

	simCfg := workloadSimConfig
	var mux *sim.Multiplexer
	var snapBytes int64
	if outOfCore {
		snapBytes, mux, err = workloadOutOfCore(m, rcfg, ds, filepath.Join(cfg.SnapDir, fmt.Sprintf("regen%dx.snap", scale)))
		if err != nil {
			return nil, err
		}
		simCfg.Shards = workloadShards
	} else {
		snapBytes = ds.Snapshot.TotalBytes()
		mux, err = sim.NewMultiplexer(ds)
		if err != nil {
			return nil, err
		}
	}
	purged, misses, err := workloadReplay(mux, simCfg)
	if err != nil {
		return nil, err
	}
	row := &WorkloadTrace{
		Name:          fmt.Sprintf("regen %dx", scale),
		Scale:         scale,
		Users:         len(ds.Users),
		SnapshotBytes: snapBytes,
		ClassShares:   refit.ClassShares(),
		Purged:        purged,
		Misses:        misses,
		Delta:         make(map[string]float64, 2),
		OutOfCore:     outOfCore,
	}
	for policy, got := range purged {
		if want := srcPurged[policy]; want != 0 {
			row.Delta[policy] = float64(got)/float64(scale)/float64(want) - 1
		}
	}
	return row, nil
}

// workloadOutOfCore streams the scaled snapshot into a snapfile and
// reopens it as the replay's base file system — the bounded-memory
// path a full-scale run takes; the dataset itself never materializes
// the namespace.
func workloadOutOfCore(m *workload.Model, rcfg workload.RegenConfig, ds *trace.Dataset, snapPath string) (int64, *sim.Multiplexer, error) {
	w, err := vfs.NewSnapfileWriter(snapPath, m.Taken)
	if err != nil {
		return 0, nil, err
	}
	if _, err := workload.StreamSnapshot(m, rcfg, func(e trace.SnapshotEntry) error {
		return w.Add(e.Path, vfs.FileMeta{User: e.User, Size: e.Size, Stripes: e.Stripes, ATime: e.ATime})
	}); err != nil {
		_ = w.Abort()
		return 0, nil, err
	}
	if err := w.Finish(); err != nil {
		return 0, nil, err
	}
	sf, err := vfs.OpenSnapfile(snapPath)
	if err != nil {
		return 0, nil, err
	}
	base, err := vfs.LoadSnapfileFS(sf)
	if cerr := sf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, nil, err
	}
	ds.Snapshot.Taken = m.Taken
	return base.TotalBytes(), sim.NewMultiplexerWithBase(ds, base), nil
}

// Render writes the scenario report: class-share fidelity first, then
// the per-policy purge/miss comparison.
func (r *WorkloadScenarioResult) Render(w io.Writer) {
	classes := []string{workload.ClassDormant, workload.ClassCasual, workload.ClassSteady, workload.ClassPower}
	ct := report.NewTable("Workload scenario: activeness-class shares (fit of each trace)",
		"Trace", "Users", "Snapshot", classes[0], classes[1], classes[2], classes[3])
	for _, tr := range r.Traces {
		row := []string{tr.Name, fmt.Sprint(tr.Users), report.Bytes(tr.SnapshotBytes)}
		for _, c := range classes {
			row = append(row, fmt.Sprintf("%.1f%%", 100*tr.ClassShares[c]))
		}
		ct.AddRow(row...)
	}
	ct.Render(w)

	pt := report.NewTable("Workload scenario: per-policy replay totals",
		"Trace", "Policy", "Purged", "Misses", "Δ/1x vs source", "Replay")
	for _, tr := range r.Traces {
		for _, policy := range []string{sim.PolicyFLT, sim.PolicyActiveDR} {
			delta := "—"
			if tr.Scale > 0 {
				delta = report.Percent(tr.Delta[policy])
			}
			mode := "in-memory"
			if tr.OutOfCore {
				mode = fmt.Sprintf("snapfile, %d shards", workloadShards)
			}
			pt.AddRow(tr.Name, policy, report.Bytes(tr.Purged[policy]),
				fmt.Sprint(tr.Misses[policy]), delta, mode)
		}
	}
	pt.Render(w)
}
