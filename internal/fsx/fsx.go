// Package fsx provides the durable file-system primitives the
// checkpoint and write-ahead-log layers build on: atomic file
// replacement that survives power loss, and explicit directory
// fsyncs. The rename trick alone ("write tmp, rename over target")
// only guarantees atomicity against concurrent readers — durability
// against a crash additionally requires fsyncing the file *before*
// the rename (or the rename can publish a name pointing at
// zero-length garbage) and fsyncing the parent directory *after* it
// (or the rename itself can be rolled back, resurrecting a stale
// pointer such as a checkpoint LATEST file).
package fsx

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// syncs counts every fsync issued through this package. Tests assert
// on it to prove the durability barriers are actually in the path —
// there is no portable way to observe an fsync after the fact.
var syncs atomic.Int64

// SyncCount returns the number of fsyncs issued through this package
// since process start.
func SyncCount() int64 { return syncs.Load() }

// SyncFile fsyncs an open file.
func SyncFile(f *os.File) error {
	syncs.Add(1)
	return f.Sync()
}

// SyncDir fsyncs the directory at path, making previously executed
// renames and creates inside it durable.
func SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("fsx: sync dir %s: %w", path, err)
	}
	syncs.Add(1)
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("fsx: sync dir %s: %w", path, serr)
	}
	if cerr != nil {
		return fmt.Errorf("fsx: sync dir %s: %w", path, cerr)
	}
	return nil
}

// WriteFileAtomic durably replaces path with data: write to a
// sibling temp file, fsync it, rename over path, fsync the parent
// directory. After it returns, a crash at any point leaves either the
// old content or the new content at path, and the new content cannot
// be rolled back by the crash.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return fmt.Errorf("fsx: write %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		closeAndRemove(f, tmp)
		return fmt.Errorf("fsx: write %s: %w", path, err)
	}
	if err := SyncFile(f); err != nil {
		closeAndRemove(f, tmp)
		return fmt.Errorf("fsx: sync %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fsx: close %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fsx: rename %s: %w", path, err)
	}
	return SyncDir(dir)
}

// RenameDurable renames oldpath to newpath and fsyncs newpath's
// parent directory so the rename survives a crash. The caller is
// responsible for having synced the content beneath oldpath first.
func RenameDurable(oldpath, newpath string) error {
	if err := os.Rename(oldpath, newpath); err != nil {
		return fmt.Errorf("fsx: rename %s -> %s: %w", oldpath, newpath, err)
	}
	return SyncDir(filepath.Dir(newpath))
}

// closeAndRemove is the error-path cleanup for a half-written temp
// file; the original error is already being returned, so these
// failures are deliberately dropped.
func closeAndRemove(f *os.File, path string) {
	_ = f.Close()
	_ = os.Remove(path)
}
