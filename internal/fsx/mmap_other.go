//go:build !linux

package fsx

import (
	"errors"
	"os"
)

// MmapSupported reports whether read-only memory mapping is available
// on this platform; when false, Mmap always fails and callers fall
// back to paged reads.
const MmapSupported = false

// ErrMmapUnsupported is returned by Mmap on platforms without a
// memory-mapping implementation; callers fall back to paged reads.
var ErrMmapUnsupported = errors.New("fsx: mmap not supported on this platform")

// Mmap is unavailable on this platform.
func Mmap(_ *os.File, _ int64) ([]byte, func() error, error) {
	return nil, nil, ErrMmapUnsupported
}
