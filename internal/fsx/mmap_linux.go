//go:build linux

package fsx

import (
	"fmt"
	"os"
	"syscall"
)

// MmapSupported reports whether read-only memory mapping is available
// on this platform; when false, Mmap always fails and callers fall
// back to paged reads.
const MmapSupported = true

// Mmap maps size bytes of f read-only. It returns the mapping and an
// unmap function that must be called exactly once when the mapping is
// no longer referenced. A zero size maps nothing (empty slice, no-op
// unmap): mmap of length 0 is an error on Linux.
func Mmap(f *os.File, size int64) ([]byte, func() error, error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	if size < 0 || size > int64(^uint(0)>>1) {
		return nil, nil, fmt.Errorf("fsx: mmap size %d out of range", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("fsx: mmap: %w", err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
