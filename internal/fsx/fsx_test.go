package fsx

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomicReplacesContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "LATEST")
	for _, want := range []string{"t000001\n", "t000002\n", ""} {
		if err := WriteFileAtomic(path, []byte(want), 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != want {
			t.Fatalf("content = %q, want %q", got, want)
		}
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

// TestWriteFileAtomicIssuesDurabilityBarriers proves both fsyncs are
// in the write path: one on the temp file before the rename, one on
// the parent directory after it. Without the first, a crash can
// publish a name pointing at unwritten data; without the second, the
// rename itself can be rolled back and resurrect the old content.
func TestWriteFileAtomicIssuesDurabilityBarriers(t *testing.T) {
	dir := t.TempDir()
	before := SyncCount()
	if err := WriteFileAtomic(filepath.Join(dir, "f"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if n := SyncCount() - before; n < 2 {
		t.Fatalf("WriteFileAtomic issued %d fsyncs, want >= 2 (file + parent dir)", n)
	}
}

func TestRenameDurableSyncsTargetDir(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "ck.tmp")
	dst := filepath.Join(dir, "ck")
	if err := os.MkdirAll(src, 0o755); err != nil {
		t.Fatal(err)
	}
	before := SyncCount()
	if err := RenameDurable(src, dst); err != nil {
		t.Fatal(err)
	}
	if n := SyncCount() - before; n < 1 {
		t.Fatalf("RenameDurable issued %d fsyncs, want >= 1 (parent dir)", n)
	}
	if fi, err := os.Stat(dst); err != nil || !fi.IsDir() {
		t.Fatalf("rename target missing: %v", err)
	}
}

func TestSyncDirMissing(t *testing.T) {
	if err := SyncDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("SyncDir on a missing directory should fail")
	}
}

func TestWriteFileAtomicIntoMissingDir(t *testing.T) {
	if err := WriteFileAtomic(filepath.Join(t.TempDir(), "sub", "f"), []byte("x"), 0o644); err == nil {
		t.Fatal("WriteFileAtomic into a missing directory should fail")
	}
}
