package sim

import (
	"io"
	"testing"

	"activedr/internal/obs"
)

// The pair below is the observability overhead contract: with no
// Observer the replay takes the nil fast path (a dead branch per
// access and per purge decision), and with full instrumentation —
// registry, event stream, 100% audit — the atomic counters and pooled
// JSONL encoding must stay within a few percent of the baseline.
//
//	go test -bench 'Replay' -benchmem ./internal/sim/

func benchReplay(b *testing.B, o func() *obs.Observer) {
	ds := tinyDataset()
	cfg := Config{TargetUtilization: 0.5}
	em, err := New(ds, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol, err := em.NewActiveDR()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := em.RunWith(pol, RunOptions{Obs: o()}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplayBare(b *testing.B) {
	benchReplay(b, func() *obs.Observer { return nil })
}

func BenchmarkReplayMetrics(b *testing.B) {
	benchReplay(b, func() *obs.Observer {
		o, err := obs.NewObserver(obs.NewRegistry(), nil, 0)
		if err != nil {
			b.Fatal(err)
		}
		return o
	})
}

func BenchmarkReplayObserved(b *testing.B) {
	benchReplay(b, func() *obs.Observer {
		o, err := obs.NewObserver(obs.NewRegistry(), obs.NewEventWriter(io.Discard), 1)
		if err != nil {
			b.Fatal(err)
		}
		return o
	})
}
