package sim

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"activedr/internal/faults"
	"activedr/internal/retention"
	"activedr/internal/synth"
	"activedr/internal/timeutil"
)

// policyFor builds a named policy fresh, so interrupted and resumed
// runs never share mutable policy state.
func policyFor(t *testing.T, em *Emulator, name string) retention.Policy {
	t.Helper()
	if name == "flt" {
		return em.NewFLT()
	}
	adr, err := em.NewActiveDR()
	if err != nil {
		t.Fatal(err)
	}
	return adr
}

// stripElapsed zeroes the wall-clock fields, the only Result content
// allowed to differ between an uninterrupted and a resumed run.
func stripElapsed(r *Result) {
	r.Elapsed = 0
	for _, rep := range r.Reports {
		rep.Elapsed = 0
	}
}

// requireSameResult asserts bit-for-bit equivalence of two runs:
// misses, per-group series, per-day stats, every purge report, and
// the final (and captured) file-system state.
func requireSameResult(t *testing.T, want, got *Result) {
	t.Helper()
	stripElapsed(want)
	stripElapsed(got)

	wf, gf := want.Final, got.Final
	wc, gc := want.Captured, got.Captured
	want.Final, got.Final = nil, nil
	want.Captured, got.Captured = nil, nil
	defer func() {
		want.Final, got.Final = wf, gf
		want.Captured, got.Captured = wc, gc
	}()

	if !reflect.DeepEqual(want, got) {
		wb, _ := json.Marshal(want)
		gb, _ := json.Marshal(got)
		t.Fatalf("results diverge:\n want %s\n got  %s", wb, gb)
	}
	if (wf == nil) != (gf == nil) {
		t.Fatal("one run lacks a final file system")
	}
	if wf != nil && !reflect.DeepEqual(wf.Snapshot(0).Entries, gf.Snapshot(0).Entries) {
		t.Fatal("final file-system states diverge")
	}
	if (wc == nil) != (gc == nil) {
		t.Fatal("captured state presence diverges")
	}
	if wc != nil && !reflect.DeepEqual(wc.Snapshot(0).Entries, gc.Snapshot(0).Entries) {
		t.Fatal("captured file-system states diverge")
	}
}

// TestCheckpointResumeDeterminism is the kill-and-resume equivalence
// check of the acceptance criteria: a run interrupted at a mid-year
// trigger and resumed from its checkpoint must reproduce the
// uninterrupted run's Result exactly, for both policies, at several
// interruption points, with and without fault injection.
func TestCheckpointResumeDeterminism(t *testing.T) {
	ds := tinyDataset()
	cfg := Config{TargetUtilization: 0.5, CaptureAt: timeutil.Date(2016, 7, 1), SnapshotEvery: timeutil.Days(28)}

	for _, pol := range []string{"flt", "activedr"} {
		for _, faulty := range []bool{false, true} {
			fcfg := faults.Config{Seed: 123, UnlinkFailProb: 0.2, ScanInterruptProb: 0.3}
			newInjector := func() *faults.Injector {
				if !faulty {
					return nil
				}
				return faults.New(fcfg)
			}

			em, err := New(ds, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err := em.RunWith(policyFor(t, em, pol), RunOptions{Faults: newInjector()})
			if err != nil {
				t.Fatal(err)
			}

			for _, stopAt := range []int{1, 5, 20} {
				dir := t.TempDir()
				em1, err := New(ds, cfg)
				if err != nil {
					t.Fatal(err)
				}
				partial, err := em1.RunWith(policyFor(t, em1, pol), RunOptions{
					CheckpointDir:     dir,
					Faults:            newInjector(),
					StopAfterTriggers: stopAt,
				})
				if !errors.Is(err, ErrInterrupted) {
					t.Fatalf("stop=%d: err = %v, want ErrInterrupted", stopAt, err)
				}
				if partial == nil || len(partial.Reports) != stopAt {
					t.Fatalf("stop=%d: partial result has %d reports", stopAt, len(partial.Reports))
				}
				if !HasCheckpoint(dir) {
					t.Fatalf("stop=%d: no checkpoint written", stopAt)
				}

				// A brand-new emulator and policy: nothing survives the
				// "kill" except the checkpoint directory and the dataset.
				em2, err := New(ds, cfg)
				if err != nil {
					t.Fatal(err)
				}
				got, err := em2.Resume(policyFor(t, em2, pol), RunOptions{
					CheckpointDir: dir,
					Faults:        newInjector(),
				})
				if err != nil {
					t.Fatalf("stop=%d: resume: %v", stopAt, err)
				}
				requireSameResult(t, want, got)
			}
		}
	}
}

// TestResumeViaPackageFunc exercises the convenience entry point that
// rebuilds the emulator from scratch.
func TestResumeViaPackageFunc(t *testing.T) {
	ds := tinyDataset()
	cfg := Config{TargetUtilization: 0.5}
	em, err := New(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := em.Run(em.NewFLT())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := em.RunWith(em.NewFLT(), RunOptions{CheckpointDir: dir, StopAfterTriggers: 3}); !errors.Is(err, ErrInterrupted) {
		t.Fatal(err)
	}
	got, err := Resume(ds, cfg, &retention.FLT{Lifetime: timeutil.Days(90)}, RunOptions{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, want, got)
}

func TestResumeRejectsMismatches(t *testing.T) {
	ds := tinyDataset()
	cfg := Config{TargetUtilization: 0.5}
	em, err := New(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	inj := faults.New(faults.Config{Seed: 1, UnlinkFailProb: 0.5})
	if _, err := em.RunWith(em.NewFLT(), RunOptions{CheckpointDir: dir, Faults: inj, StopAfterTriggers: 2}); !errors.Is(err, ErrInterrupted) {
		t.Fatal(err)
	}

	// Wrong policy.
	adr, err := em.NewActiveDR()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := em.Resume(adr, RunOptions{CheckpointDir: dir, Faults: inj}); err == nil {
		t.Fatal("policy mismatch accepted")
	}
	// Wrong configuration.
	em2, err := New(ds, Config{TargetUtilization: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := em2.Resume(em2.NewFLT(), RunOptions{CheckpointDir: dir, Faults: inj}); err == nil {
		t.Fatal("config mismatch accepted")
	}
	// Fault state present but no injector supplied.
	if _, err := em.Resume(em.NewFLT(), RunOptions{CheckpointDir: dir}); err == nil {
		t.Fatal("missing injector accepted")
	}
	// No checkpoint at all.
	if _, err := em.Resume(em.NewFLT(), RunOptions{CheckpointDir: t.TempDir()}); err == nil {
		t.Fatal("empty checkpoint dir accepted")
	}
	if HasCheckpoint(t.TempDir()) {
		t.Fatal("HasCheckpoint true on empty dir")
	}
}

func TestCheckpointPruning(t *testing.T) {
	ds := tinyDataset()
	em, err := New(ds, Config{TargetUtilization: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := em.RunWith(em.NewFLT(), RunOptions{CheckpointDir: dir}); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	dirs := 0
	for _, ent := range ents {
		if ent.IsDir() {
			dirs++
		}
	}
	if dirs > keepCheckpoints {
		t.Fatalf("%d checkpoint dirs kept, want ≤ %d", dirs, keepCheckpoints)
	}
	if !HasCheckpoint(dir) {
		t.Fatal("no resumable checkpoint after full run")
	}
}

// TestCheckpointEverySpacing verifies CheckpointEvery thins the
// checkpoint cadence without breaking resumability.
func TestCheckpointEverySpacing(t *testing.T) {
	ds := tinyDataset()
	em, err := New(ds, Config{TargetUtilization: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	want, err := em.Run(em.NewFLT())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	// Stop at a trigger that is NOT a checkpoint boundary: resume must
	// re-replay from the older checkpoint and still match.
	if _, err := em.RunWith(em.NewFLT(), RunOptions{CheckpointDir: dir, CheckpointEvery: 4, StopAfterTriggers: 6}); !errors.Is(err, ErrInterrupted) {
		t.Fatal(err)
	}
	name, err := readLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if name != "t000004" {
		t.Fatalf("latest checkpoint = %s, want t000004", name)
	}
	got, err := em.Resume(em.NewFLT(), RunOptions{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, want, got)
}

// TestFaultedRunCompletesAndConverges is the fault half of the
// acceptance criteria on a full synthetic workload: a replay with
// injected purge failures completes without panic, observes
// FailedPurges > 0, and — once faults clear mid-year — ActiveDR
// returns to its target utilization.
func TestFaultedRunCompletesAndConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("synthetic year-long replay")
	}
	d, err := synth.Generate(synth.Config{Seed: 11, Users: 400})
	if err != nil {
		t.Fatal(err)
	}
	em, err := New(d, Config{TargetUtilization: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	clearAt := timeutil.Date(2016, 7, 1)
	inj := faults.New(faults.Config{
		Seed:              99,
		UnlinkFailProb:    0.5,
		ScanInterruptProb: 0.5,
		ClearAfter:        clearAt,
	})
	adr, err := em.NewActiveDR()
	if err != nil {
		t.Fatal(err)
	}
	res, err := em.RunWith(adr, RunOptions{Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	var failed int64
	var interrupted int
	for _, rep := range res.Reports {
		failed += rep.FailedPurges
		if rep.Incomplete {
			interrupted++
		}
	}
	if failed == 0 {
		t.Fatal("no failed purges observed under 50% unlink failure")
	}
	if interrupted == 0 {
		t.Fatal("no interrupted scans observed under 50% interrupt probability")
	}
	t.Logf("faulted run: %d failed purges, %d interrupted scans, %d misses",
		failed, interrupted, res.TotalMisses)
	// After the faults clear, every remaining trigger must hit its
	// purge target again: the policy converges, degradation is bounded.
	converged := 0
	for _, rep := range res.Reports {
		if rep.At < clearAt.Add(timeutil.Days(7)) {
			continue
		}
		converged++
		if !rep.TargetReached {
			t.Errorf("trigger %s missed target after faults cleared", rep.At.DateString())
		}
		if rep.FailedPurges != 0 || rep.Incomplete {
			t.Errorf("trigger %s still faulted after ClearAfter", rep.At.DateString())
		}
	}
	if converged == 0 {
		t.Fatal("no post-clear triggers examined")
	}
	cap := em.Config().Capacity
	util := float64(res.Final.TotalBytes()) / float64(cap)
	t.Logf("final utilization %.1f%% of capacity", 100*util)
	// The final state sits at/below target plus the growth since the
	// last trigger (one interval of fresh writes).
	if last := res.Reports[len(res.Reports)-1]; !last.TargetReached {
		t.Fatal("final trigger did not reach target")
	}
}

// TestCheckpointSurvivesSnapshotSeries ensures the snapshot-series
// sidecars roundtrip (same count, same capture times).
func TestCheckpointSurvivesSnapshotSeries(t *testing.T) {
	ds := tinyDataset()
	cfg := Config{TargetUtilization: 0.5, SnapshotEvery: timeutil.Days(14)}
	em, err := New(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := em.Run(em.NewFLT())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := em.RunWith(em.NewFLT(), RunOptions{CheckpointDir: dir, StopAfterTriggers: 10}); !errors.Is(err, ErrInterrupted) {
		t.Fatal(err)
	}
	// The checkpoint must physically contain the series so far.
	name, err := readLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, name, snapsSubdir, "s*.tsv.gz"))
	if len(matches) == 0 {
		t.Fatal("no snapshot sidecars in checkpoint")
	}
	got, err := em.Resume(em.NewFLT(), RunOptions{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Snapshots) != len(want.Snapshots) {
		t.Fatalf("snapshot series length %d, want %d", len(got.Snapshots), len(want.Snapshots))
	}
	for i := range want.Snapshots {
		if got.Snapshots[i].Taken != want.Snapshots[i].Taken {
			t.Errorf("snapshot %d taken %v, want %v", i, got.Snapshots[i].Taken, want.Snapshots[i].Taken)
		}
		if !reflect.DeepEqual(got.Snapshots[i].Entries, want.Snapshots[i].Entries) {
			t.Errorf("snapshot %d entries diverge", i)
		}
	}
}
