package sim

// Multiplexed replay (DESIGN.md §13): evaluate up to 64 independent
// policy instances — a lifetime sweep, an ablation grid, facility
// presets — in ONE pass over the access stream. All lanes share the
// columnar day-batched feed (columnar.go), one vfs.LaneGroup (shared
// prefix tree + candidate index, per-lane divergence bitmasks) and,
// where their activity inputs coincide, one activeness cursor walk per
// trigger (EvaluateUserMulti ranks all registered period lengths off
// one cursor advance, so even a lifetime sweep with four distinct
// periods walks each user history once). Per-lane work shrinks to bit
// checks, counters and the policy's own purge decisions, which is
// where the ≥3× single-core speedup over N sequential replays comes
// from.
//
// Equivalence contract: every lane's Result — reports, day series,
// captured and final file systems, checkpoints on disk — is
// bit-identical to what a sequential Emulator.RunWith of the same
// (Config, Policy, RunOptions) would produce. The test suite proves
// this with and without fault injection (multiplex_test.go).

import (
	"errors"
	"fmt"
	"slices"
	"sync"

	"activedr/internal/activeness"
	"activedr/internal/profiling"
	"activedr/internal/retention"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
	"activedr/internal/vfs"
)

// PolicyFLT and PolicyActiveDR name the lane policies.
const (
	PolicyFLT      = "flt"
	PolicyActiveDR = "activedr"
)

// LaneSpec describes one policy lane of a multiplexed replay.
type LaneSpec struct {
	Config Config
	Policy string // PolicyFLT or PolicyActiveDR
	Opts   RunOptions
}

// evalKey identifies the activeness-evaluator inputs a sequential
// lane needs; lanes with equal keys share one Evaluator.
type evalKey struct {
	period    timeutil.Duration
	logins    bool
	transfers bool
}

// dataKey identifies the activity data an evaluator consumes,
// independent of the period length. Multiplexed lanes with equal data
// keys share one evaluator and one cursor walk per trigger even when
// their period lengths differ: the walk is over the histories, and
// the period only parameterizes the Φ bucketing on top of it.
type dataKey struct {
	logins    bool
	transfers bool
}

// Multiplexer caches the per-dataset artifacts multiplexed runs share:
// the base file system, the columnar feed per trigger interval, and
// the activeness evaluator per input signature. Build one per dataset
// and call Run once per lane set; runs are independent.
type Multiplexer struct {
	ds      *trace.Dataset
	base    *vfs.FS
	feeds   map[timeutil.Duration]*colFeed
	badFeed bool // set when the log is unusable columnar-ly
	evals   map[evalKey]*activeness.Evaluator
	// dataEvals caches evaluators per data signature for multiplexed
	// passes, which rank all period lengths through one evaluator
	// (EvaluateUserMulti ignores the embedded period).
	dataEvals map[dataKey]*activeness.Evaluator
}

// NewMultiplexer loads the dataset's snapshot and prepares the caches.
func NewMultiplexer(ds *trace.Dataset) (*Multiplexer, error) {
	base, err := vfs.FromSnapshot(&ds.Snapshot)
	if err != nil {
		return nil, fmt.Errorf("sim: load snapshot: %w", err)
	}
	return NewMultiplexerWithBase(ds, base), nil
}

// NewMultiplexerWithBase prepares a multiplexer over a pre-built
// initial file system, the multiplexed counterpart of NewWithBase:
// snapfile-backed startup decodes the tree once and shares it across
// every lane. ds.Snapshot.Taken must carry the state's capture time;
// the snapshot's Entries slice is never consulted.
func NewMultiplexerWithBase(ds *trace.Dataset, base *vfs.FS) *Multiplexer {
	return &Multiplexer{
		ds:        ds,
		base:      base,
		feeds:     make(map[timeutil.Duration]*colFeed),
		evals:     make(map[evalKey]*activeness.Evaluator),
		dataEvals: make(map[dataKey]*activeness.Evaluator),
	}
}

func (m *Multiplexer) evaluator(cfg Config) *activeness.Evaluator {
	k := evalKey{cfg.PeriodLength, cfg.UseLogins, cfg.UseTransfers}
	if e, ok := m.evals[k]; ok {
		return e
	}
	e := newEvaluator(m.ds, cfg)
	m.evals[k] = e
	return e
}

// dataEvaluator returns the evaluator shared by every multiplexed
// lane with cfg's activity inputs. Its embedded period length is the
// first such lane's and must not be relied on: multiplexed ranking
// always passes periods explicitly.
func (m *Multiplexer) dataEvaluator(cfg Config) *activeness.Evaluator {
	k := dataKey{cfg.UseLogins, cfg.UseTransfers}
	if e, ok := m.dataEvals[k]; ok {
		return e
	}
	e := newEvaluator(m.ds, cfg)
	m.dataEvals[k] = e
	return e
}

func (m *Multiplexer) feed(interval timeutil.Duration) (*colFeed, bool) {
	if m.badFeed {
		return nil, false
	}
	if f, ok := m.feeds[interval]; ok {
		return f, true
	}
	f, ok := buildColFeed(m.ds, interval)
	if !ok {
		m.badFeed = true
		return nil, false
	}
	m.feeds[interval] = f
	return f, true
}

// sharedRanker memoizes rank tables per trigger time for all lanes
// sharing one activity-data signature. Lanes fire triggers in lockstep
// at the same monotone times, so the first lane's evaluation serves
// the rest: one cursor walk per (trigger, user) ranks every registered
// period length at once, and each lane reads the table for its own
// period index. groups additionally precomputes each table's per-user
// classification as a flat byte table, so the per-event hot path costs
// one indexed load instead of re-classifying a Rank per access.
type sharedRanker struct {
	cursors *activeness.Cursors
	users   int
	periods []timeutil.Duration // registered period lengths, deduplicated
	valid   bool
	at      timeutil.Time
	ranks   [][]activeness.Rank // [period index][user]
	groups  [][]uint8           // [period index][user] → activeness.Group
	scratch []activeness.Rank
}

// period registers a period length and returns its table index. All
// registrations happen before the first evaluation.
func (r *sharedRanker) period(d timeutil.Duration) int {
	for i, p := range r.periods {
		if p == d {
			return i
		}
	}
	r.periods = append(r.periods, d)
	return len(r.periods) - 1
}

// evalAll (re)computes the rank and group tables for every registered
// period at time at. The tables are allocated once and overwritten in
// place at each trigger: every consumer re-reads them at or after the
// trigger that computed them — runState re-fetches through the ranker
// closure each trigger, per-batch group reads always fetch the current
// table, and checkpoints persist only the evaluation time (ranks are
// recomputed on resume) — so no stale reference outlives an overwrite.
func (r *sharedRanker) evalAll(at timeutil.Time) {
	if r.valid && at == r.at {
		return
	}
	np := len(r.periods)
	if r.ranks == nil {
		r.scratch = make([]activeness.Rank, np)
		r.ranks = make([][]activeness.Rank, np)
		r.groups = make([][]uint8, np)
		for pi := range r.ranks {
			r.ranks[pi] = make([]activeness.Rank, r.users)
			r.groups[pi] = make([]uint8, r.users)
		}
	}
	for u := 0; u < r.users; u++ {
		r.cursors.EvaluateUserMulti(trace.UserID(u), at, r.periods, r.scratch)
		for pi, rk := range r.scratch {
			r.ranks[pi][u] = rk
			r.groups[pi][u] = uint8(rk.Group())
		}
	}
	r.at, r.valid = at, true
}

// laneRanker returns the runState ranker closure serving period index
// pi off the shared tables.
func (r *sharedRanker) laneRanker(pi int) func(timeutil.Time) []activeness.Rank {
	return func(at timeutil.Time) []activeness.Rank {
		r.evalAll(at)
		return r.ranks[pi]
	}
}

// groupAt reads a precomputed group table, defaulting users beyond the
// ranked population to the new-user classification — Rank{Op:1, Oc:1}
// with no recorded activity classifies BothInactive — exactly as
// rankGroup does on the Rank table.
func groupAt(gt []uint8, u trace.UserID) activeness.Group {
	if int(u) < len(gt) {
		return activeness.Group(gt[u])
	}
	return activeness.BothInactive
}

// shardedLanes owns the lane-group layout of one multiplexed run:
// one LaneGroup over the whole tree, or — under Config.Shards — one
// LaneGroup per user-hash shard plus the path-id routing tables. Each
// shard's group owns its subtree, candidate index and lane accounting
// outright, so a batch's runs apply shard-parallel with no locks: the
// columnar feed already groups every event of a path into one run,
// and a path lives in exactly one shard.
type shardedLanes struct {
	shards   int
	groups   []*vfs.LaneGroup
	pidShard []uint8          // pid → owning shard (nil when shards == 1)
	pidLocal []int32          // pid → shard-local path id
	evs      [][]vfs.RunEvent // per-shard event scratch
}

// newShardedLanes partitions base and builds the per-shard lane
// groups. The feed's interned paths are routed once: pidShard/pidLocal
// turn the global path id of every run into (shard, local id), so the
// per-shard handle tables stay dense.
func newShardedLanes(base *vfs.FS, nLanes int, feed *colFeed, shards int) (*shardedLanes, error) {
	if shards <= 1 {
		g, err := vfs.NewLaneGroup(base, nLanes, len(feed.paths))
		if err != nil {
			return nil, err
		}
		return &shardedLanes{shards: 1, groups: []*vfs.LaneGroup{g}, evs: make([][]vfs.RunEvent, 1)}, nil
	}
	parts, err := vfs.ShardFS(base, shards)
	if err != nil {
		return nil, err
	}
	sl := &shardedLanes{
		shards:   shards,
		groups:   make([]*vfs.LaneGroup, shards),
		pidShard: make([]uint8, len(feed.paths)),
		pidLocal: make([]int32, len(feed.paths)),
		evs:      make([][]vfs.RunEvent, shards),
	}
	counts := make([]int32, shards)
	for pid, p := range feed.paths {
		si := vfs.ShardIndex(p, shards)
		sl.pidShard[pid] = uint8(si)
		sl.pidLocal[pid] = counts[si]
		counts[si]++
	}
	for si := range sl.groups {
		g, err := vfs.NewLaneGroup(parts.Shard(si), nLanes, int(counts[si]))
		if err != nil {
			return nil, err
		}
		sl.groups[si] = g
	}
	return sl, nil
}

// laneFS returns lane i's namespace: the lane view itself, or a
// Sharded stitched over the per-shard lane-i views — every read
// operation (stale scans, walks, snapshots, clones) k-way merges in
// system order, so policies and checkpoints see exactly the
// single-tree lane state.
func (sl *shardedLanes) laneFS(i int) (vfs.Namespace, error) {
	if sl.shards == 1 {
		return sl.groups[0].Lane(i), nil
	}
	views := make([]*vfs.FS, sl.shards)
	for si := range sl.groups {
		views[si] = sl.groups[si].Lane(i)
	}
	return vfs.ShardedOver(views)
}

// applyBatch applies every run of b and fills missBuf[ri] with run
// ri's per-lane miss mask. Unsharded, the runs apply sequentially in
// the batch's path order. Sharded, each shard's runs apply on their
// own goroutine — disjoint trees, indexes and accounting — while the
// order within a shard stays the batch's path order, so the shared
// state each mask is computed against is identical either way.
func (sl *shardedLanes) applyBatch(acc []trace.Access, feed *colFeed, b *colBatch, missBuf []uint64) {
	if sl.shards == 1 {
		evs := sl.evs[0]
		for ri := range b.runs {
			run := &b.runs[ri]
			seg := feed.order[run.off : run.off+run.n]
			evs = evs[:0]
			for _, idx := range seg {
				a := &acc[idx]
				evs = append(evs, vfs.RunEvent{User: a.User, Size: a.Size, TS: a.TS, Create: a.Create})
			}
			missBuf[ri] = sl.groups[0].ApplyRun(run.pid, feed.paths[run.pid], evs)
		}
		sl.evs[0] = evs
		return
	}
	var wg sync.WaitGroup
	for si := 0; si < sl.shards; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			evs := sl.evs[si]
			g := sl.groups[si]
			for ri := range b.runs {
				run := &b.runs[ri]
				if int(sl.pidShard[run.pid]) != si {
					continue
				}
				seg := feed.order[run.off : run.off+run.n]
				evs = evs[:0]
				for _, idx := range seg {
					a := &acc[idx]
					evs = append(evs, vfs.RunEvent{User: a.User, Size: a.Size, TS: a.TS, Create: a.Create})
				}
				missBuf[ri] = g.ApplyRun(sl.pidLocal[run.pid], feed.paths[run.pid], evs)
			}
			sl.evs[si] = evs
		}(si)
	}
	wg.Wait()
}

// mlane is one lane's live replay machinery.
type mlane struct {
	s        *Stream
	ranker   *sharedRanker
	pi       int       // the lane's period index into ranker's tables
	day      *DayStats // current batch's day bucket
	pendMiss []int32   // event indexes that missed in this batch
}

func (m *Multiplexer) lanePolicy(em *Emulator, name string) (retention.Policy, error) {
	switch name {
	case PolicyFLT:
		return em.NewFLT(), nil
	case PolicyActiveDR:
		return em.NewActiveDR()
	}
	return nil, fmt.Errorf("sim: unknown lane policy %q (want %q or %q)", name, PolicyFLT, PolicyActiveDR)
}

// RunMultiplexed evaluates all lanes in one pass over ds's access log.
// Results are returned in lane order. See Multiplexer for the cache
// reuse across repeated calls.
func RunMultiplexed(ds *trace.Dataset, lanes []LaneSpec) ([]*Result, error) {
	m, err := NewMultiplexer(ds)
	if err != nil {
		return nil, err
	}
	return m.Run(lanes)
}

// Run evaluates all lanes in one multiplexed pass. Every lane's
// Result is bit-identical to a sequential RunWith of the same spec.
func (m *Multiplexer) Run(lanes []LaneSpec) ([]*Result, error) {
	if len(lanes) == 0 {
		return nil, errors.New("sim: multiplexed run needs at least one lane")
	}
	if len(lanes) > 64 {
		return nil, fmt.Errorf("sim: %d lanes exceed the 64-lane group limit", len(lanes))
	}
	cfgs := make([]Config, len(lanes))
	ckptDirs := make(map[string]int, len(lanes))
	for i := range lanes {
		cfg := lanes[i].Config.Defaults()
		if cfg.TriggerInterval <= 0 || cfg.Lifetime <= 0 || cfg.PeriodLength <= 0 {
			return nil, fmt.Errorf("sim: lane %d: non-positive durations in config", i)
		}
		if cfg.Capacity == 0 {
			cfg.Capacity = m.base.TotalBytes()
		}
		if cfg.TriggerInterval != cfgs[0].TriggerInterval && i > 0 {
			return nil, fmt.Errorf("sim: lane %d trigger interval %v differs from lane 0's %v; multiplexed lanes share one trigger grid",
				i, cfg.TriggerInterval, cfgs[0].TriggerInterval)
		}
		if lanes[i].Opts.StopAfterTriggers > 0 {
			return nil, fmt.Errorf("sim: lane %d: StopAfterTriggers is not supported in multiplexed runs", i)
		}
		if d := lanes[i].Opts.CheckpointDir; d != "" {
			if j, dup := ckptDirs[d]; dup {
				return nil, fmt.Errorf("sim: lanes %d and %d share checkpoint dir %q", j, i, d)
			}
			ckptDirs[d] = i
		}
		if err := validateShards(cfg.Shards); err != nil {
			return nil, fmt.Errorf("sim: lane %d: %w", i, err)
		}
		if i > 0 && cfg.Shards != cfgs[0].Shards {
			// Lanes share one tree (or one tree per shard); a per-lane
			// shard count would need per-lane trees, defeating the point.
			return nil, fmt.Errorf("sim: lane %d shard count %d differs from lane 0's %d; multiplexed lanes share one namespace layout",
				i, cfg.Shards, cfgs[0].Shards)
		}
		cfgs[i] = cfg
	}
	feed, ok := m.feed(cfgs[0].TriggerInterval)
	if !ok {
		return m.runSequential(lanes, cfgs)
	}

	timer := profiling.StartTimer()
	sl, err := newShardedLanes(m.base, len(lanes), feed, cfgs[0].Shards)
	if err != nil {
		return nil, err
	}
	t0 := m.ds.Snapshot.Taken
	// First register every lane's period length with the ranker for its
	// data signature, so the t0 evaluation below already covers all
	// periods any sharing lane will read.
	rankers := make(map[dataKey]*sharedRanker)
	pis := make([]int, len(lanes))
	for i := range lanes {
		k := dataKey{cfgs[i].UseLogins, cfgs[i].UseTransfers}
		r := rankers[k]
		if r == nil {
			r = &sharedRanker{cursors: m.dataEvaluator(cfgs[i]).NewCursors(), users: len(m.ds.Users)}
			rankers[k] = r
		}
		pis[i] = r.period(cfgs[i].PeriodLength)
	}
	ml := make([]*mlane, len(lanes))
	for i := range lanes {
		em := &Emulator{ds: m.ds, cfg: cfgs[i], base: m.base, eval: m.dataEvaluator(cfgs[i]), users: len(m.ds.Users)}
		policy, err := m.lanePolicy(em, lanes[i].Policy)
		if err != nil {
			return nil, fmt.Errorf("sim: lane %d: %w", i, err)
		}
		r := rankers[dataKey{cfgs[i].UseLogins, cfgs[i].UseTransfers}]
		ranker := r.laneRanker(pis[i])
		lfs, err := sl.laneFS(i)
		if err != nil {
			return nil, fmt.Errorf("sim: lane %d: %w", i, err)
		}
		st := &runState{
			fsys:        lfs,
			res:         &Result{Policy: policy.Name()},
			nextTrigger: t0.Add(cfgs[i].TriggerInterval),
			ranks:       ranker(t0),
			ranksAt:     t0,
			captured:    cfgs[i].CaptureAt == 0,
			ranker:      ranker,
		}
		s := em.newStream(policy, lanes[i].Opts, st)
		if s.opts.Obs != nil {
			stopReplay := s.opts.Obs.StartPhase("replay")
			defer stopReplay()
		}
		ml[i] = &mlane{s: s, ranker: r, pi: pis[i]}
	}
	// Lanes sharing both a ranker and a period length see the same rank
	// table, so every event's group classification is computed once per
	// (ranker, period index) and fanned out.
	type rgKey struct {
		r  *sharedRanker
		pi int
	}
	rGroups := make([][]int, 0, len(lanes))
	rIndex := make(map[rgKey]int, len(lanes))
	for i := range ml {
		k := rgKey{ml[i].ranker, ml[i].pi}
		gi, ok := rIndex[k]
		if !ok {
			gi = len(rGroups)
			rIndex[k] = gi
			rGroups = append(rGroups, nil)
		}
		rGroups[gi] = append(rGroups[gi], i)
	}

	acc := m.ds.Accesses
	var missBuf []uint64
	for bi := range feed.batches {
		b := &feed.batches[bi]
		for i, ln := range ml {
			if err := ln.s.fireTriggers(b.first); err != nil {
				return nil, fmt.Errorf("sim: lane %d: %w", i, err)
			}
			ln.day = ln.s.dayFor(b.first)
		}
		// Apply phase: compute every run's miss mask (shard-parallel
		// under Config.Shards), then account in the batch's run order —
		// pure sums until the event-ordered miss flush below, so the
		// split changes nothing observable.
		if cap(missBuf) < len(b.runs) {
			missBuf = make([]uint64, len(b.runs))
		}
		missBuf = missBuf[:len(b.runs)]
		sl.applyBatch(acc, feed, b, missBuf)
		for ri := range b.runs {
			run := &b.runs[ri]
			seg := feed.order[run.off : run.off+run.n]
			miss := missBuf[ri]
			for _, rg := range rGroups {
				ln0 := ml[rg[0]]
				gt := ln0.ranker.groups[ln0.pi]
				for _, idx := range seg {
					g := groupAt(gt, acc[idx].User)
					for _, li := range rg {
						d := ml[li].day
						d.Accesses++
						d.ByGroup[g].Accesses++
					}
				}
				for _, li := range rg {
					ml[li].s.st.res.TotalAccesses += int64(len(seg))
					ml[li].s.ro.accesses.Add(int64(len(seg)))
				}
			}
			if miss != 0 {
				for li, ln := range ml {
					if miss&(uint64(1)<<uint(li)) != 0 {
						ln.pendMiss = append(ln.pendMiss, seg[0])
					}
				}
			}
		}
		for _, ln := range ml {
			// Runs apply path-sorted, so batch misses are re-sorted into
			// event order before recording: the miss event stream (and
			// its interleaving with trigger events, which only fire at
			// batch boundaries) matches a sequential replay's exactly.
			slices.Sort(ln.pendMiss)
			st, d := ln.s.st, ln.day
			gt := ln.ranker.groups[ln.pi]
			for _, idx := range ln.pendMiss {
				a := &acc[idx]
				g := groupAt(gt, a.User)
				d.Misses++
				d.ByGroup[g].Misses++
				st.res.TotalMisses++
				st.res.MissesByGroup[g]++
				st.res.RestoredFiles++
				st.res.RestoredBytes += a.Size
				ln.s.ro.noteMiss(st.res.Policy, a, g)
			}
			ln.pendMiss = ln.pendMiss[:0]
			ln.s.st.cursor = b.end
		}
	}
	out := make([]*Result, len(lanes))
	for i, ln := range ml {
		st := ln.s.st
		if !st.captured {
			st.res.Captured = st.fsys.CloneNS()
		}
		st.res.Final = st.fsys
		st.res.Elapsed = timer.Elapsed()
		out[i] = st.res
	}
	return out, nil
}

// runSequential is the fallback for access logs the columnar feed
// cannot represent (out-of-order timestamps, events predating the
// snapshot): N independent sequential replays, trivially equivalent —
// and surfacing the same errors a sequential run would.
func (m *Multiplexer) runSequential(lanes []LaneSpec, cfgs []Config) ([]*Result, error) {
	out := make([]*Result, len(lanes))
	for i := range lanes {
		em := &Emulator{ds: m.ds, cfg: cfgs[i], base: m.base, eval: m.evaluator(cfgs[i]), users: len(m.ds.Users)}
		policy, err := m.lanePolicy(em, lanes[i].Policy)
		if err != nil {
			return nil, fmt.Errorf("sim: lane %d: %w", i, err)
		}
		res, err := em.RunWith(policy, lanes[i].Opts)
		if err != nil {
			return nil, fmt.Errorf("sim: lane %d: %w", i, err)
		}
		out[i] = res
	}
	return out, nil
}
