package sim

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"activedr/internal/timeutil"
)

// latestState parses the newest checkpoint's state.json.
func latestState(t *testing.T, dir string) (string, checkpointState) {
	t.Helper()
	name, err := readLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, name, stateFile))
	if err != nil {
		t.Fatal(err)
	}
	var cs checkpointState
	if err := json.Unmarshal(blob, &cs); err != nil {
		t.Fatal(err)
	}
	return name, cs
}

// editLatestState rewrites the newest checkpoint's state.json through
// a generic map, preserving fields the edit does not touch.
func editLatestState(t *testing.T, dir string, edit func(m map[string]any)) {
	t.Helper()
	name, err := readLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, name, stateFile)
	blob, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	edit(m)
	blob, err = json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, blob, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestDeltaCheckpointResume is the delta-format determinism bar: with
// only every 3rd checkpoint full, runs that checkpoint along the way
// stay bit-identical to an uncheckpointed run, interruptions at both
// full and delta checkpoints resume exactly, and the checkpoint files
// a resumed run keeps writing are byte-identical to the uninterrupted
// checkpointing run's.
func TestDeltaCheckpointResume(t *testing.T) {
	ds := tinyDataset()
	cfg := Config{TargetUtilization: 0.5, CaptureAt: timeutil.Date(2016, 7, 1), SnapshotEvery: timeutil.Days(28)}
	opts := func(dir string) RunOptions {
		return RunOptions{CheckpointDir: dir, CheckpointEvery: 1, CheckpointFullEvery: 3}
	}

	em, err := New(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := em.RunWith(policyFor(t, em, "activedr"), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	refDir := t.TempDir()
	emRef, err := New(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := emRef.RunWith(policyFor(t, emRef, "activedr"), opts(refDir))
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, want, ref)

	// Checkpoint N is full when (N-1)%3 == 0: stops 2, 3 and 9 land on
	// delta checkpoints (9 mid-series, with snapshot sidecars spread
	// across the chain), stops 4 and 7 on full ones.
	for _, stopAt := range []int{2, 3, 4, 7, 9} {
		t.Run(fmt.Sprintf("stop=%d", stopAt), func(t *testing.T) {
			dir := t.TempDir()
			em1, err := New(ds, cfg)
			if err != nil {
				t.Fatal(err)
			}
			stopOpts := opts(dir)
			stopOpts.StopAfterTriggers = stopAt
			if _, err := em1.RunWith(policyFor(t, em1, "activedr"), stopOpts); !errors.Is(err, ErrInterrupted) {
				t.Fatalf("want ErrInterrupted, got %v", err)
			}
			_, cs := latestState(t, dir)
			wantKind := kindDelta
			if (stopAt-1)%3 == 0 {
				wantKind = kindFull
			}
			if cs.Kind != wantKind {
				t.Fatalf("stop=%d checkpoint kind = %q, want %q", stopAt, cs.Kind, wantKind)
			}
			em2, err := New(ds, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := em2.Resume(policyFor(t, em2, "activedr"), opts(dir))
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, want, got)
			if !reflect.DeepEqual(normalizeCheckpoint(t, dir), normalizeCheckpoint(t, refDir)) {
				t.Error("final checkpoint state diverges from the uninterrupted run's")
			}
			refName, err := readLatest(refDir)
			if err != nil {
				t.Fatal(err)
			}
			gotName, err := readLatest(dir)
			if err != nil {
				t.Fatal(err)
			}
			if refName != gotName {
				t.Fatalf("final checkpoint name %q, want %q", gotName, refName)
			}
			for _, f := range []string{fsFile, deltaFile, deletedFile} {
				rb, rerr := os.ReadFile(filepath.Join(refDir, refName, f))
				gb, gerr := os.ReadFile(filepath.Join(dir, gotName, f))
				if os.IsNotExist(rerr) && os.IsNotExist(gerr) {
					continue
				}
				if rerr != nil || gerr != nil {
					t.Fatalf("%s: ref err %v, got err %v", f, rerr, gerr)
				}
				if !bytes.Equal(rb, gb) {
					t.Errorf("final checkpoint sidecar %s not byte-identical to the uninterrupted run's", f)
				}
			}
		})
	}
}

// TestCheckpointV2Migration pins the migration contract of satellite
// 3: a version-2 checkpoint (the pre-delta format — exactly a full
// checkpoint without kind/base/ckpts) loaded by the delta-aware
// reader resumes bit-identically, even when the resumed run writes
// delta checkpoints from there on.
func TestCheckpointV2Migration(t *testing.T) {
	ds := tinyDataset()
	cfg := Config{TargetUtilization: 0.5}
	em, err := New(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := em.RunWith(policyFor(t, em, "activedr"), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	em1, err := New(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := em1.RunWith(policyFor(t, em1, "activedr"), RunOptions{
		CheckpointDir: dir, CheckpointEvery: 1, StopAfterTriggers: 5,
	}); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	// Rewrite the checkpoint as a v2 run would have written it.
	v2digest := em1.cfg.digestV2()
	editLatestState(t, dir, func(m map[string]any) {
		m["version"] = 2
		m["config"] = v2digest
		delete(m, "kind")
		delete(m, "base")
		delete(m, "ckpts")
	})
	em2, err := New(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := em2.Resume(policyFor(t, em2, "activedr"), RunOptions{
		CheckpointDir: dir, CheckpointEvery: 1, CheckpointFullEvery: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, want, got)
	// A v2 checkpoint carries no cadence counter, so the resumed run's
	// first checkpoint must be full (never a delta against an unknown
	// window), and the rotation picks up from there.
	if _, cs := latestState(t, dir); cs.Version != checkpointVersion {
		t.Fatalf("resumed run kept writing version %d", cs.Version)
	}
}

// TestCheckpointVersionRejection: unknown versions and internally
// inconsistent v2 states fail fast with a clear error instead of
// silently mis-resuming.
func TestCheckpointVersionRejection(t *testing.T) {
	ds := tinyDataset()
	cfg := Config{TargetUtilization: 0.5}
	newEm := func() *Emulator {
		em, err := New(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return em
	}
	run := func() string {
		dir := t.TempDir()
		em := newEm()
		if _, err := em.RunWith(policyFor(t, em, "activedr"), RunOptions{
			CheckpointDir: dir, CheckpointEvery: 1, StopAfterTriggers: 2,
		}); !errors.Is(err, ErrInterrupted) {
			t.Fatalf("want ErrInterrupted, got %v", err)
		}
		return dir
	}
	resumeErr := func(dir string) error {
		em := newEm()
		_, err := em.Resume(policyFor(t, em, "activedr"), RunOptions{CheckpointDir: dir})
		return err
	}

	dir := run()
	editLatestState(t, dir, func(m map[string]any) { m["version"] = 9 })
	if err := resumeErr(dir); err == nil || !containsAll(err.Error(), "version 9", "refusing to resume") {
		t.Fatalf("unknown version: %v", err)
	}

	dir = run()
	v2digest := newEm().cfg.digestV2()
	editLatestState(t, dir, func(m map[string]any) {
		m["version"] = 2
		m["config"] = v2digest
		m["kind"] = kindDelta
	})
	if err := resumeErr(dir); err == nil || !containsAll(err.Error(), "version 2", "refusing to guess") {
		t.Fatalf("v2 delta: %v", err)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		if !bytes.Contains([]byte(s), []byte(sub)) {
			return false
		}
	}
	return true
}

// TestDeltaPruneProtectsBaseChain: with long delta chains (full every
// 10th checkpoint) pruning must keep every chain member the newest
// checkpoints transitively base on, and a cold resume at end-of-run
// must rebuild the exact final state from that chain.
func TestDeltaPruneProtectsBaseChain(t *testing.T) {
	ds := tinyDataset()
	cfg := Config{TargetUtilization: 0.5}
	dir := t.TempDir()
	em1, err := New(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	o := RunOptions{CheckpointDir: dir, CheckpointEvery: 1, CheckpointFullEvery: 10}
	want, err := em1.RunWith(policyFor(t, em1, "activedr"), o)
	if err != nil {
		t.Fatal(err)
	}
	name, cs := latestState(t, dir)
	if cs.Kind != kindDelta {
		t.Fatalf("fixture: latest checkpoint %s is %q, want a delta", name, cs.Kind)
	}
	// Walk the chain: every member must have survived pruning.
	links := 0
	for cs.Kind == kindDelta {
		if cs.Base == "" {
			t.Fatalf("delta %s has no base", name)
		}
		name = cs.Base
		blob, err := os.ReadFile(filepath.Join(dir, name, stateFile))
		if err != nil {
			t.Fatalf("base chain member pruned: %v", err)
		}
		cs = checkpointState{}
		if err := json.Unmarshal(blob, &cs); err != nil {
			t.Fatal(err)
		}
		links++
	}
	if links == 0 {
		t.Fatal("fixture produced no delta links")
	}
	em2, err := New(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := em2.Resume(policyFor(t, em2, "activedr"), o)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, want, got)
}
