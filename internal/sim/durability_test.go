package sim

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"activedr/internal/faults"
	"activedr/internal/fsx"
)

// TestLatestPointerDurability pins the checkpoint publish protocol to
// real durability barriers: the data files and the LATEST pointer must
// be fsynced (file and parent directory) before they are visible, so a
// power cut after publish can never resurrect a stale pointer.
func TestLatestPointerDurability(t *testing.T) {
	ds := tinyDataset()
	em, err := New(ds, Config{TargetUtilization: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	before := fsx.SyncCount()
	if _, err := em.RunWith(em.NewFLT(), RunOptions{CheckpointDir: dir, StopAfterTriggers: 2}); !errors.Is(err, ErrInterrupted) {
		t.Fatal(err)
	}
	// Two checkpoints; each publish must fence at least the renamed
	// checkpoint dir (target-dir sync) and the LATEST replacement
	// (file sync + dir sync).
	if n := fsx.SyncCount() - before; n < 6 {
		t.Fatalf("only %d fsync barriers issued across two checkpoint publishes", n)
	}

	name, err := readLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
		t.Fatalf("LATEST points at missing checkpoint: %v", err)
	}
	// The atomic replacement leaves no tmp debris behind.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		if strings.Contains(ent.Name(), ".tmp") {
			t.Fatalf("temp file %s leaked into checkpoint dir", ent.Name())
		}
	}
}

// TestKillPointInterruptAndResume rehearses a process death at the
// instant a checkpoint becomes durable: the run dies with
// ErrInterrupted exactly at the configured kill point, and a resumed
// run — fresh emulator, fresh injector without the kill spec —
// reproduces the uninterrupted result bit for bit.
func TestKillPointInterruptAndResume(t *testing.T) {
	ds := tinyDataset()
	cfg := Config{TargetUtilization: 0.5}
	probs := faults.Config{Seed: 77, UnlinkFailProb: 0.25}

	em, err := New(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := em.RunWith(em.NewFLT(), RunOptions{Faults: faults.New(probs)})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	killCfg := probs
	killCfg.KillSpec = faults.KillSimCheckpointPublished + ":3"
	em1, err := New(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	partial, err := em1.RunWith(em1.NewFLT(), RunOptions{CheckpointDir: dir, Faults: faults.New(killCfg)})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("kill point did not interrupt: %v", err)
	}
	if len(partial.Reports) != 3 {
		t.Fatalf("killed after %d triggers, want 3", len(partial.Reports))
	}
	if !HasCheckpoint(dir) {
		t.Fatal("no checkpoint survived the kill")
	}

	// The resume injector carries the same probability stream but no
	// kill spec: the checkpoint predates the kill counter's fatal hit,
	// so resuming with the spec would just die again. ShouldKill draws
	// no randomness, so dropping it cannot desynchronize the stream.
	em2, err := New(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := em2.Resume(em2.NewFLT(), RunOptions{CheckpointDir: dir, Faults: faults.New(probs)})
	if err != nil {
		t.Fatalf("resume after kill: %v", err)
	}
	requireSameResult(t, want, got)
}
