package sim

import (
	"reflect"
	"testing"
	"time"

	"activedr/internal/activeness"
	"activedr/internal/retention"
	"activedr/internal/synth"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
	"activedr/internal/vfs"
)

var (
	snapAt = timeutil.Date(2015, time.December, 26)
	repEnd = timeutil.Date(2017, time.January, 1)
)

// tinyDataset builds a hand-written deterministic dataset:
//   - user 0 "busy": job every week through the whole trace with
//     growing impact, re-accesses an old file after 120 days;
//   - user 1 "gone": held files fresh at the snapshot, never returns.
func tinyDataset() *trace.Dataset {
	users := []trace.User{
		{ID: 0, Name: "busy", Created: timeutil.Date(2015, time.June, 1)},
		{ID: 1, Name: "gone", Created: timeutil.Date(2015, time.January, 1)},
	}
	var jobs []trace.Job
	for w, t := 0, timeutil.Date(2015, time.June, 1); t < repEnd; w, t = w+1, t.Add(timeutil.Week) {
		jobs = append(jobs, trace.Job{
			User: 0, Submit: t, Duration: timeutil.Hours(2), Cores: 16 + w,
		})
	}
	// Replay accesses: user 0 works on a fresh file weekly, and on
	// 2016-05-01 comes back to /old/data.dat untouched since the
	// snapshot.
	var accs []trace.Access
	for t := snapAt; t < repEnd; t = t.Add(timeutil.Week) {
		accs = append(accs, trace.Access{TS: t.Add(timeutil.Hour), User: 0, Create: true, Size: 1 << 20,
			Path: "/lustre/atlas/busy/run/" + t.DateString() + ".dat"})
	}
	accs = append(accs, trace.Access{TS: timeutil.Date(2016, time.May, 1), User: 0, Create: false,
		Size: 1 << 30, Path: "/lustre/atlas/busy/old/data.dat"})
	snapshot := trace.Snapshot{
		Taken: snapAt,
		Entries: []trace.SnapshotEntry{
			{Path: "/lustre/atlas/busy/old/data.dat", User: 0, Size: 1 << 30, Stripes: 4, ATime: snapAt.Add(-timeutil.Days(10))},
			// Parked files nearly stale at the snapshot: they cross the
			// 90-day line days into the replay and cover the purge
			// target before any active user's files are reachable.
			{Path: "/lustre/atlas/gone/park1.dat", User: 1, Size: 4 << 30, Stripes: 4, ATime: snapAt.Add(-timeutil.Days(85))},
			{Path: "/lustre/atlas/gone/park2.dat", User: 1, Size: 4 << 30, Stripes: 4, ATime: snapAt.Add(-timeutil.Days(85))},
		},
	}
	d := &trace.Dataset{Users: users, Jobs: jobs, Accesses: accs, Publications: nil, Snapshot: snapshot}
	d.SortAccesses()
	return d
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.Lifetime != timeutil.Days(90) || c.PeriodLength != timeutil.Days(90) ||
		c.TriggerInterval != timeutil.Days(7) || c.RetroPasses != 5 || c.RetroDecay != 0.8 {
		t.Fatalf("defaults = %+v", c)
	}
	c2 := Config{Lifetime: timeutil.Days(30)}.Defaults()
	if c2.PeriodLength != timeutil.Days(30) {
		t.Fatal("period length should track lifetime")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	d := tinyDataset()
	if _, err := New(d, Config{TriggerInterval: -1}); err == nil {
		t.Fatal("negative trigger interval accepted")
	}
}

func TestFLTMissesOldFileActiveDRSavesIt(t *testing.T) {
	d := tinyDataset()
	em, err := New(d, Config{TargetUtilization: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := em.RunComparison()
	if err != nil {
		t.Fatal(err)
	}
	// Under FLT-90 the old file (idle since 2015-12-16) is purged in
	// mid-March and the May 1st access misses.
	if cmp.FLT.TotalMisses != 1 {
		t.Fatalf("FLT misses = %d, want 1", cmp.FLT.TotalMisses)
	}
	// Under ActiveDR, user 1's parked 8 GB cover the purge target, and
	// user 0 is operation-active (rising core counts), so the old file
	// survives to be re-read.
	if cmp.ActiveDR.TotalMisses != 0 {
		t.Fatalf("ActiveDR misses = %d, want 0", cmp.ActiveDR.TotalMisses)
	}
	if cmp.MissReduction() != 1 {
		t.Fatalf("reduction = %v, want 1", cmp.MissReduction())
	}
	// The busy user is operation-active at the final trigger.
	ranks := em.Evaluator().EvaluateAll(2, timeutil.Date(2016, time.December, 15))
	if !ranks[0].OpActive() {
		t.Errorf("busy user not op-active: %+v", ranks[0])
	}
	if ranks[1].Group() != activeness.BothInactive {
		t.Errorf("gone user group = %v", ranks[1].Group())
	}
}

func TestMissAttributionAndDayStats(t *testing.T) {
	d := tinyDataset()
	em, err := New(d, Config{TargetUtilization: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := em.Run(em.NewFLT())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalAccesses != int64(len(d.Accesses)) {
		t.Fatalf("accesses = %d, want %d", res.TotalAccesses, len(d.Accesses))
	}
	var sumAcc, sumMiss int64
	for _, day := range res.Days {
		sumAcc += day.Accesses
		sumMiss += day.Misses
		var g int64
		for _, bg := range day.ByGroup {
			g += bg.Accesses
		}
		if g != day.Accesses {
			t.Fatalf("day %v group accesses %d != %d", day.Day, g, day.Accesses)
		}
		if day.Accesses > 0 && (day.MissRatio() < 0 || day.MissRatio() > 1) {
			t.Fatalf("miss ratio out of range: %v", day.MissRatio())
		}
	}
	if sumAcc != res.TotalAccesses || sumMiss != res.TotalMisses {
		t.Fatalf("day sums (%d, %d) != totals (%d, %d)", sumAcc, sumMiss, res.TotalAccesses, res.TotalMisses)
	}
	var byGroup int64
	for _, m := range res.MissesByGroup {
		byGroup += m
	}
	if byGroup != res.TotalMisses {
		t.Fatalf("group miss sum %d != total %d", byGroup, res.TotalMisses)
	}
	if len(res.Reports) == 0 {
		t.Fatal("no purge reports")
	}
	// Weekly triggers across the replay year.
	if n := len(res.Reports); n < 50 || n > 56 {
		t.Fatalf("reports = %d, want ≈53", n)
	}
	if res.Final == nil {
		t.Fatal("final FS missing")
	}
}

func TestCaptureAt(t *testing.T) {
	d := tinyDataset()
	capAt := timeutil.Date(2016, time.August, 23)
	em, err := New(d, Config{CaptureAt: capAt})
	if err != nil {
		t.Fatal(err)
	}
	res, err := em.Run(em.NewFLT())
	if err != nil {
		t.Fatal(err)
	}
	if res.Captured == nil {
		t.Fatal("capture missing")
	}
	// The captured state must contain the weekly files created before
	// the capture date but not those after.
	if !res.Captured.Contains("/lustre/atlas/busy/run/2016-08-20.dat") {
		t.Error("pre-capture file missing from captured state")
	}
	if res.Captured.Contains("/lustre/atlas/busy/run/2016-09-03.dat") {
		t.Error("post-capture file present in captured state")
	}
	// The final state has moved past the capture.
	if res.Final.Contains("/lustre/atlas/busy/run/2016-08-20.dat") {
		t.Error("final state still holds a file FLT should have purged in November")
	}
}

func TestRestoreOnMissReinserts(t *testing.T) {
	d := tinyDataset()
	em, err := New(d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := em.Run(em.NewFLT())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMisses != 1 {
		t.Fatalf("misses = %d, want 1", res.TotalMisses)
	}
	// The missed file was restored by the user and touched on May 1;
	// it survives to the end (FLT lifetime 90d, end of replay Dec 31;
	// it is purged again in August). Whether present or not at the
	// end, the restore must have happened: a second access in the
	// trace would have hit. Verified structurally: restore inserts the
	// path immediately.
	fsys := em.BaseFS()
	if !fsys.Contains("/lustre/atlas/gone/park1.dat") {
		t.Fatal("BaseFS lost snapshot entries")
	}
}

func TestRejectsPreSnapshotAccesses(t *testing.T) {
	d := tinyDataset()
	d.Accesses[0].TS = snapAt.Add(-timeutil.Days(1))
	d.SortAccesses()
	em, err := New(d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := em.Run(em.NewFLT()); err == nil {
		t.Fatal("pre-snapshot access accepted")
	}
}

// TestSyntheticComparisonShape is the integration test for the
// headline result: on the synthetic OLCF-like workload ActiveDR
// reduces file misses versus FLT overall and for every activeness
// group (paper §4.3).
func TestSyntheticComparisonShape(t *testing.T) {
	if testing.Short() {
		t.Skip("synthetic year-long replay")
	}
	d, err := synth.Generate(synth.Config{Seed: 11, Users: 1200})
	if err != nil {
		t.Fatal(err)
	}
	em, err := New(d, Config{TargetUtilization: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := em.RunComparison()
	if err != nil {
		t.Fatal(err)
	}
	if cmp.FLT.TotalMisses == 0 {
		t.Fatal("FLT produced no misses; workload degenerate")
	}
	red := cmp.MissReduction()
	t.Logf("overall miss reduction = %.1f%% (FLT %d → ActiveDR %d)",
		100*red, cmp.FLT.TotalMisses, cmp.ActiveDR.TotalMisses)
	if red <= 0.05 {
		t.Errorf("miss reduction = %v, want > 5%%", red)
	}
	for g := 0; g < activeness.NumGroups; g++ {
		f, a := cmp.FLT.MissesByGroup[g], cmp.ActiveDR.MissesByGroup[g]
		t.Logf("group %v: FLT=%d ActiveDR=%d", activeness.Group(g), f, a)
		if a > f {
			t.Errorf("group %v: ActiveDR misses (%d) exceed FLT (%d)", activeness.Group(g), a, f)
		}
	}
	// Purge conservation on every report.
	for _, r := range append(cmp.FLT.Reports, cmp.ActiveDR.Reports...) {
		var pb int64
		for _, g := range r.Groups {
			pb += g.PurgedBytes
		}
		if pb != r.PurgedBytes {
			t.Fatalf("report %s: group purged bytes %d != %d", r.Policy, pb, r.PurgedBytes)
		}
	}
}

func TestEmulatorPolicyBuilders(t *testing.T) {
	d := tinyDataset()
	em, err := New(d, Config{TargetUtilization: 0.5, Reserved: vfs.NewReservedSet()})
	if err != nil {
		t.Fatal(err)
	}
	adr, err := em.NewActiveDR()
	if err != nil {
		t.Fatal(err)
	}
	if adr.Config().Capacity != em.Config().Capacity {
		t.Error("capacity not propagated")
	}
	if adr.Config().MinLifetime != em.Config().TriggerInterval {
		t.Error("min lifetime should equal trigger interval")
	}
	var _ retention.Policy = adr
	var _ retention.Policy = em.NewFLT()
}

func TestUseLoginsAndTransfers(t *testing.T) {
	d := tinyDataset()
	// A login-only user stays invisible without UseLogins and gains
	// operation data with it.
	d.Logins = []trace.Login{{User: 1, TS: timeutil.Date(2016, time.June, 1)}}
	d.Transfers = []trace.Transfer{{User: 1, TS: timeutil.Date(2016, time.June, 2), Dir: trace.TransferIn, Bytes: 5e9}}
	plain, err := New(d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	extra, err := New(d, Config{UseLogins: true, UseTransfers: true})
	if err != nil {
		t.Fatal(err)
	}
	at := timeutil.Date(2016, time.June, 10)
	if plain.Evaluator().EvaluateUser(1, at).HasOp {
		t.Fatal("plain config should not see login activity")
	}
	r := extra.Evaluator().EvaluateUser(1, at)
	if !r.HasOp {
		t.Fatal("extra activity types not indexed")
	}
	if len(extra.Evaluator().Types()) != 4 {
		t.Fatalf("types = %d, want 4", len(extra.Evaluator().Types()))
	}
}

func TestSnapshotSeries(t *testing.T) {
	d := tinyDataset()
	em, err := New(d, Config{SnapshotEvery: timeutil.Days(28)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := em.Run(em.NewFLT())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Snapshots) < 10 || len(res.Snapshots) > 16 {
		t.Fatalf("snapshots = %d, want ≈13 (4-weekly over a year)", len(res.Snapshots))
	}
	for i := 1; i < len(res.Snapshots); i++ {
		prev, cur := res.Snapshots[i-1], res.Snapshots[i]
		if cur.Taken <= prev.Taken {
			t.Fatal("snapshot series not chronological")
		}
		if cur.Taken.Sub(prev.Taken) < timeutil.Days(28) {
			t.Fatalf("snapshots %d apart only %v", i, cur.Taken.Sub(prev.Taken))
		}
	}
	// Post-purge invariant: no snapshot entry is older than the FLT
	// lifetime at its capture instant.
	for _, snap := range res.Snapshots {
		for i := range snap.Entries {
			if age := snap.Taken.Sub(snap.Entries[i].ATime); age > timeutil.Days(90) {
				t.Fatalf("snapshot at %v holds a file idle %v", snap.Taken, age)
			}
		}
	}
}

func TestSnapshotSeriesRoundTrip(t *testing.T) {
	d := tinyDataset()
	em, err := New(d, Config{SnapshotEvery: timeutil.Days(56)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := em.Run(em.NewFLT())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := trace.WriteSnapshotSeries(dir, d.Users, res.Snapshots); err != nil {
		t.Fatal(err)
	}
	got, err := trace.LoadSnapshotSeries(dir, trace.NameIndex(d.Users))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(res.Snapshots) {
		t.Fatalf("loaded %d snapshots, wrote %d", len(got), len(res.Snapshots))
	}
	for i := range got {
		if got[i].Taken != res.Snapshots[i].Taken || len(got[i].Entries) != len(res.Snapshots[i].Entries) {
			t.Fatalf("snapshot %d mismatch", i)
		}
	}
	// The parallel series loader (one decode worker per file) and the
	// sequential fallback must hand the emulator the same series.
	seq, _, err := trace.LoadSnapshotSeriesWith(dir, trace.NameIndex(d.Users), trace.ReadOptions{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, seq) {
		t.Fatal("parallel and sequential series loads disagree")
	}
}
