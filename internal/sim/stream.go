package sim

// Stream is the incremental form of the replay loop: instead of
// consuming the dataset's access log in one call, the caller feeds
// one event at a time. The retention daemon (internal/daemon) drives
// a Stream from its write-ahead log, and the batch replay() drives
// one over ds.Accesses — the SAME code path, which is what makes the
// daemon's purge plans provably bit-identical to a batch replay of
// the same event sequence.

import (
	"errors"
	"fmt"

	"activedr/internal/activeness"
	"activedr/internal/faults"
	"activedr/internal/retention"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
	"activedr/internal/vfs"
)

// Stream applies events to a live replay state. Not safe for
// concurrent use; the daemon serializes all access through its
// applier goroutine.
type Stream struct {
	e      *Emulator
	policy retention.Policy
	opts   RunOptions
	st     *runState
	ro     runObs
	day    *DayStats
	every  int // checkpoint cadence in triggers
}

// newStream wires faults and observability into the state exactly as
// replay() always has, so batch and streamed runs stay equivalent.
func (e *Emulator) newStream(policy retention.Policy, opts RunOptions, st *runState) *Stream {
	if opts.Faults != nil {
		if sink, ok := policy.(retention.FaultSink); ok {
			sink.SetFaults(opts.Faults)
		}
	}
	ro := newRunObs(opts.Obs)
	if opts.Obs != nil {
		if sink, ok := policy.(retention.ProbeSink); ok {
			sink.SetProbe(opts.Obs.Probe())
		}
		st.fsys.SetProbe(opts.Obs.VFSProbe())
		if opts.Faults != nil {
			opts.Faults.SetMetrics(opts.Obs.FaultMetrics())
		}
	}
	every := opts.CheckpointEvery
	if every <= 0 {
		every = 1
	}
	if opts.CheckpointDir != "" && opts.CheckpointFullEvery > 1 {
		// Delta checkpoints diff against the previous checkpoint, so
		// the FS must record its mutation working set from the start.
		st.fsys.TrackDirty()
	}
	s := &Stream{e: e, policy: policy, opts: opts, st: st, ro: ro, every: every}
	if n := len(st.res.Days); n > 0 {
		// Resume mid-day: keep appending to the tail day's stats.
		s.day = &st.res.Days[n-1]
	}
	return s
}

// NewStream starts a stream at the reference snapshot.
func (e *Emulator) NewStream(policy retention.Policy, opts RunOptions) *Stream {
	return e.newStream(policy, opts, e.freshState(policy))
}

// ResumeStream reconstructs a stream from the latest checkpoint under
// opts.CheckpointDir. Applied() reports how many events the restored
// state already contains; the caller replays everything after that.
func (e *Emulator) ResumeStream(policy retention.Policy, opts RunOptions) (*Stream, error) {
	if opts.CheckpointDir == "" {
		return nil, errors.New("sim: ResumeStream requires RunOptions.CheckpointDir")
	}
	st, err := e.loadCheckpoint(policy, opts)
	if err != nil {
		return nil, err
	}
	return e.newStream(policy, opts, st), nil
}

// Applied returns the number of events folded into the state so far.
// With a WAL whose first event holds sequence 1, this is exactly the
// last applied sequence number.
func (s *Stream) Applied() int { return s.st.cursor }

// Triggers returns how many purge triggers have fired.
func (s *Stream) Triggers() int { return s.st.triggers }

// NextTrigger returns when the next purge trigger fires.
func (s *Stream) NextTrigger() timeutil.Time { return s.st.nextTrigger }

// Ranks returns the current activeness rank table (read-only; indexed
// by user ID) and the trigger time it was evaluated at.
func (s *Stream) Ranks() ([]activeness.Rank, timeutil.Time) { return s.st.ranks, s.st.ranksAt }

// FS returns the live virtual file system (a single tree or a sharded
// view, per Config.Shards). Callers must not mutate it and must not
// retain it across Apply calls.
func (s *Stream) FS() vfs.Namespace { return s.st.fsys }

// Policy returns the policy the stream purges with.
func (s *Stream) Policy() retention.Policy { return s.policy }

// Result returns the accumulating run result (live; Final and Elapsed
// are only set by the batch replay wrapper).
func (s *Stream) Result() *Result { return s.st.res }

// dayFor returns the per-day stats bucket for ts, starting a new day
// when the timestamp crosses midnight.
func (s *Stream) dayFor(ts timeutil.Time) *DayStats {
	d := ts.StartOfDay()
	if s.day == nil || s.day.Day != d {
		s.st.res.Days = append(s.st.res.Days, DayStats{Day: d})
		s.day = &s.st.res.Days[len(s.st.res.Days)-1]
	}
	return s.day
}

// trigger fires one purge trigger at its scheduled time.
func (s *Stream) trigger(at timeutil.Time) {
	e, st, res := s.e, s.st, s.st.res
	st.ranks = st.ranker(at)
	st.ranksAt = at
	if !st.captured && at >= e.cfg.CaptureAt {
		res.Captured = st.fsys.CloneNS()
		st.captured = true
	}
	seq := int64(st.triggers) + 1 // 1-based, stable across resumes
	s.opts.Obs.BeginTrigger(s.policy.Name(), seq)
	stopPurge := s.opts.Obs.StartPhase("purge")
	rep := s.policy.Purge(st.fsys, st.ranks, at)
	stopPurge()
	res.Reports = append(res.Reports, rep)
	s.ro.triggers.Inc()
	s.ro.noteTrigger(rep, seq)
	if e.cfg.SnapshotEvery > 0 && (st.lastSnap == 0 || at.Sub(st.lastSnap) >= e.cfg.SnapshotEvery) {
		stopSnap := s.opts.Obs.StartPhase("snapshot")
		res.Snapshots = append(res.Snapshots, st.fsys.Snapshot(at))
		stopSnap()
		st.lastSnap = at
		s.ro.snaps.Inc()
	}
	st.triggers++
}

// fireTriggers runs every purge trigger scheduled at or before ts,
// checkpointing on cadence and honoring kill points and trigger
// budgets. ErrInterrupted leaves the current event unapplied, exactly
// like the historical in-loop checks.
func (s *Stream) fireTriggers(ts timeutil.Time) error {
	st := s.st
	for ts >= st.nextTrigger {
		at := st.nextTrigger
		s.trigger(at)
		st.nextTrigger = at.Add(s.e.cfg.TriggerInterval)
		if s.opts.CheckpointDir != "" && st.triggers%s.every == 0 {
			// The counter increments before the save so the persisted
			// snapshot counts the checkpoint that carries it; resumed
			// and uninterrupted runs then agree on the final value.
			s.ro.ckpts.Inc()
			stopCkpt := s.opts.Obs.StartPhase("checkpoint")
			err := s.e.saveCheckpoint(s.opts, s.policy, st, at)
			stopCkpt()
			if err != nil {
				return err
			}
			if s.opts.OnCheckpoint != nil {
				s.opts.OnCheckpoint(st.cursor)
			}
			// Crash rehearsal: a configured kill point right after the
			// publish dies exactly where a real preemption would, with
			// the just-written checkpoint as the resume source.
			if s.opts.Faults != nil && s.opts.Faults.ShouldKill(faults.KillSimCheckpointPublished) {
				return ErrInterrupted
			}
		}
		if s.opts.StopAfterTriggers > 0 && st.triggers >= s.opts.StopAfterTriggers {
			return ErrInterrupted
		}
	}
	return nil
}

// Apply folds one access event into the state: due triggers fire
// first, then the access lands as a create, a hit, or a miss (which
// restores the file from the archive, as the paper's users do).
func (s *Stream) Apply(a *trace.Access) error {
	if a.TS < s.e.ds.Snapshot.Taken {
		return fmt.Errorf("sim: access at %v predates the snapshot (%v)", a.TS, s.e.ds.Snapshot.Taken)
	}
	if err := s.fireTriggers(a.TS); err != nil {
		return err
	}
	st, res := s.st, s.st.res
	ds := s.dayFor(a.TS)
	g := rankGroup(st.ranks, a.User)
	ds.Accesses++
	ds.ByGroup[g].Accesses++
	res.TotalAccesses++
	s.ro.accesses.Inc()
	switch {
	case a.Create:
		// Fresh output: insert, no miss possible.
		insert(st.fsys, a)
	case st.fsys.Touch(a.Path, a.TS):
		// Hit: access time renewed.
	default:
		// Miss: the retention policy purged a file the user came
		// back for; the user restores it from the archive.
		ds.Misses++
		ds.ByGroup[g].Misses++
		res.TotalMisses++
		res.MissesByGroup[g]++
		res.RestoredFiles++
		res.RestoredBytes += a.Size
		s.ro.noteMiss(res.Policy, a, g)
		insert(st.fsys, a)
	}
	st.cursor++
	return nil
}

// Unlink folds one deletion event into the state: due triggers fire
// first, then the path is removed (a user deleting their own file —
// no miss, no archive restore). Reports whether the path existed.
func (s *Stream) Unlink(path string, ts timeutil.Time) (bool, error) {
	if ts < s.e.ds.Snapshot.Taken {
		return false, fmt.Errorf("sim: unlink at %v predates the snapshot (%v)", ts, s.e.ds.Snapshot.Taken)
	}
	if err := s.fireTriggers(ts); err != nil {
		return false, err
	}
	_, ok := s.st.fsys.Remove(path)
	s.st.cursor++
	return ok, nil
}

// Checkpoint persists the state immediately, outside the trigger
// cadence — the daemon's graceful-drain path. `at` stamps the
// serialized file-system snapshot (the current event time).
func (s *Stream) Checkpoint(at timeutil.Time) error {
	if s.opts.CheckpointDir == "" {
		return errors.New("sim: Checkpoint requires RunOptions.CheckpointDir")
	}
	s.ro.ckpts.Inc()
	stopCkpt := s.opts.Obs.StartPhase("checkpoint")
	err := s.e.saveCheckpoint(s.opts, s.policy, s.st, at)
	stopCkpt()
	if err != nil {
		return err
	}
	if s.opts.OnCheckpoint != nil {
		s.opts.OnCheckpoint(s.st.cursor)
	}
	return nil
}
