package sim

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"activedr/internal/faults"
	"activedr/internal/synth"
	"activedr/internal/timeutil"
)

// shardFaults builds the fault injector the sharded equivalence matrix
// runs under (nil when off). Each compared side gets a fresh injector
// from the same seed, so a divergent draw order surfaces as a result
// mismatch rather than silently reconverging.
func shardFaults(on bool) *faults.Injector {
	if !on {
		return nil
	}
	return faults.New(faults.Config{Seed: 42, UnlinkFailProb: 0.05, ScanInterruptProb: 0.05})
}

// TestShardedReplayEquivalence is the sharding tentpole's
// non-negotiable bar: a replay over the user-hash-sharded namespace is
// bit-identical — Results, day stats, purge reports, final and
// captured file-system state, checkpoint state, and the checkpointed
// file-system sidecar — to the same replay over the single tree, for
// every shard count in {1, 4, 16}, both policies, with and without
// fault injection. The k-way candidate merge and preorder walk merge
// must reproduce the single tree's lexicographic order exactly for
// this to hold.
func TestShardedReplayEquivalence(t *testing.T) {
	ds, err := synth.Generate(synth.Config{Seed: 11, Users: 300})
	if err != nil {
		t.Fatal(err)
	}
	for _, faultsOn := range []bool{false, true} {
		for _, policy := range []string{"flt", "adr"} {
			t.Run(fmt.Sprintf("%s/faults=%t", policy, faultsOn), func(t *testing.T) {
				baseCfg := Config{TargetUtilization: 0.5, CaptureAt: timeutil.Date(2016, 7, 1)}
				baseDir := t.TempDir()
				em, err := New(ds, baseCfg)
				if err != nil {
					t.Fatal(err)
				}
				want, err := em.RunWith(policyFor(t, em, policy), RunOptions{
					CheckpointDir: baseDir, CheckpointEvery: 20, Faults: shardFaults(faultsOn),
				})
				if err != nil {
					t.Fatal(err)
				}
				for _, shards := range []int{1, 4, 16} {
					cfg := baseCfg
					cfg.Shards = shards
					dir := t.TempDir()
					sem, err := New(ds, cfg)
					if err != nil {
						t.Fatal(err)
					}
					got, err := sem.RunWith(policyFor(t, sem, policy), RunOptions{
						CheckpointDir: dir, CheckpointEvery: 20, Faults: shardFaults(faultsOn),
					})
					if err != nil {
						t.Fatalf("shards=%d: %v", shards, err)
					}
					requireSameResult(t, want, got)
					if !reflect.DeepEqual(normalizeCheckpoint(t, baseDir), normalizeCheckpoint(t, dir)) {
						t.Errorf("shards=%d: checkpoint state diverges from single-tree run", shards)
					}
					if !bytes.Equal(readSidecar(t, baseDir), readSidecar(t, dir)) {
						t.Errorf("shards=%d: checkpointed file system not byte-identical to single-tree run", shards)
					}
				}
			})
		}
	}
}

// TestShardedMultiplexEquivalence runs the multiplexed fixture lanes
// over a sharded namespace (per-shard lane groups, parallel batch
// apply) and requires every lane bit-identical — results, checkpoint
// state, sidecar bytes — to the unsharded multiplexed pass of the same
// lanes. Chained with TestMultiplexedReplayEquivalence this transitively
// pins sharded-multiplexed ≡ sequential single-tree.
func TestShardedMultiplexEquivalence(t *testing.T) {
	ds, err := synth.Generate(synth.Config{Seed: 11, Users: 300})
	if err != nil {
		t.Fatal(err)
	}
	for _, faultsOn := range []bool{false, true} {
		t.Run(fmt.Sprintf("faults=%t", faultsOn), func(t *testing.T) {
			runLanes := func(shards int) ([]*Result, []string) {
				lanes := multiplexFixtureLanes()
				dirs := make([]string, len(lanes))
				for i := range lanes {
					lanes[i].Config.Shards = shards
					dirs[i] = t.TempDir()
					lanes[i].Opts = RunOptions{CheckpointDir: dirs[i], CheckpointEvery: 20, Faults: shardFaults(faultsOn)}
				}
				res, err := RunMultiplexed(ds, lanes)
				if err != nil {
					t.Fatal(err)
				}
				return res, dirs
			}
			want, wantDirs := runLanes(0)
			for _, shards := range []int{4, 16} {
				got, gotDirs := runLanes(shards)
				for i := range want {
					requireSameResult(t, want[i], got[i])
					if !reflect.DeepEqual(normalizeCheckpoint(t, wantDirs[i]), normalizeCheckpoint(t, gotDirs[i])) {
						t.Errorf("shards=%d lane %d: checkpoint state diverges", shards, i)
					}
					if !bytes.Equal(readSidecar(t, wantDirs[i]), readSidecar(t, gotDirs[i])) {
						t.Errorf("shards=%d lane %d: checkpointed file system diverges", shards, i)
					}
				}
			}
		})
	}
}

// TestShardedResumeAcrossShardCounts pins the checkpoint contract that
// lets Config.Shards stay out of the config digest: the serialized
// checkpoint is a shard-agnostic snapshot, so a run interrupted under
// one shard count resumes under another — and under none — with
// results bit-identical to the uninterrupted unsharded run.
func TestShardedResumeAcrossShardCounts(t *testing.T) {
	ds, err := synth.Generate(synth.Config{Seed: 11, Users: 120})
	if err != nil {
		t.Fatal(err)
	}
	base := Config{TargetUtilization: 0.5}
	em, err := New(ds, base)
	if err != nil {
		t.Fatal(err)
	}
	want, err := em.Run(policyFor(t, em, "adr"))
	if err != nil {
		t.Fatal(err)
	}
	for _, counts := range [][2]int{{4, 16}, {16, 0}, {0, 4}} {
		stopCfg, resumeCfg := base, base
		stopCfg.Shards, resumeCfg.Shards = counts[0], counts[1]
		dir := t.TempDir()
		em1, err := New(ds, stopCfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := em1.RunWith(policyFor(t, em1, "adr"), RunOptions{
			CheckpointDir: dir, CheckpointEvery: 2, StopAfterTriggers: 6,
		}); !errors.Is(err, ErrInterrupted) {
			t.Fatalf("stop under shards=%d: %v", counts[0], err)
		}
		em2, err := New(ds, resumeCfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := em2.Resume(policyFor(t, em2, "adr"), RunOptions{
			CheckpointDir: dir, CheckpointEvery: 2,
		})
		if err != nil {
			t.Fatalf("resume under shards=%d: %v", counts[1], err)
		}
		requireSameResult(t, want, got)
	}
}

// TestShardedConfigValidation rejects shard counts the vfs layer
// cannot build, both on the sequential and the multiplexed entry
// points, and requires multiplexed lanes to agree on one layout.
func TestShardedConfigValidation(t *testing.T) {
	ds := tinyDataset()
	for _, shards := range []int{-1, 257} {
		if _, err := New(ds, Config{Shards: shards}); err == nil {
			t.Errorf("New accepted shards=%d", shards)
		}
	}
	if _, err := RunMultiplexed(ds, []LaneSpec{
		{Policy: PolicyFLT, Config: Config{Lifetime: timeutil.Days(30), Shards: 4}},
		{Policy: PolicyFLT, Config: Config{Lifetime: timeutil.Days(60), Shards: 8}},
	}); err == nil {
		t.Error("RunMultiplexed accepted lanes with mismatched shard counts")
	}
}
