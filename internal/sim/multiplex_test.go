package sim

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"activedr/internal/faults"
	"activedr/internal/synth"
	"activedr/internal/timeutil"
)

// multiplexFixtureLanes is the 4-lane sweep the equivalence suite
// exercises: both policies, two lifetimes, one lane with mid-run
// capture and a periodic snapshot series. Lane 1 and lane 3 share a
// period length, covering the shared-rank-table path; lane 0 and
// lane 2 rank on their own 30-day table.
func multiplexFixtureLanes() []LaneSpec {
	return []LaneSpec{
		{Policy: PolicyFLT, Config: Config{Lifetime: timeutil.Days(30)}},
		{Policy: PolicyActiveDR, Config: Config{TargetUtilization: 0.5}},
		{Policy: PolicyActiveDR, Config: Config{
			Lifetime: timeutil.Days(30), TargetUtilization: 0.5,
			CaptureAt: timeutil.Date(2016, 7, 1), SnapshotEvery: timeutil.Days(28),
		}},
		{Policy: PolicyFLT, Config: Config{}},
	}
}

// TestMultiplexedReplayEquivalence is the tentpole's non-negotiable
// bar: every lane of a multiplexed run — Results, checkpoint states,
// checkpointed file-system sidecars — is bit-identical to a
// sequential RunWith of the same (Config, Policy, RunOptions), with
// and without fault injection. Each lane (and each side) gets a fresh
// injector from the same seed, so any cross-lane draw stealing in the
// multiplexed pass would surface as a divergence here.
func TestMultiplexedReplayEquivalence(t *testing.T) {
	ds, err := synth.Generate(synth.Config{Seed: 11, Users: 300})
	if err != nil {
		t.Fatal(err)
	}
	for _, faultsOn := range []bool{false, true} {
		t.Run(fmt.Sprintf("faults=%t", faultsOn), func(t *testing.T) {
			newInjector := func() *faults.Injector {
				if !faultsOn {
					return nil
				}
				return faults.New(faults.Config{Seed: 42, UnlinkFailProb: 0.05, ScanInterruptProb: 0.05})
			}
			lanes := multiplexFixtureLanes()
			mDirs := make([]string, len(lanes))
			for i := range lanes {
				mDirs[i] = t.TempDir()
				lanes[i].Opts = RunOptions{CheckpointDir: mDirs[i], CheckpointEvery: 20, Faults: newInjector()}
			}
			got, err := RunMultiplexed(ds, lanes)
			if err != nil {
				t.Fatal(err)
			}
			for i := range lanes {
				seqDir := t.TempDir()
				em, err := New(ds, lanes[i].Config)
				if err != nil {
					t.Fatal(err)
				}
				policy, err := (&Multiplexer{ds: ds}).lanePolicy(em, lanes[i].Policy)
				if err != nil {
					t.Fatal(err)
				}
				want, err := em.RunWith(policy, RunOptions{
					CheckpointDir: seqDir, CheckpointEvery: 20, Faults: newInjector(),
				})
				if err != nil {
					t.Fatal(err)
				}
				requireSameResult(t, want, got[i])
				if !reflect.DeepEqual(normalizeCheckpoint(t, seqDir), normalizeCheckpoint(t, mDirs[i])) {
					t.Errorf("lane %d: checkpoint state diverges from sequential", i)
				}
				if !bytes.Equal(readSidecar(t, seqDir), readSidecar(t, mDirs[i])) {
					t.Errorf("lane %d: checkpointed file system not byte-identical to sequential", i)
				}
			}
		})
	}
}

// TestMultiplexSingleLane covers the one-lane columnar path (a lane
// group of one still goes through ApplyRun, not Touch/Insert).
func TestMultiplexSingleLane(t *testing.T) {
	ds := tinyDataset()
	cfg := Config{TargetUtilization: 0.5, SnapshotEvery: timeutil.Days(28)}
	got, err := RunMultiplexed(ds, []LaneSpec{{Policy: PolicyActiveDR, Config: cfg}})
	if err != nil {
		t.Fatal(err)
	}
	em, err := New(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := em.Run(policyFor(t, em, "activedr"))
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, want, got[0])
}

// TestMultiplexDoesNotShareFaultDraws pins satellite independence:
// each lane draws from its own injector, so adding a fault-free lane
// (or any other lane) to the pass must not perturb a faulted lane's
// draw sequence or results — the multiplexed analogue of the daemon's
// TestPlanDoesNotPerturbReplay.
func TestMultiplexDoesNotShareFaultDraws(t *testing.T) {
	ds, err := synth.Generate(synth.Config{Seed: 11, Users: 120})
	if err != nil {
		t.Fatal(err)
	}
	faulty := func() LaneSpec {
		return LaneSpec{Policy: PolicyActiveDR, Config: Config{TargetUtilization: 0.5},
			Opts: RunOptions{Faults: faults.New(faults.Config{Seed: 7, UnlinkFailProb: 0.2, ScanInterruptProb: 0.2})}}
	}
	solo, err := RunMultiplexed(ds, []LaneSpec{faulty()})
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := RunMultiplexed(ds, []LaneSpec{
		faulty(),
		{Policy: PolicyFLT, Config: Config{Lifetime: timeutil.Days(30)}},
		faulty(),
	})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, solo[0], mixed[0])
	// Two lanes seeded identically draw identical — not interleaved —
	// sequences.
	requireSameResult(t, mixed[0], mixed[2])
}

// TestMultiplexFallsBackOnNonMonotoneLog exercises the sequential
// fallback: an access log the columnar feed cannot represent still
// runs, lane by lane, with sequential semantics.
func TestMultiplexFallsBackOnNonMonotoneLog(t *testing.T) {
	ds := tinyDataset()
	n := len(ds.Accesses)
	ds.Accesses[n-1], ds.Accesses[n-2] = ds.Accesses[n-2], ds.Accesses[n-1]
	if ds.Accesses[n-1].TS >= ds.Accesses[n-2].TS {
		t.Fatal("fixture still monotone after swap")
	}
	cfg := Config{TargetUtilization: 0.5}
	got, err := RunMultiplexed(ds, []LaneSpec{{Policy: PolicyFLT, Config: cfg}})
	if err != nil {
		t.Fatal(err)
	}
	em, err := New(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := em.Run(em.NewFLT())
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, want, got[0])
}

// TestMultiplexValidation pins the fail-fast surface.
func TestMultiplexValidation(t *testing.T) {
	ds := tinyDataset()
	m, err := NewMultiplexer(ds)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name, wantSub string, lanes []LaneSpec) {
		t.Helper()
		if _, err := m.Run(lanes); err == nil || !strings.Contains(err.Error(), wantSub) {
			t.Errorf("%s: err = %v, want substring %q", name, err, wantSub)
		}
	}
	check("empty", "at least one lane", nil)
	check("mixed intervals", "trigger interval", []LaneSpec{
		{Policy: PolicyFLT},
		{Policy: PolicyFLT, Config: Config{TriggerInterval: timeutil.Days(3)}},
	})
	check("stop-after-triggers", "StopAfterTriggers", []LaneSpec{
		{Policy: PolicyFLT, Opts: RunOptions{StopAfterTriggers: 2}},
	})
	check("unknown policy", "unknown lane policy", []LaneSpec{{Policy: "lru"}})
	check("dup checkpoint dir", "share checkpoint dir", []LaneSpec{
		{Policy: PolicyFLT, Opts: RunOptions{CheckpointDir: "/tmp/x"}},
		{Policy: PolicyActiveDR, Opts: RunOptions{CheckpointDir: "/tmp/x"}},
	})
	over := make([]LaneSpec, 65)
	for i := range over {
		over[i] = LaneSpec{Policy: PolicyFLT}
	}
	check("too many lanes", "64-lane", over)
}

// TestColFeedBatchInvariants checks the feed builder's contract on a
// real synthetic year: batches tile the log in order, no batch
// interior crosses a day boundary or a trigger-grid point, and each
// batch's runs partition its events by path.
func TestColFeedBatchInvariants(t *testing.T) {
	ds, err := synth.Generate(synth.Config{Seed: 3, Users: 80})
	if err != nil {
		t.Fatal(err)
	}
	interval := timeutil.Days(7)
	feed, ok := buildColFeed(ds, interval)
	if !ok {
		t.Fatal("synthetic log should be columnar-feedable")
	}
	t0 := ds.Snapshot.Taken
	next := 0
	for bi := range feed.batches {
		b := &feed.batches[bi]
		if b.start != next {
			t.Fatalf("batch %d starts at %d, want %d", bi, b.start, next)
		}
		next = b.end
		if b.first != ds.Accesses[b.start].TS {
			t.Fatalf("batch %d first time mismatch", bi)
		}
		day := ds.Accesses[b.start].TS.StartOfDay()
		// The lowest grid point strictly after the batch's first event
		// must clear the whole batch.
		grid := t0.Add(interval)
		for grid <= ds.Accesses[b.start].TS {
			grid = grid.Add(interval)
		}
		seen := make(map[int32]bool)
		var evCount int
		for _, r := range b.runs {
			if seen[r.pid] {
				t.Fatalf("batch %d: path %q split across runs", bi, feed.paths[r.pid])
			}
			seen[r.pid] = true
			evCount += int(r.n)
			for _, idx := range feed.order[r.off : r.off+r.n] {
				a := &ds.Accesses[idx]
				if int(idx) < b.start || int(idx) >= b.end {
					t.Fatalf("batch %d: event %d outside [%d,%d)", bi, idx, b.start, b.end)
				}
				if a.Path != feed.paths[r.pid] {
					t.Fatalf("batch %d: event %d path mismatch", bi, idx)
				}
				if a.TS.StartOfDay() != day {
					t.Fatalf("batch %d interior crosses a day boundary", bi)
				}
				if a.TS >= grid {
					t.Fatalf("batch %d interior crosses trigger grid at %v", bi, grid)
				}
			}
		}
		if evCount != b.end-b.start {
			t.Fatalf("batch %d runs cover %d events, want %d", bi, evCount, b.end-b.start)
		}
	}
	if next != len(ds.Accesses) {
		t.Fatalf("batches cover %d events, want %d", next, len(ds.Accesses))
	}
}
