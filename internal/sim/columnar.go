package sim

// Columnar day-batched access feed (DESIGN.md §13). The access log is
// pre-sliced into batches whose interiors contain no purge trigger and
// no day boundary, and each batch's events are regrouped into per-path
// runs (struct-of-arrays: one interned path id, a contiguous range of
// event indexes). The multiplexed runner then fires triggers once per
// batch boundary and applies each run with a single tree descent for
// all lanes, instead of one descent per event per lane.
//
// The feed is a pure index over ds.Accesses — it never copies event
// payloads — and is built once per trigger interval, then shared by
// every multiplexed run over the same dataset.

import (
	"math"
	"sort"

	"activedr/internal/timeutil"
	"activedr/internal/trace"
)

// colRun is one (path, batch) run: events order[off : off+n] all touch
// paths[pid], in stream order.
type colRun struct {
	pid int32
	off int32
	n   int32
}

// colBatch covers ds.Accesses[start:end). Its interior crosses no day
// boundary and no trigger-grid point, so the replay's per-event
// bookkeeping (trigger firing, day bucketing, rank table) is constant
// within it. first is the timestamp of the first event, which due
// triggers fire at-or-before, exactly like Stream.Apply.
type colBatch struct {
	start, end int
	first      timeutil.Time
	runs       []colRun
}

// colFeed is the columnar view of one dataset under one trigger grid.
type colFeed struct {
	paths   []string // pid → path (interned from the access records)
	order   []int32  // run-grouped permutation of event indexes
	batches []colBatch
}

// buildColFeed slices the access log into day/trigger batches under
// the grid t0+k*interval (t0 = snapshot time). ok is false when the
// log is not usable columnar-ly — timestamps out of order or events
// predating the snapshot — in which case the caller falls back to N
// sequential replays (which also reproduce the predate error).
func buildColFeed(ds *trace.Dataset, interval timeutil.Duration) (*colFeed, bool) {
	acc := ds.Accesses
	f := &colFeed{}
	if len(acc) == 0 {
		return f, true
	}
	t0 := ds.Snapshot.Taken
	if acc[0].TS < t0 {
		return nil, false
	}
	// The feed's indexes (event positions in order, path ids, run
	// offsets) are all int32, and each is bounded by the event count:
	// distinct paths ≤ events, order holds one entry per event, and a
	// run's offset is a position in order. One guard here makes every
	// int32 conversion below exact instead of silently truncating on a
	// >2^31-event log; such a log falls back to the sequential path,
	// which has no width assumption.
	if len(acc) > math.MaxInt32 {
		return nil, false
	}
	for i := 1; i < len(acc); i++ {
		if acc[i].TS < acc[i-1].TS {
			return nil, false
		}
	}
	f.order = make([]int32, 0, len(acc))
	pids := make(map[string]int32, 1024)
	var (
		pidSeen []int32 // batch number a pid last appeared in
		pidRun  []int32 // its run index within that batch
		batchNo int32   = -1
		runs    []colRun
	)
	flush := func(start, end int) {
		batchNo++
		runs = runs[:0]
		for i := start; i < end; i++ {
			p := acc[i].Path
			pid, ok := pids[p]
			if !ok {
				pid = int32(len(f.paths))
				pids[p] = pid
				f.paths = append(f.paths, p)
				pidSeen = append(pidSeen, -1)
				pidRun = append(pidRun, 0)
			}
			if pidSeen[pid] != batchNo {
				pidSeen[pid] = batchNo
				pidRun[pid] = int32(len(runs))
				runs = append(runs, colRun{pid: pid})
			}
			runs[pidRun[pid]].n++
		}
		off := int32(len(f.order))
		for r := range runs {
			runs[r].off = off
			off += runs[r].n
			runs[r].n = 0 // reused as the fill cursor below
		}
		f.order = append(f.order, make([]int32, int(off)-len(f.order))...)
		for i := start; i < end; i++ {
			r := &runs[pidRun[pids[acc[i].Path]]]
			f.order[r.off+r.n] = int32(i)
			r.n++
		}
		b := colBatch{start: start, end: end, first: acc[start].TS, runs: make([]colRun, len(runs))}
		copy(b.runs, runs)
		// Runs apply in path order — deterministic regardless of how the
		// day's events interleave, and friendly to the shared tree.
		sort.Slice(b.runs, func(a, c int) bool { return f.paths[b.runs[a].pid] < f.paths[b.runs[c].pid] })
		f.batches = append(f.batches, b)
	}
	// nextGrid tracks the lowest trigger-grid point strictly after every
	// event seen so far: an event at-or-past it must fire triggers first
	// (Stream.fireTriggers), so it starts a new batch.
	nextGrid := t0.Add(interval)
	for nextGrid <= acc[0].TS {
		nextGrid = nextGrid.Add(interval)
	}
	day := acc[0].TS.StartOfDay()
	start := 0
	for i := 1; i < len(acc); i++ {
		ts := acc[i].TS
		if ts >= nextGrid || ts.StartOfDay() != day {
			flush(start, i)
			start = i
			day = ts.StartOfDay()
			for nextGrid <= ts {
				nextGrid = nextGrid.Add(interval)
			}
		}
	}
	flush(start, len(acc))
	return f, true
}
