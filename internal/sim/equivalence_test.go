package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"activedr/internal/faults"
	"activedr/internal/synth"
)

// normalizeCheckpoint parses a checkpoint's state.json and blanks the
// fields allowed to differ between selection paths: wall clock inside
// the serialized reports, and the config digest (which deliberately
// records which path wrote it).
func normalizeCheckpoint(t *testing.T, dir string) checkpointState {
	t.Helper()
	name, err := readLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, name, stateFile))
	if err != nil {
		t.Fatal(err)
	}
	var cs checkpointState
	if err := json.Unmarshal(blob, &cs); err != nil {
		t.Fatal(err)
	}
	for _, rep := range cs.Reports {
		rep.Elapsed = 0
	}
	cs.Config = ""
	return cs
}

// readSidecar returns the raw bytes of the latest checkpoint's
// file-system snapshot sidecar.
func readSidecar(t *testing.T, dir string) []byte {
	t.Helper()
	name, err := readLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, name, fsFile))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestIndexedReplayEquivalence is the tentpole's end-to-end contract:
// a full-year replay on the incremental candidate index produces
// bit-identical Results (reports, day stats, totals, final state) and
// checkpoints to the legacy full-walk path — for both policies, with
// and without fault injection.
func TestIndexedReplayEquivalence(t *testing.T) {
	d, err := synth.Generate(synth.Config{Seed: 11, Users: 300})
	if err != nil {
		t.Fatal(err)
	}
	for _, faultsOn := range []bool{false, true} {
		for _, name := range []string{"flt", "adr"} {
			t.Run(fmt.Sprintf("%s/faults=%t", name, faultsOn), func(t *testing.T) {
				run := func(legacy bool) (*Result, string) {
					em, err := New(d, Config{TargetUtilization: 0.5, LegacySelection: legacy})
					if err != nil {
						t.Fatal(err)
					}
					opts := RunOptions{CheckpointDir: t.TempDir(), CheckpointEvery: 20}
					if faultsOn {
						opts.Faults = faults.New(faults.Config{
							Seed: 42, UnlinkFailProb: 0.05, ScanInterruptProb: 0.05,
						})
					}
					res, err := em.RunWith(policyFor(t, em, name), opts)
					if err != nil {
						t.Fatal(err)
					}
					return res, opts.CheckpointDir
				}
				indexed, idxDir := run(false)
				legacy, legDir := run(true)
				requireSameResult(t, legacy, indexed)
				if !reflect.DeepEqual(normalizeCheckpoint(t, idxDir), normalizeCheckpoint(t, legDir)) {
					t.Error("checkpoint states diverge between selection paths")
				}
				if !bytes.Equal(readSidecar(t, idxDir), readSidecar(t, legDir)) {
					t.Error("checkpointed file-system snapshots are not byte-identical")
				}
			})
		}
	}
}
