package sim

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"activedr/internal/faults"
	"activedr/internal/synth"
	"activedr/internal/timeutil"
)

// normalizeCheckpoint parses a checkpoint's state.json and blanks the
// fields allowed to differ between selection paths: wall clock inside
// the serialized reports, and the config digest (which deliberately
// records which path wrote it).
func normalizeCheckpoint(t *testing.T, dir string) checkpointState {
	t.Helper()
	name, err := readLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, name, stateFile))
	if err != nil {
		t.Fatal(err)
	}
	var cs checkpointState
	if err := json.Unmarshal(blob, &cs); err != nil {
		t.Fatal(err)
	}
	for _, rep := range cs.Reports {
		rep.Elapsed = 0
	}
	cs.Config = ""
	return cs
}

// readSidecar returns the raw bytes of the latest checkpoint's
// file-system snapshot sidecar.
func readSidecar(t *testing.T, dir string) []byte {
	t.Helper()
	name, err := readLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, name, fsFile))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSnapshotSpacingSurvivesResume pins the interaction of three
// cadences that do not divide each other: purge triggers every 3 days,
// metadata snapshots every 10 days (so a snapshot lands on every 4th
// trigger, off the trigger grid), and checkpoints every 3rd trigger.
// A run killed at a non-checkpoint trigger resumes from an earlier
// checkpoint and re-replays triggers in between; the restored lastSnap
// must keep the snapshot series — count, capture times, and contents —
// bit-identical to the uninterrupted run's. A drifted spacing state
// would double-capture or skip a snapshot right after the resume
// boundary.
func TestSnapshotSpacingSurvivesResume(t *testing.T) {
	ds := tinyDataset()
	cfg := Config{
		TargetUtilization: 0.5,
		TriggerInterval:   timeutil.Days(3),
		SnapshotEvery:     timeutil.Days(10),
	}
	newInjector := func() *faults.Injector {
		return faults.New(faults.Config{Seed: 9, UnlinkFailProb: 0.1, ScanInterruptProb: 0.1})
	}

	em, err := New(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := em.RunWith(policyFor(t, em, "activedr"), RunOptions{Faults: newInjector()})
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Snapshots) < 3 {
		t.Fatalf("fixture too small: only %d snapshots in the series", len(want.Snapshots))
	}
	for i := 1; i < len(want.Snapshots); i++ {
		if gap := want.Snapshots[i].Taken.Sub(want.Snapshots[i-1].Taken); gap < cfg.SnapshotEvery {
			t.Fatalf("snapshots %d and %d only %v apart, want >= %v", i-1, i, gap, cfg.SnapshotEvery)
		}
	}

	// stop=3 resumes exactly at a checkpoint; stop=4 and stop=5 resume
	// from trigger 3 and re-replay the triggers in between — including,
	// at stop=5, the snapshot-bearing trigger 4.
	for _, stopAt := range []int{3, 4, 5, 8} {
		dir := t.TempDir()
		em1, err := New(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := em1.RunWith(policyFor(t, em1, "activedr"), RunOptions{
			CheckpointDir: dir, CheckpointEvery: 3, Faults: newInjector(), StopAfterTriggers: stopAt,
		}); !errors.Is(err, ErrInterrupted) {
			t.Fatalf("stop=%d: %v", stopAt, err)
		}
		em2, err := New(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := em2.Resume(policyFor(t, em2, "activedr"), RunOptions{
			CheckpointDir: dir, CheckpointEvery: 3, Faults: newInjector(),
		})
		if err != nil {
			t.Fatalf("stop=%d: resume: %v", stopAt, err)
		}
		requireSameResult(t, want, got)
	}
}

// TestIndexedReplayEquivalence is the tentpole's end-to-end contract:
// a full-year replay on the incremental candidate index produces
// bit-identical Results (reports, day stats, totals, final state) and
// checkpoints to the legacy full-walk path — for both policies, with
// and without fault injection.
func TestIndexedReplayEquivalence(t *testing.T) {
	d, err := synth.Generate(synth.Config{Seed: 11, Users: 300})
	if err != nil {
		t.Fatal(err)
	}
	for _, faultsOn := range []bool{false, true} {
		for _, name := range []string{"flt", "adr"} {
			t.Run(fmt.Sprintf("%s/faults=%t", name, faultsOn), func(t *testing.T) {
				run := func(legacy bool) (*Result, string) {
					em, err := New(d, Config{TargetUtilization: 0.5, LegacySelection: legacy})
					if err != nil {
						t.Fatal(err)
					}
					opts := RunOptions{CheckpointDir: t.TempDir(), CheckpointEvery: 20}
					if faultsOn {
						opts.Faults = faults.New(faults.Config{
							Seed: 42, UnlinkFailProb: 0.05, ScanInterruptProb: 0.05,
						})
					}
					res, err := em.RunWith(policyFor(t, em, name), opts)
					if err != nil {
						t.Fatal(err)
					}
					return res, opts.CheckpointDir
				}
				indexed, idxDir := run(false)
				legacy, legDir := run(true)
				requireSameResult(t, legacy, indexed)
				if !reflect.DeepEqual(normalizeCheckpoint(t, idxDir), normalizeCheckpoint(t, legDir)) {
					t.Error("checkpoint states diverge between selection paths")
				}
				if !bytes.Equal(readSidecar(t, idxDir), readSidecar(t, legDir)) {
					t.Error("checkpointed file-system snapshots are not byte-identical")
				}
			})
		}
	}
}
