package sim

// Checkpoint/resume for the replay emulator. A year-long replay over a
// production-scale trace can be killed at any point — node reboot,
// scheduler preemption, operator ctrl-C — so the emulator persists its
// full state at purge-trigger boundaries and reconstructs itself
// mid-year from the latest checkpoint.
//
// Layout under RunOptions.CheckpointDir:
//
//	LATEST            name of the newest complete checkpoint
//	t000042/          one checkpoint, written atomically (tmp + rename)
//	  state.json      cursor, trigger clock, result-so-far, fault state
//	  fs.tsv.gz       vfs snapshot via the trace.Snapshot codec
//	  captured.tsv.gz CaptureAt snapshot, when already taken
//	  snapshots/      SnapshotEvery series captured so far
//
// Only the two newest checkpoints are kept. Checkpoints are taken
// right after a trigger's purge ran, so the serialized state is
// exactly the uninterrupted run's state at that boundary: a resumed
// run replays bit-for-bit (see TestCheckpointResumeDeterminism).

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"activedr/internal/activeness"
	"activedr/internal/faults"
	"activedr/internal/fsx"
	"activedr/internal/obs"
	"activedr/internal/retention"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
	"activedr/internal/vfs"
)

const (
	latestFile      = "LATEST"
	stateFile       = "state.json"
	fsFile          = "fs.tsv.gz"
	capturedFile    = "captured.tsv.gz"
	snapsSubdir     = "snapshots"
	keepCheckpoints = 2
)

// checkpointState is the JSON-serializable slice of runState plus the
// Result accumulated so far. The virtual file system, the CaptureAt
// clone, and the snapshot series travel as sidecar TSV files (the
// existing trace.Snapshot codec); everything else fits in JSON.
type checkpointState struct {
	Version     int    `json:"version"`
	Policy      string `json:"policy"`
	Config      string `json:"config"`
	At          int64  `json:"at"` // trigger time of this checkpoint
	Cursor      int    `json:"cursor"`
	NextTrigger int64  `json:"next_trigger"`
	RanksAt     int64  `json:"ranks_at"`
	Captured    bool   `json:"captured"`
	LastSnap    int64  `json:"last_snap"`
	Triggers    int    `json:"triggers"`

	TotalAccesses int64                       `json:"total_accesses"`
	TotalMisses   int64                       `json:"total_misses"`
	RestoredFiles int64                       `json:"restored_files"`
	RestoredBytes int64                       `json:"restored_bytes"`
	MissesByGroup [activeness.NumGroups]int64 `json:"misses_by_group"`
	Days          []DayStats                  `json:"days"`
	Reports       []*retention.Report         `json:"reports"`
	HasCaptured   bool                        `json:"has_captured"`
	NumSnapshots  int                         `json:"num_snapshots"`
	Faults        *faults.State               `json:"faults,omitempty"`
	// Metrics is the observability registry's state at this boundary
	// (omitted when the run is uninstrumented). Resume restores it
	// bit-identically so counters continue where the original run
	// left off; per-phase wall-clock times are measurement metadata
	// and deliberately never checkpointed.
	Metrics *obs.MetricsSnapshot `json:"metrics,omitempty"`
}

// checkpointVersion 2 added the selection-path knob to the digest
// (the indexed and legacy paths are equivalent, but a mismatch should
// still be explicit rather than silent).
const checkpointVersion = 2

// digest fingerprints the knobs that shape the replay so a resume
// against a different configuration is rejected instead of silently
// diverging. Reserved is excluded (not serializable); supplying the
// same exemption list on resume is the caller's contract.
func (c Config) digest() string {
	return fmt.Sprintf("v%d life=%d period=%d trig=%d util=%g cap=%d retro=%d decay=%g capture=%d snap=%d logins=%t transfers=%t eq7=%t order=%d sel=%t",
		checkpointVersion, c.Lifetime, c.PeriodLength, c.TriggerInterval,
		c.TargetUtilization, c.Capacity, c.RetroPasses, c.RetroDecay,
		c.CaptureAt, c.SnapshotEvery, c.UseLogins, c.UseTransfers,
		c.StrictEq7, c.Order, c.LegacySelection)
}

// saveCheckpoint writes one complete checkpoint for the trigger that
// just fired at `at`, then atomically publishes it via LATEST and
// prunes old ones. A crash at any point leaves either the previous or
// the new checkpoint intact, never a torn one.
func (e *Emulator) saveCheckpoint(opts RunOptions, policy retention.Policy, st *runState, at timeutil.Time) error {
	dir := opts.CheckpointDir
	name := fmt.Sprintf("t%06d", st.triggers)
	tmp := filepath.Join(dir, name+".tmp")
	if err := os.RemoveAll(tmp); err != nil {
		return fmt.Errorf("sim: checkpoint: %w", err)
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return fmt.Errorf("sim: checkpoint: %w", err)
	}
	if err := trace.WriteSnapshotFile(filepath.Join(tmp, fsFile), e.ds.Users, st.fsys.Snapshot(at)); err != nil {
		return fmt.Errorf("sim: checkpoint fs: %w", err)
	}
	if st.res.Captured != nil {
		if err := trace.WriteSnapshotFile(filepath.Join(tmp, capturedFile), e.ds.Users, st.res.Captured.Snapshot(e.cfg.CaptureAt)); err != nil {
			return fmt.Errorf("sim: checkpoint captured: %w", err)
		}
	}
	if len(st.res.Snapshots) > 0 {
		sd := filepath.Join(tmp, snapsSubdir)
		if err := os.MkdirAll(sd, 0o755); err != nil {
			return fmt.Errorf("sim: checkpoint: %w", err)
		}
		for i, s := range st.res.Snapshots {
			if err := trace.WriteSnapshotFile(filepath.Join(sd, seriesName(i)), e.ds.Users, s); err != nil {
				return fmt.Errorf("sim: checkpoint snapshot %d: %w", i, err)
			}
		}
	}
	cs := checkpointState{
		Version:       checkpointVersion,
		Policy:        policy.Name(),
		Config:        e.cfg.digest(),
		At:            int64(at),
		Cursor:        st.cursor,
		NextTrigger:   int64(st.nextTrigger),
		RanksAt:       int64(st.ranksAt),
		Captured:      st.captured,
		LastSnap:      int64(st.lastSnap),
		Triggers:      st.triggers,
		TotalAccesses: st.res.TotalAccesses,
		TotalMisses:   st.res.TotalMisses,
		RestoredFiles: st.res.RestoredFiles,
		RestoredBytes: st.res.RestoredBytes,
		MissesByGroup: st.res.MissesByGroup,
		Days:          st.res.Days,
		Reports:       st.res.Reports,
		HasCaptured:   st.res.Captured != nil,
		NumSnapshots:  len(st.res.Snapshots),
	}
	if opts.Faults != nil {
		fs := opts.Faults.State()
		cs.Faults = &fs
	}
	if reg := opts.Obs.Registry(); reg != nil {
		snap := reg.Snapshot()
		cs.Metrics = &snap
	}
	blob, err := json.MarshalIndent(&cs, "", " ")
	if err != nil {
		return fmt.Errorf("sim: checkpoint state: %w", err)
	}
	if err := os.WriteFile(filepath.Join(tmp, stateFile), blob, 0o644); err != nil {
		return fmt.Errorf("sim: checkpoint state: %w", err)
	}
	final := filepath.Join(dir, name)
	// A stale directory with this trigger count can linger from a
	// previous incarnation killed before publishing LATEST.
	if err := os.RemoveAll(final); err != nil {
		return fmt.Errorf("sim: checkpoint: %w", err)
	}
	if err := fsx.RenameDurable(tmp, final); err != nil {
		return fmt.Errorf("sim: checkpoint: %w", err)
	}
	// LATEST is the durability linchpin: fsx.WriteFileAtomic fsyncs
	// the pointer file before the rename and the directory after it,
	// so a crash can never resurrect a stale pointer to a pruned
	// checkpoint (see TestLatestPointerDurability).
	if err := fsx.WriteFileAtomic(filepath.Join(dir, latestFile), []byte(name+"\n"), 0o644); err != nil {
		return fmt.Errorf("sim: checkpoint: %w", err)
	}
	pruneCheckpoints(dir, keepCheckpoints)
	return nil
}

// seriesName numbers checkpointed snapshot-series files; an index
// keeps same-day snapshots distinct, unlike the date-based public
// series naming.
func seriesName(i int) string { return fmt.Sprintf("s%05d.tsv.gz", i) }

// pruneCheckpoints removes all but the newest keep checkpoint
// directories. Best-effort: pruning failures never fail the run.
func pruneCheckpoints(dir string, keep int) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	var names []string
	for _, ent := range entries {
		n := ent.Name()
		if ent.IsDir() && strings.HasPrefix(n, "t") && !strings.HasSuffix(n, ".tmp") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for len(names) > keep {
		os.RemoveAll(filepath.Join(dir, names[0]))
		names = names[1:]
	}
}

// HasCheckpoint reports whether dir holds a complete checkpoint to
// resume from.
func HasCheckpoint(dir string) bool {
	name, err := readLatest(dir)
	if err != nil {
		return false
	}
	_, err = os.Stat(filepath.Join(dir, name, stateFile))
	return err == nil
}

func readLatest(dir string) (string, error) {
	b, err := os.ReadFile(filepath.Join(dir, latestFile))
	if err != nil {
		return "", err
	}
	name := strings.TrimSpace(string(b))
	if name == "" || strings.Contains(name, "/") {
		return "", fmt.Errorf("sim: corrupt %s in %s", latestFile, dir)
	}
	return name, nil
}

// loadCheckpoint reconstructs the runState recorded in the latest
// checkpoint under opts.CheckpointDir, validating that the policy and
// emulator configuration match the ones that wrote it.
func (e *Emulator) loadCheckpoint(policy retention.Policy, opts RunOptions) (*runState, error) {
	dir := opts.CheckpointDir
	name, err := readLatest(dir)
	if err != nil {
		return nil, fmt.Errorf("sim: no checkpoint in %s: %w", dir, err)
	}
	ckdir := filepath.Join(dir, name)
	blob, err := os.ReadFile(filepath.Join(ckdir, stateFile))
	if err != nil {
		return nil, fmt.Errorf("sim: checkpoint %s: %w", name, err)
	}
	var cs checkpointState
	if err := json.Unmarshal(blob, &cs); err != nil {
		return nil, fmt.Errorf("sim: checkpoint %s: %w", name, err)
	}
	if cs.Version != checkpointVersion {
		return nil, fmt.Errorf("sim: checkpoint %s has version %d, want %d", name, cs.Version, checkpointVersion)
	}
	if cs.Policy != policy.Name() {
		return nil, fmt.Errorf("sim: checkpoint %s was written by policy %q, resuming with %q", name, cs.Policy, policy.Name())
	}
	if cs.Config != e.cfg.digest() {
		return nil, fmt.Errorf("sim: checkpoint %s config mismatch:\n  have %s\n  want %s", name, e.cfg.digest(), cs.Config)
	}
	if cs.Faults != nil && opts.Faults == nil {
		return nil, fmt.Errorf("sim: checkpoint %s carries fault-injector state but no injector was provided", name)
	}

	idx := trace.NameIndex(e.ds.Users)
	snap, err := trace.ReadSnapshotFile(filepath.Join(ckdir, fsFile), idx)
	if err != nil {
		return nil, fmt.Errorf("sim: checkpoint %s: %w", name, err)
	}
	fsys, err := vfs.FromSnapshot(snap)
	if err != nil {
		return nil, fmt.Errorf("sim: checkpoint %s: %w", name, err)
	}
	res := &Result{
		Policy:        cs.Policy,
		Days:          cs.Days,
		Reports:       cs.Reports,
		TotalAccesses: cs.TotalAccesses,
		TotalMisses:   cs.TotalMisses,
		RestoredFiles: cs.RestoredFiles,
		RestoredBytes: cs.RestoredBytes,
		MissesByGroup: cs.MissesByGroup,
	}
	if cs.HasCaptured {
		csnap, err := trace.ReadSnapshotFile(filepath.Join(ckdir, capturedFile), idx)
		if err != nil {
			return nil, fmt.Errorf("sim: checkpoint %s: %w", name, err)
		}
		if res.Captured, err = vfs.FromSnapshot(csnap); err != nil {
			return nil, fmt.Errorf("sim: checkpoint %s: %w", name, err)
		}
	}
	for i := 0; i < cs.NumSnapshots; i++ {
		s, err := trace.ReadSnapshotFile(filepath.Join(ckdir, snapsSubdir, seriesName(i)), idx)
		if err != nil {
			return nil, fmt.Errorf("sim: checkpoint %s: %w", name, err)
		}
		res.Snapshots = append(res.Snapshots, s)
	}
	if cs.Faults != nil {
		opts.Faults.Restore(*cs.Faults)
	}
	// Metrics restore is best-effort by design: resuming without an
	// observer (or with an events-only one) just drops the counter
	// state, since — unlike fault-injector state — it never shapes
	// the replay. A malformed snapshot still fails the load.
	if cs.Metrics != nil {
		if reg := opts.Obs.Registry(); reg != nil {
			if err := reg.Restore(*cs.Metrics); err != nil {
				return nil, fmt.Errorf("sim: checkpoint %s: %w", name, err)
			}
		}
	}
	st := &runState{
		fsys:        fsys,
		res:         res,
		cursor:      cs.Cursor,
		nextTrigger: timeutil.Time(cs.NextTrigger),
		ranksAt:     timeutil.Time(cs.RanksAt),
		captured:    cs.Captured,
		lastSnap:    timeutil.Time(cs.LastSnap),
		triggers:    cs.Triggers,
		cursors:     e.eval.NewCursors(),
	}
	// The rank table is not serialized: it is a pure function of the
	// (identically rebuilt) activeness evaluator and the evaluation
	// time recorded in the checkpoint. The fresh cursors fast-forward
	// to ranksAt here and advance with the resumed triggers.
	st.ranks = st.cursors.EvaluateAll(e.users, st.ranksAt)
	return st, nil
}

// Resume continues an interrupted replay from the latest checkpoint
// under opts.CheckpointDir. The emulator must be built over the same
// dataset and configuration, and policy must match the interrupted
// run; the result is bit-for-bit identical to the uninterrupted run.
func (e *Emulator) Resume(policy retention.Policy, opts RunOptions) (*Result, error) {
	if opts.CheckpointDir == "" {
		return nil, errors.New("sim: Resume requires RunOptions.CheckpointDir")
	}
	st, err := e.loadCheckpoint(policy, opts)
	if err != nil {
		return nil, err
	}
	return e.replay(policy, opts, st)
}

// Resume is the package-level convenience: rebuild an Emulator from
// the dataset and configuration, then continue the interrupted run.
func Resume(ds *trace.Dataset, cfg Config, policy retention.Policy, opts RunOptions) (*Result, error) {
	e, err := New(ds, cfg)
	if err != nil {
		return nil, err
	}
	return e.Resume(policy, opts)
}
