package sim

// Checkpoint/resume for the replay emulator. A year-long replay over a
// production-scale trace can be killed at any point — node reboot,
// scheduler preemption, operator ctrl-C — so the emulator persists its
// full state at purge-trigger boundaries and reconstructs itself
// mid-year from the latest checkpoint.
//
// Layout under RunOptions.CheckpointDir:
//
//	LATEST            name of the newest complete checkpoint
//	t000042/          one checkpoint, written atomically (tmp + rename)
//	  state.json      cursor, trigger clock, result-so-far, fault state
//	  fs.tsv.gz       full vfs snapshot via the trace.Snapshot codec
//	  delta.tsv.gz    (delta checkpoints) upserts since the base
//	  deleted.gz      (delta checkpoints) paths removed since the base
//	  captured.tsv.gz CaptureAt snapshot, when taken since the base
//	  snapshots/      SnapshotEvery series files new since the base
//
// With RunOptions.CheckpointFullEvery ≤ 1 every checkpoint is full
// (fs.tsv.gz holds the whole tree and sidecars are complete), the
// historical format. With K > 1 only every Kth checkpoint is full;
// the ones between carry a delta against their base (state.json's
// "base" field names the previous checkpoint), so checkpoint cost
// scales with the mutation rate instead of the tree size. Loading a
// delta walks the base chain back to the nearest full checkpoint and
// replays upserts and deletions forward. Pruning protects the base
// chain of every kept checkpoint.
//
// Checkpoints are taken right after a trigger's purge ran, so the
// serialized state is exactly the uninterrupted run's state at that
// boundary: a resumed run replays bit-for-bit (see
// TestCheckpointResumeDeterminism, TestDeltaCheckpointResume).

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"activedr/internal/activeness"
	"activedr/internal/faults"
	"activedr/internal/fsx"
	"activedr/internal/obs"
	"activedr/internal/retention"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
	"activedr/internal/vfs"
)

const (
	latestFile      = "LATEST"
	stateFile       = "state.json"
	fsFile          = "fs.tsv.gz"
	deltaFile       = "delta.tsv.gz"
	deletedFile     = "deleted.gz"
	capturedFile    = "captured.tsv.gz"
	snapsSubdir     = "snapshots"
	keepCheckpoints = 2
	// maxDeltaChain caps how many delta links a loader will walk — a
	// cycle or runaway chain fails fast instead of spinning.
	maxDeltaChain = 1024

	kindFull  = "full"
	kindDelta = "delta"
)

// checkpointState is the JSON-serializable slice of runState plus the
// Result accumulated so far. The virtual file system, the CaptureAt
// clone, and the snapshot series travel as sidecar TSV files (the
// existing trace.Snapshot codec); everything else fits in JSON.
type checkpointState struct {
	Version int    `json:"version"`
	Policy  string `json:"policy"`
	Config  string `json:"config"`
	// Kind is "full" or "delta"; empty (v2 checkpoints) means full.
	// Base names the previous checkpoint a delta diffs against.
	Kind        string `json:"kind,omitempty"`
	Base        string `json:"base,omitempty"`
	Ckpts       int    `json:"ckpts,omitempty"` // checkpoints written so far, keys the full/delta cadence
	At          int64  `json:"at"`              // trigger time of this checkpoint
	Cursor      int    `json:"cursor"`
	NextTrigger int64  `json:"next_trigger"`
	RanksAt     int64  `json:"ranks_at"`
	Captured    bool   `json:"captured"`
	LastSnap    int64  `json:"last_snap"`
	Triggers    int    `json:"triggers"`

	TotalAccesses int64                       `json:"total_accesses"`
	TotalMisses   int64                       `json:"total_misses"`
	RestoredFiles int64                       `json:"restored_files"`
	RestoredBytes int64                       `json:"restored_bytes"`
	MissesByGroup [activeness.NumGroups]int64 `json:"misses_by_group"`
	Days          []DayStats                  `json:"days"`
	Reports       []*retention.Report         `json:"reports"`
	HasCaptured   bool                        `json:"has_captured"`
	NumSnapshots  int                         `json:"num_snapshots"`
	Faults        *faults.State               `json:"faults,omitempty"`
	// Metrics is the observability registry's state at this boundary
	// (omitted when the run is uninstrumented). Resume restores it
	// bit-identically so counters continue where the original run
	// left off; per-phase wall-clock times are measurement metadata
	// and deliberately never checkpointed.
	Metrics *obs.MetricsSnapshot `json:"metrics,omitempty"`
}

// checkpointVersion 2 added the selection-path knob to the digest
// (the indexed and legacy paths are equivalent, but a mismatch should
// still be explicit rather than silent). Version 3 added the
// full/delta kind and base-chain fields; v2 checkpoints are still
// accepted (they are exactly a v3 full checkpoint without the new
// fields), any other version fails fast.
const checkpointVersion = 3

// digest fingerprints the knobs that shape the replay so a resume
// against a different configuration is rejected instead of silently
// diverging. Reserved is excluded (not serializable); supplying the
// same exemption list on resume is the caller's contract.
func (c Config) digest() string {
	return c.digestAt(checkpointVersion)
}

// digestV2 is the fingerprint format version-2 checkpoints carry —
// identical fields, older version stamp — kept so the delta-aware
// reader can validate and accept them.
func (c Config) digestV2() string { return c.digestAt(2) }

func (c Config) digestAt(version int) string {
	return fmt.Sprintf("v%d life=%d period=%d trig=%d util=%g cap=%d retro=%d decay=%g capture=%d snap=%d logins=%t transfers=%t eq7=%t order=%d sel=%t",
		version, c.Lifetime, c.PeriodLength, c.TriggerInterval,
		c.TargetUtilization, c.Capacity, c.RetroPasses, c.RetroDecay,
		c.CaptureAt, c.SnapshotEvery, c.UseLogins, c.UseTransfers,
		c.StrictEq7, c.Order, c.LegacySelection)
}

// saveCheckpoint writes one complete checkpoint for the trigger that
// just fired at `at`, then atomically publishes it via LATEST and
// prunes old ones. A crash at any point leaves either the previous or
// the new checkpoint intact, never a torn one.
func (e *Emulator) saveCheckpoint(opts RunOptions, policy retention.Policy, st *runState, at timeutil.Time) error {
	dir := opts.CheckpointDir
	name := fmt.Sprintf("t%06d", st.triggers)
	tmp := filepath.Join(dir, name+".tmp")
	if err := os.RemoveAll(tmp); err != nil {
		return fmt.Errorf("sim: checkpoint: %w", err)
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return fmt.Errorf("sim: checkpoint: %w", err)
	}
	// Decide full vs delta. A delta needs a distinct previous
	// checkpoint to diff against (the daemon's manual Checkpoint can
	// re-save under the same trigger count, which must not self-base).
	kind := kindFull
	if opts.CheckpointFullEvery > 1 && st.ckpts%opts.CheckpointFullEvery != 0 &&
		st.lastCkpt != "" && st.lastCkpt != name {
		kind = kindDelta
	}
	if kind == kindFull {
		if err := trace.WriteSnapshotFile(filepath.Join(tmp, fsFile), e.ds.Users, st.fsys.Snapshot(at)); err != nil {
			return fmt.Errorf("sim: checkpoint fs: %w", err)
		}
		st.fsys.TakeDirty() // a full snapshot resets the delta window
	} else {
		dirty := st.fsys.TakeDirty()
		upserts := &trace.Snapshot{Taken: at}
		var deleted []string
		for _, p := range dirty {
			if m, ok := st.fsys.Lookup(p); ok {
				upserts.Entries = append(upserts.Entries, trace.SnapshotEntry{
					Path: p, User: m.User, Size: m.Size, Stripes: m.Stripes, ATime: m.ATime,
				})
			} else {
				deleted = append(deleted, p)
			}
		}
		if err := trace.WriteSnapshotFile(filepath.Join(tmp, deltaFile), e.ds.Users, upserts); err != nil {
			return fmt.Errorf("sim: checkpoint delta: %w", err)
		}
		if err := writePathList(filepath.Join(tmp, deletedFile), deleted); err != nil {
			return fmt.Errorf("sim: checkpoint delta: %w", err)
		}
	}
	if st.res.Captured != nil && (kind == kindFull || !st.capturedSaved) {
		if err := trace.WriteSnapshotFile(filepath.Join(tmp, capturedFile), e.ds.Users, st.res.Captured.Snapshot(e.cfg.CaptureAt)); err != nil {
			return fmt.Errorf("sim: checkpoint captured: %w", err)
		}
	}
	snapsFrom := 0
	if kind == kindDelta {
		snapsFrom = st.snapsSaved // earlier series files live in the base chain
	}
	if len(st.res.Snapshots) > snapsFrom {
		sd := filepath.Join(tmp, snapsSubdir)
		if err := os.MkdirAll(sd, 0o755); err != nil {
			return fmt.Errorf("sim: checkpoint: %w", err)
		}
		for i := snapsFrom; i < len(st.res.Snapshots); i++ {
			if err := trace.WriteSnapshotFile(filepath.Join(sd, seriesName(i)), e.ds.Users, st.res.Snapshots[i]); err != nil {
				return fmt.Errorf("sim: checkpoint snapshot %d: %w", i, err)
			}
		}
	}
	cs := checkpointState{
		Version:       checkpointVersion,
		Policy:        policy.Name(),
		Config:        e.cfg.digest(),
		Kind:          kind,
		Ckpts:         st.ckpts + 1,
		At:            int64(at),
		Cursor:        st.cursor,
		NextTrigger:   int64(st.nextTrigger),
		RanksAt:       int64(st.ranksAt),
		Captured:      st.captured,
		LastSnap:      int64(st.lastSnap),
		Triggers:      st.triggers,
		TotalAccesses: st.res.TotalAccesses,
		TotalMisses:   st.res.TotalMisses,
		RestoredFiles: st.res.RestoredFiles,
		RestoredBytes: st.res.RestoredBytes,
		MissesByGroup: st.res.MissesByGroup,
		Days:          st.res.Days,
		Reports:       st.res.Reports,
		HasCaptured:   st.res.Captured != nil,
		NumSnapshots:  len(st.res.Snapshots),
	}
	if kind == kindDelta {
		cs.Base = st.lastCkpt
	}
	if opts.Faults != nil {
		fs := opts.Faults.State()
		cs.Faults = &fs
	}
	if reg := opts.Obs.Registry(); reg != nil {
		snap := reg.Snapshot()
		cs.Metrics = &snap
	}
	blob, err := json.MarshalIndent(&cs, "", " ")
	if err != nil {
		return fmt.Errorf("sim: checkpoint state: %w", err)
	}
	if err := os.WriteFile(filepath.Join(tmp, stateFile), blob, 0o644); err != nil {
		return fmt.Errorf("sim: checkpoint state: %w", err)
	}
	final := filepath.Join(dir, name)
	// A stale directory with this trigger count can linger from a
	// previous incarnation killed before publishing LATEST.
	if err := os.RemoveAll(final); err != nil {
		return fmt.Errorf("sim: checkpoint: %w", err)
	}
	if err := fsx.RenameDurable(tmp, final); err != nil {
		return fmt.Errorf("sim: checkpoint: %w", err)
	}
	// LATEST is the durability linchpin: fsx.WriteFileAtomic fsyncs
	// the pointer file before the rename and the directory after it,
	// so a crash can never resurrect a stale pointer to a pruned
	// checkpoint (see TestLatestPointerDurability).
	if err := fsx.WriteFileAtomic(filepath.Join(dir, latestFile), []byte(name+"\n"), 0o644); err != nil {
		return fmt.Errorf("sim: checkpoint: %w", err)
	}
	st.ckpts++
	st.lastCkpt = name
	st.snapsSaved = len(st.res.Snapshots)
	st.capturedSaved = st.res.Captured != nil
	pruneCheckpoints(dir, keepCheckpoints)
	return nil
}

// writePathList persists a sorted newline-separated path list, gzip
// compressed — the deletions side of a delta checkpoint.
func writePathList(path string, paths []string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	zw := gzip.NewWriter(f)
	for _, p := range paths {
		if _, err := zw.Write([]byte(p)); err != nil {
			return err
		}
		if _, err := zw.Write([]byte{'\n'}); err != nil {
			return err
		}
	}
	return zw.Close()
}

// readPathList reads a writePathList file.
func readPathList(path string) (paths []string, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(zr)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	for sc.Scan() {
		paths = append(paths, sc.Text())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return paths, zr.Close()
}

// seriesName numbers checkpointed snapshot-series files; an index
// keeps same-day snapshots distinct, unlike the date-based public
// series naming.
func seriesName(i int) string { return fmt.Sprintf("s%05d.tsv.gz", i) }

// pruneCheckpoints removes all but the newest keep checkpoint
// directories, never touching a checkpoint some kept checkpoint's
// delta chain still bases on. Best-effort: pruning failures (or an
// unreadable kept state, which makes the chain unknowable) never fail
// the run — they just skip the prune.
func pruneCheckpoints(dir string, keep int) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	var names []string
	for _, ent := range entries {
		n := ent.Name()
		if ent.IsDir() && strings.HasPrefix(n, "t") && !strings.HasSuffix(n, ".tmp") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if len(names) <= keep {
		return
	}
	protected := make(map[string]bool)
	for _, n := range names[len(names)-keep:] {
		protected[n] = true
	}
	// Follow every kept checkpoint's base chain; each link is needed
	// to reconstruct the one above it.
	for _, n := range names[len(names)-keep:] {
		cur := n
		for hops := 0; hops < maxDeltaChain; hops++ {
			blob, err := os.ReadFile(filepath.Join(dir, cur, stateFile))
			if err != nil {
				return // chain unknowable: keep everything
			}
			var cs struct {
				Kind string `json:"kind"`
				Base string `json:"base"`
			}
			if err := json.Unmarshal(blob, &cs); err != nil {
				return
			}
			if cs.Kind != kindDelta || cs.Base == "" || protected[cs.Base] {
				break
			}
			protected[cs.Base] = true
			cur = cs.Base
		}
	}
	for _, n := range names {
		if !protected[n] {
			os.RemoveAll(filepath.Join(dir, n))
		}
	}
}

// HasCheckpoint reports whether dir holds a complete checkpoint to
// resume from.
func HasCheckpoint(dir string) bool {
	name, err := readLatest(dir)
	if err != nil {
		return false
	}
	_, err = os.Stat(filepath.Join(dir, name, stateFile))
	return err == nil
}

func readLatest(dir string) (string, error) {
	b, err := os.ReadFile(filepath.Join(dir, latestFile))
	if err != nil {
		return "", err
	}
	name := strings.TrimSpace(string(b))
	if name == "" || strings.Contains(name, "/") {
		return "", fmt.Errorf("sim: corrupt %s in %s", latestFile, dir)
	}
	return name, nil
}

// loadCheckpoint reconstructs the runState recorded in the latest
// checkpoint under opts.CheckpointDir, validating that the policy and
// emulator configuration match the ones that wrote it.
func (e *Emulator) loadCheckpoint(policy retention.Policy, opts RunOptions) (*runState, error) {
	dir := opts.CheckpointDir
	name, err := readLatest(dir)
	if err != nil {
		return nil, fmt.Errorf("sim: no checkpoint in %s: %w", dir, err)
	}
	ckdir := filepath.Join(dir, name)
	blob, err := os.ReadFile(filepath.Join(ckdir, stateFile))
	if err != nil {
		return nil, fmt.Errorf("sim: checkpoint %s: %w", name, err)
	}
	var cs checkpointState
	if err := json.Unmarshal(blob, &cs); err != nil {
		return nil, fmt.Errorf("sim: checkpoint %s: %w", name, err)
	}
	wantDigest := e.cfg.digest()
	switch cs.Version {
	case checkpointVersion:
	case 2:
		// A v2 checkpoint is exactly a v3 full checkpoint without the
		// kind/base fields; accept it against the v2 digest format.
		wantDigest = e.cfg.digestV2()
		if cs.Kind != "" && cs.Kind != kindFull {
			return nil, fmt.Errorf("sim: checkpoint %s has version 2 but kind %q; refusing to guess its layout", name, cs.Kind)
		}
	default:
		return nil, fmt.Errorf("sim: checkpoint %s has version %d; this build reads versions 2 and %d — refusing to resume from an unknown format", name, cs.Version, checkpointVersion)
	}
	if cs.Policy != policy.Name() {
		return nil, fmt.Errorf("sim: checkpoint %s was written by policy %q, resuming with %q", name, cs.Policy, policy.Name())
	}
	if cs.Config != wantDigest {
		return nil, fmt.Errorf("sim: checkpoint %s config mismatch:\n  have %s\n  want %s", name, wantDigest, cs.Config)
	}
	// At records the trigger this checkpoint was taken on; the next
	// trigger the resumed run waits for can never be earlier. A
	// violation means the state file was hand-edited or mixed from
	// two different runs, and resuming would replay events the
	// checkpoint already accounted for.
	if cs.At > cs.NextTrigger {
		return nil, fmt.Errorf("sim: checkpoint %s is internally inconsistent: taken at t=%d but next trigger t=%d is earlier", name, cs.At, cs.NextTrigger)
	}
	if cs.Faults != nil && opts.Faults == nil {
		return nil, fmt.Errorf("sim: checkpoint %s carries fault-injector state but no injector was provided", name)
	}

	idx := trace.NameIndex(e.ds.Users)
	// chain lists the checkpoints contributing state, newest first:
	// the loaded one, its base, ..., down to the nearest full one.
	chain := []string{name}
	if cs.Kind == kindDelta {
		cur := cs.Base
		for hops := 0; ; hops++ {
			if cur == "" {
				return nil, fmt.Errorf("sim: checkpoint %s: delta chain member without a base", name)
			}
			if hops >= maxDeltaChain {
				return nil, fmt.Errorf("sim: checkpoint %s: delta chain exceeds %d links", name, maxDeltaChain)
			}
			blob, err := os.ReadFile(filepath.Join(dir, cur, stateFile))
			if err != nil {
				return nil, fmt.Errorf("sim: checkpoint %s: base %s: %w", name, cur, err)
			}
			var base struct {
				Version int    `json:"version"`
				Kind    string `json:"kind"`
				Base    string `json:"base"`
			}
			if err := json.Unmarshal(blob, &base); err != nil {
				return nil, fmt.Errorf("sim: checkpoint %s: base %s: %w", name, cur, err)
			}
			if base.Version != checkpointVersion && base.Version != 2 {
				return nil, fmt.Errorf("sim: checkpoint %s: base %s has version %d", name, cur, base.Version)
			}
			chain = append(chain, cur)
			if base.Kind != kindDelta {
				break
			}
			cur = base.Base
		}
	}
	// Rebuild the file system: the chain tail's full snapshot, then
	// each delta's deletions and upserts replayed oldest to newest.
	full := chain[len(chain)-1]
	snap, err := trace.ReadSnapshotFile(filepath.Join(dir, full, fsFile), idx)
	if err != nil {
		return nil, fmt.Errorf("sim: checkpoint %s: %w", full, err)
	}
	tree, err := vfs.FromSnapshot(snap)
	if err != nil {
		return nil, fmt.Errorf("sim: checkpoint %s: %w", full, err)
	}
	for i := len(chain) - 2; i >= 0; i-- {
		dn := chain[i]
		deleted, err := readPathList(filepath.Join(dir, dn, deletedFile))
		if err != nil {
			return nil, fmt.Errorf("sim: checkpoint %s: delta %s: %w", name, dn, err)
		}
		for _, p := range deleted {
			tree.Remove(p)
		}
		up, err := trace.ReadSnapshotFile(filepath.Join(dir, dn, deltaFile), idx)
		if err != nil {
			return nil, fmt.Errorf("sim: checkpoint %s: delta %s: %w", name, dn, err)
		}
		for i := range up.Entries {
			ue := &up.Entries[i]
			if err := tree.Insert(ue.Path, vfs.FileMeta{User: ue.User, Size: ue.Size, Stripes: ue.Stripes, ATime: ue.ATime}); err != nil {
				return nil, fmt.Errorf("sim: checkpoint %s: delta %s: %w", name, dn, err)
			}
		}
	}
	// Re-partition under the resuming configuration's shard count. The
	// serialized format is shard-agnostic (a plain snapshot), so a
	// checkpoint written at one shard count resumes at any other; this
	// is why Shards stays out of the config digest.
	var fsys vfs.Namespace = tree
	if e.cfg.Shards > 1 {
		if fsys, err = vfs.ShardFS(tree, e.cfg.Shards); err != nil {
			return nil, fmt.Errorf("sim: checkpoint %s: %w", name, err)
		}
	}
	res := &Result{
		Policy:        cs.Policy,
		Days:          cs.Days,
		Reports:       cs.Reports,
		TotalAccesses: cs.TotalAccesses,
		TotalMisses:   cs.TotalMisses,
		RestoredFiles: cs.RestoredFiles,
		RestoredBytes: cs.RestoredBytes,
		MissesByGroup: cs.MissesByGroup,
	}
	// Sidecars (the CaptureAt clone and the snapshot series) live in
	// the newest chain member that wrote them: full checkpoints carry
	// everything, deltas only what appeared since their base.
	if cs.HasCaptured {
		cpath, err := findInChain(dir, chain, capturedFile)
		if err != nil {
			return nil, fmt.Errorf("sim: checkpoint %s: %w", name, err)
		}
		csnap, err := trace.ReadSnapshotFile(cpath, idx)
		if err != nil {
			return nil, fmt.Errorf("sim: checkpoint %s: %w", name, err)
		}
		if res.Captured, err = vfs.FromSnapshot(csnap); err != nil {
			return nil, fmt.Errorf("sim: checkpoint %s: %w", name, err)
		}
	}
	for i := 0; i < cs.NumSnapshots; i++ {
		spath, err := findInChain(dir, chain, filepath.Join(snapsSubdir, seriesName(i)))
		if err != nil {
			return nil, fmt.Errorf("sim: checkpoint %s: %w", name, err)
		}
		s, err := trace.ReadSnapshotFile(spath, idx)
		if err != nil {
			return nil, fmt.Errorf("sim: checkpoint %s: %w", name, err)
		}
		res.Snapshots = append(res.Snapshots, s)
	}
	if cs.Faults != nil {
		opts.Faults.Restore(*cs.Faults)
	}
	// Metrics restore is best-effort by design: resuming without an
	// observer (or with an events-only one) just drops the counter
	// state, since — unlike fault-injector state — it never shapes
	// the replay. A malformed snapshot still fails the load.
	if cs.Metrics != nil {
		if reg := opts.Obs.Registry(); reg != nil {
			if err := reg.Restore(*cs.Metrics); err != nil {
				return nil, fmt.Errorf("sim: checkpoint %s: %w", name, err)
			}
		}
	}
	// cs.Ckpts is 0 for v2 checkpoints, which don't carry the cadence
	// counter; that makes the resumed run's next checkpoint full,
	// which is always safe.
	st := &runState{
		fsys:        fsys,
		res:         res,
		cursor:      cs.Cursor,
		nextTrigger: timeutil.Time(cs.NextTrigger),
		ranksAt:     timeutil.Time(cs.RanksAt),
		captured:    cs.Captured,
		lastSnap:    timeutil.Time(cs.LastSnap),
		triggers:    cs.Triggers,
		cursors:     e.eval.NewCursors(),
		// Deltas written after this resume base on the checkpoint we
		// just loaded, with the sidecars it already accounts for.
		ckpts:         cs.Ckpts,
		lastCkpt:      name,
		snapsSaved:    cs.NumSnapshots,
		capturedSaved: cs.HasCaptured,
	}
	st.ranker = func(at timeutil.Time) []activeness.Rank {
		return st.cursors.EvaluateAll(e.users, at)
	}
	// The rank table is not serialized: it is a pure function of the
	// (identically rebuilt) activeness evaluator and the evaluation
	// time recorded in the checkpoint. The fresh cursors fast-forward
	// to ranksAt here and advance with the resumed triggers.
	st.ranks = st.ranker(st.ranksAt)
	return st, nil
}

// findInChain locates rel in the newest chain member carrying it.
func findInChain(dir string, chain []string, rel string) (string, error) {
	for _, n := range chain {
		p := filepath.Join(dir, n, rel)
		if _, err := os.Stat(p); err == nil {
			return p, nil
		}
	}
	return "", fmt.Errorf("sidecar %s missing from chain %v", rel, chain)
}

// Resume continues an interrupted replay from the latest checkpoint
// under opts.CheckpointDir. The emulator must be built over the same
// dataset and configuration, and policy must match the interrupted
// run; the result is bit-for-bit identical to the uninterrupted run.
func (e *Emulator) Resume(policy retention.Policy, opts RunOptions) (*Result, error) {
	if opts.CheckpointDir == "" {
		return nil, errors.New("sim: Resume requires RunOptions.CheckpointDir")
	}
	st, err := e.loadCheckpoint(policy, opts)
	if err != nil {
		return nil, err
	}
	return e.replay(policy, opts, st)
}

// Resume is the package-level convenience: rebuild an Emulator from
// the dataset and configuration, then continue the interrupted run.
func Resume(ds *trace.Dataset, cfg Config, policy retention.Policy, opts RunOptions) (*Result, error) {
	e, err := New(ds, cfg)
	if err != nil {
		return nil, err
	}
	return e.Resume(policy, opts)
}
