package sim

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"activedr/internal/faults"
	"activedr/internal/obs"
	"activedr/internal/timeutil"
)

// observed builds a fully-on observer (registry + events + full audit)
// writing its event stream into buf.
func observed(t *testing.T, buf *bytes.Buffer, sample float64) *obs.Observer {
	t.Helper()
	o, err := obs.NewObserver(obs.NewRegistry(), obs.NewEventWriter(buf), sample)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// TestObservedRunResultUnchanged is half of the acceptance bar: with
// instrumentation fully enabled (metrics, events, 100% audit), the
// replay Result must be bit-identical to an uninstrumented run — the
// observer watches, it never steers. The other half checks the
// telemetry against the Result it watched.
func TestObservedRunResultUnchanged(t *testing.T) {
	ds := tinyDataset()
	cfg := Config{TargetUtilization: 0.5, SnapshotEvery: timeutil.Days(28)}

	for _, pol := range []string{"flt", "activedr"} {
		for _, faulty := range []bool{false, true} {
			newInjector := func() *faults.Injector {
				if !faulty {
					return nil
				}
				return faults.New(faults.Config{Seed: 7, UnlinkFailProb: 0.2, ScanInterruptProb: 0.2})
			}
			em, err := New(ds, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err := em.RunWith(policyFor(t, em, pol), RunOptions{Faults: newInjector()})
			if err != nil {
				t.Fatal(err)
			}

			var events bytes.Buffer
			o := observed(t, &events, 1)
			em2, err := New(ds, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := em2.RunWith(policyFor(t, em2, pol), RunOptions{Faults: newInjector(), Obs: o})
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, want, got)
			if err := o.Events().Flush(); err != nil {
				t.Fatal(err)
			}

			// The registry agrees with the Result it watched.
			reg := o.Registry()
			expect := map[string]int64{
				obs.MetricAccesses:  got.TotalAccesses,
				obs.MetricMisses:    got.TotalMisses,
				obs.MetricMissBytes: got.RestoredBytes,
				obs.MetricTriggers:  int64(len(got.Reports)),
				obs.MetricSnapshots: int64(len(got.Snapshots)),
			}
			var purged, failed, exempt, interrupted int64
			for _, rep := range got.Reports {
				purged += rep.PurgedFiles
				failed += rep.FailedPurges
				exempt += rep.SkippedExempt
				if rep.Incomplete {
					interrupted++
				}
			}
			expect[obs.MetricPurgedFiles] = purged
			expect[obs.MetricPurgeFailedFiles] = failed
			expect[obs.MetricPurgeExempt] = exempt
			expect[obs.MetricPurgeInterrupted] = interrupted
			for g, n := range got.MissesByGroup {
				expect[obs.MetricMissesGroup(g)] = n
			}
			for name, v := range expect {
				if gotV := reg.Counter(name).Value(); gotV != v {
					t.Errorf("%s/faulty=%t: %s = %d, want %d", pol, faulty, name, gotV, v)
				}
			}
			if faulty {
				if reg.Counter(obs.MetricFaultUnlinks).Value() != failed {
					t.Errorf("%s: fault unlink counter %d != failed purges %d",
						pol, reg.Counter(obs.MetricFaultUnlinks).Value(), failed)
				}
			}

			// The event stream: one trigger event per report, one miss
			// event per miss, purge audit records covering every purge.
			var trig, miss, auditPurge int64
			d := obs.NewDecoder(bytes.NewReader(events.Bytes()))
			for {
				ev, err := d.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				switch ev := ev.(type) {
				case *obs.TriggerEvent:
					rep := got.Reports[trig]
					trig++
					if ev.Seq != trig || ev.At != int64(rep.At) || ev.PurgedFiles != rep.PurgedFiles ||
						ev.PurgedBytes != rep.PurgedBytes || ev.Incomplete != rep.Incomplete {
						t.Fatalf("%s: trigger event %d diverges from report: %+v vs %+v", pol, trig, ev, rep)
					}
				case *obs.MissEvent:
					miss++
				case *obs.AuditEvent:
					if ev.Action == obs.ActionPurge {
						auditPurge++
					}
				}
			}
			if trig != int64(len(got.Reports)) {
				t.Errorf("%s: %d trigger events, want %d", pol, trig, len(got.Reports))
			}
			if miss != got.TotalMisses {
				t.Errorf("%s: %d miss events, want %d", pol, miss, got.TotalMisses)
			}
			if auditPurge != purged {
				t.Errorf("%s: %d purge audit events at sample=1, want %d", pol, auditPurge, purged)
			}

			// Phase timing accumulated through the profiling seam.
			phases := o.Phases()
			seen := map[string]bool{}
			for _, p := range phases {
				seen[p.Name] = true
			}
			if !seen["replay"] || !seen["purge"] {
				t.Errorf("%s: phases %v missing replay/purge", pol, phases)
			}
		}
	}
}

// TestCheckpointResumeRestoresMetrics is the observability half of the
// kill-and-resume contract: the resumed process (fresh registry, fresh
// event stream — nothing survives the kill but the checkpoint) must
// end with a metrics snapshot bit-identical to the uninterrupted
// instrumented run, and the interrupted + resumed event streams must
// concatenate to exactly the uninterrupted stream.
func TestCheckpointResumeRestoresMetrics(t *testing.T) {
	ds := tinyDataset()
	cfg := Config{TargetUtilization: 0.5, SnapshotEvery: timeutil.Days(28)}
	newInjector := func() *faults.Injector {
		return faults.New(faults.Config{Seed: 123, UnlinkFailProb: 0.2, ScanInterruptProb: 0.3})
	}

	// Uninterrupted instrumented baseline (checkpointing enabled so
	// the checkpoint counter cadence matches the resumed runs).
	var fullEvents bytes.Buffer
	oFull := observed(t, &fullEvents, 0.5)
	em, err := New(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := em.RunWith(policyFor(t, em, "activedr"), RunOptions{
		CheckpointDir: t.TempDir(), Faults: newInjector(), Obs: oFull,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := oFull.Events().Flush(); err != nil {
		t.Fatal(err)
	}
	wantSnap := oFull.Registry().Snapshot()

	for _, stopAt := range []int{1, 7} {
		dir := t.TempDir()
		var headEvents bytes.Buffer
		oHead := observed(t, &headEvents, 0.5)
		em1, err := New(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := em1.RunWith(policyFor(t, em1, "activedr"), RunOptions{
			CheckpointDir: dir, Faults: newInjector(), StopAfterTriggers: stopAt, Obs: oHead,
		}); !errors.Is(err, ErrInterrupted) {
			t.Fatalf("stop=%d: %v", stopAt, err)
		}
		if err := oHead.Events().Flush(); err != nil {
			t.Fatal(err)
		}

		// "New process": fresh emulator, registry, and event stream.
		var tailEvents bytes.Buffer
		oTail := observed(t, &tailEvents, 0.5)
		em2, err := New(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := em2.Resume(policyFor(t, em2, "activedr"), RunOptions{
			CheckpointDir: dir, Faults: newInjector(), Obs: oTail,
		})
		if err != nil {
			t.Fatalf("stop=%d: resume: %v", stopAt, err)
		}
		if err := oTail.Events().Flush(); err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, want, got)

		gotSnap := oTail.Registry().Snapshot()
		if !gotSnap.Equal(wantSnap) {
			t.Fatalf("stop=%d: resumed metrics snapshot diverges from uninterrupted run", stopAt)
		}

		joined := append(append([]byte(nil), headEvents.Bytes()...), tailEvents.Bytes()...)
		if !bytes.Equal(joined, fullEvents.Bytes()) {
			t.Fatalf("stop=%d: interrupted+resumed event streams (%d+%d bytes) != uninterrupted stream (%d bytes)",
				stopAt, headEvents.Len(), tailEvents.Len(), fullEvents.Len())
		}
	}
}

// TestResumeWithoutObserverDropsMetrics pins the best-effort contract:
// a checkpoint carrying metrics can be resumed uninstrumented (the
// counters are observational, unlike fault state), and the Result is
// still exact.
func TestResumeWithoutObserverDropsMetrics(t *testing.T) {
	ds := tinyDataset()
	cfg := Config{TargetUtilization: 0.5}
	em, err := New(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := em.Run(em.NewFLT())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	o := observed(t, &bytes.Buffer{}, 0)
	if _, err := em.RunWith(em.NewFLT(), RunOptions{
		CheckpointDir: dir, StopAfterTriggers: 3, Obs: o,
	}); !errors.Is(err, ErrInterrupted) {
		t.Fatal(err)
	}
	got, err := em.Resume(em.NewFLT(), RunOptions{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, want, got)
}
