// Package sim implements the emulation-based evaluation procedure of
// the paper's §4.1.3: load the reference metadata snapshot into the
// prefix-tree virtual file system, replay the application (file
// access) log day by day, trigger the retention policy on a fixed
// interval (the paper: every 7 days), and count a file miss whenever
// a replayed access touches a path the policy has purged. Misses are
// attributed to the owner's activeness group as classified at the
// most recent trigger, which yields the per-group series of
// Figures 6–8.
package sim

import (
	"errors"
	"fmt"
	"time"

	"activedr/internal/activeness"
	"activedr/internal/archive"
	"activedr/internal/faults"
	"activedr/internal/obs"
	"activedr/internal/profiling"
	"activedr/internal/retention"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
	"activedr/internal/vfs"
)

// Config parameterizes an emulation run.
type Config struct {
	// Lifetime is the initial file lifetime d (paper: 90 days, with
	// 7/30/60-day variants).
	Lifetime timeutil.Duration
	// PeriodLength is the activeness period; the paper couples it to
	// the lifetime setting, which Defaults reproduces when unset.
	PeriodLength timeutil.Duration
	// TriggerInterval separates purge runs (paper: 7 days).
	TriggerInterval timeutil.Duration
	// TargetUtilization and Capacity define ActiveDR's purge target
	// (paper: 50% of the reference snapshot's total bytes). Capacity
	// 0 derives it from the loaded snapshot.
	TargetUtilization float64
	Capacity          int64
	// RetroPasses / RetroDecay configure ActiveDR's retrospective
	// scans (paper: 5 passes, 20% decay).
	RetroPasses int
	RetroDecay  float64
	// Reserved is the purge exemption list applied by both policies.
	Reserved *vfs.ReservedSet
	// CaptureAt, when non-zero, snapshots the file system state at the
	// first trigger ≥ CaptureAt into Result.Captured (used to rebuild
	// the paper's mid-2016 snapshot for Figures 9–11).
	CaptureAt timeutil.Time
	// SnapshotEvery, when positive, captures a metadata snapshot of
	// the evolving file system at every trigger whose spacing from the
	// previous capture is at least this long — the weekly snapshot
	// series a facility like OLCF archives. The snapshots land in
	// Result.Snapshots.
	SnapshotEvery timeutil.Duration
	// UseLogins / UseTransfers add the dataset's optional shell-login
	// and data-transfer logs as extra operation activity types (Table
	// 2 of the paper; the reference configuration uses jobs and
	// publications only).
	UseLogins    bool
	UseTransfers bool
	// StrictEq7 and Order pass through to ActiveDR (ablations).
	StrictEq7 bool
	Order     retention.ScanOrder
	// LegacySelection routes both policies through the legacy
	// full-namespace-walk candidate selection instead of the
	// incremental per-user atime index. The two paths are equivalent
	// (see TestIndexedSelectionEquivalence); the knob exists for that
	// proof and for before/after benchmarking.
	LegacySelection bool
	// Shards > 1 replays against a user-hash-sharded namespace
	// (vfs.Sharded) instead of one tree: stale scans fan out across
	// shard-local indexes and k-way merge, which bounds per-shard tree
	// and index size on spider-scale snapshots. The replay is
	// bit-identical to the single-tree path (TestShardedReplay
	// Equivalence), so Shards is a layout knob, not a semantic one —
	// it is deliberately excluded from the checkpoint digest, and a
	// checkpoint written at one shard count resumes at any other.
	Shards int
}

// Defaults fills unset knobs with the paper's values.
func (c Config) Defaults() Config {
	if c.Lifetime == 0 {
		c.Lifetime = timeutil.Days(90)
	}
	if c.PeriodLength == 0 {
		c.PeriodLength = c.Lifetime
	}
	if c.TriggerInterval == 0 {
		c.TriggerInterval = timeutil.Days(7)
	}
	if c.RetroPasses == 0 {
		c.RetroPasses = 5
	}
	if c.RetroDecay == 0 {
		c.RetroDecay = 0.8
	}
	return c
}

// DayStats aggregates one replay day.
type DayStats struct {
	Day      timeutil.Time
	Accesses int64
	Misses   int64
	ByGroup  [activeness.NumGroups]struct {
		Accesses int64
		Misses   int64
	}
}

// MissRatio returns misses/accesses for the day (0 when idle).
func (d DayStats) MissRatio() float64 {
	if d.Accesses == 0 {
		return 0
	}
	return float64(d.Misses) / float64(d.Accesses)
}

// Result is the outcome of one emulation run.
type Result struct {
	Policy        string
	Days          []DayStats
	Reports       []*retention.Report
	TotalAccesses int64
	TotalMisses   int64
	// RestoredFiles/RestoredBytes tally the archive recalls misses
	// forced (each missed file is restored once per miss).
	RestoredFiles int64
	RestoredBytes int64
	// MissesByGroup sums misses per activeness group.
	MissesByGroup [activeness.NumGroups]int64
	// Captured is the file-system state at Config.CaptureAt (nil
	// unless requested).
	Captured vfs.Namespace
	// Snapshots is the periodic metadata snapshot series (empty unless
	// Config.SnapshotEvery is set). Snapshots are taken at purge
	// triggers, after the purge ran — exactly what a post-retention
	// metadata scan would record.
	Snapshots []*trace.Snapshot
	// Final is the file-system state at the end of the replay.
	Final vfs.Namespace
	// Elapsed is the wall-clock emulation time.
	Elapsed time.Duration
}

// RestoreCost estimates the wall-clock time users spent recalling
// missed files from the archive under the given model — the paper's
// "hours to days" re-transmission cost.
func (r *Result) RestoreCost(m archive.Model) time.Duration {
	return m.RestoreTime(r.RestoredFiles, r.RestoredBytes)
}

// MissRatioDays buckets the per-day miss ratios for histogram
// figures; only days with accesses count.
func (r *Result) MissRatioDays() []float64 {
	out := make([]float64, 0, len(r.Days))
	for _, d := range r.Days {
		if d.Accesses > 0 {
			out = append(out, d.MissRatio())
		}
	}
	return out
}

// Emulator replays a dataset against retention policies. Build one
// per dataset and call Run once per policy: each run clones the
// initial file system, so runs are independent and comparable.
type Emulator struct {
	ds    *trace.Dataset
	cfg   Config
	base  *vfs.FS
	eval  *activeness.Evaluator
	users int
}

// New prepares an emulator: loads the snapshot and indexes the
// activity traces (job submissions as the operation type,
// publications as the outcome type — the paper's configuration).
func New(ds *trace.Dataset, cfg Config) (*Emulator, error) {
	base, err := vfs.FromSnapshot(&ds.Snapshot)
	if err != nil {
		return nil, fmt.Errorf("sim: load snapshot: %w", err)
	}
	return NewWithBase(ds, base, cfg)
}

// NewWithBase prepares an emulator over a pre-built initial file
// system instead of parsing ds.Snapshot's entries — the entry point
// for snapfile-backed startup (vfs.LoadSnapfileFS), where the tree is
// decoded straight from the binary format. ds.Snapshot.Taken must
// carry the state's capture time (it anchors the trigger grid and the
// predate checks); the snapshot's Entries slice is never consulted
// and may be empty.
func NewWithBase(ds *trace.Dataset, base *vfs.FS, cfg Config) (*Emulator, error) {
	cfg = cfg.Defaults()
	if cfg.TriggerInterval <= 0 || cfg.Lifetime <= 0 || cfg.PeriodLength <= 0 {
		return nil, fmt.Errorf("sim: non-positive durations in config")
	}
	if err := validateShards(cfg.Shards); err != nil {
		return nil, err
	}
	if cfg.Capacity == 0 {
		cfg.Capacity = base.TotalBytes()
	}
	eval := newEvaluator(ds, cfg)
	return &Emulator{ds: ds, cfg: cfg, base: base, eval: eval, users: len(ds.Users)}, nil
}

// newEvaluator indexes the dataset's activity traces for one
// configuration. The result depends only on (PeriodLength, UseLogins,
// UseTransfers), which is what the multiplexed runner keys its
// evaluator cache by.
func newEvaluator(ds *trace.Dataset, cfg Config) *activeness.Evaluator {
	eval := activeness.NewEvaluator(cfg.PeriodLength)
	jobT := eval.AddType("job-submission", activeness.Operation)
	pubT := eval.AddType("publication", activeness.Outcome)
	eval.RecordJobs(jobT, ds.Jobs)
	eval.RecordPublications(pubT, ds.Publications)
	if cfg.UseLogins {
		lt := eval.AddType("shell-login", activeness.Operation)
		eval.RecordLogins(lt, ds.Logins)
	}
	if cfg.UseTransfers {
		tt := eval.AddType("data-transfer", activeness.Operation)
		eval.RecordTransfers(tt, ds.Transfers)
	}
	return eval
}

// Config returns the effective configuration.
func (e *Emulator) Config() Config { return e.cfg }

// BaseFS returns a copy of the initial file system.
func (e *Emulator) BaseFS() *vfs.FS { return e.base.Clone() }

// Evaluator exposes the prepared activeness evaluator (shared,
// read-only after construction).
func (e *Emulator) Evaluator() *activeness.Evaluator { return e.eval }

// NewActiveDR builds the ActiveDR policy matching this emulator's
// configuration.
func (e *Emulator) NewActiveDR() (*retention.ActiveDR, error) {
	return retention.NewActiveDR(retention.Config{
		Lifetime:          e.cfg.Lifetime,
		Capacity:          e.cfg.Capacity,
		TargetUtilization: e.cfg.TargetUtilization,
		RetroPasses:       e.cfg.RetroPasses,
		RetroDecay:        e.cfg.RetroDecay,
		MinLifetime:       e.cfg.TriggerInterval,
		Reserved:          e.cfg.Reserved,
		StrictEq7:         e.cfg.StrictEq7,
		Order:             e.cfg.Order,
		LegacySelection:   e.cfg.LegacySelection,
	})
}

// NewFLT builds the fixed-lifetime baseline matching this emulator's
// configuration.
func (e *Emulator) NewFLT() *retention.FLT {
	return &retention.FLT{
		Lifetime:        e.cfg.Lifetime,
		Reserved:        e.cfg.Reserved,
		LegacySelection: e.cfg.LegacySelection,
	}
}

// RunOptions extends a replay with fault injection, checkpointing,
// and deterministic interruption (kill-and-resume drills).
type RunOptions struct {
	// CheckpointDir, when non-empty, persists a resumable checkpoint
	// of the run state at trigger boundaries; Resume picks up from
	// the latest one.
	CheckpointDir string
	// CheckpointEvery spaces checkpoints to one every N triggers.
	// Zero or negative means every trigger.
	CheckpointEvery int
	// CheckpointFullEvery makes only every Kth checkpoint a full
	// snapshot; the ones between persist a delta against the previous
	// checkpoint, so checkpoint cost scales with the mutation rate
	// instead of the tree size. ≤ 1 keeps every checkpoint full (the
	// historical format).
	CheckpointFullEvery int
	// Faults threads a deterministic fault injector through the
	// policy (via retention.FaultSink) and through the checkpoint
	// layer, which saves and restores its stream position.
	Faults *faults.Injector
	// StopAfterTriggers, when positive, aborts the replay with
	// ErrInterrupted right after that many purge triggers (counted
	// from the run's start, including triggers replayed before a
	// resume) have fired and been checkpointed — a reproducible kill
	// for resume tests.
	StopAfterTriggers int
	// Obs attaches the observability layer (internal/obs): hot-path
	// counters, per-trigger and per-miss events, the sampled purge
	// audit, and per-phase timing. Purely observational — the Result
	// is bit-identical with or without it — and nil costs nothing.
	// Checkpoints persist the registry state so a resumed run's
	// counters continue exactly where the original's left off.
	Obs *obs.Observer
	// OnCheckpoint, when set, runs after each checkpoint publishes,
	// with the number of events the persisted state contains. The
	// daemon uses it to prune its write-ahead log up to that event.
	OnCheckpoint func(applied int)
}

// ErrInterrupted reports a replay stopped early by
// RunOptions.StopAfterTriggers. The partial Result is still returned.
var ErrInterrupted = errors.New("sim: run interrupted")

// validateShards rejects shard counts the vfs layer cannot build.
// Zero and one both mean the plain single-tree namespace.
func validateShards(n int) error {
	if n < 0 || n > vfs.MaxShards {
		return fmt.Errorf("sim: shard count %d outside [0,%d]", n, vfs.MaxShards)
	}
	return nil
}

// runState is the mutable replay state between accesses; checkpoints
// serialize it and Resume reconstructs it mid-year.
type runState struct {
	fsys        vfs.Namespace
	res         *Result
	cursor      int // index of the next unreplayed access
	nextTrigger timeutil.Time
	ranks       []activeness.Rank
	ranksAt     timeutil.Time // when ranks were last evaluated
	captured    bool
	lastSnap    timeutil.Time
	triggers    int // purge triggers fired so far
	// Checkpoint-cadence state: how many checkpoints this run has
	// written (keys the full/delta rotation), the name of the newest
	// one (a delta's base), and which sidecars it already carries so
	// deltas only ship what is new since then.
	ckpts         int
	lastCkpt      string
	snapsSaved    int
	capturedSaved bool
	// cursors memoizes each user's activity position across the run's
	// monotone trigger times; it is per-run state (not shared), so
	// parallel runs off one emulator stay independent.
	cursors *activeness.Cursors
	// ranker evaluates every user's activeness rank at a trigger time.
	// A solo run closes over its own cursors; multiplexed lanes with
	// identical evaluator inputs share one memoized rank table per
	// trigger instead of re-ranking per lane.
	ranker func(at timeutil.Time) []activeness.Rank
}

// freshState initializes the replay at the reference snapshot.
func (e *Emulator) freshState(policy retention.Policy) *runState {
	t0 := e.ds.Snapshot.Taken
	cursors := e.eval.NewCursors()
	ranker := func(at timeutil.Time) []activeness.Rank {
		return cursors.EvaluateAll(e.users, at)
	}
	return &runState{
		fsys:        e.replayFS(e.base),
		res:         &Result{Policy: policy.Name()},
		nextTrigger: t0.Add(e.cfg.TriggerInterval),
		ranks:       ranker(t0),
		ranksAt:     t0,
		captured:    e.cfg.CaptureAt == 0,
		cursors:     cursors,
		ranker:      ranker,
	}
}

// replayFS builds the namespace a replay mutates from a single-tree
// base: a private clone, re-partitioned across shards when the
// configuration asks for them. The base itself is never touched.
func (e *Emulator) replayFS(base *vfs.FS) vfs.Namespace {
	if e.cfg.Shards > 1 {
		s, err := vfs.ShardFS(base, e.cfg.Shards)
		if err != nil {
			// Shards was validated in New; the only failure mode left is
			// a programming error, which must not silently degrade.
			panic(fmt.Sprintf("sim: shard base: %v", err))
		}
		return s
	}
	return base.Clone()
}

// Run replays the access log against one policy.
func (e *Emulator) Run(policy retention.Policy) (*Result, error) {
	return e.RunWith(policy, RunOptions{})
}

// RunWith replays the access log against one policy with fault
// injection and checkpointing options.
func (e *Emulator) RunWith(policy retention.Policy, opts RunOptions) (*Result, error) {
	return e.replay(policy, opts, e.freshState(policy))
}

// runObs caches the replay's metric handles so the per-access hot
// path records through pre-resolved pointers instead of registry
// lookups. The zero value (observability off) is fully inert: nil
// counters and histograms discard everything.
type runObs struct {
	o         *obs.Observer
	accesses  *obs.Counter
	misses    *obs.Counter
	missBytes *obs.Counter
	byGroup   [activeness.NumGroups]*obs.Counter
	triggers  *obs.Counter
	snaps     *obs.Counter
	ckpts     *obs.Counter
	missSize  *obs.Histogram
	freedPct  *obs.Histogram
}

func newRunObs(o *obs.Observer) runObs {
	if o == nil {
		return runObs{}
	}
	reg := o.Registry()
	ro := runObs{
		o:         o,
		accesses:  reg.Counter(obs.MetricAccesses),
		misses:    reg.Counter(obs.MetricMisses),
		missBytes: reg.Counter(obs.MetricMissBytes),
		triggers:  reg.Counter(obs.MetricTriggers),
		snaps:     reg.Counter(obs.MetricSnapshots),
		ckpts:     reg.Counter(obs.MetricCheckpoints),
		missSize:  reg.Histogram(obs.MetricMissSizeBytes, 1<<10, 1<<20, 1<<30, 1<<40),
		freedPct:  reg.Histogram(obs.MetricTriggerFreed, 0, 25, 50, 75, 90, 99, 100),
	}
	for g := range ro.byGroup {
		ro.byGroup[g] = reg.Counter(obs.MetricMissesGroup(g))
	}
	return ro
}

// noteTrigger derives the per-trigger event from the purge report and
// the probe's scratch tally, and feeds the freed-of-target histogram.
// Everything here is a pure function of replay state, so the metrics
// snapshot stays deterministic and checkpoint-safe.
func (ro *runObs) noteTrigger(rep *retention.Report, seq int64) {
	if ro.o == nil {
		return
	}
	if rep.TargetBytes > 0 {
		ro.freedPct.Observe(rep.PurgedBytes * 100 / rep.TargetBytes)
	}
	examined, retroFiles, retroBytes := ro.o.TriggerTally()
	groups := make([]int64, activeness.NumGroups)
	for g := range rep.Groups {
		groups[g] = rep.Groups[g].PurgedFiles
	}
	ro.o.EmitTrigger(&obs.TriggerEvent{
		Kind:          obs.KindTrigger,
		Policy:        rep.Policy,
		Seq:           seq,
		At:            int64(rep.At),
		Date:          rep.At.DateString(),
		FilesBefore:   rep.FilesBefore,
		BytesBefore:   rep.BytesBefore,
		TargetBytes:   rep.TargetBytes,
		PurgedFiles:   rep.PurgedFiles,
		PurgedBytes:   rep.PurgedBytes,
		FailedFiles:   rep.FailedPurges,
		FailedBytes:   rep.FailedBytes,
		Exempt:        rep.SkippedExempt,
		Examined:      examined,
		Incomplete:    rep.Incomplete,
		TargetReached: rep.TargetReached,
		RetroPasses:   int64(rep.RetroPasses),
		RetroFiles:    retroFiles,
		RetroBytes:    retroBytes,
		PurgedByGroup: groups,
		AffectedUsers: int64(len(rep.AffectedIDs)),
	})
}

// noteMiss records one file miss on the counters and the event
// stream.
func (ro *runObs) noteMiss(policy string, a *trace.Access, g activeness.Group) {
	ro.misses.Inc()
	ro.byGroup[g].Inc()
	ro.missBytes.Add(a.Size)
	ro.missSize.Observe(a.Size)
	if ro.o != nil {
		ro.o.EmitMiss(&obs.MissEvent{
			Kind:   obs.KindMiss,
			Policy: policy,
			At:     int64(a.TS),
			Date:   a.TS.DateString(),
			User:   int64(a.User),
			Group:  int64(g),
			Path:   a.Path,
			Bytes:  a.Size,
		})
	}
}

// replay drives the access loop from st to the end of the log (or an
// interruption point). The per-event semantics live in Stream.Apply;
// this wrapper only supplies the dataset's access log and finalizes
// the Result — the daemon drives the identical Stream from its WAL.
func (e *Emulator) replay(policy retention.Policy, opts RunOptions, st *runState) (*Result, error) {
	timer := profiling.StartTimer()
	s := e.newStream(policy, opts, st)
	if opts.Obs != nil {
		stopReplay := opts.Obs.StartPhase("replay")
		defer stopReplay()
	}
	res := st.res
	for st.cursor < len(e.ds.Accesses) {
		if err := s.Apply(&e.ds.Accesses[st.cursor]); err != nil {
			if errors.Is(err, ErrInterrupted) {
				res.Elapsed = timer.Elapsed()
				return res, err
			}
			return nil, err
		}
	}
	if !st.captured {
		res.Captured = st.fsys.CloneNS()
	}
	res.Final = st.fsys
	res.Elapsed = timer.Elapsed()
	return res, nil
}

func insert(fsys vfs.Namespace, a *trace.Access) {
	// Access records carry the file size; stripes are re-derived from
	// nothing (1) since the policies never read them during replay.
	_ = fsys.Insert(a.Path, vfs.FileMeta{User: a.User, Size: a.Size, Stripes: 1, ATime: a.TS})
}

func rankGroup(ranks []activeness.Rank, u trace.UserID) activeness.Group {
	if int(u) < len(ranks) {
		return ranks[u].Group()
	}
	return activeness.BothInactive
}

// Comparison bundles an FLT and an ActiveDR run over identical input.
type Comparison struct {
	FLT      *Result
	ActiveDR *Result
}

// RunComparison executes both policies on clones of the same state.
func (e *Emulator) RunComparison() (*Comparison, error) {
	adr, err := e.NewActiveDR()
	if err != nil {
		return nil, err
	}
	fltRes, err := e.Run(e.NewFLT())
	if err != nil {
		return nil, err
	}
	adrRes, err := e.Run(adr)
	if err != nil {
		return nil, err
	}
	return &Comparison{FLT: fltRes, ActiveDR: adrRes}, nil
}

// MissReduction returns the overall file-miss reduction ratio of
// ActiveDR versus FLT.
func (c *Comparison) MissReduction() float64 {
	if c.FLT.TotalMisses == 0 {
		return 0
	}
	return float64(c.FLT.TotalMisses-c.ActiveDR.TotalMisses) / float64(c.FLT.TotalMisses)
}

// RestoreSavings returns how much archive-recall time ActiveDR saves
// users over the replay under the given archive model.
func (c *Comparison) RestoreSavings(m archive.Model) time.Duration {
	return c.FLT.RestoreCost(m) - c.ActiveDR.RestoreCost(m)
}
