package faults

import (
	"errors"
	"fmt"
	"testing"

	"activedr/internal/timeutil"
)

func TestValidate(t *testing.T) {
	if err := (Config{UnlinkFailProb: 0.5}).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{
		{UnlinkFailProb: -0.1},
		{ScanInterruptProb: 1.5},
		{ReadFailProb: 2},
	} {
		if bad.Validate() == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on invalid config")
		}
	}()
	New(Config{UnlinkFailProb: -1})
}

// drawSequence records a fixed call pattern's decisions.
func drawSequence(in *Injector, n int) string {
	out := ""
	at := timeutil.Date(2016, 1, 1)
	for i := 0; i < n; i++ {
		budget := in.BeginScan(at, 1000)
		out += fmt.Sprintf("s%d;", budget)
		for j := 0; j < 5; j++ {
			out += fmt.Sprintf("u%v;", in.UnlinkFails("/p"))
		}
		if err := in.ReadAttempt(); err != nil {
			out += "r!;"
		}
		at = at.Add(timeutil.Week)
	}
	return out
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, UnlinkFailProb: 0.3, ScanInterruptProb: 0.4, ReadFailProb: 0.2}
	a := drawSequence(New(cfg), 50)
	b := drawSequence(New(cfg), 50)
	if a != b {
		t.Fatal("same seed produced different decision streams")
	}
	cfg.Seed = 43
	if drawSequence(New(cfg), 50) == a {
		t.Fatal("different seeds produced identical decision streams")
	}
}

func TestStateRestoreResumesStream(t *testing.T) {
	cfg := Config{Seed: 7, UnlinkFailProb: 0.5, ScanInterruptProb: 0.5, ReadFailProb: 0.5}
	in := New(cfg)
	_ = drawSequence(in, 10)
	st := in.State()
	tail := drawSequence(in, 10)

	in2 := New(cfg)
	in2.Restore(st)
	if got := drawSequence(in2, 10); got != tail {
		t.Fatalf("restored stream diverged:\n got %s\nwant %s", got, tail)
	}
	if in2.State() != in.State() {
		t.Fatal("states diverged after identical resumed draws")
	}
}

func TestBeginScanBudgetRange(t *testing.T) {
	in := New(Config{Seed: 1, ScanInterruptProb: 1})
	for i := 0; i < 100; i++ {
		b := in.BeginScan(timeutil.Date(2016, 1, 1), 500)
		if b < 0 || b >= 500 {
			t.Fatalf("budget %d outside [0,500)", b)
		}
	}
	if got := in.State().InterruptedScans; got != 100 {
		t.Fatalf("InterruptedScans = %d, want 100", got)
	}
	// Zero probability or empty namespace: never interrupted.
	quiet := New(Config{Seed: 1})
	if quiet.BeginScan(timeutil.Date(2016, 1, 1), 500) != -1 {
		t.Fatal("interrupt with zero probability")
	}
	hot := New(Config{Seed: 1, ScanInterruptProb: 1})
	if hot.BeginScan(timeutil.Date(2016, 1, 1), 0) != -1 {
		t.Fatal("interrupt on empty namespace")
	}
}

func TestClearAfterSilencesFaults(t *testing.T) {
	clear := timeutil.Date(2016, 6, 1)
	in := New(Config{Seed: 3, UnlinkFailProb: 1, ScanInterruptProb: 1, ClearAfter: clear})
	if in.BeginScan(clear.Add(-timeutil.Day), 100) < 0 {
		t.Fatal("faults inactive before ClearAfter")
	}
	if !in.UnlinkFails("/p") {
		t.Fatal("unlink fault inactive before ClearAfter")
	}
	if in.BeginScan(clear, 100) != -1 {
		t.Fatal("scan fault fired at ClearAfter")
	}
	if in.UnlinkFails("/p") {
		t.Fatal("unlink fault fired after ClearAfter")
	}
}

func TestReadAttemptAndRetry(t *testing.T) {
	in := New(Config{Seed: 5, ReadFailProb: 1})
	if err := in.ReadAttempt(); !IsTransient(err) {
		t.Fatalf("ReadAttempt = %v, want transient", err)
	}

	// Transient failures within budget eventually succeed.
	calls := 0
	err := Retry(5, 0, func() error {
		calls++
		if calls < 3 {
			return fmt.Errorf("wrap: %w", ErrTransient)
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Retry = %v after %d calls", err, calls)
	}

	// Permanent errors are not retried.
	perm := errors.New("disk on fire")
	calls = 0
	if err := Retry(5, 0, func() error { calls++; return perm }); !errors.Is(err, perm) || calls != 1 {
		t.Fatalf("permanent error retried: err=%v calls=%d", err, calls)
	}

	// Budget exhaustion surfaces the transient error.
	calls = 0
	err = Retry(3, 0, func() error { calls++; return in.ReadAttempt() })
	if !IsTransient(err) || calls != 3 {
		t.Fatalf("exhausted retry: err=%v calls=%d", err, calls)
	}
}
