// Package faults provides a deterministic, seed-driven fault injector
// for the retention stack. A production purge engine on a
// billion-entry namespace must survive interrupted scans, files that
// fail to delete, and flaky metadata feeds; this package lets the
// emulator rehearse those failures reproducibly so that every
// degradation path is testable and every faulted run can be replayed
// bit-for-bit from the same seed.
//
// The injector draws from a private randx.Source, so two runs with the
// same seed and the same call sequence make identical fault decisions.
// Its stream position is exposed via State/Restore, which the sim
// checkpoint layer persists so that a killed-and-resumed run consumes
// the randomness exactly where the original left off.
package faults

import (
	"errors"
	"fmt"
	"time"

	"activedr/internal/obs"
	"activedr/internal/randx"
	"activedr/internal/timeutil"
)

// Config parameterizes an Injector. All probabilities are in [0, 1];
// zero disables that fault class.
type Config struct {
	// Seed drives the deterministic decision stream.
	Seed uint64
	// UnlinkFailProb is the per-victim probability that deleting a
	// purge victim fails: the file stays and its bytes are not
	// reclaimed until a later trigger retries it.
	UnlinkFailProb float64
	// ScanInterruptProb is the per-trigger probability that the purge
	// scan is interrupted partway through its scan order; the pass
	// reports Incomplete and the shortfall is made up next trigger.
	ScanInterruptProb float64
	// ReadFailProb is the per-attempt probability that a trace read
	// fails transiently (see ReadAttempt and Retry).
	ReadFailProb float64
	// ClearAfter, when non-zero, stops all purge-time faults at
	// triggers at or after this time — the "faults clear" point after
	// which policies must converge back to their target.
	ClearAfter timeutil.Time
}

// Validate rejects nonsensical configurations.
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"unlink-fail", c.UnlinkFailProb},
		{"scan-interrupt", c.ScanInterruptProb},
		{"read-fail", c.ReadFailProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faults: %s probability %v outside [0,1]", p.name, p.v)
		}
	}
	return nil
}

// State is an Injector's serializable stream position and counters,
// captured at a checkpoint boundary and restored on resume.
type State struct {
	Rand             uint64 `json:"rand"`
	UnlinkFailures   int64  `json:"unlink_failures"`
	InterruptedScans int64  `json:"interrupted_scans"`
	ReadFailures     int64  `json:"read_failures"`
}

// Injector makes deterministic fault decisions. It implements the
// retention package's FaultInjector interface. Not safe for concurrent
// use: the purge scan that consults it is single-threaded.
type Injector struct {
	cfg Config
	src *randx.Source
	at  timeutil.Time // current trigger time, set by BeginScan
	st  State         // counters (Rand filled on State())
	// m mirrors the counters into the observability registry when
	// set. The zero value discards increments; restoring checkpointed
	// metrics happens at the registry layer, never here, so the two
	// views stay consistent across a resume.
	m obs.FaultMetrics
}

// SetMetrics installs observability counters that mirror the
// injector's fault decisions.
func (in *Injector) SetMetrics(m obs.FaultMetrics) { in.m = m }

// New builds an injector; it panics on an invalid config (the config
// is programmer input, not data).
func New(cfg Config) *Injector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Injector{cfg: cfg, src: randx.New(cfg.Seed)}
}

// Config returns the injector's configuration.
func (in *Injector) Config() Config { return in.cfg }

// active reports whether purge-time faults still fire at the current
// trigger time.
func (in *Injector) active() bool {
	return in.cfg.ClearAfter == 0 || in.at < in.cfg.ClearAfter
}

// BeginScan is called once at the start of each purge pass with the
// trigger time and the number of files in the namespace. It returns
// the number of files the scan may examine before being "interrupted"
// (a crash or operator abort partway through the scan order), or -1
// for an uninterrupted scan.
func (in *Injector) BeginScan(at timeutil.Time, files int64) int64 {
	in.at = at
	if !in.active() || in.cfg.ScanInterruptProb <= 0 || files <= 0 {
		return -1
	}
	if !in.src.Bool(in.cfg.ScanInterruptProb) {
		return -1
	}
	in.st.InterruptedScans++
	in.m.InterruptedScans.Inc()
	return in.src.Int64n(files)
}

// UnlinkFails reports whether deleting the given purge victim fails.
// A failed unlink leaves the file in place with its bytes
// unreclaimed; the policy reports it under FailedPurges.
func (in *Injector) UnlinkFails(path string) bool {
	if !in.active() || in.cfg.UnlinkFailProb <= 0 {
		return false
	}
	if in.src.Bool(in.cfg.UnlinkFailProb) {
		in.st.UnlinkFailures++
		in.m.UnlinkFailures.Inc()
		return true
	}
	return false
}

// ErrTransient marks injected transient I/O failures; Retry retries
// exactly these.
var ErrTransient = errors.New("faults: injected transient I/O error")

// IsTransient reports whether err is (or wraps) a transient injected
// failure.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// ReadAttempt simulates one trace-read attempt: with probability
// ReadFailProb it returns a transient error the caller should retry.
func (in *Injector) ReadAttempt() error {
	if in.cfg.ReadFailProb <= 0 {
		return nil
	}
	if in.src.Bool(in.cfg.ReadFailProb) {
		in.st.ReadFailures++
		in.m.ReadFailures.Inc()
		return fmt.Errorf("read attempt %d: %w", in.st.ReadFailures, ErrTransient)
	}
	return nil
}

// State captures the injector's stream position and counters for a
// checkpoint.
func (in *Injector) State() State {
	st := in.st
	st.Rand = in.src.State()
	return st
}

// Restore rewinds the injector to a previously captured State.
func (in *Injector) Restore(st State) {
	in.src.Restore(st.Rand)
	in.st = st
}

// Retry runs fn up to attempts times, sleeping backoff (doubled after
// each failure) between tries, and retries only transient errors: a
// permanent error or success returns immediately. When the budget is
// exhausted the last transient error is returned wrapped.
func Retry(attempts int, backoff time.Duration, fn func() error) error {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 && backoff > 0 {
			//lint:allow nondeterminism Retry backoff sleeps in real operations, never during replay
			time.Sleep(backoff)
			backoff *= 2
		}
		err = fn()
		if err == nil || !IsTransient(err) {
			return err
		}
	}
	return fmt.Errorf("faults: gave up after %d attempts: %w", attempts, err)
}
