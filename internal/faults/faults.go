// Package faults provides a deterministic, seed-driven fault injector
// for the retention stack. A production purge engine on a
// billion-entry namespace must survive interrupted scans, files that
// fail to delete, and flaky metadata feeds; this package lets the
// emulator rehearse those failures reproducibly so that every
// degradation path is testable and every faulted run can be replayed
// bit-for-bit from the same seed.
//
// The injector draws from a private randx.Source, so two runs with the
// same seed and the same call sequence make identical fault decisions.
// Its stream position is exposed via State/Restore, which the sim
// checkpoint layer persists so that a killed-and-resumed run consumes
// the randomness exactly where the original left off.
package faults

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"activedr/internal/obs"
	"activedr/internal/randx"
	"activedr/internal/timeutil"
)

// Config parameterizes an Injector. All probabilities are in [0, 1];
// zero disables that fault class.
type Config struct {
	// Seed drives the deterministic decision stream.
	Seed uint64
	// UnlinkFailProb is the per-victim probability that deleting a
	// purge victim fails: the file stays and its bytes are not
	// reclaimed until a later trigger retries it.
	UnlinkFailProb float64
	// ScanInterruptProb is the per-trigger probability that the purge
	// scan is interrupted partway through its scan order; the pass
	// reports Incomplete and the shortfall is made up next trigger.
	ScanInterruptProb float64
	// ReadFailProb is the per-attempt probability that a trace read
	// fails transiently (see ReadAttempt and Retry).
	ReadFailProb float64
	// WriteFailProb is the per-attempt probability that a durable
	// write fails transiently (see WriteAttempt); transient write
	// failures are retried with backoff by the WAL layer.
	WriteFailProb float64
	// DiskFullAfterBytes, when positive, makes every write attempt
	// fail with ErrDiskFull — a permanent, non-retryable error — once
	// the injector has admitted that many bytes. This is the
	// disk-pressure fault that drives a daemon into degraded
	// read-only mode.
	DiskFullAfterBytes int64
	// TornWriteProb is the per-write probability that only a
	// deterministic prefix of the buffer reaches the disk — the
	// classic torn write a crash mid-write leaves behind. The WAL
	// open path must truncate the resulting tail.
	TornWriteProb float64
	// KillSpec names a crash rehearsal point as "name:N": the Nth
	// time the named kill point is consulted, ShouldKill reports
	// true and the host simulates a process death there. Empty
	// disables the class. Kill-point names are defined by the
	// packages that embed them (e.g. KillSimCheckpointPublished,
	// and the daemon's wal/apply/recover points).
	KillSpec string
	// ClearAfter, when non-zero, stops all purge-time faults at
	// triggers at or after this time — the "faults clear" point after
	// which policies must converge back to their target.
	ClearAfter timeutil.Time
}

// Validate rejects nonsensical configurations.
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"unlink-fail", c.UnlinkFailProb},
		{"scan-interrupt", c.ScanInterruptProb},
		{"read-fail", c.ReadFailProb},
		{"write-fail", c.WriteFailProb},
		{"torn-write", c.TornWriteProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faults: %s probability %v outside [0,1]", p.name, p.v)
		}
	}
	if c.DiskFullAfterBytes < 0 {
		return fmt.Errorf("faults: negative disk-full byte budget %d", c.DiskFullAfterBytes)
	}
	if c.KillSpec != "" {
		if _, _, err := ParseKillSpec(c.KillSpec); err != nil {
			return err
		}
	}
	return nil
}

// ParseKillSpec splits a "name:N" kill-point spec into the point name
// and the 1-based hit count at which it fires.
func ParseKillSpec(spec string) (name string, hit int64, err error) {
	i := strings.LastIndexByte(spec, ':')
	if i <= 0 || i == len(spec)-1 {
		return "", 0, fmt.Errorf("faults: kill spec %q is not name:N", spec)
	}
	n, err := strconv.ParseInt(spec[i+1:], 10, 64)
	if err != nil || n < 1 {
		return "", 0, fmt.Errorf("faults: kill spec %q wants a positive hit count", spec)
	}
	return spec[:i], n, nil
}

// State is an Injector's serializable stream position and counters,
// captured at a checkpoint boundary and restored on resume.
type State struct {
	Rand             uint64 `json:"rand"`
	UnlinkFailures   int64  `json:"unlink_failures"`
	InterruptedScans int64  `json:"interrupted_scans"`
	ReadFailures     int64  `json:"read_failures"`
	WriteFailures    int64  `json:"write_failures,omitempty"`
	WrittenBytes     int64  `json:"written_bytes,omitempty"`
	TornWrites       int64  `json:"torn_writes,omitempty"`
	KillHits         int64  `json:"kill_hits,omitempty"`
}

// Injector makes deterministic fault decisions. It implements the
// retention package's FaultInjector interface. Not safe for concurrent
// use: the purge scan that consults it is single-threaded.
type Injector struct {
	cfg      Config
	src      *randx.Source
	at       timeutil.Time // current trigger time, set by BeginScan
	st       State         // counters (Rand filled on State())
	killName string        // parsed Config.KillSpec
	killHit  int64
	// m mirrors the counters into the observability registry when
	// set. The zero value discards increments; restoring checkpointed
	// metrics happens at the registry layer, never here, so the two
	// views stay consistent across a resume.
	m obs.FaultMetrics
}

// SetMetrics installs observability counters that mirror the
// injector's fault decisions.
func (in *Injector) SetMetrics(m obs.FaultMetrics) { in.m = m }

// New builds an injector; it panics on an invalid config (the config
// is programmer input, not data).
func New(cfg Config) *Injector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	in := &Injector{cfg: cfg, src: randx.New(cfg.Seed)}
	if cfg.KillSpec != "" {
		in.killName, in.killHit, _ = ParseKillSpec(cfg.KillSpec)
	}
	return in
}

// Config returns the injector's configuration.
func (in *Injector) Config() Config { return in.cfg }

// active reports whether purge-time faults still fire at the current
// trigger time.
func (in *Injector) active() bool {
	return in.cfg.ClearAfter == 0 || in.at < in.cfg.ClearAfter
}

// BeginScan is called once at the start of each purge pass with the
// trigger time and the number of files in the namespace. It returns
// the number of files the scan may examine before being "interrupted"
// (a crash or operator abort partway through the scan order), or -1
// for an uninterrupted scan.
func (in *Injector) BeginScan(at timeutil.Time, files int64) int64 {
	in.at = at
	if !in.active() || in.cfg.ScanInterruptProb <= 0 || files <= 0 {
		return -1
	}
	if !in.src.Bool(in.cfg.ScanInterruptProb) {
		return -1
	}
	in.st.InterruptedScans++
	in.m.InterruptedScans.Inc()
	return in.src.Int64n(files)
}

// UnlinkFails reports whether deleting the given purge victim fails.
// A failed unlink leaves the file in place with its bytes
// unreclaimed; the policy reports it under FailedPurges.
func (in *Injector) UnlinkFails(path string) bool {
	if !in.active() || in.cfg.UnlinkFailProb <= 0 {
		return false
	}
	if in.src.Bool(in.cfg.UnlinkFailProb) {
		in.st.UnlinkFailures++
		in.m.UnlinkFailures.Inc()
		return true
	}
	return false
}

// ErrTransient marks injected transient I/O failures; Retry retries
// exactly these.
var ErrTransient = errors.New("faults: injected transient I/O error")

// IsTransient reports whether err is (or wraps) a transient injected
// failure.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// ReadAttempt simulates one trace-read attempt: with probability
// ReadFailProb it returns a transient error the caller should retry.
func (in *Injector) ReadAttempt() error {
	if in.cfg.ReadFailProb <= 0 {
		return nil
	}
	if in.src.Bool(in.cfg.ReadFailProb) {
		in.st.ReadFailures++
		in.m.ReadFailures.Inc()
		return fmt.Errorf("read attempt %d: %w", in.st.ReadFailures, ErrTransient)
	}
	return nil
}

// ErrDiskFull marks an injected disk-full failure. It is permanent:
// retrying does not help until space is reclaimed, so callers must
// degrade (stop accepting writes) rather than spin.
var ErrDiskFull = errors.New("faults: injected disk-full error")

// IsDiskFull reports whether err is (or wraps) an injected disk-full
// failure.
func IsDiskFull(err error) bool { return errors.Is(err, ErrDiskFull) }

// WriteAttempt simulates one durable-write attempt of n bytes. It
// returns ErrDiskFull once the configured byte budget is exhausted
// (permanent), a transient error with probability WriteFailProb
// (retryable), or nil after accounting the bytes as written.
func (in *Injector) WriteAttempt(n int) error {
	if in.cfg.DiskFullAfterBytes > 0 && in.st.WrittenBytes+int64(n) > in.cfg.DiskFullAfterBytes {
		return fmt.Errorf("write of %d bytes over budget %d: %w", n, in.cfg.DiskFullAfterBytes, ErrDiskFull)
	}
	if in.cfg.WriteFailProb > 0 && in.src.Bool(in.cfg.WriteFailProb) {
		in.st.WriteFailures++
		in.m.WriteFailures.Inc()
		return fmt.Errorf("write attempt %d: %w", in.st.WriteFailures, ErrTransient)
	}
	in.st.WrittenBytes += int64(n)
	return nil
}

// TornWrite decides whether a write of n bytes is torn — cut short as
// a crash mid-write would leave it — and if so, how many bytes
// actually reach the disk. The kept prefix is drawn uniformly from
// [0, n), so record headers, checksums, and payloads all get sliced.
func (in *Injector) TornWrite(n int) (keep int, torn bool) {
	if in.cfg.TornWriteProb <= 0 || n <= 0 {
		return n, false
	}
	if !in.src.Bool(in.cfg.TornWriteProb) {
		return n, false
	}
	in.st.TornWrites++
	in.m.TornWrites.Inc()
	return int(in.src.Int64n(int64(n))), true
}

// KillSimCheckpointPublished is the kill point the replay emulator
// consults right after publishing a checkpoint: a kill there aborts
// the run with sim.ErrInterrupted, the reproducible crash a -resume
// run then recovers from (cmd/simulate -fault-kill).
const KillSimCheckpointPublished = "sim.checkpoint.published"

// ShouldKill reports whether the named kill point fires on this hit.
// A kill point models a process death at a precise code location; the
// host is expected to abandon all in-memory state there (and tests
// then rehearse recovery). Only the configured point counts hits, so
// one spec addresses one location deterministically.
func (in *Injector) ShouldKill(name string) bool {
	if in.killName != name {
		return false
	}
	in.st.KillHits++
	return in.st.KillHits == in.killHit
}

// State captures the injector's stream position and counters for a
// checkpoint.
func (in *Injector) State() State {
	st := in.st
	st.Rand = in.src.State()
	return st
}

// Restore rewinds the injector to a previously captured State.
func (in *Injector) Restore(st State) {
	in.src.Restore(st.Rand)
	in.st = st
}

// Backoff computes deterministic jittered exponential backoff delays:
// Base doubled per attempt, capped at Max, scaled by a jitter factor
// in [0.5, 1) drawn from a seeded randx.Source. Two Backoffs with the
// same seed produce the same delay sequence, so a replayed failure
// schedule waits the same simulated time — "full jitter" without the
// global randomness the replay invariants ban.
type Backoff struct {
	base time.Duration
	max  time.Duration
	src  *randx.Source
}

// NewBackoff builds a deterministic backoff schedule. It panics on
// non-positive durations (programmer input, not data).
func NewBackoff(seed uint64, base, max time.Duration) *Backoff {
	if base <= 0 || max < base {
		panic(fmt.Sprintf("faults: backoff base %v / max %v", base, max))
	}
	return &Backoff{base: base, max: max, src: randx.New(seed)}
}

// Delay returns the wait before retry attempt (0-based first retry).
func (b *Backoff) Delay(attempt int) time.Duration {
	d := b.base
	for i := 0; i < attempt && d < b.max; i++ {
		d *= 2
	}
	if d > b.max {
		d = b.max
	}
	jitter := 0.5 + 0.5*b.src.Float64()
	return time.Duration(float64(d) * jitter)
}

// RetryBackoff runs fn up to attempts times, waiting b.Delay between
// tries via the provided sleep function (injectable so tests and the
// daemon's drain path can skip real waiting). Only transient errors
// are retried; permanent errors and success return immediately.
func RetryBackoff(attempts int, b *Backoff, sleep func(time.Duration), fn func() error) error {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 && sleep != nil {
			sleep(b.Delay(i - 1))
		}
		err = fn()
		if err == nil || !IsTransient(err) {
			return err
		}
	}
	return fmt.Errorf("faults: gave up after %d attempts: %w", attempts, err)
}

// Retry runs fn up to attempts times, sleeping backoff (doubled after
// each failure) between tries, and retries only transient errors: a
// permanent error or success returns immediately. When the budget is
// exhausted the last transient error is returned wrapped.
func Retry(attempts int, backoff time.Duration, fn func() error) error {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 && backoff > 0 {
			//lint:allow nondeterminism Retry backoff sleeps in real operations, never during replay
			time.Sleep(backoff)
			backoff *= 2
		}
		err = fn()
		if err == nil || !IsTransient(err) {
			return err
		}
	}
	return fmt.Errorf("faults: gave up after %d attempts: %w", attempts, err)
}
