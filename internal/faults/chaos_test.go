package faults

import (
	"errors"
	"testing"
	"time"
)

func TestWriteAttemptDiskFull(t *testing.T) {
	in := New(Config{Seed: 1, DiskFullAfterBytes: 100})
	if err := in.WriteAttempt(60); err != nil {
		t.Fatalf("first write within budget failed: %v", err)
	}
	if err := in.WriteAttempt(40); err != nil {
		t.Fatalf("write exactly filling the budget failed: %v", err)
	}
	err := in.WriteAttempt(1)
	if !IsDiskFull(err) {
		t.Fatalf("over-budget write = %v, want disk-full", err)
	}
	if IsTransient(err) {
		t.Fatal("disk-full must be permanent, not transient")
	}
	// Disk-full does not consume the byte budget: a later, smaller
	// reclaim-then-write scenario is not skewed (and State stays
	// checkpoint-stable across rejected writes).
	if in.State().WrittenBytes != 100 {
		t.Fatalf("rejected write accounted: %d bytes", in.State().WrittenBytes)
	}
}

func TestWriteAttemptTransient(t *testing.T) {
	in := New(Config{Seed: 2, WriteFailProb: 1})
	err := in.WriteAttempt(10)
	if !IsTransient(err) {
		t.Fatalf("WriteAttempt = %v, want transient", err)
	}
	if in.State().WriteFailures != 1 {
		t.Fatalf("write failures = %d, want 1", in.State().WriteFailures)
	}
}

func TestTornWriteDeterminism(t *testing.T) {
	a := New(Config{Seed: 7, TornWriteProb: 0.5})
	b := New(Config{Seed: 7, TornWriteProb: 0.5})
	torns := 0
	for i := 0; i < 200; i++ {
		ka, ta := a.TornWrite(64)
		kb, tb := b.TornWrite(64)
		if ka != kb || ta != tb {
			t.Fatalf("draw %d diverged: (%d,%t) vs (%d,%t)", i, ka, ta, kb, tb)
		}
		if ta {
			torns++
			if ka < 0 || ka >= 64 {
				t.Fatalf("torn keep %d outside [0,64)", ka)
			}
		} else if ka != 64 {
			t.Fatalf("untorn write kept %d of 64", ka)
		}
	}
	if torns == 0 || torns == 200 {
		t.Fatalf("torn count %d/200 not probabilistic", torns)
	}
}

func TestShouldKillFiresOnNthHitOnly(t *testing.T) {
	in := New(Config{Seed: 1, KillSpec: "daemon.wal.synced:3"})
	if in.ShouldKill("daemon.apply.event") {
		t.Fatal("unnamed kill point fired")
	}
	for i := 1; i <= 5; i++ {
		got := in.ShouldKill("daemon.wal.synced")
		if got != (i == 3) {
			t.Fatalf("hit %d: ShouldKill = %t", i, got)
		}
	}
	// Other points never advance the counter.
	if in.State().KillHits != 5 {
		t.Fatalf("kill hits = %d, want 5", in.State().KillHits)
	}
}

func TestParseKillSpec(t *testing.T) {
	name, hit, err := ParseKillSpec("daemon.checkpoint.publish:12")
	if err != nil || name != "daemon.checkpoint.publish" || hit != 12 {
		t.Fatalf("ParseKillSpec = %q,%d,%v", name, hit, err)
	}
	for _, bad := range []string{"", "noname", ":3", "x:", "x:0", "x:-1", "x:abc"} {
		if _, _, err := ParseKillSpec(bad); err == nil {
			t.Errorf("ParseKillSpec(%q) accepted", bad)
		}
	}
	if err := (Config{KillSpec: "x:0"}).Validate(); err == nil {
		t.Error("Validate accepted bad kill spec")
	}
	if err := (Config{DiskFullAfterBytes: -1}).Validate(); err == nil {
		t.Error("Validate accepted negative disk-full budget")
	}
	if err := (Config{TornWriteProb: 1.5}).Validate(); err == nil {
		t.Error("Validate accepted torn-write probability > 1")
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	mk := func() *Backoff { return NewBackoff(9, 10*time.Millisecond, 500*time.Millisecond) }
	a, b := mk(), mk()
	prevCap := 10 * time.Millisecond
	for attempt := 0; attempt < 10; attempt++ {
		da, db := a.Delay(attempt), b.Delay(attempt)
		if da != db {
			t.Fatalf("attempt %d: %v vs %v", attempt, da, db)
		}
		if da < prevCap/2 || da >= 500*time.Millisecond {
			// jitter scales the doubled base by [0.5, 1)
			if da >= 500*time.Millisecond {
				t.Fatalf("attempt %d: delay %v at or above max", attempt, da)
			}
		}
		if prevCap < 500*time.Millisecond {
			prevCap *= 2
		}
	}
}

func TestRetryBackoff(t *testing.T) {
	b := NewBackoff(3, time.Millisecond, 8*time.Millisecond)
	var slept []time.Duration
	sleep := func(d time.Duration) { slept = append(slept, d) }

	calls := 0
	err := RetryBackoff(5, b, sleep, func() error {
		calls++
		if calls < 3 {
			return ErrTransient
		}
		return nil
	})
	if err != nil || calls != 3 || len(slept) != 2 {
		t.Fatalf("RetryBackoff: err=%v calls=%d sleeps=%d", err, calls, len(slept))
	}

	// Permanent errors short-circuit.
	perm := errors.New("boom")
	calls = 0
	if err := RetryBackoff(5, b, sleep, func() error { calls++; return perm }); !errors.Is(err, perm) || calls != 1 {
		t.Fatalf("permanent retried: err=%v calls=%d", err, calls)
	}

	// Disk-full is permanent too.
	in := New(Config{Seed: 4, DiskFullAfterBytes: 1})
	calls = 0
	err = RetryBackoff(5, b, sleep, func() error { calls++; return in.WriteAttempt(10) })
	if !IsDiskFull(err) || calls != 1 {
		t.Fatalf("disk-full retried: err=%v calls=%d", err, calls)
	}
}

func TestKillStateSurvivesRestore(t *testing.T) {
	in := New(Config{Seed: 1, KillSpec: "p:2"})
	in.ShouldKill("p") // hit 1
	st := in.State()

	in2 := New(Config{Seed: 1, KillSpec: "p:2"})
	in2.Restore(st)
	if !in2.ShouldKill("p") {
		t.Fatal("restored injector lost its kill-hit position")
	}
}
