package retention

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"

	"activedr/internal/activeness"
	"activedr/internal/randx"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
	"activedr/internal/vfs"
)

var tc = timeutil.Date(2016, time.August, 23)

// ranked builds a rank with data flags set.
func ranked(op, oc float64) activeness.Rank {
	return activeness.Rank{Op: op, Oc: oc, HasOp: true, HasOc: true}
}

// addFile inserts a file with the given age in days.
func addFile(fsys *vfs.FS, path string, u trace.UserID, size int64, ageDays int) {
	err := fsys.Insert(path, vfs.FileMeta{
		User: u, Size: size, Stripes: 1,
		ATime: tc.Add(-timeutil.Days(ageDays)),
	})
	if err != nil {
		panic(err)
	}
}

func TestFLTPurgesStaleKeepsFresh(t *testing.T) {
	fsys := vfs.New()
	addFile(fsys, "/u/a/stale", 0, 100, 120)
	addFile(fsys, "/u/a/fresh", 0, 200, 10)
	addFile(fsys, "/u/a/boundary", 0, 50, 90) // age == lifetime: retained
	f := &FLT{Lifetime: timeutil.Days(90)}
	rep := f.Purge(fsys, nil, tc)
	if rep.PurgedFiles != 1 || rep.PurgedBytes != 100 {
		t.Fatalf("purged %d files / %d bytes, want 1/100", rep.PurgedFiles, rep.PurgedBytes)
	}
	if fsys.Contains("/u/a/stale") {
		t.Error("stale file survived")
	}
	if !fsys.Contains("/u/a/fresh") || !fsys.Contains("/u/a/boundary") {
		t.Error("fresh or boundary file purged")
	}
	if rep.FilesBefore != 3 || rep.BytesBefore != 350 {
		t.Errorf("before-counts wrong: %+v", rep)
	}
	if rep.RetainedFiles() != 2 || rep.RetainedBytes() != 250 {
		t.Errorf("retained wrong: %d files %d bytes", rep.RetainedFiles(), rep.RetainedBytes())
	}
	if !rep.TargetReached {
		t.Error("FLT without target must report reached")
	}
	if rep.Policy != "FLT-90d" {
		t.Errorf("Policy = %q", rep.Policy)
	}
}

func TestFLTRespectsReservations(t *testing.T) {
	fsys := vfs.New()
	addFile(fsys, "/u/a/keep/old1", 0, 100, 400)
	addFile(fsys, "/u/a/other", 0, 100, 400)
	res := vfs.NewReservedSet()
	res.Add("/u/a/keep")
	f := &FLT{Lifetime: timeutil.Days(90), Reserved: res}
	rep := f.Purge(fsys, nil, tc)
	if !fsys.Contains("/u/a/keep/old1") {
		t.Error("reserved file purged")
	}
	if fsys.Contains("/u/a/other") {
		t.Error("unreserved stale file survived")
	}
	if rep.SkippedExempt != 1 {
		t.Errorf("SkippedExempt = %d", rep.SkippedExempt)
	}
}

func TestFLTGroupAttribution(t *testing.T) {
	fsys := vfs.New()
	addFile(fsys, "/u/a/x", 0, 100, 200) // both active user
	addFile(fsys, "/u/b/y", 1, 300, 200) // inactive user
	ranks := []activeness.Rank{ranked(2, 2), ranked(0, 0)}
	f := &FLT{Lifetime: timeutil.Days(90)}
	rep := f.Purge(fsys, ranks, tc)
	ba := rep.Groups[activeness.BothActive]
	bi := rep.Groups[activeness.BothInactive]
	if ba.PurgedFiles != 1 || ba.PurgedBytes != 100 || ba.AffectedUsers != 1 || ba.Users != 1 {
		t.Errorf("both-active stats = %+v", ba)
	}
	if bi.PurgedFiles != 1 || bi.PurgedBytes != 300 || bi.AffectedUsers != 1 {
		t.Errorf("both-inactive stats = %+v", bi)
	}
	// FLT ignores activeness: both users lose their stale files.
}

func TestFLTStopAtTarget(t *testing.T) {
	fsys := vfs.New()
	for i := 0; i < 10; i++ {
		addFile(fsys, fmt.Sprintf("/u/a/f%02d", i), 0, 100, 200)
	}
	f := &FLT{
		Lifetime:     timeutil.Days(90),
		StopAtTarget: true,
		TargetBytes:  func(used int64) int64 { return 300 },
	}
	rep := f.Purge(fsys, nil, tc)
	if rep.PurgedBytes != 300 || rep.PurgedFiles != 3 {
		t.Fatalf("purged %d bytes / %d files, want 300/3", rep.PurgedBytes, rep.PurgedFiles)
	}
	if !rep.TargetReached {
		t.Error("target not reported reached")
	}
}

func newActiveDR(t *testing.T, cfg Config) *ActiveDR {
	t.Helper()
	a, err := NewActiveDR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestActiveDRNoPurgeBelowTarget(t *testing.T) {
	fsys := vfs.New()
	addFile(fsys, "/u/a/old", 0, 100, 500)
	a := newActiveDR(t, Config{
		Lifetime:          timeutil.Days(90),
		Capacity:          1000,
		TargetUtilization: 0.5, // target usage 500B; used is 100B
	})
	rep := a.Purge(fsys, []activeness.Rank{ranked(0, 0)}, tc)
	if rep.PurgedFiles != 0 {
		t.Fatalf("purged %d files though usage below target", rep.PurgedFiles)
	}
	if !rep.TargetReached {
		t.Error("should report reached when already below target")
	}
	if !fsys.Contains("/u/a/old") {
		t.Error("file purged")
	}
}

func TestActiveDRPurgesInactiveFirstAndStopsAtTarget(t *testing.T) {
	fsys := vfs.New()
	// Inactive user holds plenty of stale bytes; active user also has
	// stale files (stale even under their extended lifetime).
	for i := 0; i < 8; i++ {
		addFile(fsys, fmt.Sprintf("/u/idle/f%d", i), 1, 1000, 200)
	}
	addFile(fsys, "/u/busy/f", 0, 1000, 2000)
	ranks := []activeness.Rank{ranked(3, 2), ranked(0.1, 0.1)}
	a := newActiveDR(t, Config{
		Lifetime:          timeutil.Days(90),
		Capacity:          9000,
		TargetUtilization: 0.5, // used 9000 → free 4500 → 5 idle files
	})
	rep := a.Purge(fsys, ranks, tc)
	if !rep.TargetReached {
		t.Fatalf("target not reached: %+v", rep)
	}
	if rep.PurgedBytes != 5000 {
		t.Fatalf("purged %d bytes, want 5000 (stop at target)", rep.PurgedBytes)
	}
	if fsys.Contains("/u/busy/f") == false {
		t.Error("active user's file purged though target met by inactive files")
	}
	bi := rep.Groups[activeness.BothInactive]
	if bi.PurgedFiles != 5 || bi.AffectedUsers != 1 {
		t.Errorf("both-inactive stats = %+v", bi)
	}
	if rep.Groups[activeness.BothActive].PurgedFiles != 0 {
		t.Error("both-active purged before target")
	}
}

func TestActiveDRRewardsActiveUsersWithLongerLifetime(t *testing.T) {
	fsys := vfs.New()
	// 120-day-old file: stale under FLT-90 but fresh under the active
	// user's 90·2=180-day adjusted lifetime.
	addFile(fsys, "/u/busy/data", 0, 100, 120)
	addFile(fsys, "/u/idle/data", 1, 100, 120)
	ranks := []activeness.Rank{ranked(2, 1), ranked(0.5, 0.5)}
	a := newActiveDR(t, Config{Lifetime: timeutil.Days(90)}) // no target
	rep := a.Purge(fsys, ranks, tc)
	if !fsys.Contains("/u/busy/data") {
		t.Error("active user's file purged despite extended lifetime")
	}
	if fsys.Contains("/u/idle/data") {
		t.Error("inactive user's stale file survived")
	}
	if rep.PurgedFiles != 1 {
		t.Errorf("purged %d files", rep.PurgedFiles)
	}
}

func TestActiveDRRetrospectivePassesCutLifetimes(t *testing.T) {
	fsys := vfs.New()
	// An operation-active user (ε = 90·1.2 = 108d) with files aged
	// 100 days: fresh on the first pass, purged once a retrospective
	// pass decays the reward to 86.4d.
	addFile(fsys, "/u/op/a", 0, 600, 100)
	addFile(fsys, "/u/op/b", 0, 600, 100)
	a := newActiveDR(t, Config{
		Lifetime:          timeutil.Days(90),
		Capacity:          1200,
		TargetUtilization: 0.5, // free 600
	})
	rep := a.Purge(fsys, []activeness.Rank{ranked(1.2, 0.5)}, tc)
	if !rep.TargetReached {
		t.Fatalf("target not reached: %+v", rep)
	}
	if rep.PurgedFiles != 1 {
		t.Fatalf("purged %d files, want exactly 1 (stop at target)", rep.PurgedFiles)
	}
	if rep.RetroPasses < 1 {
		t.Error("no retrospective pass recorded")
	}
}

func TestActiveDRUnreachableTarget(t *testing.T) {
	fsys := vfs.New()
	// A rank-zero user's adjusted lifetime collapses to 0, but the
	// MinLifetime hygiene floor protects the day-old file, so nothing
	// can be purged and the target stays unreached.
	addFile(fsys, "/u/a/f", 0, 100, 1)
	a := newActiveDR(t, Config{
		Lifetime:          timeutil.Days(90),
		Capacity:          100,
		TargetUtilization: 0.5,
		MinLifetime:       timeutil.Days(7),
	})
	rep := a.Purge(fsys, []activeness.Rank{ranked(0, 0)}, tc)
	if rep.TargetReached {
		t.Fatal("reported reached though nothing could be purged")
	}
	if rep.PurgedFiles != 0 {
		t.Fatalf("purged %d", rep.PurgedFiles)
	}
}

func TestActiveDRExemption(t *testing.T) {
	fsys := vfs.New()
	addFile(fsys, "/u/idle/keep.dat", 0, 500, 400)
	addFile(fsys, "/u/idle/rest.dat", 0, 500, 400)
	res := vfs.NewReservedSet()
	res.Add("/u/idle/keep.dat")
	a := newActiveDR(t, Config{Lifetime: timeutil.Days(90), Reserved: res})
	rep := a.Purge(fsys, []activeness.Rank{ranked(0, 0)}, tc)
	if !fsys.Contains("/u/idle/keep.dat") {
		t.Error("reserved file purged")
	}
	if fsys.Contains("/u/idle/rest.dat") {
		t.Error("unreserved file survived")
	}
	if rep.SkippedExempt != 1 {
		t.Errorf("SkippedExempt = %d", rep.SkippedExempt)
	}
}

func TestActiveDRStrictEq7Ablation(t *testing.T) {
	fsys := vfs.New()
	// Operation-active user with zero outcome rank: under strict
	// Eq. (7) ε = 90·2·0 = 0, so even a fresh file purges.
	addFile(fsys, "/u/op/fresh", 0, 100, 1)
	ranks := []activeness.Rank{ranked(2, 0)}
	strict := newActiveDR(t, Config{Lifetime: timeutil.Days(90), StrictEq7: true})
	rep := strict.Purge(fsys, ranks, tc)
	if rep.PurgedFiles != 1 {
		t.Fatalf("strict Eq7 purged %d files, want 1", rep.PurgedFiles)
	}
	// Default (floored) multiplier keeps it.
	fsys2 := vfs.New()
	addFile(fsys2, "/u/op/fresh", 0, 100, 1)
	def := newActiveDR(t, Config{Lifetime: timeutil.Days(90)})
	rep2 := def.Purge(fsys2, ranks, tc)
	if rep2.PurgedFiles != 0 {
		t.Fatalf("default multiplier purged %d files, want 0", rep2.PurgedFiles)
	}
}

// With uniform new-user ranks and no purge target, ActiveDR must
// purge exactly the same set FLT does: every file older than d.
func TestActiveDREquivalentToFLTWithUniformRanks(t *testing.T) {
	src := randx.New(99)
	fltFS := vfs.New()
	for i := 0; i < 300; i++ {
		addFile(fltFS, fmt.Sprintf("/u/u%02d/f%03d", i%10, i), trace.UserID(i%10), int64(1+src.Intn(1000)), src.Intn(365))
	}
	adrFS := fltFS.Clone()
	ranks := make([]activeness.Rank, 10)
	for i := range ranks {
		ranks[i] = activeness.NewUserRank()
	}
	fltRep := (&FLT{Lifetime: timeutil.Days(90)}).Purge(fltFS, ranks, tc)
	adr := newActiveDR(t, Config{Lifetime: timeutil.Days(90)})
	adrRep := adr.Purge(adrFS, ranks, tc)
	if fltRep.PurgedFiles != adrRep.PurgedFiles || fltRep.PurgedBytes != adrRep.PurgedBytes {
		t.Fatalf("FLT purged %d/%d, ActiveDR purged %d/%d",
			fltRep.PurgedFiles, fltRep.PurgedBytes, adrRep.PurgedFiles, adrRep.PurgedBytes)
	}
	if fltFS.Count() != adrFS.Count() || fltFS.TotalBytes() != adrFS.TotalBytes() {
		t.Fatal("final states differ")
	}
}

// Property: purged + retained is conserved for both policies, per
// group and in total.
func TestConservationProperty(t *testing.T) {
	f := func(seed uint64, targetPct uint8) bool {
		src := randx.New(seed)
		fsys := vfs.New()
		nUsers := 1 + src.Intn(8)
		ranks := make([]activeness.Rank, nUsers)
		for i := range ranks {
			ranks[i] = ranked(src.Float64()*3, src.Float64()*3)
		}
		n := 1 + src.Intn(100)
		for i := 0; i < n; i++ {
			addFile(fsys, fmt.Sprintf("/u/u%d/f%d", src.Intn(nUsers), i),
				trace.UserID(src.Intn(nUsers)), int64(1+src.Intn(500)), src.Intn(400))
		}
		before := fsys.TotalBytes()
		filesBefore := int64(fsys.Count())
		cfg := Config{Lifetime: timeutil.Days(90)}
		if targetPct%2 == 0 {
			cfg.Capacity = before
			cfg.TargetUtilization = float64(targetPct%100) / 100
		}
		a, err := NewActiveDR(cfg)
		if err != nil {
			return false
		}
		rep := a.Purge(fsys, ranks, tc)
		if rep.BytesBefore != before || rep.FilesBefore != filesBefore {
			return false
		}
		if rep.RetainedBytes() != fsys.TotalBytes() || rep.RetainedFiles() != int64(fsys.Count()) {
			return false
		}
		var gb, gf, pb, pf int64
		for _, g := range rep.Groups {
			gb += g.BytesBefore
			gf += g.FilesBefore
			pb += g.PurgedBytes
			pf += g.PurgedFiles
			if g.PurgedBytes > g.BytesBefore || g.PurgedFiles > g.FilesBefore {
				return false
			}
		}
		return gb == before && gf == filesBefore && pb == rep.PurgedBytes && pf == rep.PurgedFiles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestScanOrderMergedByOutcome(t *testing.T) {
	fsys := vfs.New()
	// Op-active user with LOW outcome rank vs both-active user with
	// high ranks: merged order purges the op-only user first.
	addFile(fsys, "/u/oponly/f", 0, 500, 2000)
	addFile(fsys, "/u/both/f", 1, 500, 2000)
	// Φ_op = 1 keeps the op-only user's adjusted lifetime at d (so the
	// 2000-day-old file is stale) while still classifying as
	// operation-active.
	ranks := []activeness.Rank{ranked(1, 0.1), ranked(2, 2)}
	a := newActiveDR(t, Config{
		Lifetime:          timeutil.Days(90),
		Capacity:          1000,
		TargetUtilization: 0.5, // free 500: exactly one file
		Order:             ScanOrderMergedByOutcome,
	})
	rep := a.Purge(fsys, ranks, tc)
	if !rep.TargetReached || rep.PurgedFiles != 1 {
		t.Fatalf("report: %+v", rep)
	}
	if fsys.Contains("/u/oponly/f") || !fsys.Contains("/u/both/f") {
		t.Error("merged-by-outcome order not honored")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Lifetime: -timeutil.Days(1)},
		{Lifetime: timeutil.Days(90), TargetUtilization: 1.5, Capacity: 10},
		{Lifetime: timeutil.Days(90), TargetUtilization: 0.5}, // no capacity
		{Lifetime: timeutil.Days(90), RetroPasses: -1},
		{Lifetime: timeutil.Days(90), RetroDecay: 1.5},
	}
	for i, cfg := range bad {
		if _, err := NewActiveDR(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	a, err := NewActiveDR(Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := a.Config()
	if cfg.Lifetime != timeutil.Days(90) || cfg.RetroPasses != 5 || cfg.RetroDecay != 0.8 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
}

func TestLifetimeOverflowClamped(t *testing.T) {
	a := newActiveDR(t, Config{Lifetime: timeutil.Days(90)})
	eps := a.lifetime(ranked(math.MaxFloat64, math.MaxFloat64), 0)
	if eps <= 0 {
		t.Fatalf("overflowed lifetime: %v", eps)
	}
	fsys := vfs.New()
	addFile(fsys, "/u/super/ancient", 0, 100, 100000)
	rep := a.Purge(fsys, []activeness.Rank{ranked(math.MaxFloat64, math.MaxFloat64)}, tc)
	if rep.PurgedFiles != 0 {
		t.Error("hyper-active user's file purged")
	}
}

func TestReportString(t *testing.T) {
	rep := &Report{Policy: "FLT-90d", At: tc, PurgedFiles: 3, PurgedBytes: 2e9, FilesBefore: 10, TargetReached: true}
	s := rep.String()
	if s == "" || len(s) < 10 {
		t.Fatalf("String = %q", s)
	}
}

// Property: a purge pass is idempotent — running the same policy
// again at the same instant purges nothing further.
func TestPurgeIdempotent(t *testing.T) {
	f := func(seed uint64) bool {
		src := randx.New(seed)
		fsys := vfs.New()
		nUsers := 1 + src.Intn(6)
		ranks := make([]activeness.Rank, nUsers)
		for i := range ranks {
			ranks[i] = ranked(src.Float64()*2, src.Float64()*2)
		}
		for i := 0; i < 60; i++ {
			addFile(fsys, fmt.Sprintf("/u/u%d/f%d", src.Intn(nUsers), i),
				trace.UserID(src.Intn(nUsers)), int64(1+src.Intn(100)), src.Intn(300))
		}
		adr, err := NewActiveDR(Config{Lifetime: timeutil.Days(90)})
		if err != nil {
			return false
		}
		adr.Purge(fsys, ranks, tc)
		second := adr.Purge(fsys, ranks, tc)
		if second.PurgedFiles != 0 {
			return false
		}
		flt := &FLT{Lifetime: timeutil.Days(90)}
		flt.Purge(fsys, ranks, tc)
		return flt.Purge(fsys, ranks, tc).PurgedFiles == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: FLT purges monotonically less as the lifetime grows.
func TestFLTLifetimeMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		src := randx.New(seed)
		build := func() *vfs.FS {
			s2 := randx.New(seed + 1)
			fsys := vfs.New()
			for i := 0; i < 80; i++ {
				addFile(fsys, fmt.Sprintf("/u/u%d/f%d", s2.Intn(4), i),
					trace.UserID(s2.Intn(4)), int64(1+s2.Intn(100)), s2.Intn(400))
			}
			return fsys
		}
		_ = src
		var prev int64 = -1
		for _, days := range []int{7, 30, 60, 90, 120} {
			fsys := build()
			rep := (&FLT{Lifetime: timeutil.Days(days)}).Purge(fsys, nil, tc)
			if prev >= 0 && rep.PurgedFiles > prev {
				return false
			}
			prev = rep.PurgedFiles
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: reservations never change what happens to unreserved
// files, and reserved files always survive.
func TestExemptionIsolation(t *testing.T) {
	f := func(seed uint64) bool {
		src := randx.New(seed)
		var reservedPaths, freePaths []string
		build := func(withReservation bool) (*vfs.FS, *vfs.ReservedSet) {
			s2 := randx.New(seed + 7)
			fsys := vfs.New()
			for i := 0; i < 50; i++ {
				p := fmt.Sprintf("/u/u%d/f%d", s2.Intn(3), i)
				addFile(fsys, p, trace.UserID(s2.Intn(3)), int64(1+s2.Intn(100)), s2.Intn(400))
				if i%5 == 0 {
					reservedPaths = append(reservedPaths, p)
				} else {
					freePaths = append(freePaths, p)
				}
			}
			if !withReservation {
				return fsys, nil
			}
			rs := vfs.NewReservedSet()
			for _, p := range reservedPaths {
				rs.Add(p)
			}
			return fsys, rs
		}
		reservedPaths, freePaths = nil, nil
		plainFS, _ := build(false)
		reservedPaths, freePaths = nil, nil
		resFS, rs := build(true)
		flt := &FLT{Lifetime: timeutil.Days(90)}
		flt.Purge(plainFS, nil, tc)
		fltR := &FLT{Lifetime: timeutil.Days(90), Reserved: rs}
		fltR.Purge(resFS, nil, tc)
		for _, p := range reservedPaths {
			if !resFS.Contains(p) {
				return false
			}
		}
		for _, p := range freePaths {
			if plainFS.Contains(p) != resFS.Contains(p) {
				return false
			}
		}
		_ = src
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanIsDryRun(t *testing.T) {
	fsys := vfs.New()
	addFile(fsys, "/u/a/stale1", 0, 100, 200)
	addFile(fsys, "/u/a/stale2", 0, 100, 150)
	addFile(fsys, "/u/a/fresh", 0, 100, 10)
	before := fsys.Count()
	rep := Plan(&FLT{Lifetime: timeutil.Days(90)}, fsys, nil, tc)
	if fsys.Count() != before {
		t.Fatal("Plan mutated the input file system")
	}
	if len(rep.Victims) != 2 || rep.PurgedFiles != 2 {
		t.Fatalf("victims = %v, purged = %d", rep.Victims, rep.PurgedFiles)
	}
	for _, v := range rep.Victims {
		if !fsys.Contains(v) {
			t.Fatalf("victim %q already gone from the live FS", v)
		}
	}
	// ActiveDR plans too, in scan order. The MinLifetime floor keeps
	// the 10-day-old file out of the rank-zero user's purge set.
	adr := newActiveDR(t, Config{Lifetime: timeutil.Days(90), MinLifetime: timeutil.Days(30)})
	rep2 := Plan(adr, fsys, []activeness.Rank{ranked(0, 0)}, tc)
	if len(rep2.Victims) != 2 {
		t.Fatalf("ActiveDR victims = %v", rep2.Victims)
	}
	if fsys.Count() != before {
		t.Fatal("ActiveDR Plan mutated the input")
	}
	// Plan does not leave the collect flag set.
	real := adr.Purge(fsys, []activeness.Rank{ranked(0, 0)}, tc)
	if real.Victims != nil {
		t.Fatal("collect flag leaked out of Plan")
	}
}

func TestCollectVictimsOffByDefault(t *testing.T) {
	fsys := vfs.New()
	addFile(fsys, "/u/a/stale", 0, 100, 200)
	rep := (&FLT{Lifetime: timeutil.Days(90)}).Purge(fsys, nil, tc)
	if rep.Victims != nil {
		t.Fatal("victims collected without the knob")
	}
}
