package retention

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"activedr/internal/activeness"
	"activedr/internal/faults"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
	"activedr/internal/vfs"
)

// randomFS builds a randomized namespace: several users with varied
// file ages (some clustered on the same atime to exercise path
// tiebreaks), plus some churn so the candidate index carries
// tombstones before the purge runs.
func randomFS(rng *rand.Rand, users, files int) (*vfs.FS, []activeness.Rank) {
	fs := vfs.New()
	for i := 0; i < files; i++ {
		u := trace.UserID(rng.Intn(users))
		age := rng.Intn(400)
		if rng.Intn(4) == 0 {
			age = 200 // shared atime: tiebreak territory
		}
		addFile(fs, fmt.Sprintf("/scratch/u%d/d%d/f%03d", u, i%7, i), u, int64(rng.Intn(5000)+1), age)
	}
	// Churn: renew some files, remove some, re-insert one path under a
	// different owner.
	i := 0
	fs.Walk(func(path string, m vfs.FileMeta) bool {
		switch i++; i % 11 {
		case 0:
			fs.Touch(path, tc.Add(-timeutil.Days(rng.Intn(100))))
		case 5:
			fs.Remove(path)
		}
		return true
	})
	addFile(fs, "/scratch/u0/d0/reowned", trace.UserID(users-1), 77, 300)
	ranks := make([]activeness.Rank, users)
	for u := range ranks {
		switch rng.Intn(4) {
		case 0: // both inactive
		case 1:
			ranks[u] = activeness.Rank{Op: rng.Float64() * 3, HasOp: true}
		case 2:
			ranks[u] = activeness.Rank{Oc: rng.Float64() * 3, HasOc: true}
		case 3:
			ranks[u] = ranked(rng.Float64()*3, rng.Float64()*3)
		}
	}
	return fs, ranks
}

// diffReports compares two purge reports field by field with wall
// clock normalized out.
func diffReports(t *testing.T, label string, a, b *Report) {
	t.Helper()
	na, nb := *a, *b
	na.Elapsed, nb.Elapsed = 0, 0
	if !reflect.DeepEqual(na, nb) {
		t.Errorf("%s: reports differ\n indexed: %+v\n legacy:  %+v", label, na, nb)
	}
}

// TestIndexedSelectionEquivalence proves the tentpole contract at the
// policy level: on randomized namespaces, with and without fault
// injection, the indexed selection path produces bit-identical
// reports — including victim sequences, group accounting, fault
// outcomes and the post-purge namespace — to the legacy walk path.
func TestIndexedSelectionEquivalence(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		base, ranks := randomFS(rng, 6, 300)
		reserved := vfs.NewReservedSet()
		reserved.Add("/scratch/u1/d3")
		reserved.Add("/scratch/u2/d0")
		var total int64 = base.TotalBytes()

		faultCfg := faults.Config{Seed: uint64(trial + 1), UnlinkFailProb: 0.2, ScanInterruptProb: 0.3}
		if trial%2 == 0 {
			faultCfg = faults.Config{} // faults off
		}
		injector := func() FaultInjector {
			if faultCfg.UnlinkFailProb == 0 {
				return nil
			}
			return faults.New(faultCfg)
		}

		t.Run(fmt.Sprintf("flt/trial%d", trial), func(t *testing.T) {
			run := func(legacy bool) (*Report, *vfs.FS) {
				fs := base.Clone()
				f := &FLT{
					Lifetime:        timeutil.Days(90),
					Reserved:        reserved,
					CollectVictims:  true,
					Faults:          injector(),
					LegacySelection: legacy,
				}
				var reps []*Report
				// Two triggers: failed unlinks from the first must stay
				// candidates for the second.
				reps = append(reps, f.Purge(fs, ranks, tc))
				reps = append(reps, f.Purge(fs, ranks, tc.Add(timeutil.Week)))
				reps[0].Victims = append(reps[0].Victims, reps[1].Victims...)
				reps[0].PurgedFiles += reps[1].PurgedFiles
				return reps[1], fs
			}
			ri, fsi := run(false)
			rl, fsl := run(true)
			diffReports(t, "flt", ri, rl)
			if !reflect.DeepEqual(fsi.Snapshot(tc), fsl.Snapshot(tc)) {
				t.Error("post-purge namespaces differ")
			}
		})

		t.Run(fmt.Sprintf("adr/trial%d", trial), func(t *testing.T) {
			run := func(legacy bool) (*Report, *vfs.FS) {
				fs := base.Clone()
				adr, err := NewActiveDR(Config{
					Lifetime:          timeutil.Days(90),
					Capacity:          total,
					TargetUtilization: 0.5,
					MinLifetime:       timeutil.Week,
					Reserved:          reserved,
					CollectVictims:    true,
					Faults:            injector(),
					LegacySelection:   legacy,
				})
				if err != nil {
					t.Fatal(err)
				}
				rep := adr.Purge(fs, ranks, tc)
				rep2 := adr.Purge(fs, ranks, tc.Add(timeutil.Week))
				rep.Victims = append(rep.Victims, rep2.Victims...)
				rep.PurgedFiles += rep2.PurgedFiles
				return rep, fs
			}
			ri, fsi := run(false)
			rl, fsl := run(true)
			diffReports(t, "adr", ri, rl)
			if !reflect.DeepEqual(fsi.Snapshot(tc), fsl.Snapshot(tc)) {
				t.Error("post-purge namespaces differ")
			}
		})
	}
}

// TestOrderUsersDeterministic pins the satellite fix: equal-rank users
// (both ranks zero is the common case for inactive groups) must scan
// in ascending UserID order no matter how the input list is permuted.
func TestOrderUsersDeterministic(t *testing.T) {
	adr, err := NewActiveDR(Config{Lifetime: timeutil.Days(90)})
	if err != nil {
		t.Fatal(err)
	}
	ranks := make([]activeness.Rank, 10) // all both-inactive, all equal
	users := []trace.UserID{7, 3, 9, 0, 5, 1}
	perm := []trace.UserID{1, 9, 5, 7, 0, 3}
	for _, order := range []ScanOrder{ScanOrderGroups, ScanOrderMergedByOutcome} {
		adr.cfg.Order = order
		a := adr.orderUsers(users, ranks)
		b := adr.orderUsers(perm, ranks)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("order %v: scan sequence depends on input permutation:\n%v\n%v", order, a, b)
		}
		for _, phase := range a {
			for i := 1; i < len(phase); i++ {
				if phase[i-1].id >= phase[i].id {
					t.Errorf("order %v: equal-rank users not ascending by id: %v", order, phase)
				}
			}
		}
	}
}
