package retention

import (
	"fmt"
	"testing"
	"time"

	"activedr/internal/activeness"
	"activedr/internal/randx"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
	"activedr/internal/vfs"
)

// TestMillionFileThroughput validates the paper's resource-efficiency
// claim at scale: the retention pass is a linear scan, so a
// million-file namespace completes in seconds on one core (the
// paper's 935 M files took ~1 h on 20 ranks). Skipped under -short.
func TestMillionFileThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a million-file namespace")
	}
	const nFiles = 1_000_000
	const nUsers = 2000
	src := randx.New(42)
	fsys := vfs.New()
	for i := 0; i < nFiles; i++ {
		u := trace.UserID(src.Intn(nUsers))
		path := fmt.Sprintf("/lustre/atlas/u%05d/proj%d/run%04d/out%06d.dat",
			int(u), src.Intn(4), i/256, i)
		err := fsys.Insert(path, vfs.FileMeta{
			User: u, Size: int64(1 + src.Intn(1<<20)),
			ATime: tc.Add(-timeutil.Days(src.Intn(200))),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	ranks := make([]activeness.Rank, nUsers)
	for i := range ranks {
		ranks[i] = ranked(src.Float64()*2, src.Float64()*2)
	}
	adr, err := NewActiveDR(Config{
		Lifetime:          timeutil.Days(90),
		Capacity:          fsys.TotalBytes(),
		TargetUtilization: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rep := adr.Purge(fsys, ranks, tc)
	elapsed := time.Since(start)
	rate := float64(nFiles) / elapsed.Seconds()
	t.Logf("ActiveDR pass over %d files: %v (%.0f files/s), purged %d, target reached=%v",
		nFiles, elapsed, rate, rep.PurgedFiles, rep.TargetReached)
	if elapsed > 2*time.Minute {
		t.Fatalf("million-file pass took %v — retention is no longer linear", elapsed)
	}
	if rep.PurgedFiles == 0 {
		t.Fatal("nothing purged on a half-stale namespace")
	}
	// Sanity on the surviving state.
	if int64(fsys.Count()) != rep.RetainedFiles() {
		t.Fatal("report inconsistent with file system")
	}
}
