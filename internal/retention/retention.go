// Package retention implements the data-retention (purge) policies
// the paper evaluates: the fixed-lifetime baseline (FLT) used across
// HPC facilities (Table 1) and the activeness-based ActiveDR
// procedure of §3.4 — activeness-ordered user scans, per-user file
// lifetime adjustment (Eq. 7), purge-target stop, retrospective group
// passes with rank decay, and purge exemption via a reserved-path
// prefix tree.
package retention

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"time"

	"activedr/internal/activeness"
	"activedr/internal/obs"
	"activedr/internal/profiling"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
	"activedr/internal/vfs"
)

// Policy is a purge procedure over the virtual file system. ranks
// holds the activeness rank of every user (indexed by UserID) as
// evaluated at tc; policies that do not use activeness (FLT) still
// receive it so reports can attribute purges to activeness groups.
// The namespace may be a single tree or a sharded view (vfs.Sharded);
// the selection contract guarantees identical candidate streams
// either way.
type Policy interface {
	Name() string
	Purge(fsys vfs.Namespace, ranks []activeness.Rank, tc timeutil.Time) *Report
}

// FaultInjector simulates storage-layer failures during a purge pass.
// Both built-in policies consult it (when set) so a run can rehearse
// deletion failures and interrupted scans; internal/faults provides
// the deterministic, seed-driven implementation. The interface is
// structural on purpose: retention does not import faults.
type FaultInjector interface {
	// BeginScan is called once at the start of a purge pass with the
	// trigger time and the namespace size. It returns how many files
	// the scan may examine before being interrupted, or a negative
	// value for an uninterrupted scan. An interrupted pass reports
	// Incomplete; the shortfall is made up at the next trigger because
	// stale files stay stale and targets are recomputed from live
	// usage.
	BeginScan(at timeutil.Time, files int64) int64
	// UnlinkFails reports whether deleting the victim at path fails.
	// The file then stays in place and its bytes are not reclaimed;
	// the pass reports it under FailedPurges/FailedBytes.
	UnlinkFails(path string) bool
}

// FaultSink is implemented by policies that accept a fault injector
// after construction; the emulator uses it to thread one injector
// through a run.
type FaultSink interface {
	SetFaults(FaultInjector)
}

// ProbeSink is implemented by policies that accept an observability
// probe after construction; the emulator uses it to thread one
// per-run probe through both policies (the FaultSink pattern). All
// probe calls are nil-safe, so an unprobed policy pays only dead
// branches at the decision points.
type ProbeSink interface {
	SetProbe(*obs.PurgeProbe)
}

// GroupStats aggregates one activeness group's slice of a purge pass.
type GroupStats struct {
	Users         int   // users classified into the group
	FilesBefore   int64 // files owned by the group before the pass
	BytesBefore   int64 // bytes owned by the group before the pass
	PurgedFiles   int64
	PurgedBytes   int64
	AffectedUsers int // users who lost at least one file
}

// RetainedFiles returns the files surviving the pass.
func (g GroupStats) RetainedFiles() int64 { return g.FilesBefore - g.PurgedFiles }

// RetainedBytes returns the bytes surviving the pass.
func (g GroupStats) RetainedBytes() int64 { return g.BytesBefore - g.PurgedBytes }

// Report is the outcome of one purge pass.
type Report struct {
	Policy        string
	At            timeutil.Time
	FilesBefore   int64
	BytesBefore   int64
	TargetBytes   int64 // bytes the pass had to free; 0 = no target
	PurgedFiles   int64
	PurgedBytes   int64
	SkippedExempt int64 // reserved files skipped
	TargetReached bool  // true when a set target was met (or none was set)
	RetroPasses   int   // retrospective passes actually executed
	// FailedPurges/FailedBytes count victims whose deletion failed
	// (injected or real unlink errors): the files stay in place and
	// their bytes are not reclaimed until a later trigger retries.
	FailedPurges int64
	FailedBytes  int64
	// Incomplete marks a pass whose scan was interrupted before
	// examining its full order; the shortfall carries to the next
	// trigger.
	Incomplete bool
	Groups     [activeness.NumGroups]GroupStats
	// AffectedIDs lists every user who lost at least one file in this
	// pass, in ascending order (Figure 11 counts distinct affected
	// users across a run).
	AffectedIDs []trace.UserID
	// Victims lists every purged path in purge order. It is only
	// collected when the policy's CollectVictims knob is set (dry-run
	// and audit workflows); nil otherwise.
	Victims []string
	Elapsed time.Duration
}

// RetainedBytes returns the bytes surviving the pass.
func (r *Report) RetainedBytes() int64 { return r.BytesBefore - r.PurgedBytes }

// RetainedFiles returns the files surviving the pass.
func (r *Report) RetainedFiles() int64 { return r.FilesBefore - r.PurgedFiles }

// String summarizes the report in one line.
func (r *Report) String() string {
	return fmt.Sprintf("%s@%s: purged %d files (%.2f GB) of %d, target reached=%v",
		r.Policy, r.At.DateString(), r.PurgedFiles,
		float64(r.PurgedBytes)/1e9, r.FilesBefore, r.TargetReached)
}

// rankOf returns the user's rank, defaulting to the protective
// new-user rank when the rank table is short or nil.
func rankOf(ranks []activeness.Rank, u trace.UserID) activeness.Rank {
	if int(u) < len(ranks) {
		return ranks[u]
	}
	return activeness.NewUserRank()
}

// groupTotals seeds the per-group before-pass accounting from the
// per-user counters the FS maintains — O(users), no namespace walk.
func groupTotals(fsys vfs.Namespace, ranks []activeness.Rank, report *Report, users []trace.UserID) {
	for _, u := range users {
		g := rankOf(ranks, u).Group()
		report.Groups[g].Users++
		report.Groups[g].FilesBefore += fsys.UserFiles(u)
		report.Groups[g].BytesBefore += fsys.UserBytes(u)
	}
}

// FLT is the fixed-lifetime baseline: purge every non-reserved file
// whose age exceeds Lifetime, consuming candidates oldest-first in
// the global (ATime, Path) selection order. Production FLT purges
// have no space target — staleness alone decides — but StopAtTarget
// enables a target-stopped variant for ablation.
type FLT struct {
	Lifetime     timeutil.Duration
	Reserved     *vfs.ReservedSet
	StopAtTarget bool
	TargetBytes  func(used int64) int64 // optional; used with StopAtTarget
	// CollectVictims records every purged path in Report.Victims.
	CollectVictims bool
	// Faults, when set, injects deletion failures and scan interrupts.
	Faults FaultInjector
	// Probe, when set, receives every per-file purge decision
	// (internal/obs: counters plus the sampled audit stream). Purely
	// observational: it never changes what gets purged.
	Probe *obs.PurgeProbe
	// LegacySelection selects candidates with the pre-index full
	// namespace walk instead of the incremental atime index. The two
	// paths are equivalent (selection.go); the knob exists for that
	// proof and for before/after benchmarking.
	LegacySelection bool

	// scratch holds the per-user candidate buffers feeding the k-way
	// merge, reused across triggers so a replay's hundreds of passes
	// stop reallocating them. Makes an FLT value single-goroutine,
	// which Purge already was (setCollectVictims, fault state).
	scratch [][]vfs.Candidate
	// merge is the reusable heap over the scratch slots; reset rebuilds
	// it each trigger without reallocating its arrays.
	merge candidateMerge
	// affected marks which scratch slots (user positions) had a file
	// purged this trigger, replacing a per-trigger map: slot order is
	// user order, so flattening the marks reproduces the ascending
	// AffectedIDs contract without a sort.
	affected []bool
}

// Name identifies the policy.
func (f *FLT) Name() string { return fmt.Sprintf("FLT-%s", f.Lifetime) }

// SetFaults installs a fault injector for subsequent purge passes.
func (f *FLT) SetFaults(fi FaultInjector) { f.Faults = fi }

// SetProbe installs an observability probe for subsequent passes.
func (f *FLT) SetProbe(p *obs.PurgeProbe) { f.Probe = p }

// Purge runs one fixed-lifetime purge pass at time tc.
func (f *FLT) Purge(fsys vfs.Namespace, ranks []activeness.Rank, tc timeutil.Time) *Report {
	timer := profiling.StartTimer()
	report := &Report{
		Policy:      f.Name(),
		At:          tc,
		FilesBefore: int64(fsys.Count()),
		BytesBefore: fsys.TotalBytes(),
	}
	var target int64
	if f.StopAtTarget && f.TargetBytes != nil {
		target = f.TargetBytes(fsys.TotalBytes())
		if target < 0 {
			target = 0
		}
		report.TargetBytes = target
	}
	src := selectionFor(fsys, f.LegacySelection)
	users := src.users()
	groupTotals(fsys, ranks, report, users)
	budget := int64(-1)
	if f.Faults != nil {
		budget = f.Faults.BeginScan(tc, int64(fsys.Count()))
	}
	// Materialize each user's stale list (already sorted) into its
	// reusable scratch slot and merge them lazily: only the consumed
	// prefix is ordered globally. The merge reads the slots without
	// mutating their headers, so the capacity survives to the next
	// trigger.
	cutoff := staleCutoff(tc, f.Lifetime)
	if cap(f.scratch) < len(users) {
		f.scratch = append(f.scratch[:cap(f.scratch)],
			make([][]vfs.Candidate, len(users)-cap(f.scratch))...)
	}
	f.scratch = f.scratch[:len(users)]
	for i, u := range users {
		f.scratch[i] = src.staleFiles(f.scratch[i][:0], u, cutoff)
	}
	f.merge.reset(f.scratch)
	merge := &f.merge
	if cap(f.affected) < len(users) {
		f.affected = make([]bool, len(users))
	}
	f.affected = f.affected[:len(users)]
	clear(f.affected)
	var examined int64
	for merge.len() > 0 {
		if budget >= 0 && examined >= budget {
			report.Incomplete = true
			f.Probe.Interrupted()
			break
		}
		examined++
		f.Probe.Examined()
		if f.StopAtTarget && target > 0 && report.PurgedBytes >= target {
			break
		}
		c, slot := merge.pop()
		g := rankOf(ranks, c.Meta.User).Group()
		if f.Reserved.Covers(c.Path) {
			report.SkippedExempt++
			f.Probe.Exempt(c.Path, int64(c.Meta.User), int(g), 0, c.Meta.Size)
			continue
		}
		if f.Faults != nil && f.Faults.UnlinkFails(c.Path) {
			report.FailedPurges++
			report.FailedBytes += c.Meta.Size
			f.Probe.Failed(c.Path, int64(c.Meta.User), int(g), 0, c.Meta.Size)
			continue
		}
		fsys.RemoveCandidate(c)
		if f.CollectVictims {
			report.Victims = append(report.Victims, c.Path)
		}
		f.Probe.Purged(c.Path, int64(c.Meta.User), int(g), 0, c.Meta.Size)
		report.PurgedFiles++
		report.PurgedBytes += c.Meta.Size
		report.Groups[g].PurgedFiles++
		report.Groups[g].PurgedBytes += c.Meta.Size
		if !f.affected[slot] {
			f.affected[slot] = true
			report.Groups[g].AffectedUsers++
		}
	}
	// users is ascending (selection.go), so flattening the slot marks
	// in order reproduces exactly what sortedIDs built from a set.
	n := 0
	for _, hit := range f.affected {
		if hit {
			n++
		}
	}
	ids := make([]trace.UserID, 0, n)
	for i, hit := range f.affected {
		if hit {
			ids = append(ids, users[i])
		}
	}
	report.AffectedIDs = ids
	report.TargetReached = !f.StopAtTarget || target == 0 || report.PurgedBytes >= target
	report.Elapsed = timer.Elapsed()
	return report
}

// sortedIDs flattens an affected-user set.
func sortedIDs(set map[trace.UserID]bool) []trace.UserID {
	ids := make([]trace.UserID, 0, len(set))
	for u := range set {
		ids = append(ids, u)
	}
	slices.Sort(ids)
	return ids
}

// ScanOrder selects how ActiveDR sequences users (DESIGN.md §3 item 8).
type ScanOrder int

const (
	// ScanOrderGroups processes the four groups strictly in ascending
	// activeness order, users within a group ascending by (Φ_op, Φ_oc).
	ScanOrderGroups ScanOrder = iota
	// ScanOrderMergedByOutcome is the alternative reading of §3.4:
	// both-inactive then outcome-active-only, then the two
	// operation-active groups merged and sorted ascending by Φ_oc.
	ScanOrderMergedByOutcome
)

// Config parameterizes ActiveDR.
type Config struct {
	// Lifetime is the initial file lifetime d handed to new and
	// both-inactive users; active users' lifetimes scale from it
	// (Eq. 7).
	Lifetime timeutil.Duration
	// Capacity is the scratch capacity in bytes; the paper uses the
	// total size of the reference snapshot.
	Capacity int64
	// TargetUtilization is the fraction of Capacity the purge must
	// bring usage down to (the paper: 0.5). Zero disables the target,
	// making every stale file eligible.
	TargetUtilization float64
	// RetroPasses bounds the retrospective re-scans per group
	// (paper: 5).
	RetroPasses int
	// RetroDecay is the per-pass rank decay (paper: 0.8, i.e. −20%).
	RetroDecay float64
	// MinLifetime, when positive, protects any file accessed within
	// it from ActiveDR purges regardless of the owner's rank — a
	// hygiene floor so rank-zero users' in-flight files survive
	// between purge triggers. The replay emulator sets it to the
	// trigger interval.
	MinLifetime timeutil.Duration
	// Reserved is the purge-exemption list.
	Reserved *vfs.ReservedSet
	// StrictEq7 applies the literal Eq. (7) product with no
	// inactive-class flooring (ablation).
	StrictEq7 bool
	// Order selects the user scan order.
	Order ScanOrder
	// CollectVictims records every purged path in Report.Victims
	// (dry-run and audit workflows).
	CollectVictims bool
	// Faults, when set, injects deletion failures and scan interrupts.
	Faults FaultInjector
	// Probe, when set, receives every per-file purge decision
	// (internal/obs: counters plus the sampled audit stream). Purely
	// observational: it never changes what gets purged.
	Probe *obs.PurgeProbe
	// LegacySelection selects candidates with the pre-index full
	// namespace walk instead of the incremental atime index. The two
	// paths are equivalent (selection.go); the knob exists for that
	// proof and for before/after benchmarking.
	LegacySelection bool
}

// Defaults fills unset knobs with the paper's values.
func (c Config) Defaults() Config {
	if c.Lifetime == 0 {
		c.Lifetime = timeutil.Days(90)
	}
	if c.RetroPasses == 0 {
		c.RetroPasses = 5
	}
	if c.RetroDecay == 0 {
		c.RetroDecay = 0.8
	}
	return c
}

// Validate rejects nonsensical configurations.
func (c Config) Validate() error {
	if c.Lifetime <= 0 {
		return fmt.Errorf("retention: non-positive lifetime %v", c.Lifetime)
	}
	if c.TargetUtilization < 0 || c.TargetUtilization > 1 {
		return fmt.Errorf("retention: target utilization %v outside [0,1]", c.TargetUtilization)
	}
	if c.TargetUtilization > 0 && c.Capacity <= 0 {
		return fmt.Errorf("retention: target utilization set without capacity")
	}
	if c.RetroPasses < 0 {
		return fmt.Errorf("retention: negative retro passes")
	}
	if c.RetroDecay <= 0 || c.RetroDecay > 1 {
		return fmt.Errorf("retention: retro decay %v outside (0,1]", c.RetroDecay)
	}
	return nil
}

// ActiveDR is the activeness-based data-retention policy (§3.4).
type ActiveDR struct {
	cfg Config
}

// NewActiveDR builds the policy, applying defaults and validating.
func NewActiveDR(cfg Config) (*ActiveDR, error) {
	cfg = cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &ActiveDR{cfg: cfg}, nil
}

// Name identifies the policy.
func (a *ActiveDR) Name() string { return fmt.Sprintf("ActiveDR-%s", a.cfg.Lifetime) }

// Config returns the effective configuration.
func (a *ActiveDR) Config() Config { return a.cfg }

// SetFaults installs a fault injector for subsequent purge passes.
func (a *ActiveDR) SetFaults(fi FaultInjector) { a.cfg.Faults = fi }

// SetProbe installs an observability probe for subsequent passes.
func (a *ActiveDR) SetProbe(p *obs.PurgeProbe) { a.cfg.Probe = p }

// scanUser is one user's position in the scan sequence.
type scanUser struct {
	id   trace.UserID
	rank activeness.Rank
}

// orderUsers buckets users into scan phases. Each phase is processed
// to exhaustion (including retrospective passes) before the next.
// Both comparators fall through to UserID so users with equal ranks
// (common for the inactive groups, where both ranks are zero) scan in
// one deterministic order regardless of how the user list was built —
// serial and parallel replays must agree bit for bit.
func (a *ActiveDR) orderUsers(users []trace.UserID, ranks []activeness.Rank) [][]scanUser {
	byGroup := make([][]scanUser, activeness.NumGroups)
	for _, u := range users {
		r := rankOf(ranks, u)
		g := r.Group()
		byGroup[g] = append(byGroup[g], scanUser{id: u, rank: r})
	}
	// slices.SortFunc avoids sort.Slice's reflection-based swapper; the
	// comparators are total orders (unique id tiebreak), so the result
	// is algorithm-independent and the switch cannot reorder ties.
	ascOpOc := func(us []scanUser) {
		slices.SortFunc(us, func(a, b scanUser) int {
			if c := cmp.Compare(a.rank.Op, b.rank.Op); c != 0 {
				return c
			}
			if c := cmp.Compare(a.rank.Oc, b.rank.Oc); c != 0 {
				return c
			}
			return cmp.Compare(a.id, b.id) // stable tiebreak: never rely on input order
		})
	}
	ascOcOp := func(us []scanUser) {
		slices.SortFunc(us, func(a, b scanUser) int {
			if c := cmp.Compare(a.rank.Oc, b.rank.Oc); c != 0 {
				return c
			}
			if c := cmp.Compare(a.rank.Op, b.rank.Op); c != 0 {
				return c
			}
			return cmp.Compare(a.id, b.id) // stable tiebreak: never rely on input order
		})
	}
	switch a.cfg.Order {
	case ScanOrderMergedByOutcome:
		merged := append(append([]scanUser(nil),
			byGroup[activeness.OperationActiveOnly]...),
			byGroup[activeness.BothActive]...)
		ascOcOp(merged)
		ascOpOc(byGroup[activeness.BothInactive])
		ascOpOc(byGroup[activeness.OutcomeActiveOnly])
		return [][]scanUser{
			byGroup[activeness.BothInactive],
			byGroup[activeness.OutcomeActiveOnly],
			merged,
		}
	default:
		phases := make([][]scanUser, 0, activeness.NumGroups)
		for _, g := range activeness.Groups() {
			ascOpOc(byGroup[g])
			phases = append(phases, byGroup[g])
		}
		return phases
	}
}

// lifetime computes the user's adjusted file lifetime ε (Eq. 7) for a
// given retrospective pass.
func (a *ActiveDR) lifetime(r activeness.Rank, pass int) timeutil.Duration {
	mult := r.LifetimeMultiplier()
	if a.cfg.StrictEq7 {
		mult = r.StrictEq7Multiplier()
	}
	decayed := mult * math.Pow(a.cfg.RetroDecay, float64(pass))
	eps := float64(a.cfg.Lifetime) * decayed
	if eps >= float64(math.MaxInt64) {
		return timeutil.Duration(math.MaxInt64)
	}
	e := timeutil.Duration(eps)
	// Retrospective decay claws back the activeness *reward*, never
	// the baseline: an active user (multiplier ≥ 1) is never treated
	// worse than under plain FLT.
	if mult >= 1 && e < a.cfg.Lifetime {
		e = a.cfg.Lifetime
	}
	if e < a.cfg.MinLifetime {
		e = a.cfg.MinLifetime
	}
	return e
}

// Purge runs one ActiveDR retention pass at time tc.
func (a *ActiveDR) Purge(fsys vfs.Namespace, ranks []activeness.Rank, tc timeutil.Time) *Report {
	timer := profiling.StartTimer()
	report := &Report{
		Policy:      a.Name(),
		At:          tc,
		FilesBefore: int64(fsys.Count()),
		BytesBefore: fsys.TotalBytes(),
	}
	var target int64
	if a.cfg.TargetUtilization > 0 {
		target = fsys.TotalBytes() - int64(a.cfg.TargetUtilization*float64(a.cfg.Capacity))
		if target < 0 {
			target = 0
		}
		report.TargetBytes = target
	}
	src := selectionFor(fsys, a.cfg.LegacySelection)
	users := src.users()
	groupTotals(fsys, ranks, report, users)
	if a.cfg.TargetUtilization > 0 && target == 0 {
		// Usage is already at or below the target: nothing to purge.
		report.TargetReached = true
		report.Elapsed = timer.Elapsed()
		return report
	}
	reached := func() bool { return target > 0 && report.PurgedBytes >= target }
	affected := make(map[trace.UserID]bool)
	budget := int64(-1)
	if a.cfg.Faults != nil {
		budget = a.cfg.Faults.BeginScan(tc, int64(fsys.Count()))
	}
	var examined int64
	var cands []vfs.Candidate // reused across per-user queries

	phases := a.orderUsers(users, ranks)
phaseLoop:
	for _, phase := range phases {
		for pass := 0; pass <= a.cfg.RetroPasses; pass++ {
			if pass > 0 && len(phase) > 0 {
				report.RetroPasses++
			}
			for _, su := range phase {
				// The pass-adjusted lifetime becomes an atime cutoff, so
				// each retro pass queries only the files it can purge
				// instead of re-walking the user's whole holding.
				eps := a.lifetime(su.rank, pass)
				g := su.rank.Group()
				cands = src.staleFiles(cands[:0], su.id, staleCutoff(tc, eps))
				for _, c := range cands {
					if budget >= 0 && examined >= budget {
						report.Incomplete = true
						a.cfg.Probe.Interrupted()
						break phaseLoop
					}
					examined++
					a.cfg.Probe.Examined()
					if a.cfg.Reserved.Covers(c.Path) {
						if pass == 0 {
							report.SkippedExempt++
							a.cfg.Probe.Exempt(c.Path, int64(c.Meta.User), int(g), pass, c.Meta.Size)
						}
						continue
					}
					if a.cfg.Faults != nil && a.cfg.Faults.UnlinkFails(c.Path) {
						report.FailedPurges++
						report.FailedBytes += c.Meta.Size
						a.cfg.Probe.Failed(c.Path, int64(c.Meta.User), int(g), pass, c.Meta.Size)
						continue
					}
					fsys.RemoveCandidate(c)
					if a.cfg.CollectVictims {
						report.Victims = append(report.Victims, c.Path)
					}
					a.cfg.Probe.Purged(c.Path, int64(c.Meta.User), int(g), pass, c.Meta.Size)
					report.PurgedFiles++
					report.PurgedBytes += c.Meta.Size
					report.Groups[g].PurgedFiles++
					report.Groups[g].PurgedBytes += c.Meta.Size
					if !affected[su.id] {
						affected[su.id] = true
						report.Groups[g].AffectedUsers++
					}
					if reached() {
						break phaseLoop
					}
				}
			}
			if target == 0 {
				break // no target: a single pass per phase suffices
			}
			if reached() {
				break phaseLoop
			}
		}
	}
	report.AffectedIDs = sortedIDs(affected)
	report.TargetReached = target == 0 || report.PurgedBytes >= target
	report.Elapsed = timer.Elapsed()
	return report
}

// Plan runs a policy against a throwaway copy of the file system and
// returns the purge report with the victim list populated — a dry
// run: the input file system is left untouched. The policy's own
// CollectVictims knob is not required; Plan forces collection via the
// planner interface both built-in policies implement.
func Plan(p Policy, fsys vfs.Namespace, ranks []activeness.Rank, tc timeutil.Time) *Report {
	clone := fsys.CloneNS()
	if c, ok := p.(victimCollector); ok {
		restore := c.setCollectVictims(true)
		defer restore()
	}
	return p.Purge(clone, ranks, tc)
}

// victimCollector lets Plan force victim collection on a policy.
type victimCollector interface {
	setCollectVictims(bool) (restore func())
}

func (f *FLT) setCollectVictims(v bool) func() {
	prev := f.CollectVictims
	f.CollectVictims = v
	return func() { f.CollectVictims = prev }
}

func (a *ActiveDR) setCollectVictims(v bool) func() {
	prev := a.cfg.CollectVictims
	a.cfg.CollectVictims = v
	return func() { a.cfg.CollectVictims = prev }
}

var (
	_ Policy          = (*FLT)(nil)
	_ Policy          = (*ActiveDR)(nil)
	_ victimCollector = (*FLT)(nil)
	_ victimCollector = (*ActiveDR)(nil)
	_ FaultSink       = (*FLT)(nil)
	_ FaultSink       = (*ActiveDR)(nil)
	_ ProbeSink       = (*FLT)(nil)
	_ ProbeSink       = (*ActiveDR)(nil)
)
