package retention

import (
	"math"
	"sort"

	"activedr/internal/timeutil"
	"activedr/internal/trace"
	"activedr/internal/vfs"
)

// candidateSource enumerates purge candidates for a pass. Both
// implementations honor the same selection contract — staleFiles
// yields the live files of u with ATime < cutoff, deduplicated, in
// (ATime, Path) ascending order — so a policy produces bit-identical
// reports, victims and fault-injection draws whichever source backs
// it (DESIGN.md §8; proven by TestIndexedSelectionEquivalence).
type candidateSource interface {
	// users returns every user owning at least one file, ascending.
	users() []trace.UserID
	// staleFiles appends u's candidates older than cutoff to dst.
	staleFiles(dst []vfs.Candidate, u trace.UserID, cutoff timeutil.Time) []vfs.Candidate
}

// indexedSource answers queries from the namespace's incremental
// per-user atime index: O(stale + tombstones) per query, no namespace
// walk. A sharded namespace fans the query out and k-way merges, which
// preserves the (ATime, Path) order bit for bit.
type indexedSource struct{ fs vfs.Namespace }

func (s indexedSource) users() []trace.UserID { return s.fs.Users() }

func (s indexedSource) staleFiles(dst []vfs.Candidate, u trace.UserID, cutoff timeutil.Time) []vfs.Candidate {
	return s.fs.AppendStaleFiles(dst, u, cutoff)
}

// legacySource implements the same contract with the pre-index
// mechanics: one full namespace walk builds per-user path lists at
// pass start, and every query re-filters them through Lookup and
// sorts. Kept as the equivalence baseline and the benchmark contrast
// for the incremental index.
type legacySource struct {
	fs      vfs.Namespace
	buckets map[trace.UserID][]string
}

func newLegacySource(fs vfs.Namespace) *legacySource {
	return &legacySource{fs: fs, buckets: fs.FilesByUser()}
}

func (s *legacySource) users() []trace.UserID {
	out := make([]trace.UserID, 0, len(s.buckets))
	for u := range s.buckets {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (s *legacySource) staleFiles(dst []vfs.Candidate, u trace.UserID, cutoff timeutil.Time) []vfs.Candidate {
	start := len(dst)
	for _, p := range s.buckets[u] {
		m, ok := s.fs.Lookup(p)
		if !ok || m.User != u || m.ATime >= cutoff {
			continue
		}
		dst = append(dst, vfs.Candidate{Path: p, Meta: m})
	}
	part := dst[start:]
	sort.Slice(part, func(i, j int) bool { return candLess(part[i], part[j]) })
	return dst
}

// selectionFor picks the candidate source for a pass.
func selectionFor(fs vfs.Namespace, legacy bool) candidateSource {
	if legacy {
		return newLegacySource(fs)
	}
	return indexedSource{fs}
}

// staleCutoff converts the policy condition "age > life at tc" into
// the equivalent index bound "ATime < cutoff", saturating instead of
// wrapping when the lifetime exceeds the representable span.
func staleCutoff(tc timeutil.Time, life timeutil.Duration) timeutil.Time {
	c := int64(tc) - int64(life)
	if int64(life) > 0 && c > int64(tc) {
		return timeutil.Time(math.MinInt64) // nothing can be stale
	}
	if int64(life) < 0 && c < int64(tc) {
		return timeutil.Time(math.MaxInt64) // everything is stale
	}
	return timeutil.Time(c)
}

// candLess is the global candidate order: oldest first, path as the
// deterministic tiebreak.
func candLess(a, b vfs.Candidate) bool {
	if a.Meta.ATime != b.Meta.ATime {
		return a.Meta.ATime < b.Meta.ATime
	}
	return a.Path < b.Path
}

// candidateMerge lazily merges per-user candidate lists (each already
// in (ATime, Path) order) into one global (ATime, Path) stream: a
// min-heap over list heads, so a target- or budget-stopped pass only
// pays to order the prefix it actually consumes.
type candidateMerge struct {
	lists [][]vfs.Candidate // non-empty cursors, heap-ordered by head
	slots []int32           // slots[i] is lists[i]'s position in the input
}

func newCandidateMerge(lists [][]vfs.Candidate) *candidateMerge {
	m := &candidateMerge{}
	m.reset(lists)
	return m
}

// reset rebuilds the heap over a fresh set of input lists, reusing the
// holder's backing arrays so a policy can keep one merge across
// triggers without re-allocating it.
func (m *candidateMerge) reset(lists [][]vfs.Candidate) {
	m.lists = m.lists[:0]
	m.slots = m.slots[:0]
	for si, l := range lists {
		if len(l) > 0 {
			m.lists = append(m.lists, l)
			m.slots = append(m.slots, int32(si))
		}
	}
	for i := len(m.lists)/2 - 1; i >= 0; i-- {
		m.siftDown(i)
	}
}

func (m *candidateMerge) len() int { return len(m.lists) }

// pop removes and returns the globally smallest remaining candidate
// and the input slot (user position) it came from.
func (m *candidateMerge) pop() (vfs.Candidate, int32) {
	c, slot := m.lists[0][0], m.slots[0]
	if rest := m.lists[0][1:]; len(rest) > 0 {
		m.lists[0] = rest
	} else {
		last := len(m.lists) - 1
		m.lists[0] = m.lists[last]
		m.slots[0] = m.slots[last]
		m.lists = m.lists[:last]
		m.slots = m.slots[:last]
	}
	m.siftDown(0)
	return c, slot
}

func (m *candidateMerge) siftDown(i int) {
	for {
		small := i
		if l := 2*i + 1; l < len(m.lists) && candLess(m.lists[l][0], m.lists[small][0]) {
			small = l
		}
		if r := 2*i + 2; r < len(m.lists) && candLess(m.lists[r][0], m.lists[small][0]) {
			small = r
		}
		if small == i {
			return
		}
		m.lists[i], m.lists[small] = m.lists[small], m.lists[i]
		m.slots[i], m.slots[small] = m.slots[small], m.slots[i]
		i = small
	}
}
