package retention

import (
	"testing"

	"activedr/internal/activeness"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
	"activedr/internal/vfs"
)

// stubFaults is a scripted FaultInjector: it interrupts the scan after
// budget examined files (negative = never) and fails the first
// failUnlinks deletions.
type stubFaults struct {
	budget      int64
	failUnlinks int
	beginCalls  int
}

func (s *stubFaults) BeginScan(at timeutil.Time, files int64) int64 {
	s.beginCalls++
	return s.budget
}

func (s *stubFaults) UnlinkFails(path string) bool {
	if s.failUnlinks > 0 {
		s.failUnlinks--
		return true
	}
	return false
}

func TestFLTUnlinkFailuresKeepFilesAndBytes(t *testing.T) {
	fsys := vfs.New()
	addFile(fsys, "/u/a/stale1", 0, 100, 400)
	addFile(fsys, "/u/a/stale2", 0, 200, 400)
	addFile(fsys, "/u/a/fresh", 0, 50, 10)
	before := fsys.TotalBytes()

	f := &FLT{Lifetime: timeutil.Days(90), Faults: &stubFaults{budget: -1, failUnlinks: 1}}
	rep := f.Purge(fsys, nil, tc)

	if rep.FailedPurges != 1 || rep.FailedBytes != 100 {
		t.Fatalf("FailedPurges=%d FailedBytes=%d, want 1/100", rep.FailedPurges, rep.FailedBytes)
	}
	if rep.PurgedFiles != 1 || rep.PurgedBytes != 200 {
		t.Fatalf("PurgedFiles=%d PurgedBytes=%d, want 1/200", rep.PurgedFiles, rep.PurgedBytes)
	}
	// The failed victim (first in walk order) survives with its bytes.
	if !fsys.Contains("/u/a/stale1") || fsys.Contains("/u/a/stale2") {
		t.Error("wrong victim survived the unlink failure")
	}
	if fsys.TotalBytes() != before-200 {
		t.Errorf("bytes after = %d, want %d", fsys.TotalBytes(), before-200)
	}
	if rep.Incomplete {
		t.Error("uninterrupted scan marked Incomplete")
	}

	// Faults gone: the next trigger retries and reclaims the leftover.
	f.Faults = nil
	rep2 := f.Purge(fsys, nil, tc.Add(timeutil.Week))
	if rep2.PurgedFiles != 1 || fsys.Contains("/u/a/stale1") {
		t.Fatal("failed victim not reclaimed after faults cleared")
	}
}

func TestFLTInterruptedScanConverges(t *testing.T) {
	fsys := vfs.New()
	for i := 0; i < 10; i++ {
		addFile(fsys, "/u/a/stale"+string(rune('a'+i)), 0, 10, 400)
	}
	sf := &stubFaults{budget: 3}
	f := &FLT{Lifetime: timeutil.Days(90), Faults: sf}
	rep := f.Purge(fsys, nil, tc)
	if !rep.Incomplete {
		t.Fatal("interrupted scan not marked Incomplete")
	}
	if rep.PurgedFiles != 3 {
		t.Fatalf("PurgedFiles = %d, want 3 (budget)", rep.PurgedFiles)
	}
	if sf.beginCalls != 1 {
		t.Fatalf("BeginScan called %d times", sf.beginCalls)
	}
	// Next trigger, scan uninterrupted: the shortfall is made up.
	f.Faults = nil
	rep2 := f.Purge(fsys, nil, tc.Add(timeutil.Week))
	if rep2.Incomplete || rep2.PurgedFiles != 7 || fsys.Count() != 0 {
		t.Fatalf("shortfall not made up: purged=%d remaining=%d", rep2.PurgedFiles, fsys.Count())
	}
}

func TestActiveDRFaultsAndConvergence(t *testing.T) {
	fsys := vfs.New()
	var total int64
	for i := 0; i < 8; i++ {
		addFile(fsys, "/u/a/f"+string(rune('a'+i)), 0, 100, 400)
		total += 100
	}
	ranks := []activeness.Rank{{}} // both-inactive owner
	adr, err := NewActiveDR(Config{
		Lifetime:          timeutil.Days(90),
		Capacity:          total,
		TargetUtilization: 0.5,
		Faults:            &stubFaults{budget: -1, failUnlinks: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := adr.Purge(fsys, ranks, tc)
	if rep.FailedPurges != 2 || rep.FailedBytes != 200 {
		t.Fatalf("FailedPurges=%d FailedBytes=%d, want 2/200", rep.FailedPurges, rep.FailedBytes)
	}
	// Failed unlinks do not count toward the target; the pass keeps
	// scanning and still frees the target bytes.
	if !rep.TargetReached || rep.PurgedBytes < rep.TargetBytes {
		t.Fatalf("target missed despite continuing scan: %+v", rep)
	}

	// Interrupted scan: the target is missed, and the next trigger
	// (faults cleared) converges back to target utilization.
	fsys2 := vfs.New()
	for i := 0; i < 8; i++ {
		addFile(fsys2, "/u/a/f"+string(rune('a'+i)), 0, 100, 400)
	}
	adr2, err := NewActiveDR(Config{
		Lifetime:          timeutil.Days(90),
		Capacity:          total,
		TargetUtilization: 0.5,
		Faults:            &stubFaults{budget: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep1 := adr2.Purge(fsys2, ranks, tc)
	if !rep1.Incomplete || rep1.TargetReached {
		t.Fatalf("interrupted pass: %+v", rep1)
	}
	adr2.SetFaults(nil)
	rep2 := adr2.Purge(fsys2, ranks, tc.Add(timeutil.Week))
	if !rep2.TargetReached {
		t.Fatalf("did not converge after faults cleared: %+v", rep2)
	}
	if got := fsys2.TotalBytes(); got > int64(0.5*float64(total)) {
		t.Fatalf("utilization %d above target %d", got, int64(0.5*float64(total)))
	}
}

func TestSetFaultsOnPolicies(t *testing.T) {
	var p Policy = &FLT{Lifetime: timeutil.Days(90)}
	sink, ok := p.(FaultSink)
	if !ok {
		t.Fatal("FLT is not a FaultSink")
	}
	sf := &stubFaults{budget: -1}
	sink.SetFaults(sf)
	fsys := vfs.New()
	addFile(fsys, "/u/a/stale", trace.UserID(0), 1, 400)
	p.Purge(fsys, nil, tc)
	if sf.beginCalls != 1 {
		t.Fatal("injector not consulted after SetFaults")
	}
}
