package retention

import (
	"fmt"
	"testing"
	"time"

	"activedr/internal/activeness"
	"activedr/internal/randx"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
	"activedr/internal/vfs"
)

// buildPurgeFS builds an n-file namespace with atimes spread over the
// 200 days before tc, so a 90-day lifetime leaves roughly half the
// files stale at the trigger.
func buildPurgeFS(b *testing.B, n int, tc timeutil.Time) (*vfs.FS, int) {
	b.Helper()
	nUsers := 50
	if n >= 100_000 {
		nUsers = 500
	}
	if n >= 1_000_000 {
		nUsers = 2000
	}
	src := randx.New(42)
	fsys := vfs.New()
	for i := 0; i < n; i++ {
		u := trace.UserID(src.Intn(nUsers))
		path := fmt.Sprintf("/lustre/atlas/u%05d/proj%d/run%04d/out%07d.dat",
			int(u), src.Intn(4), i/256, i)
		err := fsys.Insert(path, vfs.FileMeta{
			User: u, Size: int64(1 + src.Intn(1<<20)),
			ATime: tc.Add(-timeutil.Days(src.Intn(200))),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return fsys, nUsers
}

// BenchmarkPurgeTrigger times one FLT purge trigger over a namespace
// of 10k/100k/1M files, on the indexed and the legacy selection
// paths. Each iteration purges a clone of the prebuilt state (clone
// time excluded), so every trigger sees the same stale set.
func BenchmarkPurgeTrigger(b *testing.B) {
	tc := timeutil.Date(2016, time.August, 23)
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		for _, legacy := range []bool{false, true} {
			b.Run(fmt.Sprintf("files=%d/legacy=%t", n, legacy), func(b *testing.B) {
				if n >= 1_000_000 && testing.Short() {
					b.Skip("builds a million-file namespace")
				}
				base, nUsers := buildPurgeFS(b, n, tc)
				ranks := make([]activeness.Rank, nUsers)
				flt := &FLT{Lifetime: timeutil.Days(90), LegacySelection: legacy}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					work := base.Clone()
					b.StartTimer()
					rep := flt.Purge(work, ranks, tc)
					if rep.PurgedFiles == 0 {
						b.Fatal("trigger purged nothing")
					}
				}
			})
		}
	}
}
