// Package wal implements the crash-safe write-ahead log the retention
// daemon appends every mutation event to before applying it. Records
// are length-prefixed, checksummed, and carry a monotone sequence
// number, so recovery can prove it applies every event exactly once:
//
//	offset  size  field
//	0       4     payload length (uint32 LE)
//	4       4     CRC-32 (IEEE) over seq bytes + payload (uint32 LE)
//	8       8     sequence number (uint64 LE)
//	16      len   payload
//
// The log is a directory of segment files named by the first sequence
// number they hold (<seq>.wal, zero-padded so lexical order is replay
// order). Appends go to the last segment; a new one is started once
// the active segment passes Options.SegmentBytes, which bounds both
// recovery re-reads and the garbage a checkpoint-driven Prune leaves
// behind.
//
// Damage model: a crash can cut the tail of the last segment at any
// byte (torn write). Open detects the incomplete record — short
// header, short payload, or checksum mismatch on the final record —
// truncates it away, and reports how many bytes were dropped. Damage
// anywhere else (a bad checksum mid-segment, a sequence gap, a torn
// non-final segment) cannot come from a torn tail and is reported as
// ErrCorrupt rather than silently skipped: replaying past it could
// drop or double-apply events.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"activedr/internal/fsx"
)

const (
	headerSize = 16
	segSuffix  = ".wal"

	// MaxRecord bounds a single payload. Mutation events are short
	// text lines; anything near this size is a bug upstream.
	MaxRecord = 1 << 20

	// DefaultSegmentBytes is the roll threshold when Options leaves
	// SegmentBytes zero.
	DefaultSegmentBytes = 4 << 20
)

var (
	// ErrCorrupt reports damage that truncating a torn tail cannot
	// explain. The log refuses to open: deciding which events to drop
	// is the operator's call, not recovery's.
	ErrCorrupt = errors.New("wal: corrupt log")

	// ErrTorn reports an injected torn write: only part of the record
	// reached the file, exactly as a crash mid-write would leave it.
	// The host must treat the process as dead — the log refuses all
	// further use so no code path can keep running past its own crash.
	ErrTorn = errors.New("wal: torn write injected")

	// ErrClosed reports use after Close (or after a torn write).
	ErrClosed = errors.New("wal: log closed")
)

// Hooks injects write-path faults. faults.Injector satisfies it.
type Hooks interface {
	// WriteAttempt may veto a write of n bytes before any byte lands
	// (transient or disk-full error); the log's state is unchanged and
	// the append may be retried.
	WriteAttempt(n int) error
	// TornWrite may cut a write short: keep < n bytes land, then the
	// "process" dies (the append returns ErrTorn).
	TornWrite(n int) (keep int, torn bool)
}

// Options tunes a Log. The zero value is usable.
type Options struct {
	// SegmentBytes rolls the active segment once it exceeds this many
	// bytes (0 = DefaultSegmentBytes).
	SegmentBytes int64
	// Hooks, when set, injects faults into the append path.
	Hooks Hooks
}

// RecoveryInfo describes what Open found and repaired.
type RecoveryInfo struct {
	Segments  int    // segment files scanned
	Records   uint64 // valid records across all segments
	FirstSeq  uint64 // first available sequence (0 when empty)
	LastSeq   uint64 // last durable sequence (0 when empty)
	TornBytes int64  // bytes truncated off the tail segment
}

// Log is an append-only, checksummed event log. Not safe for
// concurrent use; the daemon funnels all appends through one applier
// goroutine.
type Log struct {
	dir    string
	opts   Options
	f      *os.File // active segment (nil when empty log has no writes yet)
	size   int64    // bytes in the active segment
	next   uint64   // sequence the next Append receives
	first  uint64   // first sequence still present (0 when empty)
	dirty  bool     // unsynced appends pending
	closed bool
}

// Open scans dir (created if missing), validates every record,
// truncates a torn tail, and returns a log ready to append at
// LastSeq()+1.
func Open(dir string, opts Options) (*Log, RecoveryInfo, error) {
	var info RecoveryInfo
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, info, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, info, err
	}
	info.Segments = len(segs)

	l := &Log{dir: dir, opts: opts, next: 1}
	if len(segs) > 0 {
		// Pruned logs legitimately start past sequence 1; contiguity
		// from the checkpoint's last applied sequence is the host's
		// check (it knows where its state ends, the log does not).
		l.next = segs[0].firstSeq
	}
	for i, seg := range segs {
		last := i == len(segs)-1
		scan, err := scanSegment(filepath.Join(dir, seg.name), seg.firstSeq, l.next, last)
		if err != nil {
			return nil, info, err
		}
		if i == 0 {
			l.first = seg.firstSeq
			info.FirstSeq = seg.firstSeq
		}
		info.Records += scan.records
		info.TornBytes += scan.torn
		l.next = scan.nextSeq
		if last {
			l.size = scan.keep
		}
	}
	info.LastSeq = l.next - 1
	if info.Records == 0 {
		info.FirstSeq = 0
		info.LastSeq = 0
		l.first = 0
	}

	if len(segs) > 0 {
		name := filepath.Join(dir, segs[len(segs)-1].name)
		f, err := os.OpenFile(name, os.O_WRONLY, 0o644)
		if err != nil {
			return nil, info, err
		}
		if info.TornBytes > 0 {
			if err := f.Truncate(l.size); err != nil {
				return nil, info, errors.Join(err, f.Close())
			}
			if err := fsx.SyncFile(f); err != nil {
				return nil, info, errors.Join(err, f.Close())
			}
		}
		if _, err := f.Seek(l.size, io.SeekStart); err != nil {
			return nil, info, errors.Join(err, f.Close())
		}
		l.f = f
	}
	return l, info, nil
}

// FirstSeq returns the oldest sequence still present (0 when empty).
func (l *Log) FirstSeq() uint64 { return l.first }

// LastSeq returns the newest durable-or-pending sequence (0 = none).
func (l *Log) LastSeq() uint64 { return l.next - 1 }

// Append writes one record and returns its sequence number. The
// record is NOT durable until Sync; the caller batches fsyncs. A
// transient or disk-full error from the fault hooks leaves the log
// unchanged (safe to retry); ErrTorn leaves a cut record behind and
// poisons the log, modeling the crash that tore the write.
func (l *Log) Append(payload []byte) (uint64, error) {
	if l.closed {
		return 0, ErrClosed
	}
	if len(payload) == 0 || len(payload) > MaxRecord {
		return 0, fmt.Errorf("wal: payload of %d bytes outside (0,%d]", len(payload), MaxRecord)
	}
	if l.f == nil || l.size >= l.opts.SegmentBytes {
		if err := l.roll(); err != nil {
			return 0, err
		}
	}

	seq := l.next
	rec := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(rec[8:16], seq)
	copy(rec[headerSize:], payload)
	binary.LittleEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(rec[8:]))

	if h := l.opts.Hooks; h != nil {
		if err := h.WriteAttempt(len(rec)); err != nil {
			return 0, err
		}
		if keep, torn := h.TornWrite(len(rec)); torn {
			// Model the crash: the kept prefix lands (and is even
			// synced, as the page cache may flush it), then the
			// process is gone.
			if _, werr := l.f.Write(rec[:keep]); werr != nil {
				return 0, werr
			}
			if err := fsx.SyncFile(l.f); err != nil {
				return 0, err
			}
			l.closed = true
			return 0, fmt.Errorf("wal: record %d cut at byte %d of %d: %w", seq, keep, len(rec), ErrTorn)
		}
	}

	if _, err := l.f.Write(rec); err != nil {
		return 0, err
	}
	l.size += int64(len(rec))
	l.next++
	if l.first == 0 {
		l.first = seq
	}
	l.dirty = true
	return seq, nil //lint:allow fsyncorder Append is documented as not-durable-until-Sync; the daemon batches acks behind Options.SyncEvery
}

// Sync makes every appended record durable.
func (l *Log) Sync() error {
	if l.closed {
		return ErrClosed
	}
	if !l.dirty || l.f == nil {
		return nil
	}
	if err := fsx.SyncFile(l.f); err != nil {
		return err
	}
	l.dirty = false
	return nil
}

// roll finalizes the active segment and starts a new one named by the
// next sequence number. The directory entry is fsynced so the new
// segment survives a crash that follows immediately.
func (l *Log) roll() error {
	if l.f != nil {
		if err := fsx.SyncFile(l.f); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return err
		}
		l.f = nil
	}
	name := filepath.Join(l.dir, segmentName(l.next))
	f, err := os.OpenFile(name, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := fsx.SyncDir(l.dir); err != nil {
		return errors.Join(err, f.Close())
	}
	l.f = f
	l.size = 0
	l.dirty = false
	return nil
}

// Replay streams every record with sequence > after, in order, to fn.
// It re-reads and re-verifies the segment files, so it reports (not
// panics on) anything that changed since Open.
func (l *Log) Replay(after uint64, fn func(seq uint64, payload []byte) error) error {
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for _, seg := range segs {
		if err := replaySegment(filepath.Join(l.dir, seg.name), seg.firstSeq, after, l.next, fn); err != nil {
			return err
		}
	}
	return nil
}

// Prune removes whole segments whose every record is <= upto (already
// captured by a durable checkpoint). The segment holding upto+1 — and
// the active segment — always survive.
func (l *Log) Prune(upto uint64) error {
	if l.closed {
		return ErrClosed
	}
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	removed := false
	for i, seg := range segs {
		if i == len(segs)-1 {
			break // active segment
		}
		// Records in seg run [seg.firstSeq, next.firstSeq).
		if segs[i+1].firstSeq > upto+1 {
			break
		}
		if err := os.Remove(filepath.Join(l.dir, seg.name)); err != nil {
			return err
		}
		l.first = segs[i+1].firstSeq
		removed = true
	}
	if removed {
		return fsx.SyncDir(l.dir)
	}
	return nil
}

// Close syncs pending records and releases the active segment.
func (l *Log) Close() error {
	if l.closed {
		return nil
	}
	l.closed = true
	if l.f == nil {
		return nil
	}
	err := fsx.SyncFile(l.f)
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

type segment struct {
	name     string
	firstSeq uint64
}

// listSegments returns the dir's segment files in sequence order,
// validating that names parse and first sequences strictly increase.
func listSegments(dir string) ([]segment, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 10, 64)
		if err != nil || seq == 0 {
			return nil, fmt.Errorf("%w: segment name %q", ErrCorrupt, name)
		}
		segs = append(segs, segment{name: name, firstSeq: seq})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	for i := 1; i < len(segs); i++ {
		if segs[i].firstSeq <= segs[i-1].firstSeq {
			return nil, fmt.Errorf("%w: duplicate segment sequence %d", ErrCorrupt, segs[i].firstSeq)
		}
	}
	return segs, nil
}

func segmentName(firstSeq uint64) string {
	return fmt.Sprintf("%020d%s", firstSeq, segSuffix)
}

type scanResult struct {
	records uint64
	nextSeq uint64 // sequence after the last valid record
	keep    int64  // valid byte prefix of the segment
	torn    int64  // bytes past keep (only ever non-zero on the tail)
}

// scanSegment validates one segment. wantSeq is the sequence its first
// record must carry (contiguity across segments); tail marks the last
// segment, the only place torn bytes are survivable.
func scanSegment(path string, nameSeq, wantSeq uint64, tail bool) (scanResult, error) {
	res := scanResult{nextSeq: wantSeq}
	data, err := os.ReadFile(path)
	if err != nil {
		return res, err
	}
	if nameSeq != wantSeq {
		return res, fmt.Errorf("%w: segment %s starts at sequence %d, want %d (events lost)",
			ErrCorrupt, filepath.Base(path), nameSeq, wantSeq)
	}
	off := int64(0)
	for {
		_, n, err := decodeRecord(data[off:], res.nextSeq)
		if err == errShortRecord {
			break // torn tail candidate
		}
		if err != nil {
			if tail && int64(len(data))-off-n <= 0 {
				// The damaged record is the very last thing in the
				// log: indistinguishable from a torn final write, so
				// recoverable by truncation.
				break
			}
			return res, fmt.Errorf("%w: segment %s offset %d: %v", ErrCorrupt, filepath.Base(path), off, err)
		}
		off += n
		res.records++
		res.nextSeq++
	}
	res.keep = off
	if rest := int64(len(data)) - off; rest > 0 {
		if !tail {
			return res, fmt.Errorf("%w: segment %s has %d trailing bytes but is not the tail segment",
				ErrCorrupt, filepath.Base(path), rest)
		}
		res.torn = rest
	}
	return res, nil
}

// errShortRecord marks a record cut off by the end of the segment —
// the torn-tail signature.
var errShortRecord = errors.New("record extends past end of segment")

// decodeRecord parses the record at the head of data, checking frame,
// checksum, and the expected sequence number. n reports the full
// record length claimed by the header (meaningful even on error, so
// the caller can tell "damage at the very end" from "damage mid-log").
func decodeRecord(data []byte, wantSeq uint64) (payload []byte, n int64, err error) {
	if len(data) < headerSize {
		return nil, int64(len(data)), errShortRecord
	}
	plen := binary.LittleEndian.Uint32(data[0:4])
	if plen == 0 || plen > MaxRecord {
		// A length this wrong means the header bytes themselves are
		// damaged; treat like a cut record so a torn tail stays
		// recoverable, and let the caller decide if position makes it
		// corruption.
		return nil, int64(len(data)), errShortRecord
	}
	n = headerSize + int64(plen)
	if int64(len(data)) < n {
		return nil, int64(len(data)), errShortRecord
	}
	sum := binary.LittleEndian.Uint32(data[4:8])
	seq := binary.LittleEndian.Uint64(data[8:16])
	if got := crc32.ChecksumIEEE(data[8:n]); got != sum {
		return nil, n, fmt.Errorf("checksum %08x, want %08x", got, sum)
	}
	if seq != wantSeq {
		return nil, n, fmt.Errorf("sequence %d, want %d", seq, wantSeq)
	}
	return data[headerSize:n], n, nil
}

// replaySegment streams records with sequence > after to fn. limit is
// the log's next sequence: anything at/after it (torn bytes truncated
// after Open, foreign appends) is ignored.
func replaySegment(path string, firstSeq, after, limit uint64, fn func(uint64, []byte) error) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	off, seq := int64(0), firstSeq
	for seq < limit {
		payload, n, err := decodeRecord(data[off:], seq)
		if err == errShortRecord {
			return nil
		}
		if err != nil {
			return fmt.Errorf("%w: segment %s offset %d: %v", ErrCorrupt, filepath.Base(path), off, err)
		}
		if seq > after {
			if err := fn(seq, payload); err != nil {
				return err
			}
		}
		off += n
		seq++
	}
	return nil
}
