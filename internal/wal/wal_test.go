package wal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"activedr/internal/faults"
)

// fill appends n short records and syncs; returns the payloads.
func fill(t *testing.T, l *Log, n int, prefix string) [][]byte {
	t.Helper()
	var payloads [][]byte
	for i := 0; i < n; i++ {
		p := []byte(fmt.Sprintf("%s-%04d", prefix, i))
		seq, err := l.Append(p)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if want := l.LastSeq(); seq != want {
			t.Fatalf("append %d returned seq %d, LastSeq %d", i, seq, want)
		}
		payloads = append(payloads, p)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	return payloads
}

// collect replays records after the given sequence into a slice.
func collect(t *testing.T, l *Log, after uint64) (seqs []uint64, payloads []string) {
	t.Helper()
	err := l.Replay(after, func(seq uint64, p []byte) error {
		seqs = append(seqs, seq)
		payloads = append(payloads, string(p))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return seqs, payloads
}

func TestAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	l, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 0 || info.LastSeq != 0 {
		t.Fatalf("fresh log recovered %+v", info)
	}
	want := fill(t, l, 25, "ev")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 25 || info.FirstSeq != 1 || info.LastSeq != 25 || info.TornBytes != 0 {
		t.Fatalf("recovery info %+v", info)
	}
	seqs, payloads := collect(t, l2, 0)
	if len(seqs) != 25 || seqs[0] != 1 || seqs[24] != 25 {
		t.Fatalf("replayed seqs %v", seqs)
	}
	for i, p := range payloads {
		if p != string(want[i]) {
			t.Fatalf("record %d payload %q, want %q", i, p, want[i])
		}
	}
	// Replay-after skips the prefix exactly.
	seqs, _ = collect(t, l2, 20)
	if len(seqs) != 5 || seqs[0] != 21 {
		t.Fatalf("replay after 20: %v", seqs)
	}
	// Appends continue the sequence.
	seq, err := l2.Append([]byte("more"))
	if err != nil || seq != 26 {
		t.Fatalf("append after reopen: seq=%d err=%v", seq, err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentRollAndPrune(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 64}) // a few records per segment
	if err != nil {
		t.Fatal(err)
	}
	fill(t, l, 40, "roll")
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("only %d segments after 40 appends at 64-byte roll", len(segs))
	}

	if err := l.Prune(20); err != nil {
		t.Fatal(err)
	}
	if l.FirstSeq() > 21 {
		t.Fatalf("prune(20) removed live records: first=%d", l.FirstSeq())
	}
	// Everything after the checkpoint is still replayable…
	seqs, _ := collect(t, l, 20)
	if len(seqs) != 20 || seqs[0] != 21 || seqs[19] != 40 {
		t.Fatalf("post-prune replay: %d seqs, first %d", len(seqs), seqs[0])
	}
	// …and reopening the pruned log still works.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, info, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if info.LastSeq != 40 {
		t.Fatalf("pruned reopen: %+v", info)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendRejectsBadPayloads(t *testing.T) {
	l, _, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(nil); err == nil {
		t.Error("empty payload accepted")
	}
	if _, err := l.Append(make([]byte, MaxRecord+1)); err == nil {
		t.Error("oversized payload accepted")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("append after close: %v", err)
	}
}

// TestRecoverEveryTruncationPoint is the satellite-3 property test:
// cut the tail segment at EVERY byte offset; Open must either recover
// the clean prefix (exactly the records fully contained in the cut)
// or report a typed corruption error — never panic, never resurrect a
// partial record, never double-count.
func TestRecoverEveryTruncationPoint(t *testing.T) {
	master := t.TempDir()
	l, _, err := Open(master, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, l, 8, "trunc") // single segment: every byte offset is a tail cut
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(master)
	if err != nil || len(segs) != 1 {
		t.Fatalf("want 1 segment, got %d (%v)", len(segs), err)
	}
	data, err := os.ReadFile(filepath.Join(master, segs[0].name))
	if err != nil {
		t.Fatal(err)
	}

	// Record boundaries, so each cut's expected survivor count is known.
	bounds := []int64{0}
	if err := l.Replay(0, func(seq uint64, p []byte) error {
		bounds = append(bounds, bounds[len(bounds)-1]+headerSize+int64(len(p)))
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(data); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segs[0].name), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		lt, info, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut=%d: open: %v", cut, err)
		}
		survivors := uint64(0)
		for _, b := range bounds[1:] {
			if int64(cut) >= b {
				survivors++
			}
		}
		if info.Records != survivors {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, info.Records, survivors)
		}
		seqs, payloads := collect(t, lt, 0)
		if uint64(len(seqs)) != survivors {
			t.Fatalf("cut=%d: replayed %d records, want %d", cut, len(seqs), survivors)
		}
		for i := range seqs {
			if seqs[i] != uint64(i+1) {
				t.Fatalf("cut=%d: seq[%d]=%d", cut, i, seqs[i])
			}
			if want := fmt.Sprintf("trunc-%04d", i); payloads[i] != want {
				t.Fatalf("cut=%d: payload[%d]=%q", cut, i, payloads[i])
			}
		}
		// The truncated log accepts new appends at the right sequence.
		if seq, err := lt.Append([]byte("resume")); err != nil || seq != survivors+1 {
			t.Fatalf("cut=%d: append seq=%d err=%v", cut, seq, err)
		}
		if err := lt.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCorruptionIsTypedNotSkipped flips bytes mid-log (not a torn
// tail) and expects ErrCorrupt — replaying past damage could drop or
// double-apply events.
func TestCorruptionIsTypedNotSkipped(t *testing.T) {
	build := func(t *testing.T) (string, string, []byte) {
		dir := t.TempDir()
		l, _, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		fill(t, l, 8, "corrupt")
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		segs, _ := listSegments(dir)
		path := filepath.Join(dir, segs[0].name)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return dir, path, data
	}

	t.Run("payload bit flip mid-log", func(t *testing.T) {
		dir, path, data := build(t)
		data[headerSize+2] ^= 0x40 // first record's payload
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("open = %v, want ErrCorrupt", err)
		}
	})

	t.Run("sequence gap mid-log", func(t *testing.T) {
		dir, path, data := build(t)
		// Rewrite record 2's seq to 7 and fix its checksum so only the
		// contiguity check can catch it.
		recLen := int64(headerSize + len("corrupt-0000"))
		off := recLen // start of record 2
		data[off+8] = 7
		sum := crc32.ChecksumIEEE(data[off+8 : off+recLen])
		data[off+4] = byte(sum)
		data[off+5] = byte(sum >> 8)
		data[off+6] = byte(sum >> 16)
		data[off+7] = byte(sum >> 24)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("open = %v, want ErrCorrupt", err)
		}
	})

	t.Run("missing middle segment", func(t *testing.T) {
		// A missing FIRST segment is indistinguishable from a prune —
		// the host's checkpoint contiguity check owns that case. A
		// hole in the middle is corruption the log itself must catch.
		dir := t.TempDir()
		l, _, err := Open(dir, Options{SegmentBytes: 64})
		if err != nil {
			t.Fatal(err)
		}
		fill(t, l, 30, "gap")
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		segs, _ := listSegments(dir)
		if len(segs) < 3 {
			t.Fatalf("need 3+ segments, got %d", len(segs))
		}
		if err := os.Remove(filepath.Join(dir, segs[1].name)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Open(dir, Options{SegmentBytes: 64}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("open = %v, want ErrCorrupt", err)
		}
	})
}

// TestFaultHooks drives the append path through a faults.Injector:
// disk-full and transient vetoes leave the log retryable; a torn
// write poisons it and recovery truncates the cut record.
func TestFaultHooks(t *testing.T) {
	t.Run("transient then retry", func(t *testing.T) {
		dir := t.TempDir()
		inj := faults.New(faults.Config{Seed: 3, WriteFailProb: 0.5})
		l, _, err := Open(dir, Options{Hooks: inj})
		if err != nil {
			t.Fatal(err)
		}
		appended := uint64(0)
		for i := 0; i < 50; i++ {
			seq, err := l.Append([]byte(fmt.Sprintf("ev-%04d", i)))
			if err != nil {
				if !faults.IsTransient(err) {
					t.Fatalf("append %d: %v", i, err)
				}
				// Retry once; the injector's next draw decides again.
				seq, err = l.Append([]byte(fmt.Sprintf("ev-%04d", i)))
				if err != nil {
					continue // still failing: give up on this event
				}
			}
			appended++
			if seq != appended {
				t.Fatalf("append %d: seq %d, want %d (a failed attempt consumed a sequence)", i, seq, appended)
			}
		}
		if appended == 0 || appended == 50 {
			t.Fatalf("%d/50 appends landed; fault stream not exercising both paths", appended)
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		_, info, err := Open(dir, Options{})
		if err != nil || info.Records != appended {
			t.Fatalf("recovered %d records (err=%v), want %d", info.Records, err, appended)
		}
	})

	t.Run("disk full is permanent", func(t *testing.T) {
		inj := faults.New(faults.Config{Seed: 4, DiskFullAfterBytes: 60})
		l, _, err := Open(t.TempDir(), Options{Hooks: inj})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.Append([]byte("fits-in-budget")); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Append([]byte("overflows-the-injected-budget")); !faults.IsDiskFull(err) {
			t.Fatalf("append over budget: %v", err)
		}
		// The veto happened before any byte landed: the log still works
		// for... nothing (budget spent), but its state is coherent.
		if l.LastSeq() != 1 {
			t.Fatalf("failed append advanced LastSeq to %d", l.LastSeq())
		}
	})

	t.Run("torn write poisons then truncates", func(t *testing.T) {
		dir := t.TempDir()
		inj := faults.New(faults.Config{Seed: 5, TornWriteProb: 1})
		l, _, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		fill(t, l, 5, "pre")
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		l2, _, err := Open(dir, Options{Hooks: inj})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l2.Append([]byte("doomed")); !errors.Is(err, ErrTorn) {
			t.Fatalf("append under TornWriteProb=1: %v", err)
		}
		if _, err := l2.Append([]byte("after")); !errors.Is(err, ErrClosed) {
			t.Fatalf("poisoned log accepted append: %v", err)
		}

		l3, info, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if info.Records != 5 {
			t.Fatalf("recovered %d records, want the 5 pre-crash ones", info.Records)
		}
		if info.TornBytes == 0 {
			t.Fatal("torn bytes not reported")
		}
		if seq, err := l3.Append([]byte("recovered")); err != nil || seq != 6 {
			t.Fatalf("post-recovery append: seq=%d err=%v", seq, err)
		}
		if err := l3.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzRecover feeds arbitrary bytes as a tail segment: Open must
// never panic, and whatever it recovers must replay cleanly with
// contiguous sequences from 1.
func FuzzRecover(f *testing.F) {
	// Seed with a valid log prefix and a few mutations of it.
	dir := f.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("seed-%d", i))); err != nil {
			f.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		f.Fatal(err)
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(filepath.Join(dir, segs[0].name))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	mutated := append([]byte(nil), valid...)
	mutated[9] ^= 0xff
	f.Add(mutated)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		lt, info, err := Open(dir, Options{})
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped open error: %v", err)
			}
			return
		}
		want := uint64(1)
		rerr := lt.Replay(0, func(seq uint64, p []byte) error {
			if seq != want {
				t.Fatalf("replay seq %d, want %d", seq, want)
			}
			if len(p) == 0 {
				t.Fatal("empty payload replayed")
			}
			want++
			return nil
		})
		if rerr != nil && !errors.Is(rerr, ErrCorrupt) {
			t.Fatalf("untyped replay error: %v", rerr)
		}
		if want-1 != info.Records {
			t.Fatalf("replayed %d records, Open reported %d", want-1, info.Records)
		}
		if err := lt.Close(); err != nil {
			t.Fatal(err)
		}
	})
}
