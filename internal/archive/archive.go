// Package archive models the archival tier behind the scratch file
// system. The paper motivates ActiveDR by the cost of a file miss:
// "it can take hours to days for the users to recover their data by
// either re-transmission or re-generation". This model turns the
// emulator's miss counts into that cost — a per-file recall latency
// (tape mount/seek, staging queue) plus streaming at a sustained
// bandwidth.
package archive

import (
	"fmt"
	"time"
)

// Model describes an archive's restore performance.
type Model struct {
	// Name labels the model in reports.
	Name string
	// Bandwidth is the sustained restore stream in bytes/second.
	Bandwidth float64
	// PerFileLatency is the fixed cost of recalling one file (mount,
	// seek, staging queue).
	PerFileLatency time.Duration
}

// Validate rejects nonsensical models.
func (m Model) Validate() error {
	if m.Bandwidth <= 0 {
		return fmt.Errorf("archive: non-positive bandwidth %v", m.Bandwidth)
	}
	if m.PerFileLatency < 0 {
		return fmt.Errorf("archive: negative per-file latency")
	}
	return nil
}

// RestoreTime returns the wall-clock time to recall the given files
// and bytes through one stream.
func (m Model) RestoreTime(files, bytes int64) time.Duration {
	if files <= 0 && bytes <= 0 {
		return 0
	}
	stream := time.Duration(float64(bytes) / m.Bandwidth * float64(time.Second))
	return time.Duration(files)*m.PerFileLatency + stream
}

// String describes the model.
func (m Model) String() string {
	return fmt.Sprintf("%s (%.1f GB/s, %v/file)", m.Name, m.Bandwidth/1e9, m.PerFileLatency)
}

// Reference archive models.
var (
	// HPSSTape models a tape-backed HPSS archive: high recall latency,
	// good streaming.
	HPSSTape = Model{Name: "HPSS tape", Bandwidth: 1e9, PerFileLatency: 45 * time.Second}
	// DiskArchive models a disk-based campaign-storage tier.
	DiskArchive = Model{Name: "disk archive", Bandwidth: 5e9, PerFileLatency: 500 * time.Millisecond}
	// WideArea models re-transmission from another site over a shared
	// WAN link.
	WideArea = Model{Name: "wide-area re-transmission", Bandwidth: 250e6, PerFileLatency: 2 * time.Second}
)

// Models lists the reference models.
func Models() []Model { return []Model{HPSSTape, DiskArchive, WideArea} }
