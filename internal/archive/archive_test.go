package archive

import (
	"testing"
	"testing/quick"
	"time"
)

func TestRestoreTime(t *testing.T) {
	m := Model{Name: "test", Bandwidth: 1e9, PerFileLatency: 10 * time.Second}
	// 6 files, 30 GB: 60s latency + 30s stream.
	got := m.RestoreTime(6, 30e9)
	if got != 90*time.Second {
		t.Fatalf("RestoreTime = %v, want 90s", got)
	}
	if m.RestoreTime(0, 0) != 0 {
		t.Fatal("zero restore should cost nothing")
	}
}

func TestValidate(t *testing.T) {
	if err := (Model{Bandwidth: 0}).Validate(); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if err := (Model{Bandwidth: 1, PerFileLatency: -1}).Validate(); err == nil {
		t.Error("negative latency accepted")
	}
	for _, m := range Models() {
		if err := m.Validate(); err != nil {
			t.Errorf("reference model %s invalid: %v", m.Name, err)
		}
		if m.String() == "" {
			t.Errorf("model %s has empty description", m.Name)
		}
	}
}

// Property: restore time is monotone in both files and bytes.
func TestRestoreTimeMonotone(t *testing.T) {
	m := HPSSTape
	f := func(f1, f2 uint16, b1, b2 uint32) bool {
		fa, fb := int64(f1), int64(f1)+int64(f2)
		ba, bb := int64(b1), int64(b1)+int64(b2)
		return m.RestoreTime(fa, ba) <= m.RestoreTime(fb, bb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
