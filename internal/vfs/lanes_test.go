package vfs

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"activedr/internal/timeutil"
	"activedr/internal/trace"
)

// TestLaneGroupMatchesDedicated drives a lane group and per-lane
// dedicated clones through the same schedule — day-batched ApplyRun
// churn with monotone timestamps, interleaved per-lane stale scans and
// RemoveCandidate purges at batch boundaries — and requires identical
// observable state throughout: miss masks, candidate lists,
// accounting, and the final snapshot. This pins the multiplexed fast
// paths (skip masks, node handles, dense accounting) directly at the
// vfs layer, beneath the sim-level equivalence suite.
func TestLaneGroupMatchesDedicated(t *testing.T) {
	const (
		lanes = 3
		users = 6
		days  = 40
	)
	rng := rand.New(rand.NewSource(17))
	day := timeutil.Time(daySeconds)

	base := New()
	paths := make([]string, 120)
	for i := range paths {
		paths[i] = fmt.Sprintf("/scratch/u%d/run%03d/out.dat", i%users, i)
		if i%3 == 0 {
			continue // a third of the namespace starts absent
		}
		m := FileMeta{
			User:    trace.UserID(i % users),
			Size:    int64(rng.Intn(900)) + 1,
			Stripes: 1,
			ATime:   timeutil.Time(rng.Int63n(int64(5 * day))),
		}
		if err := base.Insert(paths[i], m); err != nil {
			t.Fatal(err)
		}
	}

	group, err := NewLaneGroup(base, lanes, len(paths))
	if err != nil {
		t.Fatal(err)
	}
	ded := make([]*FS, lanes)
	for i := range ded {
		ded[i] = base.Clone()
	}

	// applyDedicated mirrors the replay's per-event semantics
	// (sim.Stream.Apply): create inserts, a touch hit renews, a touch
	// miss re-inserts. Returns whether the first event missed.
	applyDedicated := func(fs *FS, path string, evs []RunEvent) bool {
		missed := false
		for ei, ev := range evs {
			m := FileMeta{User: ev.User, Size: ev.Size, Stripes: 1, ATime: ev.TS}
			if ev.Create {
				if err := fs.Insert(path, m); err != nil {
					t.Fatal(err)
				}
				continue
			}
			if fs.Touch(path, ev.TS) {
				continue
			}
			if ei != 0 {
				t.Fatalf("dedicated lane missed %q on event %d of a run", path, ei)
			}
			missed = true
			if err := fs.Insert(path, m); err != nil {
				t.Fatal(err)
			}
		}
		return missed
	}

	checkAccounting := func(d int) {
		t.Helper()
		for i := 0; i < lanes; i++ {
			lane := group.Lane(i)
			if got, want := lane.Count(), ded[i].Count(); got != want {
				t.Fatalf("day %d lane %d: Count %d != dedicated %d", d, i, got, want)
			}
			if got, want := lane.TotalBytes(), ded[i].TotalBytes(); got != want {
				t.Fatalf("day %d lane %d: TotalBytes %d != dedicated %d", d, i, got, want)
			}
			if got, want := lane.Users(), ded[i].Users(); !reflect.DeepEqual(got, want) {
				t.Fatalf("day %d lane %d: Users %v != dedicated %v", d, i, got, want)
			}
			for u := trace.UserID(0); u < users; u++ {
				if got, want := lane.UserBytes(u), ded[i].UserBytes(u); got != want {
					t.Fatalf("day %d lane %d user %d: bytes %d != %d", d, i, u, got, want)
				}
				if got, want := lane.UserFiles(u), ded[i].UserFiles(u); got != want {
					t.Fatalf("day %d lane %d user %d: files %d != %d", d, i, u, got, want)
				}
			}
		}
	}

	blankNodes := func(cs []Candidate) []Candidate {
		out := append([]Candidate(nil), cs...)
		for i := range out {
			out[i].node = nil
		}
		return out
	}

	ts := 6 * day // strictly after every seeded atime; advances monotonically
	for d := 0; d < days; d++ {
		// One day's batch: several runs over distinct paths, stream order.
		for r := 0; r < 8; r++ {
			pid := rng.Intn(len(paths))
			evs := make([]RunEvent, 1+rng.Intn(3))
			for ei := range evs {
				ts += timeutil.Time(1 + rng.Int63n(int64(day)/32))
				evs[ei] = RunEvent{
					User:   trace.UserID(rng.Intn(users)),
					Size:   int64(rng.Intn(900)) + 1,
					TS:     ts,
					Create: rng.Intn(5) == 0,
				}
			}
			missMask := group.ApplyRun(int32(pid), paths[pid], evs)
			for i := 0; i < lanes; i++ {
				missed := applyDedicated(ded[i], paths[pid], evs)
				if gotMiss := missMask&(1<<uint(i)) != 0; gotMiss != missed {
					t.Fatalf("day %d lane %d path %q: miss=%v, dedicated %v", d, i, paths[pid], gotMiss, missed)
				}
			}
		}

		// Batch boundary: each lane scans with its own cutoff (staggered
		// lifetimes, so lanes diverge) and purges a pseudo-random subset
		// via RemoveCandidate. Scanning twice exercises the skip masks:
		// the second scan of an exhausted bucket must yield the same
		// answer through the mask's fast path.
		if d%4 == 3 {
			for i := 0; i < lanes; i++ {
				lane := group.Lane(i)
				cutoff := ts - timeutil.Time(5+3*i)*day
				for u := trace.UserID(0); u < users; u++ {
					got := lane.StaleFiles(u, cutoff)
					want := ded[i].StaleFiles(u, cutoff)
					if !reflect.DeepEqual(blankNodes(got), blankNodes(want)) {
						t.Fatalf("day %d lane %d user %d: stale %v != dedicated %v", d, i, u, got, want)
					}
					for ci, c := range got {
						if (u+trace.UserID(ci))%3 != 0 {
							continue
						}
						gm, gok := lane.RemoveCandidate(c)
						dm, dok := ded[i].RemoveCandidate(want[ci])
						if gok != dok || gm != dm {
							t.Fatalf("day %d lane %d: RemoveCandidate(%q) = (%v,%v), dedicated (%v,%v)",
								d, i, c.Path, gm, gok, dm, dok)
						}
					}
					again := lane.StaleFiles(u, cutoff)
					wantAgain := ded[i].StaleFiles(u, cutoff)
					if !reflect.DeepEqual(blankNodes(again), blankNodes(wantAgain)) {
						t.Fatalf("day %d lane %d user %d: post-purge rescan diverges", d, i, u)
					}
				}
			}
		}
		checkAccounting(d)
	}

	// Final deep comparison: full metadata snapshots must agree.
	for i := 0; i < lanes; i++ {
		if !reflect.DeepEqual(group.Lane(i).Snapshot(0).Entries, ded[i].Snapshot(0).Entries) {
			t.Fatalf("lane %d: final snapshot diverges from dedicated clone", i)
		}
	}
}

// TestRemoveCandidateStaleHint pins the node-hint revalidation:
// removing through a candidate whose cached node was invalidated (the
// file was removed and its path re-created, so the node is stale or
// re-used) must behave exactly like a path-addressed Remove.
func TestRemoveCandidateStaleHint(t *testing.T) {
	day := timeutil.Time(daySeconds)
	base := New()
	if err := base.Insert("/a/f", FileMeta{User: 1, Size: 10, Stripes: 1, ATime: day}); err != nil {
		t.Fatal(err)
	}
	group, err := NewLaneGroup(base, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	l0, l1 := group.Lane(0), group.Lane(1)

	cands := l0.StaleFiles(1, 10*day)
	if len(cands) != 1 {
		t.Fatalf("stale = %v, want one candidate", cands)
	}
	c := cands[0]

	// Lane 0 purges, then the file is re-created for everyone with a
	// fresh atime. The old candidate now names a live file the lane
	// holds again — but under different metadata, so removing through
	// the stale candidate must remove the CURRENT file, like Remove.
	if _, ok := l0.RemoveCandidate(c); !ok {
		t.Fatal("first RemoveCandidate failed")
	}
	group.ApplyRun(0, "/a/f", []RunEvent{{User: 1, Size: 99, TS: 20 * day, Create: true}})
	m, ok := l0.RemoveCandidate(c)
	if !ok || m.Size != 99 || m.ATime != 20*day {
		t.Fatalf("RemoveCandidate after re-create = (%+v, %v), want the recreated file", m, ok)
	}
	if l0.UserFiles(1) != 0 {
		t.Fatalf("lane 0 still accounts %d files for user 1", l0.UserFiles(1))
	}
	// Lane 1 never purged: it must still hold the re-created file.
	if l1.UserFiles(1) != 1 || l1.UserBytes(1) != 99 {
		t.Fatalf("lane 1 accounting (%d files, %d bytes), want (1, 99)", l1.UserFiles(1), l1.UserBytes(1))
	}
	// A candidate for a file that no longer exists anywhere must fail.
	if _, ok := l0.RemoveCandidate(c); ok {
		t.Fatal("RemoveCandidate succeeded on an absent file")
	}
}
