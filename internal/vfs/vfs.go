package vfs

import (
	"fmt"
	"slices"
	"sort"

	"activedr/internal/obs"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
)

// FileMeta is the per-file metadata the retention policies consult.
type FileMeta struct {
	User    trace.UserID
	Size    int64
	Stripes int
	ATime   timeutil.Time
}

// fileRecord is what a terminal tree node stores: the metadata plus
// the file's canonical path string. Interning the path here means
// walks, snapshots and candidate queries hand out the stored string
// instead of rebuilding one byte slice per file per scan.
type fileRecord struct {
	meta FileMeta
	path string
}

// Candidate is one purge candidate emitted by StaleFiles.
type Candidate struct {
	Path string
	Meta FileMeta
}

// idxEntry is one (path, atime-at-index-time) pair in a day bucket.
// An entry is live iff the file still exists, still belongs to the
// bucket's user, and still has exactly this atime; anything else is a
// tombstone dropped at the next compaction.
type idxEntry struct {
	path  string
	atime timeutil.Time
}

// userIndex is one user's purge-candidate index: entries bucketed by
// atime day, with the populated day keys kept sorted so a stale-file
// query visits only buckets older than the cutoff. days and buckets
// are parallel slices (buckets[i] holds the entries of days[i]):
// replays append mostly to the newest day, and a sorted slice makes
// that an index assignment where a map key write was the hot spot.
type userIndex struct {
	days    []int64      // sorted ascending
	buckets [][]idxEntry // buckets[i] pairs with days[i]
}

// searchDays returns the insertion point of day in the sorted key
// slice (hand-rolled: called per index update).
func searchDays(days []int64, day int64) int {
	lo, hi := 0, len(days)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if days[mid] < day {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// liveEntry pairs a validated index entry with its current metadata
// during bucket compaction.
type liveEntry struct {
	e    idxEntry
	meta FileMeta
}

const daySeconds = int64(24 * 60 * 60)

// dayOf maps a timestamp to its bucket key (floor division, so the
// mapping stays monotone for pre-epoch times too).
func dayOf(t timeutil.Time) int64 {
	s := int64(t)
	d := s / daySeconds
	if s%daySeconds != 0 && s < 0 {
		d--
	}
	return d
}

// FS is the virtual file system: a compact prefix tree over absolute
// paths with byte and count accounting, overall and per user, plus an
// incrementally maintained per-user atime index that answers purge
// candidate queries without walking the namespace (DESIGN.md §8). FS
// is not safe for concurrent mutation, and StaleFiles mutates
// (it compacts index buckets); the parallel scan pool shards work
// over read-only walks only.
type FS struct {
	tree      *radix[fileRecord]
	bytes     int64
	userBytes map[trace.UserID]int64
	userFiles map[trace.UserID]int64
	index     map[trace.UserID]*userIndex
	scratch   []liveEntry // reused across StaleFiles bucket compactions
	// probe holds the optional hot-path observability counters. The
	// zero value is fully inert (nil counters discard increments), so
	// an unobserved FS pays one predictable branch per operation.
	probe obs.VFSProbe
}

// SetProbe installs observability counters for this FS's mutating hot
// paths. Clones do not inherit the probe: captured states and planner
// copies stay unobserved so instrumentation never double-counts.
func (f *FS) SetProbe(p obs.VFSProbe) { f.probe = p }

// New returns an empty FS.
func New() *FS {
	return &FS{
		tree:      newRadix[fileRecord](),
		userBytes: make(map[trace.UserID]int64),
		userFiles: make(map[trace.UserID]int64),
		index:     make(map[trace.UserID]*userIndex),
	}
}

// FromSnapshot builds an FS holding every entry of a metadata
// snapshot.
func FromSnapshot(s *trace.Snapshot) (*FS, error) {
	fs := New()
	for i := range s.Entries {
		e := &s.Entries[i]
		if err := fs.Insert(e.Path, FileMeta{User: e.User, Size: e.Size, Stripes: e.Stripes, ATime: e.ATime}); err != nil {
			return nil, err
		}
	}
	return fs, nil
}

// Insert adds or replaces the file at path. Replacement adjusts the
// byte accounting by the size difference.
func (f *FS) Insert(path string, m FileMeta) error {
	if len(path) == 0 || path[0] != '/' {
		return fmt.Errorf("vfs: path %q is not absolute", path)
	}
	if m.Size < 0 {
		return fmt.Errorf("vfs: negative size for %q", path)
	}
	prev, existed := f.tree.put(path, fileRecord{meta: m, path: path})
	if existed {
		old := prev.meta
		f.bytes -= old.Size
		f.userBytes[old.User] -= old.Size
		f.userFiles[old.User]--
		if f.userFiles[old.User] == 0 {
			delete(f.userFiles, old.User)
			delete(f.userBytes, old.User)
		}
	}
	f.bytes += m.Size
	f.userBytes[m.User] += m.Size
	f.userFiles[m.User]++
	// The old index entry stays valid only if owner and atime are both
	// unchanged; otherwise it becomes a tombstone and a fresh entry is
	// indexed.
	if !existed || prev.meta.User != m.User || prev.meta.ATime != m.ATime {
		f.indexAdd(m.User, path, m.ATime)
	}
	f.probe.Inserts.Inc()
	return nil
}

// Lookup returns the metadata stored at path.
func (f *FS) Lookup(path string) (FileMeta, bool) {
	r, ok := f.tree.get(path)
	return r.meta, ok
}

// Contains reports whether path holds a file.
func (f *FS) Contains(path string) bool {
	_, ok := f.tree.get(path)
	return ok
}

// Touch renews the access time of path, reporting whether the file
// exists.
func (f *FS) Touch(path string, at timeutil.Time) bool {
	n := f.tree.findNode(path)
	if n == nil || !n.terminal {
		f.probe.TouchMisses.Inc()
		return false
	}
	f.probe.Touches.Inc()
	if n.value.meta.ATime == at {
		return true // no atime change: the index entry stays valid
	}
	n.value.meta.ATime = at
	f.indexAdd(n.value.meta.User, n.value.path, at)
	return true
}

// Remove purges the file at path, reporting its metadata. Index
// entries are invalidated lazily: the next StaleFiles compaction of
// their bucket drops them.
func (f *FS) Remove(path string) (FileMeta, bool) {
	r, ok := f.tree.delete(path)
	if !ok {
		return FileMeta{}, false
	}
	m := r.meta
	f.bytes -= m.Size
	f.userBytes[m.User] -= m.Size
	f.userFiles[m.User]--
	if f.userFiles[m.User] == 0 {
		delete(f.userFiles, m.User)
		delete(f.userBytes, m.User)
	}
	f.probe.Removes.Inc()
	return m, true
}

// indexAdd appends an entry to the owner's day bucket, registering the
// day key on first use. Buckets grow with a minimum capacity of 8:
// entries spread over hundreds of (user, day) buckets, and letting
// append crawl through caps 1→2→4 doubled the replay's allocation
// count.
func (f *FS) indexAdd(u trace.UserID, path string, at timeutil.Time) {
	ui := f.index[u]
	if ui == nil {
		ui = &userIndex{}
		f.index[u] = ui
	}
	day := dayOf(at)
	i := len(ui.days) - 1
	if i < 0 || ui.days[i] != day { // fast path: replays touch the newest day
		i = searchDays(ui.days, day)
		if i == len(ui.days) || ui.days[i] != day {
			ui.days = append(ui.days, 0)
			copy(ui.days[i+1:], ui.days[i:])
			ui.days[i] = day
			ui.buckets = append(ui.buckets, nil)
			copy(ui.buckets[i+1:], ui.buckets[i:])
			ui.buckets[i] = nil
		}
	}
	b := ui.buckets[i]
	if len(b) == cap(b) {
		nb := make([]idxEntry, len(b), max(8, 2*cap(b)))
		copy(nb, b)
		b = nb
	}
	ui.buckets[i] = append(b, idxEntry{path: path, atime: at})
}

// Users returns every user owning at least one file, ascending. This
// is the deterministic iteration order purge passes scan users in.
func (f *FS) Users() []trace.UserID {
	out := make([]trace.UserID, 0, len(f.userFiles))
	for u := range f.userFiles {
		out = append(out, u)
	}
	slices.Sort(out)
	return out
}

// StaleFiles returns the live files of user u with ATime < cutoff in
// (ATime, Path) ascending order. This is the selection contract both
// the indexed and the legacy purge paths honor; see DESIGN.md §8.
func (f *FS) StaleFiles(u trace.UserID, cutoff timeutil.Time) []Candidate {
	return f.AppendStaleFiles(nil, u, cutoff)
}

// AppendStaleFiles is StaleFiles appending into dst, so a purge pass
// can reuse one buffer across users and triggers. As a side effect it
// compacts every bucket it visits: tombstones (removed, chowned or
// re-touched files) are dropped and the bucket is left sorted, so the
// index footprint stays proportional to the live file count.
func (f *FS) AppendStaleFiles(dst []Candidate, u trace.UserID, cutoff timeutil.Time) []Candidate {
	f.probe.StaleQueries.Inc()
	ui := f.index[u]
	if ui == nil {
		return dst
	}
	for di := 0; di < len(ui.days); {
		day := ui.days[di]
		if day*daySeconds >= int64(cutoff) {
			break // this bucket and all later ones start at or after cutoff
		}
		bucket := ui.buckets[di]
		live := f.scratch[:0]
		for _, e := range bucket {
			if n := f.tree.findNode(e.path); n != nil && n.terminal &&
				n.value.meta.User == u && n.value.meta.ATime == e.atime {
				live = append(live, liveEntry{e: e, meta: n.value.meta})
			}
		}
		if !liveSorted(live) {
			sort.Slice(live, func(i, j int) bool {
				if live[i].e.atime != live[j].e.atime {
					return live[i].e.atime < live[j].e.atime
				}
				return live[i].e.path < live[j].e.path
			})
		}
		// Drop duplicate entries (same path indexed twice at the same
		// atime, e.g. remove + re-insert): equal pairs are adjacent now.
		w := 0
		for i := range live {
			if i > 0 && live[i].e == live[i-1].e {
				continue
			}
			live[w] = live[i]
			w++
		}
		live = live[:w]
		f.scratch = live // retain grown capacity
		// Stale entries are a prefix: staleness depends only on atime.
		split := sort.Search(len(live), func(i int) bool { return live[i].e.atime >= cutoff })
		for i := 0; i < split; i++ {
			dst = append(dst, Candidate{Path: live[i].e.path, Meta: live[i].meta})
		}
		if len(live) == 0 {
			ui.days = append(ui.days[:di], ui.days[di+1:]...)
			ui.buckets = append(ui.buckets[:di], ui.buckets[di+1:]...)
			continue // di now names the next day
		}
		bucket = bucket[:0]
		for i := range live {
			bucket = append(bucket, live[i].e)
		}
		ui.buckets[di] = bucket
		di++
	}
	return dst
}

// liveSorted reports whether live is already in (atime, path) order —
// the common case for a bucket compacted once and appended to in
// replay time order, letting the compaction skip the sort.
func liveSorted(live []liveEntry) bool {
	for i := 1; i < len(live); i++ {
		if live[i].e.atime < live[i-1].e.atime ||
			(live[i].e.atime == live[i-1].e.atime && live[i].e.path < live[i-1].e.path) {
			return false
		}
	}
	return true
}

// Count returns the number of files.
func (f *FS) Count() int { return f.tree.size() }

// TotalBytes returns the total stored bytes.
func (f *FS) TotalBytes() int64 { return f.bytes }

// UserBytes returns the bytes owned by u.
func (f *FS) UserBytes(u trace.UserID) int64 { return f.userBytes[u] }

// UserFiles returns the number of files owned by u.
func (f *FS) UserFiles(u trace.UserID) int64 { return f.userFiles[u] }

// Walk visits every file in lexicographic path order. fn returning
// false stops the walk early. Paths are the interned canonical
// strings, so a walk allocates nothing.
func (f *FS) Walk(fn func(path string, m FileMeta) bool) {
	walkRecords(f.tree.root, fn)
}

// WalkPrefix visits every file whose path starts with prefix, in
// lexicographic order.
func (f *FS) WalkPrefix(prefix string, fn func(path string, m FileMeta) bool) {
	n := f.tree.root
	rest := prefix
	for rest != "" {
		i, ok := n.childIndex(rest[0])
		if !ok {
			return
		}
		child := n.children[i]
		cp := commonPrefixLen(rest, child.label)
		if cp == len(rest) {
			walkRecords(child, fn)
			return
		}
		if cp < len(child.label) {
			return // diverged: nothing under prefix
		}
		rest = rest[cp:]
		n = child
	}
	walkRecords(n, fn)
}

// walkRecords visits terminal records in lexicographic order using
// their interned paths.
func walkRecords(n *rnode[fileRecord], fn func(path string, m FileMeta) bool) bool {
	if n.terminal {
		if !fn(n.value.path, n.value.meta) {
			return false
		}
	}
	for _, c := range n.children {
		if !walkRecords(c, fn) {
			return false
		}
	}
	return true
}

// FilesByUser buckets every path by owning user in one walk. Each
// bucket preserves lexicographic order. This is the legacy way a
// retention pass obtains per-user scan lists; the indexed path asks
// StaleFiles instead.
func (f *FS) FilesByUser() map[trace.UserID][]string {
	out := make(map[trace.UserID][]string)
	f.Walk(func(path string, m FileMeta) bool {
		out[m.User] = append(out[m.User], path)
		return true
	})
	return out
}

// Snapshot exports the current state as a metadata snapshot taken at
// the given time.
func (f *FS) Snapshot(taken timeutil.Time) *trace.Snapshot {
	s := &trace.Snapshot{Taken: taken}
	s.Entries = make([]trace.SnapshotEntry, 0, f.Count())
	f.Walk(func(path string, m FileMeta) bool {
		s.Entries = append(s.Entries, trace.SnapshotEntry{
			Path: path, User: m.User, Size: m.Size, Stripes: m.Stripes, ATime: m.ATime,
		})
		return true
	})
	return s
}

// Clone deep-copies the FS so FLT and ActiveDR can replay the same
// initial state independently. The tree is copied structurally (one
// allocation per node, labels and paths shared) and the candidate
// index is copied bucket by bucket.
func (f *FS) Clone() *FS {
	c := &FS{
		tree:      f.tree.clone(),
		bytes:     f.bytes,
		userBytes: make(map[trace.UserID]int64, len(f.userBytes)),
		userFiles: make(map[trace.UserID]int64, len(f.userFiles)),
		index:     make(map[trace.UserID]*userIndex, len(f.index)),
	}
	for u, b := range f.userBytes {
		c.userBytes[u] = b
	}
	for u, n := range f.userFiles {
		c.userFiles[u] = n
	}
	for u, ui := range f.index {
		cu := &userIndex{
			days:    append([]int64(nil), ui.days...),
			buckets: make([][]idxEntry, len(ui.buckets)),
		}
		// All of a user's buckets share one backing array, capped per
		// bucket so a later append reallocates instead of overwriting
		// the neighbor: one allocation per user, not one per day.
		total := 0
		for _, b := range ui.buckets {
			total += len(b)
		}
		backing := make([]idxEntry, total)
		off := 0
		for i, b := range ui.buckets {
			seg := backing[off : off+len(b) : off+len(b)]
			copy(seg, b)
			cu.buckets[i] = seg
			off += len(b)
		}
		c.index[u] = cu
	}
	return c
}

// Stats summarizes the index footprint of the prefix tree — the
// memory-efficiency measure of the paper's Figure 12a.
type Stats struct {
	Files      int   // terminal nodes
	Nodes      int   // all tree nodes (compression quality indicator)
	LabelBytes int64 // bytes held in edge labels
}

// Stats walks the tree structure and reports its footprint.
func (f *FS) Stats() Stats {
	st := Stats{Files: f.Count()}
	var walk func(n *rnode[fileRecord])
	walk = func(n *rnode[fileRecord]) {
		st.Nodes++
		st.LabelBytes += int64(len(n.label))
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(f.tree.root)
	return st
}

// ReservedSet indexes purge-exempt paths. A reservation covers the
// exact path and, when the reserved path is a directory, its whole
// subtree (any stored prefix followed by '/').
type ReservedSet struct {
	tree *radix[struct{}]
}

// NewReservedSet returns an empty reservation index.
func NewReservedSet() *ReservedSet {
	return &ReservedSet{tree: newRadix[struct{}]()}
}

// Add reserves path (file or directory subtree).
func (r *ReservedSet) Add(path string) { r.tree.put(path, struct{}{}) }

// Len returns the number of reservations.
func (r *ReservedSet) Len() int { return r.tree.size() }

// Covers reports whether path is reserved, either exactly or via an
// ancestor directory reservation.
func (r *ReservedSet) Covers(path string) bool {
	if r == nil || r.tree.size() == 0 {
		return false
	}
	return r.tree.coveredBy(path)
}
