package vfs

import (
	"fmt"

	"activedr/internal/timeutil"
	"activedr/internal/trace"
)

// FileMeta is the per-file metadata the retention policies consult.
type FileMeta struct {
	User    trace.UserID
	Size    int64
	Stripes int
	ATime   timeutil.Time
}

// FS is the virtual file system: a compact prefix tree over absolute
// paths with byte and count accounting, overall and per user. FS is
// not safe for concurrent mutation; the parallel scan pool shards
// work over read-only walks.
type FS struct {
	tree      *radix[FileMeta]
	bytes     int64
	userBytes map[trace.UserID]int64
	userFiles map[trace.UserID]int64
}

// New returns an empty FS.
func New() *FS {
	return &FS{
		tree:      newRadix[FileMeta](),
		userBytes: make(map[trace.UserID]int64),
		userFiles: make(map[trace.UserID]int64),
	}
}

// FromSnapshot builds an FS holding every entry of a metadata
// snapshot.
func FromSnapshot(s *trace.Snapshot) (*FS, error) {
	fs := New()
	for i := range s.Entries {
		e := &s.Entries[i]
		if err := fs.Insert(e.Path, FileMeta{User: e.User, Size: e.Size, Stripes: e.Stripes, ATime: e.ATime}); err != nil {
			return nil, err
		}
	}
	return fs, nil
}

// Insert adds or replaces the file at path. Replacement adjusts the
// byte accounting by the size difference.
func (f *FS) Insert(path string, m FileMeta) error {
	if len(path) == 0 || path[0] != '/' {
		return fmt.Errorf("vfs: path %q is not absolute", path)
	}
	if m.Size < 0 {
		return fmt.Errorf("vfs: negative size for %q", path)
	}
	prev, existed := f.tree.put(path, m)
	if existed {
		f.bytes -= prev.Size
		f.userBytes[prev.User] -= prev.Size
		f.userFiles[prev.User]--
	}
	f.bytes += m.Size
	f.userBytes[m.User] += m.Size
	f.userFiles[m.User]++
	return nil
}

// Lookup returns the metadata stored at path.
func (f *FS) Lookup(path string) (FileMeta, bool) { return f.tree.get(path) }

// Contains reports whether path holds a file.
func (f *FS) Contains(path string) bool {
	_, ok := f.tree.get(path)
	return ok
}

// Touch renews the access time of path, reporting whether the file
// exists.
func (f *FS) Touch(path string, at timeutil.Time) bool {
	n := f.tree.findNode(path)
	if n == nil || !n.terminal {
		return false
	}
	n.value.ATime = at
	return true
}

// Remove purges the file at path, reporting its metadata.
func (f *FS) Remove(path string) (FileMeta, bool) {
	m, ok := f.tree.delete(path)
	if !ok {
		return FileMeta{}, false
	}
	f.bytes -= m.Size
	f.userBytes[m.User] -= m.Size
	f.userFiles[m.User]--
	if f.userFiles[m.User] == 0 {
		delete(f.userFiles, m.User)
		delete(f.userBytes, m.User)
	}
	return m, true
}

// Count returns the number of files.
func (f *FS) Count() int { return f.tree.size() }

// TotalBytes returns the total stored bytes.
func (f *FS) TotalBytes() int64 { return f.bytes }

// UserBytes returns the bytes owned by u.
func (f *FS) UserBytes(u trace.UserID) int64 { return f.userBytes[u] }

// UserFiles returns the number of files owned by u.
func (f *FS) UserFiles(u trace.UserID) int64 { return f.userFiles[u] }

// Walk visits every file in lexicographic path order. fn returning
// false stops the walk early.
func (f *FS) Walk(fn func(path string, m FileMeta) bool) {
	f.tree.walk("", fn)
}

// WalkPrefix visits every file whose path starts with prefix, in
// lexicographic order.
func (f *FS) WalkPrefix(prefix string, fn func(path string, m FileMeta) bool) {
	f.tree.walk(prefix, fn)
}

// FilesByUser buckets every path by owning user in one walk. Each
// bucket preserves lexicographic order. This is how a retention pass
// obtains per-user scan lists without a per-user index.
func (f *FS) FilesByUser() map[trace.UserID][]string {
	out := make(map[trace.UserID][]string)
	f.Walk(func(path string, m FileMeta) bool {
		out[m.User] = append(out[m.User], path)
		return true
	})
	return out
}

// Snapshot exports the current state as a metadata snapshot taken at
// the given time.
func (f *FS) Snapshot(taken timeutil.Time) *trace.Snapshot {
	s := &trace.Snapshot{Taken: taken}
	s.Entries = make([]trace.SnapshotEntry, 0, f.Count())
	f.Walk(func(path string, m FileMeta) bool {
		s.Entries = append(s.Entries, trace.SnapshotEntry{
			Path: path, User: m.User, Size: m.Size, Stripes: m.Stripes, ATime: m.ATime,
		})
		return true
	})
	return s
}

// Clone deep-copies the FS so FLT and ActiveDR can replay the same
// initial state independently.
func (f *FS) Clone() *FS {
	c := New()
	f.Walk(func(path string, m FileMeta) bool {
		// Paths from Walk are fresh strings; reuse directly.
		c.tree.put(path, m)
		c.bytes += m.Size
		c.userBytes[m.User] += m.Size
		c.userFiles[m.User]++
		return true
	})
	return c
}

// Stats summarizes the index footprint of the prefix tree — the
// memory-efficiency measure of the paper's Figure 12a.
type Stats struct {
	Files      int   // terminal nodes
	Nodes      int   // all tree nodes (compression quality indicator)
	LabelBytes int64 // bytes held in edge labels
}

// Stats walks the tree structure and reports its footprint.
func (f *FS) Stats() Stats {
	st := Stats{Files: f.Count()}
	var walk func(n *rnode[FileMeta])
	walk = func(n *rnode[FileMeta]) {
		st.Nodes++
		st.LabelBytes += int64(len(n.label))
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(f.tree.root)
	return st
}

// ReservedSet indexes purge-exempt paths. A reservation covers the
// exact path and, when the reserved path is a directory, its whole
// subtree (any stored prefix followed by '/').
type ReservedSet struct {
	tree *radix[struct{}]
}

// NewReservedSet returns an empty reservation index.
func NewReservedSet() *ReservedSet {
	return &ReservedSet{tree: newRadix[struct{}]()}
}

// Add reserves path (file or directory subtree).
func (r *ReservedSet) Add(path string) { r.tree.put(path, struct{}{}) }

// Len returns the number of reservations.
func (r *ReservedSet) Len() int { return r.tree.size() }

// Covers reports whether path is reserved, either exactly or via an
// ancestor directory reservation.
func (r *ReservedSet) Covers(path string) bool {
	if r == nil || r.tree.size() == 0 {
		return false
	}
	return r.tree.coveredBy(path)
}
