package vfs

import (
	"cmp"
	"fmt"
	"slices"
	"sort"
	"strings"

	"activedr/internal/obs"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
)

// FileMeta is the per-file metadata the retention policies consult.
type FileMeta struct {
	User    trace.UserID
	Size    int64
	Stripes int
	ATime   timeutil.Time
}

// fileRecord is what a terminal tree node stores: the metadata plus
// the file's canonical path string. Interning the path here means
// walks, snapshots and candidate queries hand out the stored string
// instead of rebuilding one byte slice per file per scan.
//
// The dropped/ovr/pid1 fields only carry state when the record lives
// in a LaneGroup's shared tree (lanes.go); in a private FS they stay
// zero, which reads as "every lane holds the file, no overrides" — so
// a freshly cloned tree needs no per-record initialization.
type fileRecord struct {
	meta FileMeta
	path string
	// dropped is the inverted lane mask: bit i set means lane i purged
	// the file. 0 = held by every lane. When all lane bits are set the
	// record is deleted from the shared tree.
	dropped uint64
	// ovr marks lanes holding a metadata override for this path in
	// their FS.overrides map (divergent owner/size after a per-lane
	// miss re-insert).
	ovr uint64
	// pid1 is the columnar path id + 1 (0 = none), used to invalidate
	// the LaneGroup's path-id→node handle table on delete.
	pid1 int32
}

// Candidate is one purge candidate emitted by StaleFiles.
type Candidate struct {
	Path string
	Meta FileMeta
	// node is the tree node the emitting scan validated for this
	// candidate, letting RemoveCandidate on a lane view skip the
	// lookup. Never trusted blindly: consumers revalidate it and fall
	// back to a path lookup (it goes stale if the record is deleted
	// between emission and removal).
	node *rnode[fileRecord]
}

// idxEntry is one (path, atime-at-index-time) pair in a day bucket.
// An entry is live iff the file still exists, still belongs to the
// bucket's user, and still has exactly this atime; anything else is a
// tombstone dropped at the next compaction. node caches the terminal
// tree node the entry was indexed from — valid as long as the node is
// terminal with a matching path (the radix tree keeps a key's node
// object stable for the key's lifetime), nil or stale falls back to
// findNode. Compactions refresh it; Clone nils it (the copy's entries
// would otherwise point into the source tree).
type idxEntry struct {
	path  string
	atime timeutil.Time
	node  *rnode[fileRecord]
}

// userIndex is one user's purge-candidate index: entries bucketed by
// atime day, with the populated day keys kept sorted so a stale-file
// query visits only buckets older than the cutoff. days and buckets
// are parallel slices (buckets[i] holds the entries of days[i]):
// replays append mostly to the newest day, and a sorted slice makes
// that an index assignment where a map key write was the hot spot.
type userIndex struct {
	days    []int64      // sorted ascending
	buckets [][]idxEntry // buckets[i] pairs with days[i]
	// compacted[i] marks bucket i as compacted in place by a lane-group
	// scan (see appendStaleScan): sorted, deduplicated, unique per
	// (path, atime), with node caches that were live at compaction
	// time. Appends clear the mark. A marked bucket is scanned without
	// rebuilding — each entry is revalidated with three loads off the
	// record it already points at, and the first stale entry observed
	// clears the mark so the next scan compacts the churn away.
	compacted []bool
	// skip[i] is a per-lane exhaustion mask over bucket i, maintained
	// only for group-shared indexes. Bit L set means a full fast-path
	// scan of bucket i emitted nothing for lane L and tripped no
	// guard: every entry was either dropped by the lane or hidden by
	// a foreign-owner override. Both states are permanent for an
	// old-bucket entry — re-materializing a dropped file and every
	// override mutation re-stamp the shared ATime with the current
	// (monotone) event time, tombstoning the entry for good — so the
	// lane's future scans skip the bucket with one bit test instead
	// of re-walking history it already purged. Appends clear the
	// mask, since a fresh entry may yield.
	skip []uint64
}

// searchDays returns the insertion point of day in the sorted key
// slice (hand-rolled: called per index update).
func searchDays(days []int64, day int64) int {
	lo, hi := 0, len(days)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if days[mid] < day {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// liveEntry pairs a validated index entry with its current metadata
// during bucket compaction.
type liveEntry struct {
	e    idxEntry
	meta FileMeta
}

const daySeconds = int64(24 * 60 * 60)

// dayOf maps a timestamp to its bucket key (floor division, so the
// mapping stays monotone for pre-epoch times too).
func dayOf(t timeutil.Time) int64 {
	s := int64(t)
	d := s / daySeconds
	if s%daySeconds != 0 && s < 0 {
		d--
	}
	return d
}

// FS is the virtual file system: a compact prefix tree over absolute
// paths with byte and count accounting, overall and per user, plus an
// incrementally maintained per-user atime index that answers purge
// candidate queries without walking the namespace (DESIGN.md §8). FS
// is not safe for concurrent mutation, and StaleFiles mutates
// (it compacts index buckets); the parallel scan pool shards work
// over read-only walks only.
type FS struct {
	tree      *radix[fileRecord]
	bytes     int64
	userBytes map[trace.UserID]int64
	userFiles map[trace.UserID]int64
	// Lane views account per user in dense slices instead of the maps
	// above (which stay nil): UserIDs are dense indices assigned at
	// trace load, purge passes hit the accounting on every removal in
	// every lane, and a slice index beats a map probe there. A user
	// with dFiles[u] == 0 owns nothing in this lane — the same
	// observable state the private maps express by deleting the key.
	dBytes []int64
	dFiles []int64
	index     map[trace.UserID]*userIndex
	scratch   []liveEntry // reused across StaleFiles bucket compactions
	// probe holds the optional hot-path observability counters. The
	// zero value is fully inert (nil counters discard increments), so
	// an unobserved FS pays one predictable branch per operation.
	probe obs.VFSProbe
	// dirty, when non-nil, records every path whose state this FS
	// changed since the last TakeDirty — the working set of a delta
	// checkpoint. Keys are the interned record paths.
	dirty map[string]struct{}

	// Lane-view state. A private FS leaves all of this zero. A lane
	// view shares tree and index with its sibling lanes through group
	// and owns only its accounting maps, overrides and extra index;
	// see lanes.go.
	group     *LaneGroup
	laneBit   uint64
	laneFiles int64
	// overrides holds per-lane metadata (User/Size/Stripes only — the
	// ATime of a lane-held file is always the shared record's, since
	// every lane applies the same touches) for paths whose lane copy
	// diverged from the shared record via a miss re-insert.
	overrides map[string]FileMeta
	// extra indexes override entries whose owner differs from the
	// shared record's owner, so lane stale-file queries still find
	// them under the override owner.
	extra map[trace.UserID]*userIndex
}

// SetProbe installs observability counters for this FS's mutating hot
// paths. Clones do not inherit the probe: captured states and planner
// copies stay unobserved so instrumentation never double-counts.
func (f *FS) SetProbe(p obs.VFSProbe) { f.probe = p }

// New returns an empty FS.
func New() *FS {
	return &FS{
		tree:      newRadix[fileRecord](),
		userBytes: make(map[trace.UserID]int64),
		userFiles: make(map[trace.UserID]int64),
		index:     make(map[trace.UserID]*userIndex),
	}
}

// FromSnapshot builds an FS holding every entry of a metadata
// snapshot.
func FromSnapshot(s *trace.Snapshot) (*FS, error) {
	fs := New()
	for i := range s.Entries {
		e := &s.Entries[i]
		if err := fs.Insert(e.Path, FileMeta{User: e.User, Size: e.Size, Stripes: e.Stripes, ATime: e.ATime}); err != nil {
			return nil, err
		}
	}
	return fs, nil
}

// Insert adds or replaces the file at path. Replacement adjusts the
// byte accounting by the size difference.
func (f *FS) Insert(path string, m FileMeta) error {
	if len(path) == 0 || path[0] != '/' {
		return fmt.Errorf("vfs: path %q is not absolute", path)
	}
	if m.Size < 0 {
		return fmt.Errorf("vfs: negative size for %q", path)
	}
	if f.group != nil {
		panic("vfs: lane views are mutated via LaneGroup.ApplyRun, not Insert")
	}
	n, prev, existed := f.tree.put(path, fileRecord{meta: m, path: path})
	if existed {
		old := prev.meta
		f.bytes -= old.Size
		f.userBytes[old.User] -= old.Size
		f.userFiles[old.User]--
		if f.userFiles[old.User] == 0 {
			delete(f.userFiles, old.User)
			delete(f.userBytes, old.User)
		}
	}
	f.bytes += m.Size
	f.userBytes[m.User] += m.Size
	f.userFiles[m.User]++
	// The old index entry stays valid only if owner and atime are both
	// unchanged; otherwise it becomes a tombstone and a fresh entry is
	// indexed.
	if !existed || prev.meta.User != m.User || prev.meta.ATime != m.ATime {
		f.indexAdd(m.User, n.value.path, m.ATime, n)
	}
	if f.dirty != nil {
		f.dirty[n.value.path] = struct{}{}
	}
	f.probe.Inserts.Inc()
	return nil
}

// Lookup returns the metadata stored at path.
func (f *FS) Lookup(path string) (FileMeta, bool) {
	n := f.tree.findNode(path)
	if n == nil || !n.terminal {
		return FileMeta{}, false
	}
	if f.group != nil {
		if n.value.dropped&f.laneBit != 0 {
			return FileMeta{}, false
		}
		return f.laneMeta(&n.value), true
	}
	return n.value.meta, true
}

// Contains reports whether path holds a file.
func (f *FS) Contains(path string) bool {
	_, ok := f.Lookup(path)
	return ok
}

// Touch renews the access time of path, reporting whether the file
// exists.
func (f *FS) Touch(path string, at timeutil.Time) bool {
	if f.group != nil {
		panic("vfs: lane views are mutated via LaneGroup.ApplyRun, not Touch")
	}
	n := f.tree.findNode(path)
	if n == nil || !n.terminal {
		f.probe.TouchMisses.Inc()
		return false
	}
	f.probe.Touches.Inc()
	if f.dirty != nil {
		f.dirty[n.value.path] = struct{}{}
	}
	if n.value.meta.ATime == at {
		return true // no atime change: the index entry stays valid
	}
	n.value.meta.ATime = at
	f.indexAdd(n.value.meta.User, n.value.path, at, n)
	return true
}

// Remove purges the file at path, reporting its metadata. Index
// entries are invalidated lazily: the next StaleFiles compaction of
// their bucket drops them. On a lane view only this lane's copy is
// dropped; the shared record dies when the last holder removes it.
func (f *FS) Remove(path string) (FileMeta, bool) {
	if f.group != nil {
		return f.laneRemoveNode(f.laneResolve(path), path)
	}
	r, ok := f.tree.delete(path)
	if !ok {
		return FileMeta{}, false
	}
	m := r.meta
	f.bytes -= m.Size
	f.userBytes[m.User] -= m.Size
	f.userFiles[m.User]--
	if f.userFiles[m.User] == 0 {
		delete(f.userFiles, m.User)
		delete(f.userBytes, m.User)
	}
	if f.dirty != nil {
		f.dirty[r.path] = struct{}{}
	}
	f.probe.Removes.Inc()
	return m, true
}

// RemoveCandidate is Remove for a candidate an earlier StaleFiles
// call emitted: on a lane view the candidate's cached node replaces
// the lookup when it still describes the path, with the same fallback
// and content semantics as Remove. On a private FS it is exactly
// Remove (the radix delete re-descends for node merging either way).
func (f *FS) RemoveCandidate(c Candidate) (FileMeta, bool) {
	if f.group != nil {
		n := c.node
		if n == nil || !n.terminal || n.value.path != c.Path {
			n = f.laneResolve(c.Path)
		}
		return f.laneRemoveNode(n, c.Path)
	}
	return f.Remove(c.Path)
}

// indexAdd appends an entry to the owner's day bucket, registering the
// day key on first use. Buckets grow with a minimum capacity of 8:
// entries spread over hundreds of (user, day) buckets, and letting
// append crawl through caps 1→2→4 doubled the replay's allocation
// count.
func (f *FS) indexAdd(u trace.UserID, path string, at timeutil.Time, n *rnode[fileRecord]) {
	indexAddTo(f.index, u, path, at, n)
}

// indexAddTo is indexAdd against an explicit index map, shared with
// the per-lane extra indexes.
func indexAddTo(index map[trace.UserID]*userIndex, u trace.UserID, path string, at timeutil.Time, n *rnode[fileRecord]) {
	ui := index[u]
	if ui == nil {
		ui = &userIndex{}
		index[u] = ui
	}
	day := dayOf(at)
	i := len(ui.days) - 1
	if i < 0 || ui.days[i] != day { // fast path: replays touch the newest day
		i = searchDays(ui.days, day)
		if i == len(ui.days) || ui.days[i] != day {
			ui.days = append(ui.days, 0)
			copy(ui.days[i+1:], ui.days[i:])
			ui.days[i] = day
			ui.buckets = append(ui.buckets, nil)
			copy(ui.buckets[i+1:], ui.buckets[i:])
			ui.buckets[i] = nil
			ui.compacted = append(ui.compacted, false)
			copy(ui.compacted[i+1:], ui.compacted[i:])
			ui.skip = append(ui.skip, 0)
			copy(ui.skip[i+1:], ui.skip[i:])
		}
	}
	ui.compacted[i] = false // the bucket is no longer known-compacted
	ui.skip[i] = 0          // a fresh entry may yield for any lane
	b := ui.buckets[i]
	if len(b) == cap(b) {
		nb := make([]idxEntry, len(b), max(8, 2*cap(b)))
		copy(nb, b)
		b = nb
	}
	ui.buckets[i] = append(b, idxEntry{path: path, atime: at, node: n})
}

// Users returns every user owning at least one file, ascending. This
// is the deterministic iteration order purge passes scan users in.
func (f *FS) Users() []trace.UserID {
	if f.group != nil {
		out := make([]trace.UserID, 0, len(f.dFiles))
		for u, n := range f.dFiles {
			if n != 0 {
				out = append(out, trace.UserID(u))
			}
		}
		return out // ascending by construction
	}
	out := make([]trace.UserID, 0, len(f.userFiles))
	for u := range f.userFiles {
		out = append(out, u)
	}
	slices.Sort(out)
	return out
}

// StaleFiles returns the live files of user u with ATime < cutoff in
// (ATime, Path) ascending order. This is the selection contract both
// the indexed and the legacy purge paths honor; see DESIGN.md §8.
func (f *FS) StaleFiles(u trace.UserID, cutoff timeutil.Time) []Candidate {
	return f.AppendStaleFiles(nil, u, cutoff)
}

// AppendStaleFiles is StaleFiles appending into dst, so a purge pass
// can reuse one buffer across users and triggers. As a side effect it
// compacts every bucket it visits: tombstones (removed, chowned or
// re-touched files) are dropped and the bucket is left sorted, so the
// index footprint stays proportional to the live file count.
func (f *FS) AppendStaleFiles(dst []Candidate, u trace.UserID, cutoff timeutil.Time) []Candidate {
	f.probe.StaleQueries.Inc()
	return f.appendStale(dst, u, cutoff)
}

// appendStale is AppendStaleFiles without the query counter: the
// sharded wrapper counts once per logical query, then fans out to the
// holding shards through this entry point.
func (f *FS) appendStale(dst []Candidate, u trace.UserID, cutoff timeutil.Time) []Candidate {
	if f.group == nil {
		return f.appendStaleScan(dst, f.index[u], u, cutoff, stalePrivate)
	}
	var xui *userIndex
	if f.extra != nil {
		xui = f.extra[u]
	}
	if xui == nil {
		return f.appendStaleScan(dst, f.index[u], u, cutoff, staleShared)
	}
	// Rare path: this lane holds override entries for u. Candidates
	// from the shared index and the lane's override index are disjoint
	// (an override with the shared owner never reaches the extra
	// index, and a create re-unifies metadata and clears overrides),
	// so collecting both and re-sorting restores the contract order.
	mark := len(dst)
	dst = f.appendStaleScan(dst, f.index[u], u, cutoff, staleShared)
	dst = f.appendStaleScan(dst, xui, u, cutoff, staleExtra)
	merged := dst[mark:]
	slices.SortFunc(merged, func(a, b Candidate) int {
		if a.Meta.ATime != b.Meta.ATime {
			return cmp.Compare(a.Meta.ATime, b.Meta.ATime)
		}
		return strings.Compare(a.Path, b.Path)
	})
	return dst
}

// staleMode selects the liveness and visibility rules of one
// appendStaleScan pass.
type staleMode int

const (
	// stalePrivate: a private FS; the shared record is the record.
	stalePrivate staleMode = iota
	// staleShared: a lane view scanning the group-shared index.
	// Compaction keeps entries live for the *shared* record (so the
	// amortized compaction work is done once for all lanes) and the
	// lane's dropped bit and overrides filter at emission time.
	staleShared
	// staleExtra: a lane view scanning its private override index.
	staleExtra
)

// appendStaleScan is the bucket scan behind AppendStaleFiles: walk the
// day buckets older than cutoff, validate entries against the tree
// (through the cached node pointer when it is still current), compact
// the bucket in place, and emit the visible stale prefix.
func (f *FS) appendStaleScan(dst []Candidate, ui *userIndex, u trace.UserID, cutoff timeutil.Time, mode staleMode) []Candidate {
	if ui == nil {
		return dst
	}
	for di := 0; di < len(ui.days); {
		day := ui.days[di]
		if day*daySeconds >= int64(cutoff) {
			break // this bucket and all later ones start at or after cutoff
		}
		bucket := ui.buckets[di]
		// Fast path for lane groups: a compacted bucket is still sorted
		// and deduplicated (appends clear the mark), so the scan skips
		// the rebuild and revalidates each entry with three compares
		// against the record it already points at. The radix tree keeps
		// a key's node object stable for the key's lifetime (tree.go),
		// so a cached node either still describes the entry's file or
		// fails these checks; stale entries self-heal by clearing the
		// mark, queueing the bucket for compaction at the next scan.
		if mode == staleShared && ui.compacted[di] {
			if ui.skip[di]&f.laneBit != 0 {
				di++ // exhausted for this lane: nothing here can yield again
				continue
			}
			split := sort.Search(len(bucket), func(i int) bool { return bucket[i].atime >= cutoff })
			mark := len(dst)
			for i := 0; i < split; i++ {
				e := &bucket[i]
				n := e.node
				rec := &n.value
				if !n.terminal || rec.meta.ATime != e.atime || rec.meta.User != u || rec.path != e.path {
					// Re-touched, chowned or deleted since compaction:
					// a tombstone. Skip it and schedule a compaction.
					ui.compacted[di] = false
					continue
				}
				if rec.dropped&f.laneBit != 0 {
					continue
				}
				m := rec.meta
				if rec.ovr&f.laneBit != 0 {
					o := f.overrides[e.path]
					if o.User != u {
						continue
					}
					m.User, m.Size, m.Stripes = o.User, o.Size, o.Stripes
				}
				dst = append(dst, Candidate{Path: e.path, Meta: m, node: n})
			}
			// A clean full scan (no tombstones, whole bucket below the
			// cutoff) that emitted nothing proves the bucket exhausted
			// for this lane: see the skip field invariant.
			if len(dst) == mark && split == len(bucket) && ui.compacted[di] {
				ui.skip[di] |= f.laneBit
			}
			di++
			continue
		}
		live := f.scratch[:0]
		for _, e := range bucket {
			n := e.node
			if n == nil || !n.terminal || n.value.path != e.path {
				// Stale node cache. A lane group resolves the entry's
				// interned path through its identity-keyed node map
				// first; a miss there (or a private FS) pays the tree
				// descent, keeping content semantics.
				if f.group != nil {
					n = f.group.byPtr[pathKey(e.path)]
				}
				if n == nil || !n.terminal || n.value.path != e.path {
					n = f.tree.findNode(e.path)
				}
				if n == nil || !n.terminal {
					continue
				}
			}
			rec := &n.value
			if rec.meta.ATime != e.atime {
				continue
			}
			switch mode {
			case stalePrivate, staleShared:
				if rec.meta.User != u {
					continue
				}
			case staleExtra:
				if rec.dropped&f.laneBit != 0 || rec.ovr&f.laneBit == 0 ||
					f.overrides[e.path].User != u {
					continue
				}
			}
			e.node = n
			live = append(live, liveEntry{e: e, meta: rec.meta})
		}
		if !liveSorted(live) {
			slices.SortFunc(live, func(a, b liveEntry) int {
				if a.e.atime != b.e.atime {
					return cmp.Compare(a.e.atime, b.e.atime)
				}
				return strings.Compare(a.e.path, b.e.path)
			})
		}
		// Drop duplicate entries (same path indexed twice at the same
		// atime, e.g. remove + re-insert): equal pairs are adjacent now.
		w := 0
		for i := range live {
			if i > 0 && live[i].e == live[i-1].e {
				continue
			}
			live[w] = live[i]
			w++
		}
		live = live[:w]
		f.scratch = live // retain grown capacity
		// Stale entries are a prefix: staleness depends only on atime.
		split := sort.Search(len(live), func(i int) bool { return live[i].e.atime >= cutoff })
		for i := 0; i < split; i++ {
			le := &live[i]
			m := le.meta
			switch mode {
			case staleShared:
				rec := &le.e.node.value
				if rec.dropped&f.laneBit != 0 {
					continue
				}
				if rec.ovr&f.laneBit != 0 {
					o := f.overrides[le.e.path]
					if o.User != u {
						continue
					}
					m.User, m.Size, m.Stripes = o.User, o.Size, o.Stripes
				}
			case staleExtra:
				o := f.overrides[le.e.path]
				m.User, m.Size, m.Stripes = o.User, o.Size, o.Stripes
			}
			dst = append(dst, Candidate{Path: le.e.path, Meta: m, node: le.e.node})
		}
		if len(live) == 0 {
			ui.days = append(ui.days[:di], ui.days[di+1:]...)
			ui.buckets = append(ui.buckets[:di], ui.buckets[di+1:]...)
			ui.compacted = append(ui.compacted[:di], ui.compacted[di+1:]...)
			ui.skip = append(ui.skip[:di], ui.skip[di+1:]...)
			continue // di now names the next day
		}
		bucket = bucket[:0]
		for i := range live {
			bucket = append(bucket, live[i].e)
		}
		ui.buckets[di] = bucket
		// Only group-shared buckets are marked: the fast path's
		// revalidation leans on the group's exact node bookkeeping and
		// the append/compaction discipline, which private indexes (and
		// the per-lane extra indexes) do not maintain.
		ui.compacted[di] = mode == staleShared
		di++
	}
	return dst
}

// liveSorted reports whether live is already in (atime, path) order —
// the common case for a bucket compacted once and appended to in
// replay time order, letting the compaction skip the sort.
func liveSorted(live []liveEntry) bool {
	for i := 1; i < len(live); i++ {
		if live[i].e.atime < live[i-1].e.atime ||
			(live[i].e.atime == live[i-1].e.atime && live[i].e.path < live[i-1].e.path) {
			return false
		}
	}
	return true
}

// Count returns the number of files.
func (f *FS) Count() int {
	if f.group != nil {
		return int(f.laneFiles)
	}
	return f.tree.size()
}

// TotalBytes returns the total stored bytes.
func (f *FS) TotalBytes() int64 { return f.bytes }

// UserBytes returns the bytes owned by u.
func (f *FS) UserBytes(u trace.UserID) int64 {
	if f.group != nil {
		if int(u) < len(f.dBytes) {
			return f.dBytes[u]
		}
		return 0
	}
	return f.userBytes[u]
}

// UserFiles returns the number of files owned by u.
func (f *FS) UserFiles(u trace.UserID) int64 {
	if f.group != nil {
		if int(u) < len(f.dFiles) {
			return f.dFiles[u]
		}
		return 0
	}
	return f.userFiles[u]
}

// Walk visits every file in lexicographic path order. fn returning
// false stops the walk early. Paths are the interned canonical
// strings, so a walk allocates nothing.
func (f *FS) Walk(fn func(path string, m FileMeta) bool) {
	f.walkFrom(f.tree.root, fn)
}

// walkFrom dispatches a subtree walk through the lane filter when f is
// a lane view.
func (f *FS) walkFrom(n *rnode[fileRecord], fn func(path string, m FileMeta) bool) bool {
	if f.group != nil {
		return f.laneWalkRecords(n, fn)
	}
	return walkRecords(n, fn)
}

// laneWalkRecords is walkRecords restricted to the files this lane
// holds, with override metadata substituted.
func (f *FS) laneWalkRecords(n *rnode[fileRecord], fn func(path string, m FileMeta) bool) bool {
	if n.terminal && n.value.dropped&f.laneBit == 0 {
		if !fn(n.value.path, f.laneMeta(&n.value)) {
			return false
		}
	}
	for _, c := range n.children {
		if !f.laneWalkRecords(c, fn) {
			return false
		}
	}
	return true
}

// WalkPrefix visits every file whose path starts with prefix, in
// lexicographic order.
func (f *FS) WalkPrefix(prefix string, fn func(path string, m FileMeta) bool) {
	n := f.tree.root
	rest := prefix
	for rest != "" {
		i, ok := n.childIndex(rest[0])
		if !ok {
			return
		}
		child := n.children[i]
		cp := commonPrefixLen(rest, child.label)
		if cp == len(rest) {
			f.walkFrom(child, fn)
			return
		}
		if cp < len(child.label) {
			return // diverged: nothing under prefix
		}
		rest = rest[cp:]
		n = child
	}
	f.walkFrom(n, fn)
}

// walkRecords visits terminal records in lexicographic order using
// their interned paths.
func walkRecords(n *rnode[fileRecord], fn func(path string, m FileMeta) bool) bool {
	if n.terminal {
		if !fn(n.value.path, n.value.meta) {
			return false
		}
	}
	for _, c := range n.children {
		if !walkRecords(c, fn) {
			return false
		}
	}
	return true
}

// FilesByUser buckets every path by owning user in one walk. Each
// bucket preserves lexicographic order. This is the legacy way a
// retention pass obtains per-user scan lists; the indexed path asks
// StaleFiles instead.
func (f *FS) FilesByUser() map[trace.UserID][]string {
	out := make(map[trace.UserID][]string)
	f.Walk(func(path string, m FileMeta) bool {
		out[m.User] = append(out[m.User], path)
		return true
	})
	return out
}

// Snapshot exports the current state as a metadata snapshot taken at
// the given time.
func (f *FS) Snapshot(taken timeutil.Time) *trace.Snapshot {
	s := &trace.Snapshot{Taken: taken}
	s.Entries = make([]trace.SnapshotEntry, 0, f.Count())
	f.Walk(func(path string, m FileMeta) bool {
		s.Entries = append(s.Entries, trace.SnapshotEntry{
			Path: path, User: m.User, Size: m.Size, Stripes: m.Stripes, ATime: m.ATime,
		})
		return true
	})
	return s
}

// Clone deep-copies the FS so FLT and ActiveDR can replay the same
// initial state independently. The tree is copied structurally (one
// allocation per node, labels and paths shared) and the candidate
// index is copied bucket by bucket. Cloning a lane view materializes
// it as a private FS holding exactly the lane's files and metadata.
func (f *FS) Clone() *FS {
	if f.group != nil {
		c := New()
		f.Walk(func(path string, m FileMeta) bool {
			_ = c.Insert(path, m) // paths/sizes already validated on entry
			return true
		})
		return c
	}
	c := &FS{
		tree:      f.tree.clone(),
		bytes:     f.bytes,
		userBytes: make(map[trace.UserID]int64, len(f.userBytes)),
		userFiles: make(map[trace.UserID]int64, len(f.userFiles)),
		index:     cloneIndex(f.index),
	}
	for u, b := range f.userBytes {
		c.userBytes[u] = b
	}
	for u, n := range f.userFiles {
		c.userFiles[u] = n
	}
	return c
}

// cloneIndex deep-copies a candidate index. Cached node pointers are
// dropped: they point into the source tree, not the copy's.
func cloneIndex(index map[trace.UserID]*userIndex) map[trace.UserID]*userIndex {
	out := make(map[trace.UserID]*userIndex, len(index))
	for u, ui := range index {
		cu := &userIndex{
			days:    append([]int64(nil), ui.days...),
			buckets: make([][]idxEntry, len(ui.buckets)),
			// Compaction marks and skip masks are never inherited: the
			// copy's node caches are dropped below, so every bucket
			// must revalidate from scratch.
			compacted: make([]bool, len(ui.days)),
			skip:      make([]uint64, len(ui.days)),
		}
		// All of a user's buckets share one backing array, capped per
		// bucket so a later append reallocates instead of overwriting
		// the neighbor: one allocation per user, not one per day.
		total := 0
		for _, b := range ui.buckets {
			total += len(b)
		}
		backing := make([]idxEntry, total)
		off := 0
		for i, b := range ui.buckets {
			seg := backing[off : off+len(b) : off+len(b)]
			for j := range b {
				seg[j] = idxEntry{path: b[j].path, atime: b[j].atime}
			}
			cu.buckets[i] = seg
			off += len(b)
		}
		out[u] = cu
	}
	return out
}

// TrackDirty begins recording the path of every subsequent mutation,
// the working set a delta checkpoint diffs against its base. Lane
// views track their own mutations (ApplyRun effects and Removes).
func (f *FS) TrackDirty() {
	if f.dirty == nil {
		f.dirty = make(map[string]struct{})
	}
}

// TakeDirty returns the paths mutated since tracking began or the
// last TakeDirty, sorted, and resets the set. Nil when tracking is
// off.
func (f *FS) TakeDirty() []string {
	if f.dirty == nil {
		return nil
	}
	out := make([]string, 0, len(f.dirty))
	for p := range f.dirty {
		out = append(out, p)
	}
	slices.Sort(out)
	clear(f.dirty)
	return out
}

// Stats summarizes the index footprint of the prefix tree — the
// memory-efficiency measure of the paper's Figure 12a.
type Stats struct {
	Files      int   // terminal nodes
	Nodes      int   // all tree nodes (compression quality indicator)
	LabelBytes int64 // bytes held in edge labels
}

// Stats walks the tree structure and reports its footprint.
func (f *FS) Stats() Stats {
	st := Stats{Files: f.Count()}
	var walk func(n *rnode[fileRecord])
	walk = func(n *rnode[fileRecord]) {
		st.Nodes++
		st.LabelBytes += int64(len(n.label))
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(f.tree.root)
	return st
}

// ReservedSet indexes purge-exempt paths. A reservation covers the
// exact path and, when the reserved path is a directory, its whole
// subtree (any stored prefix followed by '/').
type ReservedSet struct {
	tree *radix[struct{}]
}

// NewReservedSet returns an empty reservation index.
func NewReservedSet() *ReservedSet {
	return &ReservedSet{tree: newRadix[struct{}]()}
}

// Add reserves path (file or directory subtree).
func (r *ReservedSet) Add(path string) { r.tree.put(path, struct{}{}) }

// Len returns the number of reservations.
func (r *ReservedSet) Len() int { return r.tree.size() }

// Covers reports whether path is reserved, either exactly or via an
// ancestor directory reservation.
func (r *ReservedSet) Covers(path string) bool {
	if r == nil || r.tree.size() == 0 {
		return false
	}
	return r.tree.coveredBy(path)
}
