package vfs

import (
	"fmt"
	"unsafe"

	"activedr/internal/timeutil"
	"activedr/internal/trace"
)

// LaneGroup multiplexes up to 64 policy lanes over ONE shared prefix
// tree and ONE shared candidate index (DESIGN.md §13). Every lane
// replays the same access stream, so the expensive per-event work —
// tree descent, atime update, index maintenance — is done once, and a
// lane holds only its divergence from the shared state:
//
//   - fileRecord.dropped is an inverted hold mask: bit i set means
//     lane i purged the file. A fresh clone needs no initialization
//     (0 = everyone holds), and the record is deleted from the tree
//     when the last holder drops it.
//   - a lane that re-inserts a purged file on a miss whose metadata
//     differs from the shared record keeps a FileMeta override
//     (User/Size/Stripes only — the ATime of a held file is always
//     the shared record's, because every lane applies every touch).
//   - per-lane byte/file accounting maps back the unchanged
//     Users/UserBytes/UserFiles/TotalBytes surface.
//
// Lane views are *FS values, so retention policies run against them
// through the existing selection contract, unmodified. Lanes are
// mutated only via ApplyRun and Remove; Touch and Insert panic.
type LaneGroup struct {
	lanes   []*FS
	allMask uint64
	tree    *radix[fileRecord]
	index   map[trace.UserID]*userIndex
	// handles caches columnar path-id → terminal node, skipping the
	// tree descent for re-touched paths. Entries are invalidated via
	// fileRecord.pid1 when the record is deleted, and re-validated
	// against the record's interned path on use.
	handles []*rnode[fileRecord]
	// byPtr maps every live record's interned path — keyed by the
	// path string's data pointer, not its content — to its terminal
	// node. Purge removals and stale-scan validations always present
	// the record's own path string (candidate paths are aliases of
	// rec.path by construction), so an identity key buys the lookup
	// while hashing 8 bytes instead of the whole path. The map is a
	// cache, not the source of truth: a lookup whose caller holds an
	// equal-content string with different backing misses and falls
	// back to a tree descent, preserving content semantics exactly.
	byPtr map[*byte]*rnode[fileRecord]
}

// pathKey is the identity key of an interned path string.
func pathKey(s string) *byte { return unsafe.StringData(s) }

// RunEvent is one access applied by ApplyRun: a touch or create of a
// single path, in stream order.
type RunEvent struct {
	User   trace.UserID
	Size   int64
	TS     timeutil.Time
	Create bool
}

// NewLaneGroup clones base once and returns a group of n lane views
// over the copy. pathCap sizes the path-id handle table (the columnar
// feed's interned path count); it grows on demand if exceeded.
func NewLaneGroup(base *FS, n, pathCap int) (*LaneGroup, error) {
	if n < 1 || n > 64 {
		return nil, fmt.Errorf("vfs: lane count %d out of range [1,64]", n)
	}
	if base.group != nil {
		return nil, fmt.Errorf("vfs: cannot build a lane group over a lane view")
	}
	if pathCap < 0 {
		pathCap = 0
	}
	g := &LaneGroup{
		lanes:   make([]*FS, n),
		tree:    base.tree.clone(),
		index:   cloneIndex(base.index),
		handles: make([]*rnode[fileRecord], pathCap),
	}
	g.byPtr = make(map[*byte]*rnode[fileRecord], base.tree.size())
	var fill func(n *rnode[fileRecord])
	fill = func(n *rnode[fileRecord]) {
		if n.terminal {
			g.byPtr[pathKey(n.value.path)] = n
		}
		for _, c := range n.children {
			fill(c)
		}
	}
	fill(g.tree.root)
	if n == 64 {
		g.allMask = ^uint64(0)
	} else {
		g.allMask = uint64(1)<<uint(n) - 1
	}
	files := int64(base.tree.size())
	// Lane accounting is dense by UserID (trace loaders assign dense
	// non-negative ids); size every lane to the base population once.
	maxU := trace.UserID(-1)
	for u := range base.userFiles {
		if u > maxU {
			maxU = u
		}
	}
	for i := range g.lanes {
		lf := &FS{
			tree:      g.tree,
			bytes:     base.bytes,
			dBytes:    make([]int64, maxU+1),
			dFiles:    make([]int64, maxU+1),
			index:     g.index,
			group:     g,
			laneBit:   uint64(1) << uint(i),
			laneFiles: files,
		}
		for u, b := range base.userBytes {
			lf.dBytes[u] = b
		}
		for u, c := range base.userFiles {
			lf.dFiles[u] = c
		}
		g.lanes[i] = lf
	}
	return g, nil
}

// Lanes returns the lane count.
func (g *LaneGroup) Lanes() int { return len(g.lanes) }

// Lane returns lane i's FS view.
func (g *LaneGroup) Lane(i int) *FS { return g.lanes[i] }

// laneMeta resolves the metadata lane f sees for a held record.
func (f *FS) laneMeta(rec *fileRecord) FileMeta {
	m := rec.meta
	if rec.ovr&f.laneBit != 0 {
		if o, ok := f.overrides[rec.path]; ok {
			m.User, m.Size, m.Stripes = o.User, o.Size, o.Stripes
		}
	}
	return m
}

// acctAdd and acctSub maintain a lane's dense per-user accounting.
// Only lane views call them; private FS values account through their
// maps in Insert/Remove.
func (f *FS) acctAdd(m FileMeta) {
	f.bytes += m.Size
	if int(m.User) >= len(f.dBytes) {
		f.acctGrow(m.User)
	}
	f.dBytes[m.User] += m.Size
	f.dFiles[m.User]++
}

func (f *FS) acctSub(m FileMeta) {
	// No grow: a removal is always preceded by the add that grew the
	// slices past m.User.
	f.bytes -= m.Size
	f.dBytes[m.User] -= m.Size
	f.dFiles[m.User]--
}

// acctGrow extends the dense accounting to cover user u, for events
// that introduce a user unseen at group creation.
func (f *FS) acctGrow(u trace.UserID) {
	nb := make([]int64, int(u)+1)
	copy(nb, f.dBytes)
	f.dBytes = nb
	nf := make([]int64, int(u)+1)
	copy(nf, f.dFiles)
	f.dFiles = nf
}

// laneResolve finds the live node for path: identity probe on the
// interned-path map first, content lookup as the fallback.
func (f *FS) laneResolve(path string) *rnode[fileRecord] {
	if n := f.group.byPtr[pathKey(path)]; n != nil {
		return n
	}
	// Equal content under different backing (or a genuinely absent
	// path): resolve by content.
	return f.group.tree.findNode(path)
}

// laneRemoveNode drops this lane's copy of the file at n (resolved
// from path). The shared record stays for the remaining holders and
// is deleted with the last one.
func (f *FS) laneRemoveNode(n *rnode[fileRecord], path string) (FileMeta, bool) {
	g := f.group
	if n == nil || !n.terminal {
		return FileMeta{}, false
	}
	rec := &n.value
	if rec.dropped&f.laneBit != 0 {
		return FileMeta{}, false
	}
	m := f.laneMeta(rec)
	f.acctSub(m)
	f.laneFiles--
	if rec.ovr&f.laneBit != 0 {
		delete(f.overrides, rec.path)
		rec.ovr &^= f.laneBit
	}
	rec.dropped |= f.laneBit
	if f.dirty != nil {
		f.dirty[rec.path] = struct{}{}
	}
	f.probe.Removes.Inc()
	if rec.dropped == g.allMask {
		if rec.pid1 > 0 && int(rec.pid1) <= len(g.handles) {
			g.handles[rec.pid1-1] = nil
		}
		delete(g.byPtr, pathKey(rec.path))
		g.tree.delete(path)
	}
	return m, true
}

// ApplyRun applies one (day, path) run of events to every lane at
// once: the tree descent, shared atime updates and candidate-index
// maintenance happen once, while per-lane effects reduce to bit
// operations, probe counters and (rarely) override bookkeeping.
// missMask reports which lanes missed (did not hold the file at the
// run's first non-create event) and re-inserted it. pid is the
// caller's interned id for path, keying the node handle cache.
//
// Within a run, an event after the first can never miss: a miss or a
// create re-materializes the file for every lane, and lane removals
// only happen at purge triggers, which are batch boundaries.
func (g *LaneGroup) ApplyRun(pid int32, path string, evs []RunEvent) (missMask uint64) {
	if len(evs) == 0 {
		return 0
	}
	if int(pid) >= len(g.handles) {
		grown := make([]*rnode[fileRecord], int(pid)+1)
		copy(grown, g.handles)
		g.handles = grown
	}
	var n *rnode[fileRecord]
	if h := g.handles[pid]; h != nil && h.terminal && h.value.path == path {
		n = h
	} else if n = g.byPtr[pathKey(path)]; n == nil {
		// A pre-existing file's first touch presents the feed-interned
		// path, whose backing differs from the snapshot-interned
		// rec.path: one descent resolves it, and the handle table
		// carries it from here.
		n = g.tree.findNode(path)
	}
	lanes := g.lanes

	// Fast path: every lane holds the file with shared metadata and
	// the run creates nothing — a pure touch for all lanes.
	if n != nil && n.value.dropped == 0 && n.value.ovr == 0 {
		pure := true
		for i := range evs {
			if evs[i].Create {
				pure = false
				break
			}
		}
		if pure {
			rec := &n.value
			last := evs[len(evs)-1].TS
			for _, lf := range lanes {
				lf.probe.Touches.Add(int64(len(evs)))
				if lf.dirty != nil {
					lf.dirty[rec.path] = struct{}{}
				}
			}
			if last != rec.meta.ATime {
				rec.meta.ATime = last
				lanes[0].indexAdd(rec.meta.User, rec.path, last, n)
			}
			rec.pid1 = pid + 1
			g.handles[pid] = n
			return 0
		}
	}

	existed0 := n != nil
	var owner0 trace.UserID
	var atime0 timeutil.Time
	if existed0 {
		owner0, atime0 = n.value.meta.User, n.value.meta.ATime
	}
	var newOvr uint64
	for ei := range evs {
		ev := &evs[ei]
		m := FileMeta{User: ev.User, Size: ev.Size, Stripes: 1, ATime: ev.TS}
		switch {
		case ev.Create:
			if n == nil {
				n, _, _ = g.tree.put(path, fileRecord{meta: m, path: path})
				g.byPtr[pathKey(n.value.path)] = n
				for _, lf := range lanes {
					lf.acctAdd(m)
					lf.laneFiles++
					lf.probe.Inserts.Inc()
				}
			} else {
				rec := &n.value
				for _, lf := range lanes {
					if rec.dropped&lf.laneBit == 0 {
						lf.acctSub(lf.laneMeta(rec))
					} else {
						lf.laneFiles++
					}
					lf.acctAdd(m)
					lf.probe.Inserts.Inc()
				}
				if rec.ovr != 0 {
					for _, lf := range lanes {
						if rec.ovr&lf.laneBit != 0 {
							delete(lf.overrides, rec.path)
						}
					}
					rec.ovr = 0
					newOvr = 0
				}
				rec.dropped = 0
				rec.meta = m
			}
		case ei == 0:
			if n == nil {
				// No lane holds the file: everyone misses.
				missMask = g.allMask
				n, _, _ = g.tree.put(path, fileRecord{meta: m, path: path})
				g.byPtr[pathKey(n.value.path)] = n
				for _, lf := range lanes {
					lf.probe.TouchMisses.Inc()
					lf.probe.Inserts.Inc()
					lf.acctAdd(m)
					lf.laneFiles++
				}
			} else {
				rec := &n.value
				for _, lf := range lanes {
					if rec.dropped&lf.laneBit == 0 {
						lf.probe.Touches.Inc()
						continue
					}
					// This lane purged the file: miss + re-insert
					// with the event's metadata, diverging from the
					// shared record when they differ.
					missMask |= lf.laneBit
					rec.dropped &^= lf.laneBit
					lf.probe.TouchMisses.Inc()
					lf.probe.Inserts.Inc()
					lf.acctAdd(m)
					lf.laneFiles++
					if m.User != rec.meta.User || m.Size != rec.meta.Size || rec.meta.Stripes != 1 {
						if lf.overrides == nil {
							lf.overrides = make(map[string]FileMeta)
						}
						lf.overrides[rec.path] = m
						rec.ovr |= lf.laneBit
						newOvr |= lf.laneBit
					}
				}
				rec.meta.ATime = ev.TS
			}
		default:
			for _, lf := range lanes {
				lf.probe.Touches.Inc()
			}
			n.value.meta.ATime = ev.TS
		}
	}
	rec := &n.value
	atimeChanged := !existed0 || rec.meta.ATime != atime0
	if atimeChanged || rec.meta.User != owner0 {
		lanes[0].indexAdd(rec.meta.User, rec.path, rec.meta.ATime, n)
	}
	if rec.ovr != 0 {
		for _, lf := range lanes {
			if rec.ovr&lf.laneBit == 0 {
				continue
			}
			if !atimeChanged && newOvr&lf.laneBit == 0 {
				continue // the existing override entry is still live
			}
			if o := lf.overrides[rec.path]; o.User != rec.meta.User {
				if lf.extra == nil {
					lf.extra = make(map[trace.UserID]*userIndex)
				}
				indexAddTo(lf.extra, o.User, rec.path, rec.meta.ATime, n)
			}
		}
	}
	rec.pid1 = pid + 1
	g.handles[pid] = n
	for _, lf := range lanes {
		if lf.dirty != nil {
			lf.dirty[rec.path] = struct{}{}
		}
	}
	return missMask
}
