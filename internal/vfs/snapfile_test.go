package vfs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"activedr/internal/timeutil"
	"activedr/internal/trace"
)

// snapFixture builds a deterministic snapshot with users spread over
// several prefixes and atimes spread over several days, entries
// sorted by path (the canonical snapshot order).
func snapFixture(nUsers, filesPer int) *trace.Snapshot {
	rng := rand.New(rand.NewSource(0x5eed))
	s := &trace.Snapshot{Taken: timeutil.Time(200 * 86400)}
	for u := 0; u < nUsers; u++ {
		for i := 0; i < filesPer; i++ {
			s.Entries = append(s.Entries, trace.SnapshotEntry{
				Path:    fmt.Sprintf("/lustre/atlas/u%05d/proj%d/out%04d.dat", u, i%3, i),
				User:    trace.UserID(u),
				Size:    int64(rng.Intn(1 << 20)),
				Stripes: 1 + rng.Intn(4),
				ATime:   timeutil.Time(int64(rng.Intn(180)) * 86400),
			})
		}
	}
	sortSnapshotEntries(s)
	return s
}

func sortSnapshotEntries(s *trace.Snapshot) {
	es := s.Entries
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j].Path < es[j-1].Path; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

func writeFixture(t *testing.T, s *trace.Snapshot) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "snap.advfs")
	if err := WriteSnapfileFromSnapshot(path, s); err != nil {
		t.Fatalf("WriteSnapfileFromSnapshot: %v", err)
	}
	return path
}

func TestSnapfileRoundTrip(t *testing.T) {
	s := snapFixture(7, 11)
	path := writeFixture(t, s)
	for _, paged := range []bool{false, true} {
		sf, err := OpenSnapfileWith(path, SnapfileOpenOptions{PagedReads: paged})
		if err != nil {
			t.Fatalf("open (paged=%v): %v", paged, err)
		}
		if sf.Taken() != s.Taken {
			t.Fatalf("taken = %d, want %d", sf.Taken(), s.Taken)
		}
		if sf.Count() != len(s.Entries) {
			t.Fatalf("count = %d, want %d", sf.Count(), len(s.Entries))
		}
		for i, e := range s.Entries {
			p, m, err := sf.Entry(i)
			if err != nil {
				t.Fatalf("entry %d: %v", i, err)
			}
			if p != e.Path || m.User != e.User || m.Size != e.Size || m.Stripes != e.Stripes || m.ATime != e.ATime {
				t.Fatalf("entry %d = %q %+v, want %q", i, p, m, e.Path)
			}
			got, ok, err := sf.Lookup(e.Path)
			if err != nil || !ok || got != m {
				t.Fatalf("lookup %q = %+v %v %v", e.Path, got, ok, err)
			}
		}
		if _, ok, err := sf.Lookup("/lustre/atlas/nosuch/file"); ok || err != nil {
			t.Fatalf("lookup miss: ok=%v err=%v", ok, err)
		}
		if err := sf.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
}

// TestSnapfileLoadEquivalence proves the eager loader reconstructs
// exactly the state FromSnapshot builds from the same entries: tree
// contents, accounting, and — via StaleFiles — the candidate index.
func TestSnapfileLoadEquivalence(t *testing.T) {
	s := snapFixture(9, 13)
	path := writeFixture(t, s)
	want, err := FromSnapshot(s)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := OpenSnapfile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	got, err := LoadSnapfileFS(sf)
	if err != nil {
		t.Fatalf("LoadSnapfileFS: %v", err)
	}
	requireSameNamespace(t, want, got, s.Taken)
}

// requireSameNamespace compares two namespaces for observable
// equality: snapshot walk, totals, per-user accounting, and stale
// scans at several cutoffs (exercising index order).
func requireSameNamespace(t *testing.T, want, got Namespace, taken timeutil.Time) {
	t.Helper()
	ws, gs := want.Snapshot(taken), got.Snapshot(taken)
	if len(ws.Entries) != len(gs.Entries) {
		t.Fatalf("entry count %d vs %d", len(gs.Entries), len(ws.Entries))
	}
	for i := range ws.Entries {
		if ws.Entries[i] != gs.Entries[i] {
			t.Fatalf("entry %d: got %+v want %+v", i, gs.Entries[i], ws.Entries[i])
		}
	}
	if want.Count() != got.Count() || want.TotalBytes() != got.TotalBytes() {
		t.Fatalf("count/bytes mismatch: %d/%d vs %d/%d", got.Count(), got.TotalBytes(), want.Count(), want.TotalBytes())
	}
	wu, gu := want.Users(), got.Users()
	if len(wu) != len(gu) {
		t.Fatalf("users %v vs %v", gu, wu)
	}
	for i := range wu {
		if wu[i] != gu[i] {
			t.Fatalf("users %v vs %v", gu, wu)
		}
		u := wu[i]
		if want.UserBytes(u) != got.UserBytes(u) || want.UserFiles(u) != got.UserFiles(u) {
			t.Fatalf("user %d accounting mismatch", u)
		}
		for _, cutoff := range []timeutil.Time{0, timeutil.Time(30 * 86400), timeutil.Time(90 * 86400), taken} {
			wc := want.StaleFiles(u, cutoff)
			gc := got.StaleFiles(u, cutoff)
			if len(wc) != len(gc) {
				t.Fatalf("user %d cutoff %d: %d vs %d candidates", u, cutoff, len(gc), len(wc))
			}
			for j := range wc {
				if wc[j].Path != gc[j].Path || wc[j].Meta != gc[j].Meta {
					t.Fatalf("user %d cutoff %d candidate %d: %+v vs %+v", u, cutoff, j, gc[j], wc[j])
				}
			}
		}
	}
}

// TestSnapfileWriteIsDeterministic proves write → load → write
// produces a byte-identical file, so snapfiles can be diffed and
// content-addressed.
func TestSnapfileWriteIsDeterministic(t *testing.T) {
	s := snapFixture(5, 9)
	p1 := writeFixture(t, s)
	sf, err := OpenSnapfile(p1)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := LoadSnapfileFS(sf)
	if err != nil {
		t.Fatal(err)
	}
	if err := sf.Close(); err != nil {
		t.Fatal(err)
	}
	p2 := filepath.Join(t.TempDir(), "snap2.advfs")
	if err := WriteSnapfile(p2, fs, s.Taken); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("rewrite differs: %d vs %d bytes", len(b1), len(b2))
	}
}

// TestSnapfileTruncateEveryByte cuts the file at every possible
// length and requires a typed error — never a panic, never a
// successful open of a strict prefix.
func TestSnapfileTruncateEveryByte(t *testing.T) {
	s := snapFixture(3, 5)
	full, err := os.ReadFile(writeFixture(t, s))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	target := filepath.Join(dir, "trunc.advfs")
	for n := 0; n < len(full); n++ {
		if err := os.WriteFile(target, full[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		sf, err := OpenSnapfile(target)
		if err == nil {
			sf.Close()
			t.Fatalf("open succeeded at %d of %d bytes", n, len(full))
		}
		if !errors.Is(err, ErrCorruptSnapfile) {
			t.Fatalf("truncation at %d: error %v does not wrap ErrCorruptSnapfile", n, err)
		}
	}
}

// TestSnapfileCorruptionDetected flips bytes through the body and
// requires the eager loader's CRC pass to reject each mutation (a
// flip may also trip a structural check first; either way the error
// must be typed).
func TestSnapfileCorruptionDetected(t *testing.T) {
	s := snapFixture(3, 5)
	full, err := os.ReadFile(writeFixture(t, s))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	target := filepath.Join(dir, "flip.advfs")
	// Every byte from the end of the header on; stepping 1 keeps the
	// test O(file²) small with the tiny fixture.
	for off := snapHdrSize; off < len(full); off++ {
		mut := append([]byte(nil), full...)
		mut[off] ^= 0x41
		if err := os.WriteFile(target, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		sf, err := OpenSnapfile(target)
		if err != nil {
			if !errors.Is(err, ErrCorruptSnapfile) {
				t.Fatalf("flip at %d: open error %v not typed", off, err)
			}
			continue
		}
		_, lerr := LoadSnapfileFS(sf)
		sf.Close()
		if lerr == nil {
			t.Fatalf("flip at %d: load succeeded", off)
		}
		if !errors.Is(lerr, ErrCorruptSnapfile) {
			t.Fatalf("flip at %d: load error %v not typed", off, lerr)
		}
	}
}

func TestSnapfileEmpty(t *testing.T) {
	s := &trace.Snapshot{Taken: timeutil.Time(42)}
	path := writeFixture(t, s)
	sf, err := OpenSnapfile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	if sf.Count() != 0 || sf.Taken() != timeutil.Time(42) {
		t.Fatalf("count=%d taken=%d", sf.Count(), sf.Taken())
	}
	if _, ok, err := sf.Lookup("/a"); ok || err != nil {
		t.Fatalf("lookup on empty: %v %v", ok, err)
	}
	fs, err := LoadSnapfileFS(sf)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Count() != 0 {
		t.Fatalf("loaded count = %d", fs.Count())
	}
}

func TestSnapfileWriterValidation(t *testing.T) {
	dir := t.TempDir()
	w, err := NewSnapfileWriter(filepath.Join(dir, "v.advfs"), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	if err := w.Add("relative/path", FileMeta{}); err == nil {
		t.Fatal("relative path accepted")
	}
	if err := w.Add("/b", FileMeta{Size: -1}); err == nil {
		t.Fatal("negative size accepted")
	}
	if err := w.Add("/b", FileMeta{}); err != nil {
		t.Fatal(err)
	}
	if err := w.Add("/a", FileMeta{}); err == nil {
		t.Fatal("descending path accepted")
	}
	if err := w.Add("/b", FileMeta{}); err == nil {
		t.Fatal("duplicate path accepted")
	}
}

// FuzzOpenSnapfile drives arbitrary bytes through the full decode
// surface: open, random access, and the eager loader. Any failure
// must surface as an error wrapping ErrCorruptSnapfile — never a
// panic, never an out-of-bounds read.
func FuzzOpenSnapfile(f *testing.F) {
	s := snapFixture(2, 4)
	dir := f.TempDir()
	seedPath := filepath.Join(dir, "seed.advfs")
	if err := WriteSnapfileFromSnapshot(seedPath, s); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:snapHdrSize])
	mut := append([]byte(nil), valid...)
	mut[60] ^= 0xff // first section offset
	f.Add(mut)
	mut2 := append([]byte(nil), valid...)
	mut2[snapHdrSize+3] ^= 0x10 // segment table
	f.Add(mut2)
	f.Add([]byte(snapMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		target := filepath.Join(t.TempDir(), "fuzz.advfs")
		if err := os.WriteFile(target, data, 0o644); err != nil {
			t.Skip()
		}
		for _, paged := range []bool{false, true} {
			sf, err := OpenSnapfileWith(target, SnapfileOpenOptions{PagedReads: paged})
			if err != nil {
				if !errors.Is(err, ErrCorruptSnapfile) {
					t.Fatalf("open error %v not typed", err)
				}
				continue
			}
			n := sf.Count()
			if n > 64 {
				n = 64
			}
			for i := 0; i < n; i++ {
				if _, _, err := sf.Entry(i); err != nil && !errors.Is(err, ErrCorruptSnapfile) {
					t.Fatalf("entry error %v not typed", err)
				}
			}
			if _, _, err := sf.Lookup("/lustre/atlas/u00000/proj0/out0000.dat"); err != nil && !errors.Is(err, ErrCorruptSnapfile) {
				t.Fatalf("lookup error %v not typed", err)
			}
			if _, err := LoadSnapfileFS(sf); err != nil && !errors.Is(err, ErrCorruptSnapfile) {
				t.Fatalf("load error %v not typed", err)
			}
			sf.Close()
		}
	})
}
