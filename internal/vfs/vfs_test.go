package vfs

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"activedr/internal/randx"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
)

var t0 = timeutil.Date(2016, time.January, 1)

func meta(u trace.UserID, size int64) FileMeta {
	return FileMeta{User: u, Size: size, Stripes: 1, ATime: t0}
}

func TestInsertLookupRemove(t *testing.T) {
	fs := New()
	paths := []string{
		"/lustre/atlas/u000/a.dat",
		"/lustre/atlas/u000/a.dat.idx",
		"/lustre/atlas/u000/ab.dat",
		"/lustre/atlas/u001/a.dat",
		"/lustre/atlas2/u000/a.dat",
	}
	for i, p := range paths {
		if err := fs.Insert(p, meta(trace.UserID(i%2), int64(100*(i+1)))); err != nil {
			t.Fatal(err)
		}
	}
	if fs.Count() != len(paths) {
		t.Fatalf("Count = %d, want %d", fs.Count(), len(paths))
	}
	for i, p := range paths {
		m, ok := fs.Lookup(p)
		if !ok {
			t.Fatalf("Lookup(%q) missing", p)
		}
		if m.Size != int64(100*(i+1)) {
			t.Fatalf("Lookup(%q).Size = %d", p, m.Size)
		}
	}
	if fs.Contains("/lustre/atlas/u000/a") {
		t.Error("prefix of a stored path must not be a file")
	}
	if fs.Contains("/lustre/atlas/u000/a.dat.idx.extra") {
		t.Error("extension of a stored path must not be a file")
	}
	m, ok := fs.Remove("/lustre/atlas/u000/a.dat")
	if !ok || m.Size != 100 {
		t.Fatalf("Remove returned %+v, %v", m, ok)
	}
	if fs.Contains("/lustre/atlas/u000/a.dat") {
		t.Error("removed path still present")
	}
	if !fs.Contains("/lustre/atlas/u000/a.dat.idx") {
		t.Error("sibling lost after removal")
	}
	if _, ok := fs.Remove("/lustre/atlas/u000/a.dat"); ok {
		t.Error("double remove succeeded")
	}
}

func TestInsertValidation(t *testing.T) {
	fs := New()
	if err := fs.Insert("relative/path", meta(0, 1)); err == nil {
		t.Error("relative path accepted")
	}
	if err := fs.Insert("", meta(0, 1)); err == nil {
		t.Error("empty path accepted")
	}
	if err := fs.Insert("/x", FileMeta{Size: -5}); err == nil {
		t.Error("negative size accepted")
	}
}

func TestReplaceAdjustsAccounting(t *testing.T) {
	fs := New()
	fs.Insert("/a/b", meta(1, 100))
	fs.Insert("/a/b", meta(2, 250))
	if fs.Count() != 1 {
		t.Fatalf("Count = %d, want 1", fs.Count())
	}
	if fs.TotalBytes() != 250 {
		t.Fatalf("TotalBytes = %d, want 250", fs.TotalBytes())
	}
	if fs.UserBytes(1) != 0 || fs.UserFiles(1) != 0 {
		t.Error("old owner accounting not released")
	}
	if fs.UserBytes(2) != 250 || fs.UserFiles(2) != 1 {
		t.Error("new owner accounting wrong")
	}
}

func TestTouch(t *testing.T) {
	fs := New()
	fs.Insert("/a/b", meta(0, 1))
	later := t0.Add(timeutil.Days(5))
	if !fs.Touch("/a/b", later) {
		t.Fatal("Touch of existing file failed")
	}
	m, _ := fs.Lookup("/a/b")
	if m.ATime != later {
		t.Fatalf("ATime = %v, want %v", m.ATime, later)
	}
	if fs.Touch("/a/zzz", later) {
		t.Error("Touch of missing file succeeded")
	}
	if fs.Touch("/a", later) {
		t.Error("Touch of non-terminal node succeeded")
	}
}

func TestWalkLexicographic(t *testing.T) {
	fs := New()
	paths := []string{"/z", "/a/2", "/a/10", "/a/1", "/b", "/a/1x"}
	for _, p := range paths {
		fs.Insert(p, meta(0, 1))
	}
	var got []string
	fs.Walk(func(p string, _ FileMeta) bool {
		got = append(got, p)
		return true
	})
	want := append([]string(nil), paths...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("Walk yielded %d paths, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Walk order: got %v, want %v", got, want)
		}
	}
}

func TestWalkEarlyStop(t *testing.T) {
	fs := New()
	for i := 0; i < 10; i++ {
		fs.Insert(fmt.Sprintf("/f/%02d", i), meta(0, 1))
	}
	n := 0
	fs.Walk(func(string, FileMeta) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop visited %d, want 3", n)
	}
}

func TestWalkPrefix(t *testing.T) {
	fs := New()
	fs.Insert("/u/alice/a", meta(0, 1))
	fs.Insert("/u/alice/b", meta(0, 1))
	fs.Insert("/u/alicia/c", meta(1, 1))
	fs.Insert("/u/bob/d", meta(2, 1))
	var got []string
	fs.WalkPrefix("/u/alice/", func(p string, _ FileMeta) bool {
		got = append(got, p)
		return true
	})
	if len(got) != 2 || got[0] != "/u/alice/a" || got[1] != "/u/alice/b" {
		t.Fatalf("WalkPrefix = %v", got)
	}
	// Prefix ending mid-edge still works.
	got = nil
	fs.WalkPrefix("/u/alici", func(p string, _ FileMeta) bool {
		got = append(got, p)
		return true
	})
	if len(got) != 1 || got[0] != "/u/alicia/c" {
		t.Fatalf("mid-edge WalkPrefix = %v", got)
	}
	// Missing prefix yields nothing.
	got = nil
	fs.WalkPrefix("/nope", func(p string, _ FileMeta) bool {
		got = append(got, p)
		return true
	})
	if len(got) != 0 {
		t.Fatalf("missing prefix yielded %v", got)
	}
}

func TestFilesByUser(t *testing.T) {
	fs := New()
	fs.Insert("/u/a/1", meta(0, 1))
	fs.Insert("/u/b/2", meta(1, 1))
	fs.Insert("/u/a/3", meta(0, 1))
	buckets := fs.FilesByUser()
	if len(buckets) != 2 {
		t.Fatalf("buckets = %d users", len(buckets))
	}
	if len(buckets[0]) != 2 || buckets[0][0] != "/u/a/1" || buckets[0][1] != "/u/a/3" {
		t.Fatalf("user 0 bucket = %v", buckets[0])
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	fs := New()
	fs.Insert("/u/a/1", FileMeta{User: 0, Size: 10, Stripes: 4, ATime: t0})
	fs.Insert("/u/b/2", FileMeta{User: 1, Size: 20, Stripes: 1, ATime: t0.Add(timeutil.Days(1))})
	snap := fs.Snapshot(t0.Add(timeutil.Days(2)))
	if snap.Taken != t0.Add(timeutil.Days(2)) || len(snap.Entries) != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	fs2, err := FromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if fs2.Count() != 2 || fs2.TotalBytes() != 30 {
		t.Fatalf("restored fs: count=%d bytes=%d", fs2.Count(), fs2.TotalBytes())
	}
	m, ok := fs2.Lookup("/u/b/2")
	if !ok || m.Stripes != 1 || m.Size != 20 {
		t.Fatalf("restored meta = %+v, %v", m, ok)
	}
}

func TestClone(t *testing.T) {
	fs := New()
	fs.Insert("/u/a/1", meta(0, 10))
	fs.Insert("/u/b/2", meta(1, 20))
	c := fs.Clone()
	c.Remove("/u/a/1")
	c.Insert("/u/c/3", meta(2, 5))
	if !fs.Contains("/u/a/1") || fs.Contains("/u/c/3") {
		t.Error("clone mutation leaked into original")
	}
	if fs.TotalBytes() != 30 || c.TotalBytes() != 25 {
		t.Errorf("bytes: orig=%d clone=%d", fs.TotalBytes(), c.TotalBytes())
	}
}

func TestReservedSet(t *testing.T) {
	r := NewReservedSet()
	if r.Covers("/anything") {
		t.Error("empty set covers a path")
	}
	r.Add("/u/a/keep.dat")
	r.Add("/u/b/dir")
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	cases := []struct {
		path string
		want bool
	}{
		{"/u/a/keep.dat", true},          // exact
		{"/u/a/keep.dat2", false},        // sibling with extension
		{"/u/a/keep.da", false},          // shorter
		{"/u/b/dir", true},               // exact dir
		{"/u/b/dir/file", true},          // inside dir
		{"/u/b/dir/sub/deep/file", true}, // deep inside dir
		{"/u/b/directory", false},        // prefix but not path-component
		{"/u/c/other", false},            // unrelated
	}
	for _, c := range cases {
		if got := r.Covers(c.path); got != c.want {
			t.Errorf("Covers(%q) = %v, want %v", c.path, got, c.want)
		}
	}
	var nilSet *ReservedSet
	if nilSet.Covers("/x") {
		t.Error("nil set covers a path")
	}
}

// TestAgainstModel drives a long randomized operation sequence against
// a map-based reference model.
func TestAgainstModel(t *testing.T) {
	src := randx.New(1234)
	fs := New()
	model := make(map[string]FileMeta)
	pathPool := make([]string, 400)
	for i := range pathPool {
		pathPool[i] = fmt.Sprintf("/lustre/atlas/u%03d/proj%d/run%02d/file%04d.h5",
			src.Intn(20), src.Intn(3), src.Intn(5), src.Intn(200))
	}
	for step := 0; step < 20000; step++ {
		p := pathPool[src.Intn(len(pathPool))]
		switch src.Intn(4) {
		case 0: // insert/replace
			m := FileMeta{User: trace.UserID(src.Intn(20)), Size: int64(src.Intn(1000)), ATime: t0.Add(timeutil.Duration(src.Intn(1000)))}
			if err := fs.Insert(p, m); err != nil {
				t.Fatal(err)
			}
			model[p] = m
		case 1: // remove
			gotM, gotOK := fs.Remove(p)
			wantM, wantOK := model[p]
			if gotOK != wantOK || (gotOK && gotM != wantM) {
				t.Fatalf("step %d: Remove(%q) = %+v,%v want %+v,%v", step, p, gotM, gotOK, wantM, wantOK)
			}
			delete(model, p)
		case 2: // lookup
			gotM, gotOK := fs.Lookup(p)
			wantM, wantOK := model[p]
			if gotOK != wantOK || (gotOK && gotM != wantM) {
				t.Fatalf("step %d: Lookup(%q) mismatch", step, p)
			}
		case 3: // touch
			at := t0.Add(timeutil.Duration(step))
			got := fs.Touch(p, at)
			_, want := model[p]
			if got != want {
				t.Fatalf("step %d: Touch(%q) = %v want %v", step, p, got, want)
			}
			if want {
				m := model[p]
				m.ATime = at
				model[p] = m
			}
		}
	}
	// Final state equivalence.
	if fs.Count() != len(model) {
		t.Fatalf("Count = %d, model = %d", fs.Count(), len(model))
	}
	var wantBytes int64
	userBytes := make(map[trace.UserID]int64)
	for _, m := range model {
		wantBytes += m.Size
		userBytes[m.User] += m.Size
	}
	if fs.TotalBytes() != wantBytes {
		t.Fatalf("TotalBytes = %d, want %d", fs.TotalBytes(), wantBytes)
	}
	for u, b := range userBytes {
		if fs.UserBytes(u) != b {
			t.Fatalf("UserBytes(%d) = %d, want %d", u, fs.UserBytes(u), b)
		}
	}
	seen := 0
	prev := ""
	fs.Walk(func(p string, m FileMeta) bool {
		if p <= prev && seen > 0 {
			t.Fatalf("Walk order violated: %q after %q", p, prev)
		}
		prev = p
		if wm, ok := model[p]; !ok || wm != m {
			t.Fatalf("Walk yielded unexpected %q", p)
		}
		seen++
		return true
	})
	if seen != len(model) {
		t.Fatalf("Walk visited %d, want %d", seen, len(model))
	}
}

// Property: insert-then-lookup returns the stored value, and
// insert-then-remove restores non-membership.
func TestInsertRemoveProperty(t *testing.T) {
	f := func(segs [3]uint8, size uint16) bool {
		p := fmt.Sprintf("/q/%d/%d/%d", segs[0], segs[1], segs[2])
		fs := New()
		m := FileMeta{User: 1, Size: int64(size), ATime: t0}
		if err := fs.Insert(p, m); err != nil {
			return false
		}
		got, ok := fs.Lookup(p)
		if !ok || got != m {
			return false
		}
		if _, ok := fs.Remove(p); !ok {
			return false
		}
		return !fs.Contains(p) && fs.Count() == 0 && fs.TotalBytes() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	fs := New()
	if st := fs.Stats(); st.Files != 0 || st.Nodes != 1 {
		t.Fatalf("empty stats = %+v", st)
	}
	fs.Insert("/lustre/atlas/u1/a", meta(0, 1))
	fs.Insert("/lustre/atlas/u1/b", meta(0, 1))
	st := fs.Stats()
	if st.Files != 2 {
		t.Fatalf("Files = %d", st.Files)
	}
	// Path compression: the shared prefix "/lustre/atlas/u1/" is
	// stored once, so label bytes are well below the raw path bytes.
	raw := int64(len("/lustre/atlas/u1/a") + len("/lustre/atlas/u1/b"))
	if st.LabelBytes >= raw {
		t.Fatalf("LabelBytes = %d, want < %d (no compression?)", st.LabelBytes, raw)
	}
	if st.Nodes < 3 {
		t.Fatalf("Nodes = %d", st.Nodes)
	}
}
