package vfs

import (
	"fmt"
	"strings"
	"sync"

	"activedr/internal/obs"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
)

// Sharded splits the namespace across per-user-hash shards, each a
// private *FS owning its subtree, candidate index and accounting, so
// mutation and scan work can proceed shard-parallel without a global
// lock (each shard is goroutine-owned: callers partition work by
// shardOf and never touch a shard from two goroutines at once).
//
// Routing is a pure function of the path: an FNV-1a hash of the first
// userPrefixDepth components (the user-directory prefix, e.g.
// "/lustre/atlas/u00042"), so all of a user's files normally land in
// one shard and per-user candidate scans stay single-shard.
// Correctness never depends on that locality — per-user reads consult
// every shard holding index entries for the user and k-way-merge the
// results — it only makes the common case cheap.
//
// Every read that promises an order merges the per-shard streams:
// Walk/WalkPrefix/Snapshot k-way-merge shard iterators by path to
// preserve the lexicographic "system order", and AppendStaleFiles
// merges per-shard candidate runs by (ATime, Path). A Sharded is
// therefore bit-identical to a single *FS in reports and checkpoints;
// the equivalence suite in sharded_test.go and internal/sim pins it.
type Sharded struct {
	shards []*FS
	probe  obs.VFSProbe
	// tracking mirrors the shards' dirty-set state so TakeDirty can
	// distinguish "tracking off" (nil) from "no mutations" (empty).
	tracking bool
	// scratch buffers for multi-shard stale merges, one per shard,
	// reused across queries.
	scratch [][]Candidate
}

// userPrefixDepth is the number of leading path components hashed to
// route a path to its shard. Three components cover the conventional
// /<fs>/<center>/<user> scratch layout, so one user's namespace maps
// to one shard.
const userPrefixDepth = 3

// MaxShards bounds the shard count; beyond the core counts this
// targets, more shards only fragment the per-shard indexes.
const MaxShards = 256

// NewSharded returns an empty namespace split across n shards.
// n == 1 is a valid degenerate configuration (one shard, no merging
// overhead beyond a bounds check).
func NewSharded(n int) (*Sharded, error) {
	if n < 1 || n > MaxShards {
		return nil, fmt.Errorf("vfs: shard count %d out of range [1,%d]", n, MaxShards)
	}
	s := &Sharded{shards: make([]*FS, n), scratch: make([][]Candidate, n)}
	for i := range s.shards {
		s.shards[i] = New()
	}
	return s, nil
}

// ShardFS splits an existing namespace (a private FS or a lane view)
// across n shards. The walk hands files over in ascending path order,
// so every shard's candidate index is populated exactly as a
// from-scratch sharded build would populate it.
func ShardFS(base *FS, n int) (*Sharded, error) {
	s, err := NewSharded(n)
	if err != nil {
		return nil, err
	}
	base.Walk(func(path string, m FileMeta) bool {
		_ = s.shard(path).Insert(path, m) // paths validated on original entry
		return true
	})
	return s, nil
}

// ShardedOver wraps pre-built per-shard namespaces (the multiplexed
// runner routes one LaneGroup per shard and wraps each lane's views).
// The caller owns the routing discipline: shards[i] must hold exactly
// the paths ShardIndex maps to i.
func ShardedOver(shards []*FS) (*Sharded, error) {
	if len(shards) < 1 || len(shards) > MaxShards {
		return nil, fmt.Errorf("vfs: shard count %d out of range [1,%d]", len(shards), MaxShards)
	}
	return &Sharded{shards: shards, scratch: make([][]Candidate, len(shards))}, nil
}

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Shard exposes shard i for callers that partition work themselves
// (the sharded batched replay applies each shard's runs on its own
// goroutine through this handle).
func (s *Sharded) Shard(i int) *FS { return s.shards[i] }

// shardPrefixLen returns the length of path's routing prefix: up to
// and excluding the slash that ends component userPrefixDepth.
func shardPrefixLen(path string) int {
	slashes := 0
	for i := 0; i < len(path); i++ {
		if path[i] == '/' {
			slashes++
			if slashes == userPrefixDepth+1 {
				return i
			}
		}
	}
	return len(path)
}

// ShardIndex routes a path to its shard: FNV-1a over the routing
// prefix, reduced modulo the shard count. Exported so feed builders
// can partition path ids once instead of re-hashing per event.
func ShardIndex(path string, n int) int {
	if n == 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	end := shardPrefixLen(path)
	for i := 0; i < end; i++ {
		h = (h ^ uint64(path[i])) * prime64
	}
	return int(h % uint64(n))
}

func (s *Sharded) shard(path string) *FS { return s.shards[ShardIndex(path, len(s.shards))] }

// SetProbe installs the probe on every shard (per-file counters fire
// once per routed operation, so totals match a single FS) and keeps a
// copy for the Sharded-level counters (StaleQueries fires once per
// query here, never per shard consulted).
func (s *Sharded) SetProbe(p obs.VFSProbe) {
	s.probe = p
	for _, sh := range s.shards {
		sh.SetProbe(p)
	}
}

// Insert routes to the owning shard.
func (s *Sharded) Insert(path string, m FileMeta) error {
	if len(path) == 0 || path[0] != '/' {
		return fmt.Errorf("vfs: path %q is not absolute", path)
	}
	return s.shard(path).Insert(path, m)
}

// Lookup routes to the owning shard.
func (s *Sharded) Lookup(path string) (FileMeta, bool) {
	if len(path) == 0 || path[0] != '/' {
		return FileMeta{}, false
	}
	return s.shard(path).Lookup(path)
}

// Contains reports whether path holds a file.
func (s *Sharded) Contains(path string) bool {
	_, ok := s.Lookup(path)
	return ok
}

// Touch routes to the owning shard.
func (s *Sharded) Touch(path string, at timeutil.Time) bool {
	return s.shard(path).Touch(path, at)
}

// Remove routes to the owning shard.
func (s *Sharded) Remove(path string) (FileMeta, bool) {
	if len(path) == 0 || path[0] != '/' {
		return FileMeta{}, false
	}
	return s.shard(path).Remove(path)
}

// RemoveCandidate routes to the owning shard, keeping the node hint.
func (s *Sharded) RemoveCandidate(c Candidate) (FileMeta, bool) {
	if len(c.Path) == 0 || c.Path[0] != '/' {
		return FileMeta{}, false
	}
	return s.shard(c.Path).RemoveCandidate(c)
}

// Users merges the per-shard sorted user lists (deduplicating users
// whose files straddle shards) into one ascending list — the same
// deterministic purge-scan order a single FS reports.
func (s *Sharded) Users() []trace.UserID {
	if len(s.shards) == 1 {
		return s.shards[0].Users()
	}
	lists := make([][]trace.UserID, len(s.shards))
	total := 0
	for i, sh := range s.shards {
		lists[i] = sh.Users()
		total += len(lists[i])
	}
	out := make([]trace.UserID, 0, total)
	for {
		best := -1
		var bu trace.UserID
		for i, l := range lists {
			if len(l) > 0 && (best < 0 || l[0] < bu) {
				best, bu = i, l[0]
			}
		}
		if best < 0 {
			return out
		}
		if len(out) == 0 || out[len(out)-1] != bu {
			out = append(out, bu)
		}
		lists[best] = lists[best][1:]
	}
}

// StaleFiles returns u's live files with ATime < cutoff in (ATime,
// Path) ascending order.
func (s *Sharded) StaleFiles(u trace.UserID, cutoff timeutil.Time) []Candidate {
	return s.AppendStaleFiles(nil, u, cutoff)
}

// AppendStaleFiles merges the owning shards' candidate streams. The
// prefix routing puts all of a user's files in one shard in the
// common case, so the peek below usually finds a single source and
// the scan degenerates to that shard's (already (ATime, Path) sorted)
// emission with no copy. Cross-shard users pay one parallel scan per
// holding shard plus a k-way merge.
func (s *Sharded) AppendStaleFiles(dst []Candidate, u trace.UserID, cutoff timeutil.Time) []Candidate {
	s.probe.StaleQueries.Inc()
	if len(s.shards) == 1 {
		return s.shards[0].appendStale(dst, u, cutoff)
	}
	var hold []int
	for i, sh := range s.shards {
		if sh.hasStaleSource(u) {
			hold = append(hold, i)
		}
	}
	switch len(hold) {
	case 0:
		return dst
	case 1:
		return s.shards[hold[0]].appendStale(dst, u, cutoff)
	}
	// Scan the holding shards concurrently — each goroutine owns its
	// shard (scans compact that shard's buckets) and its scratch slot.
	var wg sync.WaitGroup
	for _, i := range hold {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.scratch[i] = s.shards[i].appendStale(s.scratch[i][:0], u, cutoff)
		}(i)
	}
	wg.Wait()
	heads := make([][]Candidate, 0, len(hold))
	for _, i := range hold {
		if len(s.scratch[i]) > 0 {
			heads = append(heads, s.scratch[i])
		}
	}
	for {
		best := -1
		for i, h := range heads {
			if len(h) == 0 {
				continue
			}
			if best < 0 || candBefore(&h[0], &heads[best][0]) {
				best = i
			}
		}
		if best < 0 {
			return dst
		}
		dst = append(dst, heads[best][0])
		heads[best] = heads[best][1:]
	}
}

// candBefore is the selection contract order: ATime, then Path.
func candBefore(a, b *Candidate) bool {
	if a.Meta.ATime != b.Meta.ATime {
		return a.Meta.ATime < b.Meta.ATime
	}
	return a.Path < b.Path
}

// Count sums the shard file counts.
func (s *Sharded) Count() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Count()
	}
	return n
}

// TotalBytes sums the shard byte totals.
func (s *Sharded) TotalBytes() int64 {
	var b int64
	for _, sh := range s.shards {
		b += sh.TotalBytes()
	}
	return b
}

// UserBytes sums u's bytes across shards.
func (s *Sharded) UserBytes(u trace.UserID) int64 {
	var b int64
	for _, sh := range s.shards {
		b += sh.UserBytes(u)
	}
	return b
}

// UserFiles sums u's file count across shards.
func (s *Sharded) UserFiles(u trace.UserID) int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.UserFiles(u)
	}
	return n
}

// Walk k-way-merges the shard iterators by path, preserving the
// lexicographic system order across the whole namespace.
func (s *Sharded) Walk(fn func(path string, m FileMeta) bool) {
	if len(s.shards) == 1 {
		s.shards[0].Walk(fn)
		return
	}
	iters := make([]*fsIter, 0, len(s.shards))
	for _, sh := range s.shards {
		it := newFSIter(sh)
		if it.next() {
			iters = append(iters, it)
		}
	}
	mergeIters(iters, fn)
}

// WalkPrefix positions an iterator at prefix in every shard and
// merges; shards without the prefix contribute nothing.
func (s *Sharded) WalkPrefix(prefix string, fn func(path string, m FileMeta) bool) {
	if len(s.shards) == 1 {
		s.shards[0].WalkPrefix(prefix, fn)
		return
	}
	iters := make([]*fsIter, 0, len(s.shards))
	for _, sh := range s.shards {
		it := newFSIterPrefix(sh, prefix)
		if it != nil && it.next() {
			iters = append(iters, it)
		}
	}
	mergeIters(iters, fn)
}

// mergeIters drains positioned iterators in ascending path order.
// Every path lives in exactly one shard, so ties cannot occur.
func mergeIters(iters []*fsIter, fn func(path string, m FileMeta) bool) {
	for len(iters) > 0 {
		best := 0
		for i := 1; i < len(iters); i++ {
			if strings.Compare(iters[i].path, iters[best].path) < 0 {
				best = i
			}
		}
		it := iters[best]
		if !fn(it.path, it.meta) {
			return
		}
		if !it.next() {
			iters[best] = iters[len(iters)-1]
			iters = iters[:len(iters)-1]
		}
	}
}

// FilesByUser buckets every path by owner; each bucket preserves the
// merged lexicographic order, matching a single FS walk.
func (s *Sharded) FilesByUser() map[trace.UserID][]string {
	out := make(map[trace.UserID][]string)
	s.Walk(func(path string, m FileMeta) bool {
		out[m.User] = append(out[m.User], path)
		return true
	})
	return out
}

// Snapshot exports the merged state as a metadata snapshot; entries
// come out in the same path order a single FS emits.
func (s *Sharded) Snapshot(taken timeutil.Time) *trace.Snapshot {
	snap := &trace.Snapshot{Taken: taken}
	snap.Entries = make([]trace.SnapshotEntry, 0, s.Count())
	s.Walk(func(path string, m FileMeta) bool {
		snap.Entries = append(snap.Entries, trace.SnapshotEntry{
			Path: path, User: m.User, Size: m.Size, Stripes: m.Stripes, ATime: m.ATime,
		})
		return true
	})
	return snap
}

// CloneNS deep-copies every shard. Cloning a Sharded over lane views
// materializes each view as a private shard FS, mirroring FS.Clone.
func (s *Sharded) CloneNS() Namespace {
	c := &Sharded{
		shards:   make([]*FS, len(s.shards)),
		tracking: false,
		scratch:  make([][]Candidate, len(s.shards)),
	}
	for i, sh := range s.shards {
		c.shards[i] = sh.Clone()
	}
	return c
}

// Stats sums the per-shard tree footprints. Shard roots are counted
// once each, so Nodes across shard counts differ by the extra roots;
// Files and LabelBytes are invariant.
func (s *Sharded) Stats() Stats {
	var st Stats
	for _, sh := range s.shards {
		t := sh.Stats()
		st.Files += t.Files
		st.Nodes += t.Nodes
		st.LabelBytes += t.LabelBytes
	}
	return st
}

// TrackDirty begins delta-checkpoint dirty tracking on every shard.
func (s *Sharded) TrackDirty() {
	s.tracking = true
	for _, sh := range s.shards {
		sh.TrackDirty()
	}
}

// TakeDirty merges the per-shard dirty sets into one sorted list, or
// nil when tracking is off — the same contract FS.TakeDirty keeps.
func (s *Sharded) TakeDirty() []string {
	if !s.tracking {
		return nil
	}
	lists := make([][]string, 0, len(s.shards))
	total := 0
	for _, sh := range s.shards {
		l := sh.TakeDirty()
		total += len(l)
		if len(l) > 0 {
			lists = append(lists, l)
		}
	}
	out := make([]string, 0, total)
	for {
		best := -1
		for i, l := range lists {
			if len(l) > 0 && (best < 0 || l[0] < lists[best][0]) {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, lists[best][0])
		lists[best] = lists[best][1:]
	}
}

// hasStaleSource reports whether this shard holds index entries (live
// or tombstoned) for u — a cheap peek with no false negatives, used
// to find the shards worth scanning.
func (f *FS) hasStaleSource(u trace.UserID) bool {
	if f.index[u] != nil {
		return true
	}
	return f.extra != nil && f.extra[u] != nil
}

// fsIter is a pull-model iterator over one FS's terminal records in
// lexicographic order — the per-shard leg of a merged walk. It leans
// on the interned record paths, so iteration allocates only the
// frame stack. Lane views filter dropped records and substitute
// override metadata exactly like laneWalkRecords.
type fsIter struct {
	f     *FS
	stack []iterFrame
	path  string
	meta  FileMeta
}

type iterFrame struct {
	n *rnode[fileRecord]
	// ci is the next child to descend into; -1 marks a node not yet
	// visited (its own terminal record not yet emitted).
	ci int
}

func newFSIter(f *FS) *fsIter {
	it := &fsIter{f: f}
	it.stack = append(it.stack, iterFrame{n: f.tree.root, ci: -1})
	return it
}

// newFSIterPrefix positions an iterator on the subtree holding every
// path starting with prefix, mirroring FS.WalkPrefix's descent. Nil
// when the shard holds nothing under prefix.
func newFSIterPrefix(f *FS, prefix string) *fsIter {
	n := f.tree.root
	rest := prefix
	for rest != "" {
		i, ok := n.childIndex(rest[0])
		if !ok {
			return nil
		}
		child := n.children[i]
		cp := commonPrefixLen(rest, child.label)
		if cp == len(rest) {
			n = child
			rest = ""
			break
		}
		if cp < len(child.label) {
			return nil // diverged: nothing under prefix
		}
		rest = rest[cp:]
		n = child
	}
	it := &fsIter{f: f}
	it.stack = append(it.stack, iterFrame{n: n, ci: -1})
	return it
}

// next advances to the next visible terminal record, reporting
// whether one was found; it.path/it.meta hold the record.
func (it *fsIter) next() bool {
	for len(it.stack) > 0 {
		top := &it.stack[len(it.stack)-1]
		if top.ci < 0 {
			top.ci = 0
			n := top.n
			if n.terminal {
				if it.f.group == nil {
					it.path, it.meta = n.value.path, n.value.meta
					return true
				}
				if n.value.dropped&it.f.laneBit == 0 {
					it.path, it.meta = n.value.path, it.f.laneMeta(&n.value)
					return true
				}
			}
		}
		if top.ci < len(top.n.children) {
			child := top.n.children[top.ci]
			top.ci++
			it.stack = append(it.stack, iterFrame{n: child, ci: -1})
			continue
		}
		it.stack = it.stack[:len(it.stack)-1]
	}
	return false
}
