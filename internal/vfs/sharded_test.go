package vfs

import (
	"fmt"
	"math/rand"
	"testing"

	"activedr/internal/obs"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
)

func TestShardIndex(t *testing.T) {
	if got := ShardIndex("/lustre/atlas/u00001/p/f", 1); got != 0 {
		t.Fatalf("n=1 -> %d", got)
	}
	// Same user prefix, different tails: must land on the same shard.
	a := ShardIndex("/lustre/atlas/u00001/proj0/a.dat", 16)
	b := ShardIndex("/lustre/atlas/u00001/proj9/deep/b.dat", 16)
	if a != b {
		t.Fatalf("same-user paths split: %d vs %d", a, b)
	}
	// Short paths (fewer components than the prefix depth) hash whole.
	if got := ShardIndex("/a", 16); got < 0 || got >= 16 {
		t.Fatalf("short path shard %d out of range", got)
	}
	// Distinct users should spread (not all on one shard).
	seen := map[int]bool{}
	for u := 0; u < 64; u++ {
		seen[ShardIndex(fmt.Sprintf("/lustre/atlas/u%05d/p/f", u), 16)] = true
	}
	if len(seen) < 8 {
		t.Fatalf("64 users landed on only %d of 16 shards", len(seen))
	}
}

func TestNewShardedValidation(t *testing.T) {
	for _, n := range []int{0, -1, MaxShards + 1} {
		if _, err := NewSharded(n); err == nil {
			t.Fatalf("NewSharded(%d) accepted", n)
		}
	}
	s, err := NewSharded(4)
	if err != nil || s.Shards() != 4 {
		t.Fatalf("NewSharded(4): %v", err)
	}
}

// TestShardedEquivalence drives an identical randomized operation
// sequence through a single FS and Sharded views at several shard
// counts, requiring observable equality throughout: lookups, walks,
// stale scans, users, accounting, snapshots, dirty sets, and probe
// counters.
func TestShardedEquivalence(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(977 + shards)))
			single := New()
			sharded, err := NewSharded(shards)
			if err != nil {
				t.Fatal(err)
			}
			var sp, shp obs.VFSProbe
			sp = obs.VFSProbe{Inserts: &obs.Counter{}, Removes: &obs.Counter{}, Touches: &obs.Counter{}, TouchMisses: &obs.Counter{}, StaleQueries: &obs.Counter{}}
			shp = obs.VFSProbe{Inserts: &obs.Counter{}, Removes: &obs.Counter{}, Touches: &obs.Counter{}, TouchMisses: &obs.Counter{}, StaleQueries: &obs.Counter{}}
			single.SetProbe(sp)
			sharded.SetProbe(shp)
			single.TrackDirty()
			sharded.TrackDirty()

			paths := make([]string, 0, 200)
			for u := 0; u < 12; u++ {
				for i := 0; i < 9; i++ {
					paths = append(paths, fmt.Sprintf("/lustre/atlas/u%05d/proj%d/out%04d.dat", u, i%2, i))
				}
			}
			userOf := func(p string) trace.UserID {
				var u int
				fmt.Sscanf(p, "/lustre/atlas/u%05d/", &u)
				return trace.UserID(u)
			}
			check := func(step int) {
				t.Helper()
				requireSameNamespace(t, single, sharded, timeutil.Time(1<<40))
				w, g := single.TakeDirty(), sharded.TakeDirty()
				if len(w) != len(g) {
					t.Fatalf("step %d: dirty %d vs %d", step, len(g), len(w))
				}
				for i := range w {
					if w[i] != g[i] {
						t.Fatalf("step %d: dirty[%d] %q vs %q", step, i, g[i], w[i])
					}
				}
				if sp.Inserts.Value() != shp.Inserts.Value() ||
					sp.Removes.Value() != shp.Removes.Value() ||
					sp.Touches.Value() != shp.Touches.Value() ||
					sp.TouchMisses.Value() != shp.TouchMisses.Value() ||
					sp.StaleQueries.Value() != shp.StaleQueries.Value() {
					t.Fatalf("step %d: probe counters diverge", step)
				}
			}
			for step := 0; step < 600; step++ {
				p := paths[rng.Intn(len(paths))]
				at := timeutil.Time(int64(rng.Intn(400)) * 86400)
				switch rng.Intn(10) {
				case 0, 1, 2, 3:
					m := FileMeta{User: userOf(p), Size: int64(rng.Intn(1000)), Stripes: 1, ATime: at}
					if err := single.Insert(p, m); err != nil {
						t.Fatal(err)
					}
					if err := sharded.Insert(p, m); err != nil {
						t.Fatal(err)
					}
				case 4, 5, 6:
					a := single.Touch(p, at)
					b := sharded.Touch(p, at)
					if a != b {
						t.Fatalf("step %d: touch %q: %v vs %v", step, p, a, b)
					}
				case 7:
					am, aok := single.Remove(p)
					bm, bok := sharded.Remove(p)
					if aok != bok || am != bm {
						t.Fatalf("step %d: remove %q diverges", step, p)
					}
				case 8:
					u := userOf(p)
					cutoff := timeutil.Time(int64(rng.Intn(400)) * 86400)
					wc := single.StaleFiles(u, cutoff)
					gc := sharded.StaleFiles(u, cutoff)
					if len(wc) != len(gc) {
						t.Fatalf("step %d: stale %d vs %d", step, len(gc), len(wc))
					}
					for j := range wc {
						if wc[j].Path != gc[j].Path || wc[j].Meta != gc[j].Meta {
							t.Fatalf("step %d: stale[%d] diverges", step, j)
						}
						// Purge through RemoveCandidate on both sides
						// occasionally, preserving lockstep.
						if rng.Intn(4) == 0 {
							am, aok := single.RemoveCandidate(wc[j])
							bm, bok := sharded.RemoveCandidate(gc[j])
							if aok != bok || am != bm {
								t.Fatalf("step %d: remove-candidate diverges", step)
							}
						}
					}
				case 9:
					am, aok := single.Lookup(p)
					bm, bok := sharded.Lookup(p)
					if aok != bok || am != bm {
						t.Fatalf("step %d: lookup diverges", step)
					}
					if single.Contains(p) != sharded.Contains(p) {
						t.Fatalf("step %d: contains diverges", step)
					}
				}
				if step%97 == 0 {
					check(step)
				}
			}
			check(-1)

			// Clones stay equivalent and detached from the originals.
			sc, gc := single.CloneNS(), sharded.CloneNS()
			single.Insert("/lustre/atlas/u00000/proj0/post-clone.dat", FileMeta{User: 0, Size: 1, Stripes: 1, ATime: 1})
			sharded.Insert("/lustre/atlas/u00000/proj0/post-clone.dat", FileMeta{User: 0, Size: 1, Stripes: 1, ATime: 1})
			requireSameNamespace(t, sc, gc, timeutil.Time(1<<40))
			if sc.Count() == single.Count() {
				t.Fatal("clone tracked origin mutation")
			}
		})
	}
}

// TestShardFS partitions an existing tree and requires the sharded
// view to reproduce it exactly, including WalkPrefix windows.
func TestShardFS(t *testing.T) {
	s := snapFixture(11, 7)
	base, err := FromSnapshot(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 4, 16} {
		sh, err := ShardFS(base, n)
		if err != nil {
			t.Fatal(err)
		}
		requireSameNamespace(t, base, sh, s.Taken)
		for _, prefix := range []string{"/lustre/atlas/u00003/", "/lustre/", "/nope/", "/lustre/atlas/u00007/proj1/"} {
			var w, g []string
			base.WalkPrefix(prefix, func(p string, _ FileMeta) bool { w = append(w, p); return true })
			sh.WalkPrefix(prefix, func(p string, _ FileMeta) bool { g = append(g, p); return true })
			if len(w) != len(g) {
				t.Fatalf("n=%d prefix %q: %d vs %d", n, prefix, len(g), len(w))
			}
			for i := range w {
				if w[i] != g[i] {
					t.Fatalf("n=%d prefix %q: [%d] %q vs %q", n, prefix, i, g[i], w[i])
				}
			}
		}
		// Early-stop walks must terminate after the same visit count.
		wn, gn := 0, 0
		base.Walk(func(string, FileMeta) bool { wn++; return wn < 10 })
		sh.Walk(func(string, FileMeta) bool { gn++; return gn < 10 })
		if wn != gn {
			t.Fatalf("n=%d early stop %d vs %d", n, gn, wn)
		}
	}
}

// TestShardedOverLaneViews covers the multiplexed-replay shape: one
// LaneGroup per shard, a Sharded stitched over the lane-i views, read
// operations matching a single-tree lane view.
func TestShardedOverLaneViews(t *testing.T) {
	s := snapFixture(8, 6)
	base, err := FromSnapshot(s)
	if err != nil {
		t.Fatal(err)
	}
	const lanes = 3
	wholeGroup, err := NewLaneGroup(base.Clone(), lanes, 0)
	if err != nil {
		t.Fatal(err)
	}
	const shards = 4
	shardBases, err := ShardFS(base, shards)
	if err != nil {
		t.Fatal(err)
	}
	groups := make([]*LaneGroup, shards)
	for i := 0; i < shards; i++ {
		groups[i], err = NewLaneGroup(shardBases.Shard(i), lanes, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Diverge lane 1 on both sides with identical operations.
	victim := s.Entries[len(s.Entries)/2].Path
	if _, ok := wholeGroup.Lane(1).Remove(victim); !ok {
		t.Fatalf("remove %q missed", victim)
	}
	si := ShardIndex(victim, shards)
	if _, ok := groups[si].Lane(1).Remove(victim); !ok {
		t.Fatalf("sharded remove %q missed", victim)
	}
	for li := 0; li < lanes; li++ {
		laneShards := make([]*FS, shards)
		for i := 0; i < shards; i++ {
			laneShards[i] = groups[i].Lane(li)
		}
		stitched, err := ShardedOver(laneShards)
		if err != nil {
			t.Fatal(err)
		}
		requireSameNamespace(t, wholeGroup.Lane(li), stitched, s.Taken)
	}
}
