package vfs

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"math"
	"os"

	"activedr/internal/fsx"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
)

// blob abstracts how an open snapfile's bytes are reached: zero-copy
// out of an mmap, or paged ReadAt calls against the file (the
// portable fallback, and an explicit option for address-space-
// constrained callers).
type blob interface {
	// slice returns n bytes at off. Mmap-backed blobs return a
	// subslice of the mapping (valid until close); file-backed blobs
	// allocate.
	slice(off int64, n int) ([]byte, error)
	// sectionReader streams [off, off+n) for sequential decoding.
	sectionReader(off, n int64) io.Reader
	close() error
}

type mmapBlob struct {
	data  []byte
	unmap func() error
	f     *os.File
}

func (b *mmapBlob) slice(off int64, n int) ([]byte, error) {
	if off < 0 || n < 0 || off+int64(n) > int64(len(b.data)) {
		return nil, corruptf("vfs: snapfile read [%d,+%d) out of bounds", off, n)
	}
	return b.data[off : off+int64(n)], nil
}

func (b *mmapBlob) sectionReader(off, n int64) io.Reader {
	if off < 0 || n < 0 || off+n > int64(len(b.data)) {
		return bytes.NewReader(nil)
	}
	return bytes.NewReader(b.data[off : off+n])
}

func (b *mmapBlob) close() error {
	err := b.unmap()
	if cerr := b.f.Close(); err == nil {
		err = cerr
	}
	return err
}

type fileBlob struct {
	f    *os.File
	size int64
}

func (b *fileBlob) slice(off int64, n int) ([]byte, error) {
	if off < 0 || n < 0 || off+int64(n) > b.size {
		return nil, corruptf("vfs: snapfile read [%d,+%d) out of bounds", off, n)
	}
	buf := make([]byte, n)
	if _, err := b.f.ReadAt(buf, off); err != nil {
		return nil, corruptf("vfs: snapfile read at %d: %v", off, err)
	}
	return buf, nil
}

func (b *fileBlob) sectionReader(off, n int64) io.Reader {
	return io.NewSectionReader(b.f, off, n)
}

func (b *fileBlob) close() error { return b.f.Close() }

// SnapfileOpenOptions tunes OpenSnapfileWith.
type SnapfileOpenOptions struct {
	// PagedReads forces the ReadAt-backed blob even where mmap is
	// available.
	PagedReads bool
}

// SnapshotFile is an open snapfile: an O(1)-validated header over a
// lazily faulted byte blob. Reads are safe without loading anything —
// Lookup binary-searches the on-disk file table — and the Load*
// functions materialize a full in-memory namespace from it. Not safe
// for concurrent use (the segment table memoizes lazily).
type SnapshotFile struct {
	b     blob
	taken timeutil.Time
	files int
	nsegs int
	users int
	offs  [numSections]int64
	lens  [numSections]int64
	crc   uint32
	segs  []string // lazily decoded segment table
}

// OpenSnapfile opens path via mmap, falling back to paged reads when
// mapping is unavailable. The open is O(1): it validates the header
// and section bounds, faulting in pages only as they are touched.
func OpenSnapfile(path string) (*SnapshotFile, error) {
	return OpenSnapfileWith(path, SnapfileOpenOptions{})
}

// OpenSnapfileWith is OpenSnapfile with explicit options.
func OpenSnapfileWith(path string, opts SnapfileOpenOptions) (*SnapshotFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	var b blob
	if !opts.PagedReads && fsx.MmapSupported {
		data, unmap, merr := fsx.Mmap(f, st.Size())
		if merr == nil {
			b = &mmapBlob{data: data, unmap: unmap, f: f}
		}
	}
	if b == nil {
		b = &fileBlob{f: f, size: st.Size()}
	}
	sf, err := parseSnapHeader(b, st.Size())
	if err != nil {
		_ = b.close()
		return nil, err
	}
	return sf, nil
}

func parseSnapHeader(b blob, size int64) (*SnapshotFile, error) {
	if size < snapHdrSize {
		return nil, corruptf("vfs: snapfile too short (%d bytes)", size)
	}
	hdr, err := b.slice(0, snapHdrSize)
	if err != nil {
		return nil, err
	}
	if string(hdr[0:8]) != snapMagic {
		return nil, corruptf("vfs: snapfile bad magic")
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != snapVersion {
		return nil, corruptf("vfs: snapfile version %d (want %d)", v, snapVersion)
	}
	total := binary.LittleEndian.Uint64(hdr[136:144])
	if total != uint64(size) {
		return nil, corruptf("vfs: snapfile truncated: header says %d bytes, file has %d", total, size)
	}
	files := binary.LittleEndian.Uint64(hdr[24:32])
	nsegs := binary.LittleEndian.Uint64(hdr[32:40])
	users := binary.LittleEndian.Uint64(hdr[40:48])
	if files > math.MaxUint32 || nsegs > math.MaxUint32 || users > files {
		return nil, corruptf("vfs: snapfile counts out of range (files=%d segs=%d users=%d)", files, nsegs, users)
	}
	sf := &SnapshotFile{
		b:     b,
		taken: timeutil.Time(int64(binary.LittleEndian.Uint64(hdr[16:24]))),
		files: int(files),
		nsegs: int(nsegs),
		users: int(users),
		crc:   binary.LittleEndian.Uint32(hdr[48:52]),
	}
	want := uint64(snapHdrSize)
	for i := 0; i < numSections; i++ {
		off := binary.LittleEndian.Uint64(hdr[56+16*i:])
		n := binary.LittleEndian.Uint64(hdr[64+16*i:])
		// Sections are contiguous in declaration order; enforcing that
		// also proves no overlap and no overflow.
		if off != want || n > total-off {
			return nil, corruptf("vfs: snapfile section %d out of bounds (off=%d len=%d)", i, off, n)
		}
		want = off + n
		sf.offs[i] = int64(off)
		sf.lens[i] = int64(n)
	}
	if want != total {
		return nil, corruptf("vfs: snapfile sections do not cover the file (%d != %d)", want, total)
	}
	if sf.lens[secSegTab] != 8*int64(nsegs) {
		return nil, corruptf("vfs: snapfile segment table length %d (want %d)", sf.lens[secSegTab], 8*nsegs)
	}
	if sf.lens[secFileTab] != snapRecSize*int64(files) {
		return nil, corruptf("vfs: snapfile file table length %d (want %d)", sf.lens[secFileTab], snapRecSize*files)
	}
	if sf.lens[secPathIDs]%4 != 0 || sf.lens[secPathIDs]/4 < int64(files) && files > 0 {
		return nil, corruptf("vfs: snapfile path-id stream length %d invalid", sf.lens[secPathIDs])
	}
	return sf, nil
}

// Taken returns the snapshot timestamp recorded in the header.
func (sf *SnapshotFile) Taken() timeutil.Time { return sf.taken }

// Count returns the number of file records.
func (sf *SnapshotFile) Count() int { return sf.files }

// Close releases the mapping or file handle.
func (sf *SnapshotFile) Close() error { return sf.b.close() }

// verifyCRC streams every section byte through CRC-32C and compares
// with the header. Called by the eager loaders (one extra sequential
// pass); the O(1)-open and Lookup paths skip it and rely on bounds
// checks alone.
func (sf *SnapshotFile) verifyCRC() error {
	r := sf.b.sectionReader(snapHdrSize, sf.offs[numSections-1]+sf.lens[numSections-1]-snapHdrSize)
	crc := uint32(0)
	buf := make([]byte, 1<<20)
	for {
		n, err := r.Read(buf)
		crc = crc32.Update(crc, castagnoli, buf[:n])
		if err == io.EOF {
			break
		}
		if err != nil {
			return corruptf("vfs: snapfile crc read: %v", err)
		}
	}
	if crc != sf.crc {
		return corruptf("vfs: snapfile crc mismatch (stored %08x, computed %08x)", sf.crc, crc)
	}
	return nil
}

// ensureSegs decodes the segment table once.
func (sf *SnapshotFile) ensureSegs() error {
	if sf.segs != nil || sf.nsegs == 0 {
		return nil
	}
	tab, err := sf.b.slice(sf.offs[secSegTab], int(sf.lens[secSegTab]))
	if err != nil {
		return err
	}
	blobLen := sf.lens[secSegBlob]
	segs := make([]string, sf.nsegs)
	for i := 0; i < sf.nsegs; i++ {
		off := binary.LittleEndian.Uint32(tab[8*i:])
		n := binary.LittleEndian.Uint32(tab[8*i+4:])
		if int64(off)+int64(n) > blobLen {
			return corruptf("vfs: snapfile segment %d out of blob bounds", i)
		}
		raw, err := sf.b.slice(sf.offs[secSegBlob]+int64(off), int(n))
		if err != nil {
			return err
		}
		segs[i] = string(raw)
	}
	sf.segs = segs
	return nil
}

// record decodes file record i without touching its path.
func (sf *SnapshotFile) record(i int) (m FileMeta, pathOff, pathLen uint32, err error) {
	rec, err := sf.b.slice(sf.offs[secFileTab]+int64(i)*snapRecSize, snapRecSize)
	if err != nil {
		return FileMeta{}, 0, 0, err
	}
	user := binary.LittleEndian.Uint32(rec[0:4])
	stripes := binary.LittleEndian.Uint32(rec[4:8])
	size := int64(binary.LittleEndian.Uint64(rec[8:16]))
	atime := int64(binary.LittleEndian.Uint64(rec[16:24]))
	pathOff = binary.LittleEndian.Uint32(rec[24:28])
	pathLen = binary.LittleEndian.Uint32(rec[28:32])
	if user > math.MaxInt32 || size < 0 || int64(pathOff)+int64(pathLen) > sf.lens[secPathIDs]/4 || pathLen == 0 {
		return FileMeta{}, 0, 0, corruptf("vfs: snapfile record %d invalid", i)
	}
	m = FileMeta{
		User:    trace.UserID(int32(user)),
		Size:    size,
		Stripes: int(stripes),
		ATime:   timeutil.Time(atime),
	}
	return m, pathOff, pathLen, nil
}

// appendPath reconstructs record i's path into dst.
func (sf *SnapshotFile) appendPath(dst []byte, pathOff, pathLen uint32) ([]byte, error) {
	if err := sf.ensureSegs(); err != nil {
		return dst, err
	}
	ids, err := sf.b.slice(sf.offs[secPathIDs]+4*int64(pathOff), 4*int(pathLen))
	if err != nil {
		return dst, err
	}
	for k := uint32(0); k < pathLen; k++ {
		id := binary.LittleEndian.Uint32(ids[4*k:])
		if int(id) >= len(sf.segs) {
			return dst, corruptf("vfs: snapfile segment id %d out of range", id)
		}
		dst = append(dst, '/')
		dst = append(dst, sf.segs[id]...)
	}
	return dst, nil
}

// Entry returns record i's path and metadata straight off the blob.
func (sf *SnapshotFile) Entry(i int) (string, FileMeta, error) {
	if i < 0 || i >= sf.files {
		return "", FileMeta{}, corruptf("vfs: snapfile entry %d out of range", i)
	}
	m, po, pl, err := sf.record(i)
	if err != nil {
		return "", FileMeta{}, err
	}
	p, err := sf.appendPath(nil, po, pl)
	if err != nil {
		return "", FileMeta{}, err
	}
	return string(p), m, nil
}

// Lookup binary-searches the on-disk file table for path — an
// out-of-core point query: O(log n) record probes, no load, no tree.
func (sf *SnapshotFile) Lookup(path string) (FileMeta, bool, error) {
	lo, hi := 0, sf.files
	var buf []byte
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		m, po, pl, err := sf.record(mid)
		if err != nil {
			return FileMeta{}, false, err
		}
		buf, err = sf.appendPath(buf[:0], po, pl)
		if err != nil {
			return FileMeta{}, false, err
		}
		switch bytes.Compare(buf, []byte(path)) {
		case 0:
			return m, true, nil
		case -1:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return FileMeta{}, false, nil
}

// snapDecoder streams the per-file sections in parallel, handing the
// loaders one (path, meta) pair at a time in ascending path order.
type snapDecoder struct {
	sf      *SnapshotFile
	recs    *bufio.Reader
	ids     *bufio.Reader
	pathIDs int64 // u32s consumed from the path-id stream
	last    []byte
	path    []byte
	rec     [snapRecSize]byte
	id4     [4]byte
}

func (sf *SnapshotFile) newDecoder() *snapDecoder {
	return &snapDecoder{
		sf:   sf,
		recs: bufio.NewReaderSize(sf.b.sectionReader(sf.offs[secFileTab], sf.lens[secFileTab]), 1<<16),
		ids:  bufio.NewReaderSize(sf.b.sectionReader(sf.offs[secPathIDs], sf.lens[secPathIDs]), 1<<16),
	}
}

// next decodes file record i; paths must be strictly ascending and
// the path-id runs contiguous (the canonical layout the writer
// emits).
func (d *snapDecoder) next(i int) (string, FileMeta, error) {
	if _, err := io.ReadFull(d.recs, d.rec[:]); err != nil {
		return "", FileMeta{}, corruptf("vfs: snapfile record %d: %v", i, err)
	}
	user := binary.LittleEndian.Uint32(d.rec[0:4])
	stripes := binary.LittleEndian.Uint32(d.rec[4:8])
	size := int64(binary.LittleEndian.Uint64(d.rec[8:16]))
	atime := int64(binary.LittleEndian.Uint64(d.rec[16:24]))
	pathOff := binary.LittleEndian.Uint32(d.rec[24:28])
	pathLen := binary.LittleEndian.Uint32(d.rec[28:32])
	if user > math.MaxInt32 || size < 0 || pathLen == 0 {
		return "", FileMeta{}, corruptf("vfs: snapfile record %d invalid", i)
	}
	if int64(pathOff) != d.pathIDs || int64(pathOff)+int64(pathLen) > d.sf.lens[secPathIDs]/4 {
		return "", FileMeta{}, corruptf("vfs: snapfile record %d path run not contiguous", i)
	}
	d.path = d.path[:0]
	for k := uint32(0); k < pathLen; k++ {
		if _, err := io.ReadFull(d.ids, d.id4[:]); err != nil {
			return "", FileMeta{}, corruptf("vfs: snapfile path ids of record %d: %v", i, err)
		}
		id := binary.LittleEndian.Uint32(d.id4[:])
		if int(id) >= len(d.sf.segs) {
			return "", FileMeta{}, corruptf("vfs: snapfile segment id %d out of range", id)
		}
		d.path = append(d.path, '/')
		d.path = append(d.path, d.sf.segs[id]...)
	}
	d.pathIDs += int64(pathLen)
	if i > 0 && bytes.Compare(d.path, d.last) <= 0 {
		return "", FileMeta{}, corruptf("vfs: snapfile paths out of order at record %d", i)
	}
	d.last = append(d.last[:0], d.path...)
	m := FileMeta{
		User:    trace.UserID(int32(user)),
		Size:    size,
		Stripes: int(stripes),
		ATime:   timeutil.Time(atime),
	}
	return string(d.path), m, nil
}

// LoadSnapfileFS materializes a single-tree FS (tree, accounting, and
// candidate index) from an open snapfile. The index section is loaded
// as straight fills — no per-entry day search — leaving exactly the
// state FromSnapshot would have built from the equivalent TSV
// snapshot.
func LoadSnapfileFS(sf *SnapshotFile) (*FS, error) {
	sharded, err := loadSnapfile(sf, 1)
	if err != nil {
		return nil, err
	}
	return sharded.shards[0], nil
}

// LoadSnapfileSharded materializes a Sharded namespace from an open
// snapfile, routing records and index entries by the path hash.
func LoadSnapfileSharded(sf *SnapshotFile, shards int) (*Sharded, error) {
	return loadSnapfile(sf, shards)
}

func loadSnapfile(sf *SnapshotFile, shards int) (*Sharded, error) {
	s, err := NewSharded(shards)
	if err != nil {
		return nil, err
	}
	if err := sf.verifyCRC(); err != nil {
		return nil, err
	}
	if err := sf.ensureSegs(); err != nil {
		return nil, err
	}
	nodes := make([]*rnode[fileRecord], sf.files)
	shardOf := make([]uint8, 0)
	if shards > 1 {
		if shards > math.MaxUint8+1 {
			return nil, corruptf("vfs: snapfile shard count %d exceeds loader limit", shards)
		}
		shardOf = make([]uint8, sf.files)
	}
	dec := sf.newDecoder()
	for i := 0; i < sf.files; i++ {
		path, m, err := dec.next(i)
		if err != nil {
			return nil, err
		}
		si := 0
		if shards > 1 {
			si = ShardIndex(path, shards)
			shardOf[i] = uint8(si)
		}
		f := s.shards[si]
		n, _, _ := f.tree.put(path, fileRecord{meta: m, path: path})
		f.bytes += m.Size
		f.userBytes[m.User] += m.Size
		f.userFiles[m.User]++
		nodes[i] = n
	}
	if err := loadSnapIndex(sf, s, nodes, shardOf); err != nil {
		return nil, err
	}
	return s, nil
}

// loadSnapIndex decodes the candidate-index section into per-shard
// userIndex structures, validating that it is the canonical rebuild
// of the file table (every file exactly once, under its owner, in its
// atime's day bucket, file ids ascending).
func loadSnapIndex(sf *SnapshotFile, s *Sharded, nodes []*rnode[fileRecord], shardOf []uint8) error {
	r := bufio.NewReaderSize(sf.b.sectionReader(sf.offs[secIndex], sf.lens[secIndex]), 1<<16)
	var b12 [12]byte
	entries := 0
	lastUser := int64(-1)
	for ui := 0; ui < sf.users; ui++ {
		if _, err := io.ReadFull(r, b12[:8]); err != nil {
			return corruptf("vfs: snapfile index user %d: %v", ui, err)
		}
		user := binary.LittleEndian.Uint32(b12[0:4])
		nDays := binary.LittleEndian.Uint32(b12[4:8])
		if user > math.MaxInt32 || int64(user) <= lastUser {
			return corruptf("vfs: snapfile index users out of order at %d", ui)
		}
		lastUser = int64(user)
		u := trace.UserID(int32(user))
		lastDay := int64(math.MinInt64)
		for di := uint32(0); di < nDays; di++ {
			if _, err := io.ReadFull(r, b12[:]); err != nil {
				return corruptf("vfs: snapfile index day of user %d: %v", user, err)
			}
			day := int64(binary.LittleEndian.Uint64(b12[0:8]))
			n := binary.LittleEndian.Uint32(b12[8:12])
			if day <= lastDay && !(di == 0 && day == math.MinInt64) {
				return corruptf("vfs: snapfile index days out of order for user %d", user)
			}
			lastDay = day
			lastFid := int64(-1)
			for k := uint32(0); k < n; k++ {
				if _, err := io.ReadFull(r, b12[:4]); err != nil {
					return corruptf("vfs: snapfile index entry of user %d: %v", user, err)
				}
				fid := binary.LittleEndian.Uint32(b12[0:4])
				if int64(fid) <= lastFid || int(fid) >= len(nodes) {
					return corruptf("vfs: snapfile index file ids invalid for user %d", user)
				}
				lastFid = int64(fid)
				rec := &nodes[fid].value
				if rec.meta.User != u || dayOf(rec.meta.ATime) != day {
					return corruptf("vfs: snapfile index entry %d contradicts record", fid)
				}
				si := 0
				if len(shardOf) > 0 {
					si = int(shardOf[fid])
				}
				f := s.shards[si]
				uidx := f.index[u]
				if uidx == nil {
					uidx = &userIndex{}
					f.index[u] = uidx
				}
				// Days arrive ascending, so registering a day is a pure
				// append; entries land in file-id (= path) order, the
				// same bucket order FromSnapshot's inserts produce.
				if ld := len(uidx.days); ld == 0 || uidx.days[ld-1] != day {
					uidx.days = append(uidx.days, day)
					uidx.buckets = append(uidx.buckets, nil)
					uidx.compacted = append(uidx.compacted, false)
					uidx.skip = append(uidx.skip, 0)
				}
				bi := len(uidx.buckets) - 1
				uidx.buckets[bi] = append(uidx.buckets[bi], idxEntry{
					path:  rec.path,
					atime: rec.meta.ATime,
					node:  nodes[fid],
				})
				entries++
			}
		}
	}
	if entries != sf.files {
		return corruptf("vfs: snapfile index covers %d of %d files", entries, sf.files)
	}
	// The section length must be exactly consumed.
	if n, _ := r.Read(b12[:1]); n != 0 {
		return corruptf("vfs: snapfile index has trailing bytes")
	}
	return nil
}
