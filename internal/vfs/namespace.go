package vfs

import (
	"activedr/internal/obs"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
)

// Namespace is the virtual-file-system surface the replay emulator and
// the retention policies program against. Two implementations exist:
// *FS, the single compact prefix tree, and *Sharded, which splits the
// namespace across per-user-hash shards so mutation and scan work can
// proceed shard-parallel (sharded.go). Every method honors the same
// contracts as the *FS documentation states them — in particular the
// lexicographic "system order" of Walk/WalkPrefix/Snapshot and the
// (ATime, Path) ascending order of StaleFiles — so the two are
// interchangeable bit-for-bit in reports and checkpoints.
type Namespace interface {
	Insert(path string, m FileMeta) error
	Lookup(path string) (FileMeta, bool)
	Contains(path string) bool
	Touch(path string, at timeutil.Time) bool
	Remove(path string) (FileMeta, bool)
	RemoveCandidate(c Candidate) (FileMeta, bool)
	Users() []trace.UserID
	StaleFiles(u trace.UserID, cutoff timeutil.Time) []Candidate
	AppendStaleFiles(dst []Candidate, u trace.UserID, cutoff timeutil.Time) []Candidate
	Count() int
	TotalBytes() int64
	UserBytes(u trace.UserID) int64
	UserFiles(u trace.UserID) int64
	Walk(fn func(path string, m FileMeta) bool)
	WalkPrefix(prefix string, fn func(path string, m FileMeta) bool)
	FilesByUser() map[trace.UserID][]string
	Snapshot(taken timeutil.Time) *trace.Snapshot
	// CloneNS deep-copies the namespace for an independent replay or a
	// planner dry run. A *FS clones to a *FS, a *Sharded to a *Sharded
	// with the same shard count.
	CloneNS() Namespace
	SetProbe(p obs.VFSProbe)
	TrackDirty()
	TakeDirty() []string
}

// CloneNS implements Namespace for *FS callers that only know the
// interface; internal callers keep the concretely-typed Clone.
func (f *FS) CloneNS() Namespace { return f.Clone() }

var (
	_ Namespace = (*FS)(nil)
	_ Namespace = (*Sharded)(nil)
)
