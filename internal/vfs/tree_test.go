package vfs

import (
	"sort"
	"testing"

	"activedr/internal/randx"
)

// TestRadixArbitraryKeys drives the generic radix tree with random
// byte-level keys (not just well-formed paths) against a map model:
// shared prefixes, empty keys, repeated inserts and deletes.
func TestRadixArbitraryKeys(t *testing.T) {
	src := randx.New(777)
	alphabet := []byte("ab/€\x00z")
	randKey := func() string {
		n := src.Intn(12)
		b := make([]byte, 0, n)
		for i := 0; i < n; i++ {
			b = append(b, alphabet[src.Intn(len(alphabet))])
		}
		return string(b)
	}
	tree := newRadix[int]()
	model := map[string]int{}
	for step := 0; step < 30000; step++ {
		k := randKey()
		switch src.Intn(3) {
		case 0:
			v := src.Intn(1000)
			_, prev, existed := tree.put(k, v)
			wantPrev, wantExisted := model[k]
			if existed != wantExisted || (existed && prev != wantPrev) {
				t.Fatalf("step %d: put(%q) = (%d,%v), want (%d,%v)", step, k, prev, existed, wantPrev, wantExisted)
			}
			model[k] = v
		case 1:
			v, ok := tree.get(k)
			wantV, wantOK := model[k]
			if ok != wantOK || (ok && v != wantV) {
				t.Fatalf("step %d: get(%q) mismatch", step, k)
			}
		case 2:
			v, ok := tree.delete(k)
			wantV, wantOK := model[k]
			if ok != wantOK || (ok && v != wantV) {
				t.Fatalf("step %d: delete(%q) = (%d,%v), want (%d,%v)", step, k, v, ok, wantV, wantOK)
			}
			delete(model, k)
		}
		if tree.size() != len(model) {
			t.Fatalf("step %d: size %d != model %d", step, tree.size(), len(model))
		}
	}
	// Final walk agrees with the sorted model.
	var wantKeys []string
	for k := range model {
		wantKeys = append(wantKeys, k)
	}
	sort.Strings(wantKeys)
	var gotKeys []string
	tree.walk("", func(k string, v int) bool {
		gotKeys = append(gotKeys, k)
		if model[k] != v {
			t.Fatalf("walk value mismatch at %q", k)
		}
		return true
	})
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("walk yielded %d keys, want %d", len(gotKeys), len(wantKeys))
	}
	for i := range wantKeys {
		if gotKeys[i] != wantKeys[i] {
			t.Fatalf("walk order: got %q want %q at %d", gotKeys[i], wantKeys[i], i)
		}
	}
}

// TestRadixEmptyKey exercises the root-terminal special case.
func TestRadixEmptyKey(t *testing.T) {
	tree := newRadix[string]()
	if _, ok := tree.get(""); ok {
		t.Fatal("empty tree contains empty key")
	}
	tree.put("", "root")
	if v, ok := tree.get(""); !ok || v != "root" {
		t.Fatal("empty key lost")
	}
	// A root reservation covers everything.
	if !tree.coveredBy("/any/path") {
		t.Fatal("root terminal should cover all keys")
	}
	if v, ok := tree.delete(""); !ok || v != "root" {
		t.Fatal("empty key not deletable")
	}
	if tree.size() != 0 {
		t.Fatal("size wrong after delete")
	}
	if _, ok := tree.delete(""); ok {
		t.Fatal("double delete of empty key")
	}
}

// TestRadixCompression verifies single-child merging after deletes
// keeps the tree compact.
func TestRadixCompression(t *testing.T) {
	tree := newRadix[int]()
	tree.put("/a/b/c/d", 1)
	tree.put("/a/b/c/e", 2)
	tree.put("/a/x", 3)
	countNodes := func() int {
		n := 0
		var rec func(*rnode[int])
		rec = func(nd *rnode[int]) {
			n++
			for _, c := range nd.children {
				rec(c)
			}
		}
		rec(tree.root)
		return n
	}
	before := countNodes()
	tree.delete("/a/b/c/e")
	after := countNodes()
	if after >= before {
		t.Fatalf("no compaction: %d → %d nodes", before, after)
	}
	if v, ok := tree.get("/a/b/c/d"); !ok || v != 1 {
		t.Fatal("sibling lost during compaction")
	}
	if v, ok := tree.get("/a/x"); !ok || v != 3 {
		t.Fatal("cousin lost during compaction")
	}
}
