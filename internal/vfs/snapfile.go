package vfs

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"activedr/internal/fsx"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
)

// Snapfile is the compact serialized snapshot format of the VFS plus
// its candidate index (DESIGN.md §15). A snapfile is built once —
// streamed out by tracegen or cmd/simulate — and reopened in O(1) via
// mmap (or paged reads where mmap is unavailable), so replay startup
// stops re-parsing TSV snapshots. Layout, all integers little-endian:
//
//	header (144 bytes)
//	  [0:8)     magic "ADRVFS1\n"
//	  [8:12)    format version (1)
//	  [12:16)   flags (reserved, zero)
//	  [16:24)   snapshot Taken timestamp, int64
//	  [24:32)   file count
//	  [32:40)   interned path-segment count
//	  [40:48)   candidate-index user count
//	  [48:52)   CRC-32C over every section byte ([144:totalSize))
//	  [52:56)   reserved (zero)
//	  [56:136)  five sections × {offset u64, length u64}:
//	            segment table, segment blob, path-id stream,
//	            file table, candidate index
//	  [136:144) total file size
//	segment table: per segment {offset u32, length u32} into the blob
//	segment blob:  concatenated segment bytes, first-seen order
//	path ids:      u32 segment-id stream; file records reference runs
//	file table:    fixed-width 32-byte records, ascending full path:
//	               {user u32, stripes u32, size i64, atime i64,
//	                pathOff u32 (u32 units), pathLen u32 (segments)}
//	candidate index: per user (ascending): {user u32, nDays u32},
//	               per day (ascending): {day i64, nEntries u32,
//	               file ids u32 × nEntries (ascending)}
//
// The total-size field makes truncation detectable at open time: any
// strict prefix of a valid snapfile fails the size check before a
// single section byte is trusted. Interior corruption is caught by
// the CRC during eager loads and by bounds checks everywhere else;
// all decode failures wrap ErrCorruptSnapfile, never panic.
const (
	snapMagic   = "ADRVFS1\n"
	snapVersion = 1
	snapHdrSize = 144
	snapRecSize = 32
	snapMaxSegs = math.MaxUint32
)

// section indexes into the header's section table.
const (
	secSegTab = iota
	secSegBlob
	secPathIDs
	secFileTab
	secIndex
	numSections
)

// ErrCorruptSnapfile tags every snapfile decode failure: truncated
// files, bad magic, out-of-bounds sections, CRC mismatches, and
// non-canonical content all wrap it.
var ErrCorruptSnapfile = errors.New("vfs: corrupt snapfile")

func corruptf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrCorruptSnapfile)...)
}

// SnapfileWriter streams a snapshot out in ascending path order with
// bounded memory: the per-file sections (path ids, file table) spool
// to temp files next to the destination, and only the segment intern
// table and the candidate-index skeleton (a few bytes per file) stay
// resident. Add must be called in strictly ascending path order;
// Finish assembles the final file durably (write, fsync, rename).
type SnapfileWriter struct {
	dst   string
	taken timeutil.Time

	segID  map[string]uint32
	segOff []uint32
	segLen []uint32
	blob   []byte

	pathSpool *os.File
	recSpool  *os.File
	pathBuf   *bufio.Writer
	recBuf    *bufio.Writer
	pathIDs   uint64
	files     uint64
	lastPath  string

	idx map[trace.UserID]*skelIndex

	scratch  []byte
	finished bool
}

// skelIndex is the in-memory skeleton of one user's serialized
// candidate index: file ids bucketed by atime day, days ascending.
type skelIndex struct {
	days    []int64
	buckets [][]uint32
}

// NewSnapfileWriter opens a streaming writer targeting path. The
// caller must Finish (or Abort) it.
func NewSnapfileWriter(path string, taken timeutil.Time) (*SnapfileWriter, error) {
	dir := filepath.Dir(path)
	pathSpool, err := os.CreateTemp(dir, ".snapfile-paths-*")
	if err != nil {
		return nil, err
	}
	recSpool, err := os.CreateTemp(dir, ".snapfile-recs-*")
	if err != nil {
		_ = closeAndRemoveTemp(pathSpool)
		return nil, err
	}
	return &SnapfileWriter{
		dst:       path,
		taken:     taken,
		segID:     make(map[string]uint32),
		pathSpool: pathSpool,
		recSpool:  recSpool,
		pathBuf:   bufio.NewWriterSize(pathSpool, 1<<16),
		recBuf:    bufio.NewWriterSize(recSpool, 1<<16),
		idx:       make(map[trace.UserID]*skelIndex),
		scratch:   make([]byte, 0, 64),
	}, nil
}

func closeAndRemoveTemp(f *os.File) error {
	name := f.Name()
	err := f.Close()
	if rerr := os.Remove(name); err == nil {
		err = rerr
	}
	return err
}

// Abort discards the writer and its spool files.
func (w *SnapfileWriter) Abort() error {
	if w.finished {
		return nil
	}
	w.finished = true
	err := closeAndRemoveTemp(w.pathSpool)
	if rerr := closeAndRemoveTemp(w.recSpool); err == nil {
		err = rerr
	}
	return err
}

// internSeg returns the id of one path segment, interning it on first
// sight. Ids are assigned in first-seen order, which the ascending
// Add order makes deterministic.
func (w *SnapfileWriter) internSeg(seg string) (uint32, error) {
	if id, ok := w.segID[seg]; ok {
		return id, nil
	}
	if uint64(len(w.segOff)) >= snapMaxSegs {
		return 0, fmt.Errorf("vfs: snapfile segment table overflow")
	}
	if len(w.blob)+len(seg) > math.MaxUint32 {
		return 0, fmt.Errorf("vfs: snapfile segment blob overflow")
	}
	id := uint32(len(w.segOff))
	w.segID[seg] = id
	w.segOff = append(w.segOff, uint32(len(w.blob)))
	w.segLen = append(w.segLen, uint32(len(seg)))
	w.blob = append(w.blob, seg...)
	return id, nil
}

// Add appends one file. Paths must arrive strictly ascending (the
// snapshot's system order); Size and User must be non-negative.
func (w *SnapfileWriter) Add(path string, m FileMeta) error {
	if w.finished {
		return errors.New("vfs: snapfile writer already finished")
	}
	if len(path) == 0 || path[0] != '/' {
		return fmt.Errorf("vfs: snapfile path %q is not absolute", path)
	}
	if m.Size < 0 {
		return fmt.Errorf("vfs: snapfile negative size for %q", path)
	}
	if m.User < 0 || m.Stripes < 0 || int64(m.Stripes) > math.MaxUint32 {
		return fmt.Errorf("vfs: snapfile user/stripes out of range for %q", path)
	}
	if w.files > 0 && path <= w.lastPath {
		return fmt.Errorf("vfs: snapfile paths out of order: %q after %q", path, w.lastPath)
	}
	if w.files >= math.MaxUint32 {
		return errors.New("vfs: snapfile file table overflow")
	}
	pathOff := w.pathIDs
	if pathOff > math.MaxUint32 {
		return errors.New("vfs: snapfile path-id stream overflow")
	}
	// Split into segments: "/a/b" → "a", "b"; empty segments round-trip.
	segs := uint32(0)
	rest := path[1:]
	for {
		cut := -1
		for i := 0; i < len(rest); i++ {
			if rest[i] == '/' {
				cut = i
				break
			}
		}
		seg := rest
		if cut >= 0 {
			seg = rest[:cut]
		}
		id, err := w.internSeg(seg)
		if err != nil {
			return err
		}
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], id)
		if _, err := w.pathBuf.Write(b[:]); err != nil {
			return err
		}
		segs++
		w.pathIDs++
		if cut < 0 {
			break
		}
		rest = rest[cut+1:]
	}
	rec := w.scratch[:snapRecSize]
	binary.LittleEndian.PutUint32(rec[0:4], uint32(m.User))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(m.Stripes))
	binary.LittleEndian.PutUint64(rec[8:16], uint64(m.Size))
	binary.LittleEndian.PutUint64(rec[16:24], uint64(m.ATime))
	binary.LittleEndian.PutUint32(rec[24:28], uint32(pathOff))
	binary.LittleEndian.PutUint32(rec[28:32], segs)
	if _, err := w.recBuf.Write(rec); err != nil {
		return err
	}
	fid := uint32(w.files)
	sk := w.idx[m.User]
	if sk == nil {
		sk = &skelIndex{}
		w.idx[m.User] = sk
	}
	day := dayOf(m.ATime)
	di := len(sk.days) - 1
	if di < 0 || sk.days[di] != day {
		di = searchDays(sk.days, day)
		if di == len(sk.days) || sk.days[di] != day {
			sk.days = append(sk.days, 0)
			copy(sk.days[di+1:], sk.days[di:])
			sk.days[di] = day
			sk.buckets = append(sk.buckets, nil)
			copy(sk.buckets[di+1:], sk.buckets[di:])
			sk.buckets[di] = nil
		}
	}
	sk.buckets[di] = append(sk.buckets[di], fid)
	w.files++
	w.lastPath = path
	return nil
}

// crcWriter streams bytes to w while folding them into a CRC-32C.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, castagnoli, p[:n])
	return n, err
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Finish assembles the snapfile durably and removes the spools.
func (w *SnapfileWriter) Finish() (err error) {
	if w.finished {
		return errors.New("vfs: snapfile writer already finished")
	}
	defer func() { _ = w.Abort() }() // spool cleanup; best-effort
	if err := w.pathBuf.Flush(); err != nil {
		return err
	}
	if err := w.recBuf.Flush(); err != nil {
		return err
	}

	users := make([]trace.UserID, 0, len(w.idx))
	for u := range w.idx {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	indexLen := uint64(0)
	for _, u := range users {
		sk := w.idx[u]
		indexLen += 8
		for _, b := range sk.buckets {
			indexLen += 12 + 4*uint64(len(b))
		}
	}

	var lens [numSections]uint64
	lens[secSegTab] = 8 * uint64(len(w.segOff))
	lens[secSegBlob] = uint64(len(w.blob))
	lens[secPathIDs] = 4 * w.pathIDs
	lens[secFileTab] = snapRecSize * w.files
	lens[secIndex] = indexLen
	var offs [numSections]uint64
	off := uint64(snapHdrSize)
	for i := range lens {
		offs[i] = off
		off += lens[i]
	}
	total := off

	hdr := make([]byte, snapHdrSize)
	copy(hdr[0:8], snapMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], snapVersion)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(w.taken))
	binary.LittleEndian.PutUint64(hdr[24:32], w.files)
	binary.LittleEndian.PutUint64(hdr[32:40], uint64(len(w.segOff)))
	binary.LittleEndian.PutUint64(hdr[40:48], uint64(len(users)))
	for i := range lens {
		binary.LittleEndian.PutUint64(hdr[56+16*i:], offs[i])
		binary.LittleEndian.PutUint64(hdr[64+16*i:], lens[i])
	}
	binary.LittleEndian.PutUint64(hdr[136:144], total)

	dir := filepath.Dir(w.dst)
	out, err := os.CreateTemp(dir, ".snapfile-out-*")
	if err != nil {
		return err
	}
	tmpName := out.Name()
	defer func() {
		if out != nil {
			_ = out.Close()
			_ = os.Remove(tmpName)
		}
	}()
	if _, err := out.Write(hdr); err != nil {
		return err
	}
	bw := bufio.NewWriterSize(out, 1<<16)
	cw := &crcWriter{w: bw}
	var b8 [8]byte
	for i := range w.segOff {
		binary.LittleEndian.PutUint32(b8[0:4], w.segOff[i])
		binary.LittleEndian.PutUint32(b8[4:8], w.segLen[i])
		if _, err := cw.Write(b8[:]); err != nil {
			return err
		}
	}
	if _, err := cw.Write(w.blob); err != nil {
		return err
	}
	for _, spool := range []*os.File{w.pathSpool, w.recSpool} {
		if _, err := spool.Seek(0, io.SeekStart); err != nil {
			return err
		}
		if _, err := io.Copy(cw, spool); err != nil {
			return err
		}
	}
	var b12 [12]byte
	for _, u := range users {
		sk := w.idx[u]
		binary.LittleEndian.PutUint32(b8[0:4], uint32(u))
		binary.LittleEndian.PutUint32(b8[4:8], uint32(len(sk.days)))
		if _, err := cw.Write(b8[:]); err != nil {
			return err
		}
		for di, day := range sk.days {
			binary.LittleEndian.PutUint64(b12[0:8], uint64(day))
			binary.LittleEndian.PutUint32(b12[8:12], uint32(len(sk.buckets[di])))
			if _, err := cw.Write(b12[:]); err != nil {
				return err
			}
			for _, fid := range sk.buckets[di] {
				binary.LittleEndian.PutUint32(b8[0:4], fid)
				if _, err := cw.Write(b8[:4]); err != nil {
					return err
				}
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], cw.crc)
	if _, err := out.WriteAt(crcb[:], 48); err != nil {
		return err
	}
	if err := fsx.SyncFile(out); err != nil {
		return err
	}
	if err := out.Close(); err != nil {
		out = nil
		_ = os.Remove(tmpName)
		return err
	}
	out = nil
	if err := fsx.RenameDurable(tmpName, w.dst); err != nil {
		_ = os.Remove(tmpName)
		return err
	}
	return nil
}

// WriteSnapfile streams a namespace's current state (system order
// walk) into a snapfile at path.
func WriteSnapfile(path string, ns Namespace, taken timeutil.Time) error {
	w, err := NewSnapfileWriter(path, taken)
	if err != nil {
		return err
	}
	var addErr error
	ns.Walk(func(p string, m FileMeta) bool {
		addErr = w.Add(p, m)
		return addErr == nil
	})
	if addErr != nil {
		_ = w.Abort()
		return addErr
	}
	return w.Finish()
}

// WriteSnapfileFromSnapshot converts a parsed TSV metadata snapshot
// into a snapfile — the one-time conversion step; afterwards replays
// open the snapfile directly.
func WriteSnapfileFromSnapshot(path string, s *trace.Snapshot) error {
	w, err := NewSnapfileWriter(path, s.Taken)
	if err != nil {
		return err
	}
	for i := range s.Entries {
		e := &s.Entries[i]
		if err := w.Add(e.Path, FileMeta{User: e.User, Size: e.Size, Stripes: e.Stripes, ATime: e.ATime}); err != nil {
			_ = w.Abort()
			return err
		}
	}
	return w.Finish()
}
