package vfs

import (
	"fmt"
	"math/rand"
	"testing"

	"activedr/internal/timeutil"
	"activedr/internal/trace"
)

// benchFiles sizes the radix micro-benchmarks: large enough that tree
// depth and fan-out resemble the replay's namespace, small enough to
// rebuild between timer pauses.
const benchFiles = 100_000

const benchUsers = 512

func benchPaths(n int) []string {
	rng := rand.New(rand.NewSource(1))
	paths := make([]string, n)
	for i := range paths {
		paths[i] = fmt.Sprintf("/lustre/atlas/u%05d/proj%d/run%04d/out%06d.dat",
			i%benchUsers, rng.Intn(8), rng.Intn(2000), i)
	}
	return paths
}

func benchMeta(i int) FileMeta {
	return FileMeta{
		User:  trace.UserID(i % benchUsers),
		Size:  int64(i%4096 + 1),
		ATime: timeutil.Time(int64(i) * 300), // spread over ~a year of seconds
	}
}

func benchFS(b *testing.B, paths []string) *FS {
	b.Helper()
	fs := New()
	for i, p := range paths {
		if err := fs.Insert(p, benchMeta(i)); err != nil {
			b.Fatal(err)
		}
	}
	return fs
}

func BenchmarkRadixPut(b *testing.B) {
	paths := benchPaths(benchFiles)
	b.ReportAllocs()
	b.ResetTimer()
	var fs *FS
	for i := 0; i < b.N; i++ {
		if i%len(paths) == 0 {
			b.StopTimer()
			fs = New()
			b.StartTimer()
		}
		if err := fs.Insert(paths[i%len(paths)], benchMeta(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRadixGet(b *testing.B) {
	paths := benchPaths(benchFiles)
	fs := benchFS(b, paths)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := fs.Lookup(paths[i%len(paths)]); !ok {
			b.Fatal("missing path")
		}
	}
}

func BenchmarkRadixDelete(b *testing.B) {
	paths := benchPaths(benchFiles)
	b.ReportAllocs()
	b.ResetTimer()
	var fs *FS
	for i := 0; i < b.N; i++ {
		if i%len(paths) == 0 {
			b.StopTimer()
			fs = benchFS(b, paths)
			b.StartTimer()
		}
		if _, ok := fs.Remove(paths[i%len(paths)]); !ok {
			b.Fatal("missing path")
		}
	}
}

func BenchmarkRadixWalk(b *testing.B) {
	fs := benchFS(b, benchPaths(benchFiles))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		files := 0
		fs.Walk(func(string, FileMeta) bool { files++; return true })
		if files != benchFiles {
			b.Fatalf("walked %d files", files)
		}
	}
}

// BenchmarkStaleFiles measures the steady-state indexed candidate
// query: the first call per user compacts its buckets, every later
// call appends straight out of the compacted index.
func BenchmarkStaleFiles(b *testing.B) {
	fs := benchFS(b, benchPaths(benchFiles))
	cutoff := timeutil.Time(int64(benchFiles) * 150) // ~half the files stale
	var dst []Candidate
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := trace.UserID(i % benchUsers)
		dst = fs.AppendStaleFiles(dst[:0], u, cutoff)
	}
}

func BenchmarkFSClone(b *testing.B) {
	fs := benchFS(b, benchPaths(benchFiles))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := fs.Clone(); c.Count() != benchFiles {
			b.Fatal("bad clone")
		}
	}
}
