// Package vfs implements the compact prefix tree that serves as the
// virtual parallel file system in the ActiveDR emulation (paper
// §4.1.3: "the compact prefix tree serves as a virtual file system in
// our emulation"). It answers path-membership queries, keeps
// per-file metadata (owner, size, atime), walks the namespace in
// lexicographic order for purge scans, and doubles as the reserved-
// path index backing the purge-exemption feature.
package vfs

import "strings"

// radix is a byte-wise compressed prefix tree. Each node carries the
// edge label that leads to it; terminal nodes own a value. Children
// are kept sorted by their first label byte so walks emit keys in
// lexicographic order — the "system order" FLT scans use.
type radix[V any] struct {
	root  *rnode[V]
	count int
}

type rnode[V any] struct {
	label    string
	children []*rnode[V]
	// childKeys mirrors children: childKeys[i] == children[i].label[0].
	// Descents search this contiguous byte slice instead of chasing a
	// child pointer per probe — the tree descent is the replay's
	// hottest loop, and the pointer chase dominated its profile.
	childKeys []byte
	value     V
	terminal  bool
}

func newRadix[V any]() *radix[V] {
	return &radix[V]{root: &rnode[V]{}}
}

// commonPrefixLen returns the length of the shared prefix of a and b.
func commonPrefixLen(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// childIndex locates the child whose label starts with byte c,
// returning (index, found) — insertion point when not found. Small
// fan-outs scan linearly (cheaper than a binary search's mispredicted
// branches); large ones binary-search the key bytes. Hand-rolled
// rather than sort.Search: the closure call costs more than the
// search on this path.
func (n *rnode[V]) childIndex(c byte) (int, bool) {
	keys := n.childKeys
	if len(keys) <= 8 {
		for i := 0; i < len(keys); i++ {
			if keys[i] >= c {
				return i, keys[i] == c
			}
		}
		return len(keys), false
	}
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(keys) && keys[lo] == c {
		return lo, true
	}
	return lo, false
}

func (n *rnode[V]) insertChild(i int, child *rnode[V]) {
	n.children = append(n.children, nil)
	copy(n.children[i+1:], n.children[i:])
	n.children[i] = child
	n.childKeys = append(n.childKeys, 0)
	copy(n.childKeys[i+1:], n.childKeys[i:])
	n.childKeys[i] = child.label[0]
}

// put inserts or replaces key. It returns the terminal node now
// holding the value (stable for the key's lifetime: splits keep the
// existing child object and deletes of other keys merge around it, so
// callers may cache the pointer until the key itself is deleted),
// whether the key was new, and the previous value when it was not.
func (t *radix[V]) put(key string, v V) (node *rnode[V], prev V, existed bool) {
	if key == "" {
		prev, existed = t.root.value, t.root.terminal
		t.root.value, t.root.terminal = v, true
		if !existed {
			t.count++
		}
		return t.root, prev, existed
	}
	n := t.root
	rest := key
	for {
		i, ok := n.childIndex(rest[0])
		if !ok {
			leaf := &rnode[V]{label: rest, value: v, terminal: true}
			n.insertChild(i, leaf)
			t.count++
			return leaf, prev, false
		}
		child := n.children[i]
		cp := commonPrefixLen(rest, child.label)
		if cp == len(child.label) {
			if cp == len(rest) {
				prev, existed = child.value, child.terminal
				child.value, child.terminal = v, true
				if !existed {
					t.count++
				}
				return child, prev, existed
			}
			n, rest = child, rest[cp:]
			continue
		}
		// Split the edge at cp. The split node keeps the old first
		// byte, so n.childKeys[i] stays valid.
		split := &rnode[V]{label: child.label[:cp]}
		child.label = child.label[cp:]
		split.children = []*rnode[V]{child}
		split.childKeys = []byte{child.label[0]}
		if cp == len(rest) {
			split.value, split.terminal = v, true
			n.children[i] = split
			t.count++
			return split, prev, false
		}
		leaf := &rnode[V]{label: rest[cp:], value: v, terminal: true}
		if leaf.label[0] < child.label[0] {
			split.children = []*rnode[V]{leaf, child}
			split.childKeys = []byte{leaf.label[0], child.label[0]}
		} else {
			split.children = []*rnode[V]{child, leaf}
			split.childKeys = []byte{child.label[0], leaf.label[0]}
		}
		n.children[i] = split
		t.count++
		return leaf, prev, false
	}
}

// get returns the value stored at key.
func (t *radix[V]) get(key string) (V, bool) {
	var zero V
	n := t.findNode(key)
	if n == nil || !n.terminal {
		return zero, false
	}
	return n.value, true
}

// findNode returns the node exactly matching key, terminal or not.
func (t *radix[V]) findNode(key string) *rnode[V] {
	n := t.root
	rest := key
	for rest != "" {
		i, ok := n.childIndex(rest[0])
		if !ok {
			return nil
		}
		child := n.children[i]
		if !strings.HasPrefix(rest, child.label) {
			return nil
		}
		rest = rest[len(child.label):]
		n = child
	}
	return n
}

// delete removes key, merging single-child pass-through nodes so the
// tree stays compact. It reports whether the key existed.
func (t *radix[V]) delete(key string) (V, bool) {
	var zero V
	if key == "" {
		if !t.root.terminal {
			return zero, false
		}
		v := t.root.value
		t.root.terminal = false
		t.root.value = zero
		t.count--
		return v, true
	}
	type frame struct {
		parent *rnode[V]
		index  int
	}
	// Backed by a fixed array so the descent records stay on the
	// stack; purge sweeps delete tens of thousands of keys per
	// trigger and a heap-grown slice here dominated the allocation
	// profile. Tree depth beyond 64 spills to append and still works.
	var pathBuf [64]frame
	path := pathBuf[:0]
	n := t.root
	rest := key
	for rest != "" {
		i, ok := n.childIndex(rest[0])
		if !ok {
			return zero, false
		}
		child := n.children[i]
		if !strings.HasPrefix(rest, child.label) {
			return zero, false
		}
		path = append(path, frame{parent: n, index: i})
		rest = rest[len(child.label):]
		n = child
	}
	if !n.terminal {
		return zero, false
	}
	v := n.value
	n.terminal = false
	n.value = zero
	t.count--
	// Prune upward: drop childless non-terminal nodes (which may make
	// their parents childless in turn), then merge a single-child
	// pass-through node into its child once and stop — merging does
	// not change the parent's child count, so nothing above it can
	// have become prunable.
	for i := len(path) - 1; i >= 0; i-- {
		f := path[i]
		node := f.parent.children[f.index]
		if node.terminal {
			break
		}
		if len(node.children) == 0 {
			f.parent.children = append(f.parent.children[:f.index], f.parent.children[f.index+1:]...)
			f.parent.childKeys = append(f.parent.childKeys[:f.index], f.parent.childKeys[f.index+1:]...)
			continue
		}
		if len(node.children) == 1 {
			// The merged child inherits node's label prefix, so the
			// parent's key byte for this slot is unchanged.
			child := node.children[0]
			child.label = node.label + child.label
			f.parent.children[f.index] = child
		}
		break
	}
	return v, true
}

// walk visits every terminal key under the node reached by prefix, in
// lexicographic order. fn returning false stops the walk; walk
// reports whether it ran to completion.
func (t *radix[V]) walk(prefix string, fn func(key string, v V) bool) bool {
	// Find the deepest node on the prefix path, tracking the key
	// accumulated so far. The prefix may end inside an edge label.
	n := t.root
	acc := make([]byte, 0, 128)
	rest := prefix
	for rest != "" {
		i, ok := n.childIndex(rest[0])
		if !ok {
			return true
		}
		child := n.children[i]
		cp := commonPrefixLen(rest, child.label)
		if cp == len(rest) {
			// Prefix ends inside (or exactly at) this edge.
			acc = append(acc, child.label...)
			return walkNode(child, acc, fn)
		}
		if cp < len(child.label) {
			return true // diverged: nothing under prefix
		}
		acc = append(acc, child.label...)
		rest = rest[cp:]
		n = child
	}
	return walkNode(n, acc, fn)
}

func walkNode[V any](n *rnode[V], acc []byte, fn func(key string, v V) bool) bool {
	if n.terminal {
		if !fn(string(acc), n.value) {
			return false
		}
	}
	for _, c := range n.children {
		acc = append(acc, c.label...)
		if !walkNode(c, acc, fn) {
			return false
		}
		acc = acc[:len(acc)-len(c.label)]
	}
	return true
}

// countNodes sizes the arena a clone carves its copies from.
func countNodes[V any](n *rnode[V]) int {
	c := 1
	for _, ch := range n.children {
		c += countNodes(ch)
	}
	return c
}

// clone deep-copies the tree structurally. Labels and values are
// shared (strings are immutable, values copy by value), and all nodes
// plus all child-pointer slices are carved from two bulk allocations
// sized by a pre-count walk — a clone happens once per replay run,
// and per-node allocations were a fifth of the replay's allocation
// profile. Child slices are capped (three-index slicing) so a later
// insertChild on the copy reallocates instead of stomping a sibling's
// arena segment.
func (t *radix[V]) clone() *radix[V] {
	total := countNodes(t.root)
	arena := make([]rnode[V], total)
	ptrs := make([]*rnode[V], total-1) // every node but the root is someone's child
	keys := make([]byte, total-1)
	ni, pi := 0, 0
	var cp func(src *rnode[V]) *rnode[V]
	cp = func(src *rnode[V]) *rnode[V] {
		dst := &arena[ni]
		ni++
		dst.label, dst.value, dst.terminal = src.label, src.value, src.terminal
		if k := len(src.children); k > 0 {
			ch := ptrs[pi : pi+k : pi+k]
			kk := keys[pi : pi+k : pi+k]
			pi += k
			copy(kk, src.childKeys)
			for i, c := range src.children {
				ch[i] = cp(c)
			}
			dst.children, dst.childKeys = ch, kk
		}
		return dst
	}
	return &radix[V]{root: cp(t.root), count: t.count}
}

// coveredBy reports whether key equals a stored key or descends from
// a stored key treated as a directory (stored key followed by '/').
// This powers subtree reservations.
func (t *radix[V]) coveredBy(key string) bool {
	n := t.root
	rest := key
	if n.terminal {
		return true // root reservation covers everything
	}
	consumed := 0
	for rest != "" {
		i, ok := n.childIndex(rest[0])
		if !ok {
			return false
		}
		child := n.children[i]
		if !strings.HasPrefix(rest, child.label) {
			return false
		}
		rest = rest[len(child.label):]
		consumed += len(child.label)
		n = child
		if n.terminal {
			if rest == "" || rest[0] == '/' {
				return true
			}
		}
	}
	return false
}

func (t *radix[V]) size() int { return t.count }
