// Package vfs implements the compact prefix tree that serves as the
// virtual parallel file system in the ActiveDR emulation (paper
// §4.1.3: "the compact prefix tree serves as a virtual file system in
// our emulation"). It answers path-membership queries, keeps
// per-file metadata (owner, size, atime), walks the namespace in
// lexicographic order for purge scans, and doubles as the reserved-
// path index backing the purge-exemption feature.
package vfs

import (
	"sort"
	"strings"
)

// radix is a byte-wise compressed prefix tree. Each node carries the
// edge label that leads to it; terminal nodes own a value. Children
// are kept sorted by their first label byte so walks emit keys in
// lexicographic order — the "system order" FLT scans use.
type radix[V any] struct {
	root  *rnode[V]
	count int
}

type rnode[V any] struct {
	label    string
	children []*rnode[V]
	value    V
	terminal bool
}

func newRadix[V any]() *radix[V] {
	return &radix[V]{root: &rnode[V]{}}
}

// commonPrefixLen returns the length of the shared prefix of a and b.
func commonPrefixLen(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// childIndex locates the child whose label starts with byte c,
// returning (index, found) — insertion point when not found.
func (n *rnode[V]) childIndex(c byte) (int, bool) {
	i := sort.Search(len(n.children), func(i int) bool {
		return n.children[i].label[0] >= c
	})
	if i < len(n.children) && n.children[i].label[0] == c {
		return i, true
	}
	return i, false
}

func (n *rnode[V]) insertChild(i int, child *rnode[V]) {
	n.children = append(n.children, nil)
	copy(n.children[i+1:], n.children[i:])
	n.children[i] = child
}

// put inserts or replaces key. It reports whether the key was new and
// returns the previous value when it was not.
func (t *radix[V]) put(key string, v V) (prev V, existed bool) {
	if key == "" {
		prev, existed = t.root.value, t.root.terminal
		t.root.value, t.root.terminal = v, true
		if !existed {
			t.count++
		}
		return prev, existed
	}
	n := t.root
	rest := key
	for {
		i, ok := n.childIndex(rest[0])
		if !ok {
			n.insertChild(i, &rnode[V]{label: rest, value: v, terminal: true})
			t.count++
			return prev, false
		}
		child := n.children[i]
		cp := commonPrefixLen(rest, child.label)
		if cp == len(child.label) {
			if cp == len(rest) {
				prev, existed = child.value, child.terminal
				child.value, child.terminal = v, true
				if !existed {
					t.count++
				}
				return prev, existed
			}
			n, rest = child, rest[cp:]
			continue
		}
		// Split the edge at cp.
		split := &rnode[V]{label: child.label[:cp]}
		child.label = child.label[cp:]
		split.children = []*rnode[V]{child}
		if cp == len(rest) {
			split.value, split.terminal = v, true
		} else {
			leaf := &rnode[V]{label: rest[cp:], value: v, terminal: true}
			if leaf.label[0] < child.label[0] {
				split.children = []*rnode[V]{leaf, child}
			} else {
				split.children = []*rnode[V]{child, leaf}
			}
		}
		n.children[i] = split
		t.count++
		return prev, false
	}
}

// get returns the value stored at key.
func (t *radix[V]) get(key string) (V, bool) {
	var zero V
	n := t.findNode(key)
	if n == nil || !n.terminal {
		return zero, false
	}
	return n.value, true
}

// findNode returns the node exactly matching key, terminal or not.
func (t *radix[V]) findNode(key string) *rnode[V] {
	n := t.root
	rest := key
	for rest != "" {
		i, ok := n.childIndex(rest[0])
		if !ok {
			return nil
		}
		child := n.children[i]
		if !strings.HasPrefix(rest, child.label) {
			return nil
		}
		rest = rest[len(child.label):]
		n = child
	}
	return n
}

// delete removes key, merging single-child pass-through nodes so the
// tree stays compact. It reports whether the key existed.
func (t *radix[V]) delete(key string) (V, bool) {
	var zero V
	if key == "" {
		if !t.root.terminal {
			return zero, false
		}
		v := t.root.value
		t.root.terminal = false
		t.root.value = zero
		t.count--
		return v, true
	}
	type frame struct {
		parent *rnode[V]
		index  int
	}
	var path []frame
	n := t.root
	rest := key
	for rest != "" {
		i, ok := n.childIndex(rest[0])
		if !ok {
			return zero, false
		}
		child := n.children[i]
		if !strings.HasPrefix(rest, child.label) {
			return zero, false
		}
		path = append(path, frame{parent: n, index: i})
		rest = rest[len(child.label):]
		n = child
	}
	if !n.terminal {
		return zero, false
	}
	v := n.value
	n.terminal = false
	n.value = zero
	t.count--
	// Prune upward: drop childless non-terminal nodes (which may make
	// their parents childless in turn), then merge a single-child
	// pass-through node into its child once and stop — merging does
	// not change the parent's child count, so nothing above it can
	// have become prunable.
	for i := len(path) - 1; i >= 0; i-- {
		f := path[i]
		node := f.parent.children[f.index]
		if node.terminal {
			break
		}
		if len(node.children) == 0 {
			f.parent.children = append(f.parent.children[:f.index], f.parent.children[f.index+1:]...)
			continue
		}
		if len(node.children) == 1 {
			child := node.children[0]
			child.label = node.label + child.label
			f.parent.children[f.index] = child
		}
		break
	}
	return v, true
}

// walk visits every terminal key under the node reached by prefix, in
// lexicographic order. fn returning false stops the walk; walk
// reports whether it ran to completion.
func (t *radix[V]) walk(prefix string, fn func(key string, v V) bool) bool {
	// Find the deepest node on the prefix path, tracking the key
	// accumulated so far. The prefix may end inside an edge label.
	n := t.root
	acc := make([]byte, 0, 128)
	rest := prefix
	for rest != "" {
		i, ok := n.childIndex(rest[0])
		if !ok {
			return true
		}
		child := n.children[i]
		cp := commonPrefixLen(rest, child.label)
		if cp == len(rest) {
			// Prefix ends inside (or exactly at) this edge.
			acc = append(acc, child.label...)
			return walkNode(child, acc, fn)
		}
		if cp < len(child.label) {
			return true // diverged: nothing under prefix
		}
		acc = append(acc, child.label...)
		rest = rest[cp:]
		n = child
	}
	return walkNode(n, acc, fn)
}

func walkNode[V any](n *rnode[V], acc []byte, fn func(key string, v V) bool) bool {
	if n.terminal {
		if !fn(string(acc), n.value) {
			return false
		}
	}
	for _, c := range n.children {
		acc = append(acc, c.label...)
		if !walkNode(c, acc, fn) {
			return false
		}
		acc = acc[:len(acc)-len(c.label)]
	}
	return true
}

// coveredBy reports whether key equals a stored key or descends from
// a stored key treated as a directory (stored key followed by '/').
// This powers subtree reservations.
func (t *radix[V]) coveredBy(key string) bool {
	n := t.root
	rest := key
	if n.terminal {
		return true // root reservation covers everything
	}
	consumed := 0
	for rest != "" {
		i, ok := n.childIndex(rest[0])
		if !ok {
			return false
		}
		child := n.children[i]
		if !strings.HasPrefix(rest, child.label) {
			return false
		}
		rest = rest[len(child.label):]
		consumed += len(child.label)
		n = child
		if n.terminal {
			if rest == "" || rest[0] == '/' {
				return true
			}
		}
	}
	return false
}

func (t *radix[V]) size() int { return t.count }
