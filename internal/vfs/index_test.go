package vfs

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"activedr/internal/timeutil"
	"activedr/internal/trace"
)

// modelStale computes StaleFiles' contract by brute force over a
// path→meta map: live files of u with ATime < cutoff, (ATime, Path)
// ascending.
func modelStale(model map[string]FileMeta, u trace.UserID, cutoff timeutil.Time) []Candidate {
	var out []Candidate
	for p, m := range model {
		if m.User == u && m.ATime < cutoff {
			out = append(out, Candidate{Path: p, Meta: m})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Meta.ATime != out[j].Meta.ATime {
			return out[i].Meta.ATime < out[j].Meta.ATime
		}
		return out[i].Path < out[j].Path
	})
	return out
}

func checkStale(t *testing.T, fs *FS, model map[string]FileMeta, u trace.UserID, cutoff timeutil.Time) {
	t.Helper()
	got := fs.StaleFiles(u, cutoff)
	want := modelStale(model, u, cutoff)
	if len(got) == 0 && len(want) == 0 {
		return
	}
	// The model doesn't predict the cached node hint; blank it before
	// comparing the contractual (Path, Meta) content.
	got = append([]Candidate(nil), got...)
	for i := range got {
		got[i].node = nil
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("StaleFiles(%d, %d):\n got %v\nwant %v", u, cutoff, got, want)
	}
}

// TestStaleFilesAgainstModel drives the FS and a map model through
// random churn (inserts, replacements, touches, removes) with
// interleaved stale queries — the queries themselves compact index
// buckets, so this also exercises compaction correctness.
func TestStaleFilesAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	fs := New()
	model := make(map[string]FileMeta)
	const users = 8
	paths := make([]string, 240)
	for i := range paths {
		paths[i] = fmt.Sprintf("/scratch/u%d/job%03d/out.dat", i%users, i)
	}
	randTime := func() timeutil.Time { return timeutil.Time(rng.Int63n(int64(timeutil.Days(200)))) }
	for step := 0; step < 6000; step++ {
		p := paths[rng.Intn(len(paths))]
		switch op := rng.Intn(10); {
		case op < 5: // insert or replace, sometimes changing owner
			m := FileMeta{
				User:  trace.UserID(rng.Intn(users)),
				Size:  int64(rng.Intn(1000)) + 1,
				ATime: randTime(),
			}
			if err := fs.Insert(p, m); err != nil {
				t.Fatal(err)
			}
			model[p] = m
		case op < 7:
			at := randTime()
			ok := fs.Touch(p, at)
			if _, exists := model[p]; ok != exists {
				t.Fatalf("Touch(%q) = %v, model says %v", p, ok, exists)
			}
			if ok {
				m := model[p]
				m.ATime = at
				model[p] = m
			}
		case op < 8:
			_, ok := fs.Remove(p)
			if _, exists := model[p]; ok != exists {
				t.Fatalf("Remove(%q) = %v, model says %v", p, ok, exists)
			}
			delete(model, p)
		default:
			checkStale(t, fs, model, trace.UserID(rng.Intn(users)), randTime())
		}
	}
	// Final sweep: every user at several cutoffs, including extremes.
	cutoffs := []timeutil.Time{0, timeutil.Time(timeutil.Days(50)), timeutil.Time(timeutil.Days(400))}
	for u := 0; u < users; u++ {
		for _, c := range cutoffs {
			checkStale(t, fs, model, trace.UserID(u), c)
		}
	}
}

// TestStaleFilesTombstones pins the lazy-invalidation rules: touched,
// removed and chowned files must not be reported under their old
// atime or owner.
func TestStaleFilesTombstones(t *testing.T) {
	fs := New()
	day := timeutil.Time(daySeconds)
	mustInsert := func(p string, u trace.UserID, at timeutil.Time) {
		t.Helper()
		if err := fs.Insert(p, FileMeta{User: u, Size: 1, ATime: at}); err != nil {
			t.Fatal(err)
		}
	}
	mustInsert("/a", 1, day)
	mustInsert("/b", 1, day)
	mustInsert("/c", 1, day)
	fs.Touch("/a", 100*day)                              // renewed: no longer stale
	fs.Remove("/b")                                      // gone
	mustInsert("/c", 2, day)                             // chowned to user 2
	if got := fs.StaleFiles(1, 50*day); len(got) != 0 {
		t.Fatalf("user 1 stale = %v, want none", got)
	}
	got := fs.StaleFiles(2, 50*day)
	if len(got) != 1 || got[0].Path != "/c" || got[0].Meta.User != 2 {
		t.Fatalf("user 2 stale = %v, want /c", got)
	}
	// /a reappears once the cutoff passes its renewed atime.
	got = fs.StaleFiles(1, 200*day)
	if len(got) != 1 || got[0].Path != "/a" || got[0].Meta.ATime != 100*day {
		t.Fatalf("user 1 stale after renewal = %v", got)
	}
}

// TestCloneCopiesIndex verifies a clone's candidate index is
// independent of the original's subsequent mutations, and vice versa.
func TestCloneCopiesIndex(t *testing.T) {
	fs := New()
	day := timeutil.Time(daySeconds)
	for i := 0; i < 20; i++ {
		if err := fs.Insert(fmt.Sprintf("/u/f%02d", i), FileMeta{User: 3, Size: 10, ATime: timeutil.Time(i) * day}); err != nil {
			t.Fatal(err)
		}
	}
	clone := fs.Clone()
	fs.Touch("/u/f00", 100*day)
	fs.Remove("/u/f01")
	if got := len(clone.StaleFiles(3, 50*day)); got != 20 {
		t.Fatalf("clone sees %d stale files, want 20 (original mutated)", got)
	}
	clone.Remove("/u/f02")
	if got := len(fs.StaleFiles(3, 50*day)); got != 18 {
		// original lost f00 (renewed) and f01 (removed), not f02
		t.Fatalf("original sees %d stale files, want 18", got)
	}
}

func TestUsersSorted(t *testing.T) {
	fs := New()
	for _, u := range []trace.UserID{9, 2, 5, 2, 7} {
		if err := fs.Insert(fmt.Sprintf("/u%d/f", u), FileMeta{User: u, Size: 1}); err != nil {
			t.Fatal(err)
		}
	}
	want := []trace.UserID{2, 5, 7, 9}
	if got := fs.Users(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Users() = %v, want %v", got, want)
	}
	fs.Remove("/u5/f")
	want = []trace.UserID{2, 7, 9}
	if got := fs.Users(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Users() after remove = %v, want %v", got, want)
	}
}
