// Package config carries the facility retention presets of the
// paper's Table 1 and shared experiment defaults.
package config

import (
	"fmt"

	"activedr/internal/timeutil"
)

// Facility is one row of Table 1: an HPC site and its production
// fixed-lifetime scratch retention policy.
type Facility struct {
	Name     string
	Scratch  string
	Lifetime timeutil.Duration
}

// Facilities lists the Table 1 presets.
func Facilities() []Facility {
	return []Facility{
		{Name: "NCAR", Scratch: "GLADE", Lifetime: timeutil.Days(120)},
		{Name: "OLCF", Scratch: "Spider", Lifetime: timeutil.Days(90)},
		{Name: "TACC", Scratch: "SCRATCH", Lifetime: timeutil.Days(30)},
		{Name: "NERSC", Scratch: "Lustre scratch", Lifetime: timeutil.Days(12 * 7)},
	}
}

// FacilityByName looks a preset up case-sensitively.
func FacilityByName(name string) (Facility, error) {
	for _, f := range Facilities() {
		if f.Name == name {
			return f, nil
		}
	}
	return Facility{}, fmt.Errorf("config: unknown facility %q", name)
}

// Paper-wide experiment constants (§4.1.3).
const (
	// TargetUtilization is the purge target: usage is brought down to
	// this fraction of capacity.
	TargetUtilization = 0.5
	// RetroPasses and RetroDecay configure the retrospective scans.
	RetroPasses = 5
	RetroDecay  = 0.8
)

// TriggerInterval is the purge trigger cadence (7 days at OLCF).
var TriggerInterval = timeutil.Days(7)

// PeriodLengths are the lifetime/period sweep of Figures 5 and 9–11.
var PeriodLengths = []timeutil.Duration{
	timeutil.Days(7), timeutil.Days(30), timeutil.Days(60), timeutil.Days(90),
}
