package config

import (
	"testing"

	"activedr/internal/timeutil"
)

// TestFacilityPresets pins the Table 1 rows.
func TestFacilityPresets(t *testing.T) {
	want := map[string]timeutil.Duration{
		"NCAR":  timeutil.Days(120),
		"OLCF":  timeutil.Days(90),
		"TACC":  timeutil.Days(30),
		"NERSC": timeutil.Days(84), // 12 weeks
	}
	fs := Facilities()
	if len(fs) != len(want) {
		t.Fatalf("facilities = %d, want %d", len(fs), len(want))
	}
	for _, f := range fs {
		if want[f.Name] != f.Lifetime {
			t.Errorf("%s lifetime = %v, want %v", f.Name, f.Lifetime, want[f.Name])
		}
		if f.Scratch == "" {
			t.Errorf("%s missing scratch name", f.Name)
		}
	}
}

func TestFacilityByName(t *testing.T) {
	f, err := FacilityByName("OLCF")
	if err != nil || f.Lifetime != timeutil.Days(90) {
		t.Fatalf("OLCF lookup = %+v, %v", f, err)
	}
	if _, err := FacilityByName("NOPE"); err == nil {
		t.Fatal("unknown facility accepted")
	}
}

func TestSweepConstants(t *testing.T) {
	if TargetUtilization != 0.5 || RetroPasses != 5 || RetroDecay != 0.8 {
		t.Fatal("paper constants drifted")
	}
	if len(PeriodLengths) != 4 || PeriodLengths[0] != timeutil.Days(7) || PeriodLengths[3] != timeutil.Days(90) {
		t.Fatalf("period sweep = %v", PeriodLengths)
	}
	if TriggerInterval != timeutil.Days(7) {
		t.Fatal("trigger interval drifted")
	}
}
