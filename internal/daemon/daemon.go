package daemon

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"activedr/internal/faults"
	"activedr/internal/obs"
	"activedr/internal/retention"
	"activedr/internal/sim"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
	"activedr/internal/wal"
)

// Named kill points the chaos harness can arm via faults.Config
// KillSpec on Config.WALFaults. Each models a process death at that
// exact instant; tests then rebuild the daemon over the same
// directories and assert it reconverges.
const (
	// KillWALSynced dies right after an ingest batch's fsync — events
	// durable in the WAL but their effects unacknowledged.
	KillWALSynced = "daemon.wal.synced"
	// KillRecoverRecord dies while recovery replays the WAL, after
	// the Nth record — a crash loop's worst case.
	KillRecoverRecord = "daemon.recover.record"
)

var (
	// ErrBackpressure reports a full ingest queue: the caller must
	// retry later (HTTP 429). Nothing was enqueued.
	ErrBackpressure = errors.New("daemon: ingest queue full")
	// ErrDegraded reports the daemon is in read-only mode after disk
	// pressure or repeated write failure; reads still work.
	ErrDegraded = errors.New("daemon: degraded read-only mode")
	// ErrClosed reports use after Close began.
	ErrClosed = errors.New("daemon: closed")
	// ErrKilled reports a simulated crash (chaos kill point or torn
	// write). The in-memory daemon is dead; the durable state on disk
	// is what the next incarnation recovers from.
	ErrKilled = errors.New("daemon: killed at chaos point")
)

// Config parameterizes a Daemon.
type Config struct {
	// WALDir holds the write-ahead log (required).
	WALDir string
	// CheckpointDir holds trigger-boundary state checkpoints in the
	// internal/sim layout (required; recovery = checkpoint + WAL tail).
	CheckpointDir string
	// Policy selects the retention policy: "activedr" (default) or
	// "flt".
	Policy string
	// Sim carries the retention parameters (lifetime, trigger
	// interval, target utilization, ...).
	Sim sim.Config
	// QueueDepth bounds the ingest queue in batches (default 64);
	// a full queue surfaces ErrBackpressure to the feeder.
	QueueDepth int
	// SyncEvery batches WAL fsyncs: at most this many events land
	// between syncs within one batch (default 256; every batch also
	// syncs at its end before acknowledging).
	SyncEvery int
	// CheckpointEvery spaces checkpoints to one every N purge
	// triggers (default 1).
	CheckpointEvery int
	// SegmentBytes is the WAL segment roll threshold (default
	// wal.DefaultSegmentBytes).
	SegmentBytes int64
	// RetryAttempts bounds WAL-append retries on transient write
	// failure (default 5) before the daemon degrades.
	RetryAttempts int
	// RetryBase/RetryMax shape the jittered exponential backoff
	// between retries (defaults 10ms/1s).
	RetryBase, RetryMax time.Duration
	// BackoffSeed seeds the deterministic retry jitter.
	BackoffSeed uint64
	// Sleep is the retry wait function (default time.Sleep;
	// tests inject a recorder).
	Sleep func(time.Duration)
	// Faults injects replay-level faults (purge unlink failures, scan
	// interrupts, checkpoint kill points) into the policy via
	// internal/sim. Its state checkpoints and restores with the run.
	Faults *faults.Injector
	// WALFaults injects write-path faults (transient failures,
	// disk-full, torn writes, daemon kill points) into the WAL. Kept
	// separate from Faults so write-path draws never desynchronize
	// the replay-level stream — the property the daemon-vs-batch
	// equivalence tests depend on.
	WALFaults *faults.Injector
	// Obs attaches the observability layer; the registry also carries
	// the daemon's own queue/WAL/degraded metrics.
	Obs *obs.Observer
}

func (c Config) withDefaults() Config {
	if c.Policy == "" {
		c.Policy = "activedr"
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.SyncEvery <= 0 {
		c.SyncEvery = 256
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1
	}
	if c.RetryAttempts <= 0 {
		c.RetryAttempts = 5
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 10 * time.Millisecond
	}
	if c.RetryMax < c.RetryBase {
		c.RetryMax = time.Second
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	return c
}

// state is the daemon's lifecycle position.
type state int32

const (
	stateRunning state = iota
	stateDegraded
	stateKilled
	stateClosed
)

func (s state) String() string {
	switch s {
	case stateRunning:
		return "running"
	case stateDegraded:
		return "degraded"
	case stateKilled:
		return "killed"
	default:
		return "closed"
	}
}

type batch struct {
	events []Event
	done   chan error
}

// Daemon is the retention service core. One applier goroutine owns
// all mutations; HTTP handlers read under the same mutex.
type Daemon struct {
	cfg     Config
	em      *sim.Emulator
	users   []trace.User
	byName  map[string]trace.UserID
	backoff *faults.Backoff
	queue   chan batch
	applierDone chan struct{}

	ingestMu sync.RWMutex // guards queue against close-vs-send races
	closing  bool

	mu         sync.Mutex // guards everything below
	stream     *sim.Stream
	log        *wal.Log
	st         state
	reason     string        // why degraded/killed
	lastTS     timeutil.Time // newest event timestamp applied
	lastCkpt   int           // Applied() at the last checkpoint
	recovered  int           // events replayed from the WAL at startup
	walInfo    wal.RecoveryInfo
	recovering bool // suppress WAL pruning while Replay iterates

	closeOnce sync.Once
	closeErr  error

	m daemonMetrics
}

// daemonMetrics caches the daemon's registry handles (nil-safe).
type daemonMetrics struct {
	ingested   *obs.Counter
	unlinks    *obs.Counter
	rejected   *obs.Counter
	walRecords *obs.Counter
	walSyncs   *obs.Counter
	retries    *obs.Counter
	queueLen   *obs.Gauge
	degraded   *obs.Gauge
	lastSeq    *obs.Gauge
}

func newDaemonMetrics(o *obs.Observer) daemonMetrics {
	reg := o.Registry()
	return daemonMetrics{
		ingested:   reg.Counter("daemon_events_ingested_total"),
		unlinks:    reg.Counter("daemon_events_unlinked_total"),
		rejected:   reg.Counter("daemon_events_rejected_total"),
		walRecords: reg.Counter("daemon_wal_records_total"),
		walSyncs:   reg.Counter("daemon_wal_syncs_total"),
		retries:    reg.Counter("daemon_wal_retries_total"),
		queueLen:   reg.Gauge("daemon_queue_depth"),
		degraded:   reg.Gauge("daemon_degraded"),
		lastSeq:    reg.Gauge("daemon_last_seq"),
	}
}

// New builds the daemon over a dataset (metadata snapshot + activity
// logs), recovers its state — latest durable checkpoint plus the WAL
// tail — and starts the applier. The returned daemon is ready to
// serve; a chaos kill point armed on Config.WALFaults can abort
// recovery with ErrKilled.
func New(ds *trace.Dataset, cfg Config) (*Daemon, error) {
	cfg = cfg.withDefaults()
	if cfg.WALDir == "" || cfg.CheckpointDir == "" {
		return nil, errors.New("daemon: WALDir and CheckpointDir are required")
	}
	em, err := sim.New(ds, cfg.Sim)
	if err != nil {
		return nil, err
	}
	d := &Daemon{
		cfg:         cfg,
		em:          em,
		users:       ds.Users,
		byName:      trace.NameIndex(ds.Users),
		backoff:     faults.NewBackoff(cfg.BackoffSeed, cfg.RetryBase, cfg.RetryMax),
		queue:       make(chan batch, cfg.QueueDepth),
		applierDone: make(chan struct{}),
		m:           newDaemonMetrics(cfg.Obs),
	}

	var policy retention.Policy
	switch cfg.Policy {
	case "flt":
		policy = em.NewFLT()
	case "activedr":
		if policy, err = em.NewActiveDR(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("daemon: unknown policy %q (want activedr or flt)", cfg.Policy)
	}

	opts := sim.RunOptions{
		CheckpointDir:   cfg.CheckpointDir,
		CheckpointEvery: cfg.CheckpointEvery,
		Faults:          cfg.Faults,
		Obs:             cfg.Obs,
		OnCheckpoint:    d.onCheckpoint,
	}
	if sim.HasCheckpoint(cfg.CheckpointDir) {
		if d.stream, err = em.ResumeStream(policy, opts); err != nil {
			return nil, err
		}
	} else {
		d.stream = em.NewStream(policy, opts)
	}
	d.lastCkpt = d.stream.Applied()

	if err := d.recover(); err != nil {
		if d.log != nil {
			err = errors.Join(err, d.log.Close())
		}
		return nil, err
	}
	d.m.lastSeq.Set(int64(d.stream.Applied()))
	go d.applier()
	return d, nil
}

// recover opens the WAL, checks it joins the checkpoint without a
// gap, and replays every event past the checkpoint through the same
// Stream the live feed uses. Deterministic: killed and restarted at
// any record, the surviving state is always a prefix-consistent
// replay.
func (d *Daemon) recover() error {
	log, info, err := wal.Open(d.cfg.WALDir, wal.Options{
		SegmentBytes: d.cfg.SegmentBytes,
		Hooks:        walHooks(d.cfg.WALFaults),
	})
	if err != nil {
		return err
	}
	d.log = log
	d.walInfo = info

	applied := uint64(d.stream.Applied())
	if info.Records > 0 && info.FirstSeq > applied+1 {
		return fmt.Errorf("%w: checkpoint ends at event %d but the WAL starts at %d: events lost",
			wal.ErrCorrupt, applied, info.FirstSeq)
	}
	if info.LastSeq > applied {
		d.recovering = true
		defer func() { d.recovering = false }()
		err := log.Replay(applied, func(seq uint64, payload []byte) error {
			if d.cfg.WALFaults != nil && d.cfg.WALFaults.ShouldKill(KillRecoverRecord) {
				return fmt.Errorf("%w: during recovery at record %d", ErrKilled, seq)
			}
			ev, perr := ParseEvent(string(payload), d.byName)
			if perr != nil {
				return fmt.Errorf("%w: record %d: %v", wal.ErrCorrupt, seq, perr)
			}
			if aerr := d.apply(&ev); aerr != nil {
				return fmt.Errorf("daemon: recovery at record %d: %w", seq, aerr)
			}
			d.recovered++
			return nil
		})
		if err != nil {
			return err
		}
		// The replayed tail is durable again only once the next
		// checkpoint lands; until then the WAL stays the source of
		// truth, so prune only what the restored checkpoint covers.
	}
	if d.lastCkpt > 0 {
		if err := log.Prune(uint64(d.lastCkpt)); err != nil {
			return err
		}
	}
	return nil
}

// walHooks adapts a possibly-nil injector to the WAL's hook interface
// (a typed-nil *Injector must become a nil interface).
func walHooks(in *faults.Injector) wal.Hooks {
	if in == nil {
		return nil
	}
	return in
}

// onCheckpoint runs (with d.mu held, from the applier or recovery)
// after each checkpoint publishes: the WAL prefix the checkpoint
// covers is garbage.
func (d *Daemon) onCheckpoint(applied int) {
	d.lastCkpt = applied
	if d.recovering || d.log == nil {
		return
	}
	// Best-effort: a failed prune costs disk, not correctness.
	_ = d.log.Prune(uint64(applied))
}

// apply folds one event into the stream (caller holds d.mu or has
// exclusive access during recovery).
func (d *Daemon) apply(ev *Event) error {
	switch ev.Op {
	case OpUnlink:
		if _, err := d.stream.Unlink(ev.Path, ev.TS); err != nil {
			return err
		}
		d.m.unlinks.Inc()
	default:
		a := trace.Access{TS: ev.TS, User: ev.User, Create: ev.Op == OpCreate, Size: ev.Size, Path: ev.Path}
		if err := d.stream.Apply(&a); err != nil {
			return err
		}
	}
	d.lastTS = ev.TS
	return nil
}

// Ingest appends events to the WAL and applies them, returning once
// the batch is durable (fsynced) and applied. A full queue returns
// ErrBackpressure immediately — explicit backpressure, never an
// unbounded buffer. Events must be time-ordered within and across
// batches (the feed is a log).
func (d *Daemon) Ingest(events []Event) error {
	if len(events) == 0 {
		return nil
	}
	b := batch{events: events, done: make(chan error, 1)}
	d.ingestMu.RLock()
	if d.closing {
		d.ingestMu.RUnlock()
		return ErrClosed
	}
	select {
	case d.queue <- b:
		d.ingestMu.RUnlock()
	default:
		d.ingestMu.RUnlock()
		d.m.rejected.Add(int64(len(events)))
		return ErrBackpressure
	}
	d.m.queueLen.Set(int64(len(d.queue)))
	return <-b.done
}

// applier is the single goroutine that owns all mutations.
func (d *Daemon) applier() {
	defer close(d.applierDone)
	for b := range d.queue {
		d.m.queueLen.Set(int64(len(d.queue)))
		b.done <- d.applyBatch(b.events)
	}
}

// applyBatch runs one ingest batch: WAL append (with deterministic
// jittered-backoff retries) then apply, fsync batching within, one
// final fsync before the acknowledgment.
func (d *Daemon) applyBatch(events []Event) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch d.st {
	case stateDegraded:
		return fmt.Errorf("%w (%s)", ErrDegraded, d.reason)
	case stateKilled:
		return fmt.Errorf("%w (%s)", ErrKilled, d.reason)
	case stateClosed:
		return ErrClosed
	}
	sinceSync := 0
	for i := range events {
		ev := &events[i]
		payload, err := ev.Encode(d.users)
		if err != nil {
			return err // nothing appended for this event; batch aborts
		}
		var seq uint64
		attempt := 0
		err = faults.RetryBackoff(d.cfg.RetryAttempts, d.backoff, func(t time.Duration) {
			d.m.retries.Inc()
			d.cfg.Sleep(t)
		}, func() error {
			attempt++
			var aerr error
			seq, aerr = d.log.Append(payload)
			return aerr
		})
		if err != nil {
			switch {
			case errors.Is(err, wal.ErrTorn):
				d.die(stateKilled, fmt.Sprintf("torn write at event %d: %v", i, err))
				return fmt.Errorf("%w: %v", ErrKilled, err)
			case faults.IsDiskFull(err):
				d.die(stateDegraded, fmt.Sprintf("disk full: %v", err))
				return fmt.Errorf("%w: %v", ErrDegraded, err)
			default:
				d.die(stateDegraded, fmt.Sprintf("write failed after %d attempts: %v", attempt, err))
				return fmt.Errorf("%w: %v", ErrDegraded, err)
			}
		}
		d.m.walRecords.Inc()
		if err := d.apply(ev); err != nil {
			if errors.Is(err, sim.ErrInterrupted) {
				// A replay-level kill point (checkpoint published)
				// fired: simulated process death.
				d.die(stateKilled, "kill point after checkpoint publish")
				return fmt.Errorf("%w: %v", ErrKilled, err)
			}
			// The event is already durable but unappliable — a feed
			// bug. Degrade loudly instead of diverging quietly.
			d.die(stateDegraded, fmt.Sprintf("apply event %d: %v", seq, err))
			return fmt.Errorf("%w: %v", ErrDegraded, err)
		}
		d.m.lastSeq.Set(int64(d.stream.Applied()))
		d.m.ingested.Inc()
		sinceSync++
		if sinceSync >= d.cfg.SyncEvery {
			if err := d.syncLocked(); err != nil {
				return err
			}
			sinceSync = 0
		}
	}
	if err := d.syncLocked(); err != nil {
		return err
	}
	if d.cfg.WALFaults != nil && d.cfg.WALFaults.ShouldKill(KillWALSynced) {
		d.die(stateKilled, "kill point after batch fsync")
		return ErrKilled
	}
	return nil
}

// syncLocked fsyncs the WAL (d.mu held), degrading on failure.
func (d *Daemon) syncLocked() error {
	if err := d.log.Sync(); err != nil {
		d.die(stateDegraded, fmt.Sprintf("wal fsync: %v", err))
		return fmt.Errorf("%w: %v", ErrDegraded, err)
	}
	d.m.walSyncs.Inc()
	return nil
}

// die moves the daemon to a terminal ingest state (reads stay up).
func (d *Daemon) die(s state, reason string) {
	d.st = s
	d.reason = reason
	d.m.degraded.Set(1)
}

// Close drains the ingest queue, takes a final checkpoint, and
// releases the WAL — the graceful SIGTERM path. Safe to call more
// than once.
func (d *Daemon) Close() error {
	d.closeOnce.Do(func() {
		d.ingestMu.Lock()
		d.closing = true
		close(d.queue)
		d.ingestMu.Unlock()
		<-d.applierDone // queued batches drain through the applier

		d.mu.Lock()
		defer d.mu.Unlock()
		var errs []error
		if d.st == stateRunning {
			if d.cfg.CheckpointDir != "" && d.stream.Applied() > d.lastCkpt {
				at := d.lastTS
				if at == 0 {
					at = d.stream.NextTrigger() // stamp only; never read back
				}
				if err := d.stream.Checkpoint(at); err != nil {
					errs = append(errs, err)
				}
			}
			d.st = stateClosed
		}
		if err := d.log.Close(); err != nil {
			errs = append(errs, err)
		}
		d.closeErr = errors.Join(errs...)
	})
	return d.closeErr
}
