// Package daemon implements activedrd's core: a long-running
// retention service that ingests a mutation feed (create / access /
// unlink events in the application-log schema) through a crash-safe
// write-ahead log, keeps the per-user candidate index and activeness
// scores updated online, and serves purge plans over a local
// HTTP/JSON API.
//
// The event semantics are sim.Stream's — the daemon and a batch
// replay of the same event sequence share one code path, so their
// purge plans are bit-for-bit identical (see
// TestDaemonMatchesBatchReplay).
package daemon

import (
	"fmt"
	"strconv"
	"strings"

	"activedr/internal/timeutil"
	"activedr/internal/trace"
)

// Op is a mutation event's kind. The wire values extend the access
// log's create column (0 = access, 1 = create) with 2 = unlink.
type Op uint8

const (
	OpAccess Op = 0
	OpCreate Op = 1
	OpUnlink Op = 2
)

// Event is one mutation: a file accessed, created, or unlinked.
type Event struct {
	TS   timeutil.Time
	User trace.UserID
	Op   Op
	Size int64
	Path string
}

// Encode renders the event as one WAL payload / feed line, the access
// log's TSV schema with the op in the create column:
//
//	ts \t user \t op \t size \t path
func (e *Event) Encode(users []trace.User) ([]byte, error) {
	if int(e.User) >= len(users) {
		return nil, fmt.Errorf("daemon: event references unknown user id %d", e.User)
	}
	var b strings.Builder
	b.Grow(len(e.Path) + 48)
	b.WriteString(strconv.FormatInt(int64(e.TS), 10))
	b.WriteByte('\t')
	b.WriteString(users[e.User].Name)
	b.WriteByte('\t')
	b.WriteString(strconv.Itoa(int(e.Op)))
	b.WriteByte('\t')
	b.WriteString(strconv.FormatInt(e.Size, 10))
	b.WriteByte('\t')
	b.WriteString(e.Path)
	return []byte(b.String()), nil
}

// ParseEvent decodes one feed/WAL line. byName maps user names to IDs
// (trace.NameIndex over the dataset's user table).
func ParseEvent(line string, byName map[string]trace.UserID) (Event, error) {
	parts := strings.SplitN(line, "\t", 5)
	if len(parts) != 5 {
		return Event{}, fmt.Errorf("daemon: want 5 tab-separated fields, got %d", len(parts))
	}
	ts, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return Event{}, fmt.Errorf("daemon: bad timestamp %q", parts[0])
	}
	uid, ok := byName[parts[1]]
	if !ok {
		return Event{}, fmt.Errorf("daemon: unknown user %q", parts[1])
	}
	op, err := strconv.Atoi(parts[2])
	if err != nil || op < 0 || op > int(OpUnlink) {
		return Event{}, fmt.Errorf("daemon: bad op %q (want 0=access, 1=create, 2=unlink)", parts[2])
	}
	size, err := strconv.ParseInt(parts[3], 10, 64)
	if err != nil || size < 0 {
		return Event{}, fmt.Errorf("daemon: bad size %q", parts[3])
	}
	if parts[4] == "" {
		return Event{}, fmt.Errorf("daemon: empty path")
	}
	return Event{
		TS:   timeutil.Time(ts),
		User: uid,
		Op:   Op(op),
		Size: size,
		Path: parts[4],
	}, nil
}

// ParseFeed decodes a batch of newline-separated events, skipping
// blank lines and # comments (the app-log conventions).
func ParseFeed(body string, byName map[string]trace.UserID) ([]Event, error) {
	var evs []Event
	for i, line := range strings.Split(body, "\n") {
		line = strings.TrimSuffix(line, "\r")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ev, err := ParseEvent(line, byName)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		evs = append(evs, ev)
	}
	return evs, nil
}

// AccessEvent converts a trace access record to an event (the batch
// feed used by tests and by activedrd -feed).
func AccessEvent(a *trace.Access) Event {
	op := OpAccess
	if a.Create {
		op = OpCreate
	}
	return Event{TS: a.TS, User: a.User, Op: op, Size: a.Size, Path: a.Path}
}
