package daemon

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"activedr/internal/faults"
	"activedr/internal/retention"
	"activedr/internal/sim"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
	"activedr/internal/wal"
)

var (
	snapAt = timeutil.Date(2015, time.December, 26)
	repEnd = timeutil.Date(2017, time.January, 1)
)

// tinyDataset mirrors the sim package's deterministic fixture: a busy
// user with weekly jobs and outputs, and a gone user holding parked
// bytes that cover the purge target.
func tinyDataset() *trace.Dataset {
	users := []trace.User{
		{ID: 0, Name: "busy", Created: timeutil.Date(2015, time.June, 1)},
		{ID: 1, Name: "gone", Created: timeutil.Date(2015, time.January, 1)},
	}
	var jobs []trace.Job
	for w, t := 0, timeutil.Date(2015, time.June, 1); t < repEnd; w, t = w+1, t.Add(timeutil.Week) {
		jobs = append(jobs, trace.Job{
			User: 0, Submit: t, Duration: timeutil.Hours(2), Cores: 16 + w,
		})
	}
	var accs []trace.Access
	for t := snapAt; t < repEnd; t = t.Add(timeutil.Week) {
		accs = append(accs, trace.Access{TS: t.Add(timeutil.Hour), User: 0, Create: true, Size: 1 << 20,
			Path: "/lustre/atlas/busy/run/" + t.DateString() + ".dat"})
	}
	accs = append(accs, trace.Access{TS: timeutil.Date(2016, time.May, 1), User: 0, Create: false,
		Size: 1 << 30, Path: "/lustre/atlas/busy/old/data.dat"})
	snapshot := trace.Snapshot{
		Taken: snapAt,
		Entries: []trace.SnapshotEntry{
			{Path: "/lustre/atlas/busy/old/data.dat", User: 0, Size: 1 << 30, Stripes: 4, ATime: snapAt.Add(-timeutil.Days(10))},
			{Path: "/lustre/atlas/gone/park1.dat", User: 1, Size: 4 << 30, Stripes: 4, ATime: snapAt.Add(-timeutil.Days(85))},
			{Path: "/lustre/atlas/gone/park2.dat", User: 1, Size: 4 << 30, Stripes: 4, ATime: snapAt.Add(-timeutil.Days(85))},
		},
	}
	d := &trace.Dataset{Users: users, Jobs: jobs, Accesses: accs, Publications: nil, Snapshot: snapshot}
	d.SortAccesses()
	return d
}

func simCfg() sim.Config { return sim.Config{TargetUtilization: 0.5} }

// accessEvents converts the dataset's replay log into the daemon's
// event feed, one event per access.
func accessEvents(ds *trace.Dataset) []Event {
	evs := make([]Event, len(ds.Accesses))
	for i := range ds.Accesses {
		evs[i] = AccessEvent(&ds.Accesses[i])
	}
	return evs
}

// newDaemon builds a daemon over fresh temp dirs (or the given dirs).
func newDaemon(t *testing.T, ds *trace.Dataset, cfg Config) *Daemon {
	t.Helper()
	d, err := New(ds, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

func baseConfig(t *testing.T) Config {
	t.Helper()
	dir := t.TempDir()
	return Config{
		WALDir:        filepath.Join(dir, "wal"),
		CheckpointDir: filepath.Join(dir, "ckpt"),
		Sim:           simCfg(),
	}
}

// ingestAll feeds events through Ingest in fixed-size batches.
func ingestAll(t *testing.T, d *Daemon, evs []Event, batch int) {
	t.Helper()
	for i := 0; i < len(evs); i += batch {
		end := min(i+batch, len(evs))
		if err := d.Ingest(evs[i:end]); err != nil {
			t.Fatalf("Ingest[%d:%d]: %v", i, end, err)
		}
	}
}

// strippedReports deep-copies the purge reports with wall-clock
// fields zeroed, so "bit-identical" can be asserted byte-for-byte.
func strippedReports(reps []*retention.Report) []retention.Report {
	out := make([]retention.Report, len(reps))
	for i, r := range reps {
		c := *r
		c.Elapsed = 0
		out[i] = c
	}
	return out
}

// requireSameReports asserts two purge-report sequences are
// bit-identical (JSON round-trip catches every exported field).
func requireSameReports(t *testing.T, label string, got, want []*retention.Report) {
	t.Helper()
	g, err := json.Marshal(strippedReports(got))
	if err != nil {
		t.Fatal(err)
	}
	w, err := json.Marshal(strippedReports(want))
	if err != nil {
		t.Fatal(err)
	}
	if string(g) != string(w) {
		t.Fatalf("%s: purge reports diverge\n got %d reports: %.400s\nwant %d reports: %.400s",
			label, len(got), g, len(want), w)
	}
}

// requireSameFS asserts two file-system states hold identical trees.
func requireSameFS(t *testing.T, label string, d *Daemon, want *sim.Result) {
	t.Helper()
	at := repEnd
	got := d.stream.FS().Snapshot(at)
	ref := want.Final.Snapshot(at)
	if !reflect.DeepEqual(got.Entries, ref.Entries) {
		t.Fatalf("%s: final file systems diverge: %d vs %d entries",
			label, len(got.Entries), len(ref.Entries))
	}
}

func batchReference(t *testing.T, ds *trace.Dataset, fc *faults.Config) *sim.Result {
	t.Helper()
	em, err := sim.New(ds, simCfg())
	if err != nil {
		t.Fatal(err)
	}
	policy, err := em.NewActiveDR()
	if err != nil {
		t.Fatal(err)
	}
	var opts sim.RunOptions
	if fc != nil {
		opts.Faults = faults.New(*fc)
	}
	res, err := em.RunWith(policy, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDaemonMatchesBatchReplay is the robustness headline: the daemon
// fed an event stream — through the WAL, the bounded queue, and the
// applier — emits purge plans bit-identical to a batch replay of the
// same stream.
func TestDaemonMatchesBatchReplay(t *testing.T) {
	ds := tinyDataset()
	evs := accessEvents(ds)

	cases := []struct {
		name      string
		simFaults *faults.Config
		walFaults *faults.Config
	}{
		{name: "clean"},
		// Purge-level faults draw from the replay injector; the
		// daemon's must stay in lockstep with the batch run's.
		{name: "with purge faults", simFaults: &faults.Config{Seed: 42, UnlinkFailProb: 0.3, ScanInterruptProb: 0.1}},
		// Transient WAL write failures retry on the SEPARATE
		// write-path injector and must not perturb the replay stream.
		{name: "with transient wal faults",
			simFaults: &faults.Config{Seed: 42, UnlinkFailProb: 0.3},
			walFaults: &faults.Config{Seed: 7, WriteFailProb: 0.2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := batchReference(t, ds, tc.simFaults)

			cfg := baseConfig(t)
			cfg.CheckpointEvery = 5
			cfg.Sleep = func(time.Duration) {} // retries need no real waiting
			if tc.simFaults != nil {
				cfg.Faults = faults.New(*tc.simFaults)
			}
			if tc.walFaults != nil {
				cfg.WALFaults = faults.New(*tc.walFaults)
			}
			d := newDaemon(t, tinyDataset(), cfg)
			ingestAll(t, d, evs, 7)

			res := d.stream.Result()
			requireSameReports(t, tc.name, res.Reports, ref.Reports)
			if res.TotalMisses != ref.TotalMisses || res.TotalAccesses != ref.TotalAccesses {
				t.Fatalf("misses/accesses = %d/%d, want %d/%d",
					res.TotalMisses, res.TotalAccesses, ref.TotalMisses, ref.TotalAccesses)
			}
			requireSameFS(t, tc.name, d, ref)
			if err := d.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
		})
	}
}

// TestDaemonUnlinkEvents checks the feed's third verb: unlinks remove
// files without counting misses, and the daemon stays equivalent to a
// direct stream replay of the same mixed feed.
func TestDaemonUnlinkEvents(t *testing.T) {
	ds := tinyDataset()
	evs := accessEvents(ds)
	// Splice in unlinks: gone deletes one parked file early (before
	// retention would purge it), and one unlink targets a path that
	// never existed.
	mixed := make([]Event, 0, len(evs)+2)
	mixed = append(mixed, evs[0])
	mixed = append(mixed,
		Event{TS: evs[0].TS.Add(timeutil.Hour), User: 1, Op: OpUnlink, Path: "/lustre/atlas/gone/park2.dat"},
		Event{TS: evs[0].TS.Add(2 * timeutil.Hour), User: 1, Op: OpUnlink, Path: "/lustre/atlas/gone/never-existed.dat"},
	)
	mixed = append(mixed, evs[1:]...)

	// Reference: the same mixed feed applied straight to a stream.
	em, err := sim.New(tinyDataset(), simCfg())
	if err != nil {
		t.Fatal(err)
	}
	policy, err := em.NewActiveDR()
	if err != nil {
		t.Fatal(err)
	}
	st := em.NewStream(policy, sim.RunOptions{})
	for i := range mixed {
		ev := &mixed[i]
		if ev.Op == OpUnlink {
			ok, err := st.Unlink(ev.Path, ev.TS)
			if err != nil {
				t.Fatal(err)
			}
			if want := ev.Path != "/lustre/atlas/gone/never-existed.dat"; ok != want {
				t.Fatalf("stream unlink %q existed=%v, want %v", ev.Path, ok, want)
			}
			continue
		}
		a := trace.Access{TS: ev.TS, User: ev.User, Create: ev.Op == OpCreate, Size: ev.Size, Path: ev.Path}
		if err := st.Apply(&a); err != nil {
			t.Fatal(err)
		}
	}

	d := newDaemon(t, tinyDataset(), baseConfig(t))
	defer d.Close()
	ingestAll(t, d, mixed, 9)

	requireSameReports(t, "unlink feed", d.stream.Result().Reports, st.Result().Reports)
	if got, want := d.stream.FS().Count(), st.FS().Count(); got != want {
		t.Fatalf("final file count = %d, want %d", got, want)
	}
	if d.stream.Result().TotalMisses != st.Result().TotalMisses {
		t.Fatalf("misses diverge: %d vs %d", d.stream.Result().TotalMisses, st.Result().TotalMisses)
	}
	// The deleted parked file must be gone and never restored.
	if _, ok := d.stream.FS().Lookup("/lustre/atlas/gone/park2.dat"); ok {
		t.Fatal("unlinked file still present")
	}
}

// TestCloseDrainAndRestart is the graceful-SIGTERM path: Close drains,
// checkpoints, and a restarted daemon continues mid-stream to the
// exact batch-replay result.
func TestCloseDrainAndRestart(t *testing.T) {
	ds := tinyDataset()
	evs := accessEvents(ds)
	ref := batchReference(t, ds, nil)
	half := len(evs) / 2

	cfg := baseConfig(t)
	cfg.CheckpointEvery = 1000 // force the drain checkpoint to matter
	d1 := newDaemon(t, tinyDataset(), cfg)
	ingestAll(t, d1, evs[:half], 7)
	applied := d1.stream.Applied()
	if err := d1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := d1.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := d1.Ingest(evs[half:]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Ingest after Close = %v, want ErrClosed", err)
	}

	d2 := newDaemon(t, tinyDataset(), cfg)
	defer d2.Close()
	if d2.stream.Applied() != applied {
		t.Fatalf("restart Applied = %d, want %d", d2.stream.Applied(), applied)
	}
	if d2.recovered != 0 {
		t.Fatalf("graceful restart replayed %d WAL records, want 0 (drain checkpointed)", d2.recovered)
	}
	ingestAll(t, d2, evs[half:], 7)
	requireSameReports(t, "restart", d2.stream.Result().Reports, ref.Reports)
	requireSameFS(t, "restart", d2, ref)
}

// TestDiskFullDegrades drives the daemon into degraded read-only mode
// via the disk-pressure fault and checks a restarted daemon picks up
// every durable event.
func TestDiskFullDegrades(t *testing.T) {
	ds := tinyDataset()
	evs := accessEvents(ds)

	cfg := baseConfig(t)
	cfg.WALFaults = faults.New(faults.Config{Seed: 1, DiskFullAfterBytes: 700})
	d1 := newDaemon(t, tinyDataset(), cfg)
	var degradedAt int
	var ingestErr error
	for i := range evs {
		if ingestErr = d1.Ingest(evs[i : i+1]); ingestErr != nil {
			degradedAt = i
			break
		}
	}
	if !errors.Is(ingestErr, ErrDegraded) {
		t.Fatalf("ingest error = %v, want ErrDegraded", ingestErr)
	}
	if degradedAt == 0 {
		t.Fatal("no event was accepted before the disk filled")
	}
	// Degraded is sticky for writes; reads still work.
	if err := d1.Ingest(evs[degradedAt : degradedAt+1]); !errors.Is(err, ErrDegraded) {
		t.Fatalf("ingest while degraded = %v, want ErrDegraded", err)
	}
	if d1.stream.FS().Count() == 0 {
		t.Fatal("reads should survive degraded mode")
	}
	durable := d1.stream.Applied()
	if err := d1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	cfg2 := cfg
	cfg2.WALFaults = nil
	d2 := newDaemon(t, tinyDataset(), cfg2)
	defer d2.Close()
	if d2.stream.Applied() != durable {
		t.Fatalf("restart Applied = %d, want %d", d2.stream.Applied(), durable)
	}
	// The feeder resends from the last acknowledged event and the run
	// completes to the batch-replay result.
	ingestAll(t, d2, evs[durable:], 7)
	ref := batchReference(t, ds, nil)
	requireSameReports(t, "disk-full restart", d2.stream.Result().Reports, ref.Reports)
}

// TestBackpressureAndRetryExhaustion wedges the applier in a retry
// sleep, fills the bounded queue, and checks (a) overflow is an
// immediate ErrBackpressure, and (b) retry exhaustion degrades the
// daemon rather than dropping acknowledged events.
func TestBackpressureAndRetryExhaustion(t *testing.T) {
	ds := tinyDataset()
	evs := accessEvents(ds)

	sleeping := make(chan struct{}, 16)
	release := make(chan struct{})
	cfg := baseConfig(t)
	cfg.QueueDepth = 1
	cfg.RetryAttempts = 3
	cfg.WALFaults = faults.New(faults.Config{Seed: 5, WriteFailProb: 1}) // every attempt fails
	cfg.Sleep = func(time.Duration) {
		sleeping <- struct{}{}
		<-release
	}
	d := newDaemon(t, tinyDataset(), cfg)
	defer d.Close()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(1)
	go func() { defer wg.Done(); errs[0] = d.Ingest(evs[0:1]) }()
	<-sleeping // applier owns batch 1 and is wedged in backoff

	wg.Add(1)
	go func() { defer wg.Done(); errs[1] = d.Ingest(evs[1:2]) }()
	// Wait until batch 2 occupies the queue's single slot.
	for len(d.queue) == 0 {
		time.Sleep(time.Millisecond)
	}
	if err := d.Ingest(evs[2:3]); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("overflow ingest = %v, want ErrBackpressure", err)
	}
	close(release)
	wg.Wait()
	if !errors.Is(errs[0], ErrDegraded) {
		t.Fatalf("wedged batch error = %v, want ErrDegraded (retries exhausted)", errs[0])
	}
	if !errors.Is(errs[1], ErrDegraded) {
		t.Fatalf("queued batch error = %v, want ErrDegraded", errs[1])
	}
	if d.stream.Applied() != 0 {
		t.Fatalf("failed writes must not apply: Applied = %d", d.stream.Applied())
	}
}

// TestNewValidation covers constructor fail-fast paths.
func TestNewValidation(t *testing.T) {
	ds := tinyDataset()
	t.Run("missing dirs", func(t *testing.T) {
		if _, err := New(ds, Config{Sim: simCfg()}); err == nil {
			t.Fatal("want error for missing WALDir/CheckpointDir")
		}
	})
	t.Run("unknown policy", func(t *testing.T) {
		cfg := baseConfig(t)
		cfg.Policy = "lru"
		if _, err := New(ds, cfg); err == nil {
			t.Fatal("want error for unknown policy")
		}
	})
	t.Run("wal gap is corruption", func(t *testing.T) {
		// Build a WAL whose first record is past the checkpoint's
		// cursor: recovery must refuse (events lost), not silently
		// skip ahead.
		cfg := baseConfig(t)
		cfg.CheckpointEvery = 1000 // no checkpoint: cursor stays 0
		cfg.SegmentBytes = 64      // one record per segment, prunable
		d := newDaemon(t, tinyDataset(), cfg)
		ingestAll(t, d, accessEvents(ds)[:12], 4)
		if err := d.log.Prune(8); err != nil { // drop records the (absent) checkpoint never covered
			t.Fatal(err)
		}
		// Abandon without the drain checkpoint, as a crash would.
		d.die(stateKilled, "test abandon")
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		_, err := New(tinyDataset(), cfg)
		if err == nil || !errors.Is(err, wal.ErrCorrupt) {
			t.Fatalf("gap recovery error = %v, want wal.ErrCorrupt (events lost)", err)
		}
	})
}

// TestFlagLikeDefaults pins the config defaulting the CLI depends on.
func TestFlagLikeDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Policy != "activedr" || c.QueueDepth != 64 || c.SyncEvery != 256 ||
		c.CheckpointEvery != 1 || c.RetryAttempts != 5 || c.Sleep == nil {
		t.Fatalf("defaults = %+v", c)
	}
}

// copyDir clones a directory tree (WAL + checkpoint state) so chaos
// runs can branch from the same crash image.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, de os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if de.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, b, 0o644)
	})
	if err != nil {
		t.Fatalf("copyDir %s: %v", src, err)
	}
}
