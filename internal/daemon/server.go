package daemon

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"activedr/internal/retention"
	"activedr/internal/timeutil"
)

// maxIngestBody bounds an ingest request: 8 MiB of TSV is ~100k
// events, far past any sane batch.
const maxIngestBody = 8 << 20

// Handler returns the daemon's HTTP API:
//
//	GET  /healthz     liveness (process up, even when degraded)
//	GET  /readyz      readiness (503 + reason when not ingesting)
//	GET  /metrics     live internal/obs metrics snapshot, JSON
//	GET  /v1/status   daemon + replay-state summary
//	GET  /v1/ranks    current per-user activeness rank table
//	GET  /v1/plan     dry-run purge plan (?user=NAME filters victims)
//	GET  /v1/victims  dry-run victim list (?limit=N truncates)
//	POST /v1/ingest   TSV event feed; 429 on backpressure, 503 degraded
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", d.handleHealthz)
	mux.HandleFunc("GET /readyz", d.handleReadyz)
	mux.HandleFunc("GET /metrics", d.handleMetrics)
	mux.HandleFunc("GET /v1/status", d.handleStatus)
	mux.HandleFunc("GET /v1/ranks", d.handleRanks)
	mux.HandleFunc("GET /v1/plan", d.handlePlan)
	mux.HandleFunc("GET /v1/victims", d.handleVictims)
	mux.HandleFunc("POST /v1/ingest", d.handleIngest)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // client gone; nothing to do
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (d *Daemon) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (d *Daemon) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	st, reason := d.st, d.reason
	d.mu.Unlock()
	if st != stateRunning {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status": st.String(), "reason": reason,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "running"})
}

func (d *Daemon) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, d.cfg.Obs.Registry().Snapshot())
}

// statusResponse is /v1/status's body.
type statusResponse struct {
	State         string        `json:"state"`
	Reason        string        `json:"reason,omitempty"`
	Policy        string        `json:"policy"`
	Applied       int           `json:"applied_events"`
	Recovered     int           `json:"recovered_events"`
	Triggers      int           `json:"triggers"`
	NextTrigger   timeutil.Time `json:"next_trigger"`
	LastEventTS   timeutil.Time `json:"last_event_ts"`
	Files         int           `json:"files"`
	Bytes         int64         `json:"bytes"`
	QueueLen      int           `json:"queue_len"`
	QueueCap      int           `json:"queue_cap"`
	WALSegments   int           `json:"wal_segments_recovered"`
	WALRecords    uint64        `json:"wal_records_recovered"`
	WALTornBytes  int64         `json:"wal_torn_bytes_truncated"`
	LastCkptEvent int           `json:"last_checkpoint_event"`
}

// WriteStatus renders the status document to w — the same body
// GET /v1/status serves (activedrd -oneshot prints it at exit).
func (d *Daemon) WriteStatus(w io.Writer) error {
	st := d.status()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(st)
}

func (d *Daemon) status() statusResponse {
	d.mu.Lock()
	defer d.mu.Unlock()
	return statusResponse{
		State:         d.st.String(),
		Reason:        d.reason,
		Policy:        d.stream.Policy().Name(),
		Applied:       d.stream.Applied(),
		Recovered:     d.recovered,
		Triggers:      d.stream.Triggers(),
		NextTrigger:   d.stream.NextTrigger(),
		LastEventTS:   d.lastTS,
		Files:         d.stream.FS().Count(),
		Bytes:         d.stream.FS().TotalBytes(),
		QueueLen:      len(d.queue),
		QueueCap:      cap(d.queue),
		WALSegments:   d.walInfo.Segments,
		WALRecords:    d.walInfo.Records,
		WALTornBytes:  d.walInfo.TornBytes,
		LastCkptEvent: d.lastCkpt,
	}
}

func (d *Daemon) handleStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, d.status())
}

// rankEntry is one user's row in /v1/ranks.
type rankEntry struct {
	User   string  `json:"user"`
	Op     float64 `json:"op"`
	Oc     float64 `json:"oc"`
	Active bool    `json:"active"`
	Files  int64   `json:"files"`
	Bytes  int64   `json:"bytes"`
}

func (d *Daemon) handleRanks(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	ranks, at := d.stream.Ranks()
	entries := make([]rankEntry, 0, len(ranks))
	for uid, r := range ranks {
		u := d.users[uid]
		entries = append(entries, rankEntry{
			User:   u.Name,
			Op:     r.Op,
			Oc:     r.Oc,
			Active: r.OpActive() || r.OcActive(),
			Files:  d.stream.FS().UserFiles(u.ID),
			Bytes:  d.stream.FS().UserBytes(u.ID),
		})
	}
	d.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"evaluated_at": at, "ranks": entries})
}

// dryRunPlan runs the policy's purge against a clone of the live file
// system at the next trigger time, using the current rank table
// (evaluated at the reference snapshot until the first trigger). The
// plan uses a FRESH policy instance with no fault injector attached:
// the live policy's faults handle must not see extra draws, or the
// daemon's future purges would diverge from a batch replay (the
// bit-identical guarantee).
func (d *Daemon) dryRunPlan() (*retention.Report, error) {
	ranks, _ := d.stream.Ranks()
	var (
		p   retention.Policy
		err error
	)
	switch d.cfg.Policy {
	case "flt":
		p = d.em.NewFLT()
	default:
		p, err = d.em.NewActiveDR()
	}
	if err != nil {
		return nil, err
	}
	return retention.Plan(p, d.stream.FS(), ranks, d.stream.NextTrigger()), nil
}

// planResponse is /v1/plan's body: the report, with victims filtered
// to the requested user when ?user= is given.
type planResponse struct {
	At            timeutil.Time `json:"at"`
	Policy        string        `json:"policy"`
	User          string        `json:"user,omitempty"`
	PurgedFiles   int64         `json:"purged_files"`
	PurgedBytes   int64         `json:"purged_bytes"`
	TargetBytes   int64         `json:"target_bytes,omitempty"`
	TargetReached bool          `json:"target_reached"`
	UserFiles     int64         `json:"user_purged_files,omitempty"`
	UserBytes     int64         `json:"user_purged_bytes,omitempty"`
	Victims       []string      `json:"victims,omitempty"`
}

func (d *Daemon) handlePlan(w http.ResponseWriter, r *http.Request) {
	userName := r.URL.Query().Get("user")
	// Compute the whole response under the lock, release, then write:
	// a slow client must not stall the applier (or every other
	// handler) on d.mu for the duration of the network write.
	resp, status, err := d.planLocked(userName)
	if err != nil {
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// planLocked builds /v1/plan's response body under d.mu. On error the
// returned status is the HTTP code to send.
func (d *Daemon) planLocked(userName string) (planResponse, int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var uid int = -1
	if userName != "" {
		id, ok := d.byName[userName]
		if !ok {
			return planResponse{}, http.StatusNotFound, fmt.Errorf("unknown user %q", userName)
		}
		uid = int(id)
	}
	rep, err := d.dryRunPlan()
	if err != nil {
		return planResponse{}, http.StatusConflict, err
	}
	resp := planResponse{
		At:            rep.At,
		Policy:        rep.Policy,
		User:          userName,
		PurgedFiles:   rep.PurgedFiles,
		PurgedBytes:   rep.PurgedBytes,
		TargetBytes:   rep.TargetBytes,
		TargetReached: rep.TargetReached,
	}
	if uid >= 0 {
		// Victims were purged from the clone, so ownership still
		// resolves against the live tree.
		for _, path := range rep.Victims {
			meta, ok := d.stream.FS().Lookup(path)
			if !ok || int(meta.User) != uid {
				continue
			}
			resp.UserFiles++
			resp.UserBytes += meta.Size
			resp.Victims = append(resp.Victims, path)
		}
	}
	return resp, http.StatusOK, nil
}

func (d *Daemon) handleVictims(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if s := r.URL.Query().Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", s))
			return
		}
		limit = n
	}
	d.mu.Lock()
	rep, err := d.dryRunPlan()
	d.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	victims := rep.Victims
	truncated := false
	if limit > 0 && len(victims) > limit {
		victims, truncated = victims[:limit], true
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"at":        rep.At,
		"total":     len(rep.Victims),
		"truncated": truncated,
		"victims":   victims,
	})
}

func (d *Daemon) handleIngest(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxIngestBody+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(body) > maxIngestBody {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("ingest body exceeds %d bytes", maxIngestBody))
		return
	}
	events, err := ParseFeed(string(body), d.byName)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := d.Ingest(events); err != nil {
		switch {
		case errors.Is(err, ErrBackpressure):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrDegraded), errors.Is(err, ErrKilled), errors.Is(err, ErrClosed):
			writeError(w, http.StatusServiceUnavailable, err)
		default:
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ingested": len(events)})
}
