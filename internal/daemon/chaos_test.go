package daemon

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"activedr/internal/faults"
	"activedr/internal/randx"
)

// crashImage is a daemon's on-disk state (WAL + checkpoints) frozen
// at a simulated process death, ready to be branched per chaos run.
type crashImage struct {
	walDir, ckptDir string
	applied         int // events durable at the crash
}

// branch clones the image into fresh dirs so each chaos run recovers
// from the identical crash state.
func (im crashImage) branch(t *testing.T) (walDir, ckptDir string) {
	t.Helper()
	dir := t.TempDir()
	walDir = filepath.Join(dir, "wal")
	ckptDir = filepath.Join(dir, "ckpt")
	copyDir(t, im.walDir, walDir)
	copyDir(t, im.ckptDir, ckptDir)
	return walDir, ckptDir
}

// makeCrashImage runs a daemon over the full feed and kills it (via
// the post-fsync kill point) on the final batch, leaving a WAL whose
// tail extends well past the last checkpoint.
func makeCrashImage(t *testing.T, batch, ckptEvery int) crashImage {
	t.Helper()
	ds := tinyDataset()
	evs := accessEvents(ds)
	nBatches := (len(evs) + batch - 1) / batch

	cfg := baseConfig(t)
	cfg.CheckpointEvery = ckptEvery
	cfg.WALFaults = faults.New(faults.Config{
		Seed:     1,
		KillSpec: fmt.Sprintf("%s:%d", KillWALSynced, nBatches),
	})
	d := newDaemon(t, tinyDataset(), cfg)
	var killed error
	for i := 0; i < len(evs); i += batch {
		end := min(i+batch, len(evs))
		if err := d.Ingest(evs[i:end]); err != nil {
			killed = err
			if end != len(evs) {
				t.Fatalf("killed on batch [%d:%d], want the final batch", i, end)
			}
		}
	}
	if !errors.Is(killed, ErrKilled) {
		t.Fatalf("final batch error = %v, want ErrKilled", killed)
	}
	applied := d.stream.Applied()
	if applied != len(evs) {
		t.Fatalf("kill point fired after fsync: applied = %d, want %d", applied, len(evs))
	}
	if err := d.Close(); err != nil { // killed state: no drain checkpoint
		t.Fatalf("Close: %v", err)
	}
	return crashImage{walDir: cfg.WALDir, ckptDir: cfg.CheckpointDir, applied: applied}
}

// recoverImage rebuilds a daemon over (a branch of) the image dirs.
func recoverImage(t *testing.T, walDir, ckptDir string, wf *faults.Injector) (*Daemon, error) {
	t.Helper()
	cfg := Config{WALDir: walDir, CheckpointDir: ckptDir, Sim: simCfg(), WALFaults: wf}
	return New(tinyDataset(), cfg)
}

// TestCrashMatrixReconverges is the chaos harness headline: a daemon
// crashed after its final fsync is re-killed during recovery at EVERY
// WAL record boundary; each time, the next incarnation must recover
// to purge plans bit-identical to an uninterrupted batch replay.
func TestCrashMatrixReconverges(t *testing.T) {
	ds := tinyDataset()
	ref := batchReference(t, ds, nil)
	im := makeCrashImage(t, 10, 8)

	// Baseline: a clean recovery of the crash image reconverges.
	walDir, ckptDir := im.branch(t)
	d, err := recoverImage(t, walDir, ckptDir, nil)
	if err != nil {
		t.Fatalf("clean recovery: %v", err)
	}
	if d.stream.Applied() != im.applied {
		t.Fatalf("recovered Applied = %d, want %d", d.stream.Applied(), im.applied)
	}
	tail := d.recovered // WAL records past the last durable checkpoint
	if tail == 0 {
		t.Fatal("crash image has no WAL tail; the matrix would be empty")
	}
	requireSameReports(t, "clean recovery", d.stream.Result().Reports, ref.Reports)
	requireSameFS(t, "clean recovery", d, ref)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// The matrix: kill recovery right after record k, for every k.
	// Checkpoints taken before the kill must only ever help the next
	// incarnation (a crash loop may legally advance the baseline).
	for k := 1; k <= tail; k++ {
		walDir, ckptDir := im.branch(t)
		wf := faults.New(faults.Config{Seed: 1, KillSpec: fmt.Sprintf("%s:%d", KillRecoverRecord, k)})
		if _, err := recoverImage(t, walDir, ckptDir, wf); !errors.Is(err, ErrKilled) {
			t.Fatalf("k=%d: recovery error = %v, want ErrKilled", k, err)
		}
		d, err := recoverImage(t, walDir, ckptDir, nil)
		if err != nil {
			t.Fatalf("k=%d: second recovery: %v", k, err)
		}
		if d.stream.Applied() != im.applied {
			t.Fatalf("k=%d: Applied = %d, want %d", k, d.stream.Applied(), im.applied)
		}
		requireSameReports(t, fmt.Sprintf("k=%d", k), d.stream.Result().Reports, ref.Reports)
		requireSameFS(t, fmt.Sprintf("k=%d", k), d, ref)
		if err := d.Close(); err != nil {
			t.Fatalf("k=%d: Close: %v", k, err)
		}
	}
}

// TestCrashLoopReconverges layers kills: die during recovery, then
// die again during the recovery of THAT, then recover cleanly.
func TestCrashLoopReconverges(t *testing.T) {
	ds := tinyDataset()
	ref := batchReference(t, ds, nil)
	im := makeCrashImage(t, 10, 8)

	// Measure the recovery tail on a throwaway branch.
	mw, mc := im.branch(t)
	probe, err := recoverImage(t, mw, mc, nil)
	if err != nil {
		t.Fatal(err)
	}
	tail := probe.recovered
	if err := probe.Close(); err != nil {
		t.Fatal(err)
	}
	if tail < 1 {
		t.Fatal("crash image has no WAL tail")
	}

	walDir, ckptDir := im.branch(t)
	fired := 0
	for round, k := range []int{tail, 1, 1} {
		wf := faults.New(faults.Config{Seed: 1, KillSpec: fmt.Sprintf("%s:%d", KillRecoverRecord, k)})
		d, err := recoverImage(t, walDir, ckptDir, wf)
		if err == nil {
			// A mid-recovery checkpoint can legally shrink the tail to
			// zero; the kill point then never fires and this
			// incarnation simply lives. Shut it down and carry on.
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if !errors.Is(err, ErrKilled) {
			t.Fatalf("round %d: recovery error = %v, want ErrKilled", round, err)
		}
		fired++
	}
	if fired == 0 {
		t.Fatal("no recovery kill ever fired; the loop tested nothing")
	}
	d, err := recoverImage(t, walDir, ckptDir, nil)
	if err != nil {
		t.Fatalf("final recovery: %v", err)
	}
	defer d.Close()
	if d.stream.Applied() != im.applied {
		t.Fatalf("Applied = %d, want %d", d.stream.Applied(), im.applied)
	}
	requireSameReports(t, "crash loop", d.stream.Result().Reports, ref.Reports)
	requireSameFS(t, "crash loop", d, ref)
}

// TestTornWriteKillsThenRecovers forces a torn append: the daemon
// must poison itself (the in-memory state is ahead of the disk), and
// the next incarnation must truncate the torn tail and accept a
// resend of the unacknowledged events.
func TestTornWriteKillsThenRecovers(t *testing.T) {
	ds := tinyDataset()
	evs := accessEvents(ds)
	ref := batchReference(t, ds, nil)

	cfg := baseConfig(t)
	half := len(evs) / 2
	d1 := newDaemon(t, tinyDataset(), cfg)
	ingestAll(t, d1, evs[:half], 7)

	// Rebuild the daemon's WAL layer with a always-torn injector by
	// swapping config mid-run is impossible (by design); instead run a
	// second daemon whose first append after the clean prefix tears.
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.WALFaults = faults.New(faults.Config{Seed: 11, TornWriteProb: 1})
	d2 := newDaemon(t, tinyDataset(), cfg2)
	err := d2.Ingest(evs[half : half+5])
	if !errors.Is(err, ErrKilled) {
		t.Fatalf("torn ingest = %v, want ErrKilled", err)
	}
	if err := d2.Ingest(evs[half : half+5]); !errors.Is(err, ErrKilled) {
		t.Fatalf("post-torn ingest = %v, want ErrKilled (poisoned)", err)
	}
	durable := d2.lastCkpt // nothing past the checkpoint survived the tear
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}

	cfg3 := cfg
	d3 := newDaemon(t, tinyDataset(), cfg3)
	defer d3.Close()
	if got := d3.stream.Applied(); got < durable || got >= half+5 {
		t.Fatalf("recovered Applied = %d, want in [%d, %d)", got, durable, half+5)
	}
	// The feeder resends everything unacknowledged.
	ingestAll(t, d3, evs[d3.stream.Applied():], 7)
	requireSameReports(t, "torn write", d3.stream.Result().Reports, ref.Reports)
	requireSameFS(t, "torn write", d3, ref)
}

// TestCheckpointKillPointKillsDaemon arms the replay-level kill point
// (checkpoint published) through the daemon's sim-fault injector and
// checks the daemon treats it as a process death it can recover from.
func TestCheckpointKillPointKillsDaemon(t *testing.T) {
	ds := tinyDataset()
	evs := accessEvents(ds)
	ref := batchReference(t, ds, nil)

	cfg := baseConfig(t)
	cfg.Faults = faults.New(faults.Config{Seed: 3, KillSpec: faults.KillSimCheckpointPublished + ":4"})
	d1 := newDaemon(t, tinyDataset(), cfg)
	var killed error
	applied := 0
	for i := range evs {
		if killed = d1.Ingest(evs[i : i+1]); killed != nil {
			break
		}
		applied++
	}
	if !errors.Is(killed, ErrKilled) {
		t.Fatalf("ingest error = %v, want ErrKilled at the 4th checkpoint", killed)
	}
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}

	cfg2 := cfg
	cfg2.Faults = faults.New(faults.Config{Seed: 3}) // same stream, no kill
	d2 := newDaemon(t, tinyDataset(), cfg2)
	defer d2.Close()
	// The killed event never acked, so the feeder resends from there.
	ingestAll(t, d2, evs[d2.stream.Applied():], 7)
	requireSameReports(t, "checkpoint kill", d2.stream.Result().Reports, ref.Reports)
}

// TestChaosSoak is the CI soak: a seeded sequence of rounds, each
// ingesting a random slice of the feed and crashing in a random mode
// (post-fsync kill, recovery kill, torn write, clean SIGTERM), always
// recovering and finally reconverging to the batch-replay result.
func TestChaosSoak(t *testing.T) {
	ds := tinyDataset()
	evs := accessEvents(ds)
	ref := batchReference(t, ds, nil)
	rng := randx.New(20260807)

	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	ckptDir := filepath.Join(dir, "ckpt")

	next := 0 // first unacknowledged event
	round := 0
	for next < len(evs) {
		round++
		if round > 200 {
			t.Fatal("soak failed to make progress in 200 rounds")
		}
		mode := rng.Intn(4)
		var wf, sf *faults.Injector
		switch mode {
		case 1:
			wf = faults.New(faults.Config{Seed: uint64(round), KillSpec: fmt.Sprintf("%s:%d", KillWALSynced, 1+rng.Intn(3))})
		case 2:
			wf = faults.New(faults.Config{Seed: uint64(round), KillSpec: fmt.Sprintf("%s:%d", KillRecoverRecord, 1+rng.Intn(10))})
		case 3:
			wf = faults.New(faults.Config{Seed: uint64(round), TornWriteProb: 0.1})
		}
		cfg := Config{WALDir: walDir, CheckpointDir: ckptDir, Sim: simCfg(),
			CheckpointEvery: 1 + rng.Intn(6), WALFaults: wf, Faults: sf}
		d, err := New(tinyDataset(), cfg)
		if err != nil {
			if errors.Is(err, ErrKilled) {
				continue // died during recovery; next round retries
			}
			t.Fatalf("round %d: New: %v", round, err)
		}
		next = d.stream.Applied() // crash-mode rounds may rewind acks? (never below acked)
		for next < len(evs) {
			end := min(next+1+rng.Intn(9), len(evs))
			if err := d.Ingest(evs[next:end]); err != nil {
				if errors.Is(err, ErrKilled) {
					break // simulated death; restart in the next round
				}
				t.Fatalf("round %d: Ingest[%d:%d]: %v", round, next, end, err)
			}
			next = end
		}
		if err := d.Close(); err != nil {
			t.Fatalf("round %d: Close: %v", round, err)
		}
	}

	d, err := New(tinyDataset(), Config{WALDir: walDir, CheckpointDir: ckptDir, Sim: simCfg()})
	if err != nil {
		t.Fatalf("final recovery: %v", err)
	}
	defer d.Close()
	if d.stream.Applied() != len(evs) {
		// A torn tail may have eaten unacknowledged events; resend.
		ingestAll(t, d, evs[d.stream.Applied():], 7)
	}
	requireSameReports(t, "soak", d.stream.Result().Reports, ref.Reports)
	requireSameFS(t, "soak", d, ref)
	t.Logf("soak: %d rounds to ingest %d events", round, len(evs))
}
