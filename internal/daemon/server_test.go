package daemon

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"activedr/internal/faults"
	"activedr/internal/obs"
)

func getJSON(t *testing.T, srv *httptest.Server, path string, status int, out any) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != status {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s = %d, want %d; body: %.200s", path, resp.StatusCode, status, body)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
	}
}

func postFeed(t *testing.T, srv *httptest.Server, body string) *http.Response {
	t.Helper()
	resp, err := srv.Client().Post(srv.URL+"/v1/ingest", "text/tab-separated-values",
		strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func feedLines(t *testing.T, d *Daemon, evs []Event) string {
	t.Helper()
	var b strings.Builder
	b.WriteString("# test feed\n")
	for i := range evs {
		line, err := evs[i].Encode(d.users)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.String()
}

func TestHTTPAPI(t *testing.T) {
	ds := tinyDataset()
	evs := accessEvents(ds)

	o, err := obs.NewObserver(obs.NewRegistry(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t)
	cfg.Obs = o
	d := newDaemon(t, ds, cfg)
	defer d.Close()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	getJSON(t, srv, "/healthz", http.StatusOK, nil)
	getJSON(t, srv, "/readyz", http.StatusOK, nil)

	// Before any trigger, ranks come from the reference-snapshot
	// evaluation the replay state starts with.
	var ranks0 struct {
		Ranks []rankEntry
	}
	getJSON(t, srv, "/v1/ranks", http.StatusOK, &ranks0)
	if len(ranks0.Ranks) != 2 {
		t.Fatalf("initial ranks = %+v", ranks0)
	}

	// Ingest the first event (before the first trigger) over HTTP.
	resp := postFeed(t, srv, feedLines(t, d, evs[:1]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest = %d", resp.StatusCode)
	}
	resp.Body.Close()
	var st statusResponse
	getJSON(t, srv, "/v1/status", http.StatusOK, &st)
	if st.State != "running" || st.Applied != 1 || !strings.HasPrefix(st.Policy, "ActiveDR") {
		t.Fatalf("status = %+v", st)
	}

	// Malformed feeds are a 400 with a line number, not a wedge.
	resp = postFeed(t, srv, "not\ta\tvalid\tline\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad feed = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// Cross the first purge triggers; ranks and plans come alive.
	resp = postFeed(t, srv, feedLines(t, d, evs[1:6]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest = %d", resp.StatusCode)
	}
	resp.Body.Close()

	var ranks struct {
		EvaluatedAt int64 `json:"evaluated_at"`
		Ranks       []rankEntry
	}
	getJSON(t, srv, "/v1/ranks", http.StatusOK, &ranks)
	if len(ranks.Ranks) != 2 {
		t.Fatalf("ranks = %+v", ranks)
	}
	for _, r := range ranks.Ranks {
		if r.User != "busy" && r.User != "gone" {
			t.Fatalf("unknown user in ranks: %+v", r)
		}
	}

	var plan planResponse
	getJSON(t, srv, "/v1/plan", http.StatusOK, &plan)
	if plan.Policy == "" || plan.At == 0 {
		t.Fatalf("plan = %+v", plan)
	}
	getJSON(t, srv, "/v1/plan?user=nobody", http.StatusNotFound, nil)

	// Per-user plans list only that user's victims, owned by them.
	var userPlan planResponse
	getJSON(t, srv, "/v1/plan?user=busy", http.StatusOK, &userPlan)
	if int64(len(userPlan.Victims)) != userPlan.UserFiles {
		t.Fatalf("user plan victims/files mismatch: %+v", userPlan)
	}
	for _, v := range userPlan.Victims {
		meta, ok := d.stream.FS().Lookup(v)
		if !ok || d.users[meta.User].Name != "busy" {
			t.Fatalf("victim %q not owned by busy", v)
		}
	}

	var victims struct {
		Total     int      `json:"total"`
		Truncated bool     `json:"truncated"`
		Victims   []string `json:"victims"`
	}
	getJSON(t, srv, "/v1/victims", http.StatusOK, &victims)
	if len(victims.Victims) != victims.Total || victims.Truncated {
		t.Fatalf("victims = %+v", victims)
	}
	if victims.Total > 1 {
		var lim struct {
			Total     int      `json:"total"`
			Truncated bool     `json:"truncated"`
			Victims   []string `json:"victims"`
		}
		getJSON(t, srv, "/v1/victims?limit=1", http.StatusOK, &lim)
		if !lim.Truncated || len(lim.Victims) != 1 || lim.Total != victims.Total {
			t.Fatalf("limited victims = %+v", lim)
		}
	}
	getJSON(t, srv, "/v1/victims?limit=-1", http.StatusBadRequest, nil)

	// The metrics endpoint serves the live registry.
	var metrics obs.MetricsSnapshot
	getJSON(t, srv, "/metrics", http.StatusOK, &metrics)
	found := false
	for _, c := range metrics.Counters {
		if c.Name == "daemon_events_ingested_total" && c.Value == 6 {
			found = true
		}
	}
	if !found {
		t.Fatalf("ingested counter missing or wrong: %+v", metrics.Counters)
	}
}

// TestReadyzReportsDegraded checks readiness flips with the daemon's
// ingest state while liveness stays green.
func TestReadyzReportsDegraded(t *testing.T) {
	ds := tinyDataset()
	evs := accessEvents(ds)
	cfg := baseConfig(t)
	cfg.WALFaults = faults.New(faults.Config{Seed: 1, DiskFullAfterBytes: 1})
	d := newDaemon(t, ds, cfg)
	defer d.Close()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	resp := postFeed(t, srv, feedLines(t, d, evs[:1]))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest on full disk = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
	getJSON(t, srv, "/healthz", http.StatusOK, nil)
	var ready map[string]string
	getJSON(t, srv, "/readyz", http.StatusServiceUnavailable, &ready)
	if ready["status"] != "degraded" || ready["reason"] == "" {
		t.Fatalf("readyz = %+v", ready)
	}
}

// TestPlanDoesNotPerturbReplay guards the dry-run isolation: serving
// plans mid-stream must not consume fault-injector draws or mutate
// state, or the daemon's later purges would diverge from batch
// replay. Runs with purge faults enabled so any stolen draw shows.
func TestPlanDoesNotPerturbReplay(t *testing.T) {
	ds := tinyDataset()
	evs := accessEvents(ds)
	fc := faults.Config{Seed: 42, UnlinkFailProb: 0.3}
	ref := batchReference(t, ds, &fc)

	cfg := baseConfig(t)
	cfg.Faults = faults.New(fc)
	d := newDaemon(t, ds, cfg)
	defer d.Close()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	for i := 0; i < len(evs); i += 5 {
		end := min(i+5, len(evs))
		if err := d.Ingest(evs[i:end]); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
		// Hammer the dry-run endpoints between batches.
		resp, err := srv.Client().Get(srv.URL + "/v1/plan?user=gone")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		resp, err = srv.Client().Get(srv.URL + "/v1/victims")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	requireSameReports(t, "plan isolation", d.stream.Result().Reports, ref.Reports)
	requireSameFS(t, "plan isolation", d, ref)
}
