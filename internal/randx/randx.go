// Package randx provides a deterministic, seedable random source and
// the heavy-tailed distributions used by the synthetic trace
// generator: Zipf, log-normal, Pareto, Poisson, exponential, and
// weighted choice.
//
// The generator is SplitMix64: tiny state, excellent statistical
// quality for simulation purposes, and — unlike math/rand's global
// source — trivially reproducible across runs and shardable across
// goroutines by deriving child seeds.
package randx

import "math"

// Source is a deterministic SplitMix64 pseudo-random generator. It is
// not safe for concurrent use; derive one Source per goroutine with
// Split.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source { return &Source{state: seed} }

// Split derives an independent child source. Successive calls yield
// distinct streams, so a parent can deterministically fan out work to
// shards.
func (s *Source) Split() *Source { return New(s.Uint64() ^ 0x9e3779b97f4a7c15) }

// State exposes the generator's internal state so long-running
// simulations can checkpoint their random streams.
func (s *Source) State() uint64 { return s.state }

// Restore rewinds the generator to a state previously captured with
// State; the subsequent draw sequence repeats exactly.
func (s *Source) Restore(state uint64) { s.state = state }

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a non-negative int64.
func (s *Source) Int63() int64 { return int64(s.Uint64() >> 1) }

// Intn returns a uniform integer in [0, n). It panics if n ≤ 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("randx: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Int64n returns a uniform int64 in [0, n). It panics if n ≤ 0.
func (s *Source) Int64n(n int64) int64 {
	if n <= 0 {
		panic("randx: Int64n with non-positive n")
	}
	return int64(s.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.Float64() < p }

// NormFloat64 returns a standard normal variate (Box–Muller, one of
// the pair; simple and adequate for workload synthesis).
func (s *Source) NormFloat64() float64 {
	for {
		u := s.Float64()
		if u == 0 {
			continue
		}
		v := s.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// ExpFloat64 returns an exponential variate with rate 1 (mean 1).
func (s *Source) ExpFloat64() float64 {
	for {
		u := s.Float64()
		if u == 0 {
			continue
		}
		return -math.Log(u)
	}
}

// Exp returns an exponential variate with the given mean.
func (s *Source) Exp(mean float64) float64 { return mean * s.ExpFloat64() }

// LogNormal returns exp(N(mu, sigma²)).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.NormFloat64())
}

// Pareto returns a Pareto(xm, alpha) variate: xm · U^(−1/α).
func (s *Source) Pareto(xm, alpha float64) float64 {
	for {
		u := s.Float64()
		if u == 0 {
			continue
		}
		return xm * math.Pow(u, -1/alpha)
	}
}

// Poisson returns a Poisson(lambda) variate. For small lambda it uses
// Knuth's product method; for large lambda a normal approximation,
// which is ample for event-count synthesis.
func (s *Source) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= s.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	n := int(math.Round(lambda + math.Sqrt(lambda)*s.NormFloat64()))
	if n < 0 {
		return 0
	}
	return n
}

// Zipf draws integers in [1, n] with P(k) ∝ 1/k^alpha via an exact
// cumulative table and binary search. Setup is O(n), each draw is
// O(log n) with no rejection loop; the synthetic generator only needs
// n up to a few million, for which the table is cheap and the
// distribution is exact.
type Zipf struct {
	src *Source
	cum []float64 // cum[k-1] = Σ_{i≤k} i^−α, normalized to end at 1
}

// NewZipf builds a Zipf sampler over [1, n] with exponent alpha.
func NewZipf(src *Source, alpha float64, n int64) *Zipf {
	if n < 1 {
		panic("randx: NewZipf with n < 1")
	}
	if alpha <= 0 {
		panic("randx: NewZipf with alpha <= 0")
	}
	cum := make([]float64, n)
	total := 0.0
	for k := int64(1); k <= n; k++ {
		total += math.Exp(-alpha * math.Log(float64(k)))
		cum[k-1] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{src: src, cum: cum}
}

// Next returns the next Zipf variate in [1, n].
func (z *Zipf) Next() int64 {
	u := z.src.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int64(lo + 1)
}

// Weighted selects indices in proportion to non-negative weights.
type Weighted struct {
	cum   []float64
	total float64
}

// NewWeighted builds a weighted sampler. It panics if no weight is
// positive.
func NewWeighted(weights []float64) *Weighted {
	w := &Weighted{cum: make([]float64, len(weights))}
	for i, x := range weights {
		if x < 0 {
			panic("randx: negative weight")
		}
		w.total += x
		w.cum[i] = w.total
	}
	if w.total <= 0 {
		panic("randx: all weights zero")
	}
	return w
}

// Pick returns a weighted index using src.
func (w *Weighted) Pick(src *Source) int {
	x := src.Float64() * w.total
	// Binary search the cumulative table.
	lo, hi := 0, len(w.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if w.cum[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Shuffle permutes the first n indices via the provided swap function
// (Fisher–Yates).
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
