package randx

import "testing"

// TestSplitStreamIndependence checks that Split children draw
// streams with no shared prefix: across a family of children (and
// the parent), no two sources may agree on even a short prefix, or a
// sharded replay would correlate its shards.
func TestSplitStreamIndependence(t *testing.T) {
	const (
		children = 64
		draws    = 1024
		prefix   = 8
	)
	parent := New(0xADD5EED)
	streams := make([][]uint64, 0, children+1)

	kids := make([]*Source, children)
	for i := range kids {
		kids[i] = parent.Split()
	}
	// Parent drawn after splitting so its stream continues from the
	// post-split state, like a pool master handing out shards.
	all := append(kids, parent)
	for _, s := range all {
		seq := make([]uint64, draws)
		for j := range seq {
			seq[j] = s.Uint64()
		}
		streams = append(streams, seq)
	}

	for a := 0; a < len(streams); a++ {
		for b := a + 1; b < len(streams); b++ {
			if samePrefix(streams[a], streams[b], prefix) {
				t.Fatalf("streams %d and %d share a %d-draw prefix", a, b, prefix)
			}
		}
	}

	// Distinctness across the whole family: 66k six-four-bit draws
	// colliding would point at a broken mixer, not bad luck.
	seen := make(map[uint64][2]int, len(streams)*draws)
	for i, seq := range streams {
		for j, v := range seq {
			if prev, dup := seen[v]; dup {
				t.Fatalf("value %#x drawn twice: stream %d draw %d and stream %d draw %d",
					v, prev[0], prev[1], i, j)
			}
			seen[v] = [2]int{i, j}
		}
	}
}

func samePrefix(a, b []uint64, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestStateRoundTrip checks that State/Restore replays the draw
// sequence exactly — the property checkpoint/resume leans on.
func TestStateRoundTrip(t *testing.T) {
	src := New(42)
	for i := 0; i < 100; i++ {
		src.Uint64() // advance to an arbitrary mid-stream point
	}
	saved := src.State()

	first := make([]uint64, 256)
	for i := range first {
		first[i] = src.Uint64()
	}
	drifted := src.State()

	src.Restore(saved)
	if got := src.State(); got != saved {
		t.Fatalf("State after Restore = %#x, want %#x", got, saved)
	}
	for i := range first {
		if got := src.Uint64(); got != first[i] {
			t.Fatalf("draw %d after Restore = %#x, want %#x", i, got, first[i])
		}
	}
	if got := src.State(); got != drifted {
		t.Fatalf("state after replay = %#x, want %#x", got, drifted)
	}

	// Restoring a child does not disturb the parent and vice versa.
	parent := New(7)
	child := parent.Split()
	ps, cs := parent.State(), child.State()
	parent.Uint64()
	child.Uint64()
	parent.Restore(ps)
	if child.State() == cs {
		t.Fatal("child state did not advance independently")
	}
	child.Restore(cs)
	if parent.State() != ps {
		t.Fatal("restoring the child moved the parent")
	}
}
