package randx

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
	c := New(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if New(42).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d collisions in 1000 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	equal := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			equal++
		}
	}
	if equal > 2 {
		t.Fatalf("split children produced %d equal values in 1000 draws", equal)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(1)
	for i := 0; i < 100000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := New(2)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) hit only %d distinct values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(3)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := s.NormFloat64()
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ≈1", variance)
	}
}

func TestExpMean(t *testing.T) {
	s := New(4)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exp(5)
	}
	if mean := sum / n; math.Abs(mean-5) > 0.1 {
		t.Errorf("exponential mean = %v, want ≈5", mean)
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(5)
	for i := 0; i < 10000; i++ {
		if v := s.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", v)
		}
	}
}

func TestParetoTail(t *testing.T) {
	s := New(6)
	const n = 100000
	over := 0
	for i := 0; i < n; i++ {
		v := s.Pareto(1, 2)
		if v < 1 {
			t.Fatalf("Pareto below xm: %v", v)
		}
		if v > 10 {
			over++
		}
	}
	// P(X > 10) = (1/10)^2 = 1%.
	frac := float64(over) / n
	if frac < 0.005 || frac > 0.02 {
		t.Errorf("Pareto tail fraction = %v, want ≈0.01", frac)
	}
}

func TestPoissonMean(t *testing.T) {
	for _, lambda := range []float64{0.5, 3, 25, 100} {
		s := New(7)
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(s.Poisson(lambda))
		}
		mean := sum / n
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Errorf("Poisson(%v) mean = %v", lambda, mean)
		}
	}
	if New(1).Poisson(0) != 0 || New(1).Poisson(-1) != 0 {
		t.Error("Poisson of non-positive lambda should be 0")
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	s := New(8)
	z := NewZipf(s, 1.2, 1000)
	counts := make(map[int64]int)
	const n = 100000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v < 1 || v > 1000 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[1] <= counts[2] || counts[2] <= counts[10] {
		t.Errorf("Zipf not skewed: c1=%d c2=%d c10=%d", counts[1], counts[2], counts[10])
	}
	// Rank 1 should dominate: with alpha=1.2, P(1) ≈ 18%.
	if frac := float64(counts[1]) / n; frac < 0.10 || frac > 0.30 {
		t.Errorf("Zipf P(1) = %v, want ≈0.18", frac)
	}
}

func TestZipfAlphaOne(t *testing.T) {
	s := New(9)
	z := NewZipf(s, 1.0, 100)
	for i := 0; i < 10000; i++ {
		v := z.Next()
		if v < 1 || v > 100 {
			t.Fatalf("Zipf(α=1) out of range: %d", v)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewZipf(New(1), 0, 10) },
		func() { NewZipf(New(1), 1.1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("NewZipf with bad args did not panic")
				}
			}()
			f()
		}()
	}
}

func TestWeightedDistribution(t *testing.T) {
	w := NewWeighted([]float64{1, 0, 3})
	s := New(10)
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[w.Pick(s)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index picked %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("weight ratio = %v, want ≈3", ratio)
	}
}

func TestWeightedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWeighted(all zero) did not panic")
		}
	}()
	NewWeighted([]float64{0, 0})
}

func TestPermIsPermutation(t *testing.T) {
	s := New(11)
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm invalid at value %d", v)
		}
		seen[v] = true
	}
}

func TestInt63NonNegative(t *testing.T) {
	s := New(20)
	for i := 0; i < 10000; i++ {
		if s.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
}

func TestInt64nRange(t *testing.T) {
	s := New(21)
	for i := 0; i < 10000; i++ {
		v := s.Int64n(1 << 40)
		if v < 0 || v >= 1<<40 {
			t.Fatalf("Int64n out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Int64n(0) did not panic")
		}
	}()
	s.Int64n(0)
}

func TestBoolProbability(t *testing.T) {
	s := New(22)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.28 || frac > 0.32 {
		t.Fatalf("Bool(0.3) fraction = %v", frac)
	}
	if s.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !s.Bool(1.1) {
		t.Error("Bool(>1) returned false")
	}
}

func TestNewWeightedNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative weight accepted")
		}
	}()
	NewWeighted([]float64{1, -1})
}

func TestStateRestore(t *testing.T) {
	s := New(99)
	for i := 0; i < 10; i++ {
		s.Uint64()
	}
	st := s.State()
	want := []uint64{s.Uint64(), s.Uint64(), s.Uint64()}
	s.Restore(st)
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("draw %d after Restore = %d, want %d", i, got, w)
		}
	}
	// A fresh source restored to the same state replays the stream too.
	fresh := New(0)
	fresh.Restore(st)
	if fresh.Uint64() != want[0] {
		t.Fatal("restored fresh source diverged")
	}
}
