package parallel

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestShardsCoverExactly(t *testing.T) {
	f := func(nRaw uint16, ranksRaw uint8) bool {
		n := int(nRaw % 5000)
		p := NewPool(int(ranksRaw%32) + 1)
		shards := p.Shards(n)
		if n == 0 {
			return len(shards) == 0
		}
		covered := 0
		prev := 0
		for _, s := range shards {
			if s[0] != prev || s[1] <= s[0] {
				return false
			}
			covered += s[1] - s[0]
			prev = s[1]
		}
		if covered != n || prev != n {
			return false
		}
		// Shard sizes differ by at most 1.
		min, max := n, 0
		for _, s := range shards {
			size := s[1] - s[0]
			if size < min {
				min = size
			}
			if size > max {
				max = size
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewPoolDefaults(t *testing.T) {
	if NewPool(0).Ranks() <= 0 {
		t.Fatal("default pool has no ranks")
	}
	if NewPool(7).Ranks() != 7 {
		t.Fatal("explicit rank count ignored")
	}
}

func TestForEachShardVisitsAll(t *testing.T) {
	p := NewPool(4)
	const n = 1000
	var hits [n]int32
	err := p.ForEachShard(n, func(rank, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("item %d visited %d times", i, h)
		}
	}
}

func TestTimedShards(t *testing.T) {
	p := NewPool(3)
	var total int64
	timings, err := p.TimedShards(100, func(rank, lo, hi int) {
		atomic.AddInt64(&total, int64(hi-lo))
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(timings) != 3 {
		t.Fatalf("timings = %d ranks", len(timings))
	}
	items := 0
	for _, tm := range timings {
		if tm.Elapsed < 0 {
			t.Errorf("rank %d negative elapsed", tm.Rank)
		}
		items += tm.Items
		if tm.String() == "" {
			t.Error("empty timing string")
		}
	}
	if items != 100 || total != 100 {
		t.Fatalf("items = %d, total = %d", items, total)
	}
}

func TestRunShardsCollectsErrorsAndPanics(t *testing.T) {
	p := NewPool(4)
	sentinel := errors.New("shard failed")
	err := p.RunShards(100, func(rank, lo, hi int) error {
		switch rank {
		case 1:
			return sentinel
		case 2:
			panic("rank 2 exploded")
		}
		return nil
	})
	if err == nil {
		t.Fatal("shard failures lost")
	}
	if !errors.Is(err, sentinel) {
		t.Error("returned shard error not joined")
	}
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatal("no *ShardError in chain")
	}
	if !strings.Contains(err.Error(), "rank 2 exploded") {
		t.Errorf("panic value lost: %v", err)
	}
	if !strings.Contains(err.Error(), "rank 1 shard [") {
		t.Errorf("shard coordinates missing: %v", err)
	}
	if p.RunShards(0, func(rank, lo, hi int) error { return nil }) != nil {
		t.Error("empty shard set errored")
	}
}

func TestForEachShardRecoversPanic(t *testing.T) {
	p := NewPool(3)
	var visited int32
	err := p.ForEachShard(90, func(rank, lo, hi int) {
		if rank == 0 {
			panic(errors.New("boom"))
		}
		atomic.AddInt32(&visited, int32(hi-lo))
	})
	if err == nil {
		t.Fatal("panic not surfaced as error")
	}
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T, want *ShardError in chain", err)
	}
	if se.Rank != 0 || se.Lo != 0 || se.Hi != 30 {
		t.Errorf("shard coords = rank %d [%d,%d)", se.Rank, se.Lo, se.Hi)
	}
	// The surviving ranks finished their shards.
	if visited != 60 {
		t.Errorf("surviving ranks visited %d items, want 60", visited)
	}
}

func TestTimedShardsSurvivesPanic(t *testing.T) {
	p := NewPool(2)
	timings, err := p.TimedShards(10, func(rank, lo, hi int) {
		if rank == 1 {
			panic("late rank down")
		}
	})
	if err == nil {
		t.Fatal("panic not surfaced")
	}
	if len(timings) != 2 {
		t.Fatalf("timings = %d ranks, want both recorded", len(timings))
	}
	for _, tm := range timings {
		if tm.Elapsed < 0 {
			t.Errorf("rank %d negative elapsed", tm.Rank)
		}
	}
}

func TestShardErrorUnwrap(t *testing.T) {
	cause := errors.New("root cause")
	se := &ShardError{Rank: 3, Lo: 10, Hi: 20, Err: cause}
	if !errors.Is(se, cause) {
		t.Error("Unwrap does not expose cause")
	}
	want := "parallel: rank 3 shard [10,20): root cause"
	if se.Error() != want {
		t.Errorf("Error() = %q, want %q", se.Error(), want)
	}
}

func TestRunCollectsErrors(t *testing.T) {
	p := NewPool(2)
	sentinel := errors.New("boom")
	err := p.Run([]func() error{
		func() error { return nil },
		func() error { return sentinel },
		func() error { panic("ouch") },
	})
	if err == nil {
		t.Fatal("errors lost")
	}
	if !errors.Is(err, sentinel) {
		t.Error("sentinel error not joined")
	}
	if err.Error() == "" {
		t.Error("empty error text")
	}
	if p.Run(nil) != nil {
		t.Error("empty task list errored")
	}
}
