package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestShardsCoverExactly(t *testing.T) {
	f := func(nRaw uint16, ranksRaw uint8) bool {
		n := int(nRaw % 5000)
		p := NewPool(int(ranksRaw%32) + 1)
		shards := p.Shards(n)
		if n == 0 {
			return len(shards) == 0
		}
		covered := 0
		prev := 0
		for _, s := range shards {
			if s[0] != prev || s[1] <= s[0] {
				return false
			}
			covered += s[1] - s[0]
			prev = s[1]
		}
		if covered != n || prev != n {
			return false
		}
		// Shard sizes differ by at most 1.
		min, max := n, 0
		for _, s := range shards {
			size := s[1] - s[0]
			if size < min {
				min = size
			}
			if size > max {
				max = size
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewPoolDefaults(t *testing.T) {
	if NewPool(0).Ranks() <= 0 {
		t.Fatal("default pool has no ranks")
	}
	if NewPool(7).Ranks() != 7 {
		t.Fatal("explicit rank count ignored")
	}
}

func TestForEachShardVisitsAll(t *testing.T) {
	p := NewPool(4)
	const n = 1000
	var hits [n]int32
	p.ForEachShard(n, func(rank, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("item %d visited %d times", i, h)
		}
	}
}

func TestTimedShards(t *testing.T) {
	p := NewPool(3)
	var total int64
	timings := p.TimedShards(100, func(rank, lo, hi int) {
		atomic.AddInt64(&total, int64(hi-lo))
	})
	if len(timings) != 3 {
		t.Fatalf("timings = %d ranks", len(timings))
	}
	items := 0
	for _, tm := range timings {
		if tm.Elapsed < 0 {
			t.Errorf("rank %d negative elapsed", tm.Rank)
		}
		items += tm.Items
		if tm.String() == "" {
			t.Error("empty timing string")
		}
	}
	if items != 100 || total != 100 {
		t.Fatalf("items = %d, total = %d", items, total)
	}
}

func TestRunCollectsErrors(t *testing.T) {
	p := NewPool(2)
	sentinel := errors.New("boom")
	err := p.Run([]func() error{
		func() error { return nil },
		func() error { return sentinel },
		func() error { panic("ouch") },
	})
	if err == nil {
		t.Fatal("errors lost")
	}
	if !errors.Is(err, sentinel) {
		t.Error("sentinel error not joined")
	}
	if err.Error() == "" {
		t.Error("empty error text")
	}
	if p.Run(nil) != nil {
		t.Error("empty task list errored")
	}
}
