// Package parallel provides the sharded worker pool the retention
// prototype uses to scan metadata snapshots, mirroring the paper's
// mpi4py ranks: work is split into contiguous shards, one goroutine
// per rank, with per-rank timing probes feeding the Figure 12
// performance evaluation.
package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"activedr/internal/profiling"
)

// Pool runs sharded work across a fixed number of ranks.
type Pool struct {
	ranks int
}

// NewPool builds a pool with the given number of ranks; ranks ≤ 0
// selects GOMAXPROCS.
func NewPool(ranks int) *Pool {
	if ranks <= 0 {
		ranks = runtime.GOMAXPROCS(0)
	}
	return &Pool{ranks: ranks}
}

// Ranks returns the pool width.
func (p *Pool) Ranks() int { return p.ranks }

// Shards splits n items into at most Ranks() contiguous [lo, hi)
// ranges of near-equal size.
func (p *Pool) Shards(n int) [][2]int {
	if n <= 0 {
		return nil
	}
	k := p.ranks
	if k > n {
		k = n
	}
	out := make([][2]int, 0, k)
	base, rem := n/k, n%k
	lo := 0
	for i := 0; i < k; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, [2]int{lo, lo + size})
		lo += size
	}
	return out
}

// ShardError is a failure in one rank's shard: either an error the
// shard function returned or a recovered panic, tagged with the rank
// and the [Lo, Hi) item range so a billion-file scan failure points at
// the slice that caused it.
type ShardError struct {
	Rank int
	Lo   int
	Hi   int
	Err  error
}

// Error renders the failure with its shard coordinates.
func (e *ShardError) Error() string {
	return fmt.Sprintf("parallel: rank %d shard [%d,%d): %v", e.Rank, e.Lo, e.Hi, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *ShardError) Unwrap() error { return e.Err }

// callShard invokes fn for one shard, converting a panic into an
// error carrying the recovered value and stack. A panicking rank must
// not take the whole process down: the other ranks finish and the
// caller gets a joined report instead of a crash.
func callShard(rank, lo, hi int, fn func(rank, lo, hi int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &ShardError{Rank: rank, Lo: lo, Hi: hi,
				Err: fmt.Errorf("panic: %v\n%s", r, debug.Stack())}
		}
	}()
	if e := fn(rank, lo, hi); e != nil {
		err = &ShardError{Rank: rank, Lo: lo, Hi: hi, Err: e}
	}
	return
}

// RunShards runs fn(rank, lo, hi) concurrently over the shards of n
// items and blocks until all ranks finish, joining per-rank failures
// (returned errors and recovered panics) into the result.
func (p *Pool) RunShards(n int, fn func(rank, lo, hi int) error) error {
	shards := p.Shards(n)
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for r, s := range shards {
		wg.Add(1)
		go func(rank, lo, hi int) {
			defer wg.Done()
			errs[rank] = callShard(rank, lo, hi, fn)
		}(r, s[0], s[1])
	}
	wg.Wait()
	return errors.Join(errs...)
}

// ForEachShard runs fn(rank, lo, hi) concurrently over the shards of
// n items and blocks until all ranks finish. A panic in any rank is
// recovered into a *ShardError identifying the shard.
func (p *Pool) ForEachShard(n int, fn func(rank, lo, hi int)) error {
	return p.RunShards(n, func(rank, lo, hi int) error {
		fn(rank, lo, hi)
		return nil
	})
}

// RankTiming records one rank's wall-clock work, the per-rank probe
// of the paper's Figure 12b–d.
type RankTiming struct {
	Rank    int
	Items   int
	Elapsed time.Duration
}

// String renders the timing as one report line.
func (t RankTiming) String() string {
	return fmt.Sprintf("rank %2d: items=%d elapsed=%v", t.Rank, t.Items, t.Elapsed)
}

// TimedShards is ForEachShard with per-rank timing probes. Panicking
// ranks still record their timing (up to the panic) and surface as
// *ShardError in the joined error.
func (p *Pool) TimedShards(n int, fn func(rank, lo, hi int)) ([]RankTiming, error) {
	shards := p.Shards(n)
	timings := make([]RankTiming, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for r, s := range shards {
		wg.Add(1)
		go func(rank, lo, hi int) {
			defer wg.Done()
			timer := profiling.StartTimer()
			errs[rank] = callShard(rank, lo, hi, func(rank, lo, hi int) error {
				fn(rank, lo, hi)
				return nil
			})
			timings[rank] = RankTiming{Rank: rank, Items: hi - lo, Elapsed: timer.Elapsed()}
		}(r, s[0], s[1])
	}
	wg.Wait()
	return timings, errors.Join(errs...)
}

// Workers runs fn once per rank concurrently — the shape of a
// worker-pool stage draining a shared channel, as the trace ingestion
// pipeline does — and blocks until every rank returns, joining errors
// and recovered panics.
func (p *Pool) Workers(fn func(rank int) error) error {
	tasks := make([]func() error, p.ranks)
	for r := range tasks {
		r := r
		tasks[r] = func() error { return fn(r) }
	}
	return p.Run(tasks)
}

// Run executes the tasks across the pool, collecting every error
// (joined) and recovering panics into errors so one bad shard cannot
// take the scan down.
func (p *Pool) Run(tasks []func() error) error {
	if len(tasks) == 0 {
		return nil
	}
	sem := make(chan struct{}, p.ranks)
	errs := make([]error, len(tasks))
	var wg sync.WaitGroup
	for i, task := range tasks {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, task func() error) {
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("parallel: task %d panicked: %v", i, r)
				}
				<-sem
				wg.Done()
			}()
			errs[i] = task()
		}(i, task)
	}
	wg.Wait()
	return errors.Join(errs...)
}
