package parallel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestStressManyShortTasks hammers Run with far more tasks than
// ranks, all mutating shared accumulators. Meaningful under -race:
// the atomic counter and the mutex-guarded map are touched from
// every rank concurrently.
func TestStressManyShortTasks(t *testing.T) {
	const tasks = 5000
	pool := NewPool(8)

	var counter atomic.Int64
	var mu sync.Mutex
	perTask := make(map[int]bool, tasks)

	fns := make([]func() error, tasks)
	for i := range fns {
		i := i
		fns[i] = func() error {
			counter.Add(1)
			mu.Lock()
			perTask[i] = true
			mu.Unlock()
			return nil
		}
	}
	if err := pool.Run(fns); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := counter.Load(); got != tasks {
		t.Fatalf("counter = %d, want %d", got, tasks)
	}
	if len(perTask) != tasks {
		t.Fatalf("perTask has %d entries, want %d", len(perTask), tasks)
	}
}

// TestStressPanicsMidFlight panics in a third of the tasks and in
// several shards while the rest keep writing shared state. Every
// panic must surface as an error, every non-panicking task must have
// run, and the process must survive.
func TestStressPanicsMidFlight(t *testing.T) {
	const tasks = 900
	pool := NewPool(6)

	var completed atomic.Int64
	fns := make([]func() error, tasks)
	for i := range fns {
		i := i
		fns[i] = func() error {
			if i%3 == 0 {
				panic(fmt.Sprintf("task %d detonated", i))
			}
			completed.Add(1)
			return nil
		}
	}
	err := pool.Run(fns)
	if err == nil {
		t.Fatal("Run returned nil error despite panics")
	}
	if got := completed.Load(); got != tasks-tasks/3 {
		t.Fatalf("completed = %d, want %d", got, tasks-tasks/3)
	}

	// Same mid-flight panics through the shard API: panicking ranks
	// must not stop the others, and each failure must carry its
	// shard coordinates.
	var items atomic.Int64
	err = pool.RunShards(1000, func(rank, lo, hi int) error {
		for i := lo; i < hi; i++ {
			if i == lo+(hi-lo)/2 && rank%2 == 0 {
				panic("rank detonated halfway")
			}
			items.Add(1)
		}
		return nil
	})
	if err == nil {
		t.Fatal("RunShards returned nil error despite panics")
	}
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("error %v does not unwrap to *ShardError", err)
	}
	if se.Hi <= se.Lo {
		t.Fatalf("ShardError has empty range [%d,%d)", se.Lo, se.Hi)
	}
	if items.Load() == 0 {
		t.Fatal("no items processed despite odd ranks surviving")
	}
}

// TestStressSharedAccumulators runs TimedShards repeatedly with all
// ranks appending into rank-indexed slots and summing into shared
// atomics — the accumulation patterns the figure suite uses — so the
// race detector sees the real access pattern at full width.
func TestStressSharedAccumulators(t *testing.T) {
	const n = 10000
	pool := NewPool(0) // GOMAXPROCS width

	for round := 0; round < 5; round++ {
		var sum atomic.Int64
		perRank := make([]int64, pool.Ranks())
		timings, err := pool.TimedShards(n, func(rank, lo, hi int) {
			local := int64(0)
			for i := lo; i < hi; i++ {
				local += int64(i)
			}
			perRank[rank] += local
			sum.Add(local)
		})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		want := int64(n) * (n - 1) / 2
		if got := sum.Load(); got != want {
			t.Fatalf("round %d: sum = %d, want %d", round, got, want)
		}
		var fromRanks int64
		for _, v := range perRank {
			fromRanks += v
		}
		if fromRanks != want {
			t.Fatalf("round %d: per-rank sum = %d, want %d", round, fromRanks, want)
		}
		var covered int
		for _, tm := range timings {
			covered += tm.Items
		}
		if covered != n {
			t.Fatalf("round %d: timings cover %d items, want %d", round, covered, n)
		}
	}
}

// TestStressConcurrentPools runs several pools at once, each with
// its own shard work, to catch any accidental shared state between
// Pool values.
func TestStressConcurrentPools(t *testing.T) {
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			pool := NewPool(3 + p)
			var count atomic.Int64
			if err := pool.ForEachShard(2500, func(rank, lo, hi int) {
				count.Add(int64(hi - lo))
			}); err != nil {
				t.Errorf("pool %d: %v", p, err)
				return
			}
			if got := count.Load(); got != 2500 {
				t.Errorf("pool %d: covered %d items, want 2500", p, got)
			}
		}(p)
	}
	wg.Wait()
}
