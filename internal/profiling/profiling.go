// Package profiling wires the standard -cpuprofile/-memprofile flags
// into the CLI tools so replay hot spots can be inspected with
// `go tool pprof` without rebuilding anything.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"
)

// Stopwatch is a wall-clock probe for performance reporting. It
// exists so the deterministic replay packages never touch time.Now
// directly: elapsed-time fields in reports are measurement metadata,
// and every read of the wall clock is funneled through this package
// where the nondeterminism lint rule (DESIGN.md §9) permits it.
type Stopwatch struct {
	start time.Time
}

// StartTimer starts a wall-clock stopwatch.
func StartTimer() Stopwatch { return Stopwatch{start: time.Now()} }

// Elapsed returns the wall-clock time since the stopwatch started.
func (s Stopwatch) Elapsed() time.Duration { return time.Since(s.start) }

// Start begins CPU profiling to cpuPath (when non-empty) and returns
// a stop function that finishes the CPU profile and writes a heap
// profile to memPath (when non-empty). Call stop before exit — via
// defer when the program ends by returning from main, or explicitly
// before os.Exit.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: close cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC() // capture the settled heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
