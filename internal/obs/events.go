package obs

// The structured event stream: one JSON object per line, hand-encoded
// with strconv.Append-style writers over pooled buffers (the PR-4
// trace-writer idiom) so a full-year instrumented replay does not
// spend its time in reflection. The encoders are byte-compatible with
// encoding/json for these event types — field order follows struct
// declaration order and strings use the same escaping rules — which
// the round-trip tests enforce with encoding/json as the oracle, and
// which lets any JSONL consumer (jq, cmd/report, a notebook) decode
// the stream with a stock parser.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"unicode/utf8"
)

// Event kinds, stored in each event's Kind field.
const (
	KindTrigger = "trigger"
	KindMiss    = "miss"
	KindAudit   = "audit"
)

// TriggerEvent is the per-trigger purge record: what the pass aimed
// for, what it freed, where the scan stopped, and how the damage
// spread across activeness groups.
type TriggerEvent struct {
	Kind   string `json:"kind"`
	Policy string `json:"policy"`
	Seq    int64  `json:"seq"` // 1-based trigger index within the run
	At     int64  `json:"at"`  // simulated trigger time, Unix seconds
	Date   string `json:"date"`

	FilesBefore int64 `json:"files_before"`
	BytesBefore int64 `json:"bytes_before"`
	TargetBytes int64 `json:"target_bytes"` // 0 = no space target
	PurgedFiles int64 `json:"purged_files"`
	PurgedBytes int64 `json:"purged_bytes"`
	FailedFiles int64 `json:"failed_files"` // victims whose unlink failed
	FailedBytes int64 `json:"failed_bytes"`
	Exempt      int64 `json:"exempt"`   // reserved-path hits
	Examined    int64 `json:"examined"` // scan-order position reached

	Incomplete    bool `json:"incomplete"` // scan interrupted by a fault
	TargetReached bool `json:"target_reached"`

	RetroPasses int64 `json:"retro_passes"`
	RetroFiles  int64 `json:"retro_files"` // purged on passes > 0
	RetroBytes  int64 `json:"retro_bytes"`

	PurgedByGroup []int64 `json:"purged_by_group"` // files, per activeness group
	AffectedUsers int64   `json:"affected_users"`
}

// MissEvent records one file miss as it happens: a replayed access
// touched a path the policy had purged.
type MissEvent struct {
	Kind   string `json:"kind"`
	Policy string `json:"policy"`
	At     int64  `json:"at"` // simulated access time, Unix seconds
	Date   string `json:"date"`
	User   int64  `json:"user"`
	Group  int64  `json:"group"` // owner's activeness group at the last trigger
	Path   string `json:"path"`
	Bytes  int64  `json:"bytes"` // restored from the archive
}

// Audit actions, stored in AuditEvent.Action.
const (
	ActionPurge  = "purge"
	ActionExempt = "exempt"
	ActionFail   = "fail" // unlink failed; the file survived
)

// AuditEvent is one sampled per-file purge decision. The stream sits
// behind Observer's sampling knob so a full-year run stays bounded.
type AuditEvent struct {
	Kind   string `json:"kind"`
	Policy string `json:"policy"`
	Seq    int64  `json:"seq"`    // trigger the decision belongs to
	Action string `json:"action"` // purge | exempt | fail
	Path   string `json:"path"`
	User   int64  `json:"user"`
	Group  int64  `json:"group"`
	Pass   int64  `json:"pass"` // 0 = primary scan, >0 = retro pass
	Bytes  int64  `json:"bytes"`
}

// lineBufs pools the per-event encoding buffers.
var lineBufs = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// EventWriter emits events as JSONL. Safe for concurrent use; write
// errors are sticky and surface from Flush/Err so a full stream never
// silently loses its tail. A nil EventWriter discards events.
type EventWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	n   int64
	err error
}

// NewEventWriter wraps w in a buffered JSONL encoder. The caller owns
// w's lifecycle; call Flush before closing it.
func NewEventWriter(w io.Writer) *EventWriter {
	return &EventWriter{bw: bufio.NewWriterSize(w, 1<<16)}
}

// Count returns the number of events accepted so far (0 on nil).
func (ew *EventWriter) Count() int64 {
	if ew == nil {
		return 0
	}
	ew.mu.Lock()
	defer ew.mu.Unlock()
	return ew.n
}

// Flush drains the buffer to the underlying writer and returns the
// sticky error, if any. Nil-safe.
func (ew *EventWriter) Flush() error {
	if ew == nil {
		return nil
	}
	ew.mu.Lock()
	defer ew.mu.Unlock()
	if ew.err == nil {
		ew.err = ew.bw.Flush()
	}
	return ew.err
}

// Err returns the sticky write error, if any. Nil-safe.
func (ew *EventWriter) Err() error {
	if ew == nil {
		return nil
	}
	ew.mu.Lock()
	defer ew.mu.Unlock()
	return ew.err
}

// write appends one encoded line (already newline-terminated).
func (ew *EventWriter) write(line []byte) {
	ew.mu.Lock()
	defer ew.mu.Unlock()
	if ew.err != nil {
		return
	}
	if _, err := ew.bw.Write(line); err != nil {
		ew.err = err
		return
	}
	ew.n++
}

// Trigger emits a trigger event. Nil-safe on writer and event.
func (ew *EventWriter) Trigger(e *TriggerEvent) {
	if ew == nil || e == nil {
		return
	}
	bp := lineBufs.Get().(*[]byte)
	*bp = e.appendJSON((*bp)[:0])
	*bp = append(*bp, '\n')
	ew.write(*bp)
	lineBufs.Put(bp)
}

// Miss emits a miss event. Nil-safe on writer and event.
func (ew *EventWriter) Miss(e *MissEvent) {
	if ew == nil || e == nil {
		return
	}
	bp := lineBufs.Get().(*[]byte)
	*bp = e.appendJSON((*bp)[:0])
	*bp = append(*bp, '\n')
	ew.write(*bp)
	lineBufs.Put(bp)
}

// Audit emits an audit event. Nil-safe on writer and event.
func (ew *EventWriter) Audit(e *AuditEvent) {
	if ew == nil || e == nil {
		return
	}
	bp := lineBufs.Get().(*[]byte)
	*bp = e.appendJSON((*bp)[:0])
	*bp = append(*bp, '\n')
	ew.write(*bp)
	lineBufs.Put(bp)
}

func (e *TriggerEvent) appendJSON(b []byte) []byte {
	b = append(b, '{')
	b = appendStringField(b, "kind", KindTrigger, true)
	b = appendStringField(b, "policy", e.Policy, false)
	b = appendIntField(b, "seq", e.Seq)
	b = appendIntField(b, "at", e.At)
	b = appendStringField(b, "date", e.Date, false)
	b = appendIntField(b, "files_before", e.FilesBefore)
	b = appendIntField(b, "bytes_before", e.BytesBefore)
	b = appendIntField(b, "target_bytes", e.TargetBytes)
	b = appendIntField(b, "purged_files", e.PurgedFiles)
	b = appendIntField(b, "purged_bytes", e.PurgedBytes)
	b = appendIntField(b, "failed_files", e.FailedFiles)
	b = appendIntField(b, "failed_bytes", e.FailedBytes)
	b = appendIntField(b, "exempt", e.Exempt)
	b = appendIntField(b, "examined", e.Examined)
	b = appendBoolField(b, "incomplete", e.Incomplete)
	b = appendBoolField(b, "target_reached", e.TargetReached)
	b = appendIntField(b, "retro_passes", e.RetroPasses)
	b = appendIntField(b, "retro_files", e.RetroFiles)
	b = appendIntField(b, "retro_bytes", e.RetroBytes)
	b = append(b, `,"purged_by_group":`...)
	if e.PurgedByGroup == nil {
		b = append(b, "null"...)
	} else {
		b = append(b, '[')
		for i, v := range e.PurgedByGroup {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendInt(b, v, 10)
		}
		b = append(b, ']')
	}
	b = appendIntField(b, "affected_users", e.AffectedUsers)
	return append(b, '}')
}

func (e *MissEvent) appendJSON(b []byte) []byte {
	b = append(b, '{')
	b = appendStringField(b, "kind", KindMiss, true)
	b = appendStringField(b, "policy", e.Policy, false)
	b = appendIntField(b, "at", e.At)
	b = appendStringField(b, "date", e.Date, false)
	b = appendIntField(b, "user", e.User)
	b = appendIntField(b, "group", e.Group)
	b = appendStringField(b, "path", e.Path, false)
	b = appendIntField(b, "bytes", e.Bytes)
	return append(b, '}')
}

func (e *AuditEvent) appendJSON(b []byte) []byte {
	b = append(b, '{')
	b = appendStringField(b, "kind", KindAudit, true)
	b = appendStringField(b, "policy", e.Policy, false)
	b = appendIntField(b, "seq", e.Seq)
	b = appendStringField(b, "action", e.Action, false)
	b = appendStringField(b, "path", e.Path, false)
	b = appendIntField(b, "user", e.User)
	b = appendIntField(b, "group", e.Group)
	b = appendIntField(b, "pass", e.Pass)
	b = appendIntField(b, "bytes", e.Bytes)
	return append(b, '}')
}

func appendKey(b []byte, key string, first bool) []byte {
	if !first {
		b = append(b, ',')
	}
	b = append(b, '"')
	b = append(b, key...)
	return append(b, '"', ':')
}

func appendIntField(b []byte, key string, v int64) []byte {
	b = appendKey(b, key, false)
	return strconv.AppendInt(b, v, 10)
}

func appendBoolField(b []byte, key string, v bool) []byte {
	b = appendKey(b, key, false)
	return strconv.AppendBool(b, v)
}

func appendStringField(b []byte, key, v string, first bool) []byte {
	b = appendKey(b, key, first)
	return appendJSONString(b, v)
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends a quoted, escaped JSON string matching
// encoding/json's default (HTML-escaping) encoder byte for byte:
// quotes and backslashes escape, control characters use \n/\r/\t or
// \u00xx, the HTML-significant <, >, & escape to </>/&,
// U+2028/U+2029 escape, and invalid UTF-8 becomes U+FFFD.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			if jsonSafe[c] {
				b = append(b, c)
				i++
				continue
			}
			switch c {
			case '"':
				b = append(b, '\\', '"')
			case '\\':
				b = append(b, '\\', '\\')
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default: // other control chars, plus < > &
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, `\ufffd`...)
			i++
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			b = append(b, '\\', 'u', '2', '0', '2', hexDigits[r&0xf])
			i += size
			continue
		}
		b = append(b, s[i:i+size]...)
		i += size
	}
	return append(b, '"')
}

// jsonSafe marks ASCII bytes that pass through unescaped.
var jsonSafe = func() (safe [utf8.RuneSelf]bool) {
	for c := 0x20; c < utf8.RuneSelf; c++ {
		safe[c] = true
	}
	safe['"'], safe['\\'] = false, false
	safe['<'], safe['>'], safe['&'] = false, false, false
	return
}()

// Decoder reads an event stream back, line by line. It uses
// encoding/json — decoding is a cold path (cmd/report, tests) — and
// returns concretely typed events.
type Decoder struct {
	r    *bufio.Reader
	line int
}

// NewDecoder wraps r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReaderSize(r, 1<<16)}
}

// Next decodes the next event, returning io.EOF at end of stream. The
// result is *TriggerEvent, *MissEvent, or *AuditEvent; an unknown
// kind or malformed line is an error naming the line number.
func (d *Decoder) Next() (any, error) {
	for {
		line, err := d.r.ReadBytes('\n')
		if len(line) == 0 && err != nil {
			if err == io.EOF {
				return nil, io.EOF
			}
			return nil, fmt.Errorf("obs: events line %d: %w", d.line+1, err)
		}
		d.line++
		if len(trimSpace(line)) == 0 {
			if err != nil {
				return nil, io.EOF
			}
			continue
		}
		var probe struct {
			Kind string `json:"kind"`
		}
		if uerr := json.Unmarshal(line, &probe); uerr != nil {
			return nil, fmt.Errorf("obs: events line %d: %w", d.line, uerr)
		}
		var ev any
		switch probe.Kind {
		case KindTrigger:
			ev = new(TriggerEvent)
		case KindMiss:
			ev = new(MissEvent)
		case KindAudit:
			ev = new(AuditEvent)
		default:
			return nil, fmt.Errorf("obs: events line %d: unknown kind %q", d.line, probe.Kind)
		}
		if uerr := json.Unmarshal(line, ev); uerr != nil {
			return nil, fmt.Errorf("obs: events line %d: %w", d.line, uerr)
		}
		return ev, nil
	}
}

func trimSpace(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\n' || b[0] == '\r') {
		b = b[1:]
	}
	for len(b) > 0 {
		c := b[len(b)-1]
		if c != ' ' && c != '\t' && c != '\n' && c != '\r' {
			break
		}
		b = b[:len(b)-1]
	}
	return b
}
