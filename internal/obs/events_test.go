package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"reflect"
	"strings"
	"testing"
)

// sampleTrigger exercises every field type, including the nil and
// non-nil group-slice shapes.
func sampleTrigger(groups []int64) *TriggerEvent {
	return &TriggerEvent{
		Kind: KindTrigger, Policy: "ActiveDR-2160h0m0s", Seq: 12, At: 1467331200,
		Date: "2016-07-01", FilesBefore: 100000, BytesBefore: 1 << 42,
		TargetBytes: 1 << 41, PurgedFiles: 1234, PurgedBytes: 999999999,
		FailedFiles: 3, FailedBytes: 4096, Exempt: 17, Examined: 56789,
		Incomplete: true, TargetReached: false, RetroPasses: 5,
		RetroFiles: 40, RetroBytes: 123456, PurgedByGroup: groups,
		AffectedUsers: 321,
	}
}

// nastyStrings covers the encoder's escaping table: quotes,
// backslashes, control characters, HTML-significant bytes, the JSON
// line separators, multi-byte UTF-8, and invalid UTF-8.
var nastyStrings = []string{
	"",
	"/gpfs/alpine/user0042/run 7/output.h5",
	`quote " backslash \ slash /`,
	"tab\tnewline\ncarriage\rnull\x00bell\x07",
	"<script>&amp;</script>",
	"line sep \u2028 para sep \u2029 done",
	"héllo wörld — ✓",
	"broken \xff utf8 \xc3(",
}

// TestEncodingMatchesEncodingJSON is the oracle test: our
// strconv.Append encoders must produce byte-identical output to
// encoding/json for every event type, so any stock JSON consumer
// reads the stream exactly as written.
func TestEncodingMatchesEncodingJSON(t *testing.T) {
	check := func(name string, ev interface{ appendJSON([]byte) []byte }) {
		t.Helper()
		got := string(ev.appendJSON(nil))
		wantB, err := json.Marshal(ev)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != string(wantB) {
			t.Errorf("%s: encoding diverges from encoding/json\n got %s\nwant %s", name, got, wantB)
		}
	}
	check("trigger", sampleTrigger([]int64{9, 0, 3, 1}))
	check("trigger-nil-groups", sampleTrigger(nil))
	check("trigger-empty-groups", sampleTrigger([]int64{}))
	for _, s := range nastyStrings {
		check("miss:"+s, &MissEvent{
			Kind: KindMiss, Policy: "FLT-2160h0m0s", At: 1467331337,
			Date: "2016-07-01", User: 7, Group: 2, Path: s, Bytes: 1 << 30,
		})
		check("audit:"+s, &AuditEvent{
			Kind: KindAudit, Policy: s, Seq: 3, Action: ActionExempt,
			Path: s, User: -1, Group: 0, Pass: 4, Bytes: 0,
		})
	}
}

// TestEventRoundTrip writes a mixed stream through EventWriter and
// decodes it with encoding/json via Decoder: every event must come
// back structurally identical.
func TestEventRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	ew := NewEventWriter(&buf)
	want := []any{
		sampleTrigger([]int64{1, 2, 3, 4}),
		&MissEvent{Kind: KindMiss, Policy: "FLT-2160h0m0s", At: 99, Date: "2016-01-02",
			User: 12, Group: 1, Path: nastyStrings[3], Bytes: 512},
		&AuditEvent{Kind: KindAudit, Policy: "ActiveDR-2160h0m0s", Seq: 1,
			Action: ActionPurge, Path: nastyStrings[4], User: 3, Group: 3, Pass: 0, Bytes: 2048},
	}
	ew.Trigger(want[0].(*TriggerEvent))
	ew.Miss(want[1].(*MissEvent))
	ew.Audit(want[2].(*AuditEvent))
	if err := ew.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := ew.Count(); n != int64(len(want)) {
		t.Fatalf("count = %d, want %d", n, len(want))
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(want) {
		t.Fatalf("stream has %d lines, want %d", lines, len(want))
	}

	d := NewDecoder(bytes.NewReader(buf.Bytes()))
	var got []any
	for {
		ev, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ev)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		// Invalid UTF-8 is replaced with U+FFFD on encode, by design;
		// normalize the expectation the same way encoding/json does.
		if me, ok := w.(*MissEvent); ok {
			cp := *me
			cp.Path = strings.ToValidUTF8(cp.Path, "�")
			w = &cp
		}
		if !reflect.DeepEqual(w, g) {
			t.Errorf("event %d: round trip changed it\n got %#v\nwant %#v", i, g, w)
		}
	}
}

func TestDecoderErrors(t *testing.T) {
	d := NewDecoder(strings.NewReader("{\"kind\":\"nope\"}\n"))
	if _, err := d.Next(); err == nil || !strings.Contains(err.Error(), "unknown kind") {
		t.Fatalf("unknown kind error = %v", err)
	}
	d = NewDecoder(strings.NewReader("not json\n"))
	if _, err := d.Next(); err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("malformed line error = %v", err)
	}
	// Blank lines and a missing trailing newline are tolerated.
	tr := sampleTrigger(nil)
	stream := "\n" + string(tr.appendJSON(nil))
	d = NewDecoder(strings.NewReader(stream))
	ev, err := d.Next()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ev.(*TriggerEvent); !ok {
		t.Fatalf("decoded %T, want *TriggerEvent", ev)
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("want io.EOF at end, got %v", err)
	}
}

// errWriter fails after n bytes to prove write errors are sticky.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, io.ErrClosedPipe
	}
	if len(p) > w.n {
		p = p[:w.n]
	}
	w.n -= len(p)
	return len(p), io.ErrClosedPipe
}

func TestEventWriterStickyError(t *testing.T) {
	ew := NewEventWriter(&errWriter{n: 8})
	for i := 0; i < 2000; i++ {
		ew.Miss(&MissEvent{Kind: KindMiss, Path: "/p"})
	}
	if err := ew.Flush(); err == nil {
		t.Fatal("write error did not surface from Flush")
	}
	if err := ew.Err(); err == nil {
		t.Fatal("write error not sticky")
	}
}

func TestNilEventWriter(t *testing.T) {
	var ew *EventWriter
	ew.Trigger(sampleTrigger(nil))
	ew.Miss(&MissEvent{})
	ew.Audit(&AuditEvent{})
	if ew.Count() != 0 {
		t.Fatal("nil writer counted events")
	}
	if err := ew.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := ew.Err(); err != nil {
		t.Fatal(err)
	}
}
