package obs

import (
	"bytes"
	"io"
	"math"
	"testing"
)

func TestNewObserverValidatesSample(t *testing.T) {
	for _, bad := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := NewObserver(NewRegistry(), nil, bad); err == nil {
			t.Errorf("audit sample %v accepted", bad)
		}
	}
	for _, ok := range []float64{0, 0.5, 1} {
		if _, err := NewObserver(NewRegistry(), nil, ok); err != nil {
			t.Errorf("audit sample %v rejected: %v", ok, err)
		}
	}
}

func TestNilObserverIsInert(t *testing.T) {
	var o *Observer
	if o.Registry() != nil || o.Events() != nil {
		t.Fatal("nil observer handed out non-nil components")
	}
	o.BeginTrigger("p", 1)
	o.EmitTrigger(&TriggerEvent{})
	o.EmitMiss(&MissEvent{})
	o.StartPhase("x")()
	if ph := o.Phases(); ph != nil {
		t.Fatalf("nil observer has phases %v", ph)
	}
	p := o.Probe()
	p.Examined()
	p.Purged("/a", 1, 0, 0, 10)
	p.Exempt("/b", 1, 0, 0, 10)
	p.Failed("/c", 1, 0, 0, 10)
	p.Interrupted()
	if e, rf, rb := o.TriggerTally(); e != 0 || rf != 0 || rb != 0 {
		t.Fatal("nil observer tallied")
	}
	vp := o.VFSProbe()
	vp.Inserts.Inc()
	fm := o.FaultMetrics()
	fm.ReadFailures.Inc()
}

func TestProbeCountersAndTally(t *testing.T) {
	reg := NewRegistry()
	o, err := NewObserver(reg, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := o.Probe()
	o.BeginTrigger("FLT", 1)
	p.Examined()
	p.Examined()
	p.Purged("/a", 1, 0, 0, 100)
	p.Exempt("/b", 2, 1, 0, 50)
	p.Failed("/c", 3, 2, 0, 25)
	p.Purged("/d", 4, 3, 2, 200) // retro pass
	p.Interrupted()

	if e, rf, rb := o.TriggerTally(); e != 2 || rf != 1 || rb != 200 {
		t.Fatalf("tally = (%d,%d,%d), want (2,1,200)", e, rf, rb)
	}
	expect := map[string]int64{
		MetricPurgeExamined:    2,
		MetricPurgedFiles:      2,
		MetricPurgedBytes:      300,
		MetricPurgeExempt:      1,
		MetricPurgeFailedFiles: 1,
		MetricPurgeFailedBytes: 25,
		MetricPurgeInterrupted: 1,
	}
	for name, want := range expect {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}

	// BeginTrigger resets the scratch but never the counters.
	o.BeginTrigger("FLT", 2)
	if e, rf, rb := o.TriggerTally(); e != 0 || rf != 0 || rb != 0 {
		t.Fatalf("tally not reset: (%d,%d,%d)", e, rf, rb)
	}
	if got := reg.Counter(MetricPurgedFiles).Value(); got != 2 {
		t.Fatalf("counter reset by BeginTrigger: %d", got)
	}
}

// TestAuditSampling checks the determinism and the knob extremes:
// sample=1 records every decision, sample=0 none, and a fractional
// sample picks the same paths on every run.
func TestAuditSampling(t *testing.T) {
	paths := make([]string, 500)
	for i := range paths {
		paths[i] = "/gpfs/u/file" + string(rune('a'+i%26)) + "/" + string(rune('0'+i%10))
	}
	run := func(sample float64) []string {
		var buf bytes.Buffer
		ew := NewEventWriter(&buf)
		o, err := NewObserver(NewRegistry(), ew, sample)
		if err != nil {
			t.Fatal(err)
		}
		o.BeginTrigger("p", 1)
		for i, path := range paths {
			o.Probe().Purged(path, int64(i), 0, 0, 1)
		}
		if err := ew.Flush(); err != nil {
			t.Fatal(err)
		}
		var got []string
		d := NewDecoder(bytes.NewReader(buf.Bytes()))
		for {
			ev, err := d.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, ev.(*AuditEvent).Path)
		}
		return got
	}
	if got := run(1); len(got) != len(paths) {
		t.Fatalf("sample=1 recorded %d of %d decisions", len(got), len(paths))
	}
	if got := run(0); len(got) != 0 {
		t.Fatalf("sample=0 recorded %d decisions", len(got))
	}
	a, b := run(0.3), run(0.3)
	if len(a) == 0 || len(a) == len(paths) {
		t.Fatalf("sample=0.3 recorded %d of %d decisions — not a sample", len(a), len(paths))
	}
	if len(a) != len(b) {
		t.Fatalf("sampling nondeterministic: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sampling nondeterministic at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestPhases(t *testing.T) {
	o, err := NewObserver(NewRegistry(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	stop := o.StartPhase("purge")
	stop()
	o.StartPhase("replay")()
	o.StartPhase("purge")()
	ph := o.Phases()
	if len(ph) != 2 {
		t.Fatalf("phases = %v, want purge+replay", ph)
	}
	if ph[0].Name != "purge" || ph[1].Name != "replay" {
		t.Fatalf("phase order = %v, want sorted by name", ph)
	}
	for _, p := range ph {
		if p.Seconds < 0 {
			t.Fatalf("negative phase time %v", p)
		}
	}
}

func TestSampleThreshold(t *testing.T) {
	if sampleThreshold(0) != 0 {
		t.Fatal("threshold(0) != 0")
	}
	if sampleThreshold(1) != 1<<32 {
		t.Fatal("threshold(1) != 2^32")
	}
	if th := sampleThreshold(0.5); th == 0 || th >= 1<<32 {
		t.Fatalf("threshold(0.5) = %d out of range", th)
	}
	// Every hash is below 2^32, so threshold(1) admits everything.
	probe := PurgeProbe{sample: sampleThreshold(1)}
	if !probe.sampled("/any/path") {
		t.Fatal("sample=1 rejected a path")
	}
}
