package obs

// Observer bundles one run's observability surface: the registry the
// hot paths record into, the event stream, the sampled audit probe
// the retention policies call at each purge decision, and wall-clock
// phase timing routed through internal/profiling so the replay
// packages stay free of direct clock reads (DESIGN.md §9, §11).

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"activedr/internal/profiling"
)

// Metric names the replay instrumentation registers. Exported so the
// docs, the tests, and downstream consumers agree on the vocabulary.
const (
	MetricAccesses    = "replay_accesses_total"
	MetricMisses      = "replay_misses_total"
	MetricMissBytes   = "replay_miss_bytes_total"
	MetricTriggers    = "replay_triggers_total"
	MetricSnapshots   = "replay_snapshots_total"
	MetricCheckpoints = "replay_checkpoints_total"

	MetricPurgeExamined    = "purge_examined_total"
	MetricPurgedFiles      = "purge_purged_files_total"
	MetricPurgedBytes      = "purge_purged_bytes_total"
	MetricPurgeExempt      = "purge_exempt_total"
	MetricPurgeFailedFiles = "purge_failed_files_total"
	MetricPurgeFailedBytes = "purge_failed_bytes_total"
	MetricPurgeInterrupted = "purge_interrupted_scans_total"

	MetricVFSInserts      = "vfs_inserts_total"
	MetricVFSRemoves      = "vfs_removes_total"
	MetricVFSTouches      = "vfs_touches_total"
	MetricVFSTouchMisses  = "vfs_touch_misses_total"
	MetricVFSStaleQueries = "vfs_stale_queries_total"

	MetricFaultUnlinks    = "faults_unlink_failures_total"
	MetricFaultInterrupts = "faults_interrupted_scans_total"
	MetricFaultReads      = "faults_read_failures_total"
	MetricFaultWrites     = "faults_write_failures_total"
	MetricFaultTornWrites = "faults_torn_writes_total"

	MetricMissSizeBytes = "replay_miss_size_bytes"
	MetricTriggerFreed  = "purge_freed_of_target_pct"
)

// MetricMissesGroup names the per-activeness-group miss counter.
func MetricMissesGroup(g int) string {
	return fmt.Sprintf("replay_misses_group_%d_total", g)
}

// Observer wires a registry, an event stream, and an audit-sampling
// knob into one run-scoped handle. A nil Observer is fully inert:
// every method is a no-op, which is the instrumentation-off fast
// path.
type Observer struct {
	reg    *Registry
	events *EventWriter
	probe  PurgeProbe
	phases phaseTimes
}

// NewObserver builds an observer recording into reg (may be nil:
// metrics off) and emitting events to events (may be nil: stream
// off). auditSample ∈ [0,1] selects the fraction of per-file purge
// decisions to record on the event stream; 0 disables the audit
// stream, 1 records every decision. Sampling is deterministic — an
// FNV-1a hash of the file path against the threshold — so two runs
// over the same trace audit the same files and a resumed run carries
// no sampler state.
func NewObserver(reg *Registry, events *EventWriter, auditSample float64) (*Observer, error) {
	if !(auditSample >= 0 && auditSample <= 1) { // NaN fails both comparisons
		return nil, fmt.Errorf("obs: audit sample %v outside [0,1]", auditSample)
	}
	o := &Observer{reg: reg, events: events}
	o.probe = PurgeProbe{
		examined:    reg.Counter(MetricPurgeExamined),
		purged:      reg.Counter(MetricPurgedFiles),
		purgedBytes: reg.Counter(MetricPurgedBytes),
		exempt:      reg.Counter(MetricPurgeExempt),
		failed:      reg.Counter(MetricPurgeFailedFiles),
		failedBytes: reg.Counter(MetricPurgeFailedBytes),
		interrupted: reg.Counter(MetricPurgeInterrupted),
		sample:      sampleThreshold(auditSample),
	}
	if auditSample > 0 {
		o.probe.events = events
	}
	return o, nil
}

// Registry returns the observer's registry (nil when metrics are off
// or the observer is nil).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Events returns the observer's event writer (nil when the stream is
// off or the observer is nil).
func (o *Observer) Events() *EventWriter {
	if o == nil {
		return nil
	}
	return o.events
}

// Probe returns the purge-decision probe for retention policies. Nil
// on a nil observer; retention's probe calls are nil-safe either way.
func (o *Observer) Probe() *PurgeProbe {
	if o == nil {
		return nil
	}
	return &o.probe
}

// VFSProbe returns hot-path counters for the virtual file system.
// The zero VFSProbe (from a nil observer) discards everything.
func (o *Observer) VFSProbe() VFSProbe {
	if o == nil {
		return VFSProbe{}
	}
	return VFSProbe{
		Inserts:      o.reg.Counter(MetricVFSInserts),
		Removes:      o.reg.Counter(MetricVFSRemoves),
		Touches:      o.reg.Counter(MetricVFSTouches),
		TouchMisses:  o.reg.Counter(MetricVFSTouchMisses),
		StaleQueries: o.reg.Counter(MetricVFSStaleQueries),
	}
}

// FaultMetrics returns injected-fault counters for the fault
// injector. The zero FaultMetrics (from a nil observer) discards
// everything.
func (o *Observer) FaultMetrics() FaultMetrics {
	if o == nil {
		return FaultMetrics{}
	}
	return FaultMetrics{
		UnlinkFailures:   o.reg.Counter(MetricFaultUnlinks),
		InterruptedScans: o.reg.Counter(MetricFaultInterrupts),
		ReadFailures:     o.reg.Counter(MetricFaultReads),
		WriteFailures:    o.reg.Counter(MetricFaultWrites),
		TornWrites:       o.reg.Counter(MetricFaultTornWrites),
	}
}

// BeginTrigger scopes the probe's audit context to one purge trigger;
// the per-trigger scratch tallies (scan position, retro-pass
// contributions) reset here. Nil-safe.
func (o *Observer) BeginTrigger(policy string, seq int64) {
	if o == nil {
		return
	}
	o.probe.policy = policy
	o.probe.seq = seq
	o.probe.tally = probeTally{}
}

// TriggerTally returns the probe's per-trigger scratch: the scan
// position reached and retro-pass purge contributions of the trigger
// begun by the last BeginTrigger. Zero on a nil observer.
func (o *Observer) TriggerTally() (examined, retroFiles, retroBytes int64) {
	if o == nil {
		return 0, 0, 0
	}
	t := &o.probe.tally
	return t.examined, t.retroFiles, t.retroBytes
}

// EmitTrigger writes a trigger event to the stream. Nil-safe.
func (o *Observer) EmitTrigger(e *TriggerEvent) {
	if o == nil {
		return
	}
	o.events.Trigger(e)
}

// EmitMiss writes a miss event to the stream. Nil-safe.
func (o *Observer) EmitMiss(e *MissEvent) {
	if o == nil {
		return
	}
	o.events.Miss(e)
}

// StartPhase starts a wall-clock timer for one named replay phase
// (replay, purge, snapshot, checkpoint); the returned stop function
// accumulates the elapsed time under the name. Timing goes through
// profiling.StartTimer, the one sanctioned wall-clock seam, and phase
// times stay out of MetricsSnapshot: they are measurement metadata,
// never checkpointed, never part of equivalence. Nil-safe.
func (o *Observer) StartPhase(name string) (stop func()) {
	if o == nil {
		return func() {}
	}
	t := profiling.StartTimer()
	return func() { o.phases.add(name, t.Elapsed()) }
}

// PhaseValue is one phase's accumulated wall-clock time.
type PhaseValue struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// Phases returns the accumulated per-phase times, sorted by name.
// Nil on a nil observer.
func (o *Observer) Phases() []PhaseValue {
	if o == nil {
		return nil
	}
	return o.phases.snapshot()
}

// phaseTimes accumulates wall-clock durations per phase name.
type phaseTimes struct {
	mu  sync.Mutex
	dur map[string]time.Duration
}

func (p *phaseTimes) add(name string, d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dur == nil {
		p.dur = make(map[string]time.Duration)
	}
	p.dur[name] += d
}

func (p *phaseTimes) snapshot() []PhaseValue {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PhaseValue, 0, len(p.dur))
	for name, d := range p.dur {
		out = append(out, PhaseValue{Name: name, Seconds: d.Seconds()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// probeTally is the per-trigger scratch the trigger event pulls from
// the probe. Single-writer: the purge scan is single-threaded.
type probeTally struct {
	examined   int64
	retroFiles int64
	retroBytes int64
}

// PurgeProbe receives every per-file purge decision from the
// retention policies. Counter updates are atomic; the audit stream is
// sampled by path hash. All methods are nil-safe, so an
// uninstrumented policy pays one nil check per decision.
type PurgeProbe struct {
	examined    *Counter
	purged      *Counter
	purgedBytes *Counter
	exempt      *Counter
	failed      *Counter
	failedBytes *Counter
	interrupted *Counter

	events *EventWriter
	sample uint64 // audit threshold over the 32-bit hash space; 0 = off

	policy string
	seq    int64
	tally  probeTally
}

// Examined records one candidate reaching the scan head.
func (p *PurgeProbe) Examined() {
	if p == nil {
		return
	}
	p.examined.Inc()
	p.tally.examined++
}

// Purged records a successful victim deletion.
func (p *PurgeProbe) Purged(path string, user int64, group, pass int, size int64) {
	if p == nil {
		return
	}
	p.purged.Inc()
	p.purgedBytes.Add(size)
	if pass > 0 {
		p.tally.retroFiles++
		p.tally.retroBytes += size
	}
	p.audit(ActionPurge, path, user, group, pass, size)
}

// Exempt records a reserved-path skip.
func (p *PurgeProbe) Exempt(path string, user int64, group, pass int, size int64) {
	if p == nil {
		return
	}
	p.exempt.Inc()
	p.audit(ActionExempt, path, user, group, pass, size)
}

// Failed records a victim whose unlink failed; the file survives
// until a later trigger retries it.
func (p *PurgeProbe) Failed(path string, user int64, group, pass int, size int64) {
	if p == nil {
		return
	}
	p.failed.Inc()
	p.failedBytes.Add(size)
	p.audit(ActionFail, path, user, group, pass, size)
}

// Interrupted records a scan cut short by a fault.
func (p *PurgeProbe) Interrupted() {
	if p == nil {
		return
	}
	p.interrupted.Inc()
}

func (p *PurgeProbe) audit(action, path string, user int64, group, pass int, size int64) {
	if p.events == nil || !p.sampled(path) {
		return
	}
	p.events.Audit(&AuditEvent{
		Kind:   KindAudit,
		Policy: p.policy,
		Seq:    p.seq,
		Action: action,
		Path:   path,
		User:   user,
		Group:  int64(group),
		Pass:   int64(pass),
		Bytes:  size,
	})
}

// sampled decides membership in the audit sample from the path alone.
func (p *PurgeProbe) sampled(path string) bool {
	if p.sample == 0 {
		return false
	}
	return uint64(fnv32a(path)) < p.sample
}

// sampleThreshold maps a fraction to a cut over the 32-bit hash
// space. 1.0 maps above the maximum hash so every path qualifies.
func sampleThreshold(f float64) uint64 {
	if f <= 0 {
		return 0
	}
	if f >= 1 {
		return 1 << 32
	}
	return uint64(f * (1 << 32))
}

// fnv32a is the 32-bit FNV-1a hash (inlined; hash/fnv would allocate
// a hasher per call).
func fnv32a(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

// VFSProbe carries the virtual file system's hot-path counters. The
// zero value discards everything (nil counters are no-ops), so an
// uninstrumented FS pays only dead branches.
type VFSProbe struct {
	Inserts      *Counter
	Removes      *Counter
	Touches      *Counter
	TouchMisses  *Counter
	StaleQueries *Counter
}

// FaultMetrics carries the fault injector's counters. The zero value
// discards everything.
type FaultMetrics struct {
	UnlinkFailures   *Counter
	InterruptedScans *Counter
	ReadFailures     *Counter
	WriteFailures    *Counter
	TornWrites       *Counter
}
