package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("c") != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", 1, 2)
	c.Inc()
	c.Add(5)
	g.Set(5)
	g.Add(5)
	h.Observe(5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics recorded values")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry produced a non-empty snapshot")
	}
	if err := r.Restore(MetricsSnapshot{}); err != nil {
		t.Fatalf("nil restore: %v", err)
	}
}

// TestHistogramBucketEdges pins the inclusive-upper-edge convention:
// a value exactly on a bound lands in that bound's bucket, one past
// it lands in the next.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", 0, 10, 100)
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, // below the first bound
		{0, 0},  // exactly on the first bound: inclusive
		{1, 1},
		{10, 1},  // exactly on an interior bound: inclusive
		{11, 2},  // one past it: next bucket
		{100, 2}, // exactly on the last bound
		{101, 3}, // overflow
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	want := make([]int64, 4)
	var sum int64
	for _, c := range cases {
		want[c.bucket]++
		sum += c.v
	}
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("snapshot has %d histograms, want 1", len(s.Histograms))
	}
	hv := s.Histograms[0]
	if len(hv.Counts) != len(hv.Bounds)+1 {
		t.Fatalf("counts/bounds length mismatch: %d vs %d", len(hv.Counts), len(hv.Bounds))
	}
	for i, w := range want {
		if hv.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, hv.Counts[i], w, hv.Counts)
		}
	}
	if hv.Sum != sum {
		t.Errorf("sum = %d, want %d", hv.Sum, sum)
	}
	if h.Count() != int64(len(cases)) {
		t.Errorf("count = %d, want %d", h.Count(), len(cases))
	}
}

func TestHistogramInvalidBoundsPanic(t *testing.T) {
	r := NewRegistry()
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("no buckets", func() { r.Histogram("a") })
	mustPanic("descending", func() { r.Histogram("b", 2, 1) })
	mustPanic("duplicate", func() { r.Histogram("c", 1, 1) })
	r.Histogram("d", 1, 2)
	mustPanic("bound mismatch on re-register", func() { r.Histogram("d", 1, 3) })
}

// TestSnapshotVsConcurrentIncrement hammers counters and a histogram
// from many goroutines while snapshots run concurrently; under -race
// this proves the registry's synchronization, and the final snapshot
// must account for every increment exactly once.
func TestSnapshotVsConcurrentIncrement(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	h := r.Histogram("sizes", 10, 100)
	const (
		workers = 8
		perW    = 10_000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Snapshot readers racing the writers: every observed value must
	// be monotone and within range.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := r.Snapshot()
				for _, mv := range s.Counters {
					if mv.Value < last || mv.Value > workers*perW {
						t.Errorf("snapshot counter %d out of range (last %d)", mv.Value, last)
						return
					}
					last = mv.Value
				}
			}
		}()
	}
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < perW; i++ {
				c.Inc()
				h.Observe(int64(i % 200))
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	wg.Wait()
	if got := c.Value(); got != workers*perW {
		t.Fatalf("counter = %d, want %d", got, workers*perW)
	}
	if got := h.Count(); got != workers*perW {
		t.Fatalf("histogram count = %d, want %d", got, workers*perW)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Counter("b").Add(9)
	r.Gauge("g").Set(-4)
	h := r.Histogram("h", 1, 10)
	h.Observe(0)
	h.Observe(5)
	h.Observe(50)

	snap := r.Snapshot()
	// The snapshot must survive JSON (it rides inside checkpoints).
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded MetricsSnapshot
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	if !snap.Equal(decoded) {
		t.Fatalf("snapshot changed across JSON:\n%+v\n%+v", snap, decoded)
	}

	// Restoring into a fresh registry reproduces the state; pointers
	// handed out before the restore stay live.
	r2 := NewRegistry()
	pre := r2.Counter("a")
	if err := r2.Restore(decoded); err != nil {
		t.Fatal(err)
	}
	if pre.Value() != 3 {
		t.Fatalf("pre-registered counter after restore = %d, want 3", pre.Value())
	}
	if got := r2.Snapshot(); !got.Equal(snap) {
		t.Fatalf("restored snapshot differs:\n%+v\n%+v", got, snap)
	}

	// Continuing to record after a restore starts from the restored
	// values — the resume contract.
	r2.Counter("a").Inc()
	if got := r2.Counter("a").Value(); got != 4 {
		t.Fatalf("counter after restore+inc = %d, want 4", got)
	}
}

func TestRestoreRejectsCorruptSnapshots(t *testing.T) {
	r := NewRegistry()
	bad := MetricsSnapshot{Histograms: []HistogramValue{{
		Name: "h", Bounds: []int64{1, 2}, Counts: []int64{0, 0}, // want 3 counts
	}}}
	if err := r.Restore(bad); err == nil {
		t.Fatal("mismatched counts length accepted")
	}
	r.Histogram("h2", 1, 2)
	conflict := MetricsSnapshot{Histograms: []HistogramValue{{
		Name: "h2", Bounds: []int64{1, 3}, Counts: []int64{0, 0, 0},
	}}}
	if err := r.Restore(conflict); err == nil {
		t.Fatal("conflicting bounds accepted")
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	build := func(names []string) MetricsSnapshot {
		r := NewRegistry()
		for _, n := range names {
			r.Counter(n).Inc()
		}
		return r.Snapshot()
	}
	a := build([]string{"z", "a", "m"})
	b := build([]string{"m", "z", "a"})
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("snapshot order depends on registration order:\n%s\n%s", ja, jb)
	}
}
