// Package obs is the replay observability layer: a lock-cheap metrics
// registry (counters, gauges, fixed-bucket histograms), a structured
// JSONL event stream with per-trigger purge telemetry, and an optional
// sampled per-file purge-decision audit log. Production purge engines
// treat decision-level auditability as table stakes (Robinhood's
// changelog); this package gives the emulator the same substrate
// without leaving the standard library.
//
// Every metric type is safe for concurrent use and nil-safe: methods
// on a nil *Counter, *Gauge, or *Histogram are no-ops, so
// instrumentation sites pay a single predictable branch when
// observability is off. Metric state is plain integers behind
// sync/atomic — snapshots are deterministic functions of the recorded
// values and serialize into checkpoints so a killed-and-resumed replay
// restores its counters bit-identically (DESIGN.md §11).
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// ready to use; a nil Counter discards increments.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n may be any sign; counters in this registry trust
// their call sites rather than policing monotonicity).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// set overwrites the count (checkpoint restore).
func (c *Counter) set(n int64) { c.v.Store(n) }

// Gauge is a point-in-time value. The zero value is ready to use; a
// nil Gauge discards writes.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v with v <= Bounds[i] (and v > Bounds[i-1]); one extra
// overflow bucket counts v > Bounds[len-1]. Bounds are inclusive
// upper edges, so a value exactly on an edge lands in that edge's
// bucket — the convention the bucket-boundary tests pin down. A nil
// Histogram discards observations.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	sum    atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Bucket lists here are short (≤ ~12); a linear scan beats a
	// binary search on branch prediction alone.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Registry names and owns a set of metrics. The maps are guarded by a
// mutex but registration happens once per metric at setup; recording
// goes straight to the returned pointers and never touches the lock.
// A nil *Registry hands out nil metrics, which discard everything —
// the metrics-off fast path costs one nil check per record.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// inclusive upper bucket bounds on first use. Bounds must be strictly
// ascending and non-empty; re-registering an existing name with
// different bounds panics — both are programmer errors, not data. A
// nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram {
	if r == nil {
		return nil
	}
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %q has no buckets", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly ascending at %d", name, i))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.histograms[name]; h != nil {
		if !equalBounds(h.bounds, bounds) {
			panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
		}
		return h
	}
	h := &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.histograms[name] = h
	return h
}

func equalBounds(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// MetricValue is one named scalar in a snapshot.
type MetricValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramValue is one histogram's state in a snapshot. Counts has
// len(Bounds)+1 entries; the last is the overflow bucket.
type HistogramValue struct {
	Name   string  `json:"name"`
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Sum    int64   `json:"sum"`
}

// MetricsSnapshot is a point-in-time copy of a registry, sorted by
// metric name so two snapshots of identical state marshal to
// identical bytes. It serializes into replay checkpoints and restores
// via Registry.Restore.
type MetricsSnapshot struct {
	Counters   []MetricValue    `json:"counters,omitempty"`
	Gauges     []MetricValue    `json:"gauges,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current state. Values are read
// atomically per metric; the snapshot is consistent per metric, not
// across metrics — exact cross-metric consistency only matters at
// trigger boundaries, where the replay loop is the sole writer.
func (r *Registry) Snapshot() MetricsSnapshot {
	var s MetricsSnapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, MetricValue{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, MetricValue{Name: name, Value: g.Value()})
	}
	for name, h := range r.histograms {
		hv := HistogramValue{
			Name:   name,
			Bounds: append([]int64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Sum:    h.sum.Load(),
		}
		for i := range h.counts {
			hv.Counts[i] = h.counts[i].Load()
		}
		s.Histograms = append(s.Histograms, hv)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Restore overwrites the registry's state with a snapshot, creating
// any metrics that do not exist yet and keeping already-handed-out
// pointers valid (restore happens in place). It rejects malformed
// snapshots — a histogram whose Counts length does not match its
// Bounds, or bounds that disagree with an existing registration —
// because a corrupt checkpoint must fail loudly, not skew a resumed
// run's telemetry. Restoring on a nil registry is a no-op.
func (r *Registry) Restore(s MetricsSnapshot) error {
	if r == nil {
		return nil
	}
	for _, mv := range s.Counters {
		r.Counter(mv.Name).set(mv.Value)
	}
	for _, mv := range s.Gauges {
		r.Gauge(mv.Name).Set(mv.Value)
	}
	for _, hv := range s.Histograms {
		if len(hv.Counts) != len(hv.Bounds)+1 {
			return fmt.Errorf("obs: restore histogram %q: %d counts for %d bounds", hv.Name, len(hv.Counts), len(hv.Bounds))
		}
		if len(hv.Bounds) == 0 {
			return fmt.Errorf("obs: restore histogram %q: no buckets", hv.Name)
		}
		r.mu.Lock()
		h := r.histograms[hv.Name]
		if h == nil {
			h = &Histogram{
				bounds: append([]int64(nil), hv.Bounds...),
				counts: make([]atomic.Int64, len(hv.Bounds)+1),
			}
			r.histograms[hv.Name] = h
		}
		r.mu.Unlock()
		if !equalBounds(h.bounds, hv.Bounds) {
			return fmt.Errorf("obs: restore histogram %q: bounds mismatch", hv.Name)
		}
		for i := range h.counts {
			h.counts[i].Store(hv.Counts[i])
		}
		h.sum.Store(hv.Sum)
	}
	return nil
}

// Equal reports whether two snapshots carry identical state — the
// checkpoint/resume tests' definition of "bit-identical metrics".
func (s MetricsSnapshot) Equal(o MetricsSnapshot) bool {
	if len(s.Counters) != len(o.Counters) || len(s.Gauges) != len(o.Gauges) ||
		len(s.Histograms) != len(o.Histograms) {
		return false
	}
	for i := range s.Counters {
		if s.Counters[i] != o.Counters[i] {
			return false
		}
	}
	for i := range s.Gauges {
		if s.Gauges[i] != o.Gauges[i] {
			return false
		}
	}
	for i := range s.Histograms {
		a, b := s.Histograms[i], o.Histograms[i]
		if a.Name != b.Name || a.Sum != b.Sum ||
			!equalBounds(a.Bounds, b.Bounds) || !equalBounds(a.Counts, b.Counts) {
			return false
		}
	}
	return true
}
