package synth

import (
	"reflect"
	"testing"
	"time"

	"activedr/internal/activeness"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
)

// small returns a compact config for fast tests.
func small(seed uint64) Config {
	return Config{Seed: seed, Users: 300}.Defaults()
}

func generate(t *testing.T, cfg Config) *trace.Dataset {
	t.Helper()
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGenerateProducesAllTraceKinds(t *testing.T) {
	cfg := small(1)
	d := generate(t, cfg)
	if len(d.Users) != cfg.Users {
		t.Fatalf("users = %d, want %d", len(d.Users), cfg.Users)
	}
	if len(d.Jobs) == 0 || len(d.Accesses) == 0 || len(d.Publications) == 0 || len(d.Snapshot.Entries) == 0 {
		t.Fatalf("missing record kinds: jobs=%d accesses=%d pubs=%d snap=%d",
			len(d.Jobs), len(d.Accesses), len(d.Publications), len(d.Snapshot.Entries))
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("invalid dataset: %v", err)
	}
	if d.Snapshot.Taken != cfg.SnapshotAt {
		t.Errorf("snapshot taken = %v", d.Snapshot.Taken)
	}
	if d.Snapshot.TotalBytes() <= 0 {
		t.Error("snapshot has no bytes")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := generate(t, small(7))
	b := generate(t, small(7))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different datasets")
	}
	c := generate(t, small(8))
	if len(c.Jobs) == len(a.Jobs) && len(c.Accesses) == len(a.Accesses) &&
		len(c.Publications) == len(a.Publications) && len(c.Snapshot.Entries) == len(a.Snapshot.Entries) &&
		reflect.DeepEqual(a.Jobs, c.Jobs) {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestArchetypeMixRoughlyHonored(t *testing.T) {
	cfg := Config{Seed: 3, Users: 3000}.Defaults()
	d := generate(t, cfg)
	counts := map[string]int{}
	for _, u := range d.Users {
		counts[u.Archetype]++
	}
	if counts["dormant"] < 2000 {
		t.Errorf("dormant = %d, want ≳ 2300", counts["dormant"])
	}
	for _, a := range []string{"power", "operator", "scholar", "intermittent", "toucher"} {
		if counts[a] == 0 {
			t.Errorf("archetype %s absent", a)
		}
	}
}

func TestSnapshotPreFilter(t *testing.T) {
	cfg := small(5)
	d := generate(t, cfg)
	for _, e := range d.Snapshot.Entries {
		if age := cfg.SnapshotAt.Sub(e.ATime); age > cfg.PreFilterLifetime {
			t.Fatalf("entry %q idle %v at snapshot, beyond the %v pre-filter",
				e.Path, age, cfg.PreFilterLifetime)
		}
		if e.ATime > cfg.SnapshotAt {
			t.Fatalf("entry %q atime after snapshot", e.Path)
		}
	}
	// Without the filter, older files appear.
	cfg2 := small(5)
	cfg2.PreFilterLifetime = -1 // sentinel: Defaults would overwrite 0
	cfg2.PreFilterLifetime = timeutil.Days(100000)
	d2 := generate(t, cfg2)
	if len(d2.Snapshot.Entries) <= len(d.Snapshot.Entries) {
		t.Errorf("unfiltered snapshot (%d) not larger than filtered (%d)",
			len(d2.Snapshot.Entries), len(d.Snapshot.Entries))
	}
}

func TestAccessLogWindow(t *testing.T) {
	cfg := small(6)
	d := generate(t, cfg)
	for i := range d.Accesses {
		a := &d.Accesses[i]
		if a.TS < cfg.SnapshotAt || a.TS >= cfg.End {
			t.Fatalf("access %d at %v outside replay window [%v, %v)", i, a.TS, cfg.SnapshotAt, cfg.End)
		}
		if a.Size <= 0 {
			t.Fatalf("access %d has non-positive size", i)
		}
	}
}

func TestJobsPlausible(t *testing.T) {
	cfg := small(9)
	d := generate(t, cfg)
	for i := range d.Jobs {
		j := &d.Jobs[i]
		if j.Submit < cfg.Start || j.Submit >= cfg.End {
			t.Fatalf("job %d submit %v out of range", i, j.Submit)
		}
		if j.Cores <= 0 || j.Cores > 1<<20 {
			t.Fatalf("job %d cores = %d", i, j.Cores)
		}
		if j.Duration <= 0 || j.Duration > timeutil.Days(7) {
			t.Fatalf("job %d duration = %v", i, j.Duration)
		}
	}
}

func TestPublicationsPlausible(t *testing.T) {
	d := generate(t, small(10))
	for i := range d.Publications {
		p := &d.Publications[i]
		if p.Citations < 0 || p.Citations > 500 {
			t.Fatalf("pub %d citations = %d", i, p.Citations)
		}
		if len(p.Authors) == 0 || len(p.Authors) > 8 {
			t.Fatalf("pub %d authors = %d", i, len(p.Authors))
		}
		seen := map[trace.UserID]bool{}
		for _, a := range p.Authors {
			if seen[a] {
				t.Fatalf("pub %d has duplicate author", i)
			}
			seen[a] = true
		}
	}
}

// TestActivenessMatrixShape checks the headline Figure-5 property on
// synthetic data: the overwhelming majority of users are
// both-inactive, but every quadrant is populated at a 90-day period.
func TestActivenessMatrixShape(t *testing.T) {
	cfg := Config{Seed: 11, Users: 2000}.Defaults()
	d := generate(t, cfg)
	ev := activeness.NewEvaluator(timeutil.Days(90))
	jt := ev.AddType("job-submission", activeness.Operation)
	pt := ev.AddType("publication", activeness.Outcome)
	ev.RecordJobs(jt, d.Jobs)
	ev.RecordPublications(pt, d.Publications)
	tc := timeutil.Date(2016, time.August, 23)
	ranks := ev.EvaluateAll(len(d.Users), tc)
	m := activeness.NewMatrix(ranks)
	t.Logf("matrix @90d: BA=%.2f%% OpOnly=%.2f%% OcOnly=%.2f%% BI=%.2f%%",
		100*m.Share(activeness.BothActive), 100*m.Share(activeness.OperationActiveOnly),
		100*m.Share(activeness.OutcomeActiveOnly), 100*m.Share(activeness.BothInactive))
	if m.Share(activeness.BothInactive) < 0.70 {
		t.Errorf("both-inactive share = %v, want ≥ 0.70 (paper: 0.93)", m.Share(activeness.BothInactive))
	}
	for _, g := range activeness.Groups() {
		if m.Counts[g] == 0 {
			t.Errorf("group %v empty", g)
		}
	}
	if m.Share(activeness.BothActive) > 0.10 {
		t.Errorf("both-active share %v implausibly high", m.Share(activeness.BothActive))
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Users: -1},
		{Users: 10, Start: 100, SnapshotAt: 50, End: 200},
		{Users: 10, Start: 100, SnapshotAt: 150, End: 120},
	}
	for i, cfg := range bad {
		c := cfg
		// Fill remaining zero fields but keep the bad ones.
		if c.Users == 0 {
			c.Users = 10
		}
		if _, err := Generate(c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	var mix [numArchetypes]float64
	mix[Power] = -1
	if _, err := Generate(Config{Users: 10, Mix: mix}); err == nil {
		t.Error("negative mix accepted")
	}
}

func TestArchetypeStrings(t *testing.T) {
	for a := Power; a < numArchetypes; a++ {
		if a.String() == "" {
			t.Errorf("archetype %d has empty name", a)
		}
	}
}

func TestExtraActivityTraces(t *testing.T) {
	cfg := small(12)
	d := generate(t, cfg)
	if len(d.Logins) == 0 {
		t.Fatal("no logins generated")
	}
	if len(d.Transfers) == 0 {
		t.Fatal("no transfers generated")
	}
	for i := 1; i < len(d.Logins); i++ {
		if d.Logins[i].TS < d.Logins[i-1].TS {
			t.Fatal("logins unsorted")
		}
	}
	for i := range d.Transfers {
		x := &d.Transfers[i]
		if x.Bytes <= 0 {
			t.Fatalf("transfer %d has non-positive bytes", i)
		}
		if x.TS < cfg.Start || x.TS >= cfg.End {
			t.Fatalf("transfer %d outside trace window", i)
		}
	}
	// Transfers come only from the archetypes that stage data.
	byArch := map[string]bool{}
	for i := range d.Transfers {
		byArch[d.Users[d.Transfers[i].User].Archetype] = true
	}
	for arch := range byArch {
		if arch != "intermittent" && arch != "power" {
			t.Errorf("unexpected transfer archetype %q", arch)
		}
	}
}
