// Package synth generates the synthetic OLCF-like dataset that stands
// in for the paper's proprietary Titan/Spider II traces (see
// DESIGN.md §4 for the substitution argument). The generator models a
// user population drawn from archetypes whose temporal activity
// patterns produce the phenomena the paper's evaluation rests on:
//
//   - power users whose job intensity ramps up, keeping Φ_op ≥ 1 and
//     who periodically deep-reuse files idle longer than the FLT
//     lifetime (the paper's undesired-file-miss scenario);
//   - operators with steady job streams and no outcomes;
//   - scholars whose publications make them outcome-active;
//   - intermittent users alternating bursts and long dormancy, coming
//     back to files FLT already purged;
//   - touchers who game FLT by periodically touching files they never
//     really use (§1, [26]);
//   - dormant users holding the bulk of the purge-fodder bytes.
//
// Every activity reduces to the paper's (timestamp, impact) pairs, so
// the policies under test observe the same structure they would on
// the real traces.
package synth

import (
	"fmt"
	"math"
	"sort"
	"time"

	"activedr/internal/randx"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
)

// Archetype labels a synthetic user behaviour class.
type Archetype int

const (
	Power Archetype = iota
	Operator
	Scholar
	Intermittent
	Toucher
	Dormant
	numArchetypes
)

// String names the archetype (also stored in the user trace).
func (a Archetype) String() string {
	switch a {
	case Power:
		return "power"
	case Operator:
		return "operator"
	case Scholar:
		return "scholar"
	case Intermittent:
		return "intermittent"
	case Toucher:
		return "toucher"
	case Dormant:
		return "dormant"
	default:
		return fmt.Sprintf("Archetype(%d)", int(a))
	}
}

// Config parameterizes the generator. The zero value plus Defaults()
// reproduces the scale used by the experiment harness.
type Config struct {
	Seed  uint64
	Users int
	// Mix holds archetype weights; they need not sum to 1.
	Mix [numArchetypes]float64
	// Start is the beginning of recorded history (job logs reach back
	// here, like the paper's 2013 scheduler logs).
	Start timeutil.Time
	// SnapshotAt is when the reference metadata snapshot is taken
	// (the paper: last weekly snapshot of 2015).
	SnapshotAt timeutil.Time
	// End closes the trace (the paper replays through 2016).
	End timeutil.Time
	// PreFilterLifetime drops snapshot files idle longer than this,
	// because the real Spider snapshot "is already a result of the
	// 90-day FLT data retention". Zero disables the filter.
	PreFilterLifetime timeutil.Duration
}

// Defaults fills unset fields with the reference scale.
func (c Config) Defaults() Config {
	if c.Seed == 0 {
		c.Seed = 0x5eed_ac71_7eda
	}
	if c.Users == 0 {
		c.Users = 2000
	}
	var zero [numArchetypes]float64
	if c.Mix == zero {
		c.Mix = [numArchetypes]float64{
			Power:        0.012,
			Operator:     0.035,
			Scholar:      0.05,
			Intermittent: 0.13,
			Toucher:      0.01,
			Dormant:      0.763,
		}
	}
	if c.Start == 0 {
		c.Start = timeutil.Date(2014, time.January, 1)
	}
	if c.SnapshotAt == 0 {
		c.SnapshotAt = timeutil.Date(2015, time.December, 26)
	}
	if c.End == 0 {
		c.End = timeutil.Date(2017, time.January, 1)
	}
	if c.PreFilterLifetime == 0 {
		c.PreFilterLifetime = timeutil.Days(90)
	}
	return c
}

// Validate rejects inconsistent configurations.
func (c Config) Validate() error {
	if c.Users <= 0 {
		return fmt.Errorf("synth: non-positive user count %d", c.Users)
	}
	if !(c.Start < c.SnapshotAt && c.SnapshotAt < c.End) {
		return fmt.Errorf("synth: need Start < SnapshotAt < End, got %v / %v / %v",
			c.Start, c.SnapshotAt, c.End)
	}
	total := 0.0
	for _, w := range c.Mix {
		if w < 0 {
			return fmt.Errorf("synth: negative archetype weight")
		}
		total += w
	}
	if total <= 0 {
		return fmt.Errorf("synth: all archetype weights zero")
	}
	return nil
}

// fileRec tracks one synthetic file through generation.
type fileRec struct {
	path       string
	size       int64
	stripes    int
	created    timeutil.Time
	lastAccess timeutil.Time
	// atSnap is the access time as of SnapshotAt (what the metadata
	// snapshot records).
	atSnap timeutil.Time
}

// userState is the evolving generation state of one user.
type userState struct {
	id        trace.UserID
	archetype Archetype
	career    timeutil.Time // first activity
	files     []fileRec
	src       *randx.Source
	// burst state for intermittent users
	burstOn  bool
	burstEnd timeutil.Time
	idleEnd  timeutil.Time
	// scholars compute for a bounded phase, then publish
	scholarJobWeeks float64
	// dormant users check in on their data until they depart
	departure timeutil.Time
}

// stripe classes per the OLCF best-striping rule the paper cites:
// larger files carry more stripes; we invert the rule to synthesize a
// size from a stripe count.
var (
	stripeCounts = []int{1, 4, 8, 16}
	stripeSizeLo = []int64{4 << 20, 512 << 20, 4 << 30, 32 << 30}
	stripeSizeHi = []int64{512 << 20, 4 << 30, 32 << 30, 256 << 30}
	// Parked (archival) datasets skew to the wide-striped classes;
	// day-to-day job outputs skew small. The imbalance matters: the
	// reclaimable archival mass must dwarf the weekly output inflow,
	// as it does on a real scratch system.
	archivalWeights = []float64{0.50, 0.30, 0.15, 0.05}
	outputWeights   = []float64{0.85, 0.12, 0.025, 0.005}
)

// synthFile draws a stripe count and a log-uniform size within the
// stripe class.
func synthFile(src *randx.Source, w *randx.Weighted) (size int64, stripes int) {
	cls := w.Pick(src)
	lo, hi := float64(stripeSizeLo[cls]), float64(stripeSizeHi[cls])
	size = int64(math.Exp(math.Log(lo) + src.Float64()*(math.Log(hi)-math.Log(lo))))
	return size, stripeCounts[cls]
}

// Generate produces a full dataset.
func Generate(cfg Config) (*trace.Dataset, error) {
	cfg = cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	master := randx.New(cfg.Seed)
	archPick := randx.NewWeighted(cfg.Mix[:])
	stripePick := stripePickers{
		archival: randx.NewWeighted(archivalWeights),
		output:   randx.NewWeighted(outputWeights),
	}

	d := &trace.Dataset{}
	states := make([]*userState, cfg.Users)
	var academics []trace.UserID // publication-capable users

	for i := 0; i < cfg.Users; i++ {
		src := master.Split()
		arch := Archetype(archPick.Pick(src))
		st := &userState{
			id:        trace.UserID(i),
			archetype: arch,
			src:       src,
			career:    careerStart(src, arch, cfg),
		}
		states[i] = st
		d.Users = append(d.Users, trace.User{
			ID:        st.id,
			Name:      fmt.Sprintf("u%05d", i),
			Created:   st.career,
			Archetype: arch.String(),
		})
		if arch == Power || arch == Scholar {
			academics = append(academics, st.id)
		}
	}

	for _, st := range states {
		generateUser(st, cfg, stripePick, d)
	}
	generatePublications(states, academics, cfg, d)

	d.SortJobs()
	d.SortAccesses()
	sort.SliceStable(d.Logins, func(i, j int) bool { return d.Logins[i].TS < d.Logins[j].TS })
	sort.SliceStable(d.Transfers, func(i, j int) bool { return d.Transfers[i].TS < d.Transfers[j].TS })
	buildSnapshot(states, cfg, d)
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("synth: generated invalid dataset: %w", err)
	}
	return d, nil
}

// careerStart staggers user onboarding. Power/operator careers spread
// across the whole history (some recent, whose short spans make them
// activeness-eligible); dormant users skew early; intermittent users
// anywhere.
func careerStart(src *randx.Source, arch Archetype, cfg Config) timeutil.Time {
	span := int64(cfg.End - cfg.Start)
	frac := src.Float64()
	switch arch {
	case Dormant, Toucher:
		frac *= 0.8 // mostly long-established
	case Power, Operator:
		// Bias toward later starts (ramping newcomers).
		frac = 1 - frac*frac
		frac *= 0.95
	}
	return cfg.Start.Add(timeutil.Duration(float64(span) * frac * 0.9))
}

// weeklyJobRate returns the expected jobs for the week starting at t,
// plus an impact growth factor applied to core-hours.
func weeklyJobRate(st *userState, t timeutil.Time, cfg Config) (rate, growth float64) {
	weeks := float64(t.Sub(st.career)) / float64(timeutil.Week)
	if weeks < 0 {
		return 0, 1
	}
	switch st.archetype {
	case Power:
		// Heavy and ramping: the activeness product rewards rising
		// recent impact. Growth is capped so core counts stay within a
		// Titan-scale machine.
		return 12, math.Min(math.Pow(1.06, weeks), 50)
	case Operator:
		return 7, math.Min(math.Pow(1.04, weeks), 30)
	case Scholar:
		// Compute-then-publish lifecycle: a bounded job phase, then
		// near silence while the results are written up. Scholars
		// whose publication cluster lands later are therefore
		// operation-inactive but outcome-active — the paper's
		// outcome-active-only quadrant.
		if weeks < st.scholarJobWeeks {
			return 1.5, 1
		}
		return 0.05, 1
	case Intermittent:
		if st.burstOn && t < st.burstEnd {
			return 8, 1
		}
		return 0, 1
	case Dormant:
		// A short burst of real work, then nothing: dormant users'
		// later presence is data check-ins (file accesses), not jobs.
		if weeks < 8 {
			return 2, 1
		}
		return 0, 1
	default: // Toucher: no jobs
		return 0, 1
	}
}

// advanceBurst flips intermittent users between bursts and dormancy.
func advanceBurst(st *userState, t timeutil.Time) {
	if st.archetype != Intermittent {
		return
	}
	if st.burstOn {
		if t >= st.burstEnd {
			st.burstOn = false
			// 8–22 weeks of silence: often (not always) long enough
			// to out-age the FLT lifetime.
			st.idleEnd = t.Add(timeutil.Duration(8+st.src.Intn(15)) * timeutil.Duration(timeutil.Week))
		}
	} else if t >= st.idleEnd {
		st.burstOn = true
		st.burstEnd = t.Add(timeutil.Duration(3+st.src.Intn(6)) * timeutil.Duration(timeutil.Week))
	}
}

// generateUser produces one user's jobs, file accesses and file pool.
func generateUser(st *userState, cfg Config, stripePick stripePickers, d *trace.Dataset) {
	src := st.src
	if st.archetype == Intermittent {
		st.burstOn = true
		st.burstEnd = st.career.Add(timeutil.Duration(3+src.Intn(6)) * timeutil.Duration(timeutil.Week))
	}
	if st.archetype == Scholar {
		st.scholarJobWeeks = float64(30 + src.Intn(50))
	}
	if st.archetype == Dormant {
		// Departure: the user keeps checking in on parked data for an
		// exponentially distributed stretch, then leaves the facility.
		// Users whose departure lands near the snapshot are exactly
		// the purge fodder the retention policies compete over.
		st.departure = st.career.Add(timeutil.Days(60) + timeutil.Duration(src.Exp(float64(timeutil.Days(300)))))
	}
	// Seed the pool: files created at career start.
	initial := initialFiles(src, st.archetype)
	for i := 0; i < initial; i++ {
		st.newFile(st.career.Add(timeutil.Duration(src.Intn(int(timeutil.Week)))), stripePick, cfg, d, false)
	}
	for week := st.career; week < cfg.End; week = week.Add(timeutil.Week) {
		advanceBurst(st, week)
		rate, growth := weeklyJobRate(st, week, cfg)
		// Shell logins accompany job activity (Table 2's second
		// operation type): roughly one session per couple of jobs.
		for l, nl := 0, src.Poisson(rate*0.6); l < nl; l++ {
			at := week.Add(timeutil.Duration(src.Int64n(int64(timeutil.Week))))
			if at < cfg.End {
				d.Logins = append(d.Logins, trace.Login{User: st.id, TS: at})
			}
		}
		n := src.Poisson(rate)
		for j := 0; j < n; j++ {
			submit := week.Add(timeutil.Duration(src.Int64n(int64(timeutil.Week))))
			if submit >= cfg.End {
				continue
			}
			job := trace.Job{
				User:     st.id,
				Submit:   submit,
				Duration: timeutil.Duration(src.LogNormal(math.Log(float64(2*timeutil.Hour)), 1.0)),
				Cores:    16 * (1 + int(float64(src.Intn(16))*growth)),
			}
			if job.Duration > timeutil.Days(7) {
				job.Duration = timeutil.Days(7)
			}
			d.Jobs = append(d.Jobs, job)
			st.jobAccesses(job, stripePick, cfg, d)
		}
	}
	if st.archetype == Toucher {
		st.generateTouches(cfg, d)
	}
	if st.archetype == Dormant {
		st.generateCheckins(cfg, d)
	}
	st.generateTransfers(cfg, d)
}

// generateTransfers emits data-transfer operations: intermittent
// users stage data in at each burst start and pull results out at the
// end; power users periodically ingest fresh campaign data.
func (st *userState) generateTransfers(cfg Config, d *trace.Dataset) {
	src := st.src
	emit := func(at timeutil.Time, dir trace.TransferDir, bytes int64) {
		if at >= cfg.Start && at < cfg.End {
			d.Transfers = append(d.Transfers, trace.Transfer{User: st.id, TS: at, Dir: dir, Bytes: bytes})
		}
	}
	switch st.archetype {
	case Intermittent:
		// One in/out pair per burst cycle, reconstructed from the
		// career; sizes in the tens-of-GB range.
		for t := st.career; t < cfg.End; t = t.Add(timeutil.Duration(13+src.Intn(20)) * timeutil.Duration(timeutil.Week)) {
			emit(t, trace.TransferIn, int64(1+src.Intn(64))<<30)
			emit(t.Add(timeutil.Duration(4+src.Intn(4))*timeutil.Duration(timeutil.Week)), trace.TransferOut, int64(1+src.Intn(16))<<30)
		}
	case Power:
		for t := st.career; t < cfg.End; t = t.Add(timeutil.Days(20 + src.Intn(30))) {
			emit(t, trace.TransferIn, int64(1+src.Intn(128))<<30)
		}
	}
}

func initialFiles(src *randx.Source, arch Archetype) int {
	switch arch {
	case Power:
		return 120 + src.Intn(120)
	case Operator:
		return 60 + src.Intn(80)
	case Scholar:
		return 30 + src.Intn(40)
	case Intermittent:
		return 40 + src.Intn(60)
	case Toucher:
		return 40 + src.Intn(80)
	default:
		return 20 + src.Intn(120)
	}
}

// stripePickers selects a size distribution per file role.
type stripePickers struct {
	archival *randx.Weighted // parked pools seeded at career start
	output   *randx.Weighted // files minted by replayed jobs
}

// newFile mints a file in the user's namespace, optionally recording
// a creation access (only replay-period events enter the access log).
// Initial-pool files (log=false) use the archival size distribution;
// job outputs use the small-skewed one.
func (st *userState) newFile(at timeutil.Time, stripePick stripePickers, cfg Config, d *trace.Dataset, log bool) *fileRec {
	w := stripePick.archival
	if log {
		w = stripePick.output
	}
	size, stripes := synthFile(st.src, w)
	proj := st.src.Intn(4)
	path := fmt.Sprintf("/lustre/atlas/u%05d/proj%d/run%04d/out%04d.dat",
		int(st.id), proj, len(st.files)/16, len(st.files))
	st.files = append(st.files, fileRec{
		path: path, size: size, stripes: stripes,
		created: at, lastAccess: at,
	})
	f := &st.files[len(st.files)-1]
	if at <= cfg.SnapshotAt {
		f.atSnap = at
	}
	if log && at >= cfg.SnapshotAt && at < cfg.End {
		d.Accesses = append(d.Accesses, trace.Access{
			TS: at, User: st.id, Create: true, Size: size, Path: path,
		})
	}
	return f
}

// touchFile records a (re-)access of an existing file.
func (st *userState) touchFile(f *fileRec, at timeutil.Time, cfg Config, d *trace.Dataset) {
	f.lastAccess = at
	if at <= cfg.SnapshotAt {
		f.atSnap = at
	}
	if at >= cfg.SnapshotAt && at < cfg.End {
		d.Accesses = append(d.Accesses, trace.Access{
			TS: at, User: st.id, Create: false, Size: f.size, Path: f.path,
		})
	}
}

// jobAccesses emits the file working set of one job: a mix of fresh
// creations, recent-file reuse, and occasional deep reuse of files
// idle for a long time — the access-gap phenomenon behind FLT's
// undesired misses.
func (st *userState) jobAccesses(job trace.Job, stripePick stripePickers, cfg Config, d *trace.Dataset) {
	src := st.src
	k := 2 + src.Intn(8)
	deepP := 0.01
	switch st.archetype {
	case Power:
		deepP = 0.04
	case Intermittent:
		deepP = 0.07 // returning users reach for pre-gap files
	}
	for i := 0; i < k; i++ {
		at := job.Submit.Add(timeutil.Duration(src.Int64n(int64(job.Duration) + 1)))
		switch {
		case len(st.files) == 0 || (src.Bool(0.08) && len(st.files) < 4000):
			st.newFile(at, stripePick, cfg, d, true)
		case src.Bool(deepP):
			// Deep reuse: an old file, possibly idle beyond the FLT
			// lifetime. The target must have been alive at replay
			// start (in the snapshot, or created during the replay):
			// a file the facility purged before the snapshot would
			// miss under every policy and carries no signal.
			f := st.pickDeepTarget(cfg, at)
			if f == nil {
				continue
			}
			st.touchFile(f, at, cfg, d)
		default:
			// Recency-biased reuse of the newest ~32 files.
			w := 32
			if w > len(st.files) {
				w = len(st.files)
			}
			f := &st.files[len(st.files)-1-src.Intn(w)]
			st.touchFile(f, at, cfg, d)
		}
	}
}

// generateCheckins renews dormant users' parked-data access times —
// every 30–60 days the user reads a slice of their files until they
// depart the facility. Check-ins run only up to the snapshot: the
// replayed application log, like the paper's, is derived from job
// command lines, so a user without jobs contributes no replay
// accesses. Their freshly-parked bytes are exactly the mass a purge
// policy can reclaim without causing a single miss.
func (st *userState) generateCheckins(cfg Config, d *trace.Dataset) {
	src := st.src
	stop := st.departure
	if cfg.SnapshotAt < stop {
		stop = cfg.SnapshotAt
	}
	for t := st.career.Add(timeutil.Days(20)); t < stop; t = t.Add(timeutil.Days(30 + src.Intn(31))) {
		for i := range st.files {
			if src.Bool(0.7) {
				st.touchFile(&st.files[i], t.Add(timeutil.Duration(src.Intn(int(timeutil.Hour)))), cfg, d)
			}
		}
	}
}

// pickDeepTarget samples an old file that is (or was) actually
// reachable in the replayed file system: either it survived the
// facility's pre-snapshot retention, or it was created after the
// snapshot. Returns nil when no such file turns up.
func (st *userState) pickDeepTarget(cfg Config, at timeutil.Time) *fileRec {
	for try := 0; try < 8; try++ {
		f := &st.files[st.src.Intn(len(st.files))]
		// Power users revisit recent campaigns (idle up to about a
		// year), not the deep archive; this is the band an extended
		// activeness lifetime can actually save.
		if st.archetype == Power && at.Sub(f.lastAccess) > timeutil.Days(330) {
			continue
		}
		if f.created > cfg.SnapshotAt {
			return f
		}
		if f.atSnap != 0 && cfg.SnapshotAt.Sub(f.atSnap) <= cfg.PreFilterLifetime {
			return f
		}
	}
	return nil
}

// generateTouches implements the periodic-touch trick: every ~30 days
// the user touches a swath of files without any job activity.
func (st *userState) generateTouches(cfg Config, d *trace.Dataset) {
	src := st.src
	for t := st.career.Add(timeutil.Days(30)); t < cfg.End; t = t.Add(timeutil.Days(25 + src.Intn(10))) {
		for i := range st.files {
			if src.Bool(0.9) {
				st.touchFile(&st.files[i], t.Add(timeutil.Duration(src.Intn(int(timeutil.Hour)))), cfg, d)
			}
		}
	}
}

// generatePublications emits outcome activities for academics.
//
// The activeness product Φ_λ = Π b_e^e zeroes on any empty period, so
// a user can only be outcome-active when their *entire* publication
// history is temporally compact and recent — exactly the regime of
// the real OLCF list (1,151 publications across 13,813 users: most
// publishing users hold one small cluster of papers). We therefore
// generate per-user publication *clusters*: 1–3 papers within a
// ~60-day window. Power users' clusters are biased into the replay
// year (their current campaign is producing results), scholars'
// clusters spread across the history with a moderate recency bias. A
// few scholars are long-running regular publishers; they are
// realistic but, faithfully to the model, almost never rank as
// outcome-active.
func generatePublications(states []*userState, academics []trace.UserID, cfg Config, d *trace.Dataset) {
	if len(academics) == 0 {
		return
	}
	span := int64(cfg.End - cfg.Start)
	for _, st := range states {
		if st.archetype != Power && st.archetype != Scholar {
			continue
		}
		src := st.src
		cites := randx.NewZipf(src, 1.3, 200)
		emit := func(at timeutil.Time) {
			if at >= cfg.End || at < cfg.Start {
				return
			}
			// 50% single-author; co-authors pull scattered activities
			// into other academics' histories, which is realistic
			// noise the model must tolerate.
			n := 1
			switch {
			case src.Bool(0.5):
				n = 1
			case src.Bool(0.6):
				n = 2
			default:
				n = 3
			}
			authors := []trace.UserID{st.id}
			for len(authors) < n {
				co := academics[src.Intn(len(academics))]
				dup := false
				for _, a := range authors {
					if a == co {
						dup = true
						break
					}
				}
				if !dup {
					authors = append(authors, co)
				}
			}
			if src.Bool(0.3) && len(authors) > 1 {
				i := 1 + src.Intn(len(authors)-1)
				authors[0], authors[i] = authors[i], authors[0]
			}
			d.Publications = append(d.Publications, trace.Publication{
				TS:        at,
				Citations: int(cites.Next()) - 1,
				Authors:   authors,
			})
		}
		cluster := func(center timeutil.Time) {
			n := 1 + src.Intn(3)
			for i := 0; i < n; i++ {
				emit(center.Add(timeutil.Duration(src.Intn(int(timeutil.Days(60))) - int(timeutil.Days(30)))))
			}
		}
		replaySpan := int64(cfg.End - cfg.SnapshotAt)
		switch {
		case st.archetype == Power:
			// Current campaign: the cluster lands inside the replay
			// year, so at some purge triggers the user is both-active.
			center := cfg.SnapshotAt.Add(timeutil.Duration(src.Int64n(replaySpan)))
			if center < st.career {
				center = st.career.Add(timeutil.Days(30))
			}
			cluster(center)
		case src.Bool(0.2):
			// Long-running regular publisher (rarely outcome-active
			// under the product model — by design).
			for t := st.career.Add(timeutil.Days(40)); t < cfg.End; t = t.Add(timeutil.Days(70 + src.Intn(50))) {
				emit(t)
			}
		case src.Bool(0.65):
			// Publishing scholar of the current cycle: cluster within
			// the replay year, typically after the job phase ended.
			center := cfg.SnapshotAt.Add(timeutil.Duration(src.Int64n(replaySpan)))
			if center < st.career {
				center = st.career.Add(timeutil.Days(30))
			}
			cluster(center)
		default:
			// One compact cluster with recency bias (sqrt skews the
			// center toward the end of the trace).
			frac := math.Sqrt(src.Float64())
			center := cfg.Start.Add(timeutil.Duration(float64(span) * frac))
			if center < st.career {
				center = st.career.Add(timeutil.Days(30))
			}
			cluster(center)
		}
	}
	sort.SliceStable(d.Publications, func(i, j int) bool {
		return d.Publications[i].TS < d.Publications[j].TS
	})
}

// buildSnapshot captures the reference metadata snapshot at
// cfg.SnapshotAt, optionally pre-filtered by the facility's FLT
// retention as the real Spider snapshots were.
func buildSnapshot(states []*userState, cfg Config, d *trace.Dataset) {
	var entries []trace.SnapshotEntry
	for _, st := range states {
		for i := range st.files {
			f := &st.files[i]
			if f.created > cfg.SnapshotAt || f.atSnap == 0 {
				continue
			}
			if cfg.PreFilterLifetime > 0 && cfg.SnapshotAt.Sub(f.atSnap) > cfg.PreFilterLifetime {
				continue // already purged by the facility's FLT
			}
			entries = append(entries, trace.SnapshotEntry{
				Path:    f.path,
				User:    st.id,
				Size:    f.size,
				Stripes: f.stripes,
				ATime:   f.atSnap,
			})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Path < entries[j].Path })
	d.Snapshot = trace.Snapshot{Taken: cfg.SnapshotAt, Entries: entries}
}
