package synth

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"activedr/internal/timeutil"
	"activedr/internal/trace"
	"activedr/internal/vfs"
)

// TestStreamSnapshotOrdered pins the generator's load-bearing
// contract: entries arrive in strictly ascending path order (what
// vfs.SnapfileWriter requires), users appear in ID order, and every
// field stays in range.
func TestStreamSnapshotOrdered(t *testing.T) {
	cfg := StreamConfig{Seed: 7, Users: 500, MeanFiles: 9}.Defaults()
	prev := ""
	lastUser := trace.UserID(0)
	n, err := StreamSnapshot(cfg, func(e trace.SnapshotEntry) error {
		if prev != "" && e.Path <= prev {
			t.Fatalf("paths out of order: %q after %q", e.Path, prev)
		}
		prev = e.Path
		if e.User < lastUser {
			t.Fatalf("user %d after user %d", e.User, lastUser)
		}
		lastUser = e.User
		if e.User >= trace.UserID(cfg.Users) || e.Size <= 0 || e.Stripes < 1 {
			t.Fatalf("entry out of range: %+v", e)
		}
		if e.ATime > cfg.Taken || e.ATime < cfg.Taken.Add(-timeutil.Days(366)) {
			t.Fatalf("atime %v outside the year before %v", e.ATime, cfg.Taken)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Uniform draw over [1, 2*MeanFiles-1] per user: the total should
	// land near Users*MeanFiles.
	if n < cfg.Users*cfg.MeanFiles/2 || n > cfg.Users*cfg.MeanFiles*2 {
		t.Fatalf("emitted %d entries for %d users (mean %d)", n, cfg.Users, cfg.MeanFiles)
	}
	if lastUser != trace.UserID(cfg.Users-1) {
		t.Fatalf("last user %d, want %d (every user owns at least one file)", lastUser, cfg.Users-1)
	}
}

// TestStreamSnapshotDeterministic: same config, same stream — and the
// per-user state is order-independent, so the user table's Created
// times must also reproduce.
func TestStreamSnapshotDeterministic(t *testing.T) {
	cfg := StreamConfig{Seed: 21, Users: 200}
	collect := func() []trace.SnapshotEntry {
		var out []trace.SnapshotEntry
		if _, err := StreamSnapshot(cfg, func(e trace.SnapshotEntry) error {
			out = append(out, e)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatalf("stream lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	ua, ub := cfg.StreamUsers(), cfg.StreamUsers()
	for i := range ua {
		if ua[i] != ub[i] {
			t.Fatalf("user %d differs between generations", i)
		}
	}
}

// TestStreamSnapshotToSnapfile feeds the stream into a snapfile and
// loads it back: the decoded namespace must carry exactly the
// streamed entries. This is the spider preset's pipeline at toy
// scale.
func TestStreamSnapshotToSnapfile(t *testing.T) {
	cfg := StreamConfig{Seed: 3, Users: 120, MeanFiles: 6}.Defaults()
	path := filepath.Join(t.TempDir(), "fs.snap")
	w, err := vfs.NewSnapfileWriter(path, cfg.Taken)
	if err != nil {
		t.Fatal(err)
	}
	var want []trace.SnapshotEntry
	if _, err := StreamSnapshot(cfg, func(e trace.SnapshotEntry) error {
		want = append(want, e)
		return w.Add(e.Path, vfs.FileMeta{User: e.User, Size: e.Size, Stripes: e.Stripes, ATime: e.ATime})
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	sf, err := vfs.OpenSnapfile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	if sf.Count() != len(want) {
		t.Fatalf("snapfile holds %d files, streamed %d", sf.Count(), len(want))
	}
	fsys, err := vfs.LoadSnapfileFS(sf)
	if err != nil {
		t.Fatal(err)
	}
	got := fsys.Snapshot(cfg.Taken)
	for i := range want {
		g := got.Entries[i]
		if g.Path != want[i].Path || g.User != want[i].User || g.Size != want[i].Size ||
			g.Stripes != want[i].Stripes || g.ATime != want[i].ATime {
			t.Fatalf("entry %d: loaded %+v, streamed %+v", i, g, want[i])
		}
	}
}

// TestStreamSnapshotValidation rejects scales the layout cannot keep
// sorted.
func TestStreamSnapshotValidation(t *testing.T) {
	if _, err := StreamSnapshot(StreamConfig{Users: -1, MeanFiles: 4, Seed: 1, Taken: 100}, nil); err == nil {
		t.Error("negative user count accepted")
	}
	if _, err := StreamSnapshot(StreamConfig{Users: 1, MeanFiles: 300, Seed: 1, Taken: 100}, nil); err == nil {
		t.Error("mean files past the layout limit accepted")
	}
}

// TestSpiderStreamScale is the preset's acceptance run: a million
// users, over ten million files, streamed into a snapfile without
// materializing the namespace — heap stays bounded — then reopened
// with O(1) cost and spot-checked by lazy point lookups against
// regenerated entries. Minutes of work, so it only runs when asked
// for explicitly: ACTIVEDR_SPIDER_SCALE=1 go test ./internal/synth/
// -run SpiderScale.
func TestSpiderStreamScale(t *testing.T) {
	if os.Getenv("ACTIVEDR_SPIDER_SCALE") == "" {
		t.Skip("set ACTIVEDR_SPIDER_SCALE=1 to run the million-user streamed generation")
	}
	cfg := SpiderStream(0)
	path := filepath.Join(t.TempDir(), "fs.snap")
	w, err := vfs.NewSnapfileWriter(path, cfg.Taken)
	if err != nil {
		t.Fatal(err)
	}
	var sample []trace.SnapshotEntry
	n, err := StreamSnapshot(cfg, func(e trace.SnapshotEntry) error {
		if len(sample) < 4096 && e.User%251 == 0 {
			sample = append(sample, e)
		}
		return w.Add(e.Path, vfs.FileMeta{User: e.User, Size: e.Size, Stripes: e.Stripes, ATime: e.ATime})
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	if n < 10_000_000 {
		t.Fatalf("spider preset emitted %d files, want >= 10M", n)
	}
	// The stream holds one user's generator state; the snapfile writer
	// spools its tables to disk and keeps only the segment intern map
	// (~one segment per user). A materialized 10M-file namespace costs
	// GBs of *live* heap, so a 512 MiB ceiling on the post-GC live set
	// still proves out-of-core behaviour; the GC is forced first so
	// the measurement excludes collectable Sprintf garbage.
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > 512<<20 {
		t.Fatalf("live heap at %d MiB after streamed generation", ms.HeapAlloc>>20)
	}
	sf, err := vfs.OpenSnapfile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	if sf.Count() != n {
		t.Fatalf("snapfile holds %d files, streamed %d", sf.Count(), n)
	}
	for _, e := range sample {
		m, ok, err := sf.Lookup(e.Path)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || m.User != e.User || m.Size != e.Size || m.ATime != e.ATime {
			t.Fatalf("lookup %q: got %+v ok=%t, want %+v", e.Path, m, ok, e)
		}
	}
}
