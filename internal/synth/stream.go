package synth

// Streamed snapshot generation for out-of-core namespace scales.
// Generate materializes the whole dataset — fine at the reference
// scale, hopeless at the paper's Spider II scale (10⁶ users, 10⁷+
// files). StreamSnapshot instead emits snapshot entries one at a time
// in strictly ascending path order, holding only one user's generator
// state, so the entries can feed vfs.SnapfileWriter (which spools to
// disk) and the whole run stays bounded-memory no matter the scale.

import (
	"fmt"
	"time"

	"activedr/internal/randx"
	"activedr/internal/timeutil"
	"activedr/internal/trace"
)

// StreamConfig parameterizes the streamed snapshot generator.
type StreamConfig struct {
	Seed uint64
	// Users is the population size; user IDs are dense [0, Users).
	Users int
	// MeanFiles is the mean snapshot file count per user (each user
	// draws uniformly from [1, 2*MeanFiles-1], so the expected total
	// is Users*MeanFiles).
	MeanFiles int
	// Taken is the snapshot capture time; access times fall within
	// the year before it (the pre-filter window Generate also uses).
	Taken timeutil.Time
}

// Defaults fills unset fields with the reference scale.
func (c StreamConfig) Defaults() StreamConfig {
	if c.Seed == 0 {
		c.Seed = 0x5eed_ac71_7eda
	}
	if c.Users == 0 {
		c.Users = 2000
	}
	if c.MeanFiles == 0 {
		c.MeanFiles = 12
	}
	if c.Taken == 0 {
		c.Taken = timeutil.Date(2015, time.December, 26)
	}
	return c
}

// SpiderStream is the "spider" preset: the order of magnitude of the
// paper's Spider II namespace — a million users, over ten million
// snapshot files. Only meaningful through StreamSnapshot; feeding it
// to Generate would materialize the lot.
func SpiderStream(seed uint64) StreamConfig {
	return StreamConfig{Seed: seed, Users: 1_000_000, MeanFiles: 12}.Defaults()
}

// StreamUsers returns the user table matching a streamed snapshot.
// Names are u%07d — seven digits, unlike Generate's five — so that
// name order, ID order, and snapshot path order all agree at the
// million-user scale (path order is what the snapfile format and the
// shard merge key on).
func (c StreamConfig) StreamUsers() []trace.User {
	c = c.Defaults()
	users := make([]trace.User, c.Users)
	for i := range users {
		src := c.userSource(i)
		// Careers spread across the two years before the snapshot.
		created := c.Taken.Add(-timeutil.Duration(src.Int64n(int64(2 * 365 * timeutil.Day))))
		users[i] = trace.User{ID: trace.UserID(i), Name: fmt.Sprintf("u%07d", i), Created: created, Archetype: "dormant"}
	}
	return users
}

// userSource derives user i's private deterministic stream: per-user
// state is a pure function of (Seed, i), independent of emission
// order, so a sharded consumer could regenerate any user in isolation.
func (c StreamConfig) userSource(i int) *randx.Source {
	return randx.New(c.Seed ^ (uint64(i+1) * 0x9e3779b97f4a7c15))
}

// StreamSnapshot generates the snapshot one entry at a time, in
// strictly ascending path order, and hands each to emit; a non-nil
// error from emit aborts the stream. Returns the number of entries
// emitted. Memory use is O(1): one user's generator state, one path
// buffer.
func StreamSnapshot(cfg StreamConfig, emit func(trace.SnapshotEntry) error) (int, error) {
	cfg = cfg.Defaults()
	if cfg.Users <= 0 || cfg.MeanFiles <= 0 {
		return 0, fmt.Errorf("synth: non-positive stream scale (users=%d, mean files=%d)", cfg.Users, cfg.MeanFiles)
	}
	// proj is a single unpadded digit; past 8 the path order the whole
	// scheme guarantees would break ("proj10" < "proj2"). 256 mean
	// files bounds runs at 511 (proj 7), with room to spare.
	if cfg.MeanFiles > 256 {
		return 0, fmt.Errorf("synth: mean files %d exceeds the streamed layout's per-user limit of 256", cfg.MeanFiles)
	}
	archival := randx.NewWeighted(archivalWeights)
	year := int64(365 * timeutil.Day)
	total := 0
	for u := 0; u < cfg.Users; u++ {
		src := cfg.userSource(u)
		nFiles := 1 + src.Intn(2*cfg.MeanFiles-1)
		// Nested ascending loops keep the user's paths lexicographically
		// sorted without buffering them: run%04d and out%04d are
		// zero-padded past any count this generator produces, and users
		// emit in ID order with fixed-width names, so the global stream
		// is sorted too.
		for run, written := 0, 0; written < nFiles; run++ {
			outs := 1 + src.Intn(8)
			for o := 0; o < outs && written < nFiles; o++ {
				size, stripes := synthFile(src, archival)
				e := trace.SnapshotEntry{
					Path:    fmt.Sprintf("/lustre/atlas/u%07d/proj%d/run%04d/out%04d.dat", u, run>>6, run&63, o),
					User:    trace.UserID(u),
					Size:    size,
					Stripes: stripes,
					ATime:   cfg.Taken.Add(-timeutil.Duration(src.Int64n(year))),
				}
				if err := emit(e); err != nil {
					return total, err
				}
				written++
				total++
			}
		}
	}
	return total, nil
}
