package trace

import (
	"errors"
	"strconv"
	"strings"
	"testing"
)

// The zero-allocation tokenizer and int parser must agree with their
// stdlib oracles on every input — the pipelined readers' claim to
// bit-identical output rests on it. Run with `go test -fuzz
// FuzzSplitTabs` / `-fuzz FuzzParseIntBytes` for continuous fuzzing;
// the seeds run in normal test mode.

func FuzzSplitTabs(f *testing.F) {
	for _, s := range []string{
		"", "\t", "a\tb", "a\tb\tc\td\te\tf", "\t\t\t",
		"no tabs here", "trailing\t", "\tleading",
		"path\twith\ttabs\tin\t/the/last\tfield",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		var fields [][]byte
		got := splitTabs([]byte(input), fields)
		want := strings.Split(input, "\t")
		if len(got) != len(want) {
			t.Fatalf("splitTabs(%q): %d fields, strings.Split: %d", input, len(got), len(want))
		}
		for i := range got {
			if string(got[i]) != want[i] {
				t.Fatalf("splitTabs(%q)[%d] = %q, want %q", input, i, got[i], want[i])
			}
		}
		for n := 1; n <= 6; n++ {
			gotN := splitTabsN([]byte(input), fields[:0], n)
			wantN := strings.SplitN(input, "\t", n)
			if len(gotN) != len(wantN) {
				t.Fatalf("splitTabsN(%q, %d): %d fields, strings.SplitN: %d", input, n, len(gotN), len(wantN))
			}
			for i := range gotN {
				if string(gotN[i]) != wantN[i] {
					t.Fatalf("splitTabsN(%q, %d)[%d] = %q, want %q", input, n, i, gotN[i], wantN[i])
				}
			}
		}
	})
}

func FuzzParseIntBytes(f *testing.F) {
	for _, s := range []string{
		"", "0", "1", "-1", "+5", "-", "+", "007",
		"9223372036854775807", "9223372036854775808", // MaxInt64, MaxInt64+1
		"-9223372036854775808", "-9223372036854775809", // MinInt64, MinInt64-1
		"18446744073709551615", "18446744073709551616", // MaxUint64 boundary
		"99999999999999999999999999", "1_000", " 1", "1 ", "0x10", "1e3", "٣",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		got, gerr := parseIntBytes([]byte(input))
		want, werr := strconv.ParseInt(input, 10, 64)
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("parseIntBytes(%q) err = %v, strconv err = %v", input, gerr, werr)
		}
		if gerr == nil {
			if got != want {
				t.Fatalf("parseIntBytes(%q) = %d, strconv = %d", input, got, want)
			}
			return
		}
		// The error class must match too: syntax vs range.
		wantRange := errors.Is(werr, strconv.ErrRange)
		gotRange := errors.Is(gerr, errIntRange)
		if gotRange != wantRange {
			t.Fatalf("parseIntBytes(%q) error class %v, strconv %v", input, gerr, werr)
		}
	})
}

func TestStrIntern(t *testing.T) {
	in := make(strIntern)
	a := in.get([]byte("/lustre/atlas/u000/f1"))
	b := in.get([]byte("/lustre/atlas/u000/f1"))
	c := in.get([]byte("/lustre/atlas/u000/f2"))
	if a != b || a == c {
		t.Fatalf("intern results wrong: %q %q %q", a, b, c)
	}
	if len(in) != 2 {
		t.Fatalf("intern table holds %d entries, want 2", len(in))
	}
	// A nil table still materializes values, it just never dedups.
	var nilTab strIntern
	if got := nilTab.get([]byte("x")); got != "x" {
		t.Fatalf("nil intern get = %q", got)
	}
}
