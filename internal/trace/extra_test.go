package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"activedr/internal/timeutil"
)

func extraSample() ([]Login, []Transfer) {
	t0 := timeutil.Date(2016, time.February, 1)
	logins := []Login{
		{User: 0, TS: t0},
		{User: 2, TS: t0.Add(timeutil.Hours(5))},
	}
	transfers := []Transfer{
		{User: 0, TS: t0, Dir: TransferIn, Bytes: 64 << 30},
		{User: 1, TS: t0.Add(timeutil.Days(3)), Dir: TransferOut, Bytes: 8 << 30},
	}
	return logins, transfers
}

func TestTransferImpactGigabytes(t *testing.T) {
	x := Transfer{Bytes: 5e9}
	if x.Impact() != 5 {
		t.Fatalf("Impact = %v, want 5", x.Impact())
	}
	if TransferIn.String() != "in" || TransferOut.String() != "out" {
		t.Fatal("direction strings wrong")
	}
}

func TestLoginRoundTrip(t *testing.T) {
	d := sampleDataset()
	logins, _ := extraSample()
	var buf bytes.Buffer
	if err := WriteLogins(&buf, d.Users, logins); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLogins(&buf, NameIndex(d.Users))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, logins) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, logins)
	}
}

func TestTransferRoundTrip(t *testing.T) {
	d := sampleDataset()
	_, xs := extraSample()
	var buf bytes.Buffer
	if err := WriteTransfers(&buf, d.Users, xs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTransfers(&buf, NameIndex(d.Users))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, xs) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, xs)
	}
}

func TestExtraReadersRejectMalformed(t *testing.T) {
	idx := map[string]UserID{"u000": 0}
	badLogins := []string{"1", "x\tu000", "1\tghost"}
	for _, line := range badLogins {
		if _, err := ReadLogins(strings.NewReader(line+"\n"), idx); err == nil {
			t.Errorf("login line %q accepted", line)
		}
	}
	badTransfers := []string{
		"1\tu000\tin",          // short
		"1\tghost\tin\t5",      // unknown user
		"1\tu000\tsideways\t5", // bad direction
		"1\tu000\tin\t-5",      // negative bytes
		"x\tu000\tin\t5",       // bad ts
	}
	for _, line := range badTransfers {
		if _, err := ReadTransfers(strings.NewReader(line+"\n"), idx); err == nil {
			t.Errorf("transfer line %q accepted", line)
		}
	}
}

func TestDatasetOptionalExtraFiles(t *testing.T) {
	d := sampleDataset()
	logins, xs := extraSample()
	d.Logins, d.Transfers = logins, xs
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteDataset(dir, d); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Logins, logins) || !reflect.DeepEqual(got.Transfers, xs) {
		t.Fatal("extra traces lost in round trip")
	}
	// Removing the optional files must not break loading.
	os.Remove(filepath.Join(dir, LoginsFile))
	os.Remove(filepath.Join(dir, TransfersFile))
	got2, err := LoadDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2.Logins) != 0 || len(got2.Transfers) != 0 {
		t.Fatal("phantom extra records after file removal")
	}
}

func TestValidateExtraRecords(t *testing.T) {
	d := sampleDataset()
	d.Logins = []Login{{User: 99}}
	if err := d.Validate(); err == nil {
		t.Error("login with unknown user accepted")
	}
	d = sampleDataset()
	d.Transfers = []Transfer{{User: 0, Bytes: -1}}
	if err := d.Validate(); err == nil {
		t.Error("negative transfer accepted")
	}
}
