// Package trace defines the five trace record kinds the ActiveDR
// evaluation consumes — users, job-scheduler logs, application
// file-access logs, publication lists, and parallel-file-system
// metadata snapshots — together with TSV readers and writers
// (transparently gzipped for .gz paths, mirroring the "series of
// gzipped text files" the Spider II snapshots ship as).
package trace

import (
	"fmt"
	"sort"

	"activedr/internal/timeutil"
)

// UserID identifies a system user. IDs are dense indices into the
// dataset's user table so that per-user state can live in slices.
type UserID int32

// NoUser marks an unattributed record.
const NoUser UserID = -1

// User is one row of the anonymized user list.
type User struct {
	ID        UserID
	Name      string        // anonymized login, e.g. "u004217"
	Created   timeutil.Time // account creation
	Archetype string        // synthetic annotation; empty for real traces
}

// Job is one job-scheduler log record. The activeness impact of a job
// is its core-hours (paper §4.1.3).
type Job struct {
	User     UserID
	Submit   timeutil.Time
	Duration timeutil.Duration // wall-clock run time
	Cores    int
}

// CoreHours returns the job's activeness impact: cores × hours.
func (j Job) CoreHours() float64 {
	return float64(j.Cores) * float64(j.Duration) / float64(timeutil.Hour)
}

// Access is one application-log record: a file path touched at a
// time. Create marks paths the application writes fresh (these do not
// count as misses on replay).
type Access struct {
	TS     timeutil.Time
	User   UserID
	Create bool
	Path   string
	Size   int64 // bytes, used when the access (re)materializes the file
}

// Publication is one row of the facility publication list. Authors
// are ordered; Eq. (8) weighs each author by position.
type Publication struct {
	TS        timeutil.Time
	Citations int
	Authors   []UserID
}

// AuthorImpact implements Eq. (8): D_pub = (c+1)·(n−i+1) where i is
// the zero-based index of the author. Unknown authors yield 0.
func (p Publication) AuthorImpact(u UserID) float64 {
	for i, a := range p.Authors {
		if a == u {
			n := len(p.Authors)
			return float64(p.Citations+1) * float64(n-i)
		}
	}
	return 0
}

// SnapshotEntry is one row of a weekly metadata snapshot: a file with
// its owner, synthesized size, stripe count and last access time.
type SnapshotEntry struct {
	Path    string
	User    UserID
	Size    int64
	Stripes int
	ATime   timeutil.Time
}

// Snapshot is a full metadata snapshot captured at a point in time.
type Snapshot struct {
	Taken   timeutil.Time
	Entries []SnapshotEntry
}

// TotalBytes sums the sizes of all entries.
func (s *Snapshot) TotalBytes() int64 {
	var t int64
	for i := range s.Entries {
		t += s.Entries[i].Size
	}
	return t
}

// Dataset bundles every trace kind for one emulated system. Logins
// and Transfers are optional extra operation-activity sources (Table
// 2 of the paper); their files may be absent from a dataset
// directory.
type Dataset struct {
	Users        []User
	Jobs         []Job
	Accesses     []Access
	Publications []Publication
	Logins       []Login
	Transfers    []Transfer
	Snapshot     Snapshot // the reference (last pre-replay) snapshot
}

// UserByName returns the ID for a login name, or NoUser.
func (d *Dataset) UserByName(name string) UserID {
	for i := range d.Users {
		if d.Users[i].Name == name {
			return d.Users[i].ID
		}
	}
	return NoUser
}

// Validate checks cross-record invariants: dense user IDs, known
// users in every record, and chronological sortedness where required.
func (d *Dataset) Validate() error {
	for i := range d.Users {
		if d.Users[i].ID != UserID(i) {
			return fmt.Errorf("trace: user %q has ID %d at index %d (IDs must be dense)", d.Users[i].Name, d.Users[i].ID, i)
		}
	}
	n := UserID(len(d.Users))
	for i := range d.Jobs {
		if d.Jobs[i].User < 0 || d.Jobs[i].User >= n {
			return fmt.Errorf("trace: job %d references unknown user %d", i, d.Jobs[i].User)
		}
	}
	for i := range d.Accesses {
		if d.Accesses[i].User < 0 || d.Accesses[i].User >= n {
			return fmt.Errorf("trace: access %d references unknown user %d", i, d.Accesses[i].User)
		}
		if i > 0 && d.Accesses[i].TS < d.Accesses[i-1].TS {
			return fmt.Errorf("trace: access log out of order at record %d", i)
		}
	}
	for i := range d.Publications {
		if len(d.Publications[i].Authors) == 0 {
			return fmt.Errorf("trace: publication %d has no authors", i)
		}
		for _, a := range d.Publications[i].Authors {
			if a < 0 || a >= n {
				return fmt.Errorf("trace: publication %d references unknown user %d", i, a)
			}
		}
	}
	for i := range d.Logins {
		if d.Logins[i].User < 0 || d.Logins[i].User >= n {
			return fmt.Errorf("trace: login %d references unknown user %d", i, d.Logins[i].User)
		}
	}
	for i := range d.Transfers {
		t := &d.Transfers[i]
		if t.User < 0 || t.User >= n {
			return fmt.Errorf("trace: transfer %d references unknown user %d", i, t.User)
		}
		if t.Bytes < 0 {
			return fmt.Errorf("trace: transfer %d has negative size", i)
		}
	}
	for i := range d.Snapshot.Entries {
		e := &d.Snapshot.Entries[i]
		if e.User < 0 || e.User >= n {
			return fmt.Errorf("trace: snapshot entry %q references unknown user %d", e.Path, e.User)
		}
		if e.Size < 0 {
			return fmt.Errorf("trace: snapshot entry %q has negative size", e.Path)
		}
	}
	return nil
}

// SortAccesses orders the access log chronologically (stable, so
// same-timestamp records keep generation order).
func (d *Dataset) SortAccesses() {
	sort.SliceStable(d.Accesses, func(i, j int) bool {
		return d.Accesses[i].TS < d.Accesses[j].TS
	})
}

// SortJobs orders the job log by submit time.
func (d *Dataset) SortJobs() {
	sort.SliceStable(d.Jobs, func(i, j int) bool {
		return d.Jobs[i].Submit < d.Jobs[j].Submit
	})
}
