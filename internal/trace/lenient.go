package trace

// Lenient parsing. Real metadata feeds on billion-entry namespaces
// arrive imperfect: truncated gzip streams from interrupted scans,
// malformed rows from concurrent writers, names that never made it
// into the user table. The strict readers abort a year-long replay on
// the first bad line; ReadOptions{Lenient: true} instead quarantines
// malformed lines into a structured ParseReport — file, line, reason —
// salvages every complete record from a truncated stream, and only
// gives up when the error count shows the feed is garbage rather than
// merely scuffed.

import (
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"strings"
)

// ReadOptions controls reader strictness.
type ReadOptions struct {
	// Lenient quarantines malformed lines into the ParseReport
	// instead of aborting, and salvages complete records from
	// truncated (e.g. cut-short gzip) inputs.
	Lenient bool
	// MaxErrors caps quarantined lines per file in lenient mode;
	// exceeding the cap aborts the read (the feed is presumed
	// corrupt, not scuffed). Zero or negative selects
	// DefaultMaxErrors.
	MaxErrors int
	// Sequential selects the original single-goroutine readers
	// instead of the pipelined ones (pipeline.go). Both paths produce
	// bit-identical records, reports, and errors — the equivalence
	// tests enforce it — so this exists for A/B benchmarking and as a
	// fallback, like retention's LegacySelection.
	Sequential bool
	// SkipSnapshot leaves the metadata snapshot unread: Dataset.Snapshot
	// stays zero and the caller supplies the initial file-system state
	// some other way (e.g. a binary snapfile opened through the vfs
	// package). The snapshot TSV is by far the largest dataset file, so
	// skipping its parse is what makes snapfile-backed startup O(1).
	SkipSnapshot bool
}

// DefaultMaxErrors is the lenient-mode quarantine cap when
// ReadOptions.MaxErrors is unset.
const DefaultMaxErrors = 1000

// maxErrors resolves the effective cap.
func (o ReadOptions) maxErrors() int {
	if o.MaxErrors > 0 {
		return o.MaxErrors
	}
	return DefaultMaxErrors
}

// ParseError records one quarantined line.
type ParseError struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Reason string `json:"reason"`
}

// String renders the quarantined line as one report row.
func (e ParseError) String() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Reason)
}

// ParseReport is the structured outcome of one lenient read.
type ParseReport struct {
	// File is the logical trace file name.
	File string `json:"file"`
	// Lines counts the data lines consumed (quarantined included,
	// blank and comment lines excluded).
	Lines int `json:"lines"`
	// Errors lists the quarantined lines, at most MaxErrors of them.
	Errors []ParseError `json:"errors,omitempty"`
	// Truncated marks an input that ended mid-stream (typically a
	// cut-short gzip member); all records before the cut were
	// salvaged.
	Truncated bool `json:"truncated,omitempty"`
}

// Clean reports whether the read consumed the whole input without
// quarantining anything. A nil report (strict read) is clean.
func (r *ParseReport) Clean() bool {
	return r == nil || (len(r.Errors) == 0 && !r.Truncated)
}

// Summary renders the report in one line.
func (r *ParseReport) Summary() string {
	if r.Clean() {
		return fmt.Sprintf("%s: clean (%d lines)", r.File, r.Lines)
	}
	s := fmt.Sprintf("%s: %d lines, %d quarantined", r.File, r.Lines, len(r.Errors))
	if r.Truncated {
		s += ", input truncated"
	}
	return s
}

// quarantine handles one malformed line: strict mode aborts with the
// reader's positioned error, lenient mode records the bare reason
// until the cap is hit. A non-nil return means the read must stop.
func (r *ParseReport) quarantine(ls *lineScanner, opts ReadOptions, reason error) error {
	return r.quarantineAt(ls.name, ls.line, opts, reason.Error())
}

// quarantineAt is quarantine positioned by file name and line number
// instead of a live scanner, so the pipeline assembler (which replays
// worker events long after the lines were scanned) shares the exact
// strict-abort and cap-exceeded semantics and messages.
func (r *ParseReport) quarantineAt(name string, line int, opts ReadOptions, reason string) error {
	if !opts.Lenient {
		return fmt.Errorf("trace: %s line %d: %s", name, line, reason)
	}
	max := opts.maxErrors()
	if len(r.Errors) >= max {
		return fmt.Errorf("trace: %s: more than %d malformed lines, giving up (last: line %d: %v)",
			name, max, line, reason)
	}
	r.Errors = append(r.Errors, ParseError{File: name, Line: line, Reason: reason})
	return nil
}

// finish folds the scanner's terminal error into the report: lenient
// mode converts a truncated stream into ParseReport.Truncated (the
// records already parsed are kept); everything else stays fatal.
func (r *ParseReport) finish(ls *lineScanner, opts ReadOptions) error {
	err := ls.s.Err()
	if err == nil {
		return nil
	}
	return r.finishAt(ls.name, ls.line, opts, err)
}

// finishAt is finish positioned by file name and scanned-line count,
// the assembler-side twin of quarantineAt.
func (r *ParseReport) finishAt(name string, lines int, opts ReadOptions, err error) error {
	if opts.Lenient && isTruncation(err) {
		r.Truncated = true
		return nil
	}
	return fmt.Errorf("trace: %s line %d: %w", name, lines+1, err)
}

// isTruncation recognizes an input cut short mid-stream: the flate
// layer reports unexpected EOF, and a gzip member whose trailer was
// clipped after the data fails its checksum read.
func isTruncation(err error) bool {
	return errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, gzip.ErrChecksum)
}

// DatasetReport aggregates the per-file reports of one lenient
// dataset load.
type DatasetReport struct {
	Reports []*ParseReport
}

// Errors sums quarantined lines across all files.
func (d *DatasetReport) Errors() int {
	if d == nil {
		return 0
	}
	n := 0
	for _, r := range d.Reports {
		n += len(r.Errors)
	}
	return n
}

// Truncated reports whether any input ended mid-stream.
func (d *DatasetReport) Truncated() bool {
	if d == nil {
		return false
	}
	for _, r := range d.Reports {
		if r.Truncated {
			return true
		}
	}
	return false
}

// Clean reports whether every file loaded without quarantines.
func (d *DatasetReport) Clean() bool {
	if d == nil {
		return true
	}
	for _, r := range d.Reports {
		if !r.Clean() {
			return false
		}
	}
	return true
}

// Summary renders the non-clean per-file summaries, one per line.
func (d *DatasetReport) Summary() string {
	if d.Clean() {
		return "dataset: clean"
	}
	var b strings.Builder
	for _, r := range d.Reports {
		if r.Clean() {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(r.Summary())
	}
	return b.String()
}
