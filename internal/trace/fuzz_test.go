package trace

import (
	"reflect"
	"strings"
	"testing"
)

// The readers must never panic on arbitrary input — a malformed line
// yields an error (strict) or a quarantine entry (lenient), nothing
// else. Run with `go test -fuzz FuzzReaders` for continuous fuzzing;
// the seeds below run in normal test mode.

func FuzzReaders(f *testing.F) {
	seeds := []string{
		"",
		"u000\t100\tpower\n",
		"u000\t1\t2\t3\n",
		"1\tu000\t0\t5\t/p\n",
		"1\t2\tu000,u001\n",
		"#taken\t99\nu000\t1\t2\t3\t/p\n",
		"1\tu000\n",
		"1\tu000\tin\t5\n",
		"\t\t\t\t\n",
		"u000\t" + strings.Repeat("9", 30) + "\n", // overflow timestamp
		"u000\t100\tx\ty\tz\n",
		"#taken\tzzz\nu000\t1\t2\t3\t/p\n", // bad header, good row
		strings.Repeat("garbage\n", 12),    // more bad lines than maxErr
	}
	for _, s := range seeds {
		f.Add(s)
	}
	idx := map[string]UserID{"u000": 0, "u001": 1}
	const maxErr = 8
	lenient := ReadOptions{Lenient: true, MaxErrors: maxErr}

	// check runs one reader in strict and lenient mode against the
	// same input and enforces the cross-mode invariants: a lenient
	// success quarantines at most MaxErrors lines, and a strict
	// success implies a clean lenient report with the identical
	// result.
	check := func(t *testing.T, name string, strictVal any, strictErr error, lenVal any, rep *ParseReport, lenErr error) {
		t.Helper()
		if lenErr == nil && len(rep.Errors) > maxErr {
			t.Fatalf("%s: lenient read kept %d quarantined lines, cap is %d", name, len(rep.Errors), maxErr)
		}
		if strictErr != nil {
			return
		}
		if lenErr != nil {
			t.Fatalf("%s: strict succeeded but lenient failed: %v", name, lenErr)
		}
		if !rep.Clean() {
			t.Fatalf("%s: strict succeeded but lenient report dirty: %s", name, rep.Summary())
		}
		if !reflect.DeepEqual(strictVal, lenVal) {
			t.Fatalf("%s: strict and lenient disagree on clean input", name)
		}
	}

	f.Fuzz(func(t *testing.T, input string) {
		r := func() *strings.Reader { return strings.NewReader(input) }

		su, serr := ReadUsers(r())
		lu, urep, lerr := ReadUsersWith(r(), lenient)
		check(t, "users", su, serr, lu, urep, lerr)

		sj, serr := ReadJobs(r(), idx)
		lj, jrep, lerr := ReadJobsWith(r(), idx, lenient)
		check(t, "jobs", sj, serr, lj, jrep, lerr)

		sa, serr := ReadAccesses(r(), idx)
		la, arep, lerr := ReadAccessesWith(r(), idx, lenient)
		check(t, "accesses", sa, serr, la, arep, lerr)

		sp, serr := ReadPublications(r(), idx)
		lp, prep, lerr := ReadPublicationsWith(r(), idx, lenient)
		check(t, "publications", sp, serr, lp, prep, lerr)

		ss, serr := ReadSnapshot(r(), idx)
		lsnap, srep, lerr := ReadSnapshotWith(r(), idx, lenient)
		check(t, "snapshot", ss, serr, lsnap, srep, lerr)

		sl, serr := ReadLogins(r(), idx)
		ll, lrep, lerr := ReadLoginsWith(r(), idx, lenient)
		check(t, "logins", sl, serr, ll, lrep, lerr)

		st, serr := ReadTransfers(r(), idx)
		lt, trep, lerr := ReadTransfersWith(r(), idx, lenient)
		check(t, "transfers", st, serr, lt, trep, lerr)
	})
}

// FuzzPipelineEquivalence holds the pipelined readers to bit-identical
// behavior against ReadOptions.Sequential on arbitrary input — values,
// reports, and error text, in both strict and lenient mode. This is
// the fuzz-shaped version of the directed equivalence tests in
// pipeline_test.go.
func FuzzPipelineEquivalence(f *testing.F) {
	seeds := []string{
		"",
		"u000\t100\tpower\n",
		"1\tu000\t0\t5\t/p\n",
		"#taken\t99\nu000\t1\t2\t3\t/p\n#taken\t7\n",
		"#taken\tzzz\nu000\t1\t2\t3\t/p\n",
		"good\tline\r\n\r\n# comment\nu000\t5",
		strings.Repeat("garbage\n", 12),
		strings.Repeat("u000\t7\n", 500),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	idx := map[string]UserID{"u000": 0, "u001": 1}

	type reader func(r *strings.Reader, o ReadOptions) (any, *ParseReport, error)
	readers := map[string]reader{
		"users": func(r *strings.Reader, o ReadOptions) (any, *ParseReport, error) {
			v, rep, err := ReadUsersWith(r, o)
			return v, rep, err
		},
		"jobs": func(r *strings.Reader, o ReadOptions) (any, *ParseReport, error) {
			v, rep, err := ReadJobsWith(r, idx, o)
			return v, rep, err
		},
		"accesses": func(r *strings.Reader, o ReadOptions) (any, *ParseReport, error) {
			v, rep, err := ReadAccessesWith(r, idx, o)
			return v, rep, err
		},
		"publications": func(r *strings.Reader, o ReadOptions) (any, *ParseReport, error) {
			v, rep, err := ReadPublicationsWith(r, idx, o)
			return v, rep, err
		},
		"snapshot": func(r *strings.Reader, o ReadOptions) (any, *ParseReport, error) {
			v, rep, err := ReadSnapshotWith(r, idx, o)
			return v, rep, err
		},
		"logins": func(r *strings.Reader, o ReadOptions) (any, *ParseReport, error) {
			v, rep, err := ReadLoginsWith(r, idx, o)
			return v, rep, err
		},
		"transfers": func(r *strings.Reader, o ReadOptions) (any, *ParseReport, error) {
			v, rep, err := ReadTransfersWith(r, idx, o)
			return v, rep, err
		},
	}
	optsList := []ReadOptions{
		{},
		{Lenient: true, MaxErrors: 8},
	}

	f.Fuzz(func(t *testing.T, input string) {
		for name, read := range readers {
			for _, opts := range optsList {
				pv, prep, perr := read(strings.NewReader(input), opts)
				seq := opts
				seq.Sequential = true
				sv, srep, serr := read(strings.NewReader(input), seq)
				if (perr == nil) != (serr == nil) || (perr != nil && perr.Error() != serr.Error()) {
					t.Fatalf("%s (lenient=%v): pipelined err = %v, sequential err = %v",
						name, opts.Lenient, perr, serr)
				}
				if !reflect.DeepEqual(pv, sv) {
					t.Fatalf("%s (lenient=%v): pipelined and sequential values differ:\n %+v\n %+v",
						name, opts.Lenient, pv, sv)
				}
				if !reflect.DeepEqual(prep, srep) {
					t.Fatalf("%s (lenient=%v): pipelined and sequential reports differ:\n %+v\n %+v",
						name, opts.Lenient, prep, srep)
				}
			}
		}
	})
}
