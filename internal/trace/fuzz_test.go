package trace

import (
	"strings"
	"testing"
)

// The readers must never panic on arbitrary input — a malformed line
// yields an error, nothing else. Run with `go test -fuzz FuzzReaders`
// for continuous fuzzing; the seeds below run in normal test mode.

func FuzzReaders(f *testing.F) {
	seeds := []string{
		"",
		"u000\t100\tpower\n",
		"u000\t1\t2\t3\n",
		"1\tu000\t0\t5\t/p\n",
		"1\t2\tu000,u001\n",
		"#taken\t99\nu000\t1\t2\t3\t/p\n",
		"1\tu000\n",
		"1\tu000\tin\t5\n",
		"\t\t\t\t\n",
		"u000\t" + strings.Repeat("9", 30) + "\n", // overflow timestamp
		"u000\t100\tx\ty\tz\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	idx := map[string]UserID{"u000": 0, "u001": 1}
	f.Fuzz(func(t *testing.T, input string) {
		r := func() *strings.Reader { return strings.NewReader(input) }
		// Every reader either parses or errors; panics fail the fuzz.
		if users, err := ReadUsers(r()); err == nil {
			for _, u := range users {
				if u.Name == "" && input != "" && !strings.HasPrefix(input, "#") {
					// Empty names only from empty fields; acceptable,
					// Validate would flag them downstream.
					_ = u
				}
			}
		}
		_, _ = ReadJobs(r(), idx)
		_, _ = ReadAccesses(r(), idx)
		_, _ = ReadPublications(r(), idx)
		_, _ = ReadSnapshot(r(), idx)
		_, _ = ReadLogins(r(), idx)
		_, _ = ReadTransfers(r(), idx)
	})
}
