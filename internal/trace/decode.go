package trace

// Zero-allocation TSV row decoding. The pipelined readers (pipeline.go)
// tokenize raw line bytes with a hand-rolled tab splitter and parse
// integers straight from byte slices, materializing strings only for
// the fields a record retains (names, paths, archetypes) — repeated
// values are deduplicated through an intern table, the same trick
// internal/vfs plays with its canonical path strings. Every parser
// mirrors its strings-based sequential counterpart in io.go/extra.go
// bit for bit: same field arity checks, same check order, same error
// text. FuzzDecode proves the tokenizer and the int parser against
// their strings.Split/strconv.ParseInt oracles, and the pipeline
// equivalence tests prove whole-file agreement.

import (
	"bytes"
	"errors"
	"fmt"

	"activedr/internal/timeutil"
)

var (
	errIntSyntax = errors.New("invalid syntax")
	errIntRange  = errors.New("value out of range")
)

// parseIntBytes is strconv.ParseInt(string(s), 10, 64) without the
// string conversion: same accepted inputs (optional sign, decimal
// digits, no underscores), same overflow rejection, same value on
// success. Callers only branch on the error, so the sentinel errors
// carry no position info.
func parseIntBytes(s []byte) (int64, error) {
	if len(s) == 0 {
		return 0, errIntSyntax
	}
	neg := false
	if s[0] == '+' || s[0] == '-' {
		neg = s[0] == '-'
		s = s[1:]
		if len(s) == 0 {
			return 0, errIntSyntax
		}
	}
	// Mirrors strconv's ParseUint cutoff logic for base 10, then the
	// signed-range check.
	const cutoff = (1<<64-1)/10 + 1
	var n uint64
	for _, c := range s {
		d := c - '0'
		if d > 9 {
			return 0, errIntSyntax
		}
		if n >= cutoff {
			return 0, errIntRange
		}
		n1 := n*10 + uint64(d)
		if n1 < n {
			return 0, errIntRange
		}
		n = n1
	}
	if neg {
		if n > 1<<63 {
			return 0, errIntRange
		}
		return -int64(n), nil
	}
	if n > 1<<63-1 {
		return 0, errIntRange
	}
	return int64(n), nil
}

// splitTabs appends every tab-separated field of line to f and
// returns it, matching strings.Split(line, "\t"): an empty line
// yields one empty field.
func splitTabs(line []byte, f [][]byte) [][]byte {
	for {
		j := bytes.IndexByte(line, '\t')
		if j < 0 {
			return append(f, line)
		}
		f = append(f, line[:j])
		line = line[j+1:]
	}
}

// splitTabsN is splitTabs capped at n fields, matching
// strings.SplitN(line, "\t", n): the last field keeps any remaining
// tabs.
func splitTabsN(line []byte, f [][]byte, n int) [][]byte {
	for len(f) < n-1 {
		j := bytes.IndexByte(line, '\t')
		if j < 0 {
			return append(f, line)
		}
		f = append(f, line[:j])
		line = line[j+1:]
	}
	return append(f, line)
}

// strIntern deduplicates materialized strings: repeated byte patterns
// (access-log paths, archetype tags, snapshot paths shared across a
// weekly series) hand out one shared string instead of one copy per
// row. The map lookup with an in-place string conversion does not
// allocate on a hit. A nil table disables interning and copies every
// value (right for fields that never repeat).
type strIntern map[string]string

func (t strIntern) get(b []byte) string {
	if t == nil {
		return string(b)
	}
	if s, ok := t[string(b)]; ok {
		return s
	}
	s := string(b)
	t[s] = s
	return s
}

// decoder is one parser worker's scratch state: the reusable field
// slice and the intern tables. Each worker owns one, so no locks are
// needed on the hot path.
type decoder struct {
	fields [][]byte
	paths  strIntern // access/snapshot paths
	archs  strIntern // user archetype tags
}

func newDecoder(internPaths bool) *decoder {
	dc := &decoder{fields: make([][]byte, 0, 8), archs: make(strIntern)}
	if internPaths {
		dc.paths = make(strIntern, 1024)
	}
	return dc
}

// --- per-kind row parsers (byte-slice mirrors of the parse*Line funcs) ---

// decodeUser mirrors the users branch of readUsersSeq. The dense ID
// is assigned at assembly time so quarantined rows do not consume one.
func decodeUser(dc *decoder, line []byte) (User, error) {
	f := splitTabs(line, dc.fields[:0])
	if len(f) < 2 {
		return User{}, fmt.Errorf("want ≥2 fields, got %d", len(f))
	}
	created, err := parseIntBytes(f[1])
	if err != nil {
		return User{}, fmt.Errorf("bad created timestamp %q", f[1])
	}
	u := User{Name: string(f[0]), Created: timeutil.Time(created)}
	if len(f) >= 3 {
		u.Archetype = dc.archs.get(f[2])
	}
	return u, nil
}

// decodeJob mirrors parseJobLine.
func decodeJob(dc *decoder, line []byte, byName map[string]UserID) (Job, error) {
	f := splitTabs(line, dc.fields[:0])
	if len(f) != 4 {
		return Job{}, fmt.Errorf("want 4 fields, got %d", len(f))
	}
	uid, ok := byName[string(f[0])]
	if !ok {
		return Job{}, fmt.Errorf("unknown user %q", f[0])
	}
	submit, err1 := parseIntBytes(f[1])
	dur, err2 := parseIntBytes(f[2])
	cores, err3 := parseIntBytes(f[3])
	if err1 != nil || err2 != nil || err3 != nil {
		return Job{}, fmt.Errorf("bad numeric field in %q", line)
	}
	return Job{
		User:     uid,
		Submit:   timeutil.Time(submit),
		Duration: timeutil.Duration(dur),
		Cores:    int(cores),
	}, nil
}

// decodeAccess mirrors parseAccessLine.
func decodeAccess(dc *decoder, line []byte, byName map[string]UserID) (Access, error) {
	f := splitTabsN(line, dc.fields[:0], 5)
	if len(f) != 5 {
		return Access{}, fmt.Errorf("want 5 fields, got %d", len(f))
	}
	ts, err1 := parseIntBytes(f[0])
	uid, ok := byName[string(f[1])]
	create, err2 := parseIntBytes(f[2])
	size, err3 := parseIntBytes(f[3])
	if err1 != nil || err2 != nil || err3 != nil {
		return Access{}, fmt.Errorf("bad numeric field in %q", line)
	}
	if !ok {
		return Access{}, fmt.Errorf("unknown user %q", f[1])
	}
	if len(f[4]) == 0 {
		return Access{}, fmt.Errorf("empty path")
	}
	return Access{
		TS:     timeutil.Time(ts),
		User:   uid,
		Create: create != 0,
		Size:   size,
		Path:   dc.paths.get(f[4]),
	}, nil
}

// decodePublication mirrors parsePublicationLine.
func decodePublication(dc *decoder, line []byte, byName map[string]UserID) (Publication, error) {
	f := splitTabs(line, dc.fields[:0])
	if len(f) != 3 {
		return Publication{}, fmt.Errorf("want 3 fields, got %d", len(f))
	}
	ts, err1 := parseIntBytes(f[0])
	cites, err2 := parseIntBytes(f[1])
	if err1 != nil || err2 != nil {
		return Publication{}, fmt.Errorf("bad numeric field in %q", line)
	}
	authors := make([]UserID, 0, bytes.Count(f[2], []byte{','})+1)
	rest := f[2]
	for {
		var name []byte
		if j := bytes.IndexByte(rest, ','); j >= 0 {
			name, rest = rest[:j], rest[j+1:]
		} else {
			name, rest = rest, nil
		}
		uid, ok := byName[string(name)]
		if !ok {
			return Publication{}, fmt.Errorf("unknown author %q", name)
		}
		authors = append(authors, uid)
		if rest == nil {
			break
		}
	}
	return Publication{
		TS:        timeutil.Time(ts),
		Citations: int(cites),
		Authors:   authors,
	}, nil
}

// decodeSnapshotEntry mirrors parseSnapshotLine.
func decodeSnapshotEntry(dc *decoder, line []byte, byName map[string]UserID) (SnapshotEntry, error) {
	f := splitTabsN(line, dc.fields[:0], 5)
	if len(f) != 5 {
		return SnapshotEntry{}, fmt.Errorf("want 5 fields, got %d", len(f))
	}
	uid, ok := byName[string(f[0])]
	if !ok {
		return SnapshotEntry{}, fmt.Errorf("unknown user %q", f[0])
	}
	size, err1 := parseIntBytes(f[1])
	stripes, err2 := parseIntBytes(f[2])
	atime, err3 := parseIntBytes(f[3])
	if err1 != nil || err2 != nil || err3 != nil {
		return SnapshotEntry{}, fmt.Errorf("bad numeric field in %q", line)
	}
	if len(f[4]) == 0 {
		return SnapshotEntry{}, fmt.Errorf("empty path")
	}
	return SnapshotEntry{
		Path:    dc.paths.get(f[4]),
		User:    uid,
		Size:    size,
		Stripes: int(stripes),
		ATime:   timeutil.Time(atime),
	}, nil
}

// decodeLogin mirrors parseLoginLine.
func decodeLogin(dc *decoder, line []byte, byName map[string]UserID) (Login, error) {
	f := splitTabs(line, dc.fields[:0])
	if len(f) != 2 {
		return Login{}, fmt.Errorf("want 2 fields, got %d", len(f))
	}
	ts, err := parseIntBytes(f[0])
	if err != nil {
		return Login{}, fmt.Errorf("bad timestamp %q", f[0])
	}
	uid, ok := byName[string(f[1])]
	if !ok {
		return Login{}, fmt.Errorf("unknown user %q", f[1])
	}
	return Login{User: uid, TS: timeutil.Time(ts)}, nil
}

// decodeTransfer mirrors parseTransferLine.
func decodeTransfer(dc *decoder, line []byte, byName map[string]UserID) (Transfer, error) {
	f := splitTabs(line, dc.fields[:0])
	if len(f) != 4 {
		return Transfer{}, fmt.Errorf("want 4 fields, got %d", len(f))
	}
	ts, err1 := parseIntBytes(f[0])
	bytes_, err2 := parseIntBytes(f[3])
	if err1 != nil || err2 != nil {
		return Transfer{}, fmt.Errorf("bad numeric field in %q", line)
	}
	uid, ok := byName[string(f[1])]
	if !ok {
		return Transfer{}, fmt.Errorf("unknown user %q", f[1])
	}
	var dir TransferDir
	switch {
	case bytes.Equal(f[2], []byte("in")):
		dir = TransferIn
	case bytes.Equal(f[2], []byte("out")):
		dir = TransferOut
	default:
		return Transfer{}, fmt.Errorf("bad direction %q", f[2])
	}
	if bytes_ < 0 {
		return Transfer{}, fmt.Errorf("negative transfer size")
	}
	return Transfer{User: uid, TS: timeutil.Time(ts), Dir: dir, Bytes: bytes_}, nil
}
