package trace

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"activedr/internal/timeutil"
)

// Equivalence proofs for the pipelined ingestion path: on every
// input — clean, malformed, truncated, over the MaxErrors cap — the
// parallel pipeline must produce the same Dataset, the same
// DatasetReport (line numbers included), and the same error text as
// ReadOptions.Sequential. PR 1's lenient-parsing guarantees survive
// the concurrency because these tests say so, not by assumption.

func seqOpts(o ReadOptions) ReadOptions {
	o.Sequential = true
	return o
}

func sameErr(t *testing.T, what string, pipelined, sequential error) {
	t.Helper()
	if (pipelined == nil) != (sequential == nil) {
		t.Fatalf("%s: pipelined err = %v, sequential err = %v", what, pipelined, sequential)
	}
	if pipelined != nil && pipelined.Error() != sequential.Error() {
		t.Fatalf("%s: error text differs:\n pipelined:  %v\n sequential: %v", what, pipelined, sequential)
	}
}

// loadBoth loads dir through both paths and fails the test unless the
// datasets, reports, and errors are bit-identical.
func loadBoth(t *testing.T, dir string, opts ReadOptions) (*Dataset, *DatasetReport, error) {
	t.Helper()
	pd, pr, perr := LoadDatasetWith(dir, opts)
	sd, sr, serr := LoadDatasetWith(dir, seqOpts(opts))
	sameErr(t, "LoadDatasetWith", perr, serr)
	if !reflect.DeepEqual(pd, sd) {
		t.Fatalf("datasets differ between pipelined and sequential load (lenient=%v)", opts.Lenient)
	}
	if !reflect.DeepEqual(pr, sr) {
		t.Fatalf("reports differ between pipelined and sequential load (lenient=%v):\n pipelined:  %+v\n sequential: %+v", opts.Lenient, pr, sr)
	}
	return pd, pr, perr
}

// bigDataset synthesizes a dataset large enough that every gzipped
// file spans multiple pipeline blocks, with enough path reuse for the
// intern table to matter.
func bigDataset() *Dataset {
	t0 := timeutil.Date(2016, time.January, 1)
	const nUsers = 200
	d := &Dataset{}
	for i := 0; i < nUsers; i++ {
		arch := ""
		if i%3 == 0 {
			arch = "power"
		}
		d.Users = append(d.Users, User{ID: UserID(i), Name: fmt.Sprintf("u%03d", i),
			Created: t0.Add(timeutil.Days(i % 30)), Archetype: arch})
	}
	for i := 0; i < 20000; i++ {
		d.Jobs = append(d.Jobs, Job{User: UserID(i % nUsers), Submit: t0.Add(timeutil.Duration(i) * 60),
			Duration: timeutil.Hours(1 + i%48), Cores: 16 + i%1024})
	}
	for i := 0; i < 40000; i++ {
		d.Accesses = append(d.Accesses, Access{TS: t0.Add(timeutil.Duration(i) * 30), User: UserID(i % nUsers),
			Create: i%5 == 0, Size: int64(i) * 512,
			Path: fmt.Sprintf("/lustre/atlas/u%03d/proj%d/out-%d.h5", i%nUsers, i%7, i%900)})
	}
	for i := 0; i < 2000; i++ {
		d.Publications = append(d.Publications, Publication{TS: t0.Add(timeutil.Days(i % 365)),
			Citations: i % 40, Authors: []UserID{UserID(i % nUsers), UserID((i + 7) % nUsers)}})
	}
	for i := 0; i < 10000; i++ {
		d.Logins = append(d.Logins, Login{User: UserID(i % nUsers), TS: t0.Add(timeutil.Duration(i) * 77)})
		dir := TransferIn
		if i%2 == 0 {
			dir = TransferOut
		}
		d.Transfers = append(d.Transfers, Transfer{User: UserID(i % nUsers), TS: t0.Add(timeutil.Duration(i) * 91),
			Dir: dir, Bytes: int64(i) * 1 << 20})
	}
	d.Snapshot.Taken = t0
	for i := 0; i < 20000; i++ {
		d.Snapshot.Entries = append(d.Snapshot.Entries, SnapshotEntry{
			Path: fmt.Sprintf("/lustre/atlas/u%03d/proj%d/f%05d.dat", i%nUsers, i%7, i),
			User: UserID(i % nUsers), Size: int64(i) * 4096, Stripes: 1 + i%8,
			ATime: t0.Add(-timeutil.Days(i % 400))})
	}
	return d
}

// rewriteTrace rewrites one trace file (transparently re-gzipping)
// through mutate, which edits its lines.
func rewriteTrace(t *testing.T, path string, mutate func([]string) []string) {
	t.Helper()
	r, closeFn, err := openReader(path)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	lines = mutate(lines)
	w, closeFn, err := openWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte(strings.Join(lines, "\n") + "\n")); err != nil {
		t.Fatal(err)
	}
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}
}

func TestPipelinedMatchesSequentialClean(t *testing.T) {
	dir := t.TempDir()
	if err := WriteDataset(dir, bigDataset()); err != nil {
		t.Fatal(err)
	}
	for _, lenient := range []bool{false, true} {
		d, rep, err := loadBoth(t, dir, ReadOptions{Lenient: lenient})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Clean() {
			t.Fatalf("clean dataset reported dirty: %s", rep.Summary())
		}
		if len(d.Accesses) != 40000 || len(d.Snapshot.Entries) != 20000 {
			t.Fatalf("load dropped records: %d accesses, %d snapshot entries",
				len(d.Accesses), len(d.Snapshot.Entries))
		}
	}
}

func TestPipelinedMatchesSequentialMessy(t *testing.T) {
	dir := t.TempDir()
	if err := WriteDataset(dir, bigDataset()); err != nil {
		t.Fatal(err)
	}
	// Scatter every flavor of damage the lenient mode quarantines:
	// short rows, unknown users, bad numerics, empty paths, bad and
	// duplicate #taken headers, plus blanks, comments, and CRLF line
	// endings sprinkled at both ends and the middle of each file.
	splice := func(lines []string, at int, insert ...string) []string {
		out := append([]string{}, lines[:at]...)
		out = append(out, insert...)
		return append(out, lines[at:]...)
	}
	rewriteTrace(t, filepath.Join(dir, UsersFile), func(lines []string) []string {
		lines = splice(lines, 0, "# users header", "", "solo")
		lines = splice(lines, len(lines)/2, "u_bad\tnotanumber", "u900\t1234\tcrlf\r")
		return append(lines, "short")
	})
	rewriteTrace(t, filepath.Join(dir, JobsFile), func(lines []string) []string {
		lines = splice(lines, 1, "ghost\t1\t2\t3", "u000\tx\t2\t3")
		return splice(lines, len(lines)-1, "u001\t1\t2", "# comment", "")
	})
	rewriteTrace(t, filepath.Join(dir, AccessesFile), func(lines []string) []string {
		lines = splice(lines, len(lines)/3, "1\tu000\t0\t5\t", "x\tu000\t0\t5\t/p", "")
		return splice(lines, 2*len(lines)/3, "1\tghost\t0\t5\t/p")
	})
	rewriteTrace(t, filepath.Join(dir, PubsFile), func(lines []string) []string {
		return splice(lines, len(lines)/2, "1\t2\tghost", "1\tx\tu000", "1\t2\tu000,,u001")
	})
	rewriteTrace(t, filepath.Join(dir, LoginsFile), func(lines []string) []string {
		return splice(lines, len(lines)/2, "broken", "zzz\tu000")
	})
	rewriteTrace(t, filepath.Join(dir, TransfersFile), func(lines []string) []string {
		return splice(lines, len(lines)/2, "1\tu000\tsideways\t5", "1\tu000\tin\t-9")
	})
	rewriteTrace(t, filepath.Join(dir, SnapshotFile), func(lines []string) []string {
		lines = splice(lines, 1, "#taken\tzzz", "u000\tx\t2\t3\t/q", "nosuch\t1\t2\t3\t/p")
		return append(lines, "#taken\t777") // last valid header wins
	})

	d, rep, err := loadBoth(t, dir, ReadOptions{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors() == 0 {
		t.Fatal("messy dataset produced no quarantined lines")
	}
	if int64(d.Snapshot.Taken) != 777 {
		t.Fatalf("Taken = %d, want the last valid header 777", int64(d.Snapshot.Taken))
	}
	// Strict mode aborts on the first bad line with the identical
	// positioned error on both paths.
	if _, _, err := loadBoth(t, dir, ReadOptions{}); err == nil {
		t.Fatal("strict load accepted messy dataset")
	}
}

func TestPipelinedMatchesSequentialTruncated(t *testing.T) {
	dir := t.TempDir()
	if err := WriteDataset(dir, sampleDataset()); err != nil {
		t.Fatal(err)
	}
	const total = 2000
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	for i := 0; i < total; i++ {
		fmt.Fprintf(gz, "%d\tu000\t0\t5\t/lustre/atlas/u000/f%04d-%x\n", i, i, i*2654435761)
	}
	gz.Close()
	trunc := buf.Bytes()[:buf.Len()/2]
	if err := os.WriteFile(filepath.Join(dir, AccessesFile), trunc, 0o644); err != nil {
		t.Fatal(err)
	}

	d, rep, err := loadBoth(t, dir, ReadOptions{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated() {
		t.Fatalf("truncation not reported: %s", rep.Summary())
	}
	if len(d.Accesses) == 0 || len(d.Accesses) >= total {
		t.Fatalf("salvaged %d accesses, want a proper non-empty prefix", len(d.Accesses))
	}
	if _, _, err := loadBoth(t, dir, ReadOptions{}); err == nil {
		t.Fatal("strict load accepted truncated gzip")
	}
}

func TestPipelinedMatchesSequentialMaxErrors(t *testing.T) {
	dir := t.TempDir()
	if err := WriteDataset(dir, sampleDataset()); err != nil {
		t.Fatal(err)
	}
	rewriteTrace(t, filepath.Join(dir, AccessesFile), func(lines []string) []string {
		for i := 0; i < 50; i++ {
			lines = append(lines, fmt.Sprintf("garbage-%d", i))
		}
		return lines
	})
	_, rep, err := loadBoth(t, dir, ReadOptions{Lenient: true, MaxErrors: 10})
	if err == nil {
		t.Fatal("load survived past MaxErrors")
	}
	if !strings.Contains(err.Error(), "more than 10 malformed lines") {
		t.Fatalf("err = %v", err)
	}
	last := rep.Reports[len(rep.Reports)-1]
	if last.File != AccessesFile || len(last.Errors) != 10 {
		t.Fatalf("aborting report = %+v", last)
	}
}

func TestPipelinedLongLines(t *testing.T) {
	// A line whose content reaches the 4 MiB scanner cap fails with
	// the same positioned bufio.ErrTooLong on both paths; one just
	// under parses fine. The long line sits after a valid one so the
	// error line number is exercised too.
	long := strings.Repeat("a", maxLineBytes)
	in := "u000\t100\n" + long + "\t5\n"
	_, _, perr := ReadUsersWith(strings.NewReader(in), ReadOptions{})
	_, _, serr := ReadUsersWith(strings.NewReader(in), ReadOptions{Sequential: true})
	sameErr(t, "too-long line", perr, serr)
	if perr == nil || !strings.Contains(perr.Error(), "token too long") {
		t.Fatalf("err = %v, want bufio.ErrTooLong", perr)
	}
	// Even lenient mode cannot salvage an over-long line.
	_, _, perr = ReadUsersWith(strings.NewReader(in), ReadOptions{Lenient: true})
	_, _, serr = ReadUsersWith(strings.NewReader(in), ReadOptions{Lenient: true, Sequential: true})
	sameErr(t, "too-long line lenient", perr, serr)
	if perr == nil {
		t.Fatal("lenient read accepted an over-long line")
	}

	ok := strings.Repeat("b", maxLineBytes-16)
	in = ok + "\t100\n"
	pu, prep, perr := ReadUsersWith(strings.NewReader(in), ReadOptions{})
	su, srep, serr := ReadUsersWith(strings.NewReader(in), ReadOptions{Sequential: true})
	sameErr(t, "near-cap line", perr, serr)
	if perr != nil {
		t.Fatal(perr)
	}
	if !reflect.DeepEqual(pu, su) || !reflect.DeepEqual(prep, srep) {
		t.Fatal("near-cap line parses differ")
	}
	if len(pu) != 1 || len(pu[0].Name) != maxLineBytes-16 {
		t.Fatalf("near-cap user mangled: %d users", len(pu))
	}
}

func TestPipelinedEdgeInputs(t *testing.T) {
	idx := map[string]UserID{"u000": 0}
	inputs := []string{
		"",
		"\n",
		"\r\n",
		"#only a comment\n",
		"u000\t1",                  // no trailing newline
		"u000\t1\r\n\r\nu000\t2\r", // CRLF endings, trailing CR
		"\t\n",
		strings.Repeat("u000\t7\n", 100000), // multi-block
	}
	for _, lenient := range []bool{false, true} {
		opts := ReadOptions{Lenient: lenient}
		for i, in := range inputs {
			pu, prep, perr := ReadUsersWith(strings.NewReader(in), opts)
			su, srep, serr := ReadUsersWith(strings.NewReader(in), seqOpts(opts))
			sameErr(t, fmt.Sprintf("users input %d", i), perr, serr)
			if !reflect.DeepEqual(pu, su) {
				t.Fatalf("input %d (lenient=%v): users differ:\n pipelined:  %+v\n sequential: %+v", i, lenient, pu, su)
			}
			if !reflect.DeepEqual(prep, srep) {
				t.Fatalf("input %d (lenient=%v): reports differ:\n pipelined:  %+v\n sequential: %+v", i, lenient, prep, srep)
			}
			ps, psrep, perr := ReadSnapshotWith(strings.NewReader(in), idx, opts)
			ss, ssrep, serr := ReadSnapshotWith(strings.NewReader(in), idx, seqOpts(opts))
			sameErr(t, fmt.Sprintf("snapshot input %d", i), perr, serr)
			if !reflect.DeepEqual(ps, ss) || !reflect.DeepEqual(psrep, ssrep) {
				t.Fatalf("input %d (lenient=%v): snapshots differ", i, lenient)
			}
		}
	}
}

func TestSnapshotSeriesPipelinedMatchesSequential(t *testing.T) {
	dir := t.TempDir()
	d := bigDataset()
	t0 := timeutil.Date(2016, time.March, 1)
	var snaps []*Snapshot
	for w := 0; w < 5; w++ {
		s := &Snapshot{Taken: t0.Add(timeutil.Days(7 * w))}
		for i := 0; i < 3000; i++ {
			s.Entries = append(s.Entries, SnapshotEntry{
				Path: fmt.Sprintf("/lustre/atlas/u%03d/w%d/f%04d", i%200, w, i),
				User: UserID(i % 200), Size: int64(i) * 1024, Stripes: 1 + i%4,
				ATime: s.Taken - timeutil.Time(i)})
		}
		snaps = append(snaps, s)
	}
	if err := WriteSnapshotSeries(dir, d.Users, snaps); err != nil {
		t.Fatal(err)
	}
	idx := NameIndex(d.Users)

	check := func(opts ReadOptions) ([]*Snapshot, []*ParseReport, error) {
		t.Helper()
		pg, pr, perr := LoadSnapshotSeriesWith(dir, idx, opts)
		sg, sr, serr := LoadSnapshotSeriesWith(dir, idx, seqOpts(opts))
		sameErr(t, "LoadSnapshotSeriesWith", perr, serr)
		if !reflect.DeepEqual(pg, sg) {
			t.Fatal("series snapshots differ between pipelined and sequential")
		}
		if !reflect.DeepEqual(pr, sr) {
			t.Fatalf("series reports differ:\n pipelined:  %+v\n sequential: %+v", pr, sr)
		}
		return pg, pr, perr
	}
	got, reps, err := check(ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || len(reps) != 5 {
		t.Fatalf("loaded %d snapshots, %d reports, want 5/5", len(got), len(reps))
	}
	for i, s := range got {
		if !reflect.DeepEqual(s, snaps[i]) {
			t.Fatalf("snapshot %d mangled in round trip", i)
		}
	}
	if reps[0].File == SnapshotFile || !strings.HasPrefix(reps[0].File, "snapshot-") {
		t.Fatalf("series report named %q, want the base file name", reps[0].File)
	}

	// Truncate the third file: lenient mode salvages a prefix and
	// flags that report Truncated — the closeFn error is no longer
	// swallowed — while strict mode refuses the series on both paths.
	matches, err := filepath.Glob(filepath.Join(dir, "snapshot-*.tsv.gz"))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(matches[2])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(matches[2], raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshotSeries(dir, idx); err == nil {
		t.Fatal("strict series load accepted truncated gzip")
	}
	if _, _, err := check(ReadOptions{}); err == nil {
		t.Fatal("strict series load accepted truncated gzip")
	}
	got, reps, err = check(ReadOptions{Lenient: true})
	if err != nil {
		t.Fatalf("lenient series load failed: %v", err)
	}
	if len(got) != 5 {
		t.Fatalf("lenient series load kept %d snapshots, want 5", len(got))
	}
	truncated := 0
	for _, r := range reps {
		if r.Truncated {
			truncated++
		}
	}
	if truncated != 1 {
		t.Fatalf("%d reports flagged Truncated, want exactly 1", truncated)
	}
}

func TestLoadSnapshotSeriesOrdersByTaken(t *testing.T) {
	// File names deliberately disagree with capture times: the result
	// must be ordered by Snapshot.Taken, the contract, on both paths.
	dir := t.TempDir()
	users := []User{{ID: 0, Name: "u000"}}
	later := &Snapshot{Taken: timeutil.Date(2016, time.June, 1),
		Entries: []SnapshotEntry{{Path: "/a", User: 0, Size: 1, Stripes: 1}}}
	earlier := &Snapshot{Taken: timeutil.Date(2016, time.January, 1),
		Entries: []SnapshotEntry{{Path: "/b", User: 0, Size: 2, Stripes: 1}}}
	// Lexically first file carries the later capture time.
	if err := WriteSnapshotFile(filepath.Join(dir, "snapshot-00-mislabeled.tsv.gz"), users, later); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshotFile(filepath.Join(dir, "snapshot-99-mislabeled.tsv.gz"), users, earlier); err != nil {
		t.Fatal(err)
	}
	idx := NameIndex(users)
	for _, opts := range []ReadOptions{{}, {Sequential: true}} {
		got, _, err := LoadSnapshotSeriesWith(dir, idx, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 || got[0].Taken != earlier.Taken || got[1].Taken != later.Taken {
			t.Fatalf("series not ordered by Taken (sequential=%v): %d, %d",
				opts.Sequential, got[0].Taken, got[1].Taken)
		}
	}
}

func TestWriteDatasetParallelMatchesSequential(t *testing.T) {
	d := bigDataset()
	pdir, sdir := t.TempDir(), t.TempDir()
	if err := WriteDatasetWith(pdir, d, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := WriteDatasetWith(sdir, d, WriteOptions{Sequential: true}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{UsersFile, JobsFile, AccessesFile, PubsFile, LoginsFile, TransfersFile, SnapshotFile} {
		pb, err := os.ReadFile(filepath.Join(pdir, name))
		if err != nil {
			t.Fatal(err)
		}
		sb, err := os.ReadFile(filepath.Join(sdir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pb, sb) {
			t.Fatalf("%s: parallel and sequential writes differ", name)
		}
	}
}

// truncateGzip cuts a gzipped trace file to half its compressed
// length: a strict read of it fails at close (unexpected EOF), a
// lenient read salvages the prefix and sets ParseReport.Truncated.
func truncateGzip(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestFanOutErrorPriority pins the concurrent fan-out's first-error-
// in-canonical-order rule when two files fail for different reasons in
// the same load. The fatal error of the canonically earlier file must
// win — on both paths, with identical text and identically truncated
// reports — regardless of which error class (MaxErrors cap vs a
// failed close on a cut-short gzip member) hits which file, and a
// fatal error on a later file must not erase an earlier file's
// non-fatal salvage report.
func TestFanOutErrorPriority(t *testing.T) {
	t.Run("MaxErrorsBeforeTruncation", func(t *testing.T) {
		// jobs trips the quarantine cap; accesses (canonically later)
		// is cut short. The cap error wins, the accesses report is
		// dropped exactly where a sequential stop-at-first-error read
		// would have left it.
		dir := t.TempDir()
		if err := WriteDataset(dir, sampleDataset()); err != nil {
			t.Fatal(err)
		}
		rewriteTrace(t, filepath.Join(dir, JobsFile), func(lines []string) []string {
			for i := 0; i < 20; i++ {
				lines = append(lines, fmt.Sprintf("garbage-%d", i))
			}
			return lines
		})
		truncateGzip(t, filepath.Join(dir, AccessesFile))
		_, rep, err := loadBoth(t, dir, ReadOptions{Lenient: true, MaxErrors: 5})
		if err == nil {
			t.Fatal("load survived past MaxErrors")
		}
		if !strings.Contains(err.Error(), JobsFile) || !strings.Contains(err.Error(), "more than 5 malformed lines") {
			t.Fatalf("err = %v, want the jobs quarantine-cap error", err)
		}
		last := rep.Reports[len(rep.Reports)-1]
		if last.File != JobsFile {
			t.Fatalf("reports end at %s, want %s (later files' reports dropped)", last.File, JobsFile)
		}
	})

	t.Run("TruncationBeforeParseError", func(t *testing.T) {
		// Strict mode: jobs fails at close (cut-short gzip), accesses
		// holds a malformed line that also aborts. The close failure of
		// the canonically earlier file is the one reported.
		dir := t.TempDir()
		if err := WriteDataset(dir, sampleDataset()); err != nil {
			t.Fatal(err)
		}
		truncateGzip(t, filepath.Join(dir, JobsFile))
		rewriteTrace(t, filepath.Join(dir, AccessesFile), func(lines []string) []string {
			return append(lines, "garbage")
		})
		_, _, err := loadBoth(t, dir, ReadOptions{})
		if err == nil {
			t.Fatal("strict load accepted two damaged files")
		}
		if strings.Contains(err.Error(), AccessesFile) {
			t.Fatalf("err = %v, want the jobs close failure, not the later accesses parse error", err)
		}
	})

	t.Run("LaterFatalKeepsEarlierSalvage", func(t *testing.T) {
		// Lenient mode: accesses is cut short (salvaged, non-fatal),
		// publications (canonically later) trips the cap. The fatal cap
		// error surfaces, and the accesses salvage report survives in
		// front of it with its Truncated flag intact.
		dir := t.TempDir()
		if err := WriteDataset(dir, sampleDataset()); err != nil {
			t.Fatal(err)
		}
		truncateGzip(t, filepath.Join(dir, AccessesFile))
		rewriteTrace(t, filepath.Join(dir, PubsFile), func(lines []string) []string {
			for i := 0; i < 20; i++ {
				lines = append(lines, fmt.Sprintf("garbage-%d", i))
			}
			return lines
		})
		_, rep, err := loadBoth(t, dir, ReadOptions{Lenient: true, MaxErrors: 5})
		if err == nil {
			t.Fatal("load survived past MaxErrors")
		}
		if !strings.Contains(err.Error(), PubsFile) {
			t.Fatalf("err = %v, want the publications quarantine-cap error", err)
		}
		var accRep *ParseReport
		for _, r := range rep.Reports {
			if r.File == AccessesFile {
				accRep = r
			}
		}
		if accRep == nil || !accRep.Truncated {
			t.Fatalf("accesses salvage report lost or unflagged: %+v", accRep)
		}
	})
}

// TestPipelinedMultiMemberGzip pins quarantine line numbers across
// concatenated gzip members. gzip allows a file to be several complete
// deflate streams back to back (the standard output of `cat a.gz b.gz`
// or a rotated-and-joined log); Go's gzip.Reader splices them into one
// logical stream by default. Line numbers in ParseReports must be
// absolute positions in that logical stream — an assembler or scanner
// that restarted its count at a member boundary would report
// relative-to-member numbers, and nothing before this test would have
// caught it because every other fixture is a single member.
func TestPipelinedMultiMemberGzip(t *testing.T) {
	const perMember = 8000 // ~400KiB decompressed per member, spans pipeline blocks
	build := func(t *testing.T, members []map[int]string, truncateLast bool) (string, []int, int) {
		t.Helper()
		dir := t.TempDir()
		if err := WriteDataset(dir, sampleDataset()); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		line := 0
		var wantBad []int
		for mi, badAt := range members {
			start := buf.Len()
			gz := gzip.NewWriter(&buf)
			for i := 0; i < perMember; i++ {
				line++
				if junk, ok := badAt[i]; ok {
					fmt.Fprintf(gz, "%s\n", junk)
					wantBad = append(wantBad, line)
				} else {
					fmt.Fprintf(gz, "%d\tu000\t0\t5\t/lustre/atlas/u000/mm%06d.dat\n", line, line)
				}
			}
			if err := gz.Close(); err != nil {
				t.Fatal(err)
			}
			if truncateLast && mi == len(members)-1 {
				buf.Truncate(start + (buf.Len()-start)/2)
			}
		}
		if err := os.WriteFile(filepath.Join(dir, AccessesFile), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return dir, wantBad, line
	}

	t.Run("absolute line numbers", func(t *testing.T) {
		// Bad lines at a member's first row, its last row, and mid-member,
		// all in members ≥ 2 so every expected number exceeds perMember —
		// a per-member reset would be off by a full member's line count.
		dir, wantBad, total := build(t, []map[int]string{
			{},
			{0: "garbage-first-of-member-2", 100: "short", perMember - 1: "garbage-last-of-member-2"},
			{123: "x\tu000\t0\t5\t/p"},
		}, false)
		d, rep, err := loadBoth(t, dir, ReadOptions{Lenient: true})
		if err != nil {
			t.Fatal(err)
		}
		var accRep *ParseReport
		for _, r := range rep.Reports {
			if r.File == AccessesFile {
				accRep = r
			}
		}
		if accRep == nil {
			t.Fatal("no accesses report")
		}
		if accRep.Lines != total {
			t.Fatalf("Lines = %d, want %d across all members", accRep.Lines, total)
		}
		if len(accRep.Errors) != len(wantBad) {
			t.Fatalf("quarantined %d lines, want %d: %+v", len(accRep.Errors), len(wantBad), accRep.Errors)
		}
		for i, e := range accRep.Errors {
			if e.Line != wantBad[i] {
				t.Errorf("quarantine %d at line %d, want absolute line %d (member-relative reset?)", i, e.Line, wantBad[i])
			}
		}
		if want := total - len(wantBad); len(d.Accesses) != want {
			t.Fatalf("salvaged %d accesses, want %d", len(d.Accesses), want)
		}
		// Strict mode must abort with the same absolute position: the
		// first bad line is the first row of member 2.
		_, _, err = loadBoth(t, dir, ReadOptions{})
		if err == nil {
			t.Fatal("strict load accepted multi-member damage")
		}
		if want := fmt.Sprintf("line %d:", perMember+1); !strings.Contains(err.Error(), want) {
			t.Fatalf("strict err = %v, want it positioned at %q", err, want)
		}
	})

	t.Run("truncated final member", func(t *testing.T) {
		// A cut-short last member must not disturb the absolute numbers
		// of quarantines in earlier members, and the salvage must keep
		// every full line that made it through the inflate.
		dir, wantBad, _ := build(t, []map[int]string{
			{},
			{4321: "mid-member-2-garbage"},
			{},
		}, true)
		d, rep, err := loadBoth(t, dir, ReadOptions{Lenient: true})
		if err != nil {
			t.Fatal(err)
		}
		var accRep *ParseReport
		for _, r := range rep.Reports {
			if r.File == AccessesFile {
				accRep = r
			}
		}
		if accRep == nil || !accRep.Truncated {
			t.Fatalf("truncated final member not reported: %+v", accRep)
		}
		// Exactly the member-2 quarantine at its absolute line, plus at
		// most one extra: the inflate's final partial line at the cut
		// point, which the salvage quarantines as malformed before
		// flagging truncation. That fragment must sit inside the
		// truncated member — an earlier number would mean the count
		// reset at a member boundary.
		if len(accRep.Errors) < 1 || accRep.Errors[0].Line != wantBad[0] {
			t.Fatalf("quarantines = %+v, want the first at absolute line %d", accRep.Errors, wantBad[0])
		}
		if len(accRep.Errors) > 2 {
			t.Fatalf("quarantines = %+v, want at most the member-2 line and the cut fragment", accRep.Errors)
		}
		if len(accRep.Errors) == 2 && accRep.Errors[1].Line <= perMember*2 {
			t.Fatalf("cut-fragment quarantine at line %d, inside a fully-salvaged member", accRep.Errors[1].Line)
		}
		if len(d.Accesses) < perMember*2-1 || len(d.Accesses) >= perMember*3 {
			t.Fatalf("salvaged %d accesses, want the two full members plus a strict prefix of the third", len(d.Accesses))
		}
	})
}
