package trace

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"activedr/internal/timeutil"
)

func sampleDataset() *Dataset {
	t0 := timeutil.Date(2016, time.January, 1)
	users := []User{
		{ID: 0, Name: "u000", Created: t0, Archetype: "power"},
		{ID: 1, Name: "u001", Created: t0, Archetype: "dormant"},
		{ID: 2, Name: "u002", Created: t0},
	}
	return &Dataset{
		Users: users,
		Jobs: []Job{
			{User: 0, Submit: t0.Add(timeutil.Days(1)), Duration: timeutil.Hours(2), Cores: 32},
			{User: 2, Submit: t0.Add(timeutil.Days(3)), Duration: timeutil.Hours(10), Cores: 128},
		},
		Accesses: []Access{
			{TS: t0.Add(timeutil.Days(1)), User: 0, Create: true, Size: 4096, Path: "/lustre/atlas/u000/proj0/out.h5"},
			{TS: t0.Add(timeutil.Days(2)), User: 0, Create: false, Size: 4096, Path: "/lustre/atlas/u000/proj0/out.h5"},
		},
		Publications: []Publication{
			{TS: t0.Add(timeutil.Days(40)), Citations: 9, Authors: []UserID{0, 2}},
		},
		Snapshot: Snapshot{
			Taken: t0,
			Entries: []SnapshotEntry{
				{Path: "/lustre/atlas/u000/proj0/in.dat", User: 0, Size: 1 << 20, Stripes: 4, ATime: t0.Add(-timeutil.Days(10))},
				{Path: "/lustre/atlas/u001/old.dat", User: 1, Size: 1 << 30, Stripes: 1, ATime: t0.Add(-timeutil.Days(300))},
			},
		},
	}
}

func TestCoreHours(t *testing.T) {
	j := Job{Cores: 32, Duration: timeutil.Hours(2)}
	if got := j.CoreHours(); got != 64 {
		t.Fatalf("CoreHours = %v, want 64", got)
	}
}

func TestAuthorImpactEq8(t *testing.T) {
	p := Publication{Citations: 9, Authors: []UserID{5, 7, 9}}
	// First author, c=9, n=3, i=0 (1-based 1): (9+1)*(3-1+1) = 30.
	if got := p.AuthorImpact(5); got != 30 {
		t.Errorf("first author impact = %v, want 30", got)
	}
	if got := p.AuthorImpact(7); got != 20 {
		t.Errorf("second author impact = %v, want 20", got)
	}
	if got := p.AuthorImpact(9); got != 10 {
		t.Errorf("last author impact = %v, want 10", got)
	}
	if got := p.AuthorImpact(42); got != 0 {
		t.Errorf("non-author impact = %v, want 0", got)
	}
}

func TestSnapshotTotalBytes(t *testing.T) {
	d := sampleDataset()
	want := int64(1<<20 + 1<<30)
	if got := d.Snapshot.TotalBytes(); got != want {
		t.Fatalf("TotalBytes = %d, want %d", got, want)
	}
}

func TestValidateCatchesBadRecords(t *testing.T) {
	good := sampleDataset()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Dataset)
	}{
		{"sparse user IDs", func(d *Dataset) { d.Users[1].ID = 7 }},
		{"job unknown user", func(d *Dataset) { d.Jobs[0].User = 99 }},
		{"access unknown user", func(d *Dataset) { d.Accesses[0].User = -2 }},
		{"access out of order", func(d *Dataset) { d.Accesses[1].TS = d.Accesses[0].TS - 1 }},
		{"pub without authors", func(d *Dataset) { d.Publications[0].Authors = nil }},
		{"pub unknown author", func(d *Dataset) { d.Publications[0].Authors = []UserID{77} }},
		{"snapshot unknown user", func(d *Dataset) { d.Snapshot.Entries[0].User = 50 }},
		{"snapshot negative size", func(d *Dataset) { d.Snapshot.Entries[0].Size = -1 }},
	}
	for _, c := range cases {
		d := sampleDataset()
		c.mutate(d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: Validate did not fail", c.name)
		}
	}
}

func TestSortAccessesAndJobs(t *testing.T) {
	d := sampleDataset()
	d.Accesses[0], d.Accesses[1] = d.Accesses[1], d.Accesses[0]
	d.Jobs[0], d.Jobs[1] = d.Jobs[1], d.Jobs[0]
	d.SortAccesses()
	d.SortJobs()
	if d.Accesses[0].TS > d.Accesses[1].TS {
		t.Error("SortAccesses did not sort")
	}
	if d.Jobs[0].Submit > d.Jobs[1].Submit {
		t.Error("SortJobs did not sort")
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("sorted dataset invalid: %v", err)
	}
}

func TestUserRoundTrip(t *testing.T) {
	d := sampleDataset()
	var buf bytes.Buffer
	if err := WriteUsers(&buf, d.Users); err != nil {
		t.Fatal(err)
	}
	got, err := ReadUsers(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d.Users) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, d.Users)
	}
}

func TestJobRoundTrip(t *testing.T) {
	d := sampleDataset()
	var buf bytes.Buffer
	if err := WriteJobs(&buf, d.Users, d.Jobs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJobs(&buf, NameIndex(d.Users))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d.Jobs) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, d.Jobs)
	}
}

func TestAccessRoundTrip(t *testing.T) {
	d := sampleDataset()
	var buf bytes.Buffer
	if err := WriteAccesses(&buf, d.Users, d.Accesses); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAccesses(&buf, NameIndex(d.Users))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d.Accesses) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, d.Accesses)
	}
}

func TestPublicationRoundTrip(t *testing.T) {
	d := sampleDataset()
	var buf bytes.Buffer
	if err := WritePublications(&buf, d.Users, d.Publications); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPublications(&buf, NameIndex(d.Users))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d.Publications) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, d.Publications)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	d := sampleDataset()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, d.Users, &d.Snapshot); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf, NameIndex(d.Users))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*got, d.Snapshot) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, d.Snapshot)
	}
}

func TestDatasetDirRoundTrip(t *testing.T) {
	d := sampleDataset()
	dir := t.TempDir()
	if err := WriteDataset(dir, d); err != nil {
		t.Fatal(err)
	}
	// Jobs/accesses/snapshot must actually be gzipped.
	raw, err := os.ReadFile(filepath.Join(dir, JobsFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Error("jobs file is not gzipped")
	}
	got, err := LoadDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("dataset round trip mismatch")
	}
}

func TestReadersRejectMalformedLines(t *testing.T) {
	idx := map[string]UserID{"u000": 0}
	cases := []struct {
		name string
		fn   func(string) error
	}{
		{"users bad ts", func(s string) error { _, err := ReadUsers(strings.NewReader(s)); return err }},
		{"jobs", func(s string) error { _, err := ReadJobs(strings.NewReader(s), idx); return err }},
		{"accesses", func(s string) error { _, err := ReadAccesses(strings.NewReader(s), idx); return err }},
		{"pubs", func(s string) error { _, err := ReadPublications(strings.NewReader(s), idx); return err }},
		{"snapshot", func(s string) error { _, err := ReadSnapshot(strings.NewReader(s), idx); return err }},
	}
	bad := map[string][]string{
		"users bad ts": {"u000\tnotanumber", "solo"},
		"jobs":         {"u000\t1\t2", "nosuch\t1\t2\t3", "u000\tx\t2\t3"},
		"accesses":     {"1\tu000\t0\t5", "1\tnosuch\t0\t5\t/p", "x\tu000\t0\t5\t/p", "1\tu000\t0\t5\t"},
		"pubs":         {"1\t2", "1\tx\tu000", "1\t2\tnosuch"},
		"snapshot":     {"u000\t1\t2\t3", "nosuch\t1\t2\t3\t/p", "u000\tx\t2\t3\t/p", "#taken\tzzz"},
	}
	for _, c := range cases {
		for _, line := range bad[c.name] {
			if err := c.fn(line + "\n"); err == nil {
				t.Errorf("%s: line %q accepted", c.name, line)
			}
		}
	}
}

func TestReadersSkipCommentsAndBlanks(t *testing.T) {
	in := "# comment\n\nu000\t100\tpower\n"
	users, err := ReadUsers(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(users) != 1 || users[0].Name != "u000" {
		t.Fatalf("got %+v", users)
	}
}

func TestTruncatedGzipFails(t *testing.T) {
	dir := t.TempDir()
	d := sampleDataset()
	if err := WriteDataset(dir, d); err != nil {
		t.Fatal(err)
	}
	// Corrupt the accesses file: valid gzip header, truncated body.
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	gz.Write([]byte(strings.Repeat("1\tu000\t0\t5\t/lustre/atlas/u000/f\n", 100)))
	gz.Close()
	trunc := buf.Bytes()[:buf.Len()/2]
	if err := os.WriteFile(filepath.Join(dir, AccessesFile), trunc, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDataset(dir); err == nil {
		t.Fatal("LoadDataset accepted truncated gzip")
	}
}

func TestLoadDatasetMissingFile(t *testing.T) {
	if _, err := LoadDataset(t.TempDir()); err == nil {
		t.Fatal("LoadDataset of empty dir succeeded")
	}
}

func TestUserByName(t *testing.T) {
	d := sampleDataset()
	if d.UserByName("u002") != 2 {
		t.Error("UserByName failed for existing user")
	}
	if d.UserByName("ghost") != NoUser {
		t.Error("UserByName should return NoUser for unknown")
	}
}
