package trace

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestCloseAllRunsEveryLayer(t *testing.T) {
	var order []string
	mk := func(name string, err error) func() error {
		return func() error {
			order = append(order, name)
			return err
		}
	}
	errInner := errors.New("inner close failed")
	errOuter := errors.New("outer close failed")

	// All layers run even when the first fails, and every failure is
	// reachable via errors.Is on the joined result.
	err := closeAll(mk("gz", errInner), mk("flush", nil), mk("file", errOuter))()
	if want := []string{"gz", "flush", "file"}; !reflect.DeepEqual(order, want) {
		t.Fatalf("close order = %v, want %v", order, want)
	}
	if !errors.Is(err, errInner) || !errors.Is(err, errOuter) {
		t.Fatalf("joined error %v does not carry both layer errors", err)
	}

	order = nil
	if err := closeAll(mk("a", nil), mk("b", nil))(); err != nil {
		t.Fatalf("all-clean closeAll returned %v", err)
	}
	if len(order) != 2 {
		t.Fatalf("clean close ran %d layers, want 2", len(order))
	}
}

func TestOpenWriterCloserFlushes(t *testing.T) {
	for _, name := range []string{"plain.tsv", "packed.tsv.gz"} {
		path := filepath.Join(t.TempDir(), name)
		w, closeFn, err := openWriter(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write([]byte("hello\n")); err != nil {
			t.Fatal(err)
		}
		if err := closeFn(); err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
		r, closeRd, err := openReader(path)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(r); err != nil {
			t.Fatal(err)
		}
		if err := closeRd(); err != nil {
			t.Fatalf("%s: reader close: %v", name, err)
		}
		if buf.String() != "hello\n" {
			t.Fatalf("%s: read back %q", name, buf.String())
		}
	}
}

func TestLenientQuarantinesMalformedLines(t *testing.T) {
	idx := map[string]UserID{"u000": 0}
	lenient := ReadOptions{Lenient: true}

	t.Run("users", func(t *testing.T) {
		in := "u000\t100\tpower\nsolo\nu001\tnotanumber\nu002\t300\n"
		users, rep, err := ReadUsersWith(strings.NewReader(in), lenient)
		if err != nil {
			t.Fatal(err)
		}
		if len(users) != 2 || users[0].Name != "u000" || users[1].Name != "u002" {
			t.Fatalf("salvaged users = %+v", users)
		}
		// Quarantined lines must not consume IDs: survivors stay dense.
		if users[0].ID != 0 || users[1].ID != 1 {
			t.Fatalf("IDs not dense after quarantine: %+v", users)
		}
		if len(rep.Errors) != 2 {
			t.Fatalf("quarantined %d lines, want 2: %+v", len(rep.Errors), rep.Errors)
		}
		if rep.Errors[0].Line != 2 || rep.Errors[1].Line != 3 {
			t.Fatalf("wrong quarantine lines: %+v", rep.Errors)
		}
		if rep.Errors[0].File != UsersFile || rep.Errors[0].Reason == "" {
			t.Fatalf("quarantine entry incomplete: %+v", rep.Errors[0])
		}
		if rep.Lines != 4 || rep.Clean() {
			t.Fatalf("report = %+v", rep)
		}
		// The same input aborts a strict read.
		if _, err := ReadUsers(strings.NewReader(in)); err == nil {
			t.Fatal("strict read accepted malformed input")
		}
	})

	t.Run("jobs", func(t *testing.T) {
		in := "u000\t1\t2\t3\nnosuch\t1\t2\t3\nu000\tx\t2\t3\nu000\t9\t9\t9\n"
		jobs, rep, err := ReadJobsWith(strings.NewReader(in), idx, lenient)
		if err != nil {
			t.Fatal(err)
		}
		if len(jobs) != 2 || len(rep.Errors) != 2 {
			t.Fatalf("jobs=%d errors=%d, want 2/2", len(jobs), len(rep.Errors))
		}
		if !strings.Contains(rep.Errors[0].Reason, "unknown user") {
			t.Fatalf("reason = %q", rep.Errors[0].Reason)
		}
	})

	t.Run("accesses", func(t *testing.T) {
		in := "1\tu000\t0\t5\t/p\n1\tu000\t0\t5\t\n2\tu000\t1\t7\t/q\n"
		accs, rep, err := ReadAccessesWith(strings.NewReader(in), idx, lenient)
		if err != nil {
			t.Fatal(err)
		}
		if len(accs) != 2 || len(rep.Errors) != 1 {
			t.Fatalf("accesses=%d errors=%d, want 2/1", len(accs), len(rep.Errors))
		}
	})

	t.Run("publications", func(t *testing.T) {
		in := "1\t2\tu000\n1\t2\tnosuch\n3\t4\tu000\n"
		pubs, rep, err := ReadPublicationsWith(strings.NewReader(in), idx, lenient)
		if err != nil {
			t.Fatal(err)
		}
		if len(pubs) != 2 || len(rep.Errors) != 1 {
			t.Fatalf("pubs=%d errors=%d, want 2/1", len(pubs), len(rep.Errors))
		}
	})

	t.Run("snapshot", func(t *testing.T) {
		in := "#taken\t99\nu000\t1\t2\t3\t/p\nu000\tx\t2\t3\t/q\n#taken\tzzz\n"
		s, rep, err := ReadSnapshotWith(strings.NewReader(in), idx, lenient)
		if err != nil {
			t.Fatal(err)
		}
		if int64(s.Taken) != 99 || len(s.Entries) != 1 {
			t.Fatalf("snapshot = %+v", s)
		}
		if len(rep.Errors) != 2 {
			t.Fatalf("errors = %+v", rep.Errors)
		}
	})

	t.Run("logins", func(t *testing.T) {
		in := "1\tu000\nbroken\n2\tu000\n"
		logins, rep, err := ReadLoginsWith(strings.NewReader(in), idx, lenient)
		if err != nil {
			t.Fatal(err)
		}
		if len(logins) != 2 || len(rep.Errors) != 1 {
			t.Fatalf("logins=%d errors=%d, want 2/1", len(logins), len(rep.Errors))
		}
	})

	t.Run("transfers", func(t *testing.T) {
		in := "1\tu000\tin\t5\n1\tu000\tsideways\t5\n2\tu000\tout\t7\n"
		xs, rep, err := ReadTransfersWith(strings.NewReader(in), idx, lenient)
		if err != nil {
			t.Fatal(err)
		}
		if len(xs) != 2 || len(rep.Errors) != 1 {
			t.Fatalf("transfers=%d errors=%d, want 2/1", len(xs), len(rep.Errors))
		}
		if !strings.Contains(rep.Errors[0].Reason, "bad direction") {
			t.Fatalf("reason = %q", rep.Errors[0].Reason)
		}
	})
}

func TestLenientMaxErrorsAborts(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 10; i++ {
		sb.WriteString("garbage-line\n")
	}
	_, rep, err := ReadUsersWith(strings.NewReader(sb.String()), ReadOptions{Lenient: true, MaxErrors: 3})
	if err == nil {
		t.Fatal("lenient read survived past MaxErrors")
	}
	if !strings.Contains(err.Error(), "more than 3 malformed lines") {
		t.Fatalf("err = %v", err)
	}
	if len(rep.Errors) != 3 {
		t.Fatalf("quarantined %d, want exactly MaxErrors=3", len(rep.Errors))
	}

	// Exactly at the cap still succeeds.
	users, rep, err := ReadUsersWith(strings.NewReader("bad\nbad\nbad\nu000\t1\n"),
		ReadOptions{Lenient: true, MaxErrors: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(users) != 1 || len(rep.Errors) != 3 {
		t.Fatalf("users=%d errors=%d", len(users), len(rep.Errors))
	}
}

func TestLenientMatchesStrictOnCleanInput(t *testing.T) {
	d := sampleDataset()
	dir := t.TempDir()
	if err := WriteDataset(dir, d); err != nil {
		t.Fatal(err)
	}
	strict, err := LoadDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, rep, err := LoadDatasetWith(dir, ReadOptions{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("clean dataset reported dirty: %s", rep.Summary())
	}
	if !reflect.DeepEqual(got, strict) {
		t.Fatal("lenient load of clean dataset differs from strict load")
	}
	if rep.Summary() != "dataset: clean" {
		t.Fatalf("Summary = %q", rep.Summary())
	}
}

func TestLenientSalvagesTruncatedGzip(t *testing.T) {
	dir := t.TempDir()
	d := sampleDataset()
	if err := WriteDataset(dir, d); err != nil {
		t.Fatal(err)
	}
	// Replace the accesses file with a valid gzip stream cut in half:
	// the flate layer reports io.ErrUnexpectedEOF partway through.
	// Varied lines keep the stream incompressible enough that the cut
	// lands mid-data with a real salvageable prefix.
	const total = 2000
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	for i := 0; i < total; i++ {
		fmt.Fprintf(gz, "%d\tu000\t0\t5\t/lustre/atlas/u000/f%04d-%x\n", i, i, i*2654435761)
	}
	gz.Close()
	trunc := buf.Bytes()[:buf.Len()/2]
	if err := os.WriteFile(filepath.Join(dir, AccessesFile), trunc, 0o644); err != nil {
		t.Fatal(err)
	}

	// Strict load still refuses the truncated stream.
	if _, err := LoadDataset(dir); err == nil {
		t.Fatal("strict LoadDataset accepted truncated gzip")
	}

	got, rep, err := LoadDatasetWith(dir, ReadOptions{Lenient: true})
	if err != nil {
		t.Fatalf("lenient load failed: %v", err)
	}
	if !rep.Truncated() {
		t.Fatalf("truncation not reported: %s", rep.Summary())
	}
	if len(got.Accesses) == 0 || len(got.Accesses) >= total {
		t.Fatalf("salvaged %d accesses, want a proper non-empty prefix", len(got.Accesses))
	}
	for i, a := range got.Accesses {
		if a.User != 0 || a.Size != 5 || int64(a.TS) != int64(i) {
			t.Fatalf("salvaged record %d corrupted: %+v", i, a)
		}
	}
	// The other files were intact.
	if !reflect.DeepEqual(got.Users, d.Users) || len(got.Jobs) != len(d.Jobs) {
		t.Fatal("intact files damaged by lenient load")
	}
	if rep.Clean() {
		t.Fatal("dirty dataset reported clean")
	}
	if !strings.Contains(rep.Summary(), "truncated") {
		t.Fatalf("Summary = %q", rep.Summary())
	}
}

func TestLenientUnknownUserCascade(t *testing.T) {
	// A quarantined user row makes that user's job rows unknown; in
	// lenient mode the damage stays contained to those rows.
	dir := t.TempDir()
	d := sampleDataset()
	if err := WriteDataset(dir, d); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, UsersFile))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")
	// Corrupt the last user's row (u002 authors a publication and a job).
	lines[len(lines)-1] = "u002\tnot-a-timestamp"
	if err := os.WriteFile(filepath.Join(dir, UsersFile),
		[]byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, rep, err := LoadDatasetWith(dir, ReadOptions{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Users) != 2 {
		t.Fatalf("users = %+v", got.Users)
	}
	if rep.Errors() < 3 { // user row + u002's job + u002's publication
		t.Fatalf("cascade quarantined %d rows: %s", rep.Errors(), rep.Summary())
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("salvaged dataset invalid: %v", err)
	}
}

func TestParseErrorString(t *testing.T) {
	e := ParseError{File: "jobs.tsv.gz", Line: 7, Reason: "want 4 fields, got 2"}
	if got := e.String(); got != "jobs.tsv.gz:7: want 4 fields, got 2" {
		t.Fatalf("String = %q", got)
	}
}

func TestParseReportSummary(t *testing.T) {
	clean := &ParseReport{File: "users.tsv", Lines: 5}
	if !clean.Clean() || !strings.Contains(clean.Summary(), "clean") {
		t.Fatalf("clean report: %q", clean.Summary())
	}
	var nilRep *ParseReport
	if !nilRep.Clean() {
		t.Fatal("nil report must be clean")
	}
	dirty := &ParseReport{File: "users.tsv", Lines: 5,
		Errors: []ParseError{{File: "users.tsv", Line: 2, Reason: "x"}}, Truncated: true}
	s := dirty.Summary()
	if !strings.Contains(s, "1 quarantined") || !strings.Contains(s, "truncated") {
		t.Fatalf("dirty summary: %q", s)
	}
}
