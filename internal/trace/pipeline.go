package trace

// Pipelined trace ingestion. The default read path splits every file into
// three stages — a reader goroutine inflating the stream into pooled
// line blocks, parser workers decoding blocks concurrently
// (decode.go), and an in-order assembler — so decode cost overlaps
// gzip inflation and, across files, other readers. The assembler
// applies blocks strictly in input order and replays per-line events
// (quarantines, #taken headers) against the ParseReport, which keeps
// record order, quarantine line numbers, MaxErrors short-circuiting,
// and truncated-input salvage bit-identical to the sequential path
// (ReadOptions.Sequential); the equivalence tests in pipeline_test.go
// hold both paths to that.
//
// Scanner parity is the load-bearing invariant. bufio.Scanner as
// configured by lineScanner (a) splits on '\n' and drops one trailing
// '\r', (b) emits a final unterminated line, (c) on a non-EOF read
// error emits every buffered complete line plus the trailing partial
// before surfacing the error at line scanned+1, and (d) fails with
// bufio.ErrTooLong when a single line reaches maxLineBytes. The
// reader goroutine reproduces all four: blocks are sealed at the last
// newline with the partial tail carried into the next block, buffered
// bytes are flushed as a final block on EOF or read error, and a
// carry that reaches maxLineBytes without a newline (or a block whose
// first line does) aborts with ErrTooLong before the read error is
// ever observed, exactly as the scanner's full-buffer check fires
// before its next Read.

import (
	"bufio"
	"bytes"
	"io"
	"sync"

	"activedr/internal/parallel"
)

const (
	// pipeBlockSize is the sealed-block target. Big enough that
	// per-block channel traffic is noise next to parse cost, small
	// enough that a handful of in-flight arenas stay cache-friendly.
	pipeBlockSize = 512 << 10
	// maxLineBytes mirrors lineScanner's bufio.Scanner buffer cap: a
	// line whose content reaches this length is an ErrTooLong, on
	// both paths.
	maxLineBytes = 4 * 1024 * 1024
)

var takenPrefix = []byte("#taken\t")

// arenaPool recycles block arenas across files and loads: a dataset
// load opens seven files in quick succession, and re-zeroing half a
// megabyte per in-flight block each time shows up on a single-core
// profile.
var arenaPool = sync.Pool{New: func() any {
	b := make([]byte, pipeBlockSize)
	return &b
}}

// rowSpec describes one trace kind to the generic pipeline.
type rowSpec[T any] struct {
	name        string // logical file name for reports and errors
	snapshot    bool   // handle #taken header lines
	internPaths bool   // deduplicate path strings across rows
	recBytes    int    // rough encoded bytes per record (prealloc hint)
	parse       func(dc *decoder, line []byte, byName map[string]UserID) (T, error)
}

// eventKind tags the per-line anomalies a parser worker cannot apply
// itself: anything that mutates the ParseReport or the snapshot
// header must replay on the assembler, in input order.
type eventKind uint8

const (
	evQuarantine eventKind = iota
	evTaken
)

// rowEvent is one such anomaly, positioned relative to its block.
type rowEvent struct {
	kind      eventKind
	relLine   int    // 1-based physical line within the block
	dataCount int    // data lines in the block up to and including this one
	reason    string // quarantine reason, pre-rendered
	taken     int64  // evTaken: the header timestamp
}

// parseJob is one sealed block handed to a worker.
type parseJob struct {
	seq   int
	data  []byte // complete lines; the final block may lack a trailing '\n'
	arena []byte // backing storage, recycled by the assembler
}

// blockResult is one decoded block, reassembled by seq.
type blockResult[T any] struct {
	seq       int
	recs      []T
	events    []rowEvent
	lines     int // physical lines in the block
	dataLines int // ParseReport.Lines increments in the block
	arena     []byte
}

// readPipelined runs the three-stage pipeline over r. It returns the
// decoded records (nil when none, matching the sequential readers'
// never-appended slices), the last valid #taken timestamp for
// snapshot specs, and the ParseReport. sizeHint, when positive, is
// the uncompressed input size used to presize the record slice.
func readPipelined[T any](r io.Reader, byName map[string]UserID, opts ReadOptions, sizeHint int, spec rowSpec[T]) ([]T, int64, *ParseReport, error) {
	pool := parallel.NewPool(0)
	workers := pool.Ranks()
	nArenas := workers + 2

	free := make(chan []byte, nArenas)
	recsFree := make(chan []T, nArenas)
	jobs := make(chan parseJob, workers+1)
	results := make(chan blockResult[T], workers+1)
	done := make(chan struct{})

	// termErr is written by the reader before it closes jobs; poolErr
	// by the closer before it closes results. The assembler reads both
	// only after results is closed, so the channel closes order the
	// accesses.
	var termErr error
	var poolErr error

	go func() { // reader: inflate into arenas, seal at newlines
		defer close(jobs)
		seq := 0
		emit := func(data, arena []byte) bool {
			select {
			case jobs <- parseJob{seq: seq, data: data, arena: arena}:
				seq++
				return true
			case <-done:
				return false
			}
		}
		// Arenas are allocated lazily up to nArenas, then recycled
		// through free: a users.tsv that fits one block costs one
		// arena, a year-long access log settles into steady-state
		// reuse.
		allocated := 0
		getArena := func() []byte {
			select {
			case a := <-free:
				return a
			case <-done:
				return nil
			default:
			}
			if allocated < nArenas {
				allocated++
				return *arenaPool.Get().(*[]byte)
			}
			select {
			case a := <-free:
				return a
			case <-done:
				return nil
			}
		}
		var carry []byte // partial-line tail, owns its storage
		for {
			arena := getArena()
			if arena == nil {
				return
			}
			if need := len(carry) + pipeBlockSize; cap(arena) < need {
				arena = make([]byte, need)
			}
			arena = arena[:cap(arena)]
			n := copy(arena, carry)
			carry = carry[:0]
			var rerr error
			for n < len(arena) {
				m, e := r.Read(arena[n:])
				n += m
				if e != nil {
					rerr = e
					break
				}
			}
			data := arena[:n]
			eof := rerr == io.EOF
			first := bytes.IndexByte(data, '\n')
			// The full-buffer check fires before the scanner's next
			// Read ever would, so ErrTooLong wins over a pending read
			// error and nothing of the oversized line is emitted.
			if (first < 0 && n >= maxLineBytes) || first >= maxLineBytes {
				termErr = bufio.ErrTooLong
				return
			}
			if first < 0 { // no newline: all one partial line
				if eof || rerr != nil {
					if n > 0 {
						emit(data, arena)
					}
					if !eof {
						termErr = rerr
					}
					return
				}
				carry = append(carry, data...)
				free <- arena
				continue
			}
			if eof || rerr != nil {
				// Flush everything buffered, trailing partial
				// included: the scanner emits it as a final token
				// before surfacing the error.
				emit(data, arena)
				if !eof {
					termErr = rerr
				}
				return
			}
			last := bytes.LastIndexByte(data, '\n')
			if last+1 < n {
				carry = append(carry, data[last+1:n]...)
			}
			if !emit(data[:last+1], arena) {
				return
			}
		}
	}()

	go func() { // workers: decode blocks concurrently
		poolErr = pool.Workers(func(rank int) error {
			dc := newDecoder(spec.internPaths)
			for pb := range jobs {
				select {
				case <-done: // aborted: drain without parsing
					continue
				default:
				}
				res := decodeBlock(dc, pb, byName, spec, recsFree)
				select {
				case results <- res:
				case <-done:
				}
			}
			return nil
		})
		close(results)
	}()

	// Assembler: apply blocks in seq order, replaying events against
	// the report exactly as the sequential loop would.
	rep := &ParseReport{File: spec.name}
	var out []T
	if sizeHint > 0 {
		out = make([]T, 0, sizeHint/spec.recBytes+1)
	}
	var taken int64
	var abortErr error
	totalLines := 0
	pending := make(map[int]blockResult[T])
	next := 0
	apply := func(res blockResult[T]) {
		base := rep.Lines
		for _, ev := range res.events {
			switch ev.kind {
			case evTaken:
				taken = ev.taken
			case evQuarantine:
				rep.Lines = base + ev.dataCount
				if err := rep.quarantineAt(spec.name, totalLines+ev.relLine, opts, ev.reason); err != nil {
					abortErr = err
					return
				}
			}
		}
		rep.Lines = base + res.dataLines
		totalLines += res.lines
		out = append(out, res.recs...)
		select {
		case recsFree <- res.recs[:0]:
		default:
		}
		select {
		case free <- res.arena:
		default:
		}
	}
	for res := range results {
		if abortErr != nil {
			continue // already aborted: drain until the pipeline winds down
		}
		pending[res.seq] = res
		for {
			nres, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			apply(nres)
			if abortErr != nil {
				close(done)
				break
			}
			next++
		}
	}
	// The pipeline is fully wound down (results closed ⇒ reader and
	// workers joined): hand the idle arenas back to the shared pool.
	for {
		select {
		case a := <-free:
			arenaPool.Put(&a)
			continue
		default:
		}
		break
	}
	if abortErr != nil {
		return nil, 0, rep, abortErr
	}
	if poolErr != nil {
		return nil, 0, rep, poolErr
	}
	if termErr != nil {
		if err := rep.finishAt(spec.name, totalLines, opts, termErr); err != nil {
			return nil, 0, rep, err
		}
	}
	if len(out) == 0 {
		out = nil // the sequential readers never allocate an empty slice
	}
	return out, taken, rep, nil
}

// decodeBlock parses one block's lines with the worker's decoder,
// mirroring the sequential loop: blanks and comments are skipped
// without counting, #taken headers (snapshot specs only) become
// events, data lines either decode into records or quarantine events.
func decodeBlock[T any](dc *decoder, pb parseJob, byName map[string]UserID, spec rowSpec[T], recsFree chan []T) blockResult[T] {
	var recs []T
	select {
	case recs = <-recsFree:
	default:
		recs = make([]T, 0, len(pb.data)/spec.recBytes+1)
	}
	res := blockResult[T]{seq: pb.seq, arena: pb.arena}
	data := pb.data
	for len(data) > 0 {
		var line []byte
		if j := bytes.IndexByte(data, '\n'); j >= 0 {
			line, data = data[:j], data[j+1:]
		} else {
			line, data = data, nil
		}
		res.lines++
		if n := len(line); n > 0 && line[n-1] == '\r' {
			line = line[:n-1] // dropCR, as bufio.ScanLines does
		}
		if len(line) == 0 {
			continue
		}
		if line[0] == '#' {
			if spec.snapshot && bytes.HasPrefix(line, takenPrefix) {
				ts, err := parseIntBytes(line[len(takenPrefix):])
				if err != nil {
					res.dataLines++
					res.events = append(res.events, rowEvent{kind: evQuarantine,
						relLine: res.lines, dataCount: res.dataLines, reason: "bad taken timestamp"})
				} else {
					res.events = append(res.events, rowEvent{kind: evTaken, taken: ts})
				}
			}
			continue
		}
		res.dataLines++
		rec, err := spec.parse(dc, line, byName)
		if err != nil {
			res.events = append(res.events, rowEvent{kind: evQuarantine,
				relLine: res.lines, dataCount: res.dataLines, reason: err.Error()})
			continue
		}
		recs = append(recs, rec)
	}
	res.recs = recs
	return res
}

// Per-kind pipeline specs. recBytes slightly undershoots the real
// encoded row width so the presized record slice errs toward one
// over-allocation instead of append regrowth.
var (
	userSpec = rowSpec[User]{name: UsersFile, recBytes: 16,
		parse: func(dc *decoder, line []byte, _ map[string]UserID) (User, error) {
			return decodeUser(dc, line)
		}}
	jobSpec = rowSpec[Job]{name: JobsFile, recBytes: 20, parse: decodeJob}
	accessSpec = rowSpec[Access]{name: AccessesFile, recBytes: 32, internPaths: true,
		parse: decodeAccess}
	pubSpec      = rowSpec[Publication]{name: PubsFile, recBytes: 24, parse: decodePublication}
	snapshotSpec = rowSpec[SnapshotEntry]{name: SnapshotFile, recBytes: 40, snapshot: true,
		parse: decodeSnapshotEntry}
	loginSpec    = rowSpec[Login]{name: LoginsFile, recBytes: 12, parse: decodeLogin}
	transferSpec = rowSpec[Transfer]{name: TransfersFile, recBytes: 20, parse: decodeTransfer}
)
