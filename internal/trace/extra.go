package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"activedr/internal/timeutil"
)

// The paper's Table 2 lists activity types beyond job submissions and
// publications: shell logins, file accesses, and data-transfer
// operations on the operations side. Login and Transfer make those
// trackable first-class trace kinds; administrators can feed any
// subset into the activeness evaluator.

// Login is one shell-login record. Its activeness impact is a
// constant 1 per login (frequency is the signal).
type Login struct {
	User UserID
	TS   timeutil.Time
}

// TransferDir distinguishes ingest from retrieval.
type TransferDir int

const (
	// TransferIn moves data onto the scratch system.
	TransferIn TransferDir = iota
	// TransferOut moves data off it.
	TransferOut
)

// String names the direction.
func (d TransferDir) String() string {
	if d == TransferIn {
		return "in"
	}
	return "out"
}

// Transfer is one data-transfer-operation record (e.g. a Globus or
// hsi session). Its activeness impact is the moved gigabytes.
type Transfer struct {
	User  UserID
	TS    timeutil.Time
	Dir   TransferDir
	Bytes int64
}

// Impact returns the transfer's activeness impact in gigabytes.
func (t Transfer) Impact() float64 { return float64(t.Bytes) / 1e9 }

// Optional dataset files for the extra activity kinds.
const (
	LoginsFile    = "logins.tsv.gz"
	TransfersFile = "transfers.tsv.gz"
)

// WriteLogins writes a login log as TSV: ts, user.
func WriteLogins(w io.Writer, users []User, logins []Login) error {
	bw := bufio.NewWriter(w)
	bp := rowBufPool.Get().(*[]byte)
	defer rowBufPool.Put(bp)
	buf := *bp
	for i := range logins {
		l := &logins[i]
		buf = strconv.AppendInt(buf[:0], int64(l.TS), 10)
		buf = append(buf, '\t')
		buf = append(buf, users[l.User].Name...)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			*bp = buf
			return err
		}
	}
	*bp = buf
	return bw.Flush()
}

// ReadLogins parses a login log.
func ReadLogins(r io.Reader, byName map[string]UserID) ([]Login, error) {
	logins, _, err := ReadLoginsWith(r, byName, ReadOptions{})
	return logins, err
}

// ReadLoginsWith parses a login log under the given strictness.
func ReadLoginsWith(r io.Reader, byName map[string]UserID, opts ReadOptions) ([]Login, *ParseReport, error) {
	return readLoginsWithHint(r, byName, opts, 0)
}

func readLoginsWithHint(r io.Reader, byName map[string]UserID, opts ReadOptions, hint int) ([]Login, *ParseReport, error) {
	if opts.Sequential {
		return readLoginsSeq(r, byName, opts)
	}
	logins, _, rep, err := readPipelined(r, byName, opts, hint, loginSpec)
	if err != nil {
		return nil, rep, err
	}
	return logins, rep, nil
}

func readLoginsSeq(r io.Reader, byName map[string]UserID, opts ReadOptions) ([]Login, *ParseReport, error) {
	ls := newLineScanner(r, LoginsFile)
	rep := &ParseReport{File: LoginsFile}
	var logins []Login
	for ls.scan() {
		line := ls.text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rep.Lines++
		l, perr := parseLoginLine(line, byName)
		if perr != nil {
			if err := rep.quarantine(ls, opts, perr); err != nil {
				return nil, rep, err
			}
			continue
		}
		logins = append(logins, l)
	}
	if err := rep.finish(ls, opts); err != nil {
		return nil, rep, err
	}
	return logins, rep, nil
}

func parseLoginLine(line string, byName map[string]UserID) (Login, error) {
	parts := strings.Split(line, "\t")
	if len(parts) != 2 {
		return Login{}, fmt.Errorf("want 2 fields, got %d", len(parts))
	}
	ts, err := parseInt(parts[0])
	if err != nil {
		return Login{}, fmt.Errorf("bad timestamp %q", parts[0])
	}
	uid, ok := byName[parts[1]]
	if !ok {
		return Login{}, fmt.Errorf("unknown user %q", parts[1])
	}
	return Login{User: uid, TS: timeutil.Time(ts)}, nil
}

// WriteTransfers writes a transfer log as TSV: ts, user, dir, bytes.
func WriteTransfers(w io.Writer, users []User, xs []Transfer) error {
	bw := bufio.NewWriter(w)
	bp := rowBufPool.Get().(*[]byte)
	defer rowBufPool.Put(bp)
	buf := *bp
	for i := range xs {
		t := &xs[i]
		buf = strconv.AppendInt(buf[:0], int64(t.TS), 10)
		buf = append(buf, '\t')
		buf = append(buf, users[t.User].Name...)
		buf = append(buf, '\t')
		buf = append(buf, t.Dir.String()...)
		buf = append(buf, '\t')
		buf = strconv.AppendInt(buf, t.Bytes, 10)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			*bp = buf
			return err
		}
	}
	*bp = buf
	return bw.Flush()
}

// ReadTransfers parses a transfer log.
func ReadTransfers(r io.Reader, byName map[string]UserID) ([]Transfer, error) {
	xs, _, err := ReadTransfersWith(r, byName, ReadOptions{})
	return xs, err
}

// ReadTransfersWith parses a transfer log under the given strictness.
func ReadTransfersWith(r io.Reader, byName map[string]UserID, opts ReadOptions) ([]Transfer, *ParseReport, error) {
	return readTransfersWithHint(r, byName, opts, 0)
}

func readTransfersWithHint(r io.Reader, byName map[string]UserID, opts ReadOptions, hint int) ([]Transfer, *ParseReport, error) {
	if opts.Sequential {
		return readTransfersSeq(r, byName, opts)
	}
	xs, _, rep, err := readPipelined(r, byName, opts, hint, transferSpec)
	if err != nil {
		return nil, rep, err
	}
	return xs, rep, nil
}

func readTransfersSeq(r io.Reader, byName map[string]UserID, opts ReadOptions) ([]Transfer, *ParseReport, error) {
	ls := newLineScanner(r, TransfersFile)
	rep := &ParseReport{File: TransfersFile}
	var xs []Transfer
	for ls.scan() {
		line := ls.text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rep.Lines++
		t, perr := parseTransferLine(line, byName)
		if perr != nil {
			if err := rep.quarantine(ls, opts, perr); err != nil {
				return nil, rep, err
			}
			continue
		}
		xs = append(xs, t)
	}
	if err := rep.finish(ls, opts); err != nil {
		return nil, rep, err
	}
	return xs, rep, nil
}

func parseTransferLine(line string, byName map[string]UserID) (Transfer, error) {
	parts := strings.Split(line, "\t")
	if len(parts) != 4 {
		return Transfer{}, fmt.Errorf("want 4 fields, got %d", len(parts))
	}
	ts, err1 := parseInt(parts[0])
	bytes, err2 := parseInt(parts[3])
	if err1 != nil || err2 != nil {
		return Transfer{}, fmt.Errorf("bad numeric field in %q", line)
	}
	uid, ok := byName[parts[1]]
	if !ok {
		return Transfer{}, fmt.Errorf("unknown user %q", parts[1])
	}
	var dir TransferDir
	switch parts[2] {
	case "in":
		dir = TransferIn
	case "out":
		dir = TransferOut
	default:
		return Transfer{}, fmt.Errorf("bad direction %q", parts[2])
	}
	if bytes < 0 {
		return Transfer{}, fmt.Errorf("negative transfer size")
	}
	return Transfer{User: uid, TS: timeutil.Time(ts), Dir: dir, Bytes: bytes}, nil
}
