package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"activedr/internal/parallel"
	"activedr/internal/timeutil"
)

// Standard file names inside a dataset directory.
const (
	UsersFile    = "users.tsv"
	JobsFile     = "jobs.tsv.gz"
	AccessesFile = "accesses.tsv.gz"
	PubsFile     = "publications.tsv"
	SnapshotFile = "snapshot.tsv.gz"
)

// closeAll composes layered closers (innermost first) into one that
// always runs every layer and joins the failures with errors.Join, so
// an inner-layer error can neither mask an outer close error nor leak
// the outer layer entirely.
func closeAll(closers ...func() error) func() error {
	return func() error {
		var errs []error
		for _, c := range closers {
			if err := c(); err != nil {
				errs = append(errs, err)
			}
		}
		return errors.Join(errs...)
	}
}

// openReader opens path, transparently ungzipping *.gz. Gzipped
// inputs read the file through a large bufio layer so the flate
// decoder issues few syscalls. The returned closer closes both
// layers.
func openReader(path string) (io.Reader, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		return f, f.Close, nil
	}
	gz, err := gzip.NewReader(bufio.NewReaderSize(f, 256<<10))
	if err != nil {
		f.Close() //lint:allow unchecked-close the gzip open error wins; nothing was written
		return nil, nil, fmt.Errorf("trace: open %s: %w", path, err)
	}
	return gz, closeAll(gz.Close, f.Close), nil
}

// openWriter creates path, transparently gzipping *.gz. Gzip uses
// BestSpeed: trace files are intermediate artifacts, and the cheaper
// deflate roughly doubles tracegen throughput for a few percent of
// size.
func openWriter(path string) (io.Writer, func() error, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if !strings.HasSuffix(path, ".gz") {
		return bw, closeAll(bw.Flush, f.Close), nil
	}
	gz, _ := gzip.NewWriterLevel(bw, gzip.BestSpeed) // the level is a valid constant
	return gz, closeAll(gz.Close, bw.Flush, f.Close), nil
}

// uncompressedSizeHint estimates the uncompressed byte size of path
// so the pipelined readers can presize their record slices: plain
// files report their stat size, gzipped files the ISIZE trailer (the
// uncompressed length mod 2³² that every gzip member ends with).
// Zero means no hint — corrupt or unreadable inputs still parse, they
// just fall back to append growth.
func uncompressedSizeHint(path string) int {
	fi, err := os.Stat(path)
	if err != nil {
		return 0
	}
	if !strings.HasSuffix(path, ".gz") {
		return int(fi.Size())
	}
	if fi.Size() < 20 { // header (10) + trailer (8) + a little data
		return 0
	}
	f, err := os.Open(path)
	if err != nil {
		return 0
	}
	var tail [4]byte
	_, rerr := f.ReadAt(tail[:], fi.Size()-4)
	cerr := f.Close()
	if rerr != nil || cerr != nil {
		return 0
	}
	isize := int64(binary.LittleEndian.Uint32(tail[:]))
	// A truncated member's last 4 bytes are deflate data, not the real
	// trailer, so the value can be arbitrary garbage. TSV deflates at
	// single-digit ratios; a claim past 64x the compressed size is
	// noise — drop the hint rather than presize gigabytes.
	if isize > fi.Size()*64 {
		return 0
	}
	return int(isize)
}

// lineScanner wraps bufio.Scanner with a large buffer (snapshot rows
// carry long paths) and line counting for error messages. Only the
// sequential readers use it; the pipelined path reproduces its exact
// semantics (see pipeline.go).
type lineScanner struct {
	s    *bufio.Scanner
	line int
	name string
}

func newLineScanner(r io.Reader, name string) *lineScanner {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	return &lineScanner{s: s, name: name}
}

func (l *lineScanner) scan() bool {
	ok := l.s.Scan()
	if ok {
		l.line++
	}
	return ok
}

func (l *lineScanner) text() string { return l.s.Text() }

func (l *lineScanner) err() error {
	if e := l.s.Err(); e != nil {
		return fmt.Errorf("trace: %s line %d: %w", l.name, l.line+1, e)
	}
	return nil
}

func (l *lineScanner) errorf(format string, args ...any) error {
	return fmt.Errorf("trace: %s line %d: %s", l.name, l.line, fmt.Sprintf(format, args...))
}

func parseInt(s string) (int64, error) { return strconv.ParseInt(s, 10, 64) }

// rowBufPool recycles the per-call row-encoding buffers the writers
// build lines in, so concurrent dataset writes don't each grow a
// fresh one.
var rowBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 1024)
	return &b
}}

// --- users ---

// WriteUsers writes the user list as TSV: name, created, archetype.
func WriteUsers(w io.Writer, users []User) error {
	bw := bufio.NewWriter(w)
	bp := rowBufPool.Get().(*[]byte)
	defer rowBufPool.Put(bp)
	buf := *bp
	for i := range users {
		u := &users[i]
		buf = append(buf[:0], u.Name...)
		buf = append(buf, '\t')
		buf = strconv.AppendInt(buf, int64(u.Created), 10)
		buf = append(buf, '\t')
		buf = append(buf, u.Archetype...)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			*bp = buf
			return err
		}
	}
	*bp = buf
	return bw.Flush()
}

// ReadUsers parses a user list, assigning dense IDs in file order.
func ReadUsers(r io.Reader) ([]User, error) {
	users, _, err := ReadUsersWith(r, ReadOptions{})
	return users, err
}

// ReadUsersWith parses a user list under the given strictness;
// quarantined lines do not consume an ID.
func ReadUsersWith(r io.Reader, opts ReadOptions) ([]User, *ParseReport, error) {
	return readUsersWithHint(r, opts, 0)
}

func readUsersWithHint(r io.Reader, opts ReadOptions, hint int) ([]User, *ParseReport, error) {
	if opts.Sequential {
		return readUsersSeq(r, opts)
	}
	users, _, rep, err := readPipelined(r, nil, opts, hint, userSpec)
	if err != nil {
		return nil, rep, err
	}
	for i := range users {
		users[i].ID = UserID(i)
	}
	return users, rep, nil
}

func readUsersSeq(r io.Reader, opts ReadOptions) ([]User, *ParseReport, error) {
	ls := newLineScanner(r, UsersFile)
	rep := &ParseReport{File: UsersFile}
	var users []User
	for ls.scan() {
		line := ls.text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rep.Lines++
		parts := strings.Split(line, "\t")
		if len(parts) < 2 {
			if err := rep.quarantine(ls, opts, fmt.Errorf("want ≥2 fields, got %d", len(parts))); err != nil {
				return nil, rep, err
			}
			continue
		}
		created, err := parseInt(parts[1])
		if err != nil {
			if err := rep.quarantine(ls, opts, fmt.Errorf("bad created timestamp %q", parts[1])); err != nil {
				return nil, rep, err
			}
			continue
		}
		u := User{ID: UserID(len(users)), Name: parts[0], Created: timeutil.Time(created)}
		if len(parts) >= 3 {
			u.Archetype = parts[2]
		}
		users = append(users, u)
	}
	if err := rep.finish(ls, opts); err != nil {
		return nil, rep, err
	}
	return users, rep, nil
}

// --- jobs ---

// WriteJobs writes the job log as TSV: user, submit, duration_s, cores.
func WriteJobs(w io.Writer, users []User, jobs []Job) error {
	bw := bufio.NewWriter(w)
	bp := rowBufPool.Get().(*[]byte)
	defer rowBufPool.Put(bp)
	buf := *bp
	for i := range jobs {
		j := &jobs[i]
		buf = append(buf[:0], users[j.User].Name...)
		buf = append(buf, '\t')
		buf = strconv.AppendInt(buf, int64(j.Submit), 10)
		buf = append(buf, '\t')
		buf = strconv.AppendInt(buf, int64(j.Duration), 10)
		buf = append(buf, '\t')
		buf = strconv.AppendInt(buf, int64(j.Cores), 10)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			*bp = buf
			return err
		}
	}
	*bp = buf
	return bw.Flush()
}

// ReadJobs parses a job log using the name→ID index.
func ReadJobs(r io.Reader, byName map[string]UserID) ([]Job, error) {
	jobs, _, err := ReadJobsWith(r, byName, ReadOptions{})
	return jobs, err
}

// ReadJobsWith parses a job log under the given strictness.
func ReadJobsWith(r io.Reader, byName map[string]UserID, opts ReadOptions) ([]Job, *ParseReport, error) {
	return readJobsWithHint(r, byName, opts, 0)
}

func readJobsWithHint(r io.Reader, byName map[string]UserID, opts ReadOptions, hint int) ([]Job, *ParseReport, error) {
	if opts.Sequential {
		return readJobsSeq(r, byName, opts)
	}
	jobs, _, rep, err := readPipelined(r, byName, opts, hint, jobSpec)
	if err != nil {
		return nil, rep, err
	}
	return jobs, rep, nil
}

func readJobsSeq(r io.Reader, byName map[string]UserID, opts ReadOptions) ([]Job, *ParseReport, error) {
	ls := newLineScanner(r, JobsFile)
	rep := &ParseReport{File: JobsFile}
	var jobs []Job
	for ls.scan() {
		line := ls.text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rep.Lines++
		j, perr := parseJobLine(line, byName)
		if perr != nil {
			if err := rep.quarantine(ls, opts, perr); err != nil {
				return nil, rep, err
			}
			continue
		}
		jobs = append(jobs, j)
	}
	if err := rep.finish(ls, opts); err != nil {
		return nil, rep, err
	}
	return jobs, rep, nil
}

func parseJobLine(line string, byName map[string]UserID) (Job, error) {
	parts := strings.Split(line, "\t")
	if len(parts) != 4 {
		return Job{}, fmt.Errorf("want 4 fields, got %d", len(parts))
	}
	uid, ok := byName[parts[0]]
	if !ok {
		return Job{}, fmt.Errorf("unknown user %q", parts[0])
	}
	submit, err1 := parseInt(parts[1])
	dur, err2 := parseInt(parts[2])
	cores, err3 := parseInt(parts[3])
	if err1 != nil || err2 != nil || err3 != nil {
		return Job{}, fmt.Errorf("bad numeric field in %q", line)
	}
	return Job{
		User:     uid,
		Submit:   timeutil.Time(submit),
		Duration: timeutil.Duration(dur),
		Cores:    int(cores),
	}, nil
}

// --- accesses ---

// WriteAccesses writes the application log as TSV:
// ts, user, create, size, path.
func WriteAccesses(w io.Writer, users []User, accs []Access) error {
	bw := bufio.NewWriter(w)
	bp := rowBufPool.Get().(*[]byte)
	defer rowBufPool.Put(bp)
	buf := *bp
	for i := range accs {
		a := &accs[i]
		buf = strconv.AppendInt(buf[:0], int64(a.TS), 10)
		buf = append(buf, '\t')
		buf = append(buf, users[a.User].Name...)
		if a.Create {
			buf = append(buf, '\t', '1', '\t')
		} else {
			buf = append(buf, '\t', '0', '\t')
		}
		buf = strconv.AppendInt(buf, a.Size, 10)
		buf = append(buf, '\t')
		buf = append(buf, a.Path...)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			*bp = buf
			return err
		}
	}
	*bp = buf
	return bw.Flush()
}

// ReadAccesses parses an application log.
func ReadAccesses(r io.Reader, byName map[string]UserID) ([]Access, error) {
	accs, _, err := ReadAccessesWith(r, byName, ReadOptions{})
	return accs, err
}

// ReadAccessesWith parses an application log under the given
// strictness.
func ReadAccessesWith(r io.Reader, byName map[string]UserID, opts ReadOptions) ([]Access, *ParseReport, error) {
	return readAccessesWithHint(r, byName, opts, 0)
}

func readAccessesWithHint(r io.Reader, byName map[string]UserID, opts ReadOptions, hint int) ([]Access, *ParseReport, error) {
	if opts.Sequential {
		return readAccessesSeq(r, byName, opts)
	}
	accs, _, rep, err := readPipelined(r, byName, opts, hint, accessSpec)
	if err != nil {
		return nil, rep, err
	}
	return accs, rep, nil
}

func readAccessesSeq(r io.Reader, byName map[string]UserID, opts ReadOptions) ([]Access, *ParseReport, error) {
	ls := newLineScanner(r, AccessesFile)
	rep := &ParseReport{File: AccessesFile}
	var accs []Access
	for ls.scan() {
		line := ls.text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rep.Lines++
		a, perr := parseAccessLine(line, byName)
		if perr != nil {
			if err := rep.quarantine(ls, opts, perr); err != nil {
				return nil, rep, err
			}
			continue
		}
		accs = append(accs, a)
	}
	if err := rep.finish(ls, opts); err != nil {
		return nil, rep, err
	}
	return accs, rep, nil
}

func parseAccessLine(line string, byName map[string]UserID) (Access, error) {
	parts := strings.SplitN(line, "\t", 5)
	if len(parts) != 5 {
		return Access{}, fmt.Errorf("want 5 fields, got %d", len(parts))
	}
	ts, err1 := parseInt(parts[0])
	uid, ok := byName[parts[1]]
	create, err2 := parseInt(parts[2])
	size, err3 := parseInt(parts[3])
	if err1 != nil || err2 != nil || err3 != nil {
		return Access{}, fmt.Errorf("bad numeric field in %q", line)
	}
	if !ok {
		return Access{}, fmt.Errorf("unknown user %q", parts[1])
	}
	if parts[4] == "" {
		return Access{}, fmt.Errorf("empty path")
	}
	return Access{
		TS:     timeutil.Time(ts),
		User:   uid,
		Create: create != 0,
		Size:   size,
		Path:   parts[4],
	}, nil
}

// --- publications ---

// WritePublications writes the publication list as TSV:
// ts, citations, comma-joined author names.
func WritePublications(w io.Writer, users []User, pubs []Publication) error {
	bw := bufio.NewWriter(w)
	bp := rowBufPool.Get().(*[]byte)
	defer rowBufPool.Put(bp)
	buf := *bp
	for i := range pubs {
		p := &pubs[i]
		buf = strconv.AppendInt(buf[:0], int64(p.TS), 10)
		buf = append(buf, '\t')
		buf = strconv.AppendInt(buf, int64(p.Citations), 10)
		buf = append(buf, '\t')
		for k, a := range p.Authors {
			if k > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, users[a].Name...)
		}
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			*bp = buf
			return err
		}
	}
	*bp = buf
	return bw.Flush()
}

// ReadPublications parses a publication list.
func ReadPublications(r io.Reader, byName map[string]UserID) ([]Publication, error) {
	pubs, _, err := ReadPublicationsWith(r, byName, ReadOptions{})
	return pubs, err
}

// ReadPublicationsWith parses a publication list under the given
// strictness.
func ReadPublicationsWith(r io.Reader, byName map[string]UserID, opts ReadOptions) ([]Publication, *ParseReport, error) {
	return readPublicationsWithHint(r, byName, opts, 0)
}

func readPublicationsWithHint(r io.Reader, byName map[string]UserID, opts ReadOptions, hint int) ([]Publication, *ParseReport, error) {
	if opts.Sequential {
		return readPublicationsSeq(r, byName, opts)
	}
	pubs, _, rep, err := readPipelined(r, byName, opts, hint, pubSpec)
	if err != nil {
		return nil, rep, err
	}
	return pubs, rep, nil
}

func readPublicationsSeq(r io.Reader, byName map[string]UserID, opts ReadOptions) ([]Publication, *ParseReport, error) {
	ls := newLineScanner(r, PubsFile)
	rep := &ParseReport{File: PubsFile}
	var pubs []Publication
	for ls.scan() {
		line := ls.text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rep.Lines++
		p, perr := parsePublicationLine(line, byName)
		if perr != nil {
			if err := rep.quarantine(ls, opts, perr); err != nil {
				return nil, rep, err
			}
			continue
		}
		pubs = append(pubs, p)
	}
	if err := rep.finish(ls, opts); err != nil {
		return nil, rep, err
	}
	return pubs, rep, nil
}

func parsePublicationLine(line string, byName map[string]UserID) (Publication, error) {
	parts := strings.Split(line, "\t")
	if len(parts) != 3 {
		return Publication{}, fmt.Errorf("want 3 fields, got %d", len(parts))
	}
	ts, err1 := parseInt(parts[0])
	cites, err2 := parseInt(parts[1])
	if err1 != nil || err2 != nil {
		return Publication{}, fmt.Errorf("bad numeric field in %q", line)
	}
	names := strings.Split(parts[2], ",")
	authors := make([]UserID, 0, len(names))
	for _, name := range names {
		uid, ok := byName[name]
		if !ok {
			return Publication{}, fmt.Errorf("unknown author %q", name)
		}
		authors = append(authors, uid)
	}
	return Publication{
		TS:        timeutil.Time(ts),
		Citations: int(cites),
		Authors:   authors,
	}, nil
}

// --- snapshots ---

// WriteSnapshot writes a metadata snapshot as TSV with a header
// comment carrying the capture time: path rows are
// user, size, stripes, atime, path.
func WriteSnapshot(w io.Writer, users []User, s *Snapshot) error {
	bw := bufio.NewWriter(w)
	bp := rowBufPool.Get().(*[]byte)
	defer rowBufPool.Put(bp)
	buf := *bp
	buf = append(buf[:0], "#taken\t"...)
	buf = strconv.AppendInt(buf, int64(s.Taken), 10)
	buf = append(buf, '\n')
	if _, err := bw.Write(buf); err != nil {
		*bp = buf
		return err
	}
	for i := range s.Entries {
		e := &s.Entries[i]
		buf = append(buf[:0], users[e.User].Name...)
		buf = append(buf, '\t')
		buf = strconv.AppendInt(buf, e.Size, 10)
		buf = append(buf, '\t')
		buf = strconv.AppendInt(buf, int64(e.Stripes), 10)
		buf = append(buf, '\t')
		buf = strconv.AppendInt(buf, int64(e.ATime), 10)
		buf = append(buf, '\t')
		buf = append(buf, e.Path...)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			*bp = buf
			return err
		}
	}
	*bp = buf
	return bw.Flush()
}

// ReadSnapshot parses a metadata snapshot.
func ReadSnapshot(r io.Reader, byName map[string]UserID) (*Snapshot, error) {
	s, _, err := ReadSnapshotWith(r, byName, ReadOptions{})
	return s, err
}

// ReadSnapshotWith parses a metadata snapshot under the given
// strictness.
func ReadSnapshotWith(r io.Reader, byName map[string]UserID, opts ReadOptions) (*Snapshot, *ParseReport, error) {
	return readSnapshotWithHint(r, byName, opts, 0)
}

func readSnapshotWithHint(r io.Reader, byName map[string]UserID, opts ReadOptions, hint int) (*Snapshot, *ParseReport, error) {
	if opts.Sequential {
		return readSnapshotSeq(r, byName, opts)
	}
	entries, taken, rep, err := readPipelined(r, byName, opts, hint, snapshotSpec)
	if err != nil {
		return nil, rep, err
	}
	return &Snapshot{Taken: timeutil.Time(taken), Entries: entries}, rep, nil
}

func readSnapshotSeq(r io.Reader, byName map[string]UserID, opts ReadOptions) (*Snapshot, *ParseReport, error) {
	ls := newLineScanner(r, SnapshotFile)
	rep := &ParseReport{File: SnapshotFile}
	s := &Snapshot{}
	for ls.scan() {
		line := ls.text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#taken\t") {
			ts, err := parseInt(strings.TrimPrefix(line, "#taken\t"))
			if err != nil {
				rep.Lines++
				if err := rep.quarantine(ls, opts, errors.New("bad taken timestamp")); err != nil {
					return nil, rep, err
				}
				continue
			}
			s.Taken = timeutil.Time(ts)
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		rep.Lines++
		e, perr := parseSnapshotLine(line, byName)
		if perr != nil {
			if err := rep.quarantine(ls, opts, perr); err != nil {
				return nil, rep, err
			}
			continue
		}
		s.Entries = append(s.Entries, e)
	}
	if err := rep.finish(ls, opts); err != nil {
		return nil, rep, err
	}
	return s, rep, nil
}

func parseSnapshotLine(line string, byName map[string]UserID) (SnapshotEntry, error) {
	parts := strings.SplitN(line, "\t", 5)
	if len(parts) != 5 {
		return SnapshotEntry{}, fmt.Errorf("want 5 fields, got %d", len(parts))
	}
	uid, ok := byName[parts[0]]
	if !ok {
		return SnapshotEntry{}, fmt.Errorf("unknown user %q", parts[0])
	}
	size, err1 := parseInt(parts[1])
	stripes, err2 := parseInt(parts[2])
	atime, err3 := parseInt(parts[3])
	if err1 != nil || err2 != nil || err3 != nil {
		return SnapshotEntry{}, fmt.Errorf("bad numeric field in %q", line)
	}
	if parts[4] == "" {
		return SnapshotEntry{}, fmt.Errorf("empty path")
	}
	return SnapshotEntry{
		Path:    parts[4],
		User:    uid,
		Size:    size,
		Stripes: int(stripes),
		ATime:   timeutil.Time(atime),
	}, nil
}

// WriteSnapshotFile writes one metadata snapshot to path
// (transparently gzipped for .gz paths).
func WriteSnapshotFile(path string, users []User, s *Snapshot) error {
	w, closeFn, err := openWriter(path)
	if err != nil {
		return err
	}
	if err := WriteSnapshot(w, users, s); err != nil {
		closeFn()
		return fmt.Errorf("trace: write %s: %w", path, err)
	}
	if err := closeFn(); err != nil {
		return fmt.Errorf("trace: close %s: %w", path, err)
	}
	return nil
}

// ReadSnapshotFile reads one metadata snapshot from path.
func ReadSnapshotFile(path string, byName map[string]UserID) (*Snapshot, error) {
	r, closeFn, err := openReader(path)
	if err != nil {
		return nil, err
	}
	defer closeFn()
	s, err := ReadSnapshot(r, byName)
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	return s, nil
}

// WriteSnapshotSeries persists a series of weekly metadata snapshots
// under dir as snapshot-YYYYMMDD.tsv.gz — the artifact shape the
// paper's Spider II data ships as ("a series of gzipped text files").
// Files are written concurrently, one worker per snapshot.
func WriteSnapshotSeries(dir string, users []User, snaps []*Snapshot) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	errs := make([]error, len(snaps))
	pool := parallel.NewPool(0)
	if err := pool.RunShards(len(snaps), func(rank, lo, hi int) error {
		for i := lo; i < hi; i++ {
			name := fmt.Sprintf("snapshot-%s.tsv.gz", snaps[i].Taken.Go().Format("20060102"))
			errs[i] = WriteSnapshotFile(filepath.Join(dir, name), users, snaps[i])
		}
		return nil
	}); err != nil {
		return err
	}
	for _, err := range errs { // first failure in series order wins
		if err != nil {
			return err
		}
	}
	return nil
}

// LoadSnapshotSeries reads every snapshot-*.tsv.gz under dir, sorted
// by capture time.
func LoadSnapshotSeries(dir string, byName map[string]UserID) ([]*Snapshot, error) {
	snaps, _, err := LoadSnapshotSeriesWith(dir, byName, ReadOptions{})
	return snaps, err
}

// LoadSnapshotSeriesWith reads every snapshot-*.tsv.gz under dir
// under the given strictness, decoding one worker per file unless
// opts.Sequential. The snapshots are ordered by capture time —
// Snapshot.Taken is the contract, not the file names — with glob
// order breaking ties, so the result is deterministic under parallel
// decode. The per-file reports (named by base file name, glob order)
// run through the same lenient/truncation close handling as
// LoadDatasetWith: a cut-short gzip member surfaces as
// ParseReport.Truncated in lenient mode and as an error otherwise,
// instead of being silently dropped.
func LoadSnapshotSeriesWith(dir string, byName map[string]UserID, opts ReadOptions) ([]*Snapshot, []*ParseReport, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "snapshot-*.tsv.gz"))
	if err != nil {
		return nil, nil, err
	}
	// filepath.Glob returns lexically sorted paths: the deterministic
	// slot order both decode modes share.
	snaps := make([]*Snapshot, len(matches))
	reps := make([]*ParseReport, len(matches))
	errs := make([]error, len(matches))
	loadOne := func(i int) {
		path := matches[i]
		reps[i], errs[i] = loadTraceFileAt(path, opts, func(r io.Reader, hint int) (*ParseReport, error) {
			s, fr, e := readSnapshotWithHint(r, byName, opts, hint)
			if e != nil {
				return fr, e
			}
			snaps[i] = s
			return fr, nil
		})
		if reps[i] != nil {
			reps[i].File = filepath.Base(path)
		}
		if errs[i] != nil {
			errs[i] = fmt.Errorf("trace: %s: %w", path, errs[i])
		}
	}
	if opts.Sequential {
		for i := range matches {
			loadOne(i)
			if errs[i] != nil {
				break
			}
		}
	} else {
		pool := parallel.NewPool(0)
		if err := pool.RunShards(len(matches), func(rank, lo, hi int) error {
			for i := lo; i < hi; i++ {
				loadOne(i)
			}
			return nil
		}); err != nil {
			return nil, nil, err
		}
	}
	// First failure in glob order wins; its report (and those of the
	// files before it) are kept, later files' dropped — matching the
	// sequential stop-at-first-error shape.
	var out []*ParseReport
	for i := range matches {
		if reps[i] != nil {
			out = append(out, reps[i])
		}
		if errs[i] != nil {
			return nil, out, errs[i]
		}
	}
	sort.SliceStable(snaps, func(i, j int) bool { return snaps[i].Taken < snaps[j].Taken })
	return snaps, out, nil
}

// NameIndex builds the login-name → ID map used by the readers.
func NameIndex(users []User) map[string]UserID {
	m := make(map[string]UserID, len(users))
	for i := range users {
		m[users[i].Name] = users[i].ID
	}
	return m
}

// WriteOptions controls dataset writing.
type WriteOptions struct {
	// Sequential writes the trace files one at a time instead of
	// concurrently; the bytes written are identical either way.
	Sequential bool
}

// WriteDataset persists every trace kind under dir using the standard
// file names, writing files concurrently.
func WriteDataset(dir string, d *Dataset) error {
	return WriteDatasetWith(dir, d, WriteOptions{})
}

// WriteDatasetWith persists every trace kind under dir under the
// given options.
func WriteDatasetWith(dir string, d *Dataset, wopts WriteOptions) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(io.Writer) error) error {
		w, closeFn, err := openWriter(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := fn(w); err != nil {
			closeFn()
			return fmt.Errorf("trace: write %s: %w", name, err)
		}
		if err := closeFn(); err != nil {
			return fmt.Errorf("trace: close %s: %w", name, err)
		}
		return nil
	}
	type task struct {
		name string
		fn   func(io.Writer) error
	}
	tasks := []task{
		{UsersFile, func(w io.Writer) error { return WriteUsers(w, d.Users) }},
		{JobsFile, func(w io.Writer) error { return WriteJobs(w, d.Users, d.Jobs) }},
		{AccessesFile, func(w io.Writer) error { return WriteAccesses(w, d.Users, d.Accesses) }},
		{PubsFile, func(w io.Writer) error { return WritePublications(w, d.Users, d.Publications) }},
	}
	if len(d.Logins) > 0 {
		tasks = append(tasks, task{LoginsFile, func(w io.Writer) error { return WriteLogins(w, d.Users, d.Logins) }})
	}
	if len(d.Transfers) > 0 {
		tasks = append(tasks, task{TransfersFile, func(w io.Writer) error { return WriteTransfers(w, d.Users, d.Transfers) }})
	}
	tasks = append(tasks, task{SnapshotFile, func(w io.Writer) error { return WriteSnapshot(w, d.Users, &d.Snapshot) }})
	if wopts.Sequential {
		for _, t := range tasks {
			if err := write(t.name, t.fn); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(tasks))
	run := make([]func() error, len(tasks))
	for i, t := range tasks {
		i, t := i, t
		run[i] = func() error {
			errs[i] = write(t.name, t.fn)
			return nil
		}
	}
	pool := parallel.NewPool(0)
	if err := pool.Run(run); err != nil {
		return err
	}
	for _, err := range errs { // first failure in canonical order wins
		if err != nil {
			return err
		}
	}
	return nil
}

// LoadDataset reads every trace kind from dir and validates the
// result.
func LoadDataset(dir string) (*Dataset, error) {
	d, _, err := LoadDatasetWith(dir, ReadOptions{})
	return d, err
}

// loadTraceFileAt opens path, runs fn over it with the uncompressed
// size hint, and folds the close error into the lenient/truncation
// decision: a cut-short gzip member also fails its close, but the
// salvaged records are already in hand, so lenient mode accepts it
// when the read itself flagged the truncation.
func loadTraceFileAt(path string, opts ReadOptions, fn func(r io.Reader, hint int) (*ParseReport, error)) (*ParseReport, error) {
	hint := uncompressedSizeHint(path)
	r, closeFn, err := openReader(path)
	if err != nil {
		return nil, err
	}
	fr, ferr := fn(r, hint)
	cerr := closeFn()
	if ferr != nil {
		return fr, ferr
	}
	if cerr != nil {
		if opts.Lenient && fr != nil && fr.Truncated && isTruncation(cerr) {
			return fr, nil
		}
		return fr, cerr
	}
	return fr, nil
}

// LoadDatasetWith reads every trace kind from dir under the given
// strictness and validates the result. users.tsv loads first (every
// other reader needs its NameIndex); the remaining files then load
// concurrently, each through the pipelined decoder, unless
// opts.Sequential selects the original one-file-at-a-time path. Both
// paths produce bit-identical results: the DatasetReport lists the
// per-file reports in canonical file order, and on failure the first
// error in that order wins, with the reports truncated at the failing
// file exactly as a sequential stop-at-first-error read would leave
// them.
func LoadDatasetWith(dir string, opts ReadOptions) (*Dataset, *DatasetReport, error) {
	d := &Dataset{}
	rep := &DatasetReport{}
	urep, err := loadTraceFileAt(filepath.Join(dir, UsersFile), opts, func(r io.Reader, hint int) (*ParseReport, error) {
		var (
			fr *ParseReport
			e  error
		)
		d.Users, fr, e = readUsersWithHint(r, opts, hint)
		return fr, e
	})
	if urep != nil {
		rep.Reports = append(rep.Reports, urep)
	}
	if err != nil {
		return nil, rep, err
	}
	idx := NameIndex(d.Users)
	type loadFile struct {
		name string
		fn   func(r io.Reader, hint int) (*ParseReport, error)
	}
	files := []loadFile{
		{JobsFile, func(r io.Reader, hint int) (*ParseReport, error) {
			var (
				fr *ParseReport
				e  error
			)
			d.Jobs, fr, e = readJobsWithHint(r, idx, opts, hint)
			return fr, e
		}},
		{AccessesFile, func(r io.Reader, hint int) (*ParseReport, error) {
			var (
				fr *ParseReport
				e  error
			)
			d.Accesses, fr, e = readAccessesWithHint(r, idx, opts, hint)
			return fr, e
		}},
		{PubsFile, func(r io.Reader, hint int) (*ParseReport, error) {
			var (
				fr *ParseReport
				e  error
			)
			d.Publications, fr, e = readPublicationsWithHint(r, idx, opts, hint)
			return fr, e
		}},
	}
	// Logins and transfers are optional trace kinds.
	if _, err := os.Stat(filepath.Join(dir, LoginsFile)); err == nil {
		files = append(files, loadFile{LoginsFile, func(r io.Reader, hint int) (*ParseReport, error) {
			var (
				fr *ParseReport
				e  error
			)
			d.Logins, fr, e = readLoginsWithHint(r, idx, opts, hint)
			return fr, e
		}})
	}
	if _, err := os.Stat(filepath.Join(dir, TransfersFile)); err == nil {
		files = append(files, loadFile{TransfersFile, func(r io.Reader, hint int) (*ParseReport, error) {
			var (
				fr *ParseReport
				e  error
			)
			d.Transfers, fr, e = readTransfersWithHint(r, idx, opts, hint)
			return fr, e
		}})
	}
	if !opts.SkipSnapshot {
		files = append(files, loadFile{SnapshotFile, func(r io.Reader, hint int) (*ParseReport, error) {
			s, fr, e := readSnapshotWithHint(r, idx, opts, hint)
			if e != nil {
				return fr, e
			}
			d.Snapshot = *s
			return fr, nil
		}})
	}
	reps := make([]*ParseReport, len(files))
	errs := make([]error, len(files))
	loadOne := func(i int) {
		reps[i], errs[i] = loadTraceFileAt(filepath.Join(dir, files[i].name), opts, files[i].fn)
	}
	if opts.Sequential {
		for i := range files {
			loadOne(i)
			if errs[i] != nil {
				break
			}
		}
	} else {
		tasks := make([]func() error, len(files))
		for i := range files {
			i := i
			tasks[i] = func() error {
				loadOne(i)
				return nil
			}
		}
		pool := parallel.NewPool(0)
		if err := pool.Run(tasks); err != nil {
			return nil, rep, err
		}
	}
	for i := range files {
		if reps[i] != nil {
			rep.Reports = append(rep.Reports, reps[i])
		}
		if errs[i] != nil {
			return nil, rep, errs[i]
		}
	}
	if err := d.Validate(); err != nil {
		return nil, rep, err
	}
	return d, rep, nil
}
