package trace

import (
	"bufio"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"activedr/internal/timeutil"
)

// Standard file names inside a dataset directory.
const (
	UsersFile    = "users.tsv"
	JobsFile     = "jobs.tsv.gz"
	AccessesFile = "accesses.tsv.gz"
	PubsFile     = "publications.tsv"
	SnapshotFile = "snapshot.tsv.gz"
)

// closeAll composes layered closers (innermost first) into one that
// always runs every layer and joins the failures with errors.Join, so
// an inner-layer error can neither mask an outer close error nor leak
// the outer layer entirely.
func closeAll(closers ...func() error) func() error {
	return func() error {
		var errs []error
		for _, c := range closers {
			if err := c(); err != nil {
				errs = append(errs, err)
			}
		}
		return errors.Join(errs...)
	}
}

// openReader opens path, transparently ungzipping *.gz. The returned
// closer closes both layers.
func openReader(path string) (io.Reader, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		return f, f.Close, nil
	}
	gz, err := gzip.NewReader(f)
	if err != nil {
		f.Close() //lint:allow unchecked-close the gzip open error wins; nothing was written
		return nil, nil, fmt.Errorf("trace: open %s: %w", path, err)
	}
	return gz, closeAll(gz.Close, f.Close), nil
}

// openWriter creates path, transparently gzipping *.gz.
func openWriter(path string) (io.Writer, func() error, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if !strings.HasSuffix(path, ".gz") {
		return bw, closeAll(bw.Flush, f.Close), nil
	}
	gz := gzip.NewWriter(bw)
	return gz, closeAll(gz.Close, bw.Flush, f.Close), nil
}

// lineScanner wraps bufio.Scanner with a large buffer (snapshot rows
// carry long paths) and line counting for error messages.
type lineScanner struct {
	s    *bufio.Scanner
	line int
	name string
}

func newLineScanner(r io.Reader, name string) *lineScanner {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	return &lineScanner{s: s, name: name}
}

func (l *lineScanner) scan() bool {
	ok := l.s.Scan()
	if ok {
		l.line++
	}
	return ok
}

func (l *lineScanner) text() string { return l.s.Text() }

func (l *lineScanner) err() error {
	if e := l.s.Err(); e != nil {
		return fmt.Errorf("trace: %s line %d: %w", l.name, l.line+1, e)
	}
	return nil
}

func (l *lineScanner) errorf(format string, args ...any) error {
	return fmt.Errorf("trace: %s line %d: %s", l.name, l.line, fmt.Sprintf(format, args...))
}

func parseInt(s string) (int64, error) { return strconv.ParseInt(s, 10, 64) }

// --- users ---

// WriteUsers writes the user list as TSV: name, created, archetype.
func WriteUsers(w io.Writer, users []User) error {
	bw := bufio.NewWriter(w)
	for i := range users {
		u := &users[i]
		if _, err := fmt.Fprintf(bw, "%s\t%d\t%s\n", u.Name, int64(u.Created), u.Archetype); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadUsers parses a user list, assigning dense IDs in file order.
func ReadUsers(r io.Reader) ([]User, error) {
	users, _, err := ReadUsersWith(r, ReadOptions{})
	return users, err
}

// ReadUsersWith parses a user list under the given strictness;
// quarantined lines do not consume an ID.
func ReadUsersWith(r io.Reader, opts ReadOptions) ([]User, *ParseReport, error) {
	ls := newLineScanner(r, UsersFile)
	rep := &ParseReport{File: UsersFile}
	var users []User
	for ls.scan() {
		line := ls.text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rep.Lines++
		parts := strings.Split(line, "\t")
		if len(parts) < 2 {
			if err := rep.quarantine(ls, opts, fmt.Errorf("want ≥2 fields, got %d", len(parts))); err != nil {
				return nil, rep, err
			}
			continue
		}
		created, err := parseInt(parts[1])
		if err != nil {
			if err := rep.quarantine(ls, opts, fmt.Errorf("bad created timestamp %q", parts[1])); err != nil {
				return nil, rep, err
			}
			continue
		}
		u := User{ID: UserID(len(users)), Name: parts[0], Created: timeutil.Time(created)}
		if len(parts) >= 3 {
			u.Archetype = parts[2]
		}
		users = append(users, u)
	}
	if err := rep.finish(ls, opts); err != nil {
		return nil, rep, err
	}
	return users, rep, nil
}

// --- jobs ---

// WriteJobs writes the job log as TSV: user, submit, duration_s, cores.
func WriteJobs(w io.Writer, users []User, jobs []Job) error {
	bw := bufio.NewWriter(w)
	for i := range jobs {
		j := &jobs[i]
		if _, err := fmt.Fprintf(bw, "%s\t%d\t%d\t%d\n",
			users[j.User].Name, int64(j.Submit), int64(j.Duration), j.Cores); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJobs parses a job log using the name→ID index.
func ReadJobs(r io.Reader, byName map[string]UserID) ([]Job, error) {
	jobs, _, err := ReadJobsWith(r, byName, ReadOptions{})
	return jobs, err
}

// ReadJobsWith parses a job log under the given strictness.
func ReadJobsWith(r io.Reader, byName map[string]UserID, opts ReadOptions) ([]Job, *ParseReport, error) {
	ls := newLineScanner(r, JobsFile)
	rep := &ParseReport{File: JobsFile}
	var jobs []Job
	for ls.scan() {
		line := ls.text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rep.Lines++
		j, perr := parseJobLine(line, byName)
		if perr != nil {
			if err := rep.quarantine(ls, opts, perr); err != nil {
				return nil, rep, err
			}
			continue
		}
		jobs = append(jobs, j)
	}
	if err := rep.finish(ls, opts); err != nil {
		return nil, rep, err
	}
	return jobs, rep, nil
}

func parseJobLine(line string, byName map[string]UserID) (Job, error) {
	parts := strings.Split(line, "\t")
	if len(parts) != 4 {
		return Job{}, fmt.Errorf("want 4 fields, got %d", len(parts))
	}
	uid, ok := byName[parts[0]]
	if !ok {
		return Job{}, fmt.Errorf("unknown user %q", parts[0])
	}
	submit, err1 := parseInt(parts[1])
	dur, err2 := parseInt(parts[2])
	cores, err3 := parseInt(parts[3])
	if err1 != nil || err2 != nil || err3 != nil {
		return Job{}, fmt.Errorf("bad numeric field in %q", line)
	}
	return Job{
		User:     uid,
		Submit:   timeutil.Time(submit),
		Duration: timeutil.Duration(dur),
		Cores:    int(cores),
	}, nil
}

// --- accesses ---

// WriteAccesses writes the application log as TSV:
// ts, user, create, size, path.
func WriteAccesses(w io.Writer, users []User, accs []Access) error {
	bw := bufio.NewWriter(w)
	for i := range accs {
		a := &accs[i]
		c := 0
		if a.Create {
			c = 1
		}
		if _, err := fmt.Fprintf(bw, "%d\t%s\t%d\t%d\t%s\n",
			int64(a.TS), users[a.User].Name, c, a.Size, a.Path); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadAccesses parses an application log.
func ReadAccesses(r io.Reader, byName map[string]UserID) ([]Access, error) {
	accs, _, err := ReadAccessesWith(r, byName, ReadOptions{})
	return accs, err
}

// ReadAccessesWith parses an application log under the given
// strictness.
func ReadAccessesWith(r io.Reader, byName map[string]UserID, opts ReadOptions) ([]Access, *ParseReport, error) {
	ls := newLineScanner(r, AccessesFile)
	rep := &ParseReport{File: AccessesFile}
	var accs []Access
	for ls.scan() {
		line := ls.text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rep.Lines++
		a, perr := parseAccessLine(line, byName)
		if perr != nil {
			if err := rep.quarantine(ls, opts, perr); err != nil {
				return nil, rep, err
			}
			continue
		}
		accs = append(accs, a)
	}
	if err := rep.finish(ls, opts); err != nil {
		return nil, rep, err
	}
	return accs, rep, nil
}

func parseAccessLine(line string, byName map[string]UserID) (Access, error) {
	parts := strings.SplitN(line, "\t", 5)
	if len(parts) != 5 {
		return Access{}, fmt.Errorf("want 5 fields, got %d", len(parts))
	}
	ts, err1 := parseInt(parts[0])
	uid, ok := byName[parts[1]]
	create, err2 := parseInt(parts[2])
	size, err3 := parseInt(parts[3])
	if err1 != nil || err2 != nil || err3 != nil {
		return Access{}, fmt.Errorf("bad numeric field in %q", line)
	}
	if !ok {
		return Access{}, fmt.Errorf("unknown user %q", parts[1])
	}
	if parts[4] == "" {
		return Access{}, fmt.Errorf("empty path")
	}
	return Access{
		TS:     timeutil.Time(ts),
		User:   uid,
		Create: create != 0,
		Size:   size,
		Path:   parts[4],
	}, nil
}

// --- publications ---

// WritePublications writes the publication list as TSV:
// ts, citations, comma-joined author names.
func WritePublications(w io.Writer, users []User, pubs []Publication) error {
	bw := bufio.NewWriter(w)
	for i := range pubs {
		p := &pubs[i]
		names := make([]string, len(p.Authors))
		for k, a := range p.Authors {
			names[k] = users[a].Name
		}
		if _, err := fmt.Fprintf(bw, "%d\t%d\t%s\n",
			int64(p.TS), p.Citations, strings.Join(names, ",")); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPublications parses a publication list.
func ReadPublications(r io.Reader, byName map[string]UserID) ([]Publication, error) {
	pubs, _, err := ReadPublicationsWith(r, byName, ReadOptions{})
	return pubs, err
}

// ReadPublicationsWith parses a publication list under the given
// strictness.
func ReadPublicationsWith(r io.Reader, byName map[string]UserID, opts ReadOptions) ([]Publication, *ParseReport, error) {
	ls := newLineScanner(r, PubsFile)
	rep := &ParseReport{File: PubsFile}
	var pubs []Publication
	for ls.scan() {
		line := ls.text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rep.Lines++
		p, perr := parsePublicationLine(line, byName)
		if perr != nil {
			if err := rep.quarantine(ls, opts, perr); err != nil {
				return nil, rep, err
			}
			continue
		}
		pubs = append(pubs, p)
	}
	if err := rep.finish(ls, opts); err != nil {
		return nil, rep, err
	}
	return pubs, rep, nil
}

func parsePublicationLine(line string, byName map[string]UserID) (Publication, error) {
	parts := strings.Split(line, "\t")
	if len(parts) != 3 {
		return Publication{}, fmt.Errorf("want 3 fields, got %d", len(parts))
	}
	ts, err1 := parseInt(parts[0])
	cites, err2 := parseInt(parts[1])
	if err1 != nil || err2 != nil {
		return Publication{}, fmt.Errorf("bad numeric field in %q", line)
	}
	names := strings.Split(parts[2], ",")
	authors := make([]UserID, 0, len(names))
	for _, name := range names {
		uid, ok := byName[name]
		if !ok {
			return Publication{}, fmt.Errorf("unknown author %q", name)
		}
		authors = append(authors, uid)
	}
	return Publication{
		TS:        timeutil.Time(ts),
		Citations: int(cites),
		Authors:   authors,
	}, nil
}

// --- snapshots ---

// WriteSnapshot writes a metadata snapshot as TSV with a header
// comment carrying the capture time: path rows are
// user, size, stripes, atime, path.
func WriteSnapshot(w io.Writer, users []User, s *Snapshot) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "#taken\t%d\n", int64(s.Taken)); err != nil {
		return err
	}
	for i := range s.Entries {
		e := &s.Entries[i]
		if _, err := fmt.Fprintf(bw, "%s\t%d\t%d\t%d\t%s\n",
			users[e.User].Name, e.Size, e.Stripes, int64(e.ATime), e.Path); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSnapshot parses a metadata snapshot.
func ReadSnapshot(r io.Reader, byName map[string]UserID) (*Snapshot, error) {
	s, _, err := ReadSnapshotWith(r, byName, ReadOptions{})
	return s, err
}

// ReadSnapshotWith parses a metadata snapshot under the given
// strictness.
func ReadSnapshotWith(r io.Reader, byName map[string]UserID, opts ReadOptions) (*Snapshot, *ParseReport, error) {
	ls := newLineScanner(r, SnapshotFile)
	rep := &ParseReport{File: SnapshotFile}
	s := &Snapshot{}
	for ls.scan() {
		line := ls.text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#taken\t") {
			ts, err := parseInt(strings.TrimPrefix(line, "#taken\t"))
			if err != nil {
				rep.Lines++
				if err := rep.quarantine(ls, opts, errors.New("bad taken timestamp")); err != nil {
					return nil, rep, err
				}
				continue
			}
			s.Taken = timeutil.Time(ts)
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		rep.Lines++
		e, perr := parseSnapshotLine(line, byName)
		if perr != nil {
			if err := rep.quarantine(ls, opts, perr); err != nil {
				return nil, rep, err
			}
			continue
		}
		s.Entries = append(s.Entries, e)
	}
	if err := rep.finish(ls, opts); err != nil {
		return nil, rep, err
	}
	return s, rep, nil
}

func parseSnapshotLine(line string, byName map[string]UserID) (SnapshotEntry, error) {
	parts := strings.SplitN(line, "\t", 5)
	if len(parts) != 5 {
		return SnapshotEntry{}, fmt.Errorf("want 5 fields, got %d", len(parts))
	}
	uid, ok := byName[parts[0]]
	if !ok {
		return SnapshotEntry{}, fmt.Errorf("unknown user %q", parts[0])
	}
	size, err1 := parseInt(parts[1])
	stripes, err2 := parseInt(parts[2])
	atime, err3 := parseInt(parts[3])
	if err1 != nil || err2 != nil || err3 != nil {
		return SnapshotEntry{}, fmt.Errorf("bad numeric field in %q", line)
	}
	if parts[4] == "" {
		return SnapshotEntry{}, fmt.Errorf("empty path")
	}
	return SnapshotEntry{
		Path:    parts[4],
		User:    uid,
		Size:    size,
		Stripes: int(stripes),
		ATime:   timeutil.Time(atime),
	}, nil
}

// WriteSnapshotFile writes one metadata snapshot to path
// (transparently gzipped for .gz paths).
func WriteSnapshotFile(path string, users []User, s *Snapshot) error {
	w, closeFn, err := openWriter(path)
	if err != nil {
		return err
	}
	if err := WriteSnapshot(w, users, s); err != nil {
		closeFn()
		return fmt.Errorf("trace: write %s: %w", path, err)
	}
	if err := closeFn(); err != nil {
		return fmt.Errorf("trace: close %s: %w", path, err)
	}
	return nil
}

// ReadSnapshotFile reads one metadata snapshot from path.
func ReadSnapshotFile(path string, byName map[string]UserID) (*Snapshot, error) {
	r, closeFn, err := openReader(path)
	if err != nil {
		return nil, err
	}
	defer closeFn()
	s, err := ReadSnapshot(r, byName)
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	return s, nil
}

// WriteSnapshotSeries persists a series of weekly metadata snapshots
// under dir as snapshot-YYYYMMDD.tsv.gz — the artifact shape the
// paper's Spider II data ships as ("a series of gzipped text files").
func WriteSnapshotSeries(dir string, users []User, snaps []*Snapshot) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, snap := range snaps {
		name := fmt.Sprintf("snapshot-%s.tsv.gz", snap.Taken.Go().Format("20060102"))
		if err := WriteSnapshotFile(filepath.Join(dir, name), users, snap); err != nil {
			return err
		}
	}
	return nil
}

// LoadSnapshotSeries reads every snapshot-*.tsv.gz under dir, sorted
// by capture time.
func LoadSnapshotSeries(dir string, byName map[string]UserID) ([]*Snapshot, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "snapshot-*.tsv.gz"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	var snaps []*Snapshot
	for _, path := range matches {
		r, closeFn, err := openReader(path)
		if err != nil {
			return nil, err
		}
		snap, err := ReadSnapshot(r, byName)
		closeFn()
		if err != nil {
			return nil, fmt.Errorf("trace: %s: %w", path, err)
		}
		snaps = append(snaps, snap)
	}
	sort.SliceStable(snaps, func(i, j int) bool { return snaps[i].Taken < snaps[j].Taken })
	return snaps, nil
}

// NameIndex builds the login-name → ID map used by the readers.
func NameIndex(users []User) map[string]UserID {
	m := make(map[string]UserID, len(users))
	for i := range users {
		m[users[i].Name] = users[i].ID
	}
	return m
}

// WriteDataset persists every trace kind under dir using the standard
// file names.
func WriteDataset(dir string, d *Dataset) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(io.Writer) error) error {
		w, closeFn, err := openWriter(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := fn(w); err != nil {
			closeFn()
			return fmt.Errorf("trace: write %s: %w", name, err)
		}
		if err := closeFn(); err != nil {
			return fmt.Errorf("trace: close %s: %w", name, err)
		}
		return nil
	}
	if err := write(UsersFile, func(w io.Writer) error { return WriteUsers(w, d.Users) }); err != nil {
		return err
	}
	if err := write(JobsFile, func(w io.Writer) error { return WriteJobs(w, d.Users, d.Jobs) }); err != nil {
		return err
	}
	if err := write(AccessesFile, func(w io.Writer) error { return WriteAccesses(w, d.Users, d.Accesses) }); err != nil {
		return err
	}
	if err := write(PubsFile, func(w io.Writer) error { return WritePublications(w, d.Users, d.Publications) }); err != nil {
		return err
	}
	if len(d.Logins) > 0 {
		if err := write(LoginsFile, func(w io.Writer) error { return WriteLogins(w, d.Users, d.Logins) }); err != nil {
			return err
		}
	}
	if len(d.Transfers) > 0 {
		if err := write(TransfersFile, func(w io.Writer) error { return WriteTransfers(w, d.Users, d.Transfers) }); err != nil {
			return err
		}
	}
	return write(SnapshotFile, func(w io.Writer) error { return WriteSnapshot(w, d.Users, &d.Snapshot) })
}

// LoadDataset reads every trace kind from dir and validates the
// result.
func LoadDataset(dir string) (*Dataset, error) {
	d, _, err := LoadDatasetWith(dir, ReadOptions{})
	return d, err
}

// LoadDatasetWith reads every trace kind from dir under the given
// strictness and validates the result. The DatasetReport carries the
// per-file parse reports (in lenient mode, quarantined lines and
// truncation flags; in strict mode they are all clean by
// construction).
func LoadDatasetWith(dir string, opts ReadOptions) (*Dataset, *DatasetReport, error) {
	d := &Dataset{}
	rep := &DatasetReport{}
	read := func(name string, fn func(io.Reader) (*ParseReport, error)) error {
		r, closeFn, err := openReader(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		fr, ferr := fn(r)
		if fr != nil {
			rep.Reports = append(rep.Reports, fr)
		}
		cerr := closeFn()
		if ferr != nil {
			return ferr
		}
		if cerr != nil {
			// A cut-short gzip member also fails its close; the
			// salvaged records are already in hand.
			if opts.Lenient && fr != nil && fr.Truncated && isTruncation(cerr) {
				return nil
			}
			return cerr
		}
		return nil
	}
	err := read(UsersFile, func(r io.Reader) (*ParseReport, error) {
		var (
			fr *ParseReport
			e  error
		)
		d.Users, fr, e = ReadUsersWith(r, opts)
		return fr, e
	})
	if err != nil {
		return nil, rep, err
	}
	idx := NameIndex(d.Users)
	if err := read(JobsFile, func(r io.Reader) (*ParseReport, error) {
		var (
			fr *ParseReport
			e  error
		)
		d.Jobs, fr, e = ReadJobsWith(r, idx, opts)
		return fr, e
	}); err != nil {
		return nil, rep, err
	}
	if err := read(AccessesFile, func(r io.Reader) (*ParseReport, error) {
		var (
			fr *ParseReport
			e  error
		)
		d.Accesses, fr, e = ReadAccessesWith(r, idx, opts)
		return fr, e
	}); err != nil {
		return nil, rep, err
	}
	if err := read(PubsFile, func(r io.Reader) (*ParseReport, error) {
		var (
			fr *ParseReport
			e  error
		)
		d.Publications, fr, e = ReadPublicationsWith(r, idx, opts)
		return fr, e
	}); err != nil {
		return nil, rep, err
	}
	// Logins and transfers are optional trace kinds.
	if _, err := os.Stat(filepath.Join(dir, LoginsFile)); err == nil {
		if err := read(LoginsFile, func(r io.Reader) (*ParseReport, error) {
			var (
				fr *ParseReport
				e  error
			)
			d.Logins, fr, e = ReadLoginsWith(r, idx, opts)
			return fr, e
		}); err != nil {
			return nil, rep, err
		}
	}
	if _, err := os.Stat(filepath.Join(dir, TransfersFile)); err == nil {
		if err := read(TransfersFile, func(r io.Reader) (*ParseReport, error) {
			var (
				fr *ParseReport
				e  error
			)
			d.Transfers, fr, e = ReadTransfersWith(r, idx, opts)
			return fr, e
		}); err != nil {
			return nil, rep, err
		}
	}
	if err := read(SnapshotFile, func(r io.Reader) (*ParseReport, error) {
		s, fr, e := ReadSnapshotWith(r, idx, opts)
		if e != nil {
			return fr, e
		}
		d.Snapshot = *s
		return fr, nil
	}); err != nil {
		return nil, rep, err
	}
	if err := d.Validate(); err != nil {
		return nil, rep, err
	}
	return d, rep, nil
}
