package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 {
		t.Fatal("zero Summary not zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Sum() != 40 {
		t.Fatalf("Sum = %v", s.Sum())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if math.Abs(s.Variance()-4) > 1e-9 {
		t.Fatalf("Variance = %v, want 4", s.Variance())
	}
	if math.Abs(s.Stddev()-2) > 1e-9 {
		t.Fatalf("Stddev = %v, want 2", s.Stddev())
	}
}

// Property: Welford mean/variance agree with the naive two-pass
// formulas.
func TestSummaryMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		var clean []float64
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		var s Summary
		var sum float64
		for _, x := range clean {
			s.Add(x)
			sum += x
		}
		mean := sum / float64(len(clean))
		var m2 float64
		for _, x := range clean {
			m2 += (x - mean) * (x - mean)
		}
		variance := m2 / float64(len(clean))
		return math.Abs(s.Mean()-mean) < 1e-6 && math.Abs(s.Variance()-variance) < 1e-4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("Quantile of empty should be 0")
	}
}

func TestNewBox(t *testing.T) {
	b := NewBox([]float64{7, 1, 3, 5, 9})
	if b.N != 5 || b.Min != 1 || b.Max != 9 || b.Median != 5 {
		t.Fatalf("Box = %+v", b)
	}
	if b.Mean != 5 {
		t.Fatalf("Mean = %v", b.Mean)
	}
	if b.Q1 != 3 || b.Q3 != 7 {
		t.Fatalf("Q1/Q3 = %v/%v", b.Q1, b.Q3)
	}
	if (NewBox(nil) != Box{}) {
		t.Fatal("empty box not zero")
	}
}

// Property: box stats are order-invariant and ordered
// min ≤ q1 ≤ median ≤ q3 ≤ max.
func TestBoxProperties(t *testing.T) {
	f := func(xs []float64) bool {
		var clean []float64
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		b := NewBox(clean)
		shuffled := append([]float64(nil), clean...)
		sort.Sort(sort.Reverse(sort.Float64Slice(shuffled)))
		b2 := NewBox(shuffled)
		if b != b2 {
			return false
		}
		if b.N == 0 {
			return true
		}
		return b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMissRatioBuckets(t *testing.T) {
	r := NewMissRatioBuckets()
	if r.Len() != 11 {
		t.Fatalf("Len = %d, want 11 ranges", r.Len())
	}
	if got := r.Label(0); got != "1%-5%" {
		t.Fatalf("Label(0) = %q", got)
	}
	if got := r.Label(10); got != "90%-100%" {
		t.Fatalf("Label(10) = %q", got)
	}
	// Below 1% is dropped, as in the paper's histograms.
	if r.Add(0.005) {
		t.Error("sub-1% value should be dropped")
	}
	for _, v := range []float64{0.01, 0.04, 0.05, 0.5, 0.99, 1.0} {
		if !r.Add(v) {
			t.Errorf("value %v dropped", v)
		}
	}
	if r.Count(0) != 2 { // 0.01, 0.04
		t.Errorf("bucket 1%%-5%% = %d, want 2", r.Count(0))
	}
	if r.Count(1) != 1 { // 0.05
		t.Errorf("bucket 5%%-10%% = %d, want 1", r.Count(1))
	}
	if r.Count(10) != 2 { // 0.99, 1.0
		t.Errorf("bucket 90%%-100%% = %d, want 2", r.Count(10))
	}
	if r.Total() != 6 {
		t.Errorf("Total = %d", r.Total())
	}
	// "days with more than 5% misses" = everything from the 5%-10%
	// bucket upward.
	if got := r.CountAtLeast(0.05); got != 4 {
		t.Errorf("CountAtLeast(0.05) = %d, want 4", got)
	}
}

func TestRangeBucketsPanics(t *testing.T) {
	for _, bounds := range [][]float64{{1}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRangeBuckets(%v) did not panic", bounds)
				}
			}()
			NewRangeBuckets(bounds)
		}()
	}
}

// Property: every in-range value lands in exactly the bucket whose
// bounds bracket it.
func TestRangeBucketsPlacementProperty(t *testing.T) {
	bounds := []float64{0, 0.1, 0.25, 0.5, 1}
	f := func(raw float64) bool {
		x := math.Mod(math.Abs(raw), 1.2) // some values out of range
		r := NewRangeBuckets(bounds)
		in := r.Add(x)
		if x >= 1 {
			return !in
		}
		if !in {
			return false
		}
		for i := 0; i < r.Len(); i++ {
			want := 0
			if bounds[i] <= x && x < bounds[i+1] {
				want = 1
			}
			if r.Count(i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Add("b", 2)
	c.Add("a", 1)
	c.Add("b", 3)
	if c.Get("b") != 5 || c.Get("a") != 1 || c.Get("zzz") != 0 {
		t.Fatalf("counter values wrong: %s", c)
	}
	keys := c.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("Keys = %v", keys)
	}
	if c.Total() != 6 {
		t.Fatalf("Total = %d", c.Total())
	}
	if c.String() != "a=1 b=5" {
		t.Fatalf("String = %q", c.String())
	}
}

func TestRatioHelpers(t *testing.T) {
	if Ratio(1, 0) != 0 || Ratio(6, 3) != 2 {
		t.Error("Ratio wrong")
	}
	if ReductionRatio(0, 5) != 0 {
		t.Error("ReductionRatio with zero base should be 0")
	}
	if got := ReductionRatio(100, 63); math.Abs(got-0.37) > 1e-9 {
		t.Errorf("ReductionRatio = %v, want 0.37", got)
	}
	// Negative reduction when the "improved" value is worse.
	if got := ReductionRatio(100, 150); got != -0.5 {
		t.Errorf("ReductionRatio = %v, want -0.5", got)
	}
}

func TestSummaryVarianceSingleton(t *testing.T) {
	var s Summary
	s.Add(5)
	if s.Variance() != 0 || s.Stddev() != 0 {
		t.Fatal("singleton variance should be 0")
	}
}

func TestRangeBucketsAccessors(t *testing.T) {
	r := NewMissRatioBuckets()
	r.Add(0.02)
	r.Add(0.55)
	counts := r.Counts()
	if len(counts) != r.Len() || counts[0] != 1 {
		t.Fatalf("Counts = %v", counts)
	}
	labels := r.Labels()
	if len(labels) != r.Len() || labels[6] != "50%-60%" {
		t.Fatalf("Labels = %v", labels)
	}
	// Fractional bound labels render with %g.
	fr := NewRangeBuckets([]float64{0.011, 0.025, 1.0000001})
	if got := fr.Label(0); got != "1.1%-2.5%" {
		t.Fatalf("fractional label = %q", got)
	}
}

func TestBoxString(t *testing.T) {
	b := NewBox([]float64{1, 2, 3})
	if !strings.Contains(b.String(), "med=2.0000") {
		t.Fatalf("Box.String = %q", b.String())
	}
}
