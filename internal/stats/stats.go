// Package stats implements the statistical summaries the paper's
// figures report: range-bucketed day counts (Figures 1 and 6), box
// statistics with means (Figure 8), and general running summaries
// used across the benchmark harness.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary accumulates count/sum/min/max and Welford mean/variance in
// one pass. The zero value is ready to use.
type Summary struct {
	n        int64
	mean, m2 float64
	sum      float64
	min, max float64
}

// Add folds x into the summary.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	s.sum += x
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() int64 { return s.n }

// Sum returns the total of all observations.
func (s *Summary) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation, or 0 with none.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 with none.
func (s *Summary) Max() float64 { return s.max }

// Variance returns the population variance.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// Stddev returns the population standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Variance()) }

// Box holds the five-number summary plus the mean, as drawn in the
// paper's Figure 8 box plot (the green triangle is the mean).
type Box struct {
	N      int
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
	Mean   float64
}

// NewBox computes box statistics over xs. It copies and sorts its
// input; an empty input yields a zero Box.
func NewBox(xs []float64) Box {
	if len(xs) == 0 {
		return Box{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var sum float64
	for _, x := range s {
		sum += x
	}
	return Box{
		N:      len(s),
		Min:    s[0],
		Q1:     Quantile(s, 0.25),
		Median: Quantile(s, 0.5),
		Q3:     Quantile(s, 0.75),
		Max:    s[len(s)-1],
		Mean:   sum / float64(len(s)),
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of sorted data using
// linear interpolation between order statistics (type-7, the
// default of most statistics packages).
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders the box as one line.
func (b Box) String() string {
	return fmt.Sprintf("n=%d min=%.4f q1=%.4f med=%.4f q3=%.4f max=%.4f mean=%.4f",
		b.N, b.Min, b.Q1, b.Median, b.Q3, b.Max, b.Mean)
}

// RangeBuckets buckets values into labelled half-open ranges
// [lo, hi), as in the paper's "Miss Ratio Ranges" histograms. Values
// below the first bound or at/above the last are dropped (Figure 1
// likewise omits days with <1% misses from the range histogram).
type RangeBuckets struct {
	bounds []float64
	counts []int
}

// MissRatioBounds are the bucket edges of Figures 1 and 6:
// 1%-5%, 5%-10%, 10%-20%, …, 90%-100%.
var MissRatioBounds = []float64{0.01, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 1.0000001}

// NewRangeBuckets builds buckets from ascending bounds; bucket i
// covers [bounds[i], bounds[i+1]). At least two bounds are required.
func NewRangeBuckets(bounds []float64) *RangeBuckets {
	if len(bounds) < 2 {
		panic("stats: NewRangeBuckets needs at least two bounds")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: NewRangeBuckets bounds must ascend")
		}
	}
	return &RangeBuckets{
		bounds: append([]float64(nil), bounds...),
		counts: make([]int, len(bounds)-1),
	}
}

// NewMissRatioBuckets builds the paper's miss-ratio range histogram.
func NewMissRatioBuckets() *RangeBuckets { return NewRangeBuckets(MissRatioBounds) }

// Add counts x into its bucket; out-of-range values are ignored and
// reported false.
func (r *RangeBuckets) Add(x float64) bool {
	if x < r.bounds[0] || x >= r.bounds[len(r.bounds)-1] {
		return false
	}
	// Binary search for the bucket.
	lo, hi := 0, len(r.counts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if r.bounds[mid] <= x {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	r.counts[lo]++
	return true
}

// Len returns the number of buckets.
func (r *RangeBuckets) Len() int { return len(r.counts) }

// Count returns the count in bucket i.
func (r *RangeBuckets) Count(i int) int { return r.counts[i] }

// Counts returns a copy of all bucket counts.
func (r *RangeBuckets) Counts() []int { return append([]int(nil), r.counts...) }

// Label returns the "lo%-hi%" label of bucket i.
func (r *RangeBuckets) Label(i int) string {
	return fmt.Sprintf("%s-%s", percent(r.bounds[i]), percent(r.bounds[i+1]))
}

// Labels returns all bucket labels.
func (r *RangeBuckets) Labels() []string {
	out := make([]string, r.Len())
	for i := range out {
		out[i] = r.Label(i)
	}
	return out
}

// Total returns the number of values counted (excluding dropped).
func (r *RangeBuckets) Total() int {
	t := 0
	for _, c := range r.counts {
		t += c
	}
	return t
}

// CountAtLeast sums the counts of buckets whose lower bound is ≥ lo.
// The paper's "days with more than 5% file misses" is
// CountAtLeast(0.05).
func (r *RangeBuckets) CountAtLeast(lo float64) int {
	t := 0
	for i := range r.counts {
		if r.bounds[i] >= lo-1e-12 {
			t += r.counts[i]
		}
	}
	return t
}

func percent(x float64) string {
	p := x * 100
	if p > 99.999 && p < 101 {
		p = 100
	}
	if p == math.Trunc(p) {
		return fmt.Sprintf("%d%%", int(p))
	}
	return fmt.Sprintf("%.4g%%", p)
}

// Counter is a string-keyed tally with deterministic iteration order.
type Counter struct {
	m map[string]int64
}

// NewCounter returns an empty Counter.
func NewCounter() *Counter { return &Counter{m: make(map[string]int64)} }

// Add increments key by delta.
func (c *Counter) Add(key string, delta int64) { c.m[key] += delta }

// Get returns the tally for key (0 if absent).
func (c *Counter) Get(key string) int64 { return c.m[key] }

// Keys returns the keys in sorted order.
func (c *Counter) Keys() []string {
	keys := make([]string, 0, len(c.m))
	for k := range c.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Total sums all tallies.
func (c *Counter) Total() int64 {
	var t int64
	for _, v := range c.m {
		t += v
	}
	return t
}

// String renders the counter as "k1=v1 k2=v2 …" in key order.
func (c *Counter) String() string {
	var b strings.Builder
	for i, k := range c.Keys() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", k, c.m[k])
	}
	return b.String()
}

// Ratio safely divides a by b, returning 0 when b is 0.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// ReductionRatio returns (base − improved)/base, the paper's "file
// miss reduction ratio"; it is 0 when base is 0.
func ReductionRatio(base, improved float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - improved) / base
}
