package activeness_test

import (
	"fmt"
	"time"

	"activedr/internal/activeness"
	"activedr/internal/timeutil"
)

// ExampleTypeRank shows the §3.2 trend behaviour: a user whose recent
// impact rises ranks active, one whose impact falls ranks inactive.
func ExampleTypeRank() {
	tc := timeutil.Date(2016, time.July, 1)
	week := timeutil.Days(7)
	rising := []activeness.Activity{
		{TS: tc.Add(-timeutil.Days(12)), Impact: 1},
		{TS: tc.Add(-timeutil.Days(3)), Impact: 3},
	}
	falling := []activeness.Activity{
		{TS: tc.Add(-timeutil.Days(12)), Impact: 3},
		{TS: tc.Add(-timeutil.Days(3)), Impact: 1},
	}
	fmt.Printf("rising:  Φ = %.3f\n", activeness.TypeRank(rising, tc, week))
	fmt.Printf("falling: Φ = %.3f\n", activeness.TypeRank(falling, tc, week))
	// Output:
	// rising:  Φ = 1.125
	// falling: Φ = 0.375
}

// ExampleEvaluator classifies a user from raw activities.
func ExampleEvaluator() {
	tc := timeutil.Date(2016, time.July, 1)
	ev := activeness.NewEvaluator(timeutil.Days(7))
	jobs := ev.AddType("job-submission", activeness.Operation)
	pubs := ev.AddType("publication", activeness.Outcome)
	ev.Record(jobs, 0, tc.Add(-timeutil.Days(12)), 100) // core-hours
	ev.Record(jobs, 0, tc.Add(-timeutil.Days(2)), 400)
	ev.Record(pubs, 0, tc.Add(-timeutil.Days(5)), 30) // Eq. 8 impact
	r := ev.EvaluateUser(0, tc)
	fmt.Println(r.Group())
	// Output:
	// Both Active
}
