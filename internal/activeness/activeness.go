// Package activeness implements the paper's core contribution: the
// user-activeness evaluation model of §3.2 (Equations 1–6), the
// publication impact of Eq. (8), and the four-way user
// classification matrix of §3.3.
//
// The model is deliberately simple: every user activity — of any type
// an administrator cares to track (Table 2 of the paper) — reduces to
// a (timestamp, impact) pair. For an activity type λ the activities
// are bucketed into m periods of length d ending at the evaluation
// time t_c; each period's activeness ratio b_e is its impact share
// relative to the per-period average, and the type's rank is
// Φ_λ = Π b_e^e, weighting recent periods exponentially harder. Ranks
// multiply across types within the two classes, operations and
// outcomes, yielding (Φ_op, Φ_oc), and a user is active on a class
// iff its rank is ≥ 1.
package activeness

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"activedr/internal/timeutil"
	"activedr/internal/trace"
)

// Class distinguishes the two dimensions of the activeness matrix.
type Class int

const (
	// Operation activities are things users do on the system (job
	// submissions, logins, file accesses, data transfers).
	Operation Class = iota
	// Outcome activities are what users achieve with the system
	// (completed jobs, generated datasets, publications).
	Outcome
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Operation:
		return "operation"
	case Outcome:
		return "outcome"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Activity is the unified activeness measurement of §3.2: any user
// activity reduced to a timestamp and a non-negative impact.
type Activity struct {
	TS     timeutil.Time
	Impact float64
}

// TypeID identifies a registered activity type within an Evaluator.
type TypeID int

// TypeSpec describes a registered activity type.
type TypeSpec struct {
	Name  string
	Class Class
}

// Group is one quadrant of the §3.3 classification matrix. The order
// is the ascending-activeness scan order of the data-retention
// procedure: both-inactive first, both-active last.
type Group int

const (
	BothInactive Group = iota
	OutcomeActiveOnly
	OperationActiveOnly
	BothActive
	NumGroups = 4
)

// String names the group as the paper does.
func (g Group) String() string {
	switch g {
	case BothInactive:
		return "Both Inactive"
	case OutcomeActiveOnly:
		return "Outcome Active Only"
	case OperationActiveOnly:
		return "Operation Active Only"
	case BothActive:
		return "Both Active"
	default:
		return fmt.Sprintf("Group(%d)", int(g))
	}
}

// Groups lists all groups in scan order.
func Groups() [NumGroups]Group {
	return [NumGroups]Group{BothInactive, OutcomeActiveOnly, OperationActiveOnly, BothActive}
}

// Rank is a user's evaluated activeness. Op and Oc are the combined
// class ranks Φ_op and Φ_oc of Eq. (6); HasOp/HasOc record whether the
// user had any activity of that class at all — users without recorded
// activity keep the protective initial rank 1.0 (§3.4) but are
// classified inactive, so their files receive the initial lifetime
// and the earliest scan priority.
type Rank struct {
	Op, Oc       float64
	HasOp, HasOc bool
}

// NewUserRank is the rank assigned to users with no recorded
// activity: initial rank 1.0 on both classes (paper §3.4).
func NewUserRank() Rank { return Rank{Op: 1, Oc: 1} }

// OpActive reports operation-class activeness (Φ_op ≥ 1 with data).
func (r Rank) OpActive() bool { return r.HasOp && r.Op >= 1 }

// OcActive reports outcome-class activeness (Φ_oc ≥ 1 with data).
func (r Rank) OcActive() bool { return r.HasOc && r.Oc >= 1 }

// Group classifies the rank into the §3.3 matrix.
func (r Rank) Group() Group {
	switch {
	case r.OpActive() && r.OcActive():
		return BothActive
	case r.OpActive():
		return OperationActiveOnly
	case r.OcActive():
		return OutcomeActiveOnly
	default:
		return BothInactive
	}
}

// LifetimeMultiplier is the factor applied to the initial file
// lifetime in Eq. (7), resolved per classification group:
//
//   - both-active users multiply both ranks (Φ_op·Φ_oc ≥ 1);
//   - partially active users are adjusted by the active class alone
//     (matching the paper's §4.3 observation that for
//     operation-active-only users "only operational activities are
//     considered"), so an inactive outcome rank cannot erase an
//     earned operations reward;
//   - both-inactive users have their lifetime cut back by the raw
//     product (< 1, often 0) — this is the §3.4 "cuts back the file
//     lifetime of inactive users", and it is what lets ActiveDR
//     reach the purge target from inactive users' files alone
//     (paper Tables 4–6, where ActiveDR retains petabytes less for
//     the both-inactive group);
//   - users with no recorded activity keep the protective initial
//     rank 1.0 (§3.4's initial file lifetime for new users).
func (r Rank) LifetimeMultiplier() float64 {
	var m float64
	switch {
	case r.OpActive() && r.OcActive():
		m = r.Op * r.Oc
	case r.OpActive():
		m = r.Op
	case r.OcActive():
		m = r.Oc
	default:
		m = 1.0
		if r.HasOp {
			m *= r.Op
		}
		if r.HasOc {
			m *= r.Oc
		}
	}
	if math.IsInf(m, 1) || m > math.MaxFloat64 {
		return math.MaxFloat64
	}
	return m
}

// StrictEq7Multiplier is the literal Eq. (7) product Φ_op·Φ_oc with
// no inactive-class flooring, kept for the ablation benchmarks. Under
// it, a user inactive on either class can see the lifetime collapse
// to zero.
func (r Rank) StrictEq7Multiplier() float64 {
	m := r.Op * r.Oc
	if math.IsInf(m, 1) {
		return math.MaxFloat64
	}
	return m
}

// TypeRank computes Φ_λ (Eqs 1–5) for one activity type of one user
// at evaluation time tc with period length d. acts must be sorted by
// timestamp; activities after tc are ignored. An empty (or fully
// future) history yields the initial rank 1.0. A history whose total
// impact is zero, or with any empty period inside the m-period
// window, yields 0 (inactive).
func TypeRank(acts []Activity, tc timeutil.Time, d timeutil.Duration) float64 {
	if d <= 0 {
		panic("activeness: non-positive period length")
	}
	// Cut off future activities (sorted input → binary search).
	k := sort.Search(len(acts), func(i int) bool { return acts[i].TS > tc })
	acts = acts[:k]
	if len(acts) == 0 {
		return 1.0
	}
	var total float64
	for i := range acts {
		if acts[i].Impact < 0 {
			panic(fmt.Sprintf("activeness: negative impact at %v", acts[i].TS))
		}
		total += acts[i].Impact
	}
	var s rankScratch
	return typeRankCore(acts, len(acts), total, tc, d, &s)
}

// rankScratch is the period-bucket buffer typeRankCore reuses across
// calls. Buckets are claimed lazily: a bucket is live for the current
// call iff its stamp equals the current epoch, so a call pays for the
// periods its window actually contains activity in instead of zeroing
// the whole window — the window span m grows with the history length,
// while most users touch only a handful of recent periods.
type rankScratch struct {
	dp    []float64
	stamp []int64
	epoch int64
}

// typeRankCore is the Φ_λ computation shared by TypeRank and the
// memoized cursor paths: acts[:k] is the pre-cut history (k ≥ 1),
// total its impact sum (accumulated first-to-last, so all callers
// produce bit-identical floats), s the reusable bucket scratch.
func typeRankCore(acts []Activity, k int, total float64, tc timeutil.Time, d timeutil.Duration, s *rankScratch) float64 {
	first, last := acts[0].TS, acts[k-1].TS
	m := timeutil.PeriodCount(first, last, d) // Eq. (1)
	if total <= 0 {
		return 0
	}
	avg := total / float64(m) // Eq. (2)
	// Only the window [tc − m·d, tc] contributes (older activities get
	// PeriodIndex < 1), so skip straight to its start instead of
	// scanning the whole history.
	lo := 0
	spanOK := int64(m) <= math.MaxInt64/int64(d)
	if spanOK {
		if ws := int64(tc) - int64(m)*int64(d); ws <= int64(tc) {
			lo = sort.Search(k, func(i int) bool { return int64(acts[i].TS) >= ws })
		}
	}
	// Fewer window activities than periods leaves some period empty by
	// pigeonhole, which zeroes the product (Eq. 5) — skip the scan.
	if k-lo < m {
		return 0
	}
	// Bucket impacts into the m-period window ending at tc (Eq. 4).
	if cap(s.dp) < m+1 || cap(s.stamp) < m+1 {
		s.dp = make([]float64, m+1) // 1-based; fresh stamps read as unclaimed
		s.stamp = make([]int64, m+1)
	} else {
		s.dp = s.dp[:m+1]
		s.stamp = s.stamp[:m+1]
	}
	s.epoch++
	filled := 0
	if spanOK {
		// Ascending timestamps visit period indices monotonically
		// (PeriodIndex is non-decreasing in ts), so one division prices
		// the first window activity and the rest advance by boundary
		// comparison: period e < m holds ts ∈ [tc−(m−e+1)·d, tc−(m−e)·d),
		// period m holds everything up to tc.
		e := timeutil.PeriodIndex(tc, acts[lo].TS, m, d)
		var hiEx int64 // exclusive upper ts bound of period e (e < m only)
		if e < m {
			hiEx = int64(tc) - int64(m-e)*int64(d)
		}
		for i := lo; i < k; i++ {
			ts := int64(acts[i].TS)
			for e < m && ts >= hiEx {
				e++
				hiEx += int64(d)
			}
			if s.stamp[e] == s.epoch {
				s.dp[e] += acts[i].Impact
			} else {
				s.stamp[e] = s.epoch
				s.dp[e] = acts[i].Impact // first claim: exactly 0 + Impact
				filled++
			}
		}
	} else {
		// m·d overflows: no window start to search or step boundaries
		// from; price every activity individually.
		for i := lo; i < k; i++ {
			e := timeutil.PeriodIndex(tc, acts[i].TS, m, d)
			if e >= 1 && e <= m {
				if s.stamp[e] == s.epoch {
					s.dp[e] += acts[i].Impact
				} else {
					s.stamp[e] = s.epoch
					s.dp[e] = acts[i].Impact
					filled++
				}
			}
		}
	}
	if filled < m {
		return 0 // some period in the window saw no activity (Eq. 5)
	}
	// Φ_λ = Π_{e=1..m} (D_e/avg)^e, in log space (Eq. 3 + Eq. 5). A
	// claimed period can still hold zero total impact, which zeroes the
	// product just like an empty one.
	logSum := 0.0
	for e := 1; e <= m; e++ {
		if s.dp[e] == 0 {
			return 0
		}
		logSum += float64(e) * math.Log(s.dp[e]/avg)
	}
	phi := math.Exp(logSum)
	if math.IsInf(phi, 1) {
		return math.MaxFloat64
	}
	return phi
}

// CombineTypeRanks multiplies per-type ranks within a class (Eq. 6),
// clamping overflow.
func CombineTypeRanks(ranks []float64) float64 {
	phi := 1.0
	for _, r := range ranks {
		phi *= r
		if math.IsInf(phi, 1) {
			return math.MaxFloat64
		}
	}
	return phi
}

// Evaluator accumulates activities per (type, user) and evaluates
// ranks at arbitrary times. It is built once from traces and then
// queried at every purge trigger; Record calls may arrive in any
// order, and the per-user histories are sorted lazily.
type Evaluator struct {
	period timeutil.Duration
	types  []TypeSpec
	// data[t][u] is the activity history of user u for type t.
	data []map[trace.UserID][]Activity
	// prefix[t][u][i] is the impact sum of the first i activities of
	// (t, u), accumulated in history order. Maintained alongside the
	// sort so cursor-based evaluation reads any cut's total in O(1)
	// with the exact float value the sequential sum would produce.
	prefix []map[trace.UserID][]float64

	mu     sync.Mutex // guards sorted / the one-time history sort
	sorted bool
	// ready is the lock-free fast-path gate of ensureSorted: true once
	// the sorted histories and prefix sums are published. Evaluation
	// calls ensureSorted per (user, trigger), so the steady state must
	// not take the mutex.
	ready atomic.Bool
}

// NewEvaluator builds an Evaluator with the given period length d
// (the paper sweeps d ∈ {7, 30, 60, 90} days).
func NewEvaluator(period timeutil.Duration) *Evaluator {
	if period <= 0 {
		panic("activeness: non-positive period length")
	}
	return &Evaluator{period: period, sorted: true}
}

// Period returns the configured period length.
func (e *Evaluator) Period() timeutil.Duration { return e.period }

// AddType registers an activity type and returns its ID.
func (e *Evaluator) AddType(name string, class Class) TypeID {
	e.types = append(e.types, TypeSpec{Name: name, Class: class})
	e.data = append(e.data, make(map[trace.UserID][]Activity))
	e.ready.Store(false)
	return TypeID(len(e.types) - 1)
}

// Types returns the registered type specs.
func (e *Evaluator) Types() []TypeSpec { return append([]TypeSpec(nil), e.types...) }

// Record appends one activity for a user.
func (e *Evaluator) Record(t TypeID, u trace.UserID, ts timeutil.Time, impact float64) {
	if impact < 0 {
		panic("activeness: negative impact")
	}
	e.data[t][u] = append(e.data[t][u], Activity{TS: ts, Impact: impact})
	e.sorted = false
	e.ready.Store(false)
}

// RecordJobs feeds a job-scheduler log as one operation type; the
// impact of a job is its core-hours (§4.1.3).
func (e *Evaluator) RecordJobs(t TypeID, jobs []trace.Job) {
	for i := range jobs {
		e.Record(t, jobs[i].User, jobs[i].Submit, jobs[i].CoreHours())
	}
}

// RecordLogins feeds a shell-login log as one operation type; every
// login has impact 1 (frequency is the signal).
func (e *Evaluator) RecordLogins(t TypeID, logins []trace.Login) {
	for i := range logins {
		e.Record(t, logins[i].User, logins[i].TS, 1)
	}
}

// RecordTransfers feeds a data-transfer log as one operation type;
// the impact of a transfer is the moved gigabytes.
func (e *Evaluator) RecordTransfers(t TypeID, xs []trace.Transfer) {
	for i := range xs {
		e.Record(t, xs[i].User, xs[i].TS, xs[i].Impact())
	}
}

// RecordPublications feeds a publication list as one outcome type;
// each author receives the Eq. (8) impact (c+1)·(n−i+1).
func (e *Evaluator) RecordPublications(t TypeID, pubs []trace.Publication) {
	for i := range pubs {
		p := &pubs[i]
		n := len(p.Authors)
		for idx, a := range p.Authors {
			impact := float64(p.Citations+1) * float64(n-idx)
			e.Record(t, a, p.TS, impact)
		}
	}
}

// ensureSorted sorts every history once. It is safe to call from
// concurrent EvaluateUser goroutines; Record must not run
// concurrently with evaluation.
func (e *Evaluator) ensureSorted() {
	if e.ready.Load() {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.sorted || len(e.prefix) != len(e.data) {
		e.prefix = make([]map[trace.UserID][]float64, len(e.data))
		for t, byUser := range e.data {
			e.prefix[t] = make(map[trace.UserID][]float64, len(byUser))
			for u, acts := range byUser {
				sort.SliceStable(acts, func(i, j int) bool { return acts[i].TS < acts[j].TS })
				byUser[u] = acts
				ps := make([]float64, len(acts)+1)
				for i := range acts {
					ps[i+1] = ps[i] + acts[i].Impact
				}
				e.prefix[t][u] = ps
			}
		}
		e.sorted = true
	}
	e.ready.Store(true)
}

// EvaluateUser computes the user's rank at time tc.
func (e *Evaluator) EvaluateUser(u trace.UserID, tc timeutil.Time) Rank {
	e.ensureSorted()
	r := Rank{Op: 1, Oc: 1}
	for t := range e.types {
		acts := e.data[t][u]
		// Does the user have any activity of this type at or before tc?
		k := sort.Search(len(acts), func(i int) bool { return acts[i].TS > tc })
		if k == 0 {
			continue
		}
		phi := TypeRank(acts, tc, e.period)
		switch e.types[t].Class {
		case Operation:
			r.HasOp = true
			r.Op *= phi
		case Outcome:
			r.HasOc = true
			r.Oc *= phi
		}
	}
	if math.IsInf(r.Op, 1) {
		r.Op = math.MaxFloat64
	}
	if math.IsInf(r.Oc, 1) {
		r.Oc = math.MaxFloat64
	}
	return r
}

// EvaluateAll ranks every user in the population at time tc. The
// result is indexed by UserID.
func (e *Evaluator) EvaluateAll(numUsers int, tc timeutil.Time) []Rank {
	ranks := make([]Rank, numUsers)
	for u := 0; u < numUsers; u++ {
		ranks[u] = e.EvaluateUser(trace.UserID(u), tc)
	}
	return ranks
}

// Cursors memoizes per-user history cut positions across evaluation
// times: the replay evaluates every user at each purge trigger with
// tc advancing monotonically, so instead of re-searching each sorted
// history from scratch every 7 simulated days, the cursor resumes
// from the previous trigger's position and walks forward over the new
// activities only. Ranks are bit-identical to Evaluator.EvaluateUser
// (TestCursorsMatchEvaluate). A Cursors belongs to one goroutine; the
// shared Evaluator underneath stays read-only after the first sort.
type Cursors struct {
	e      *Evaluator
	lastTC timeutil.Time
	valid  bool
	// cuts[t][u] is the count of (t, u)-activities with TS ≤ lastTC.
	cuts    []map[trace.UserID]int
	scratch rankScratch // period-bucket buffer reused across users
}

// NewCursors returns a fresh cursor set over the evaluator's data.
func (e *Evaluator) NewCursors() *Cursors {
	c := &Cursors{e: e, cuts: make([]map[trace.UserID]int, len(e.data))}
	for t := range c.cuts {
		c.cuts[t] = make(map[trace.UserID]int)
	}
	return c
}

// EvaluateUser computes the user's rank at tc, advancing the user's
// cursors. Evaluation times should be non-decreasing; a backward jump
// is handled by restarting the cursors (correct, just not memoized).
func (c *Cursors) EvaluateUser(u trace.UserID, tc timeutil.Time) Rank {
	e := c.e
	e.ensureSorted()
	if c.valid && tc < c.lastTC {
		for t := range c.cuts {
			c.cuts[t] = make(map[trace.UserID]int, len(c.cuts[t]))
		}
	}
	c.lastTC, c.valid = tc, true
	for len(c.cuts) < len(e.data) {
		c.cuts = append(c.cuts, make(map[trace.UserID]int))
	}
	r := Rank{Op: 1, Oc: 1}
	for t := range e.types {
		acts := e.data[t][u]
		k := c.cuts[t][u]
		for k < len(acts) && acts[k].TS <= tc {
			k++
		}
		c.cuts[t][u] = k
		if k == 0 {
			continue
		}
		phi := typeRankCore(acts, k, e.prefix[t][u][k], tc, e.period, &c.scratch)
		switch e.types[t].Class {
		case Operation:
			r.HasOp = true
			r.Op *= phi
		case Outcome:
			r.HasOc = true
			r.Oc *= phi
		}
	}
	if math.IsInf(r.Op, 1) {
		r.Op = math.MaxFloat64
	}
	if math.IsInf(r.Oc, 1) {
		r.Oc = math.MaxFloat64
	}
	return r
}

// EvaluateAll ranks every user in the population at time tc, indexed
// by UserID.
func (c *Cursors) EvaluateAll(numUsers int, tc timeutil.Time) []Rank {
	ranks := make([]Rank, numUsers)
	for u := 0; u < numUsers; u++ {
		ranks[u] = c.EvaluateUser(trace.UserID(u), tc)
	}
	return ranks
}

// EvaluateUserMulti computes the user's rank at tc under each of the
// given period lengths in one pass, writing the rank for periods[i] to
// out[i] (out must have len(periods) elements). The per-type cursor
// advance, history cut and impact total — the parts independent of the
// period length — are done once and shared across all periods; only
// the Φ_λ bucketing runs per period. Each out[i] is bit-identical to
// what a dedicated Cursors over an evaluator with period periods[i]
// would return from EvaluateUser at the same times: the cut k and the
// prefix total are period-independent, and the per-type multiply order
// into the rank is the same.
func (c *Cursors) EvaluateUserMulti(u trace.UserID, tc timeutil.Time, periods []timeutil.Duration, out []Rank) {
	e := c.e
	e.ensureSorted()
	if c.valid && tc < c.lastTC {
		for t := range c.cuts {
			c.cuts[t] = make(map[trace.UserID]int, len(c.cuts[t]))
		}
	}
	c.lastTC, c.valid = tc, true
	for len(c.cuts) < len(e.data) {
		c.cuts = append(c.cuts, make(map[trace.UserID]int))
	}
	for i := range out {
		out[i] = Rank{Op: 1, Oc: 1}
	}
	for t := range e.types {
		acts := e.data[t][u]
		k := c.cuts[t][u]
		for k < len(acts) && acts[k].TS <= tc {
			k++
		}
		c.cuts[t][u] = k
		if k == 0 {
			continue
		}
		total := e.prefix[t][u][k]
		cls := e.types[t].Class
		for pi, d := range periods {
			phi := typeRankCore(acts, k, total, tc, d, &c.scratch)
			switch cls {
			case Operation:
				out[pi].HasOp = true
				out[pi].Op *= phi
			case Outcome:
				out[pi].HasOc = true
				out[pi].Oc *= phi
			}
		}
	}
	for i := range out {
		if math.IsInf(out[i].Op, 1) {
			out[i].Op = math.MaxFloat64
		}
		if math.IsInf(out[i].Oc, 1) {
			out[i].Oc = math.MaxFloat64
		}
	}
}

// Matrix counts users per classification group — the content of the
// paper's Figure 5.
type Matrix struct {
	Counts [NumGroups]int
	Total  int
}

// NewMatrix classifies a rank slice.
func NewMatrix(ranks []Rank) Matrix {
	var m Matrix
	for _, r := range ranks {
		m.Counts[r.Group()]++
		m.Total++
	}
	return m
}

// Share returns the fraction of users in group g.
func (m Matrix) Share(g Group) float64 {
	if m.Total == 0 {
		return 0
	}
	return float64(m.Counts[g]) / float64(m.Total)
}
