package activeness

import (
	"math"
	"strings"
	"testing"

	"activedr/internal/timeutil"
)

func TestExplainMatchesEvaluate(t *testing.T) {
	e := NewEvaluator(p7)
	jt := e.AddType("job", Operation)
	pt := e.AddType("pub", Outcome)
	e.Record(jt, 0, tc.Add(-timeutil.Days(12)), 1)
	e.Record(jt, 0, tc.Add(-timeutil.Days(3)), 3)
	e.Record(pt, 0, tc.Add(-timeutil.Days(2)), 10)
	x := e.Explain(0, tc)
	r := e.EvaluateUser(0, tc)
	if x.Rank != r {
		t.Fatalf("Explain rank %+v != EvaluateUser %+v", x.Rank, r)
	}
	if len(x.Types) != 2 {
		t.Fatalf("types = %d", len(x.Types))
	}
	job := x.Types[0]
	if job.Phi != r.Op {
		t.Errorf("job Φ = %v, rank Op = %v", job.Phi, r.Op)
	}
	if job.M != 2 || job.Activities != 2 || job.InWindow != 2 {
		t.Errorf("job explanation = %+v", job)
	}
	// b ratios must multiply (e-weighted) back to Φ.
	prod := 1.0
	for _, p := range job.Periods {
		prod *= math.Pow(p.Ratio, float64(p.Index))
	}
	if math.Abs(prod-job.Phi) > 1e-9 {
		t.Errorf("Π b^e = %v, Φ = %v", prod, job.Phi)
	}
	// Ratios sum to m when every activity is inside the window.
	sum := 0.0
	for _, p := range job.Periods {
		sum += p.Ratio
	}
	if math.Abs(sum-float64(job.M)) > 1e-9 {
		t.Errorf("Σ b = %v, want m = %d", sum, job.M)
	}
}

func TestExplainEmptyHistory(t *testing.T) {
	e := NewEvaluator(p7)
	e.AddType("job", Operation)
	x := e.Explain(5, tc)
	if len(x.Types) != 1 || x.Types[0].Phi != 1.0 || x.Types[0].Activities != 0 {
		t.Fatalf("empty explanation = %+v", x.Types)
	}
	if x.Rank != NewUserRank() {
		t.Fatalf("rank = %+v", x.Rank)
	}
	if !strings.Contains(x.String(), "Both Inactive") {
		t.Error("string missing group")
	}
}

func TestExplainMarksEmptyPeriods(t *testing.T) {
	e := NewEvaluator(p7)
	jt := e.AddType("job", Operation)
	// Gap in the middle: period 2 of 3 is empty.
	e.Record(jt, 0, tc.Add(-timeutil.Days(17)), 5)
	e.Record(jt, 0, tc.Add(-timeutil.Days(2)), 5)
	x := e.Explain(0, tc)
	job := x.Types[0]
	if job.Phi != 0 {
		t.Fatalf("Φ = %v, want 0", job.Phi)
	}
	empties := 0
	for _, p := range job.Periods {
		if p.Impact == 0 {
			empties++
		}
	}
	if empties == 0 {
		t.Fatal("no empty period reported despite Φ = 0")
	}
	if !strings.Contains(x.String(), "empty period zeroes") {
		t.Error("string missing empty-period marker")
	}
}

func TestExplainElidesLongHistories(t *testing.T) {
	e := NewEvaluator(p7)
	jt := e.AddType("job", Operation)
	for back := 0; back < 40; back++ {
		e.Record(jt, 0, tc.Add(-timeutil.Duration(back)*p7-timeutil.Hour), 1)
	}
	x := e.Explain(0, tc)
	s := x.String()
	if !strings.Contains(s, "older periods elided") {
		t.Fatalf("long history not elided:\n%s", s)
	}
}
